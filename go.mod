module commtopk

go 1.22
