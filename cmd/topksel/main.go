// Command topksel runs distributed unsorted selection (Section 4.1) on a
// generated workload and prints the result together with the
// communication bill — a quick way to see the sublinear-communication
// claim on one screen.
//
// Usage:
//
//	topksel [-p 16] [-perpe 1000000] [-k 1000] [-seed 1] [-largest]
package main

import (
	"flag"
	"fmt"

	"commtopk/internal/comm"
	"commtopk/internal/gen"
	"commtopk/internal/sel"
	"commtopk/internal/xrand"
)

func main() {
	p := flag.Int("p", 16, "number of PEs")
	perPE := flag.Int("perpe", 1_000_000, "elements per PE")
	k := flag.Int64("k", 1000, "rank to select")
	seed := flag.Int64("seed", 1, "random seed")
	largest := flag.Bool("largest", true, "select the k-th largest (otherwise smallest)")
	flag.Parse()

	locals := make([][]uint64, *p)
	for r := 0; r < *p; r++ {
		locals[r] = gen.SelectionInput(xrand.NewPE(*seed, r), *perPE, 20)
	}
	n := int64(*p) * int64(*perPE)
	rank := *k
	if *largest {
		rank = n - *k + 1
	}

	m := comm.NewMachine(comm.DefaultConfig(*p))
	var result uint64
	m.MustRun(func(pe *comm.PE) {
		v := sel.Kth(pe, locals[pe.Rank()], rank, xrand.NewPE(*seed+1, pe.Rank()))
		if pe.Rank() == 0 {
			result = v
		}
	})
	s := m.Stats()
	fmt.Printf("selection of rank %d from n=%d over p=%d PEs\n", rank, n, *p)
	fmt.Printf("  result value          %d\n", result)
	fmt.Printf("  bottleneck words (h)  %d  (n/p = %d → %.3f%% of local data)\n",
		s.BottleneckWords(), *perPE, 100*float64(s.BottleneckWords())/float64(*perPE))
	fmt.Printf("  bottleneck startups   %d\n", s.MaxSends)
	fmt.Printf("  modeled comm time     %.0f (α=%g, β=%g)\n", s.MaxClock, m.Config().Alpha, m.Config().Beta)
}
