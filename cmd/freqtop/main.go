// Command freqtop finds the k most frequent objects in a generated
// distributed stream with a selectable algorithm and reports accuracy
// against the exact answer (Section 7 / Section 10.2 of the paper).
//
// Usage:
//
//	freqtop [-algo pac|ec|ecsbf|pec|naive|naivetree] [-p 16] [-perpe 1000000]
//	        [-k 32] [-eps 0.001] [-delta 0.0001] [-zipf 1.0] [-seed 1]
package main

import (
	"flag"
	"fmt"

	"commtopk/internal/comm"
	"commtopk/internal/freq"
	"commtopk/internal/gen"
	"commtopk/internal/stats"
	"commtopk/internal/xrand"
)

func main() {
	algo := flag.String("algo", "ec", "algorithm: pac, ec, ecsbf, pec, naive, naivetree")
	p := flag.Int("p", 16, "number of PEs")
	perPE := flag.Int("perpe", 1_000_000, "elements per PE")
	k := flag.Int("k", 32, "number of objects to report")
	eps := flag.Float64("eps", 1e-3, "relative error bound ε")
	delta := flag.Float64("delta", 1e-4, "failure probability δ")
	zipf := flag.Float64("zipf", 1.0, "Zipf exponent of the workload")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	z := gen.NewZipf(1<<20, *zipf)
	locals := make([][]uint64, *p)
	exact := map[uint64]int64{}
	for r := 0; r < *p; r++ {
		locals[r] = gen.FrequencyInput(xrand.NewPE(*seed, r), z, *perPE)
		for _, x := range locals[r] {
			exact[x]++
		}
	}
	n := int64(*p) * int64(*perPE)

	params := freq.Params{K: *k, Eps: *eps, Delta: *delta}
	m := comm.NewMachine(comm.DefaultConfig(*p))
	var res freq.Result
	m.MustRun(func(pe *comm.PE) {
		rng := xrand.NewPE(*seed+1, pe.Rank())
		var r freq.Result
		switch *algo {
		case "pac":
			r = freq.PAC(pe, locals[pe.Rank()], params, rng)
		case "ec":
			r = freq.EC(pe, locals[pe.Rank()], params, rng)
		case "ecsbf":
			r = freq.ECSBF(pe, locals[pe.Rank()], params, rng)
		case "pec":
			r = freq.PEC(pe, locals[pe.Rank()], params, 10*(*eps), rng)
		case "naive":
			r = freq.Naive(pe, locals[pe.Rank()], params, rng)
		case "naivetree":
			r = freq.NaiveTree(pe, locals[pe.Rank()], params, rng)
		default:
			panic("unknown algorithm " + *algo)
		}
		if pe.Rank() == 0 {
			res = r
		}
	})

	keys := make([]uint64, len(res.Items))
	fmt.Printf("top-%d most frequent (algo=%s, n=%d, p=%d, ε=%g, δ=%g)\n", *k, *algo, n, *p, *eps, *delta)
	for i, it := range res.Items {
		keys[i] = it.Key
		marker := "≈"
		if res.Exact {
			marker = "="
		}
		fmt.Printf("  %2d. object %7d  count %s %d (exact %d)\n", i+1, it.Key, marker, it.Count, exact[it.Key])
	}
	s := m.Stats()
	fmt.Printf("sample size %d (ρ=%.2g)  k*=%d  exact=%v\n", res.SampleSize, res.Rho, res.KStar, res.Exact)
	fmt.Printf("realized error ε̃ = %.3g (bound %g)\n", stats.EpsTilde(exact, keys, n), *eps)
	fmt.Printf("bottleneck words/PE %d, startups/PE %d\n", s.BottleneckWords(), s.MaxSends)
}
