// Command topkbench regenerates the paper's evaluation tables and figures
// (see EXPERIMENTS.md for the mapping to the paper).
//
// Usage:
//
//	topkbench -exp fig6|fig7a|fig7b|fig8|fig5|table1|amsbatch|pqflex|dht|redist|coll|scaling|all
//	          [-pmax 64] [-perpe 1048576] [-k 32] [-seed 1]
//
// Larger -perpe / -pmax approach the paper's scales at the cost of run
// time; the defaults finish in minutes on a laptop. `-exp scaling` (not
// part of `all`) runs the large-p suite — the O(log p) collectives, the
// chunked gather and the strided gather swept over s ∈ {16, 64, 256},
// and Table-1 selection (sel.KthStep) at p = 256…131072; every mailbox
// primary is continuation-scheduled on pooled stepper state with
// blocking A/B twins, and the channel matrix is refused beyond the
// harness memory budget. `-quick` selects the CI tier (p ≤ 4096, one
// run per op, no A/B twins) — including the stepper-form selection path.
// `-exp kernels` (also not part of `all`) runs the host-local kernel
// family: the selection engines swept over n = 2^10…2^24 and five input
// distributions, plus the dht.Table probe loop and the treap structural
// ops; with `-quick` it is the CI smoke tier (one run per op, n ≤ 2^18).
// `-exp bpq` (also not part of `all`) runs the bulk-priority-queue
// churn family: ascending InsertBulk + global DeleteMin batches swept
// over p and per-PE batch size b, continuation-scheduled with blocking
// A/B twins, plus the treap insert/delete arena gate; `-quick` is the
// CI smoke tier (p = 256 only, one run per op, no twins).
// `-exp serve` (also not part of `all`) runs the multi-tenant serving
// axis: open-loop QPS and p50/p95/p99 completion latency of the
// internal/serve front end at a calibrated offered rate, comparing
// sequential vs interleaved inflight and sharded vs global scheduler
// ready queues; `-quick` is the CI smoke tier (fewer queries).
// `-cpuprofile f` / `-memprofile f` write pprof profiles of any run.
//
// Benchmark pipeline mode (see EXPERIMENTS.md § Benchmark pipeline):
//
//	topkbench -json [-pr 1] [-baseline BENCH_PR0.json] [-out BENCH_PR1.json] [-note "..."]
//
// runs the fixed host-benchmark suite (Table 1 unsorted selection and the
// substrate collectives, matching the root bench_test.go configurations)
// and writes BENCH_PR<N>.json recording ns/op, allocs/op, B/op, the
// bottleneck communication words and startups per PE, and the modeled
// critical-path clock. With -baseline, an earlier report's results are
// embedded so one committed file carries the before/after comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"commtopk/internal/comm"
	"commtopk/internal/experiments"
	"commtopk/internal/wire"
)

func main() {
	// A wire cluster re-execs this binary as its workers (rendezvous
	// address in the environment); a worker process never parses flags.
	wire.MaybeWorker()

	exp := flag.String("exp", "all", "experiment id (fig6, fig7a, fig7b, fig8, fig5, table1, amsbatch, pqflex, dht, redist, coll, scaling, kernels, bpq, serve, wire, all)")
	backendFlag := flag.String("backend", "mailbox", "machine backend for the experiment families: mailbox, chanmatrix, or wire (wire is valid only with -exp wire — the other families run closures, which cannot cross process boundaries)")
	quick := flag.Bool("quick", false, "CI tier: with -exp scaling p capped at 4096, one run per op, no blocking A/B twins; with -exp kernels n capped at 2^18, one run per op; with -exp bpq p=256 only, one run per op, no twins; with -exp serve a reduced query count")
	pmax := flag.Int("pmax", 64, "maximum PE count for weak-scaling sweeps (powers of two from 1)")
	perPE := flag.Int("perpe", 1<<17, "elements per PE (the paper's n/p; 2^28 in the paper)")
	k := flag.Int("k", 32, "output size k")
	seed := flag.Int64("seed", 1, "random seed")
	jsonMode := flag.Bool("json", false, "run the benchmark pipeline and emit BENCH_PR<N>.json instead of experiment tables")
	pr := flag.Int("pr", 0, "PR number stamped into the benchmark report (names the default -out)")
	baseline := flag.String("baseline", "", "earlier BENCH_PR<N>.json whose results are embedded as the baseline")
	out := flag.String("out", "", "benchmark report path (default BENCH_PR<pr>.json)")
	note := flag.String("note", "", "free-form note recorded in the benchmark report")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (inspect with go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the run, post-GC) to this file")
	flag.Parse()

	switch *backendFlag {
	case "mailbox":
	case "chanmatrix":
		experiments.SetBackend(comm.BackendChannelMatrix)
	case "wire":
		if *exp != "wire" {
			fmt.Fprintln(os.Stderr, "topkbench: -backend wire requires -exp wire (the other experiment families run SPMD closures, which cannot cross process boundaries; the wire family runs registered programs)")
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "topkbench: unknown -backend %q (want mailbox, chanmatrix, or wire)\n", *backendFlag)
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topkbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "topkbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "topkbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap so the profile shows retained, not transient, memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "topkbench: -memprofile: %v\n", err)
			}
		}()
	}

	if *jsonMode {
		// The pipeline suite runs fixed configurations (so reports stay
		// comparable PR-over-PR); the experiment sweep flags do not apply.
		// Exception: -exp wire selects the wire measured-vs-modeled family
		// as the report's suite.
		wireReport := *exp == "wire"
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "pmax", "perpe", "k", "seed":
				fmt.Fprintf(os.Stderr, "topkbench: -%s is ignored in -json mode (the pipeline suite is fixed; see EXPERIMENTS.md)\n", f.Name)
			case "exp", "quick":
				if !wireReport {
					fmt.Fprintf(os.Stderr, "topkbench: -%s is ignored in -json mode (the pipeline suite is fixed; see EXPERIMENTS.md)\n", f.Name)
				}
			}
		})
		path := *out
		if path == "" {
			path = fmt.Sprintf("BENCH_PR%d.json", *pr)
		}
		suite := experiments.RunBenchSuite
		if wireReport {
			suite = func(progress func(string)) []experiments.BenchResult {
				return experiments.WireSuite(*quick, progress)
			}
		}
		rep, err := experiments.WriteBenchReportSuite(path, *pr, *note, *baseline, suite,
			func(line string) { fmt.Fprintln(os.Stderr, line) })
		if err != nil {
			fmt.Fprintf(os.Stderr, "topkbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d benchmarks", path, len(rep.Results))
		if len(rep.Baseline) > 0 {
			fmt.Printf(", baseline embedded")
		}
		fmt.Println(")")
		return
	}

	pList := experiments.PList(*pmax)
	var tables []experiments.Table

	want := func(id string) bool { return *exp == id || *exp == "all" }

	if want("fig6") {
		// k values spread across the input as in the paper (2^10, 2^20, 2^26
		// against n/p=2^28): here 2^10, and two larger ones scaled to n/p.
		ks := []int64{1 << 10, int64(*perPE) / 64, int64(*perPE) / 4}
		tables = append(tables, experiments.Fig6(*perPE, pList, ks, *seed))
	}
	if want("fig7a") {
		tables = append(tables, experiments.Fig7(*perPE/4, pList, *k, 0.02, 1e-4, *seed))
	}
	if want("fig7b") {
		tables = append(tables, experiments.Fig7(*perPE, pList, *k, 0.02, 1e-4, *seed))
	}
	if want("fig8") {
		tables = append(tables, experiments.Fig8(*perPE, pList, *k, 5e-4, 1e-8, *seed))
	}
	if want("fig5") {
		tables = append(tables, experiments.Fig5(min(8, *pmax), 6, *seed))
	}
	if want("table1") {
		p := min(64, *pmax)
		tables = append(tables, experiments.Table1(p, *perPE/4, *k, *seed))
	}
	if want("amsbatch") {
		tables = append(tables, experiments.AblationAMSBatch(min(8, *pmax), *perPE/8,
			int64(*perPE)/4, int64(*perPE)/4+int64(*perPE)/256, *seed))
	}
	if want("pqflex") {
		tables = append(tables, experiments.AblationPQFlexible(min(8, *pmax), *perPE/8, int64(*k)*16, *seed))
	}
	if want("dht") {
		tables = append(tables, experiments.AblationDHTRouting(min(16, *pmax), 4096, *seed))
	}
	if want("redist") {
		tables = append(tables, experiments.AblationRedistribution(min(16, *pmax), *perPE/8, *seed))
	}
	if want("coll") {
		tables = append(tables, experiments.CollectivesScaling(pList))
	}
	if *exp == "scaling" {
		// Not part of -exp all: the large-p machines take minutes. With
		// -pmax unset, the suite runs its full range (p up to 131072, or
		// 4096 in the -quick CI tier); an explicit -pmax caps it (below 256
		// nothing qualifies — say so rather than silently running the big
		// machines anyway).
		scaleMax := 1 << 17
		if *quick {
			scaleMax = experiments.ScalingQuickPMax
		}
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "pmax" {
				scaleMax = min(scaleMax, *pmax)
			}
		})
		if scaleMax < 256 {
			fmt.Fprintf(os.Stderr, "topkbench: -exp scaling starts at p=256; -pmax %d selects no configurations\n", scaleMax)
			os.Exit(2)
		}
		tables = append(tables, experiments.ScalingTable(scaleMax, *quick))
	}
	if *exp == "kernels" {
		// Not part of -exp all: host-local microbenchmarks of the selection
		// engines, the dht.Table probe loop and the treap structural ops
		// (no machine, no meters). -quick is the CI smoke tier: one run per
		// op and n capped at 2^18.
		tables = append(tables, experiments.KernelsTables(*quick)...)
	}
	if *exp == "bpq" {
		// Not part of -exp all: the churn family builds machines up to
		// p = 16384. -quick is the CI smoke tier: p = 256, one run per op,
		// no blocking A/B twins.
		tables = append(tables, experiments.BpqTable(*quick))
	}
	if *exp == "wire" {
		// Not part of -exp all: spawns real worker processes. Measures
		// wall-clock vs the modeled α/β clock for the registered programs
		// on multi-process clusters, twin-checked against the in-process
		// mailbox machine. -quick is the CI tier (p=16, 2 processes).
		tables = append(tables, experiments.WireTable(*quick))
	}
	if *exp == "serve" {
		// Not part of -exp all: wall-clock serving measurements (open-loop
		// QPS / tail latency of internal/serve) are load-sensitive and take
		// tens of seconds. -quick is the CI smoke tier: fewer queries, same
		// calibrated offered rate.
		tables = append(tables, experiments.ServingTable(*quick))
	}

	if len(tables) == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	var sb strings.Builder
	for i := range tables {
		tables[i].Render(&sb)
	}
	fmt.Print(sb.String())
}
