// Command topkbench regenerates the paper's evaluation tables and figures
// (see EXPERIMENTS.md for the mapping to the paper).
//
// Usage:
//
//	topkbench -exp fig6|fig7a|fig7b|fig8|fig5|table1|amsbatch|pqflex|dht|redist|coll|all
//	          [-pmax 64] [-perpe 1048576] [-k 32] [-seed 1]
//
// Larger -perpe / -pmax approach the paper's scales at the cost of run
// time; the defaults finish in minutes on a laptop.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"commtopk/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig6, fig7a, fig7b, fig8, fig5, table1, amsbatch, pqflex, dht, redist, coll, all)")
	pmax := flag.Int("pmax", 64, "maximum PE count for weak-scaling sweeps (powers of two from 1)")
	perPE := flag.Int("perpe", 1<<17, "elements per PE (the paper's n/p; 2^28 in the paper)")
	k := flag.Int("k", 32, "output size k")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	pList := experiments.PList(*pmax)
	var tables []experiments.Table

	want := func(id string) bool { return *exp == id || *exp == "all" }

	if want("fig6") {
		// k values spread across the input as in the paper (2^10, 2^20, 2^26
		// against n/p=2^28): here 2^10, and two larger ones scaled to n/p.
		ks := []int64{1 << 10, int64(*perPE) / 64, int64(*perPE) / 4}
		tables = append(tables, experiments.Fig6(*perPE, pList, ks, *seed))
	}
	if want("fig7a") {
		tables = append(tables, experiments.Fig7(*perPE/4, pList, *k, 0.02, 1e-4, *seed))
	}
	if want("fig7b") {
		tables = append(tables, experiments.Fig7(*perPE, pList, *k, 0.02, 1e-4, *seed))
	}
	if want("fig8") {
		tables = append(tables, experiments.Fig8(*perPE, pList, *k, 5e-4, 1e-8, *seed))
	}
	if want("fig5") {
		tables = append(tables, experiments.Fig5(min(8, *pmax), 6, *seed))
	}
	if want("table1") {
		p := min(64, *pmax)
		tables = append(tables, experiments.Table1(p, *perPE/4, *k, *seed))
	}
	if want("amsbatch") {
		tables = append(tables, experiments.AblationAMSBatch(min(8, *pmax), *perPE/8,
			int64(*perPE)/4, int64(*perPE)/4+int64(*perPE)/256, *seed))
	}
	if want("pqflex") {
		tables = append(tables, experiments.AblationPQFlexible(min(8, *pmax), *perPE/8, int64(*k)*16, *seed))
	}
	if want("dht") {
		tables = append(tables, experiments.AblationDHTRouting(min(16, *pmax), 4096, *seed))
	}
	if want("redist") {
		tables = append(tables, experiments.AblationRedistribution(min(16, *pmax), *perPE/8, *seed))
	}
	if want("coll") {
		tables = append(tables, experiments.CollectivesScaling(pList))
	}

	if len(tables) == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	var sb strings.Builder
	for i := range tables {
		tables[i].Render(&sb)
	}
	fmt.Print(sb.String())
}
