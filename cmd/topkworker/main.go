// topkworker is a standalone wire-backend worker: it dials the leader's
// rendezvous socket, runs its PE group, and exits when the leader shuts
// the cluster down. Leaders that re-exec themselves (the default
// wire.Config.WorkerCommand) don't need it; it exists for explicitly
// heterogeneous launches (wire.Config{WorkerCommand: []string{"topkworker"}})
// and as the reference for what a worker binary must do: register the
// shared programs and codecs (import wireprogs), then hand the process to
// the wire worker loop.
package main

import (
	"flag"
	"fmt"
	"os"

	"commtopk/internal/wire"
	_ "commtopk/internal/wire/wireprogs"
)

func main() {
	wire.MaybeWorker() // env-based launch: does not return if COMMTOPK_WIRE_ADDR is set

	var (
		network = flag.String("network", "unix", "rendezvous network (unix or tcp)")
		addr    = flag.String("addr", "", "leader rendezvous address (required)")
		index   = flag.Int("index", -1, "worker group index (required, >= 1)")
	)
	flag.Parse()
	if *addr == "" || *index < 1 {
		fmt.Fprintln(os.Stderr, "topkworker: -addr and -index are required (or launch via the COMMTOPK_WIRE_* environment)")
		flag.Usage()
		os.Exit(2)
	}
	os.Exit(wire.WorkerMain(*network, *addr, *index))
}
