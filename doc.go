// Package commtopk is a communication-efficient distributed top-k selection
// library, reproducing "Communication Efficient Algorithms for Top-k
// Selection Problems" (Hübschle-Schneider, Sanders, Müller; IPDPS 2016).
//
// The library runs the paper's algorithms on a simulated distributed machine
// (internal/comm): p processing elements are goroutines exchanging messages
// over channels, with every message metered in machine words and startups so
// that the paper's cost model O(x + βy + αz) is directly observable.
//
// Entry points live in internal/core (high-level façade) and the per-problem
// packages internal/sel, internal/bpq, internal/freq, internal/agg,
// internal/mtopk and internal/redist. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for the reproduced evaluation.
package commtopk
