package bnb

import (
	"reflect"
	"testing"

	"commtopk/internal/comm"
)

// bnbObs captures everything observable from one distributed solve:
// per-PE results and the machine meters.
type bnbObs struct {
	res   []Result[KNode]
	stats comm.Stats
}

func solveBattery(p int, seed int64) bnbObs {
	k := RandomKnapsack(7, 18, 50)
	o := bnbObs{res: make([]Result[KNode], p)}
	mach := comm.NewMachine(comm.DefaultConfig(p))
	mach.MustRun(func(pe *comm.PE) {
		o.res[pe.Rank()] = Solve[KNode](pe, k, seed, Config{})
	})
	o.stats = mach.Stats()
	return o
}

// TestBnbRepeatedRunsBitIdentical pins the node-store satellite: with the
// map store replaced by the slot-indexed slice store there is no map
// iteration anywhere on the solve path, so repeated runs over the same
// instance must produce bit-identical results AND meters. Run with
// -count=5 in CI for the repeated-process variant.
func TestBnbRepeatedRunsBitIdentical(t *testing.T) {
	const p = 6
	ref := solveBattery(p, 99)
	for rep := 0; rep < 4; rep++ {
		got := solveBattery(p, 99)
		if !reflect.DeepEqual(got.res, ref.res) {
			t.Fatalf("rep %d: results diverged", rep)
		}
		if got.stats != ref.stats {
			t.Fatalf("rep %d: meters diverged: %+v vs %+v", rep, got.stats, ref.stats)
		}
	}
}

// TestBnbStepperMatchesBlocking pins the tentpole contract for bnb:
// SolveStep under RunAsync produces bit-identical results and meters to
// the blocking Solve (which drives the same machine through RunSteps).
func TestBnbStepperMatchesBlocking(t *testing.T) {
	const p = 6
	ref := solveBattery(p, 99)

	k := RandomKnapsack(7, 18, 50)
	got := bnbObs{res: make([]Result[KNode], p)}
	mach := comm.NewMachine(comm.DefaultConfig(p))
	mach.MustRunAsync(func(pe *comm.PE) comm.Stepper {
		r := pe.Rank()
		return SolveStep[KNode](pe, k, 99, Config{}, func(v Result[KNode]) { got.res[r] = v })
	})
	got.stats = mach.Stats()

	if !reflect.DeepEqual(got.res, ref.res) {
		t.Errorf("SolveStep diverged from blocking Solve")
	}
	if got.stats != ref.stats {
		t.Errorf("stepper meters diverged: %+v vs %+v", got.stats, ref.stats)
	}
}
