package bnb

import (
	"sort"

	"commtopk/internal/xrand"
)

// Knapsack is a 0/1 knapsack instance posed as a minimization problem for
// the branch-and-bound driver (we minimize the negated value). The bound
// is the classical fractional (greedy) relaxation, which is admissible.
type Knapsack struct {
	values   []int64 // sorted by density (value/weight) descending
	weights  []int64
	capacity int64
}

// KNode is a partial assignment: items before Level are decided.
type KNode struct {
	Level  int
	Value  int64
	Weight int64
}

// NewKnapsack builds an instance; items are re-sorted by density
// internally (the order the greedy bound needs).
func NewKnapsack(values, weights []int64, capacity int64) *Knapsack {
	if len(values) != len(weights) {
		panic("bnb: values/weights length mismatch")
	}
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		// density comparison without division: v_a*w_b > v_b*w_a
		return values[idx[a]]*weights[idx[b]] > values[idx[b]]*weights[idx[a]]
	})
	k := &Knapsack{capacity: capacity}
	for _, i := range idx {
		k.values = append(k.values, values[i])
		k.weights = append(k.weights, weights[i])
	}
	return k
}

// RandomKnapsack generates a reproducible instance with n items whose
// weights and values are weakly correlated.
func RandomKnapsack(seed int64, n int, maxWeight int64) *Knapsack {
	rng := xrand.New(seed)
	values := make([]int64, n)
	weights := make([]int64, n)
	var total int64
	for i := 0; i < n; i++ {
		weights[i] = 1 + rng.Int63n(maxWeight)
		values[i] = weights[i] + rng.Int63n(maxWeight/2+1) // correlated
		total += weights[i]
	}
	return NewKnapsack(values, weights, total/2)
}

// StronglyCorrelatedKnapsack generates the classical hard family for
// fractional-bound branch-and-bound: value_i = weight_i + bump, capacity
// half the total weight. Expansion counts grow quickly with n, making
// these the right instances for exercising the parallel search.
func StronglyCorrelatedKnapsack(seed int64, n int, maxWeight, bump int64) *Knapsack {
	rng := xrand.New(seed)
	values := make([]int64, n)
	weights := make([]int64, n)
	var total int64
	for i := 0; i < n; i++ {
		weights[i] = 1 + rng.Int63n(maxWeight)
		values[i] = weights[i] + bump
		total += weights[i]
	}
	return NewKnapsack(values, weights, total/2)
}

// NumItems returns the instance size.
func (k *Knapsack) NumItems() int { return len(k.values) }

// Root implements Problem.
func (k *Knapsack) Root() KNode { return KNode{} }

// Expand implements Problem: branch on including/excluding item Level.
func (k *Knapsack) Expand(n KNode) []KNode {
	if n.Level >= len(k.values) {
		return nil
	}
	out := make([]KNode, 0, 2)
	// Exclude.
	out = append(out, KNode{Level: n.Level + 1, Value: n.Value, Weight: n.Weight})
	// Include, if it fits.
	if w := n.Weight + k.weights[n.Level]; w <= k.capacity {
		out = append(out, KNode{Level: n.Level + 1, Value: n.Value + k.values[n.Level], Weight: w})
	}
	return out
}

// Solution implements Problem: a node is terminal once all items are
// decided; its objective is the negated packed value.
func (k *Knapsack) Solution(n KNode) (float64, bool) {
	if n.Level >= len(k.values) {
		return -float64(n.Value), true
	}
	return 0, false
}

// Bound implements Problem: the fractional-relaxation lower bound on the
// negated value (take remaining items greedily by density, last one
// fractionally).
func (k *Knapsack) Bound(n KNode) float64 {
	value := float64(n.Value)
	room := k.capacity - n.Weight
	for i := n.Level; i < len(k.values) && room > 0; i++ {
		if k.weights[i] <= room {
			value += float64(k.values[i])
			room -= k.weights[i]
		} else {
			value += float64(k.values[i]) * float64(room) / float64(k.weights[i])
			room = 0
		}
	}
	return -value
}

// OptimalByDP computes the exact optimum by dynamic programming over the
// capacity — the ground truth for tests; O(n·capacity).
func (k *Knapsack) OptimalByDP() int64 {
	dp := make([]int64, k.capacity+1)
	for i := range k.values {
		w, v := k.weights[i], k.values[i]
		for c := k.capacity; c >= w; c-- {
			if cand := dp[c-w] + v; cand > dp[c] {
				dp[c] = cand
			}
		}
	}
	return dp[k.capacity]
}
