package bnb

import (
	"math"

	"commtopk/internal/bpq"
	"commtopk/internal/coll"
	"commtopk/internal/comm"
)

func addI64(a, b int64) int64 { return a + b }
func minI64(a, b int64) int64 {
	if b < a {
		return b
	}
	return a
}

// nodeStore is the slice-backed replacement for the old map[uint64]N node
// store. The seq stamp baked into a queue key by bpq.MakeUnique is the
// node's slot index; slots of expanded nodes are recycled through a free
// list, so memory is bounded by the peak number of live nodes and lookups
// are a shift and an index — no hashing, no map iteration, no
// nondeterministic expansion order anywhere on the path.
//
// Slot reuse is safe for key uniqueness: a slot is freed only when its
// key has left the queue, and two live entries can never share a slot, so
// (prio, slot·P + rank) collides only with already-deleted keys — which
// the treap no longer contains.
type nodeStore[N any] struct {
	nodes []N
	free  []uint32
}

func (s *nodeStore[N]) put(n N) uint32 {
	if k := len(s.free); k > 0 {
		slot := s.free[k-1]
		s.free = s.free[:k-1]
		s.nodes[slot] = n
		return slot
	}
	s.nodes = append(s.nodes, n)
	return uint32(len(s.nodes) - 1)
}

func (s *nodeStore[N]) take(slot uint32) N {
	var zero N
	n := s.nodes[slot]
	s.nodes[slot] = zero
	s.free = append(s.free, slot)
	return n
}

func (s *nodeStore[N]) reset() {
	clear(s.nodes)
	s.nodes = s.nodes[:0]
	s.free = s.free[:0]
}

// solveStep phases.
const (
	sphLoop      = iota // start an iteration: global incumbent reduce
	sphIncWait          // harvest incumbent; start the global peek
	sphPeekWait         // harvest min; prune/stop test or start deleteMin*
	sphBatchWait        // batch expanded in the callback; next iteration
	sphObjWait          // harvest final objective; start holder election
	sphHoldWait         // harvest holder; start expansion-count sum
	sphExpWait          // harvest K; assemble the result
	sphDone
)

// solveStep is the continuation form of Solve: the whole best-first
// main loop as a pooled state machine over the queue's own steppers
// (PeekMinStep, DeleteMinFlexibleStep) and scalar reductions. The
// blocking Solve drives this very machine through comm.RunSteps — one
// implementation, both execution modes, bit-identical results, RNG
// consumption and metered schedule.
type solveStep[N any] struct {
	pe   *comm.PE
	prob Problem[N]
	cfg  Config
	out  func(Result[N])
	self bool

	q     *bpq.Queue[uint64]
	store nodeStore[N]

	incumbent float64
	best      N
	found     bool
	expanded  int64
	iter      int

	globalInc float64
	minKey    uint64
	minOK     bool
	holder    int64
	early     bool

	res Result[N]

	cur     comm.Stepper
	onInc   func(float64)
	onPeek  func(uint64, bool)
	onBatch func([]uint64, uint64, int64)
	onObj   func(float64)
	onHold  func(int64)
	onExp   func(int64)
	phase   int
}

func newSolveStep[N any](pe *comm.PE, prob Problem[N], seed int64, cfg Config, out func(Result[N]), self bool) *solveStep[N] {
	p := int64(pe.P())
	if cfg.BatchMin <= 0 {
		cfg.BatchMin = p
	}
	if cfg.BatchMax <= cfg.BatchMin {
		cfg.BatchMax = 4 * cfg.BatchMin
	}

	s := comm.GetPooled[solveStep[N]](pe)
	s.pe, s.prob, s.cfg, s.out, s.self = pe, prob, cfg, out, self
	s.q = bpq.New[uint64](pe, seed)
	s.incumbent = math.Inf(1)
	var zero N
	s.best = zero
	s.found, s.expanded, s.iter = false, 0, 0
	s.early = false
	s.res = Result[N]{}
	s.phase = sphLoop
	s.cur = nil
	if s.onInc == nil {
		s.onInc = func(v float64) { s.globalInc = v }
		s.onPeek = func(k uint64, ok bool) { s.minKey, s.minOK = k, ok }
		s.onBatch = func(batch []uint64, _ uint64, _ int64) { s.consume(batch) }
		s.onObj = func(v float64) { s.res.Objective = v }
		s.onHold = func(v int64) { s.holder = v }
		s.onExp = func(v int64) { s.res.Expanded = v }
	}

	if pe.Rank() == 0 {
		root := prob.Root()
		if v, ok := prob.Solution(root); ok {
			s.res = Result[N]{Objective: v, Best: root, Found: true}
			s.early = true
		} else {
			s.push(root, prob.Bound(root))
		}
	}
	return s
}

// SolveStep is the continuation form of Solve: out (optional) receives
// this PE's Result once the search terminates. Collective; interleaves
// with unrelated steppers under comm.RunAsync.
func SolveStep[N any](pe *comm.PE, prob Problem[N], seed int64, cfg Config, out func(Result[N])) comm.Stepper {
	return newSolveStep(pe, prob, seed, cfg, out, true)
}

func (s *solveStep[N]) push(n N, bound float64) {
	slot := s.store.put(n)
	s.q.Insert(bpq.MakeUnique(PrioFromFloat(bound), slot, s.pe.Rank(), s.pe.P()))
}

// consume expands this PE's share of a deleteMin* batch: slot-decoded
// node fetch, prune against the round's global incumbent, expansion and
// local re-insertion of surviving children.
func (s *solveStep[N]) consume(batch []uint64) {
	p, rank := uint32(s.pe.P()), uint32(s.pe.Rank())
	for _, key := range batch {
		low := uint32(key)
		if low%p != rank {
			panic("bnb: batch key was not stamped by this PE")
		}
		n := s.store.take(low / p)
		if FloatFromPrio(uint32(key>>32)) >= s.globalInc {
			continue // pruned: bound can no longer beat the incumbent
		}
		s.expanded++
		for _, c := range s.prob.Expand(n) {
			if v, ok := s.prob.Solution(c); ok {
				if v < s.incumbent {
					s.incumbent, s.best, s.found = v, c, true
				}
				continue
			}
			if b := s.prob.Bound(c); b < s.incumbent {
				s.push(c, b)
			}
		}
	}
}

func (s *solveStep[N]) finish(pe *comm.PE) *comm.RecvHandle {
	if !s.early {
		s.res.Iterations = s.iter
		if s.found && int64(pe.Rank()) == s.holder {
			s.res.Best = s.best
			s.res.Found = true
		}
	}
	s.phase = sphDone
	if s.self {
		res, out := s.res, s.out
		s.release(pe)
		if out != nil {
			out(res)
		}
	}
	return nil
}

func (s *solveStep[N]) release(pe *comm.PE) {
	var zero N
	s.pe, s.prob, s.out, s.cur, s.q = nil, nil, nil, nil, nil
	s.best, s.res.Best = zero, zero
	s.store.reset()
	comm.PutPooled(pe, s)
}

func (s *solveStep[N]) Step(pe *comm.PE) *comm.RecvHandle {
	for {
		if s.cur != nil {
			if h := s.cur.Step(pe); h != nil {
				return h
			}
			s.cur = nil
		}
		switch s.phase {
		case sphLoop:
			if s.early {
				return s.finish(pe)
			}
			s.iter++
			s.cur = coll.AllReduceScalarStep(pe, s.incumbent, math.Min, s.onInc)
			s.phase = sphIncWait
		case sphIncWait:
			s.cur = s.q.PeekMinStep(s.onPeek)
			s.phase = sphPeekWait
		case sphPeekWait:
			// Downward-rounded priorities make this prune-or-stop test safe.
			if !s.minOK || FloatFromPrio(uint32(s.minKey>>32)) >= s.globalInc {
				s.cur = coll.AllReduceScalarStep(pe, s.incumbent, math.Min, s.onObj)
				s.phase = sphObjWait
				break
			}
			s.cur = s.q.DeleteMinFlexibleStep(s.cfg.BatchMin, s.cfg.BatchMax, s.onBatch)
			s.phase = sphBatchWait
		case sphBatchWait:
			s.phase = sphLoop
		case sphObjWait:
			// Exactly one PE claims the optimum (lowest rank among holders).
			h := int64(pe.P())
			if s.found && s.incumbent == s.res.Objective {
				h = int64(pe.Rank())
			}
			s.cur = coll.AllReduceScalarStep(pe, h, minI64, s.onHold)
			s.phase = sphHoldWait
		case sphHoldWait:
			s.cur = coll.AllReduceScalarStep(pe, s.expanded, addI64, s.onExp)
			s.phase = sphExpWait
		case sphExpWait:
			return s.finish(pe)
		default:
			return nil
		}
	}
}
