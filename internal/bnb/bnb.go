// Package bnb is a distributed best-first branch-and-bound driver on top
// of the bulk-parallel priority queue — the application Section 5 of the
// paper uses to motivate flexible batch sizes: "In iteration i of its main
// loop, it deletes the smallest k_i = O(p) elements from the queue,
// expands these nodes in parallel, and inserts newly generated elements."
//
// Newly generated nodes are inserted into the *local* queue (the
// communication-efficient property: a typical computation inserts far
// more nodes than it removes, and local insertion makes those free),
// while deleteMin* keeps every PE working on globally best-first nodes.
package bnb

import (
	"math"

	"commtopk/internal/comm"
)

// Problem defines a minimization branch-and-bound search over nodes of
// type N. Bounds must be admissible (never exceed the true best objective
// reachable from the node) for the search to be exact.
type Problem[N any] interface {
	// Root returns the initial node.
	Root() N
	// Expand returns the children of a (non-terminal) node.
	Expand(n N) []N
	// Bound returns a lower bound on any objective reachable from n.
	Bound(n N) float64
	// Solution returns (objective, true) if n is a complete solution.
	Solution(n N) (float64, bool)
}

// Config tunes the driver.
type Config struct {
	// BatchMin/BatchMax bound the flexible deleteMin* batch size per
	// iteration. Zero values default to p and 4p (the paper's k_i = O(p)).
	BatchMin, BatchMax int64
}

// Result summarizes a finished search.
type Result[N any] struct {
	// Objective is the optimal objective value (+Inf if no solution).
	Objective float64
	// Best is the optimal node on the PE that found it; valid where
	// Found is true (exactly one PE).
	Best N
	// Found reports whether this PE holds the optimal node.
	Found bool
	// Expanded is the global number of expanded nodes (the paper's K).
	Expanded int64
	// Iterations is the number of deleteMin* rounds.
	Iterations int
}

// PrioFromFloat maps a float64 to a uint32 whose unsigned order matches
// the float order (sign-flip trick), rounding *down* so that a node's
// encoded priority never exceeds its true bound — guaranteeing the
// termination test errs toward extra work, never toward premature stops.
func PrioFromFloat(f float64) uint32 {
	f32 := float32(f)
	if float64(f32) > f {
		f32 = math.Nextafter32(f32, float32(math.Inf(-1)))
	}
	u := math.Float32bits(f32)
	if u&0x80000000 != 0 {
		return ^u
	}
	return u | 0x80000000
}

// FloatFromPrio inverts PrioFromFloat (up to the downward rounding).
func FloatFromPrio(u uint32) float64 {
	if u&0x80000000 != 0 {
		return float64(math.Float32frombits(u &^ 0x80000000))
	}
	return float64(math.Float32frombits(^u))
}

// Solve runs the distributed search. Collective: every PE must call it
// with the same problem and seed. The returned Expanded/Objective/
// Iterations agree on all PEs; Found is true on exactly one PE (if a
// solution exists), whose Best holds the optimum. Blocking driver over
// the same state machine SolveStep exposes for comm.RunAsync.
func Solve[N any](pe *comm.PE, prob Problem[N], seed int64, cfg Config) Result[N] {
	st := newSolveStep(pe, prob, seed, cfg, nil, false)
	comm.RunSteps(pe, st)
	res := st.res
	st.release(pe)
	return res
}

// SolveSequential is the single-threaded best-first reference (the
// paper's m in K = m + O(hp)): same problem interface, plain binary heap.
func SolveSequential[N any](prob Problem[N]) (objective float64, best N, found bool, expanded int64) {
	type entry struct {
		bound float64
		node  N
	}
	var heap []entry
	pushH := func(e entry) {
		heap = append(heap, e)
		i := len(heap) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if heap[parent].bound <= heap[i].bound {
				break
			}
			heap[parent], heap[i] = heap[i], heap[parent]
			i = parent
		}
	}
	popH := func() entry {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < len(heap) && heap[l].bound < heap[smallest].bound {
				smallest = l
			}
			if r < len(heap) && heap[r].bound < heap[smallest].bound {
				smallest = r
			}
			if smallest == i {
				break
			}
			heap[i], heap[smallest] = heap[smallest], heap[i]
			i = smallest
		}
		return top
	}

	incumbent := math.Inf(1)
	root := prob.Root()
	if v, ok := prob.Solution(root); ok {
		return v, root, true, 0
	}
	pushH(entry{prob.Bound(root), root})
	for len(heap) > 0 {
		e := popH()
		if e.bound >= incumbent {
			break // best-first: everything else is worse
		}
		expanded++
		for _, c := range prob.Expand(e.node) {
			if v, ok := prob.Solution(c); ok {
				if v < incumbent {
					incumbent, best, found = v, c, true
				}
				continue
			}
			if b := prob.Bound(c); b < incumbent {
				pushH(entry{b, c})
			}
		}
	}
	return incumbent, best, found, expanded
}
