package bnb

import (
	"math"
	"testing"

	"commtopk/internal/comm"
)

func TestPrioFloatRoundTripOrder(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e30, -5.5, -1, -1e-10, 0, 1e-10, 1, 2.5, 1e30, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		a, b := PrioFromFloat(vals[i-1]), PrioFromFloat(vals[i])
		if a >= b {
			t.Errorf("order broken: Prio(%v)=%d >= Prio(%v)=%d", vals[i-1], a, vals[i], b)
		}
	}
	// Downward rounding: decoded value never exceeds the input.
	for _, v := range []float64{-1234.567, -1e-20, 0.1, 3.14159, 1e20} {
		if dec := FloatFromPrio(PrioFromFloat(v)); dec > v {
			t.Errorf("FloatFromPrio(PrioFromFloat(%v)) = %v rounds up", v, dec)
		}
	}
}

func TestSequentialKnapsackMatchesDP(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		k := RandomKnapsack(seed, 18, 50)
		obj, best, found, expanded := SolveSequential[KNode](k)
		if !found {
			t.Fatalf("seed %d: no solution found", seed)
		}
		if want := -float64(k.OptimalByDP()); obj != want {
			t.Errorf("seed %d: sequential objective %v, want %v", seed, obj, want)
		}
		if best.Level != k.NumItems() {
			t.Errorf("seed %d: best node not terminal", seed)
		}
		if expanded < 1 {
			t.Errorf("seed %d: expanded %d nodes", seed, expanded)
		}
	}
}

func TestDistributedKnapsackMatchesDP(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		for seed := int64(1); seed <= 4; seed++ {
			k := RandomKnapsack(seed, 16, 40)
			want := -float64(k.OptimalByDP())
			m := comm.NewMachine(comm.DefaultConfig(p))
			founds := make([]bool, p)
			m.MustRun(func(pe *comm.PE) {
				res := Solve[KNode](pe, k, 99, Config{})
				if res.Objective != want {
					t.Errorf("p=%d seed=%d: objective %v, want %v", p, seed, res.Objective, want)
				}
				founds[pe.Rank()] = res.Found
				if res.Found {
					if v, ok := k.Solution(res.Best); !ok || v != res.Objective {
						t.Errorf("p=%d seed=%d: Best node inconsistent with objective", p, seed)
					}
				}
			})
			holders := 0
			for _, f := range founds {
				if f {
					holders++
				}
			}
			if holders != 1 {
				t.Errorf("p=%d seed=%d: %d PEs claim the optimum", p, seed, holders)
			}
		}
	}
}

func TestParallelExpansionOverheadBounded(t *testing.T) {
	// K = m + O(hp): parallel expansion count should stay within a small
	// multiple of sequential for these instances.
	k := RandomKnapsack(42, 20, 60)
	_, _, _, seq := SolveSequential[KNode](k)
	const p = 4
	m := comm.NewMachine(comm.DefaultConfig(p))
	var par int64
	m.MustRun(func(pe *comm.PE) {
		res := Solve[KNode](pe, k, 7, Config{})
		if pe.Rank() == 0 {
			par = res.Expanded
		}
	})
	h := int64(k.NumItems())
	if par > seq+40*h*p {
		t.Errorf("parallel expanded %d vs sequential %d (allowance %d)", par, seq, seq+40*h*p)
	}
}

func TestSolveTrivialRootSolution(t *testing.T) {
	// Zero-item knapsack: root is already terminal.
	k := NewKnapsack(nil, nil, 10)
	obj, _, found, _ := SolveSequential[KNode](k)
	if !found || obj != 0 {
		t.Errorf("trivial sequential: %v %v", obj, found)
	}
}

func TestBoundIsAdmissible(t *testing.T) {
	// The fractional bound at the root must not exceed (in minimization,
	// must not be above) the true optimum.
	for seed := int64(1); seed <= 6; seed++ {
		k := RandomKnapsack(seed, 15, 30)
		rootBound := k.Bound(k.Root())
		opt := -float64(k.OptimalByDP())
		if rootBound > opt+1e-9 {
			t.Errorf("seed %d: root bound %v exceeds optimum %v (inadmissible)", seed, rootBound, opt)
		}
	}
}

func TestKnapsackExpand(t *testing.T) {
	k := NewKnapsack([]int64{10, 5}, []int64{4, 3}, 5)
	children := k.Expand(k.Root())
	if len(children) != 2 {
		t.Fatalf("root children = %d", len(children))
	}
	// After taking item 0 (weight 4), item 1 (weight 3) no longer fits.
	var take KNode
	for _, c := range children {
		if c.Weight > 0 {
			take = c
		}
	}
	grand := k.Expand(take)
	if len(grand) != 1 {
		t.Errorf("overweight child was generated: %v", grand)
	}
	if v, ok := k.Solution(grand[0]); !ok || v != -10 {
		t.Errorf("leaf solution = %v,%v", v, ok)
	}
}
