// Package commbuf provides typed, sync.Pool-backed slice buffers for the
// communication hot paths. The collectives in internal/coll move a message
// buffer through a strict ownership hand-off: the sender obtains a buffer
// with Get, fills it, and sends the *[]T pointer (a pointer stored in an
// interface does not allocate, unlike a slice header); the receiver reads
// or combines the contents and returns the buffer with Put. Because
// exactly one PE owns a buffer at any time, recycling is race-free even
// though the pools are shared process-wide.
//
// Buffers are pooled per element type. The per-type pools are resolved
// once per call via a lock-free registry keyed by reflect.Type; callers on
// a very hot path can hoist the For[T]() lookup out of their loop.
package commbuf

import (
	"reflect"
	"sync"
)

// Pool is a free list of []T buffers backed by sync.Pool. The zero value
// is ready to use. Buffers handed out by Get have unspecified contents.
type Pool[T any] struct {
	p sync.Pool
}

// Get returns a buffer of length n (capacity may exceed n). The caller
// owns the buffer until it calls Put or hands ownership to another owner.
func (pl *Pool[T]) Get(n int) *[]T {
	if v := pl.p.Get(); v != nil {
		b := v.(*[]T)
		if cap(*b) >= n {
			*b = (*b)[:n]
			return b
		}
		// Too small: let it die and allocate a bigger one below.
	}
	b := make([]T, n, grow(n))
	return &b
}

// GetCap returns an empty buffer (length 0) with capacity at least c, for
// append-style filling. Pair with Put like Get.
func (pl *Pool[T]) GetCap(c int) *[]T {
	b := pl.Get(c)
	*b = (*b)[:0]
	return b
}

// Put recycles a buffer obtained from Get/GetCap (or any slice the caller
// owns outright). The caller must not touch the slice afterwards. nil is
// ignored so Put composes with conditional ownership transfers.
func (pl *Pool[T]) Put(b *[]T) {
	if b == nil || cap(*b) == 0 {
		return
	}
	pl.p.Put(b)
}

// grow rounds a requested length up so that a buffer recycled through the
// pool absorbs moderately larger follow-up requests without reallocating.
func grow(n int) int {
	if n < 8 {
		return 8
	}
	// Next power of two ≥ n (caps the worst-case overshoot at 2×).
	c := 8
	for c < n {
		c <<= 1
		if c < 0 { // overflow paranoia; fall back to the exact size
			return n
		}
	}
	return c
}

// pools maps reflect.Type → *Pool[T] (stored as any).
var pools sync.Map

// For returns the process-wide pool for element type T.
func For[T any]() *Pool[T] {
	t := reflect.TypeFor[T]()
	if v, ok := pools.Load(t); ok {
		return v.(*Pool[T])
	}
	v, _ := pools.LoadOrStore(t, &Pool[T]{})
	return v.(*Pool[T])
}

// Get is shorthand for For[T]().Get(n).
func Get[T any](n int) *[]T { return For[T]().Get(n) }

// GetCap is shorthand for For[T]().GetCap(c).
func GetCap[T any](c int) *[]T { return For[T]().GetCap(c) }

// Put is shorthand for For[T]().Put(b).
func Put[T any](b *[]T) { For[T]().Put(b) }

// Resize returns s with length n, reusing s's backing array when the
// capacity suffices and allocating (amortized, geometric) otherwise. The
// contents beyond the copied prefix are unspecified. It is the allocation
// primitive for caller-provided destination buffers (the *Into collectives).
func Resize[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	out := make([]T, n, grow(n))
	copy(out, s[:len(s)])
	return out
}
