package core

import (
	"slices"
	"testing"

	"commtopk/internal/agg"
	"commtopk/internal/comm"
	"commtopk/internal/freq"
	"commtopk/internal/mtopk"
	"commtopk/internal/stats"
	"commtopk/internal/xrand"
)

func TestSplit(t *testing.T) {
	global := make([]int, 10)
	parts := Split(global, 3)
	if len(parts) != 3 {
		t.Fatalf("parts %d", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 10 {
		t.Errorf("split lost elements: %d", total)
	}
	// Near-even.
	for _, p := range parts {
		if len(p) < 3 || len(p) > 4 {
			t.Errorf("uneven split: %d", len(p))
		}
	}
	// p > len.
	parts2 := Split([]int{1, 2}, 5)
	total2 := 0
	for _, p := range parts2 {
		total2 += len(p)
	}
	if total2 != 2 {
		t.Error("oversplit lost elements")
	}
}

func TestTopKSmallest(t *testing.T) {
	rng := xrand.New(1)
	global := make([]uint64, 5000)
	for i := range global {
		global[i] = rng.Uint64() % 100000
	}
	sorted := slices.Clone(global)
	slices.Sort(sorted)

	c := New(6, WithSeed(7))
	got, err := c.TopKSmallest(Split(global, 6), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, sorted[:100]) {
		t.Error("TopKSmallest mismatch")
	}
}

func TestTopKFrequentAllAlgorithms(t *testing.T) {
	rng := xrand.New(2)
	global := make([]uint64, 20000)
	for i := range global {
		global[i] = uint64(rng.Intn(50)) * uint64(rng.Intn(50)) // skewed
	}
	exact := stats.Count(global)
	n := int64(len(global))
	params := freq.Params{K: 5, Eps: 0.02, Delta: 0.01}
	for _, algo := range []string{"pac", "ec", "ecsbf", "naive", "naivetree"} {
		c := New(4, WithSeed(11))
		res, err := c.TopKFrequent(Split(global, 4), params, algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(res.Items) != 5 {
			t.Fatalf("%s: %d items", algo, len(res.Items))
		}
		keys := make([]uint64, len(res.Items))
		for i, it := range res.Items {
			keys[i] = it.Key
		}
		if e := stats.EpsTilde(exact, keys, n); e > params.Eps {
			t.Errorf("%s: ε̃=%v", algo, e)
		}
	}
	c := New(2)
	if _, err := c.TopKFrequent(Split(global, 2), params, "bogus"); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestTopKSums(t *testing.T) {
	rng := xrand.New(3)
	n := 10000
	keys := make([]uint64, n)
	vals := make([]float64, n)
	exact := map[uint64]float64{}
	for i := range keys {
		keys[i] = uint64(rng.Intn(100))
		vals[i] = rng.Float64()
		if keys[i] == 7 {
			vals[i] += 5 // make key 7 dominate
		}
		exact[keys[i]] += vals[i]
	}
	c := New(4, WithSeed(13))
	res, err := c.TopKSums(Split(keys, 4), Split(vals, 4), agg.Params{K: 3, Eps: 0.01, Delta: 0.01}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 3 || res.Items[0].Key != 7 {
		t.Errorf("TopKSums = %+v", res.Items)
	}
}

func TestTopKMulticriteria(t *testing.T) {
	var objs []mtopk.Object
	for r := 0; r < 4; r++ {
		objs = append(objs, mtopk.GenObjects(xrand.NewPE(5, r), 200, 3, uint64(r)<<32)...)
	}
	globalData := mtopk.NewData(objs, 3)
	want := mtopk.BruteForceTopK(globalData, mtopk.SumScore, 7)

	c := New(4, WithSeed(17))
	got, err := c.TopKMulticriteria(Split(objs, 4), 3, mtopk.SumScore, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("got %d hits", len(got))
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Errorf("rank %d: id %d, want %d", i, got[i].ID, want[i].ID)
		}
	}
}

func TestBalanceLoad(t *testing.T) {
	locals := [][]uint64{make([]uint64, 100), nil, nil, nil}
	for i := range locals[0] {
		locals[0][i] = uint64(i)
	}
	c := New(4)
	out, err := c.BalanceLoad(locals)
	if err != nil {
		t.Fatal(err)
	}
	for r, l := range out {
		if len(l) > 25 {
			t.Errorf("PE %d holds %d > 25", r, len(l))
		}
	}
}

func TestClusterOptionsAndStats(t *testing.T) {
	c := New(2, WithCosts(5, 2), WithSeed(99))
	if c.P() != 2 {
		t.Fatal("P wrong")
	}
	c.MustRun(func(pe *comm.PE) {})
	_ = c.Stats()
	c.ResetStats()
	if s := c.Stats(); s.TotalWords != 0 {
		t.Error("reset failed")
	}
}

func TestPartsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched parts should panic")
		}
	}()
	c := New(3)
	c.TopKSmallest([][]uint64{nil}, 1)
}
