// Package core is the high-level façade of the library: it wires a
// simulated cluster (internal/comm) to the paper's algorithm packages and
// offers one-call APIs for the common queries — the entry point the
// examples and command-line tools use.
//
// For full control (custom SPMD programs, combining algorithms,
// inspecting communication statistics mid-run) use Cluster.Run with the
// algorithm packages directly; every algorithm is an ordinary function
// over a *comm.PE.
package core

import (
	"fmt"
	"slices"
	"sort"

	"commtopk/internal/agg"
	"commtopk/internal/comm"
	"commtopk/internal/freq"
	"commtopk/internal/mtopk"
	"commtopk/internal/redist"
	"commtopk/internal/sel"
	"commtopk/internal/xrand"
)

// Cluster is a simulated distributed machine plus the bookkeeping the
// high-level APIs need.
type Cluster struct {
	m    *comm.Machine
	seed int64
}

// Option adjusts the cluster configuration.
type Option func(*comm.Config)

// WithCosts sets the modeled per-message startup cost α and per-word
// transfer cost β used by the virtual communication clock.
func WithCosts(alpha, beta float64) Option {
	return func(c *comm.Config) { c.Alpha, c.Beta = alpha, beta }
}

// WithSeed seeds all deterministic random streams.
func WithSeed(seed int64) Option {
	return func(c *comm.Config) { c.Seed = seed }
}

// New creates a cluster of p processing elements.
func New(p int, opts ...Option) *Cluster {
	cfg := comm.DefaultConfig(p)
	for _, o := range opts {
		o(&cfg)
	}
	return &Cluster{m: comm.NewMachine(cfg), seed: cfg.Seed}
}

// P returns the number of PEs.
func (c *Cluster) P() int { return c.m.P() }

// Run executes an SPMD body on all PEs (see comm.Machine.Run).
func (c *Cluster) Run(body func(pe *comm.PE)) error { return c.m.Run(body) }

// MustRun is Run but panics on error.
func (c *Cluster) MustRun(body func(pe *comm.PE)) { c.m.MustRun(body) }

// Stats returns aggregate communication statistics of the last run(s).
func (c *Cluster) Stats() comm.Stats { return c.m.Stats() }

// ResetStats zeroes the communication statistics.
func (c *Cluster) ResetStats() { c.m.ResetStats() }

// Split partitions a global slice into p contiguous, near-even parts —
// the standard way to feed a single dataset to the cluster APIs.
func Split[T any](global []T, p int) [][]T {
	parts := make([][]T, p)
	for i := 0; i < p; i++ {
		lo := len(global) * i / p
		hi := len(global) * (i + 1) / p
		parts[i] = global[lo:hi]
	}
	return parts
}

func (c *Cluster) checkParts(got int) {
	if got != c.P() {
		panic(fmt.Sprintf("core: %d per-PE inputs for a %d-PE cluster", got, c.P()))
	}
}

// TopKSmallest returns the k globally smallest elements (unsorted
// selection, Section 4.1), gathered in ascending order.
func (c *Cluster) TopKSmallest(locals [][]uint64, k int64) ([]uint64, error) {
	c.checkParts(len(locals))
	shares := make([][]uint64, c.P())
	err := c.Run(func(pe *comm.PE) {
		rng := xrand.NewPE(c.seed, pe.Rank())
		shares[pe.Rank()] = sel.SmallestK(pe, locals[pe.Rank()], k, rng)
	})
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, s := range shares {
		out = append(out, s...)
	}
	sortUint64(out)
	return out, nil
}

// TopKFrequent returns the k most frequent objects using the given
// algorithm ("pac", "ec", "ecsbf", "naive", "naivetree").
func (c *Cluster) TopKFrequent(locals [][]uint64, params freq.Params, algorithm string) (freq.Result, error) {
	c.checkParts(len(locals))
	var res freq.Result
	err := c.Run(func(pe *comm.PE) {
		rng := xrand.NewPE(c.seed+1, pe.Rank())
		var r freq.Result
		switch algorithm {
		case "pac":
			r = freq.PAC(pe, locals[pe.Rank()], params, rng)
		case "ec":
			r = freq.EC(pe, locals[pe.Rank()], params, rng)
		case "ecsbf":
			r = freq.ECSBF(pe, locals[pe.Rank()], params, rng)
		case "naive":
			r = freq.Naive(pe, locals[pe.Rank()], params, rng)
		case "naivetree":
			r = freq.NaiveTree(pe, locals[pe.Rank()], params, rng)
		default:
			panic(fmt.Sprintf("core: unknown frequent-objects algorithm %q", algorithm))
		}
		if pe.Rank() == 0 {
			res = r
		}
	})
	return res, err
}

// TopKSums returns the k keys with the largest value sums (Section 8);
// exact selects the exact-summation variant.
func (c *Cluster) TopKSums(keys [][]uint64, values [][]float64, params agg.Params, exact bool) (agg.Result, error) {
	c.checkParts(len(keys))
	c.checkParts(len(values))
	var res agg.Result
	err := c.Run(func(pe *comm.PE) {
		rng := xrand.NewPE(c.seed+2, pe.Rank())
		var r agg.Result
		if exact {
			r = agg.ECSum(pe, keys[pe.Rank()], values[pe.Rank()], params, rng)
		} else {
			r = agg.PAC(pe, keys[pe.Rank()], values[pe.Rank()], params, rng)
		}
		if pe.Rank() == 0 {
			res = r
		}
	})
	return res, err
}

// TopKMulticriteria returns the k most relevant objects under the
// monotone scoring function t (Section 6, algorithm DTA), best first.
func (c *Cluster) TopKMulticriteria(objects [][]mtopk.Object, m int, t mtopk.ScoreFunc, k int) ([]mtopk.Hit, error) {
	c.checkParts(len(objects))
	shares := make([][]mtopk.Hit, c.P())
	err := c.Run(func(pe *comm.PE) {
		d := mtopk.NewData(objects[pe.Rank()], m)
		rng := xrand.NewPE(c.seed+3, pe.Rank())
		share, _ := mtopk.TopK(pe, d, t, k, rng)
		shares[pe.Rank()] = share
	})
	if err != nil {
		return nil, err
	}
	var out []mtopk.Hit
	for _, s := range shares {
		out = append(out, s...)
	}
	sortHitsDesc(out)
	return out, nil
}

// BalanceLoad redistributes per-PE slices so every PE holds at most
// ⌈n/p⌉ objects, moving only surplus data (Section 9).
func (c *Cluster) BalanceLoad(locals [][]uint64) ([][]uint64, error) {
	c.checkParts(len(locals))
	out := make([][]uint64, c.P())
	err := c.Run(func(pe *comm.PE) {
		out[pe.Rank()] = redist.Balance(pe, locals[pe.Rank()])
	})
	return out, err
}

func sortUint64(s []uint64) { slices.Sort(s) }

func sortHitsDesc(hits []mtopk.Hit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
}
