// Package gen produces the synthetic workloads of the paper's evaluation
// (Section 10): Zipf-distributed object streams, the per-PE randomized
// Zipf inputs of Section 10.1, negative-binomial frequency workloads,
// weighted keys for sum aggregation, and multicriteria score lists.
package gen

import (
	"math"

	"commtopk/internal/xrand"
)

// Zipf samples ranks 1..N with P(i) ∝ i^{-s} using a precomputed alias
// table (Vose), so sampling is O(1) per draw after O(N) setup.
type Zipf struct {
	n     int
	alias []int32
	prob  []float64
}

// NewZipf builds a Zipf(s) sampler over the universe 1..n.
func NewZipf(n int, s float64) *Zipf {
	if n < 1 {
		panic("gen: Zipf universe must be >= 1")
	}
	w := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		w[i] = math.Pow(float64(i+1), -s)
		total += w[i]
	}
	z := &Zipf{n: n, alias: make([]int32, n), prob: make([]float64, n)}
	// Vose alias method.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		scaled[i] = w[i] * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s0 := small[len(small)-1]
		small = small[:len(small)-1]
		l0 := large[len(large)-1]
		large = large[:len(large)-1]
		z.prob[s0] = scaled[s0]
		z.alias[s0] = l0
		scaled[l0] = scaled[l0] + scaled[s0] - 1
		if scaled[l0] < 1 {
			small = append(small, l0)
		} else {
			large = append(large, l0)
		}
	}
	for _, i := range large {
		z.prob[i] = 1
	}
	for _, i := range small {
		z.prob[i] = 1
	}
	return z
}

// N returns the universe size.
func (z *Zipf) N() int { return z.n }

// Draw returns a rank in 1..N (1 = most frequent).
func (z *Zipf) Draw(rng *xrand.RNG) uint64 {
	i := rng.Intn(z.n)
	if rng.Float64() < z.prob[i] {
		return uint64(i + 1)
	}
	return uint64(z.alias[i] + 1)
}

// Fill fills out with Zipf draws.
func (z *Zipf) Fill(rng *xrand.RNG, out []uint64) {
	for i := range out {
		out[i] = z.Draw(rng)
	}
}

// HarmonicGeneralized returns H_{n,s} = Σ_{i=1..n} i^{-s}. Exact summation
// up to the cutoff, Euler–Maclaurin tail beyond it.
func HarmonicGeneralized(n int64, s float64) float64 {
	const cutoff = 1 << 21
	if n <= cutoff {
		var h float64
		for i := int64(1); i <= n; i++ {
			h += math.Pow(float64(i), -s)
		}
		return h
	}
	h := HarmonicGeneralized(cutoff, s)
	// ∫_{cutoff}^{n} x^-s dx + midpoint corrections.
	a, b := float64(cutoff), float64(n)
	if s == 1 {
		h += math.Log(b) - math.Log(a)
	} else {
		h += (math.Pow(b, 1-s) - math.Pow(a, 1-s)) / (1 - s)
	}
	h += 0.5 * (math.Pow(b, -s) - math.Pow(a, -s))
	return h
}

// ZipfCount returns the expected count x_i = n·i^{-s}/H_{N,s} of the rank-i
// object in a length-n Zipf(s) stream over universe N (paper Section 7.3).
func ZipfCount(n int64, universe int64, s float64, i int64) float64 {
	return float64(n) * math.Pow(float64(i), -s) / HarmonicGeneralized(universe, s)
}

// SelectionInput generates the Section 10.1 workload for one PE: values
// from the high tail of a Zipf distribution where the universe size is
// drawn uniformly from [2^logU − 2^(logU−4), 2^logU] and the exponent s
// uniformly from [1, 1.2], so the input is asymmetric across PEs without
// becoming a single-PE local problem.
func SelectionInput(rng *xrand.RNG, perPE int, logU int) []uint64 {
	if logU < 5 {
		logU = 5
	}
	uMax := int64(1) << logU
	uMin := uMax - uMax/16
	universe := uMin + rng.Int63n(uMax-uMin+1)
	s := 1 + 0.2*rng.Float64()
	z := NewZipf(int(universe), s)
	out := make([]uint64, perPE)
	for i := range out {
		// High tail: larger values are rarer; invert the rank so that
		// "largest" elements are the interesting selection targets.
		out[i] = uint64(universe) - z.Draw(rng) + 1
	}
	return out
}

// FrequencyInput generates the Section 10.2 workload for one PE: perPE
// objects drawn from a Zipf(s) distribution over a universe of size
// universe (the paper uses 2^20 possible values, s = 1).
func FrequencyInput(rng *xrand.RNG, z *Zipf, perPE int) []uint64 {
	out := make([]uint64, perPE)
	z.Fill(rng, out)
	return out
}

// NegBinomialInput generates the alternative Section 10.2 workload: object
// IDs drawn from a negative binomial distribution with r failures and
// success probability p — a wide plateau of near-equal frequencies.
func NegBinomialInput(rng *xrand.RNG, perPE int, r float64, p float64) []uint64 {
	out := make([]uint64, perPE)
	for i := range out {
		out[i] = uint64(rng.NegBinomial(r, p))
	}
	return out
}

// WeightedInput generates (key, value) pairs for sum aggregation: keys
// Zipf-distributed, values exponential-ish magnitudes so sums differ from
// plain frequencies.
func WeightedInput(rng *xrand.RNG, z *Zipf, perPE int) (keys []uint64, values []float64) {
	keys = make([]uint64, perPE)
	values = make([]float64, perPE)
	for i := range keys {
		keys[i] = z.Draw(rng)
		values[i] = -math.Log(1 - rng.Float64()) // Exp(1)
	}
	return keys, values
}

// GappedFrequencies builds a frequency table with an explicit gap for the
// PEC experiments (Figure 5): the k head objects each occur headCount
// times, the remaining tail objects occur tailCount times each
// (headCount >> tailCount creates the exploitable gap).
func GappedFrequencies(k int, headCount int, tailObjects int, tailCount int) map[uint64]int64 {
	freq := make(map[uint64]int64, k+tailObjects)
	for i := 0; i < k; i++ {
		freq[uint64(i+1)] = int64(headCount)
	}
	for i := 0; i < tailObjects; i++ {
		freq[uint64(k+i+1)] = int64(tailCount)
	}
	return freq
}

// Materialize expands a frequency table into a shuffled object stream.
func Materialize(rng *xrand.RNG, freq map[uint64]int64) []uint64 {
	var total int64
	for _, c := range freq {
		total += c
	}
	out := make([]uint64, 0, total)
	for k, c := range freq {
		for i := int64(0); i < c; i++ {
			out = append(out, k)
		}
	}
	// Fisher–Yates shuffle.
	for i := len(out) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}
