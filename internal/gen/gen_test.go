package gen

import (
	"math"
	"testing"

	"commtopk/internal/xrand"
)

func TestZipfFrequenciesFollowPowerLaw(t *testing.T) {
	const n = 1 << 10
	const draws = 2_000_000
	z := NewZipf(n, 1.0)
	rng := xrand.New(1)
	counts := make([]int64, n+1)
	for i := 0; i < draws; i++ {
		v := z.Draw(rng)
		if v < 1 || v > n {
			t.Fatalf("draw %d out of universe", v)
		}
		counts[v]++
	}
	// Rank-1 should be ~2x rank-2, ~4x rank-4, ~10x rank-10 (s=1).
	for _, r := range []int{2, 4, 10} {
		ratio := float64(counts[1]) / float64(counts[r])
		if math.Abs(ratio-float64(r))/float64(r) > 0.1 {
			t.Errorf("count(1)/count(%d) = %v, want ~%d", r, ratio, r)
		}
	}
}

func TestZipfSteeperExponentConcentrates(t *testing.T) {
	const n = 1000
	const draws = 500000
	rng := xrand.New(2)
	share := func(s float64) float64 {
		z := NewZipf(n, s)
		head := 0
		for i := 0; i < draws; i++ {
			if z.Draw(rng) == 1 {
				head++
			}
		}
		return float64(head) / draws
	}
	if s1, s2 := share(1.0), share(1.5); s2 <= s1 {
		t.Errorf("head share should grow with exponent: s=1: %v, s=1.5: %v", s1, s2)
	}
}

func TestZipfDegenerate(t *testing.T) {
	z := NewZipf(1, 1.0)
	if v := z.Draw(xrand.New(3)); v != 1 {
		t.Errorf("single-object universe drew %d", v)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(0) should panic")
		}
	}()
	NewZipf(0, 1)
}

func TestHarmonicGeneralized(t *testing.T) {
	// H_{4,1} = 1 + 1/2 + 1/3 + 1/4 = 25/12.
	if got := HarmonicGeneralized(4, 1); math.Abs(got-25.0/12) > 1e-12 {
		t.Errorf("H_{4,1} = %v", got)
	}
	// H_{n,2} converges to π²/6.
	if got := HarmonicGeneralized(1_000_000, 2); math.Abs(got-math.Pi*math.Pi/6) > 1e-3 {
		t.Errorf("H_{1e6,2} = %v, want ~%v", got, math.Pi*math.Pi/6)
	}
	// The Euler–Maclaurin tail must be continuous at the cutoff.
	a := HarmonicGeneralized(1<<21, 1.1)
	b := HarmonicGeneralized((1<<21)+1, 1.1)
	if b <= a || b-a > 1e-5 {
		t.Errorf("harmonic discontinuous at cutoff: %v -> %v", a, b)
	}
}

func TestZipfCount(t *testing.T) {
	// Counts must sum to n over the whole universe.
	const n, universe = 100000, 100
	var sum float64
	for i := int64(1); i <= universe; i++ {
		sum += ZipfCount(n, universe, 1.0, i)
	}
	if math.Abs(sum-n) > 1e-6*n {
		t.Errorf("Zipf counts sum to %v, want %d", sum, n)
	}
}

func TestSelectionInputProperties(t *testing.T) {
	rng := xrand.New(5)
	in := SelectionInput(rng, 10000, 14)
	if len(in) != 10000 {
		t.Fatalf("wrong length %d", len(in))
	}
	hi := 0
	for _, v := range in {
		if v < 1 || v > 1<<14 {
			t.Fatalf("value %d outside universe", v)
		}
		if v > (1<<14)*3/4 {
			hi++
		}
	}
	// High-tail inversion: most mass near the top of the range.
	if hi < len(in)/2 {
		t.Errorf("only %d/%d values in the high tail", hi, len(in))
	}
}

func TestFrequencyInput(t *testing.T) {
	z := NewZipf(1<<10, 1)
	out := FrequencyInput(xrand.New(7), z, 5000)
	if len(out) != 5000 {
		t.Fatal("wrong length")
	}
}

func TestNegBinomialInputPlateau(t *testing.T) {
	// r=1000, p=0.05: values cluster tightly around ~52.6 (wide plateau of
	// near-equal frequencies relative to Zipf).
	rng := xrand.New(9)
	in := NegBinomialInput(rng, 20000, 1000, 0.05)
	counts := map[uint64]int{}
	for _, v := range in {
		counts[v]++
	}
	if len(counts) < 20 {
		t.Errorf("negative binomial collapsed to %d distinct values", len(counts))
	}
	var mx int
	for _, c := range counts {
		if c > mx {
			mx = c
		}
	}
	// No single value should dominate (plateau property).
	if mx > len(in)/10 {
		t.Errorf("most frequent value has share %d/%d; expected a plateau", mx, len(in))
	}
}

func TestWeightedInput(t *testing.T) {
	z := NewZipf(100, 1)
	keys, values := WeightedInput(xrand.New(11), z, 1000)
	if len(keys) != 1000 || len(values) != 1000 {
		t.Fatal("wrong lengths")
	}
	for _, v := range values {
		if v < 0 {
			t.Fatal("negative value")
		}
	}
}

func TestGappedFrequenciesAndMaterialize(t *testing.T) {
	freq := GappedFrequencies(5, 100, 50, 10)
	if len(freq) != 55 {
		t.Fatalf("table size %d", len(freq))
	}
	stream := Materialize(xrand.New(13), freq)
	if len(stream) != 5*100+50*10 {
		t.Fatalf("stream length %d", len(stream))
	}
	recount := map[uint64]int64{}
	for _, x := range stream {
		recount[x]++
	}
	for k, c := range freq {
		if recount[k] != c {
			t.Errorf("object %d count %d, want %d", k, recount[k], c)
		}
	}
}
