package treap

import (
	"slices"
	"testing"

	"commtopk/internal/xrand"
)

// shape flattens a tree to (key, prio, size) triples in order — treap
// shape is a function of the (key, priority) set, so equal shapes mean
// bit-identical trees.
func shape(tr *Tree[uint64]) (out [][3]uint64) {
	var walk func(n *node[uint64])
	walk = func(n *node[uint64]) {
		if n == nil {
			return
		}
		walk(n.left)
		out = append(out, [3]uint64{n.key, n.prio, uint64(n.size)})
		walk(n.right)
	}
	walk(tr.root)
	return out
}

// TestBuildSortedMatchesInsert pins the bit-identity contract: BuildSorted
// consumes the same priority stream as per-key Insert and must therefore
// produce the identical tree, sizes included.
func TestBuildSortedMatchesInsert(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(i)*3 + 1
		}
		a := New[uint64](42)
		a.BuildSorted(keys)
		b := New[uint64](42)
		for _, k := range keys {
			b.Insert(k)
		}
		if !slices.Equal(shape(a), shape(b)) {
			t.Fatalf("n=%d: BuildSorted shape differs from per-key Insert", n)
		}
		if n > 0 {
			if mn, _ := a.Min(); mn != keys[0] {
				t.Fatalf("n=%d: Min=%d", n, mn)
			}
			if mx, _ := a.Max(); mx != keys[n-1] {
				t.Fatalf("n=%d: Max=%d", n, mx)
			}
		}
	}
}

func TestBuildSortedPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BuildSorted on a descending batch should panic")
		}
	}()
	New[uint64](1).BuildSorted([]uint64{3, 2})
}

func TestBuildSortedPanicsOnNonEmpty(t *testing.T) {
	tr := New[uint64](1)
	tr.Insert(7)
	defer func() {
		if recover() == nil {
			t.Error("BuildSorted on a non-empty tree should panic")
		}
	}()
	tr.BuildSorted([]uint64{8, 9})
}

// TestInsertBulkAscendingFastPath pins that a monotone batch takes the
// O(n) build (counter-guarded: no per-key path means no extra slab
// probes, and the shape still matches per-key insertion exactly).
func TestInsertBulkAscendingFastPath(t *testing.T) {
	base := []uint64{5, 10, 15}
	batch := []uint64{20, 21, 30, 44}
	a := New[uint64](9)
	a.InsertBulk(base)
	if got := a.InsertBulk(batch); got != len(batch) {
		t.Fatalf("fast-path InsertBulk inserted %d, want %d", got, len(batch))
	}
	b := New[uint64](9)
	for _, k := range append(slices.Clone(base), batch...) {
		b.Insert(k)
	}
	if !slices.Equal(shape(a), shape(b)) {
		t.Fatal("ascending InsertBulk shape differs from per-key Insert")
	}
	if mx, _ := a.Max(); mx != 44 {
		t.Fatalf("Max=%d after monotone bulk", mx)
	}
	// Non-monotone batches still go key by key with duplicate skipping.
	if got := a.InsertBulk([]uint64{1, 44, 2}); got != 2 {
		t.Fatalf("slow-path InsertBulk inserted %d, want 2", got)
	}
}

// TestArenaPathTaken is the counter-guarded dispatch test (the
// qsel.BucketSelects idiom): churn must run through the free list, not
// the heap.
func TestArenaPathTaken(t *testing.T) {
	tr := New[uint64](5)
	for i := uint64(0); i < 1000; i++ {
		tr.Insert(i * 2654435761 % 1000003)
	}
	s0 := tr.ArenaStats()
	if s0.Slabs == 0 {
		t.Fatal("slab path never taken during initial build")
	}
	// Delete/Insert churn: every delete recycles, every insert reuses.
	for i := uint64(0); i < 500; i++ {
		k := i * 2654435761 % 1000003
		if !tr.Delete(k) {
			t.Fatalf("delete of live key %d failed", k)
		}
		tr.Insert(k + 1000003)
	}
	s1 := tr.ArenaStats()
	if d := s1.Recycled - s0.Recycled; d != 500 {
		t.Errorf("churn recycled %d nodes, want 500", d)
	}
	if d := s1.Reused - s0.Reused; d != 500 {
		t.Errorf("churn reused %d nodes, want 500", d)
	}
	if s1.Slabs != s0.Slabs {
		t.Errorf("churn allocated %d extra slabs, want 0", s1.Slabs-s0.Slabs)
	}
	// Split-extract-recycle: the DeleteMin batch pattern returns every
	// extracted node to the shared arena.
	batch := tr.SplitByRank(300)
	_ = batch.Keys()
	batch.Recycle()
	s2 := tr.ArenaStats()
	if d := s2.Recycled - s1.Recycled; d != 300 {
		t.Errorf("batch recycle returned %d nodes, want 300", d)
	}
	// Refill reuses the whole recycled batch before touching a slab.
	for i := uint64(0); i < 300; i++ {
		tr.Insert(2000000 + i)
	}
	s3 := tr.ArenaStats()
	if d := s3.Reused - s2.Reused; d != 300 {
		t.Errorf("refill reused %d nodes, want 300", d)
	}
	if s3.Slabs != s2.Slabs {
		t.Errorf("refill allocated %d extra slabs, want 0", s3.Slabs-s2.Slabs)
	}
}

// TestChurnZeroAlloc pins the arena's reason to exist: steady-state
// insert/delete churn performs zero heap allocations per op.
func TestChurnZeroAlloc(t *testing.T) {
	tr := New[uint64](3)
	for i := uint64(0); i < 4096; i++ {
		tr.Insert(i * 2654435761 % 1000003)
	}
	key := uint64(4*2654435761) % 1000003
	if a := testing.AllocsPerRun(200, func() {
		tr.Delete(key)
		tr.Insert(key)
	}); a != 0 {
		t.Errorf("Delete+Insert allocs = %v, want 0 (arena)", a)
	}
}

// TestRecycleInvariants: recycled trees stay usable, and trees built over
// heavily recycled arenas keep the full structural invariants.
func TestRecycleInvariants(t *testing.T) {
	rng := xrand.New(77)
	tr := New[uint64](31)
	live := map[uint64]bool{}
	for round := 0; round < 50; round++ {
		for i := 0; i < 40; i++ {
			k := rng.Uint64() % 4096
			if tr.Insert(k) == live[k] {
				t.Fatalf("Insert(%d) disagreed with model", k)
			}
			live[k] = true
		}
		// Extract a prefix batch, read it, recycle it — the DeleteMin cycle.
		n := tr.Len() / 2
		batch := tr.SplitByRank(n)
		for _, k := range batch.Keys() {
			if !live[k] {
				t.Fatalf("batch key %d not live", k)
			}
			delete(live, k)
		}
		batch.Recycle()
		if batch.Len() != 0 {
			t.Fatal("Recycle left keys behind")
		}
		checkInvariants(t, tr)
	}
	keys := tr.Keys()
	if len(keys) != len(live) || !slices.IsSorted(keys) {
		t.Fatalf("final tree broken: %d keys, model %d", len(keys), len(live))
	}
}
