// Package treap implements the augmented search tree of Section 2/5 of the
// paper: a randomized balanced tree over unique ordered keys that supports
// insert, delete, select-by-rank, rank-by-key, split and concatenate, all
// in expected O(log n). Subtree sizes are stored at every node, which is
// what makes select and rank possible — exactly the augmentation the paper
// requires for the bulk-parallel priority queue.
//
// Keys must be unique (the paper assumes a unique total order, obtained by
// tie-breaking if necessary); inserting a duplicate key is rejected.
package treap

import (
	"cmp"

	"commtopk/internal/xrand"
)

type node[K cmp.Ordered] struct {
	key         K
	prio        uint64
	size        int
	left, right *node[K]
}

func size[K cmp.Ordered](n *node[K]) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *node[K]) update() {
	n.size = 1 + size(n.left) + size(n.right)
}

// Tree is a treap over unique keys. The zero value is not usable; create
// trees with New so that priorities come from a deterministic stream.
//
// The smallest and largest keys are cached (the Section 5 augmentation
// "two arrays storing the path to the smallest and largest object",
// reduced to its observable effect): Min and Max are O(1), which is what
// the bulk-parallel priority queue's estimator probes rely on.
type Tree[K cmp.Ordered] struct {
	root *node[K]
	rng  *xrand.RNG

	minK, maxK K
	extOK      bool // caches valid (tree non-empty and minK/maxK current)
}

// New returns an empty tree whose rotation priorities are drawn from a
// deterministic stream seeded with seed.
func New[K cmp.Ordered](seed int64) *Tree[K] {
	return &Tree[K]{rng: xrand.New(seed)}
}

// Len returns the number of keys stored.
func (t *Tree[K]) Len() int { return size(t.root) }

// split splits n into (< key) and (>= key).
func split[K cmp.Ordered](n *node[K], key K) (lt, ge *node[K]) {
	if n == nil {
		return nil, nil
	}
	if n.key < key {
		l, r := split(n.right, key)
		n.right = l
		n.update()
		return n, r
	}
	l, r := split(n.left, key)
	n.left = r
	n.update()
	return l, n
}

// merge concatenates two treaps assuming all keys in a < all keys in b.
func merge[K cmp.Ordered](a, b *node[K]) *node[K] {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.prio >= b.prio {
		a.right = merge(a.right, b)
		a.update()
		return a
	}
	b.left = merge(a, b.left)
	b.update()
	return b
}

// Insert adds key to the tree. It returns false (and leaves the tree
// unchanged) if the key is already present.
func (t *Tree[K]) Insert(key K) bool {
	if t.Contains(key) {
		return false
	}
	nn := &node[K]{key: key, prio: t.rng.Uint64(), size: 1}
	wasEmpty := t.root == nil
	l, r := split(t.root, key)
	t.root = merge(merge(l, nn), r)
	if wasEmpty {
		t.minK, t.maxK, t.extOK = key, key, true
	} else if t.extOK {
		if key < t.minK {
			t.minK = key
		}
		if key > t.maxK {
			t.maxK = key
		}
	}
	return true
}

// Delete removes key from the tree, reporting whether it was present.
func (t *Tree[K]) Delete(key K) bool {
	var deleted bool
	var del func(n *node[K]) *node[K]
	del = func(n *node[K]) *node[K] {
		if n == nil {
			return nil
		}
		switch {
		case key < n.key:
			n.left = del(n.left)
		case key > n.key:
			n.right = del(n.right)
		default:
			deleted = true
			return merge(n.left, n.right)
		}
		n.update()
		return n
	}
	t.root = del(t.root)
	if deleted && t.extOK && (key == t.minK || key == t.maxK) {
		t.extOK = false // extreme removed; recompute lazily
	}
	return deleted
}

// Contains reports whether key is present.
func (t *Tree[K]) Contains(key K) bool {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return true
		}
	}
	return false
}

// refreshExtremes rebuilds the min/max cache if stale. O(log n), after
// which Min/Max are O(1) until the next invalidating mutation.
func (t *Tree[K]) refreshExtremes() {
	if t.extOK || t.root == nil {
		return
	}
	n := t.root
	for n.left != nil {
		n = n.left
	}
	t.minK = n.key
	n = t.root
	for n.right != nil {
		n = n.right
	}
	t.maxK = n.key
	t.extOK = true
}

// Min returns the smallest key; ok is false on an empty tree. O(1) when
// the cache is warm (Section 5 augmentation).
func (t *Tree[K]) Min() (k K, ok bool) {
	if t.root == nil {
		return k, false
	}
	t.refreshExtremes()
	return t.minK, true
}

// Max returns the largest key; ok is false on an empty tree. O(1) when
// the cache is warm.
func (t *Tree[K]) Max() (k K, ok bool) {
	if t.root == nil {
		return k, false
	}
	t.refreshExtremes()
	return t.maxK, true
}

// Select returns the i-th smallest key (0-based); ok is false if i is out
// of range. This is the paper's T[i] operation.
func (t *Tree[K]) Select(i int) (k K, ok bool) {
	if i < 0 || i >= t.Len() {
		return k, false
	}
	n := t.root
	for {
		ls := size(n.left)
		switch {
		case i < ls:
			n = n.left
		case i == ls:
			return n.key, true
		default:
			i -= ls + 1
			n = n.right
		}
	}
}

// Rank returns the number of keys strictly smaller than key. This matches
// the partitioning step of the selection algorithms; the paper's
// T.rank(x) (keys ≤ x) is Rank(x)+1 when x is present.
func (t *Tree[K]) Rank(key K) int {
	r := 0
	n := t.root
	for n != nil {
		if key <= n.key {
			n = n.left
		} else {
			r += size(n.left) + 1
			n = n.right
		}
	}
	return r
}

// SplitByKey removes and returns a new tree holding all keys ≤ key; the
// receiver keeps the keys > key. This is the paper's T.split(x).
func (t *Tree[K]) SplitByKey(key K) *Tree[K] {
	// split() separates on <, so split at the successor boundary: keys
	// ≤ key means keys < key plus key itself.
	le, gt := split(t.root, key)
	// le holds keys < key; check whether gt's minimum equals key.
	if gt != nil {
		mn := gt
		for mn.left != nil {
			mn = mn.left
		}
		if mn.key == key {
			// Move the single node with the boundary key over to le.
			var lt2, ge2 *node[K]
			// split gt into (< succ) and rest by splitting on key then
			// extracting its min: simplest is to delete and re-insert.
			lt2, ge2 = splitLE(gt, key)
			le = merge(le, lt2)
			gt = ge2
		}
	}
	t.root = gt
	t.extOK = false
	return &Tree[K]{root: le, rng: xrand.New(int64(t.rng.Uint64()))}
}

// splitLE splits n into (<= key) and (> key).
func splitLE[K cmp.Ordered](n *node[K], key K) (le, gt *node[K]) {
	if n == nil {
		return nil, nil
	}
	if n.key <= key {
		l, r := splitLE(n.right, key)
		n.right = l
		n.update()
		return n, r
	}
	l, r := splitLE(n.left, key)
	n.left = r
	n.update()
	return l, n
}

// SplitByRank removes and returns a new tree holding the i smallest keys;
// the receiver keeps the rest.
func (t *Tree[K]) SplitByRank(i int) *Tree[K] {
	if i <= 0 {
		return &Tree[K]{rng: xrand.New(int64(t.rng.Uint64()))}
	}
	if i >= t.Len() {
		out := &Tree[K]{root: t.root, rng: xrand.New(int64(t.rng.Uint64()))}
		t.root = nil
		return out
	}
	var splitN func(n *node[K], i int) (*node[K], *node[K])
	splitN = func(n *node[K], i int) (*node[K], *node[K]) {
		if n == nil {
			return nil, nil
		}
		if ls := size(n.left); i <= ls {
			l, r := splitN(n.left, i)
			n.left = r
			n.update()
			return l, n
		} else {
			l, r := splitN(n.right, i-ls-1)
			n.right = l
			n.update()
			return n, r
		}
	}
	l, r := splitN(t.root, i)
	t.root = r
	t.extOK = false
	return &Tree[K]{root: l, rng: xrand.New(int64(t.rng.Uint64()))}
}

// Concat appends other (all of whose keys must be greater than every key of
// the receiver) onto the receiver and empties other. This is the paper's
// concat(T1, T2). It panics if the key ranges overlap.
func (t *Tree[K]) Concat(other *Tree[K]) {
	if t.root != nil && other.root != nil {
		tm, _ := t.Max()
		om, _ := other.Min()
		if tm >= om {
			panic("treap: Concat with overlapping key ranges")
		}
	}
	t.root = merge(t.root, other.root)
	other.root = nil
	t.extOK = false
	other.extOK = false
}

// Ascend calls fn on every key in ascending order until fn returns false.
func (t *Tree[K]) Ascend(fn func(key K) bool) {
	var walk func(n *node[K]) bool
	walk = func(n *node[K]) bool {
		if n == nil {
			return true
		}
		return walk(n.left) && fn(n.key) && walk(n.right)
	}
	walk(t.root)
}

// Keys returns all keys in ascending order (for tests and extraction).
func (t *Tree[K]) Keys() []K {
	out := make([]K, 0, t.Len())
	t.Ascend(func(k K) bool {
		out = append(out, k)
		return true
	})
	return out
}

// InsertBulk inserts all keys, skipping duplicates, and returns how many
// were inserted.
func (t *Tree[K]) InsertBulk(keys []K) int {
	n := 0
	for _, k := range keys {
		if t.Insert(k) {
			n++
		}
	}
	return n
}
