// Package treap implements the augmented search tree of Section 2/5 of the
// paper: a randomized balanced tree over unique ordered keys that supports
// insert, delete, select-by-rank, rank-by-key, split and concatenate, all
// in expected O(log n). Subtree sizes are stored at every node, which is
// what makes select and rank possible — exactly the augmentation the paper
// requires for the bulk-parallel priority queue.
//
// Keys must be unique (the paper assumes a unique total order, obtained by
// tie-breaking if necessary); inserting a duplicate key is rejected.
//
// The structural operations (split, merge, delete, in-order walk) are
// iterative and allocation-free: merge stitches top-down through a hook
// pointer, the splits precompute the boundary rank with one search walk
// and then fix every size on the way down, and Ascend drives an explicit
// stack in a fixed array. The bulk-parallel priority queue calls these on
// every DeleteMin, so recursion frames and closure allocations on this
// path were pure overhead.
package treap

import (
	"cmp"

	"commtopk/internal/xrand"
)

type node[K cmp.Ordered] struct {
	key         K
	prio        uint64
	size        int
	left, right *node[K]
}

func size[K cmp.Ordered](n *node[K]) int {
	if n == nil {
		return 0
	}
	return n.size
}

// Tree is a treap over unique keys. The zero value is not usable; create
// trees with New so that priorities come from a deterministic stream.
//
// The smallest and largest keys are cached (the Section 5 augmentation
// "two arrays storing the path to the smallest and largest object",
// reduced to its observable effect): Min and Max are O(1), which is what
// the bulk-parallel priority queue's estimator probes rely on.
type Tree[K cmp.Ordered] struct {
	root *node[K]
	rng  *xrand.RNG

	minK, maxK K
	extOK      bool // caches valid (tree non-empty and minK/maxK current)
}

// New returns an empty tree whose rotation priorities are drawn from a
// deterministic stream seeded with seed.
func New[K cmp.Ordered](seed int64) *Tree[K] {
	return &Tree[K]{rng: xrand.New(seed)}
}

// Len returns the number of keys stored.
func (t *Tree[K]) Len() int { return size(t.root) }

// split splits n into (< key) and (>= key).
func split[K cmp.Ordered](n *node[K], key K) (lt, ge *node[K]) {
	return splitBound(n, key, false)
}

// splitLE splits n into (<= key) and (> key).
func splitLE[K cmp.Ordered](n *node[K], key K) (le, gt *node[K]) {
	return splitBound(n, key, true)
}

// splitBound splits n at key into (a, b) where a holds the keys < key
// (incl=false) or ≤ key (incl=true) and b the rest. Iterative two-pass:
// the first walk counts how many keys fall on the a side (the boundary
// rank c); the second walk detaches nodes onto the two output spines via
// hook pointers, using c to write each node's final subtree size on the
// way down — a node kept on the a side retains exactly the c a-side keys
// of its old subtree, and descending right discards its left subtree and
// itself from that count, while a node on the b side loses exactly the c
// a-side keys below it. No recursion, no allocation, sizes exact without
// an unwind.
func splitBound[K cmp.Ordered](n *node[K], key K, incl bool) (a, b *node[K]) {
	c := 0
	for m := n; m != nil; {
		if m.key < key || (incl && m.key == key) {
			c += size(m.left) + 1
			m = m.right
		} else {
			m = m.left
		}
	}
	ahook, bhook := &a, &b
	for n != nil {
		if n.key < key || (incl && n.key == key) {
			n.size = c
			c -= size(n.left) + 1
			*ahook = n
			ahook = &n.right
			n = n.right
		} else {
			n.size -= c
			*bhook = n
			bhook = &n.left
			n = n.left
		}
	}
	*ahook = nil
	*bhook = nil
	return a, b
}

// merge concatenates two treaps assuming all keys in a < all keys in b.
// Iterative top-down: the winner by priority is stitched onto the output
// spine through a hook pointer and absorbs the loser's entire remaining
// subtree into its size (everything left of the other tree ends up below
// it), so sizes are final on the way down and no unwind pass is needed.
func merge[K cmp.Ordered](a, b *node[K]) *node[K] {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	var root *node[K]
	hook := &root
	for {
		if a.prio >= b.prio {
			a.size += b.size
			*hook = a
			if a.right == nil {
				a.right = b
				return root
			}
			hook = &a.right
			a = a.right
		} else {
			b.size += a.size
			*hook = b
			if b.left == nil {
				b.left = a
				return root
			}
			hook = &b.left
			b = b.left
		}
	}
}

// Insert adds key to the tree. It returns false (and leaves the tree
// unchanged) if the key is already present.
func (t *Tree[K]) Insert(key K) bool {
	if t.Contains(key) {
		return false
	}
	nn := &node[K]{key: key, prio: t.rng.Uint64(), size: 1}
	wasEmpty := t.root == nil
	l, r := split(t.root, key)
	t.root = merge(merge(l, nn), r)
	if wasEmpty {
		t.minK, t.maxK, t.extOK = key, key, true
	} else if t.extOK {
		if key < t.minK {
			t.minK = key
		}
		if key > t.maxK {
			t.maxK = key
		}
	}
	return true
}

// Delete removes key from the tree, reporting whether it was present.
// Presence is checked first (one O(log n) read-only walk), after which the
// deleting walk can decrement every size on the way down unconditionally
// and splice the node out through a hook pointer — no recursion, no
// closure, no unwind.
func (t *Tree[K]) Delete(key K) bool {
	if !t.Contains(key) {
		return false
	}
	hook := &t.root
	for {
		n := *hook
		switch {
		case key < n.key:
			n.size--
			hook = &n.left
		case key > n.key:
			n.size--
			hook = &n.right
		default:
			*hook = merge(n.left, n.right)
			if t.extOK && (key == t.minK || key == t.maxK) {
				t.extOK = false // extreme removed; recompute lazily
			}
			return true
		}
	}
}

// Contains reports whether key is present.
func (t *Tree[K]) Contains(key K) bool {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return true
		}
	}
	return false
}

// refreshExtremes rebuilds the min/max cache if stale. O(log n), after
// which Min/Max are O(1) until the next invalidating mutation.
func (t *Tree[K]) refreshExtremes() {
	if t.extOK || t.root == nil {
		return
	}
	n := t.root
	for n.left != nil {
		n = n.left
	}
	t.minK = n.key
	n = t.root
	for n.right != nil {
		n = n.right
	}
	t.maxK = n.key
	t.extOK = true
}

// Min returns the smallest key; ok is false on an empty tree. O(1) when
// the cache is warm (Section 5 augmentation).
func (t *Tree[K]) Min() (k K, ok bool) {
	if t.root == nil {
		return k, false
	}
	t.refreshExtremes()
	return t.minK, true
}

// Max returns the largest key; ok is false on an empty tree. O(1) when
// the cache is warm.
func (t *Tree[K]) Max() (k K, ok bool) {
	if t.root == nil {
		return k, false
	}
	t.refreshExtremes()
	return t.maxK, true
}

// Select returns the i-th smallest key (0-based); ok is false if i is out
// of range. This is the paper's T[i] operation.
func (t *Tree[K]) Select(i int) (k K, ok bool) {
	if i < 0 || i >= t.Len() {
		return k, false
	}
	n := t.root
	for {
		ls := size(n.left)
		switch {
		case i < ls:
			n = n.left
		case i == ls:
			return n.key, true
		default:
			i -= ls + 1
			n = n.right
		}
	}
}

// Rank returns the number of keys strictly smaller than key. This matches
// the partitioning step of the selection algorithms; the paper's
// T.rank(x) (keys ≤ x) is Rank(x)+1 when x is present.
func (t *Tree[K]) Rank(key K) int {
	r := 0
	n := t.root
	for n != nil {
		if key <= n.key {
			n = n.left
		} else {
			r += size(n.left) + 1
			n = n.right
		}
	}
	return r
}

// SplitByKey removes and returns a new tree holding all keys ≤ key; the
// receiver keeps the keys > key. This is the paper's T.split(x).
func (t *Tree[K]) SplitByKey(key K) *Tree[K] {
	le, gt := splitLE(t.root, key)
	t.root = gt
	t.extOK = false
	return &Tree[K]{root: le, rng: xrand.New(int64(t.rng.Uint64()))}
}

// SplitByRank removes and returns a new tree holding the i smallest keys;
// the receiver keeps the rest.
func (t *Tree[K]) SplitByRank(i int) *Tree[K] {
	if i <= 0 {
		return &Tree[K]{rng: xrand.New(int64(t.rng.Uint64()))}
	}
	if i >= t.Len() {
		out := &Tree[K]{root: t.root, rng: xrand.New(int64(t.rng.Uint64()))}
		t.root = nil
		return out
	}
	// Iterative rank split: i threads down as "how many keys of the
	// current subtree go to the low side", so each node's final size is
	// known on the way down — a node sent high loses exactly i keys, a
	// node sent low keeps exactly i (its left subtree, itself, and the
	// i-ls-1 smallest of its right subtree).
	var l, r *node[K]
	lhook, rhook := &l, &r
	for n := t.root; n != nil; {
		if ls := size(n.left); i <= ls {
			n.size -= i
			*rhook = n
			rhook = &n.left
			n = n.left
		} else {
			n.size = i
			i -= ls + 1
			*lhook = n
			lhook = &n.right
			n = n.right
		}
	}
	*lhook = nil
	*rhook = nil
	t.root = r
	t.extOK = false
	return &Tree[K]{root: l, rng: xrand.New(int64(t.rng.Uint64()))}
}

// Concat appends other (all of whose keys must be greater than every key of
// the receiver) onto the receiver and empties other. This is the paper's
// concat(T1, T2). It panics if the key ranges overlap.
func (t *Tree[K]) Concat(other *Tree[K]) {
	if t.root != nil && other.root != nil {
		tm, _ := t.Max()
		om, _ := other.Min()
		if tm >= om {
			panic("treap: Concat with overlapping key ranges")
		}
	}
	t.root = merge(t.root, other.root)
	other.root = nil
	t.extOK = false
	other.extOK = false
}

// Ascend calls fn on every key in ascending order until fn returns false.
// Iterative in-order walk over an explicit stack; the fixed array covers
// any depth a randomized treap reaches in practice (expected depth is
// ~2.9 log₂ n, so 96 frames handle astronomically large trees), and the
// append fallback keeps deeper trees correct rather than crashing.
func (t *Tree[K]) Ascend(fn func(key K) bool) {
	var arr [96]*node[K]
	stack := arr[:0]
	n := t.root
	for n != nil || len(stack) > 0 {
		for n != nil {
			stack = append(stack, n)
			n = n.left
		}
		n = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !fn(n.key) {
			return
		}
		n = n.right
	}
}

// Keys returns all keys in ascending order (for tests and extraction).
func (t *Tree[K]) Keys() []K {
	out := make([]K, 0, t.Len())
	t.Ascend(func(k K) bool {
		out = append(out, k)
		return true
	})
	return out
}

// InsertBulk inserts all keys, skipping duplicates, and returns how many
// were inserted.
func (t *Tree[K]) InsertBulk(keys []K) int {
	n := 0
	for _, k := range keys {
		if t.Insert(k) {
			n++
		}
	}
	return n
}
