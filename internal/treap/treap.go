// Package treap implements the augmented search tree of Section 2/5 of the
// paper: a randomized balanced tree over unique ordered keys that supports
// insert, delete, select-by-rank, rank-by-key, split and concatenate, all
// in expected O(log n). Subtree sizes are stored at every node, which is
// what makes select and rank possible — exactly the augmentation the paper
// requires for the bulk-parallel priority queue.
//
// Keys must be unique (the paper assumes a unique total order, obtained by
// tie-breaking if necessary); inserting a duplicate key is rejected.
//
// The structural operations (split, merge, delete, in-order walk) are
// iterative and allocation-free: merge stitches top-down through a hook
// pointer, the splits precompute the boundary rank with one search walk
// and then fix every size on the way down, and Ascend drives an explicit
// stack in a fixed array. The bulk-parallel priority queue calls these on
// every DeleteMin, so recursion frames and closure allocations on this
// path were pure overhead.
//
// # Node arena
//
// Nodes live in slab-allocated blocks owned by a per-tree arena that is
// shared with every tree split off from it (SplitByKey/SplitByRank), with
// a free list threaded through recycled nodes' right pointers. Insert
// takes a node from the free list when one is available and bump-allocates
// from the current slab otherwise, so the only heap allocation on the
// insert path is one slab per slabSize nodes — amortized ~0 allocs/op
// instead of the former one node per Insert. Delete recycles the spliced
// node immediately; an extracted batch tree recycles all of its nodes at
// once via Recycle after the caller has read the keys out (the
// bulk-parallel priority queue's DeleteMin path). Slabs are never freed:
// a tree's high-water node count stays resident until the tree itself is
// garbage, which is exactly the churn profile the priority queue wants.
package treap

import (
	"cmp"

	"commtopk/internal/xrand"
)

type node[K cmp.Ordered] struct {
	key         K
	prio        uint64
	size        int
	left, right *node[K]
}

func size[K cmp.Ordered](n *node[K]) int {
	if n == nil {
		return 0
	}
	return n.size
}

// slab sizing: the first slab is small so tiny trees stay cheap, then
// slabs double up to a cap so big trees pay O(log n) slab allocations on
// the way up and one allocation per slabMax nodes in steady state.
const (
	slabMin = 64
	slabMax = 8192
)

// arena is the slab allocator behind a tree and all trees split off from
// it. Not safe for concurrent use — like the trees it backs, an arena
// belongs to one goroutine (one PE) at a time. The counters are plain
// ints for the same reason; ArenaStats exposes them so tests can assert
// the allocator paths are actually taken (the bucket-dispatch guard
// idiom) without timing or AllocsPerRun heuristics.
type arena[K cmp.Ordered] struct {
	slabs [][]node[K]
	used  int      // bump cursor into the last slab
	free  *node[K] // recycled nodes, threaded through right pointers

	reused   int64 // nodes handed out from the free list
	recycled int64 // nodes returned to the free list
	slabbed  int64 // slabs allocated
}

// newNode hands out a fully initialized node: free list first, bump
// allocation from the current slab otherwise.
func (a *arena[K]) newNode(key K, prio uint64) *node[K] {
	if n := a.free; n != nil {
		a.free = n.right
		a.reused++
		n.key, n.prio, n.size, n.left, n.right = key, prio, 1, nil, nil
		return n
	}
	if len(a.slabs) == 0 || a.used == len(a.slabs[len(a.slabs)-1]) {
		sz := slabMin
		if len(a.slabs) > 0 {
			sz = min(2*len(a.slabs[len(a.slabs)-1]), slabMax)
		}
		a.slabs = append(a.slabs, make([]node[K], sz))
		a.used = 0
		a.slabbed++
	}
	n := &a.slabs[len(a.slabs)-1][a.used]
	a.used++
	n.key, n.prio, n.size = key, prio, 1
	return n
}

// freeNode pushes a detached node onto the free list. The node must not
// be reachable from any tree.
func (a *arena[K]) freeNode(n *node[K]) {
	var zero K
	n.key = zero // drop pointer-carrying keys for the GC
	n.left = nil
	n.right = a.free
	a.free = n
	a.recycled++
}

// ArenaStats are the allocator's path counters; see Tree.ArenaStats.
type ArenaStats struct {
	// Slabs is the number of node blocks allocated from the heap.
	Slabs int64
	// Reused counts nodes handed out from the free list.
	Reused int64
	// Recycled counts nodes returned to the free list (Delete, Recycle).
	Recycled int64
}

// Tree is a treap over unique keys. The zero value is not usable; create
// trees with New so that priorities come from a deterministic stream.
//
// The smallest and largest keys are cached (the Section 5 augmentation
// "two arrays storing the path to the smallest and largest object",
// reduced to its observable effect): Min and Max are O(1), which is what
// the bulk-parallel priority queue's estimator probes rely on.
type Tree[K cmp.Ordered] struct {
	root *node[K]
	rng  *xrand.RNG
	ar   *arena[K] // shared with trees split off this one; lazily created

	minK, maxK K
	extOK      bool // caches valid (tree non-empty and minK/maxK current)
}

// New returns an empty tree whose rotation priorities are drawn from a
// deterministic stream seeded with seed.
func New[K cmp.Ordered](seed int64) *Tree[K] {
	return &Tree[K]{rng: xrand.New(seed), ar: &arena[K]{}}
}

// arena returns the tree's allocator, creating it on first use (covers
// trees reconstructed by struct copy from a zero value).
func (t *Tree[K]) arena() *arena[K] {
	if t.ar == nil {
		t.ar = &arena[K]{}
	}
	return t.ar
}

// ArenaStats reports the node allocator's path counters: slabs taken
// from the heap, nodes reused from the free list, and nodes recycled
// onto it. The counters cover this tree AND every tree split off from it
// (they share one arena). Tests use this to assert the arena paths are
// taken, mirroring the counter-guarded dispatch tests of package qsel.
func (t *Tree[K]) ArenaStats() ArenaStats {
	a := t.arena()
	return ArenaStats{Slabs: a.slabbed, Reused: a.reused, Recycled: a.recycled}
}

// Reseed restarts the priority stream from seed. The bulk-parallel
// priority queue's drain path uses this to keep its RNG consumption
// identical to discarding the tree and creating a fresh one, while the
// arena (and its recycled nodes) stays.
func (t *Tree[K]) Reseed(seed int64) {
	t.rng = xrand.New(seed)
}

// Len returns the number of keys stored.
func (t *Tree[K]) Len() int { return size(t.root) }

// split splits n into (< key) and (>= key).
func split[K cmp.Ordered](n *node[K], key K) (lt, ge *node[K]) {
	return splitBound(n, key, false)
}

// splitLE splits n into (<= key) and (> key).
func splitLE[K cmp.Ordered](n *node[K], key K) (le, gt *node[K]) {
	return splitBound(n, key, true)
}

// splitBound splits n at key into (a, b) where a holds the keys < key
// (incl=false) or ≤ key (incl=true) and b the rest. Iterative two-pass:
// the first walk counts how many keys fall on the a side (the boundary
// rank c); the second walk detaches nodes onto the two output spines via
// hook pointers, using c to write each node's final subtree size on the
// way down — a node kept on the a side retains exactly the c a-side keys
// of its old subtree, and descending right discards its left subtree and
// itself from that count, while a node on the b side loses exactly the c
// a-side keys below it. No recursion, no allocation, sizes exact without
// an unwind.
func splitBound[K cmp.Ordered](n *node[K], key K, incl bool) (a, b *node[K]) {
	c := 0
	for m := n; m != nil; {
		if m.key < key || (incl && m.key == key) {
			c += size(m.left) + 1
			m = m.right
		} else {
			m = m.left
		}
	}
	ahook, bhook := &a, &b
	for n != nil {
		if n.key < key || (incl && n.key == key) {
			n.size = c
			c -= size(n.left) + 1
			*ahook = n
			ahook = &n.right
			n = n.right
		} else {
			n.size -= c
			*bhook = n
			bhook = &n.left
			n = n.left
		}
	}
	*ahook = nil
	*bhook = nil
	return a, b
}

// merge concatenates two treaps assuming all keys in a < all keys in b.
// Iterative top-down: the winner by priority is stitched onto the output
// spine through a hook pointer and absorbs the loser's entire remaining
// subtree into its size (everything left of the other tree ends up below
// it), so sizes are final on the way down and no unwind pass is needed.
func merge[K cmp.Ordered](a, b *node[K]) *node[K] {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	var root *node[K]
	hook := &root
	for {
		if a.prio >= b.prio {
			a.size += b.size
			*hook = a
			if a.right == nil {
				a.right = b
				return root
			}
			hook = &a.right
			a = a.right
		} else {
			b.size += a.size
			*hook = b
			if b.left == nil {
				b.left = a
				return root
			}
			hook = &b.left
			b = b.left
		}
	}
}

// Insert adds key to the tree. It returns false (and leaves the tree
// unchanged) if the key is already present.
func (t *Tree[K]) Insert(key K) bool {
	if t.Contains(key) {
		return false
	}
	nn := t.arena().newNode(key, t.rng.Uint64())
	wasEmpty := t.root == nil
	l, r := split(t.root, key)
	t.root = merge(merge(l, nn), r)
	if wasEmpty {
		t.minK, t.maxK, t.extOK = key, key, true
	} else if t.extOK {
		if key < t.minK {
			t.minK = key
		}
		if key > t.maxK {
			t.maxK = key
		}
	}
	return true
}

// Delete removes key from the tree, reporting whether it was present.
// Presence is checked first (one O(log n) read-only walk), after which the
// deleting walk can decrement every size on the way down unconditionally
// and splice the node out through a hook pointer — no recursion, no
// closure, no unwind.
func (t *Tree[K]) Delete(key K) bool {
	if !t.Contains(key) {
		return false
	}
	hook := &t.root
	for {
		n := *hook
		switch {
		case key < n.key:
			n.size--
			hook = &n.left
		case key > n.key:
			n.size--
			hook = &n.right
		default:
			*hook = merge(n.left, n.right)
			if t.extOK && (key == t.minK || key == t.maxK) {
				t.extOK = false // extreme removed; recompute lazily
			}
			t.arena().freeNode(n)
			return true
		}
	}
}

// Contains reports whether key is present.
func (t *Tree[K]) Contains(key K) bool {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return true
		}
	}
	return false
}

// refreshExtremes rebuilds the min/max cache if stale. O(log n), after
// which Min/Max are O(1) until the next invalidating mutation.
func (t *Tree[K]) refreshExtremes() {
	if t.extOK || t.root == nil {
		return
	}
	n := t.root
	for n.left != nil {
		n = n.left
	}
	t.minK = n.key
	n = t.root
	for n.right != nil {
		n = n.right
	}
	t.maxK = n.key
	t.extOK = true
}

// Min returns the smallest key; ok is false on an empty tree. O(1) when
// the cache is warm (Section 5 augmentation).
func (t *Tree[K]) Min() (k K, ok bool) {
	if t.root == nil {
		return k, false
	}
	t.refreshExtremes()
	return t.minK, true
}

// Max returns the largest key; ok is false on an empty tree. O(1) when
// the cache is warm.
func (t *Tree[K]) Max() (k K, ok bool) {
	if t.root == nil {
		return k, false
	}
	t.refreshExtremes()
	return t.maxK, true
}

// Select returns the i-th smallest key (0-based); ok is false if i is out
// of range. This is the paper's T[i] operation.
func (t *Tree[K]) Select(i int) (k K, ok bool) {
	if i < 0 || i >= t.Len() {
		return k, false
	}
	n := t.root
	for {
		ls := size(n.left)
		switch {
		case i < ls:
			n = n.left
		case i == ls:
			return n.key, true
		default:
			i -= ls + 1
			n = n.right
		}
	}
}

// Rank returns the number of keys strictly smaller than key. This matches
// the partitioning step of the selection algorithms; the paper's
// T.rank(x) (keys ≤ x) is Rank(x)+1 when x is present.
func (t *Tree[K]) Rank(key K) int {
	r := 0
	n := t.root
	for n != nil {
		if key <= n.key {
			n = n.left
		} else {
			r += size(n.left) + 1
			n = n.right
		}
	}
	return r
}

// SplitByKey removes and returns a new tree holding all keys ≤ key; the
// receiver keeps the keys > key. This is the paper's T.split(x).
func (t *Tree[K]) SplitByKey(key K) *Tree[K] {
	le, gt := splitLE(t.root, key)
	t.root = gt
	t.extOK = false
	return &Tree[K]{root: le, rng: xrand.New(int64(t.rng.Uint64())), ar: t.arena()}
}

// SplitByRank removes and returns a new tree holding the i smallest keys;
// the receiver keeps the rest.
func (t *Tree[K]) SplitByRank(i int) *Tree[K] {
	if i <= 0 {
		return &Tree[K]{rng: xrand.New(int64(t.rng.Uint64())), ar: t.arena()}
	}
	if i >= t.Len() {
		out := &Tree[K]{root: t.root, rng: xrand.New(int64(t.rng.Uint64())), ar: t.arena()}
		t.root = nil
		return out
	}
	// Iterative rank split: i threads down as "how many keys of the
	// current subtree go to the low side", so each node's final size is
	// known on the way down — a node sent high loses exactly i keys, a
	// node sent low keeps exactly i (its left subtree, itself, and the
	// i-ls-1 smallest of its right subtree).
	var l, r *node[K]
	lhook, rhook := &l, &r
	for n := t.root; n != nil; {
		if ls := size(n.left); i <= ls {
			n.size -= i
			*rhook = n
			rhook = &n.left
			n = n.left
		} else {
			n.size = i
			i -= ls + 1
			*lhook = n
			lhook = &n.right
			n = n.right
		}
	}
	*lhook = nil
	*rhook = nil
	t.root = r
	t.extOK = false
	return &Tree[K]{root: l, rng: xrand.New(int64(t.rng.Uint64())), ar: t.arena()}
}

// Recycle empties the tree and returns every node to the arena free
// list, where the next inserts into this tree — or into any tree sharing
// the arena, in particular the tree this one was split off from — will
// reuse them. This is how an extracted DeleteMin batch is disposed of
// after its keys are read out: the former behaviour of dropping the
// subtree on the floor fed every churn cycle's node count to the GC.
// O(n) with no allocation (iterative right-rotation teardown).
func (t *Tree[K]) Recycle() {
	a := t.arena()
	n := t.root
	for n != nil {
		if l := n.left; l != nil {
			// Rotate the left child up so the spine stays reachable
			// without a stack.
			n.left = l.right
			l.right = n
			n = l
			continue
		}
		next := n.right
		a.freeNode(n)
		n = next
	}
	t.root = nil
	t.extOK = false
}

// Concat appends other (all of whose keys must be greater than every key of
// the receiver) onto the receiver and empties other. This is the paper's
// concat(T1, T2). It panics if the key ranges overlap.
func (t *Tree[K]) Concat(other *Tree[K]) {
	if t.root != nil && other.root != nil {
		tm, _ := t.Max()
		om, _ := other.Min()
		if tm >= om {
			panic("treap: Concat with overlapping key ranges")
		}
	}
	t.root = merge(t.root, other.root)
	other.root = nil
	t.extOK = false
	other.extOK = false
}

// Ascend calls fn on every key in ascending order until fn returns false.
// Iterative in-order walk over an explicit stack; the fixed array covers
// any depth a randomized treap reaches in practice (expected depth is
// ~2.9 log₂ n, so 96 frames handle astronomically large trees), and the
// append fallback keeps deeper trees correct rather than crashing.
func (t *Tree[K]) Ascend(fn func(key K) bool) {
	var arr [96]*node[K]
	stack := arr[:0]
	n := t.root
	for n != nil || len(stack) > 0 {
		for n != nil {
			stack = append(stack, n)
			n = n.left
		}
		n = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !fn(n.key) {
			return
		}
		n = n.right
	}
}

// Keys returns all keys in ascending order (for tests and extraction).
func (t *Tree[K]) Keys() []K {
	out := make([]K, 0, t.Len())
	t.Ascend(func(k K) bool {
		out = append(out, k)
		return true
	})
	return out
}

// InsertBulk inserts all keys, skipping duplicates, and returns how many
// were inserted. A strictly ascending batch whose first key exceeds the
// current maximum (the monotone re-insertion pattern of the bulk priority
// queue) is built in O(len(keys)) by buildAscending and joined on with
// one merge, skipping the per-key descent; any other batch falls back to
// per-key Insert. Both paths draw one priority per inserted key in key
// order and a treap's shape is a function of its (key, priority) set
// alone, so the fast path produces the bit-identical tree.
func (t *Tree[K]) InsertBulk(keys []K) int {
	if len(keys) > 1 && ascending(keys) {
		if mx, ok := t.Max(); !ok || keys[0] > mx {
			sub := t.buildAscending(keys)
			t.root = merge(t.root, sub)
			if !ok {
				t.minK, t.extOK = keys[0], true
			}
			if t.extOK {
				t.maxK = keys[len(keys)-1]
			}
			return len(keys)
		}
	}
	n := 0
	for _, k := range keys {
		if t.Insert(k) {
			n++
		}
	}
	return n
}

// ascending reports whether keys is strictly ascending.
func ascending[K cmp.Ordered](keys []K) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return false
		}
	}
	return true
}

// BuildSorted fills an empty tree from a strictly ascending batch in
// O(len(keys)) — the DeleteMin extraction inverse: a batch read out with
// Keys can be rebuilt without len·log(len) per-key descents. Draws one
// priority per key in key order (exactly the stream per-key Insert would
// consume), so the result is bit-identical to inserting the keys one by
// one. Panics if the tree is not empty or keys are not strictly
// ascending.
func (t *Tree[K]) BuildSorted(keys []K) {
	if t.root != nil {
		panic("treap: BuildSorted on a non-empty tree")
	}
	if len(keys) == 0 {
		return
	}
	t.root = t.buildAscending(keys)
	t.minK, t.maxK, t.extOK = keys[0], keys[len(keys)-1], true
}

// buildAscending builds a treap over the strictly ascending keys with
// one left-to-right pass over the right spine (the Cartesian-tree
// construction): each new node pops the spine suffix of lower priority
// as its left subtree. A popped node's subtree is final, so its size is
// written then; nodes still on the spine at the end extend to the last
// key. The size field doubles as the node's leftmost key index while the
// node is open (every open node sits on the spine with its final size
// not yet known). Panics on a non-ascending pair. O(len(keys)) time, no
// allocation beyond the arena slabs.
func (t *Tree[K]) buildAscending(keys []K) *node[K] {
	a := t.arena()
	var arr [96]*node[K]
	spine := arr[:0] // right spine, root first, priorities non-increasing
	for i, k := range keys {
		if i > 0 && k <= keys[i-1] {
			panic("treap: bulk build needs strictly ascending keys")
		}
		nn := a.newNode(k, t.rng.Uint64())
		nn.size = i // leftmost index while open
		var popped *node[K]
		for len(spine) > 0 && spine[len(spine)-1].prio < nn.prio {
			popped = spine[len(spine)-1]
			spine = spine[:len(spine)-1]
			lo := popped.size
			popped.size = i - lo // subtree is [lo, i-1], now final
			nn.size = lo         // nn inherits the popped chain's leftmost index
		}
		nn.left = popped
		if len(spine) > 0 {
			spine[len(spine)-1].right = nn
		}
		spine = append(spine, nn)
	}
	n := len(keys)
	for _, m := range spine {
		m.size = n - m.size // open subtrees extend to the last key
	}
	return spine[0]
}
