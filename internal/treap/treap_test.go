package treap

import (
	"slices"
	"testing"
	"testing/quick"

	"commtopk/internal/xrand"
)

func buildTree(t *testing.T, keys []uint64) *Tree[uint64] {
	t.Helper()
	tr := New[uint64](1)
	for _, k := range keys {
		tr.Insert(k)
	}
	return tr
}

func TestInsertContainsDelete(t *testing.T) {
	tr := New[uint64](1)
	if tr.Len() != 0 {
		t.Fatal("new tree not empty")
	}
	if !tr.Insert(5) || !tr.Insert(3) || !tr.Insert(8) {
		t.Fatal("insert of fresh keys failed")
	}
	if tr.Insert(5) {
		t.Error("duplicate insert should return false")
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
	if !tr.Contains(3) || tr.Contains(4) {
		t.Error("Contains wrong")
	}
	if !tr.Delete(3) || tr.Delete(3) {
		t.Error("Delete semantics wrong")
	}
	if tr.Len() != 2 {
		t.Errorf("Len after delete = %d", tr.Len())
	}
}

func TestMinMax(t *testing.T) {
	tr := New[int](2)
	if _, ok := tr.Min(); ok {
		t.Error("Min on empty should be !ok")
	}
	if _, ok := tr.Max(); ok {
		t.Error("Max on empty should be !ok")
	}
	for _, k := range []int{42, 7, 99, 13} {
		tr.Insert(k)
	}
	if mn, _ := tr.Min(); mn != 7 {
		t.Errorf("Min = %d", mn)
	}
	if mx, _ := tr.Max(); mx != 99 {
		t.Errorf("Max = %d", mx)
	}
}

func TestSelectRankAgainstSortedReference(t *testing.T) {
	rng := xrand.New(7)
	keys := make([]uint64, 0, 500)
	seen := map[uint64]bool{}
	for len(keys) < 500 {
		k := rng.Uint64() % 10000
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	tr := buildTree(t, keys)
	sorted := slices.Clone(keys)
	slices.Sort(sorted)
	for i, want := range sorted {
		got, ok := tr.Select(i)
		if !ok || got != want {
			t.Fatalf("Select(%d) = %d,%v want %d", i, got, ok, want)
		}
		// Rank of the i-th smallest is i.
		if r := tr.Rank(want); r != i {
			t.Fatalf("Rank(%d) = %d, want %d", want, r, i)
		}
	}
	if _, ok := tr.Select(-1); ok {
		t.Error("Select(-1) should fail")
	}
	if _, ok := tr.Select(len(sorted)); ok {
		t.Error("Select(n) should fail")
	}
	// Rank of a key larger than everything is n.
	if r := tr.Rank(1 << 60); r != len(sorted) {
		t.Errorf("Rank(huge) = %d, want %d", r, len(sorted))
	}
}

func TestSplitByKey(t *testing.T) {
	tr := buildTree(t, []uint64{1, 2, 3, 4, 5, 6, 7, 8})
	low := tr.SplitByKey(4)
	if got := low.Keys(); !slices.Equal(got, []uint64{1, 2, 3, 4}) {
		t.Errorf("low = %v", got)
	}
	if got := tr.Keys(); !slices.Equal(got, []uint64{5, 6, 7, 8}) {
		t.Errorf("high = %v", got)
	}
	// Split at an absent boundary.
	tr2 := buildTree(t, []uint64{10, 20, 30})
	low2 := tr2.SplitByKey(25)
	if got := low2.Keys(); !slices.Equal(got, []uint64{10, 20}) {
		t.Errorf("low2 = %v", got)
	}
	if got := tr2.Keys(); !slices.Equal(got, []uint64{30}) {
		t.Errorf("high2 = %v", got)
	}
	// Split below min and above max.
	tr3 := buildTree(t, []uint64{5, 6})
	if got := tr3.SplitByKey(1).Len(); got != 0 {
		t.Errorf("split below min kept %d", got)
	}
	if got := tr3.SplitByKey(100).Len(); got != 2 {
		t.Errorf("split above max kept %d", got)
	}
	if tr3.Len() != 0 {
		t.Errorf("tree should be empty, has %d", tr3.Len())
	}
}

func TestSplitByRank(t *testing.T) {
	tr := buildTree(t, []uint64{10, 20, 30, 40, 50})
	front := tr.SplitByRank(2)
	if got := front.Keys(); !slices.Equal(got, []uint64{10, 20}) {
		t.Errorf("front = %v", got)
	}
	if got := tr.Keys(); !slices.Equal(got, []uint64{30, 40, 50}) {
		t.Errorf("rest = %v", got)
	}
	if got := tr.SplitByRank(0).Len(); got != 0 {
		t.Errorf("SplitByRank(0) kept %d", got)
	}
	all := tr.SplitByRank(10)
	if all.Len() != 3 || tr.Len() != 0 {
		t.Errorf("SplitByRank(oversize): %d/%d", all.Len(), tr.Len())
	}
}

func TestConcat(t *testing.T) {
	a := buildTree(t, []uint64{1, 2, 3})
	b := buildTree(t, []uint64{10, 11})
	a.Concat(b)
	if got := a.Keys(); !slices.Equal(got, []uint64{1, 2, 3, 10, 11}) {
		t.Errorf("concat = %v", got)
	}
	if b.Len() != 0 {
		t.Error("source of concat should be empty")
	}
}

func TestConcatOverlapPanics(t *testing.T) {
	a := buildTree(t, []uint64{1, 5})
	b := buildTree(t, []uint64{3})
	defer func() {
		if recover() == nil {
			t.Error("overlapping Concat should panic")
		}
	}()
	a.Concat(b)
}

func TestSplitConcatRoundTrip(t *testing.T) {
	rng := xrand.New(3)
	tr := New[uint64](4)
	for i := 0; i < 300; i++ {
		tr.Insert(rng.Uint64() % 100000)
	}
	want := tr.Keys()
	mid := want[len(want)/2]
	low := tr.SplitByKey(mid)
	low.Concat(tr)
	got := low.Keys()
	if !slices.Equal(got, want) {
		t.Error("split+concat did not round-trip")
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := buildTree(t, []uint64{1, 2, 3, 4, 5})
	var seen []uint64
	tr.Ascend(func(k uint64) bool {
		seen = append(seen, k)
		return k < 3
	})
	if !slices.Equal(seen, []uint64{1, 2, 3}) {
		t.Errorf("early stop visited %v", seen)
	}
}

func TestInsertBulk(t *testing.T) {
	tr := New[uint64](9)
	n := tr.InsertBulk([]uint64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3})
	if n != 7 {
		t.Errorf("InsertBulk inserted %d, want 7 uniques", n)
	}
	if got := tr.Keys(); !slices.Equal(got, []uint64{1, 2, 3, 4, 5, 6, 9}) {
		t.Errorf("keys = %v", got)
	}
}

// Property test: a treap behaves exactly like a sorted set under a random
// operation sequence.
func TestQuickAgainstReferenceModel(t *testing.T) {
	type opSeq struct {
		Ops  []uint8
		Keys []uint16
	}
	check := func(s opSeq) bool {
		tr := New[uint16](11)
		ref := map[uint16]bool{}
		for i, op := range s.Ops {
			if i >= len(s.Keys) {
				break
			}
			k := s.Keys[i]
			switch op % 3 {
			case 0:
				ins := tr.Insert(k)
				if ins == ref[k] {
					return false // insert must succeed iff absent
				}
				ref[k] = true
			case 1:
				del := tr.Delete(k)
				if del != ref[k] {
					return false
				}
				delete(ref, k)
			case 2:
				if tr.Contains(k) != ref[k] {
					return false
				}
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		keys := tr.Keys()
		if !slices.IsSorted(keys) {
			return false
		}
		for _, k := range keys {
			if !ref[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property test: Select/Rank stay mutually inverse under random contents.
func TestQuickSelectRankInverse(t *testing.T) {
	check := func(raw []uint16) bool {
		tr := New[uint16](13)
		for _, k := range raw {
			tr.Insert(k)
		}
		for i := 0; i < tr.Len(); i++ {
			k, ok := tr.Select(i)
			if !ok || tr.Rank(k) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBalanceIsLogarithmic(t *testing.T) {
	// Insert a sorted sequence (worst case for a BST) and verify expected
	// logarithmic depth via operation behaviour: rank queries on a
	// 100k-node path-shaped tree would blow the stack; completing quickly
	// without deep recursion is the signal. We check Select on extremes.
	tr := New[int](17)
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Insert(i)
	}
	if k, _ := tr.Select(0); k != 0 {
		t.Error("min wrong")
	}
	if k, _ := tr.Select(n - 1); k != n-1 {
		t.Error("max wrong")
	}
	if tr.Rank(n/2) != n/2 {
		t.Error("median rank wrong")
	}
}

func TestMinMaxCacheUnderMutation(t *testing.T) {
	// The O(1) min/max cache must stay correct across inserts, deletes of
	// extremes, splits and concats.
	tr := New[int](21)
	check := func(wantMin, wantMax int) {
		t.Helper()
		mn, ok1 := tr.Min()
		mx, ok2 := tr.Max()
		if !ok1 || !ok2 || mn != wantMin || mx != wantMax {
			t.Fatalf("min/max = %d,%d (%v,%v), want %d,%d", mn, mx, ok1, ok2, wantMin, wantMax)
		}
	}
	tr.Insert(50)
	check(50, 50)
	tr.Insert(10)
	tr.Insert(90)
	check(10, 90)
	tr.Delete(10) // delete min -> cache invalidated
	check(50, 90)
	tr.Delete(90) // delete max
	check(50, 50)
	tr.InsertBulk([]int{1, 2, 3, 99})
	check(1, 99)
	low := tr.SplitByKey(3) // receiver keeps > 3
	check(50, 99)
	if mn, _ := low.Min(); mn != 1 {
		t.Fatalf("split-off min %d", mn)
	}
	low.Concat(tr) // low gets everything back
	mn, _ := low.Min()
	mx, _ := low.Max()
	if mn != 1 || mx != 99 {
		t.Fatalf("concat min/max = %d/%d", mn, mx)
	}
	front := low.SplitByRank(2) // {1,2}
	if mx, _ := front.Max(); mx != 2 {
		t.Fatalf("rank-split max %d", mx)
	}
	if mn, _ := low.Min(); mn != 3 {
		t.Fatalf("remainder min %d", mn)
	}
}

func TestQuickMinMaxAgainstModel(t *testing.T) {
	check := func(ops []uint16) bool {
		tr := New[uint16](23)
		ref := map[uint16]bool{}
		for i, raw := range ops {
			k := raw % 64
			if i%3 == 0 {
				tr.Delete(k)
				delete(ref, k)
			} else {
				tr.Insert(k)
				ref[k] = true
			}
			// Model min/max.
			if len(ref) == 0 {
				if _, ok := tr.Min(); ok {
					return false
				}
				continue
			}
			var mn, mx uint16 = 65535, 0
			for v := range ref {
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			gmn, _ := tr.Min()
			gmx, _ := tr.Max()
			if gmn != mn || gmx != mx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// checkInvariants walks the whole tree verifying the BST order, the heap
// property on priorities, and — critical for the iterative split/merge
// paths, which write sizes top-down without an unwinding update pass —
// that every node's size equals 1 + size(left) + size(right).
func checkInvariants(t *testing.T, tr *Tree[uint64]) {
	t.Helper()
	var walk func(n *node[uint64], lo, hi *uint64) int
	walk = func(n *node[uint64], lo, hi *uint64) int {
		if n == nil {
			return 0
		}
		if lo != nil && n.key <= *lo {
			t.Fatalf("BST order violated: %d <= bound %d", n.key, *lo)
		}
		if hi != nil && n.key >= *hi {
			t.Fatalf("BST order violated: %d >= bound %d", n.key, *hi)
		}
		if n.left != nil && n.left.prio > n.prio {
			t.Fatalf("heap order violated at %d", n.key)
		}
		if n.right != nil && n.right.prio > n.prio {
			t.Fatalf("heap order violated at %d", n.key)
		}
		sz := 1 + walk(n.left, lo, &n.key) + walk(n.right, &n.key, hi)
		if n.size != sz {
			t.Fatalf("size at key %d = %d, want %d", n.key, n.size, sz)
		}
		return sz
	}
	walk(tr.root, nil, nil)
}

// TestIterativeOpsInvariants hammers the iterative split/merge/delete
// paths with a random op mix and re-verifies the full structural
// invariants after every mutation.
func TestIterativeOpsInvariants(t *testing.T) {
	rng := xrand.New(42)
	tr := New[uint64](7)
	live := map[uint64]bool{}
	for op := 0; op < 2000; op++ {
		switch rng.Uint64() % 5 {
		case 0, 1: // insert
			k := rng.Uint64() % 4096
			if tr.Insert(k) == live[k] {
				t.Fatalf("Insert(%d) disagreed with model", k)
			}
			live[k] = true
		case 2: // delete
			k := rng.Uint64() % 4096
			if tr.Delete(k) != live[k] {
				t.Fatalf("Delete(%d) disagreed with model", k)
			}
			delete(live, k)
		case 3: // split by key, then concat back
			k := rng.Uint64() % 4096
			low := tr.SplitByKey(k)
			checkInvariants(t, low)
			checkInvariants(t, tr)
			if lm, ok := low.Max(); ok && lm > k {
				t.Fatalf("SplitByKey(%d) left %d in low side", k, lm)
			}
			if tm, ok := tr.Min(); ok && tm <= k {
				t.Fatalf("SplitByKey(%d) left %d in high side", k, tm)
			}
			low.Concat(tr)
			*tr = *low
		case 4: // split by rank, then concat back
			if n := tr.Len(); n > 0 {
				i := int(rng.Uint64() % uint64(n+1))
				low := tr.SplitByRank(i)
				checkInvariants(t, low)
				checkInvariants(t, tr)
				if low.Len() != i {
					t.Fatalf("SplitByRank(%d) gave %d keys", i, low.Len())
				}
				low.Concat(tr)
				*tr = *low
			}
		}
		checkInvariants(t, tr)
		if tr.Len() != len(live) {
			t.Fatalf("Len = %d, model has %d", tr.Len(), len(live))
		}
	}
	keys := tr.Keys()
	if !slices.IsSorted(keys) {
		t.Fatal("Keys not sorted after op mix")
	}
}

// TestIterativeOpsZeroAlloc pins the allocation-free contract of the
// per-DeleteMin treap operations: Delete (contains-walk + hook splice +
// iterative merge), SplitByRank, Concat, and Ascend must not allocate.
func TestIterativeOpsZeroAlloc(t *testing.T) {
	tr := New[uint64](3)
	for i := uint64(0); i < 4096; i++ {
		tr.Insert(i * 2654435761 % 1000003)
	}
	key := uint64(4*2654435761) % 1000003
	if a := testing.AllocsPerRun(100, func() {
		tr.Delete(key)
		tr.Insert(key)
	}); a > 1 { // Insert allocates exactly its one node
		t.Errorf("Delete+Insert allocs = %v, want <= 1", a)
	}
	if a := testing.AllocsPerRun(100, func() {
		sum := uint64(0)
		tr.Ascend(func(k uint64) bool {
			sum += k
			return true
		})
	}); a != 0 {
		t.Errorf("Ascend allocs = %v, want 0", a)
	}
}
