package sel

import (
	"cmp"
	"fmt"

	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/xrand"
)

// Continuation forms of the multisequence selection algorithms (Section
// 4, Algorithms 9 and 2) over the Seq interface — the engines behind the
// bulk-parallel priority queue's DeleteMin. The same discipline as
// kthStep (async.go): pooled per-PE state, every communication round
// delegated to the collective steppers of internal/coll held in the cur
// slot, result-delivery closures and generic operator func values cached
// on the pooled object so steady-state dispatch is allocation-free. The
// blocking MSSelect/AMSSelect drive these steppers through comm.RunSteps
// — one implementation, both execution modes, bit-identical results,
// RNG consumption and metered schedule (pinned by the bpq differential
// fuzz op and the stepper A/B tests).

// msSelectStep phases.
const (
	msphInit       = iota // restrict the window, start the init size sum
	msphInitSum           // harvest n, validate k
	msphTotal             // start the per-iteration window sum
	msphTotalWait         // harvest total; branch base case vs pivot draw
	msphSingleWait        // total == 1: harvest the owner broadcast
	msphPrevWait          // harvest the exclusive prefix, publish the pivot
	msphPivotWait         // harvest the pivot, start the 2-counter reduce
	msphSumsWait          // harvest (globLess, globLE) and narrow or finish
	msphDone
)

type msSelectStep[K cmp.Ordered] struct {
	pe     *comm.PE
	s      Seq[K]
	shared *xrand.RNG
	out    func(K, int)
	self   bool
	k      int64
	resV   K
	resN   int

	lo, hi int
	kRem   int64
	r      int64 // pivot position among remaining candidates
	pivot  K
	jLess  int
	jLE    int

	// Current collective sub-stepper and its harvested results.
	cur  comm.Stepper
	i64  int64
	tg   tagged[K]
	sums [2]int64

	// Cached closures and operator func values (see kthStep).
	onI64   func(int64)
	onTag   func(tagged[K])
	onSums  func([]int64)
	opFirst func(a, b tagged[K]) tagged[K]

	phase int
}

func newMSSelectStep[K cmp.Ordered](pe *comm.PE, s Seq[K], k int64, shared *xrand.RNG, out func(K, int), self bool) *msSelectStep[K] {
	st := comm.GetPooled[msSelectStep[K]](pe)
	st.pe = pe
	st.s, st.k, st.shared, st.out, st.self = s, k, shared, out, self
	st.phase = msphInit
	st.cur = nil
	if st.onI64 == nil {
		st.onI64 = func(v int64) { st.i64 = v }
		st.onTag = func(v tagged[K]) { st.tg = v }
		st.onSums = func(v []int64) { st.sums[0], st.sums[1] = v[0], v[1] }
		st.opFirst = firstTagged[K]
	}
	return st
}

// MSSelectStep is the continuation form of MSSelect: out (optional)
// receives, on every PE, the element of global rank k and this PE's
// local count of elements ≤ it. Semantics, panics, shared-stream
// consumption and the metered schedule match MSSelect exactly —
// MSSelect is this stepper driven with blocking waits.
func MSSelectStep[K cmp.Ordered](pe *comm.PE, s Seq[K], k int64, shared *xrand.RNG, out func(v K, localLE int)) comm.Stepper {
	return newMSSelectStep(pe, s, k, shared, out, true)
}

func (st *msSelectStep[K]) release(pe *comm.PE) {
	var zero K
	st.s, st.shared, st.out, st.cur = nil, nil, nil, nil
	st.resV, st.pivot = zero, zero
	st.tg = tagged[K]{}
	comm.PutPooled(pe, st)
}

func (st *msSelectStep[K]) finish(pe *comm.PE, v K, n int) *comm.RecvHandle {
	st.resV, st.resN = v, n
	st.phase = msphDone
	if st.self {
		out := st.out
		st.release(pe)
		if out != nil {
			out(v, n)
		}
	}
	return nil
}

func (st *msSelectStep[K]) Step(pe *comm.PE) *comm.RecvHandle {
	for {
		if st.cur != nil {
			if h := st.cur.Step(pe); h != nil {
				return h
			}
			st.cur = nil
		}
		switch st.phase {
		case msphInit:
			// Restrict to the first k elements of each local sequence
			// (Appendix A).
			st.lo, st.hi = 0, st.s.Len()
			if int64(st.hi) > st.k {
				st.hi = int(st.k)
			}
			st.cur = coll.AllReduceScalarStep(pe, int64(st.hi-st.lo), addInt64, st.onI64)
			st.phase = msphInitSum
		case msphInitSum:
			if st.k < 1 || st.k > st.i64 {
				panic(fmt.Sprintf("sel: MSSelect rank %d out of range 1..%d", st.k, st.i64))
			}
			st.kRem = st.k
			st.phase = msphTotal
		case msphTotal:
			st.cur = coll.AllReduceScalarStep(pe, int64(st.hi-st.lo), addInt64, st.onI64)
			st.phase = msphTotalWait
		case msphTotalWait:
			total := st.i64
			if total == 1 {
				var cand tagged[K]
				if st.hi-st.lo == 1 {
					cand = tagged[K]{Has: true, Val: st.s.At(st.lo)}
				}
				st.cur = coll.AllReduceScalarStep(pe, cand, st.opFirst, st.onTag)
				st.phase = msphSingleWait
				continue
			}
			// Same random number on all PEs selects the pivot position
			// among the remaining candidates; its owner publishes the key.
			st.r = st.shared.Int63n(total)
			st.cur = coll.ExScanSumStep(pe, int64(st.hi-st.lo), st.onI64)
			st.phase = msphPrevWait
		case msphSingleWait:
			v := st.tg.Val
			return st.finish(pe, v, st.s.CountLE(v))
		case msphPrevWait:
			prev := st.i64
			var cand tagged[K]
			if st.r >= prev && st.r < prev+int64(st.hi-st.lo) {
				cand = tagged[K]{Has: true, Val: st.s.At(st.lo + int(st.r-prev))}
			}
			st.cur = coll.AllReduceScalarStep(pe, cand, st.opFirst, st.onTag)
			st.phase = msphPivotWait
		case msphPivotWait:
			v := st.tg.Val
			st.pivot = v
			st.jLess = clampInt(st.s.CountLess(v), st.lo, st.hi) - st.lo
			st.jLE = clampInt(st.s.CountLE(v), st.lo, st.hi) - st.lo
			var jv [2]int64
			jv[0], jv[1] = int64(st.jLess), int64(st.jLE)
			st.cur = coll.AllReduceIntoStep(pe, comm.ScratchSlice[int64](pe, "sel.ms.sums", 2),
				jv[:], addInt64, st.onSums)
			st.phase = msphSumsWait
		case msphSumsWait:
			globLess, globLE := st.sums[0], st.sums[1]
			switch {
			case st.kRem <= globLess:
				st.hi = st.lo + st.jLess
				st.phase = msphTotal
			case st.kRem <= globLE:
				// Unique keys: the pivot itself is the answer.
				return st.finish(pe, st.pivot, st.s.CountLE(st.pivot))
			default:
				st.lo += st.jLE
				st.kRem -= globLE
				st.phase = msphTotal
			}
		default:
			return nil
		}
	}
}

// amsSelectStep phases.
const (
	aphInit         = iota // start the global size sum
	aphInitSum             // harvest n, set up the round state
	aphRound               // dispatch one estimation round (or the base/fallback)
	aphAllWait             // k̄ ≥ remaining: harvest the global max
	aphVsWait              // harvest candidate thresholds, start the rank sums
	aphKsWait              // harvest ranks; success check or narrow
	aphFallbackWait        // exact MSSelect fallback completed
	aphDone
)

const amsMaxRounds = 60

type amsSelectStep[K cmp.Ordered] struct {
	pe   *comm.PE
	s    Seq[K]
	rng  *xrand.RNG
	out  func(AMSResult[K])
	self bool
	d    int
	kmin int64
	kmax int64
	n    int64 // initial global size (the fallback seed needs it)
	res  AMSResult[K]

	lo, hi       int
	accepted     int64
	kminR, kmaxR int64
	nR           int64
	round        int
	useMin       bool

	// Current collective sub-stepper and its harvested results.
	cur comm.Stepper
	i64 int64
	tg  tagged[K]
	vs  []tagged[K]
	ks  []int64
	ms  *msSelectStep[K]

	// Cached closures and operator func values (see kthStep).
	onI64 func(int64)
	onTag func(tagged[K])
	onVs  func([]tagged[K])
	onKs  func([]int64)
	opMin func(a, b tagged[K]) tagged[K]
	opMax func(a, b tagged[K]) tagged[K]

	phase int
}

func newAMSSelectStep[K cmp.Ordered](pe *comm.PE, s Seq[K], kmin, kmax int64, rng *xrand.RNG, d int, out func(AMSResult[K]), self bool) *amsSelectStep[K] {
	if kmin < 1 || kmax < kmin {
		panic(fmt.Sprintf("sel: AMSSelect invalid range [%d, %d]", kmin, kmax))
	}
	st := comm.GetPooled[amsSelectStep[K]](pe)
	st.pe = pe
	st.s, st.kmin, st.kmax, st.rng, st.d, st.out, st.self = s, kmin, kmax, rng, d, out, self
	st.phase = aphInit
	st.cur = nil
	if st.onI64 == nil {
		st.onI64 = func(v int64) { st.i64 = v }
		st.onTag = func(v tagged[K]) { st.tg = v }
		st.onVs = func(v []tagged[K]) { st.vs = v }
		st.onKs = func(v []int64) { st.ks = v }
		st.opMin = minTagged[K]
		st.opMax = maxTagged[K]
	}
	return st
}

// AMSSelectStep is the continuation form of AMSSelect: out (optional)
// receives the flexible selection result on every PE. Semantics, panics,
// per-PE RNG consumption and the metered schedule match AMSSelect
// exactly — AMSSelect is this stepper driven with blocking waits.
func AMSSelectStep[K cmp.Ordered](pe *comm.PE, s Seq[K], kmin, kmax int64, rng *xrand.RNG, out func(AMSResult[K])) comm.Stepper {
	return newAMSSelectStep(pe, s, kmin, kmax, rng, 1, out, true)
}

func (st *amsSelectStep[K]) release(pe *comm.PE) {
	st.s, st.rng, st.out, st.cur = nil, nil, nil, nil
	st.vs, st.ks, st.ms = nil, nil, nil
	st.res = AMSResult[K]{}
	st.tg = tagged[K]{}
	comm.PutPooled(pe, st)
}

func (st *amsSelectStep[K]) finish(pe *comm.PE, r AMSResult[K]) *comm.RecvHandle {
	st.res = r
	st.phase = aphDone
	if st.self {
		out := st.out
		st.release(pe)
		if out != nil {
			out(r)
		}
	}
	return nil
}

func (st *amsSelectStep[K]) Step(pe *comm.PE) *comm.RecvHandle {
	for {
		if st.cur != nil {
			if h := st.cur.Step(pe); h != nil {
				return h
			}
			st.cur = nil
		}
		switch st.phase {
		case aphInit:
			st.cur = coll.AllReduceScalarStep(pe, int64(st.s.Len()), addInt64, st.onI64)
			st.phase = aphInitSum
		case aphInitSum:
			n := st.i64
			if st.kmin > n {
				panic(fmt.Sprintf("sel: AMSSelect k̲=%d exceeds input size %d", st.kmin, n))
			}
			st.n = n
			st.lo, st.hi = 0, st.s.Len()
			st.accepted = 0
			st.kminR, st.kmaxR = st.kmin, st.kmax
			st.nR = n
			st.round = 1
			st.phase = aphRound
		case aphRound:
			if st.round > amsMaxRounds {
				// Flexible search failed to converge (degenerate interval);
				// finish exactly. The shared stream must be identical across
				// PEs: derive it from quantities all PEs agree on.
				shared := xrand.New(int64(0x5eed + st.kmin + 31*st.kmax + 977*st.n))
				sub := subSeq[K]{s: st.s, lo: st.lo, hi: st.hi}
				st.ms = newMSSelectStep[K](pe, sub, st.kminR, shared, nil, false)
				st.cur = st.ms
				st.phase = aphFallbackWait
				continue
			}
			if st.kmaxR >= st.nR {
				// Everything remaining fits: threshold is the global max.
				var cand tagged[K]
				if st.hi-st.lo > 0 {
					cand = tagged[K]{Has: true, Val: st.s.At(st.hi - 1)}
				}
				st.cur = coll.AllReduceScalarStep(pe, cand, st.opMax, st.onTag)
				st.phase = aphAllWait
				continue
			}
			// Draw d candidate thresholds with the dual estimator (see the
			// blocking form's rationale in sel.go).
			st.useMin = st.kmaxR < st.nR-st.kmaxR
			cands := comm.ScratchSlice[tagged[K]](pe, "sel.ams.cands", st.d)
			clear(cands) // scratch reuse: absent candidates must read as zero
			for t := 0; t < st.d; t++ {
				if st.useMin {
					rho := amsRho(st.kminR, st.kmaxR)
					x := st.rng.Geometric(rho)
					if x <= int64(st.hi-st.lo) {
						cands[t] = tagged[K]{Has: true, Val: st.s.At(st.lo + int(x) - 1)}
					}
				} else {
					rho := amsRho(st.nR-st.kmaxR+1, st.nR-st.kminR+1)
					x := st.rng.Geometric(rho)
					if x <= int64(st.hi-st.lo) {
						cands[t] = tagged[K]{Has: true, Val: st.s.At(st.hi - int(x))}
					}
				}
			}
			vsDst := comm.ScratchSlice[tagged[K]](pe, "sel.ams.vs", st.d)
			if st.useMin {
				st.cur = coll.AllReduceIntoStep(pe, vsDst, cands, st.opMin, st.onVs)
			} else {
				st.cur = coll.AllReduceIntoStep(pe, vsDst, cands, st.opMax, st.onVs)
			}
			st.phase = aphVsWait
		case aphAllWait:
			return st.finish(pe, AMSResult[K]{
				Threshold: st.tg.Val,
				Count:     st.accepted + st.nR,
				LocalLen:  st.hi,
				Rounds:    st.round,
			})
		case aphVsWait:
			// Rank all candidates with one vector-valued sum.
			js := comm.ScratchSlice[int64](pe, "sel.ams.js", st.d)
			for t := 0; t < st.d; t++ {
				if st.vs[t].Has {
					js[t] = int64(clampInt(st.s.CountLE(st.vs[t].Val), st.lo, st.hi) - st.lo)
				} else {
					// No PE produced a candidate (all deviates overshot):
					// treat as "everything ≤ v", forcing the window logic to
					// keep the full window and retry.
					js[t] = int64(st.hi - st.lo)
				}
			}
			st.cur = coll.AllReduceIntoStep(pe, comm.ScratchSlice[int64](pe, "sel.ams.ks", st.d),
				js, addInt64, st.onKs)
			st.phase = aphKsWait
		case aphKsWait:
			// Success check, then narrow to (largest under, smallest over).
			js := comm.ScratchSlice[int64](pe, "sel.ams.js", st.d)
			bestUnder := int64(-1)
			bestUnderJ := 0
			bestOver := st.nR
			bestOverJ := st.hi - st.lo
			for t := 0; t < st.d; t++ {
				if !st.vs[t].Has {
					continue
				}
				k := st.ks[t]
				switch {
				case k >= st.kminR && k <= st.kmaxR:
					return st.finish(pe, AMSResult[K]{
						Threshold: st.vs[t].Val,
						Count:     st.accepted + k,
						LocalLen:  st.lo + int(js[t]),
						Rounds:    st.round,
					})
				case k < st.kminR && k > bestUnder:
					bestUnder, bestUnderJ = k, int(js[t])
				case k > st.kmaxR && k < bestOver:
					bestOver, bestOverJ = k, int(js[t])
				}
			}
			nROld := st.nR
			if bestUnder >= 0 {
				st.accepted += bestUnder
				st.kminR -= bestUnder
				st.kmaxR -= bestUnder
				st.nR -= bestUnder
				st.lo += bestUnderJ
				bestOverJ -= bestUnderJ
			}
			if bestOver < nROld {
				st.nR = bestOver - max(bestUnder, 0)
				st.hi = st.lo + bestOverJ
			}
			st.round++
			st.phase = aphRound
		case aphFallbackWait:
			v := st.ms.resV
			st.ms.release(pe)
			st.ms = nil
			return st.finish(pe, AMSResult[K]{
				Threshold: v,
				Count:     st.accepted + st.kminR,
				LocalLen:  st.s.CountLE(v),
				Rounds:    amsMaxRounds,
			})
		default:
			return nil
		}
	}
}
