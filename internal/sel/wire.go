package sel

import (
	"cmp"

	"commtopk/internal/coll"
	"commtopk/internal/wire"
)

// RegisterWireCodecs registers the payload codecs the selection
// algorithms over key type K put on a cross-process frame: the full
// collective set for K plus the tagged optional-value carrier the min/max
// reductions use. Call it from the shared registration package (see
// internal/wire/wireprogs) of every binary that runs sel or bpq programs
// on comm.BackendWire; elemName is the on-wire identity of K and must
// match across processes.
func RegisterWireCodecs[K cmp.Ordered](elemName string) {
	coll.RegisterWireCodecs[K](elemName)
	wire.RegisterPOD[tagged[K]]("sel.tagged[" + elemName + "]")
}
