package sel

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/qsel"
	"commtopk/internal/xrand"
)

// Continuation form of Algorithm 1's collective skeleton. KthStep
// expresses unsorted selection — the size sum, the per-level pivot
// gather + broadcast, the partition-count all-reduce, and the residual
// gather-and-solve base case — as a comm.Stepper, so the full selection
// benchmark runs under Machine.RunAsync with O(w) mid-run goroutines.
// The blocking Kth drives the same stepper through comm.RunSteps: one
// implementation, both execution modes, bit-identical results and meter
// (pinned by the differential fuzz and the scaling suite's A/B twins).
//
// The recursion of the blocking formulation is all tail calls, so the
// stepper runs it as a loop over a candidate window of the per-PE work
// buffer; every communication round delegates to the pooled collective
// steppers of internal/coll, held in the cur slot and driven to
// completion before the state machine advances. The state struct is
// pooled per PE (comm.GetPooled); the result-delivery closures handed to
// the sub-steppers are built once per pooled object and reused, so
// steady-state dispatch allocates only what the blocking form always
// has (the gather materializations and broadcast boxing).

// kthStep phases.
const (
	kphInit         = iota // start the global size sum
	kphInitSum             // harvest n, validate k, set up the work window
	kphLoop                // dispatch one recursion level
	kphMinWait             // k == 1 base case: harvest the min-reduction
	kphSolveGather         // gatherSolve: residual gathered, start the broadcast
	kphSolveBcast          // gatherSolve: harvest the k-th element
	kphPivGather           // sample gathered (root picked pivots), start broadcast
	kphPivBcast            // harvest pivots; partition and start the count reduce
	kphFallbackMin         // empty sample: harvest global min, start max reduce
	kphFallbackMax         // empty sample: harvest global max, partition
	kphCountsWait          // harvest (na, nb) and branch the recursion
	kphPeelWait            // tie-peel: harvest the global tie count and branch
	kphDone
)

// gather modes of the shared Gatherv callback.
const (
	gmPivots = iota // pickPivots: concatenate the sample, extract two pivots
	gmSolve         // gatherSolve: concatenate the residual, select the k-th
)

type kthStep[K cmp.Ordered] struct {
	pe    *comm.PE
	local []K
	k     int64
	rng   *xrand.RNG
	out   func(K)
	self  bool // self-release + out on completion (the KthStep form)
	res   K

	// The recursion state: win is the live candidate window of the
	// per-PE work buffer, kRem/n the remaining rank and global size.
	win   []K
	kRem  int64
	n     int64
	depth int

	// Current collective sub-stepper and its harvested results.
	cur        comm.Stepper
	gatherMode int
	i64        int64
	tg         tagged[K]
	pivots     []K // scratch-backed ("sel.pivots.out"), root work in onParts
	gotPiv     []K // broadcast result (shared, read immediately)
	kthVal     K   // gatherSolve root result
	pivLo      K
	pivHi      K
	na, nb     int64
	la, lb     int // local three-way partition boundaries of win
	nEqLocal   int // local size of the peeled tie group

	// Cached result-delivery closures and operator func values (one
	// allocation per pooled object, not per op — a func value built in a
	// generic context carries the type dictionary and would otherwise
	// heap-allocate at every use). The closures capture only s;
	// everything else is read through fields at call time.
	onI64   func(int64)
	onTag   func(tagged[K])
	onParts func([][]K)
	onPiv   func([]K)
	onSums  func([]int64)
	onK     func(K)
	opMin   func(a, b tagged[K]) tagged[K]
	opMax   func(a, b tagged[K]) tagged[K]

	phase int
}

func newKthStep[K cmp.Ordered](pe *comm.PE, local []K, k int64, rng *xrand.RNG, out func(K), self bool) *kthStep[K] {
	s := comm.GetPooled[kthStep[K]](pe)
	s.pe = pe
	s.local, s.k, s.rng, s.out, s.self = local, k, rng, out, self
	s.phase = kphInit
	s.cur = nil
	s.depth = 0
	if s.onI64 == nil {
		s.onI64 = func(v int64) { s.i64 = v }
		s.onTag = func(v tagged[K]) { s.tg = v }
		s.onParts = func(parts [][]K) { s.consumeGather(parts) }
		s.onPiv = func(v []K) { s.gotPiv = v }
		s.onSums = func(v []int64) { s.na, s.nb = v[0], v[1] }
		s.onK = func(v K) { s.kthVal = v }
		s.opMin = minTagged[K]
		s.opMax = maxTagged[K]
	}
	return s
}

// KthStep is the continuation form of Kth: out (optional) receives the
// element of global rank k on every PE. Semantics, panics, RNG
// consumption and the metered schedule match Kth exactly — Kth is this
// stepper driven with blocking waits.
func KthStep[K cmp.Ordered](pe *comm.PE, local []K, k int64, rng *xrand.RNG, out func(K)) comm.Stepper {
	return newKthStep(pe, local, k, rng, out, true)
}

// release returns the state to the PE pool, keeping the cached closures
// (and their one-time allocation) for the next use.
func (s *kthStep[K]) release(pe *comm.PE) {
	var zero K
	s.local, s.win, s.rng, s.out = nil, nil, nil, nil
	s.cur = nil
	s.pivots, s.gotPiv = nil, nil
	s.res, s.kthVal, s.pivLo, s.pivHi = zero, zero, zero, zero
	s.tg = tagged[K]{}
	comm.PutPooled(pe, s)
}

// consumeGather is the shared Gatherv callback: parts is the borrowed
// rank-indexed view (root only; nil elsewhere) and must be consumed
// before returning.
func (s *kthStep[K]) consumeGather(parts [][]K) {
	pe := s.pe
	switch s.gatherMode {
	case gmPivots:
		// Extract the two pivots at the root and ship back only those:
		// order statistics, not a sort (see the blocking pickPivots'
		// rationale, which this reproduces verbatim).
		pivots := comm.ScratchSlice[K](pe, "sel.pivots.out", 2)[:0]
		if parts != nil {
			var total int
			for _, part := range parts {
				total += len(part)
			}
			all := comm.ScratchSlice[K](pe, "sel.pivots.concat", total)[:0]
			for _, part := range parts {
				all = append(all, part...)
			}
			if m := int64(len(all)); m > 0 {
				r := s.kRem * m / s.n
				delta := int64(math.Ceil(math.Pow(float64(m), 0.5+0.1)))
				iLo := int(clamp(r-delta, 0, m-1))
				iHi := int(clamp(r+delta, 0, m-1))
				// Value-only order statistics: SelectInto leaves the
				// concatenated sample untouched, so the two ranks are
				// extracted independently (no reliance on Select's
				// partition side effect) through the bucket kernel.
				ws := comm.ScratchSlice[K](pe, "sel.pivots.ws", total)
				vLo := qsel.SelectInto(ws, all, iLo)
				vHi := qsel.SelectInto(ws, all, iHi)
				pivots = append(pivots, vLo, vHi)
			}
		}
		s.pivots = pivots
	default: // gmSolve
		if parts == nil {
			return
		}
		var total int
		for _, part := range parts {
			total += len(part)
		}
		all := comm.ScratchSlice[K](pe, "sel.gather.concat", total)[:0]
		for _, part := range parts {
			all = append(all, part...)
		}
		if s.kRem < 1 || s.kRem > int64(len(all)) {
			panic(fmt.Sprintf("sel: internal rank %d out of residual range %d", s.kRem, len(all)))
		}
		ws := comm.ScratchSlice[K](pe, "sel.gather.ws", total)
		s.kthVal = qsel.SelectInto(ws, all, int(s.kRem-1))
	}
}

// startCounts partitions the window around the pivots in place and
// launches the two-counter all-reduce (the "partition counting scan").
func (s *kthStep[K]) startCounts(pe *comm.PE) {
	s.la, s.lb = qsel.PartitionRange(s.win, s.pivLo, s.pivHi)
	counts := comm.ScratchSlice[int64](pe, "sel.kth.counts.in", 2)
	counts[0], counts[1] = int64(s.la), int64(s.lb)
	s.cur = coll.AllReduceIntoStep(pe, comm.ScratchSlice[int64](pe, "sel.kth.counts", 2),
		counts, addInt64, s.onSums)
	s.phase = kphCountsWait
}

func addInt64(a, b int64) int64 { return a + b }

// finish delivers the result: the KthStep form releases itself and calls
// out; the blocking driver harvests res and releases explicitly.
func (s *kthStep[K]) finish(pe *comm.PE, v K) *comm.RecvHandle {
	s.res = v
	s.phase = kphDone
	if s.self {
		out := s.out
		s.release(pe)
		if out != nil {
			out(v)
		}
	}
	return nil
}

func (s *kthStep[K]) Step(pe *comm.PE) *comm.RecvHandle {
	for {
		if s.cur != nil {
			if h := s.cur.Step(pe); h != nil {
				return h
			}
			s.cur = nil
		}
		switch s.phase {
		case kphInit:
			s.cur = coll.AllReduceScalarStep(pe, int64(len(s.local)), addInt64, s.onI64)
			s.phase = kphInitSum
		case kphInitSum:
			s.n = s.i64
			if s.k < 1 || s.k > s.n {
				panic(fmt.Sprintf("sel: rank %d out of range 1..%d", s.k, s.n))
			}
			work := comm.ScratchSlice[K](pe, "sel.kth.work", len(s.local))
			copy(work, s.local)
			s.win = work
			s.kRem = s.k
			s.phase = kphLoop
		case kphLoop:
			if s.kRem == 1 {
				// Base case of Algorithm 1: a single min-reduction.
				var cand tagged[K]
				if len(s.win) > 0 {
					cand = tagged[K]{Has: true, Val: slices.Min(s.win)}
				}
				s.cur = coll.AllReduceScalarStep(pe, cand, s.opMin, s.onTag)
				s.phase = kphMinWait
				continue
			}
			if s.n <= baseCaseLimit(pe.P()) || s.depth > 120 {
				s.gatherMode = gmSolve
				s.cur = coll.GathervStep(pe, 0, s.win, s.onParts)
				s.phase = kphSolveGather
				continue
			}
			// pickPivots: draw the Bernoulli sample of expected size Θ(√p)
			// into per-PE scratch (growth stored back, paid once per size)
			// and gather it on the root.
			pf := float64(pe.P())
			target := 4 * (math.Sqrt(pf) + 8)
			rho := target / float64(s.n)
			if rho > 1 {
				rho = 1
			}
			scratch := comm.ScratchSlice[K](pe, "sel.pivots.sample", int(4*target)/pe.P()+16)
			sample := scratch[:0]
			sk := xrand.NewSkipSampler(s.rng, rho)
			for idx := sk.Next(); idx < int64(len(s.win)); idx = sk.Next() {
				sample = append(sample, s.win[idx])
			}
			if cap(sample) > cap(scratch) {
				grown := sample
				pe.SetScratch("sel.pivots.sample", &grown)
			}
			s.gatherMode = gmPivots
			s.cur = coll.GathervStep(pe, 0, sample, s.onParts)
			s.phase = kphPivGather
		case kphMinWait:
			return s.finish(pe, s.tg.Val)
		case kphSolveGather:
			s.cur = coll.BroadcastScalarStep(pe, 0, s.kthVal, s.onK)
			s.phase = kphSolveBcast
		case kphSolveBcast:
			return s.finish(pe, s.kthVal)
		case kphPivGather:
			s.cur = coll.BroadcastStep(pe, 0, s.pivots, s.onPiv)
			s.phase = kphPivBcast
		case kphPivBcast:
			if len(s.gotPiv) == 0 {
				// Extremely unlucky sample; fall back to the global extremes
				// so the next round keeps everything.
				s.cur = coll.AllReduceScalarStep(pe, localMinTagged(s.win), s.opMin, s.onTag)
				s.phase = kphFallbackMin
				continue
			}
			s.pivLo, s.pivHi = s.gotPiv[0], s.gotPiv[1]
			s.gotPiv = nil
			s.startCounts(pe)
		case kphFallbackMin:
			s.pivLo = s.tg.Val
			s.cur = coll.AllReduceScalarStep(pe, localMaxTagged(s.win), s.opMax, s.onTag)
			s.phase = kphFallbackMax
		case kphFallbackMax:
			s.pivHi = s.tg.Val
			s.startCounts(pe)
		case kphCountsWait:
			na, nb := s.na, s.nb
			switch {
			case na >= s.kRem:
				s.win = s.win[:s.la]
				s.n = na
				s.depth++
				s.phase = kphLoop
			case na+nb < s.kRem:
				s.win = s.win[s.la+s.lb:]
				s.kRem -= na + nb
				s.n -= na + nb
				s.depth++
				s.phase = kphLoop
			case s.pivLo == s.pivHi:
				// Equal pivots: the k-th element falls inside one big tie
				// group — the answer is the pivot itself.
				return s.finish(pe, s.pivLo)
			case nb == s.n:
				// No shrinkage: peel the boundary tie group of the lower
				// pivot arithmetically (see the blocking form's rationale).
				b := s.win[s.la : s.la+s.lb]
				_, nEqLocal := qsel.PartitionRange(b, s.pivLo, s.pivLo)
				s.nEqLocal = nEqLocal
				s.cur = coll.AllReduceScalarStep(pe, int64(nEqLocal), addInt64, s.onI64)
				s.phase = kphPeelWait
			default:
				s.win = s.win[s.la : s.la+s.lb]
				s.kRem -= na
				s.n = nb
				s.depth++
				s.phase = kphLoop
			}
		case kphPeelWait:
			nEq := s.i64
			na, nb := s.na, s.nb
			if s.kRem-na <= nEq {
				return s.finish(pe, s.pivLo)
			}
			s.win = s.win[s.la+s.nEqLocal : s.la+s.lb]
			s.kRem -= na + nEq
			s.n = nb - nEq
			s.depth++
			s.phase = kphLoop
		default:
			return nil
		}
	}
}
