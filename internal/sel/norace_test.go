//go:build !race

package sel

const raceEnabled = false
