package sel

import (
	"slices"
	"testing"
	"testing/quick"

	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/gen"
	"commtopk/internal/xrand"
)

var peCounts = []int{1, 2, 3, 4, 7, 8, 13}

// distribute splits global among p PEs deterministically but unevenly:
// PE i receives a share that grows with i, exercising skewed inputs.
func distribute(global []uint64, p int) [][]uint64 {
	parts := make([][]uint64, p)
	// Weights 1, 2, ..., p (PE p-1 has p times the data of PE 0).
	total := p * (p + 1) / 2
	start := 0
	for i := 0; i < p; i++ {
		share := len(global) * (i + 1) / total
		end := start + share
		if i == p-1 {
			end = len(global)
		}
		if end > len(global) {
			end = len(global)
		}
		parts[i] = global[start:end]
		start = end
	}
	return parts
}

func globalSorted(rng *xrand.RNG, n int) ([]uint64, []uint64) {
	global := make([]uint64, n)
	seen := map[uint64]bool{}
	for i := range global {
		for {
			v := rng.Uint64() % uint64(8*n)
			if !seen[v] {
				seen[v] = true
				global[i] = v
				break
			}
		}
	}
	sorted := slices.Clone(global)
	slices.Sort(sorted)
	return global, sorted
}

func TestKthMatchesSortOnUniqueInput(t *testing.T) {
	rng := xrand.New(101)
	global, sorted := globalSorted(rng, 3000)
	for _, p := range peCounts {
		parts := distribute(global, p)
		for _, k := range []int64{1, 2, 100, 1500, 2999, 3000} {
			m := comm.NewMachine(comm.DefaultConfig(p))
			if err := m.Run(func(pe *comm.PE) {
				got := Kth(pe, parts[pe.Rank()], k, xrand.NewPE(5, pe.Rank()))
				if want := sorted[k-1]; got != want {
					t.Errorf("p=%d k=%d: Kth=%d want %d", p, k, got, want)
				}
			}); err != nil {
				t.Fatalf("p=%d k=%d: %v", p, k, err)
			}
		}
	}
}

func TestKthWithDuplicates(t *testing.T) {
	// Heavy duplication: only 5 distinct values.
	global := make([]uint64, 1000)
	rng := xrand.New(7)
	for i := range global {
		global[i] = uint64(rng.Intn(5) * 10)
	}
	sorted := slices.Clone(global)
	slices.Sort(sorted)
	for _, p := range []int{1, 4, 7} {
		parts := distribute(global, p)
		for _, k := range []int64{1, 250, 500, 999} {
			m := comm.NewMachine(comm.DefaultConfig(p))
			m.MustRun(func(pe *comm.PE) {
				got := Kth(pe, parts[pe.Rank()], k, xrand.NewPE(3, pe.Rank()))
				if want := sorted[k-1]; got != want {
					t.Errorf("p=%d k=%d: Kth=%d want %d", p, k, got, want)
				}
			})
		}
	}
}

func TestKthOutOfRangePanics(t *testing.T) {
	m := comm.NewMachine(comm.DefaultConfig(2))
	err := m.Run(func(pe *comm.PE) {
		Kth(pe, []uint64{1, 2}, 5, xrand.NewPE(1, pe.Rank()))
	})
	if err == nil {
		t.Fatal("expected out-of-range panic")
	}
}

func TestKthAllOnOnePE(t *testing.T) {
	// Total skew: all data on PE 0 (the case that breaks the old random-
	// distribution assumption; Theorem 1's point is this still works).
	global, sorted := globalSorted(xrand.New(11), 500)
	const p = 8
	m := comm.NewMachine(comm.DefaultConfig(p))
	m.MustRun(func(pe *comm.PE) {
		var local []uint64
		if pe.Rank() == 0 {
			local = global
		}
		got := Kth(pe, local, 250, xrand.NewPE(9, pe.Rank()))
		if want := sorted[249]; got != want {
			t.Errorf("Kth=%d want %d", got, want)
		}
	})
}

func TestSmallestK(t *testing.T) {
	global, sorted := globalSorted(xrand.New(13), 2000)
	for _, p := range []int{1, 3, 8} {
		parts := distribute(global, p)
		for _, k := range []int64{0, 1, 7, 512, 2000} {
			m := comm.NewMachine(comm.DefaultConfig(p))
			collected := make([][]uint64, p)
			m.MustRun(func(pe *comm.PE) {
				collected[pe.Rank()] = SmallestK(pe, parts[pe.Rank()], k, xrand.NewPE(17, pe.Rank()))
			})
			var all []uint64
			for _, c := range collected {
				all = append(all, c...)
			}
			slices.Sort(all)
			if int64(len(all)) != k {
				t.Fatalf("p=%d k=%d: got %d elements", p, k, len(all))
			}
			if !slices.Equal(all, sorted[:k]) {
				t.Errorf("p=%d k=%d: wrong element set", p, k)
			}
		}
	}
}

func TestSmallestKSplitsTies(t *testing.T) {
	// All elements identical: exactly k copies must be returned.
	const p = 4
	m := comm.NewMachine(comm.DefaultConfig(p))
	counts := make([]int, p)
	m.MustRun(func(pe *comm.PE) {
		local := []uint64{7, 7, 7, 7, 7}
		got := SmallestK(pe, local, 11, xrand.NewPE(19, pe.Rank()))
		counts[pe.Rank()] = len(got)
	})
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 11 {
		t.Errorf("tie-splitting returned %d elements, want 11", total)
	}
}

func TestKthRandomizedBaseline(t *testing.T) {
	global, sorted := globalSorted(xrand.New(23), 800)
	const p = 4
	parts := distribute(global, p)
	m := comm.NewMachine(comm.DefaultConfig(p))
	m.MustRun(func(pe *comm.PE) {
		got := KthRandomized(pe, parts[pe.Rank()], 400, xrand.NewPE(29, pe.Rank()))
		if want := sorted[399]; got != want {
			t.Errorf("KthRandomized=%d want %d", got, want)
		}
	})
	// The baseline must move Θ(n/p) words; the new algorithm far less.
	words := m.Stats().MaxSentWords
	if words < int64(len(global))/p/2 {
		t.Errorf("baseline moved only %d words; expected at least n/p-ish", words)
	}
}

func TestKthCommunicationSublinear(t *testing.T) {
	// Theorem 1: communication volume per PE must be far below n/p once
	// n/p is large. n/p = 20000, p = 8.
	const p = 8
	const perPE = 20000
	m := comm.NewMachine(comm.DefaultConfig(p))
	locals := make([][]uint64, p)
	rng := xrand.New(31)
	for i := range locals {
		locals[i] = make([]uint64, perPE)
		for j := range locals[i] {
			locals[i][j] = rng.Uint64()
		}
	}
	m.MustRun(func(pe *comm.PE) {
		Kth(pe, locals[pe.Rank()], int64(p*perPE/2), xrand.NewPE(37, pe.Rank()))
	})
	words := m.Stats().MaxSentWords
	if words > perPE/8 {
		t.Errorf("selection moved %d words per PE on n/p=%d input; not sublinear", words, perPE)
	}
}

func sortedParts(rng *xrand.RNG, n, p int) ([][]uint64, []uint64) {
	global, sorted := globalSorted(rng, n)
	parts := distribute(global, p)
	sp := make([][]uint64, p)
	for i := range parts {
		sp[i] = slices.Clone(parts[i])
		slices.Sort(sp[i])
	}
	return sp, sorted
}

func TestMSSelect(t *testing.T) {
	rng := xrand.New(41)
	for _, p := range peCounts {
		parts, sorted := sortedParts(rng, 1200, p)
		for _, k := range []int64{1, 2, 600, 1199, 1200} {
			m := comm.NewMachine(comm.DefaultConfig(p))
			gotLens := make([]int, p)
			m.MustRun(func(pe *comm.PE) {
				shared := xrand.New(57) // same seed on every PE
				v, localLE := MSSelect[uint64](pe, SliceSeq[uint64](parts[pe.Rank()]), k, shared)
				if want := sorted[k-1]; v != want {
					t.Errorf("p=%d k=%d: MSSelect=%d want %d", p, k, v, want)
				}
				gotLens[pe.Rank()] = localLE
			})
			var total int64
			for _, l := range gotLens {
				total += int64(l)
			}
			if total != k {
				t.Errorf("p=%d k=%d: local prefix lengths sum to %d", p, k, total)
			}
		}
	}
}

func TestMSSelectStartupsPolylog(t *testing.T) {
	// Theorem 16: O(α log² kp). With p=16, n=16k, expect a few hundred
	// startups at most, not Ω(n).
	const p = 16
	parts, _ := sortedParts(xrand.New(43), 16000, p)
	m := comm.NewMachine(comm.DefaultConfig(p))
	m.MustRun(func(pe *comm.PE) {
		shared := xrand.New(3)
		MSSelect[uint64](pe, SliceSeq[uint64](parts[pe.Rank()]), 8000, shared)
	})
	if s := m.Stats(); s.MaxSends > 2000 {
		t.Errorf("MSSelect used %d startups; expected polylog", s.MaxSends)
	}
}

func TestAMSSelect(t *testing.T) {
	rng := xrand.New(47)
	for _, p := range peCounts {
		parts, sorted := sortedParts(rng, 1500, p)
		cases := []struct{ kmin, kmax int64 }{
			{1, 10}, {50, 100}, {700, 900}, {1400, 1500}, {1500, 1500},
		}
		for _, c := range cases {
			m := comm.NewMachine(comm.DefaultConfig(p))
			lens := make([]int, p)
			var count int64
			var thr uint64
			m.MustRun(func(pe *comm.PE) {
				res := AMSSelect[uint64](pe, SliceSeq[uint64](parts[pe.Rank()]), c.kmin, c.kmax, xrand.NewPE(53, pe.Rank()))
				lens[pe.Rank()] = res.LocalLen
				if pe.Rank() == 0 {
					count, thr = res.Count, res.Threshold
				}
			})
			if count < c.kmin || count > c.kmax {
				t.Errorf("p=%d [%d,%d]: count %d outside range", p, c.kmin, c.kmax, count)
			}
			var total int64
			for _, l := range lens {
				total += int64(l)
			}
			if total != count {
				t.Errorf("p=%d [%d,%d]: local lens sum %d != count %d", p, c.kmin, c.kmax, total, count)
			}
			// The threshold must be the count-th smallest global element.
			if thr != sorted[count-1] {
				t.Errorf("p=%d [%d,%d]: threshold %d is not the %d-th smallest %d",
					p, c.kmin, c.kmax, thr, count, sorted[count-1])
			}
		}
	}
}

func TestAMSSelectTightRange(t *testing.T) {
	// kmin == kmax forces either a lucky estimate or the exact fallback;
	// both must return exactly k elements.
	const p = 5
	parts, sorted := sortedParts(xrand.New(59), 700, p)
	m := comm.NewMachine(comm.DefaultConfig(p))
	m.MustRun(func(pe *comm.PE) {
		res := AMSSelect[uint64](pe, SliceSeq[uint64](parts[pe.Rank()]), 350, 350, xrand.NewPE(61, pe.Rank()))
		if res.Count != 350 {
			t.Errorf("tight range returned %d", res.Count)
		}
		if res.Threshold != sorted[349] {
			t.Errorf("threshold %d want %d", res.Threshold, sorted[349])
		}
	})
}

func TestAMSSelectBatched(t *testing.T) {
	for _, d := range []int{1, 4, 16} {
		const p = 6
		parts, _ := sortedParts(xrand.New(67), 1000, p)
		m := comm.NewMachine(comm.DefaultConfig(p))
		m.MustRun(func(pe *comm.PE) {
			res := AMSSelectBatched[uint64](pe, SliceSeq[uint64](parts[pe.Rank()]), 400, 440, d, xrand.NewPE(71, pe.Rank()))
			if res.Count < 400 || res.Count > 440 {
				t.Errorf("d=%d: count %d outside [400,440]", d, res.Count)
			}
		})
	}
}

func TestAMSSelectBatchedFewerRounds(t *testing.T) {
	// Theorem 4: more concurrent trials should not increase the expected
	// round count; with a narrow range, d=16 should converge in fewer
	// rounds than d=1 on average.
	const p = 4
	parts, _ := sortedParts(xrand.New(73), 4000, p)
	avgRounds := func(d int) float64 {
		var total int
		const reps = 20
		for rep := 0; rep < reps; rep++ {
			m := comm.NewMachine(comm.DefaultConfig(p))
			m.MustRun(func(pe *comm.PE) {
				res := AMSSelectBatched[uint64](pe, SliceSeq[uint64](parts[pe.Rank()]),
					2000, 2010, d, xrand.NewPE(int64(100+rep), pe.Rank()))
				if pe.Rank() == 0 {
					total += res.Rounds
				}
			})
		}
		return float64(total) / reps
	}
	r1, r16 := avgRounds(1), avgRounds(16)
	if r16 > r1 {
		t.Errorf("batched trials used more rounds (d=1: %.1f, d=16: %.1f)", r1, r16)
	}
}

func TestAMSSelectQuick(t *testing.T) {
	// Property: for random inputs and ranges, Count ∈ [kmin,kmax] and the
	// threshold is consistent with Count.
	check := func(seed int64, rawN uint16, rawK uint16) bool {
		if seed < 0 {
			seed = -(seed + 1)
		}
		n := int(rawN%2000) + 20
		p := int(seed%4) + 2
		kmin := int64(rawK%uint16(n)) + 1
		span := kmin / 4
		kmax := kmin + span
		if kmax > int64(n) {
			kmax = int64(n)
		}
		parts, sorted := sortedParts(xrand.New(seed), n, p)
		ok := true
		m := comm.NewMachine(comm.DefaultConfig(p))
		m.MustRun(func(pe *comm.PE) {
			res := AMSSelect[uint64](pe, SliceSeq[uint64](parts[pe.Rank()]), kmin, kmax, xrand.NewPE(seed+1, pe.Rank()))
			if pe.Rank() != 0 {
				return
			}
			if res.Count < kmin || res.Count > kmax {
				ok = false
			}
			if res.Threshold != sorted[res.Count-1] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestKthOnPaperWorkload(t *testing.T) {
	// Section 10.1 workload: randomized per-PE Zipf tails.
	const p = 8
	const perPE = 5000
	locals := make([][]uint64, p)
	var global []uint64
	for i := 0; i < p; i++ {
		locals[i] = gen.SelectionInput(xrand.NewPE(79, i), perPE, 14)
		global = append(global, locals[i]...)
	}
	slices.Sort(global)
	k := int64(len(global) - 1024) // k-th largest ⇒ rank n-k+1 smallest
	m := comm.NewMachine(comm.DefaultConfig(p))
	m.MustRun(func(pe *comm.PE) {
		got := Kth(pe, locals[pe.Rank()], k, xrand.NewPE(83, pe.Rank()))
		if want := global[k-1]; got != want {
			t.Errorf("Zipf workload: Kth=%d want %d", got, want)
		}
	})
}

func TestSeqInterfaceAdapters(t *testing.T) {
	s := SliceSeq[uint64]([]uint64{2, 4, 6, 8})
	if s.Len() != 4 || s.At(2) != 6 {
		t.Error("SliceSeq basics wrong")
	}
	if s.CountLess(4) != 1 || s.CountLE(4) != 2 {
		t.Error("SliceSeq counts wrong")
	}
	if s.CountLess(1) != 0 || s.CountLE(9) != 4 {
		t.Error("SliceSeq boundary counts wrong")
	}
	var _ = coll.WordsOf[uint64] // keep coll import for the helper below
}
