package sel

import (
	"cmp"
	"fmt"
	"slices"

	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/qsel"
	"commtopk/internal/xrand"
)

// smallestKStep phases.
const (
	skphInit      = iota // start the global size sum
	skphNWait            // harvest n, branch the trivial cases
	skphKthWait          // harvest the k-th element, start the below count
	skphBelowWait        // harvest the global below count, start the tie scan
	skphPrevWait         // harvest the tie prefix, extract the local share
	skphDone
)

// smallestKStep — see SmallestKStep.
type smallestKStep[K cmp.Ordered] struct {
	local []K
	k     int64
	rng   *xrand.RNG
	out   func([]K)
	self  bool
	res   []K

	n      int64
	i64    int64
	v      K
	below  int64
	equal  int64
	globLo int64

	cur comm.Stepper

	onI64 func(int64)
	onK   func(K)

	phase int
}

func newSmallestKStep[K cmp.Ordered](pe *comm.PE, local []K, k int64, rng *xrand.RNG, out func([]K), self bool) *smallestKStep[K] {
	s := comm.GetPooled[smallestKStep[K]](pe)
	s.local, s.k, s.rng, s.out, s.self = local, k, rng, out, self
	s.phase = skphInit
	s.cur = nil
	if s.onI64 == nil {
		s.onI64 = func(v int64) { s.i64 = v }
		s.onK = func(v K) { s.v = v }
	}
	return s
}

// SmallestKStep is the continuation form of SmallestK: out receives this
// PE's share of the k globally smallest elements (exactly k in total,
// duplicates split by a prefix sum over ranks), caller-owned, order
// unspecified. Semantics, panics, RNG consumption and the metered
// schedule match SmallestK exactly — the blocking form drives this
// stepper through comm.RunSteps.
func SmallestKStep[K cmp.Ordered](pe *comm.PE, local []K, k int64, rng *xrand.RNG, out func([]K)) comm.Stepper {
	return newSmallestKStep(pe, local, k, rng, out, true)
}

func (s *smallestKStep[K]) release(pe *comm.PE) {
	var zero K
	s.local, s.res = nil, nil
	s.rng, s.out, s.cur = nil, nil, nil
	s.v = zero
	comm.PutPooled(pe, s)
}

func (s *smallestKStep[K]) finish(pe *comm.PE, v []K) *comm.RecvHandle {
	s.res = v
	s.phase = skphDone
	if s.self {
		out := s.out
		s.release(pe)
		if out != nil {
			out(v)
		}
	}
	return nil
}

func (s *smallestKStep[K]) Step(pe *comm.PE) *comm.RecvHandle {
	for {
		if s.cur != nil {
			if h := s.cur.Step(pe); h != nil {
				return h
			}
			s.cur = nil
		}
		switch s.phase {
		case skphInit:
			s.cur = coll.AllReduceScalarStep(pe, int64(len(s.local)), addInt64, s.onI64)
			s.phase = skphNWait
		case skphNWait:
			s.n = s.i64
			if s.k < 0 || s.k > s.n {
				panic(fmt.Sprintf("sel: k %d out of range 0..%d", s.k, s.n))
			}
			if s.k == 0 {
				return s.finish(pe, nil)
			}
			if s.k == s.n {
				return s.finish(pe, slices.Clone(s.local))
			}
			s.cur = KthStep(pe, s.local, s.k, s.rng, s.onK)
			s.phase = skphKthWait
		case skphKthWait:
			belowI, equalI := qsel.Rank(s.local, s.v)
			s.below, s.equal = int64(belowI), int64(equalI)
			s.cur = coll.AllReduceScalarStep(pe, s.below, addInt64, s.onI64)
			s.phase = skphBelowWait
		case skphBelowWait:
			s.globLo = s.i64
			s.cur = coll.ExScanSumStep(pe, s.equal, s.onI64)
			s.phase = skphPrevWait
		case skphPrevWait:
			needEqual := s.k - s.globLo
			takeEqual := clamp(needEqual-s.i64, 0, s.equal)
			out := make([]K, 0, s.below+takeEqual)
			v := s.v
			for _, e := range s.local {
				switch {
				case e < v:
					out = append(out, e)
				case e == v && takeEqual > 0:
					out = append(out, e)
					takeEqual--
				}
			}
			return s.finish(pe, out)
		default:
			return nil
		}
	}
}
