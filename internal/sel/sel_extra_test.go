package sel

import (
	"slices"
	"testing"

	"commtopk/internal/comm"
	"commtopk/internal/xrand"
)

func TestAMSSelectBatchedValidation(t *testing.T) {
	m := comm.NewMachine(comm.DefaultConfig(1))
	err := m.Run(func(pe *comm.PE) {
		AMSSelectBatched[uint64](pe, SliceSeq[uint64]([]uint64{1}), 1, 1, 0, xrand.New(1))
	})
	if err == nil {
		t.Error("d=0 should panic")
	}
}

func TestAMSSelectInvalidRanges(t *testing.T) {
	for _, c := range []struct{ kmin, kmax int64 }{{0, 5}, {5, 3}, {100, 200}} {
		m := comm.NewMachine(comm.DefaultConfig(2))
		err := m.Run(func(pe *comm.PE) {
			var local []uint64
			if pe.Rank() == 0 {
				local = []uint64{1, 2, 3}
			}
			AMSSelect[uint64](pe, SliceSeq[uint64](local), c.kmin, c.kmax, xrand.NewPE(1, pe.Rank()))
		})
		if err == nil {
			t.Errorf("range [%d,%d] on 3 elements should panic", c.kmin, c.kmax)
		}
	}
}

func TestAMSSelectKmin1(t *testing.T) {
	// kmin=1 uses rho=1 (the global minimum always qualifies).
	const p = 3
	parts, sorted := sortedParts(xrand.New(71), 60, p)
	m := comm.NewMachine(comm.DefaultConfig(p))
	m.MustRun(func(pe *comm.PE) {
		res := AMSSelect[uint64](pe, SliceSeq[uint64](parts[pe.Rank()]), 1, 20, xrand.NewPE(2, pe.Rank()))
		if res.Count < 1 || res.Count > 20 {
			t.Errorf("count %d", res.Count)
		}
		if res.Threshold != sorted[res.Count-1] {
			t.Errorf("threshold mismatch")
		}
	})
}

func TestAMSSelectAllElements(t *testing.T) {
	// kmax == n: everything is selected, threshold = global max.
	const p = 4
	parts, sorted := sortedParts(xrand.New(73), 100, p)
	m := comm.NewMachine(comm.DefaultConfig(p))
	m.MustRun(func(pe *comm.PE) {
		res := AMSSelect[uint64](pe, SliceSeq[uint64](parts[pe.Rank()]), 100, 100, xrand.NewPE(3, pe.Rank()))
		if res.Count != 100 {
			t.Errorf("count %d", res.Count)
		}
		if res.Threshold != sorted[99] {
			t.Errorf("threshold %d, want global max %d", res.Threshold, sorted[99])
		}
		if res.LocalLen != len(parts[pe.Rank()]) {
			t.Errorf("LocalLen %d, want whole slice", res.LocalLen)
		}
	})
}

func TestMSSelectSkewedOwnership(t *testing.T) {
	// All data on the last PE; the shared-pivot machinery must still work.
	const p = 5
	global, sorted := globalSorted(xrand.New(79), 200)
	m := comm.NewMachine(comm.DefaultConfig(p))
	m.MustRun(func(pe *comm.PE) {
		var local []uint64
		if pe.Rank() == p-1 {
			local = slices.Clone(global)
			slices.Sort(local)
		}
		shared := xrand.New(83)
		v, _ := MSSelect[uint64](pe, SliceSeq[uint64](local), 100, shared)
		if v != sorted[99] {
			t.Errorf("MSSelect = %d, want %d", v, sorted[99])
		}
	})
}

func TestKthWithHugeDuplicateGroups(t *testing.T) {
	// 90% of the input is one value: exercises the tie-peeling path.
	const p = 4
	global := make([]uint64, 4000)
	rng := xrand.New(89)
	for i := range global {
		if i%10 == 0 {
			global[i] = uint64(rng.Intn(1000))
		} else {
			global[i] = 500000
		}
	}
	sorted := slices.Clone(global)
	slices.Sort(sorted)
	parts := distribute(global, p)
	for _, k := range []int64{1, 400, 2000, 3999} {
		m := comm.NewMachine(comm.DefaultConfig(p))
		m.MustRun(func(pe *comm.PE) {
			got := Kth(pe, parts[pe.Rank()], k, xrand.NewPE(97, pe.Rank()))
			if got != sorted[k-1] {
				t.Errorf("k=%d: got %d want %d", k, got, sorted[k-1])
			}
		})
	}
}

func TestKthTiesAreCommunicationCheap(t *testing.T) {
	// The tie-peeling must not gather the tie group.
	const p = 4
	const perPE = 50000
	locals := make([][]uint64, p)
	for r := range locals {
		locals[r] = make([]uint64, perPE)
		for i := range locals[r] {
			locals[r][i] = 7 // all identical
		}
	}
	m := comm.NewMachine(comm.DefaultConfig(p))
	m.MustRun(func(pe *comm.PE) {
		if got := Kth(pe, locals[pe.Rank()], int64(p*perPE/2), xrand.NewPE(1, pe.Rank())); got != 7 {
			t.Errorf("Kth of constant input = %d", got)
		}
	})
	if w := m.Stats().BottleneckWords(); w > 2000 {
		t.Errorf("constant input moved %d words", w)
	}
}

func TestSubSeqWindow(t *testing.T) {
	s := SliceSeq[uint64]([]uint64{10, 20, 30, 40, 50, 60})
	w := subSeq[uint64]{s: s, lo: 2, hi: 5} // {30, 40, 50}
	if w.Len() != 3 || w.At(0) != 30 || w.At(2) != 50 {
		t.Error("subSeq accessors wrong")
	}
	if w.CountLess(40) != 1 || w.CountLE(40) != 2 {
		t.Error("subSeq counts wrong")
	}
	if w.CountLess(5) != 0 || w.CountLE(100) != 3 {
		t.Error("subSeq clamping wrong")
	}
}
