package sel

import (
	"fmt"
	"testing"

	"commtopk/internal/comm"
	"commtopk/internal/xrand"
)

// msTestSeq builds a locally sorted, globally unique input: PE r holds
// the keys {i·p + r}, i < perPE — strided so every PE owns a share of
// every value band.
func msTestSeq(p, r, perPE int) SliceSeq[uint64] {
	s := make([]uint64, perPE)
	for i := range s {
		s[i] = uint64(i*p + r)
	}
	return s
}

// MSSelectStep and AMSSelectStep must be bit-identical to the blocking
// forms — per-PE results and metered statistics — whether driven by
// RunAsync on the mailbox scheduler (including w < p) or by the channel
// matrix's blocking drive.
func TestMSSelectStepMatchesBlockingAcrossBackends(t *testing.T) {
	const perPE = 64
	for _, p := range []int{1, 3, 16, 64} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			n := int64(p * perPE)
			for _, k := range []int64{1, n / 3, n / 2, n} {
				mc := comm.NewMachine(comm.MatrixConfig(p))
				refV := make([]uint64, p)
				refN := make([]int, p)
				mc.MustRun(func(pe *comm.PE) {
					r := pe.Rank()
					refV[r], refN[r] = MSSelect[uint64](pe, msTestSeq(p, r, perPE), k, xrand.New(33))
				})
				refStats := mc.Stats()
				if refV[0] != uint64(k-1) {
					t.Fatalf("k=%d: blocking MSSelect = %d, want %d", k, refV[0], k-1)
				}
				for _, w := range []int{0, 1, 4} {
					cfg := comm.MailboxConfig(p)
					cfg.Workers = w
					m := comm.NewMachine(cfg)
					gotV := make([]uint64, p)
					gotN := make([]int, p)
					m.MustRunAsync(func(pe *comm.PE) comm.Stepper {
						r := pe.Rank()
						return MSSelectStep[uint64](pe, msTestSeq(p, r, perPE), k, xrand.New(33),
							func(v uint64, le int) { gotV[r], gotN[r] = v, le })
					})
					for r := 0; r < p; r++ {
						if gotV[r] != refV[r] || gotN[r] != refN[r] {
							t.Errorf("k=%d w=%d rank %d: stepper (%d, %d) vs blocking (%d, %d)",
								k, w, r, gotV[r], gotN[r], refV[r], refN[r])
						}
					}
					if s := m.Stats(); s != refStats {
						t.Errorf("k=%d w=%d: stats diverge:\n  blocking matrix: %+v\n  stepper mailbox: %+v",
							k, w, refStats, s)
					}
					m.Close()
				}
			}
		})
	}
}

func TestAMSSelectStepMatchesBlockingAcrossBackends(t *testing.T) {
	const perPE = 64
	for _, p := range []int{1, 3, 16, 64} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			n := int64(p * perPE)
			for _, kr := range [][2]int64{{1, 1}, {n / 4, n / 2}, {n, n}} {
				kmin, kmax := kr[0], kr[1]
				mc := comm.NewMachine(comm.MatrixConfig(p))
				ref := make([]AMSResult[uint64], p)
				mc.MustRun(func(pe *comm.PE) {
					r := pe.Rank()
					ref[r] = AMSSelect[uint64](pe, msTestSeq(p, r, perPE), kmin, kmax, xrand.NewPE(71, r))
				})
				refStats := mc.Stats()
				if ref[0].Count < kmin || ref[0].Count > kmax {
					t.Fatalf("[%d,%d]: blocking Count %d outside range", kmin, kmax, ref[0].Count)
				}
				for _, w := range []int{0, 1, 4} {
					cfg := comm.MailboxConfig(p)
					cfg.Workers = w
					m := comm.NewMachine(cfg)
					got := make([]AMSResult[uint64], p)
					m.MustRunAsync(func(pe *comm.PE) comm.Stepper {
						r := pe.Rank()
						return AMSSelectStep[uint64](pe, msTestSeq(p, r, perPE), kmin, kmax, xrand.NewPE(71, r),
							func(res AMSResult[uint64]) { got[r] = res })
					})
					for r := 0; r < p; r++ {
						if got[r] != ref[r] {
							t.Errorf("[%d,%d] w=%d rank %d: stepper %+v vs blocking %+v",
								kmin, kmax, w, r, got[r], ref[r])
						}
					}
					if s := m.Stats(); s != refStats {
						t.Errorf("[%d,%d] w=%d: stats diverge:\n  blocking matrix: %+v\n  stepper mailbox: %+v",
							kmin, kmax, w, refStats, s)
					}
					m.Close()
				}
			}
		})
	}
}

// The degenerate interval [k, k] with k mid-range forces estimation
// failures and, with high probability across these ks, exercises the
// exact-fallback phase; stepper and blocking must still agree bit for bit.
func TestAMSSelectStepTightIntervalFallback(t *testing.T) {
	const p, perPE = 8, 64
	n := int64(p * perPE)
	for _, k := range []int64{7, n / 3, n - 5} {
		mc := comm.NewMachine(comm.MatrixConfig(p))
		ref := make([]AMSResult[uint64], p)
		mc.MustRun(func(pe *comm.PE) {
			r := pe.Rank()
			ref[r] = AMSSelect[uint64](pe, msTestSeq(p, r, perPE), k, k, xrand.NewPE(5, r))
		})
		refStats := mc.Stats()
		if ref[0].Count != k {
			t.Fatalf("k=%d: exact-interval Count = %d", k, ref[0].Count)
		}
		m := comm.NewMachine(comm.MailboxConfig(p))
		got := make([]AMSResult[uint64], p)
		m.MustRunAsync(func(pe *comm.PE) comm.Stepper {
			r := pe.Rank()
			return AMSSelectStep[uint64](pe, msTestSeq(p, r, perPE), k, k, xrand.NewPE(5, r),
				func(res AMSResult[uint64]) { got[r] = res })
		})
		for r := 0; r < p; r++ {
			if got[r] != ref[r] {
				t.Errorf("k=%d rank %d: stepper %+v vs blocking %+v", k, r, got[r], ref[r])
			}
		}
		if s := m.Stats(); s != refStats {
			t.Errorf("k=%d: stats diverge", k)
		}
		m.Close()
	}
}
