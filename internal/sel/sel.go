// Package sel implements the paper's selection algorithms (Section 4 and
// Appendix A):
//
//   - Kth / SmallestK: communication-efficient selection from unsorted
//     input (Algorithm 1, Theorem 1) — distributed Floyd–Rivest with
//     Bernoulli pivot sampling that does not require randomly distributed
//     data.
//   - MSSelect: exact multisequence selection from locally sorted input
//     (Algorithm 9, Theorem 16), O(α log² kp).
//   - AMSSelect: approximate multisequence selection with flexible output
//     size k ∈ [k̲, k̄] (Algorithm 2, Theorem 3), O(log k̄ + α log p)
//     expected.
//   - AMSSelectBatched: the d-concurrent-trials refinement (Theorem 4).
//
// All functions are SPMD collectives: every PE must call them with its
// local share of the data. Keys must have a unique total order for the
// exact algorithms (tie-break by composing position into the key, as the
// paper's (v, x) trick does); SmallestK additionally handles duplicates
// directly by splitting ties with a prefix sum.
package sel

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sort"

	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/qsel"
	"commtopk/internal/xrand"
)

// tagged carries an optional value through min/max reductions (the
// sentinel for "this PE has no candidate").
type tagged[K any] struct {
	Has bool
	Val K
}

func minTagged[K cmp.Ordered](a, b tagged[K]) tagged[K] {
	if !a.Has {
		return b
	}
	if !b.Has {
		return a
	}
	if b.Val < a.Val {
		return b
	}
	return a
}

func maxTagged[K cmp.Ordered](a, b tagged[K]) tagged[K] {
	if !a.Has {
		return b
	}
	if !b.Has {
		return a
	}
	if b.Val > a.Val {
		return b
	}
	return a
}

// firstTagged returns whichever operand has a value (owner broadcast).
func firstTagged[K any](a, b tagged[K]) tagged[K] {
	if a.Has {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Unsorted selection (Algorithm 1)
// ---------------------------------------------------------------------------

// baseCaseLimit returns the remaining-size threshold below which the
// recursion gathers the residual problem on PE 0 and solves it locally;
// the gathered volume is O(√p + base) words, preserving Theorem 1.
func baseCaseLimit(p int) int64 {
	return max(64, 4*int64(math.Sqrt(float64(p))))
}

// Kth returns the element of global rank k (1-based) among the union of
// all PEs' local slices, on every PE. The local slices are not modified.
// rng must be a per-PE stream (independent across PEs). Panics if k is out
// of range — a programming error surfaced through Machine.Run.
//
// Local work is allocation-free in steady state: the input is copied once
// into a per-PE scratch buffer and the recursion partitions it in place
// (three-way band partition, package qsel) instead of rebuilding filtered
// copies per level.
//
// Kth is the continuation skeleton of async.go (KthStep) driven to
// completion with blocking waits — one implementation for both execution
// modes. The pivot-selection rationale (Bernoulli sample of expected
// size Θ(√p), Floyd–Rivest pivots at sample ranks k|S|/n ± Δ with
// Δ = m^(1/2+δ), δ = 1/10, extracted at the root with expected-linear
// order statistics and shipped back as 2 words) lives with the state
// machine there.
func Kth[K cmp.Ordered](pe *comm.PE, local []K, k int64, rng *xrand.RNG) K {
	st := newKthStep(pe, local, k, rng, nil, false)
	comm.RunSteps(pe, st)
	res := st.res
	st.release(pe)
	return res
}

func localMinTagged[K cmp.Ordered](s []K) tagged[K] {
	if len(s) == 0 {
		return tagged[K]{}
	}
	return tagged[K]{Has: true, Val: slices.Min(s)}
}

func localMaxTagged[K cmp.Ordered](s []K) tagged[K] {
	if len(s) == 0 {
		return tagged[K]{}
	}
	return tagged[K]{Has: true, Val: slices.Max(s)}
}

func clamp(x, lo, hi int64) int64 { return min(max(x, lo), hi) }

// gatherSolve solves a small residual selection problem exactly: gather on
// PE 0, select the k-th element (expected-linear, no sort), broadcast it.
func gatherSolve[K cmp.Ordered](pe *comm.PE, s []K, k int64) K {
	parts := coll.Gatherv(pe, 0, s)
	var kth K
	if pe.Rank() == 0 {
		var total int
		for _, part := range parts {
			total += len(part)
		}
		// Preallocated concat into per-PE scratch instead of repeated append.
		all := comm.ScratchSlice[K](pe, "sel.gather.concat", total)[:0]
		for _, part := range parts {
			all = append(all, part...)
		}
		if k < 1 || k > int64(len(all)) {
			panic(fmt.Sprintf("sel: internal rank %d out of residual range %d", k, len(all)))
		}
		// Value-only: the residual answer needs no partition side effect,
		// so route through the compress kernel with a scratch workspace.
		ws := comm.ScratchSlice[K](pe, "sel.gather.ws", total)
		kth = qsel.SelectInto(ws, all, int(k-1))
	}
	return coll.BroadcastScalar(pe, 0, kth)
}

// SmallestK returns this PE's share of the k globally smallest elements
// (exactly k in total across PEs, duplicates split by a prefix sum over
// ranks). The order of the returned slice is unspecified.
func SmallestK[K cmp.Ordered](pe *comm.PE, local []K, k int64, rng *xrand.RNG) []K {
	st := newSmallestKStep(pe, local, k, rng, nil, false)
	comm.RunSteps(pe, st)
	res := st.res
	st.release(pe)
	return res
}

// KthRandomized is the pre-paper baseline ([31], Table 1 "old"): it first
// redistributes all elements to random PEs (the assumption the old
// analysis needs) and then selects. The redistribution costs Θ(n/p) words
// per PE — exactly the overhead Theorem 1 removes; Table 1 benches
// measure the difference.
//
// The redistribution groups elements by destination with a counting sort
// into one flat send buffer instead of p growing append slices, so the
// host-side cost is O(n/p) time and a single allocation per call (the
// flat buffer, which is sent by reference and therefore must not be a
// reused scratch buffer: receivers may still read it after this PE moves
// on). The old per-element append behavior inflated the baseline's
// wall-clock constant and flattered the new algorithm's measured win —
// the communication metrics were always honest.
func KthRandomized[K cmp.Ordered](pe *comm.PE, local []K, k int64, rng *xrand.RNG) K {
	p := pe.P()
	if p == 1 {
		return Kth(pe, local, k, rng)
	}
	dests := comm.ScratchSlice[int32](pe, "sel.rand.dests", len(local))
	counts := comm.ScratchSlice[int32](pe, "sel.rand.counts", p)
	clear(counts)
	for i := range local {
		d := rng.Intn(p)
		dests[i] = int32(d)
		counts[d]++
	}
	// offs[d] is the write cursor for destination d in the flat buffer.
	offs := comm.ScratchSlice[int32](pe, "sel.rand.offs", p)
	var off int32
	for d, c := range counts {
		offs[d] = off
		off += c
	}
	flat := make([]K, len(local))
	parts := comm.ScratchSlice[[]K](pe, "sel.rand.parts", p)
	off = 0
	for d, c := range counts {
		parts[d] = flat[off : off+c]
		off += c
	}
	for i, e := range local {
		d := dests[i]
		flat[offs[d]] = e
		offs[d]++
	}
	recv := coll.AllToAll(pe, parts)
	var total int
	for _, part := range recv {
		total += len(part)
	}
	shuffled := comm.ScratchSlice[K](pe, "sel.rand.concat", total)[:0]
	for _, part := range recv {
		shuffled = append(shuffled, part...)
	}
	return Kth(pe, shuffled, k, rng)
}

// ---------------------------------------------------------------------------
// Sorted sequences: the Seq abstraction
// ---------------------------------------------------------------------------

// Seq is a locally sorted sequence accessed by rank and by key — the
// interface both sorted slices and the bulk priority queue's search trees
// implement, so the multisequence selection algorithms below run on
// either representation (Section 5: "the only difference is that instead
// of sorted arrays, we are now working on search trees").
type Seq[K cmp.Ordered] interface {
	// Len returns the number of elements.
	Len() int
	// At returns the i-th smallest element, 0-based; i must be in range.
	At(i int) K
	// CountLess returns the number of elements with key < v.
	CountLess(v K) int
	// CountLE returns the number of elements with key ≤ v.
	CountLE(v K) int
}

// SliceSeq adapts an ascending-sorted slice to Seq.
type SliceSeq[K cmp.Ordered] []K

// Len implements Seq.
func (s SliceSeq[K]) Len() int { return len(s) }

// At implements Seq.
func (s SliceSeq[K]) At(i int) K { return s[i] }

// CountLess implements Seq.
func (s SliceSeq[K]) CountLess(v K) int {
	return sort.Search(len(s), func(i int) bool { return s[i] >= v })
}

// CountLE implements Seq.
func (s SliceSeq[K]) CountLE(v K) int {
	return sort.Search(len(s), func(i int) bool { return s[i] > v })
}

// ---------------------------------------------------------------------------
// Exact multisequence selection (Algorithm 9)
// ---------------------------------------------------------------------------

// MSSelect returns the element of global rank k (1-based) from locally
// sorted sequences, together with the number of local elements ≤ that
// element (this PE's share of the selected prefix). Keys must be globally
// unique. shared must be a cross-PE synchronized stream: construct it with
// the same seed on every PE and use it only inside lockstep collectives.
//
// O((α log p + log min(n/p, k)) · log min(kp, n)) expected — Theorem 16.
//
// MSSelect is the continuation state machine of msasync.go (MSSelectStep)
// driven to completion with blocking waits — one implementation for both
// execution modes. The pivot-selection discipline (shared-stream pivot
// position among remaining candidates, owner broadcast, two-counter
// narrowing) lives with the state machine there.
func MSSelect[K cmp.Ordered](pe *comm.PE, s Seq[K], k int64, shared *xrand.RNG) (K, int) {
	st := newMSSelectStep(pe, s, k, shared, nil, false)
	comm.RunSteps(pe, st)
	v, n := st.resV, st.resN
	st.release(pe)
	return v, n
}

func clampInt(x, lo, hi int) int { return min(max(x, lo), hi) }

// ---------------------------------------------------------------------------
// Approximate multisequence selection, flexible k (Algorithm 2)
// ---------------------------------------------------------------------------

// AMSResult is the outcome of approximate multisequence selection.
type AMSResult[K cmp.Ordered] struct {
	// Threshold is the selection threshold v: the selected set is exactly
	// the elements ≤ v.
	Threshold K
	// Count is the global number of selected elements, in [kmin, kmax].
	Count int64
	// LocalLen is this PE's number of selected elements (its prefix length).
	LocalLen int
	// Rounds is the number of estimation rounds used (1 expected).
	Rounds int
}

// amsRho returns the min-based sampling probability that maximizes
// P[rank of min sample ∈ [kmin, kmax]]: the maximizer of
// q^(kmin-1) − q^kmax over q = 1−ρ is q* = ((kmin−1)/kmax)^(1/(kmax−kmin+1)).
func amsRho(kmin, kmax int64) float64 {
	if kmin <= 1 {
		return 1 // the global minimum always has rank 1 ∈ [kmin, kmax]
	}
	q := math.Pow(float64(kmin-1)/float64(kmax), 1/float64(kmax-kmin+1))
	rho := 1 - q
	return clampFloat(rho, 1e-12, 1)
}

func clampFloat(x, lo, hi float64) float64 { return math.Min(math.Max(x, lo), hi) }

// AMSSelect selects the k̲ ≤ k ≤ k̄ globally smallest elements from locally
// sorted sequences (Algorithm 2). Keys must be globally unique. rng is the
// per-PE stream (geometric deviates are drawn locally and independently).
// Expected time O(log k̄ + α log p) when k̄ − k̲ = Ω(k̄) — Theorem 3.
//
// If the flexible search does not land in [k̲, k̄] within maxRounds
// (possible for very tight intervals), it falls back to exact MSSelect at
// rank k̲ using a shared stream derived from round counts; the fallback
// preserves correctness at the cost of the Theorem-16 latency.
func AMSSelect[K cmp.Ordered](pe *comm.PE, s Seq[K], kmin, kmax int64, rng *xrand.RNG) AMSResult[K] {
	return amsSelect(pe, s, kmin, kmax, rng, 1)
}

// AMSSelectBatched is AMSSelect with d concurrent Bernoulli trials per
// round (Theorem 4): the d candidate pivots share one vector-valued
// reduction, trading O(βd) volume for a constant expected round count
// already when k̄ − k̲ = Ω(k̄/d).
func AMSSelectBatched[K cmp.Ordered](pe *comm.PE, s Seq[K], kmin, kmax int64, d int, rng *xrand.RNG) AMSResult[K] {
	if d < 1 {
		panic("sel: AMSSelectBatched needs d >= 1")
	}
	return amsSelect(pe, s, kmin, kmax, rng, d)
}

// amsSelect is the continuation state machine of msasync.go
// (AMSSelectStep) driven to completion with blocking waits — one
// implementation for both execution modes. The estimator rationale (dual
// min/max geometric sampling, d-wide candidate reductions, narrowing to
// the tightest under/over bracket, exact fallback) lives with the state
// machine there.
func amsSelect[K cmp.Ordered](pe *comm.PE, s Seq[K], kmin, kmax int64, rng *xrand.RNG, d int) AMSResult[K] {
	st := newAMSSelectStep(pe, s, kmin, kmax, rng, d, nil, false)
	comm.RunSteps(pe, st)
	res := st.res
	st.release(pe)
	return res
}

// subSeq restricts a Seq to the window [lo, hi) — the paper's cursor
// representation of a subsequence ("represent a subsequence of s by s
// itself plus cursor information").
type subSeq[K cmp.Ordered] struct {
	s      Seq[K]
	lo, hi int
}

func (w subSeq[K]) Len() int   { return w.hi - w.lo }
func (w subSeq[K]) At(i int) K { return w.s.At(w.lo + i) }
func (w subSeq[K]) CountLess(v K) int {
	return clampInt(w.s.CountLess(v), w.lo, w.hi) - w.lo
}
func (w subSeq[K]) CountLE(v K) int {
	return clampInt(w.s.CountLE(v), w.lo, w.hi) - w.lo
}
