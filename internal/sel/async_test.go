package sel

import (
	"fmt"
	"testing"

	"commtopk/internal/comm"
	"commtopk/internal/gen"
	"commtopk/internal/xrand"
)

// KthStep must be bit-identical to the blocking Kth — per-PE results and
// metered statistics — whether driven by RunAsync on the mailbox
// scheduler (including w < p, where mid-selection suspensions cross
// worker boundaries) or by the channel matrix's naive blocking drive.
func TestKthStepMatchesBlockingAcrossBackends(t *testing.T) {
	const perPE = 256
	for _, p := range []int{1, 3, 16, 64} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			locals := make([][]uint64, p)
			for r := 0; r < p; r++ {
				locals[r] = gen.SelectionInput(xrand.NewPE(41, r), perPE, 12)
			}
			n := int64(p * perPE)
			for _, k := range []int64{1, n / 3, n / 2, n} {
				k := k
				// Blocking reference on the channel matrix.
				mc := comm.NewMachine(comm.MatrixConfig(p))
				refRes := make([]uint64, p)
				mc.MustRun(func(pe *comm.PE) {
					refRes[pe.Rank()] = Kth(pe, locals[pe.Rank()], k, xrand.NewPE(97, pe.Rank()))
				})
				refStats := mc.Stats()
				for _, w := range []int{0, 1, 4} {
					cfg := comm.MailboxConfig(p)
					cfg.Workers = w
					m := comm.NewMachine(cfg)
					res := make([]uint64, p)
					m.MustRunAsync(func(pe *comm.PE) comm.Stepper {
						return KthStep(pe, locals[pe.Rank()], k, xrand.NewPE(97, pe.Rank()),
							func(v uint64) { res[pe.Rank()] = v })
					})
					for r := 0; r < p; r++ {
						if res[r] != refRes[r] {
							t.Errorf("k=%d w=%d rank %d: KthStep %d vs blocking %d", k, w, r, res[r], refRes[r])
						}
					}
					if s := m.Stats(); s != refStats {
						t.Errorf("k=%d w=%d: stats diverge:\n  blocking matrix: %+v\n  stepper mailbox: %+v",
							k, w, refStats, s)
					}
					m.Close()
				}
			}
		})
	}
}

// TestKthStepRepeatedRunsReusePooledState exercises the resume-path
// reuse across many RunAsync cycles on one machine: the pooled kthStep
// (and every collective stepper underneath) is recycled per op, and
// stale state from a previous selection must never leak into the next.
func TestKthStepRepeatedRunsReusePooledState(t *testing.T) {
	const p, perPE, rounds = 8, 128, 10
	cfg := comm.MailboxConfig(p)
	cfg.Workers = 2
	m := comm.NewMachine(cfg)
	defer m.Close()
	locals := make([][]uint64, p)
	for r := 0; r < p; r++ {
		locals[r] = gen.SelectionInput(xrand.NewPE(5, r), perPE, 12)
	}
	n := int64(p * perPE)
	for round := 0; round < rounds; round++ {
		k := 1 + (n*int64(round))/int64(rounds)
		var want uint64
		m.MustRun(func(pe *comm.PE) {
			v := Kth(pe, locals[pe.Rank()], k, xrand.NewPE(int64(round), pe.Rank()))
			if pe.Rank() == 0 {
				want = v
			}
		})
		res := make([]uint64, p)
		m.MustRunAsync(func(pe *comm.PE) comm.Stepper {
			return KthStep(pe, locals[pe.Rank()], k, xrand.NewPE(int64(round), pe.Rank()),
				func(v uint64) { res[pe.Rank()] = v })
		})
		for r := 0; r < p; r++ {
			if res[r] != want {
				t.Fatalf("round %d rank %d: got %d want %d", round, r, res[r], want)
			}
		}
	}
}

// TestKthStepAllocParity pins the pooling: steady-state continuation
// selection must not allocate more than the blocking form (whose own
// per-op allocations — gather materializations, broadcast boxing — are
// inherent to the protocol, not to continuation scheduling).
func TestKthStepAllocParity(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race (sync.Pool is randomized)")
	}
	const p, perPE = 8, 512
	locals := make([][]uint64, p)
	for r := 0; r < p; r++ {
		locals[r] = gen.SelectionInput(xrand.NewPE(11, r), perPE, 12)
	}
	k := int64(p * perPE / 2)
	measure := func(run func(m *comm.Machine)) float64 {
		m := comm.NewMachine(comm.MailboxConfig(p))
		defer m.Close()
		for i := 0; i < 3; i++ {
			run(m)
		}
		return testing.AllocsPerRun(10, func() { run(m) })
	}
	blocking := measure(func(m *comm.Machine) {
		m.MustRun(func(pe *comm.PE) {
			Kth(pe, locals[pe.Rank()], k, xrand.NewPE(13, pe.Rank()))
		})
	})
	stepper := measure(func(m *comm.Machine) {
		m.MustRunAsync(func(pe *comm.PE) comm.Stepper {
			return KthStep(pe, locals[pe.Rank()], k, xrand.NewPE(13, pe.Rank()), nil)
		})
	})
	// Identical protocol, pooled state: the continuation form must sit
	// within noise of the blocking form (slack for pool refills).
	if stepper > blocking+float64(p)*2 {
		t.Errorf("continuation selection allocates %.1f/op vs blocking %.1f/op; stepper state pooling regressed",
			stepper, blocking)
	}
}
