package wire

import (
	"fmt"
	"sync"

	"commtopk/internal/comm"
)

// Program registry. Closures cannot cross a process boundary, so a wire
// cluster runs *named* programs: every participating binary registers
// the same programs (by importing the same registration package — see
// wireprogs), the leader's start frame carries the name plus parameter
// words, and each process looks the name up locally. A program returns
// one result word per PE; the words travel back in the done frame, out
// of band, so they add no in-band traffic and the meters stay directly
// comparable to an in-process run.

// Prog is one registered SPMD program: the body run on every PE, with
// the run's parameter words, returning this PE's result word.
type Prog func(pe *comm.PE, args []uint64) uint64

var progs struct {
	sync.RWMutex
	m map[string]Prog
}

// RegisterProg registers a named program. Re-registering a name panics
// (two different programs under one name would desynchronize processes).
func RegisterProg(name string, p Prog) {
	progs.Lock()
	defer progs.Unlock()
	if progs.m == nil {
		progs.m = make(map[string]Prog)
	}
	if _, dup := progs.m[name]; dup {
		panic(fmt.Sprintf("wire: program %q registered twice", name))
	}
	progs.m[name] = p
}

func lookupProg(name string) Prog {
	progs.RLock()
	defer progs.RUnlock()
	return progs.m[name]
}

// RunLocal runs a registered program on a single-process mailbox machine
// with the same shape (p, α, β, seed) as a cluster built from cfg — the
// in-process twin the differential suite compares a wire run against,
// and the modeled-clock reference for the measured-vs-modeled
// experiment family.
func RunLocal(cfg Config, prog string, args []uint64) ([]uint64, comm.Stats, error) {
	pr := lookupProg(prog)
	if pr == nil {
		return nil, comm.Stats{}, fmt.Errorf("wire: program %q not registered", prog)
	}
	m := comm.NewMachine(comm.Config{
		P: cfg.P, Alpha: cfg.alphaOrDefault(), Beta: cfg.betaOrDefault(),
		Seed: cfg.Seed, Backend: comm.BackendMailbox,
		Workers: cfg.Workers, PopBatch: cfg.PopBatch,
	})
	defer m.Close()
	results := make([]uint64, cfg.P)
	err := m.Run(func(pe *comm.PE) {
		results[pe.Rank()] = pr(pe, args)
	})
	return results, m.Stats(), err
}
