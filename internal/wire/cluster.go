package wire

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"commtopk/internal/comm"
	"commtopk/internal/mailbox"
)

// Config describes a wire cluster: the machine shape plus how to reach
// and launch the worker processes.
type Config struct {
	// P is the total PE count; Procs the number of OS processes the PEs
	// are split over (contiguous groups, process 0 = the leader).
	// 1 ≤ Procs ≤ P.
	P     int
	Procs int
	// Alpha/Beta/Seed are the modeled cost constants and the shared RNG
	// seed, distributed to workers in the welcome frame. Zero values
	// select the DefaultConfig constants (α=1000, β=1, seed=1).
	Alpha float64
	Beta  float64
	Seed  int64
	// Workers and PopBatch are per-process mailbox scheduler knobs
	// (comm.Config.Workers / comm.Config.PopBatch).
	Workers  int
	PopBatch int
	// Network/Addr select the rendezvous transport: "unix" (default) with
	// a socket in a fresh temp dir, or "tcp" on 127.0.0.1:0 — the same
	// dialer seam either way. Addr overrides the listen address.
	Network string
	Addr    string
	// WorkerCommand is the argv launched per worker process; the
	// rendezvous address and group index travel in the environment
	// (COMMTOPK_WIRE_*). Empty selects re-exec-self (os.Executable), the
	// mode the test harness and topkbench use via MaybeWorker.
	WorkerCommand []string
	// HandshakeTimeout bounds Spawn's rendezvous (default 30s);
	// ShutdownTimeout bounds Close's graceful drain before SIGKILL
	// (default 10s).
	HandshakeTimeout time.Duration
	ShutdownTimeout  time.Duration
}

func (c Config) alphaOrDefault() float64 {
	if c.Alpha == 0 && c.Beta == 0 {
		return 1000
	}
	return c.Alpha
}

func (c Config) betaOrDefault() float64 {
	if c.Alpha == 0 && c.Beta == 0 {
		return 1
	}
	return c.Beta
}

func (c Config) seedOrDefault() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// GroupBounds returns the contiguous rank window [lo, hi) of group g in
// a p-PE, procs-process cluster (the same split the mailbox scheduler
// uses for its shards).
func GroupBounds(p, procs, g int) (lo, hi int) {
	return g * p / procs, (g + 1) * p / procs
}

// ctl event kinds (internal).
const (
	evReady = iota
	evDone
	evFail
)

type ctlEvent struct {
	kind  int
	group int
	done  doneMsg
	err   error
}

// Cluster is a spawned wire machine: the leader-side handle owning the
// local PE group, the worker processes, and their connections. Not safe
// for concurrent use; Run and Close serialize on the caller.
type Cluster struct {
	cfg     Config
	p       int
	procs   int
	ownerOf []int32 // rank → owning group
	m       *comm.Machine
	links   []*link // by group; [0] nil (the leader itself)
	cmds    []*exec.Cmd
	ln      net.Listener
	tmpDir  string // owned temp dir of the unix socket, removed on Close

	ctl    chan ctlEvent
	runSeq uint64

	mu     sync.Mutex
	dead   error // first transport/worker failure; cluster unusable after
	closed bool
}

// Spawn launches a wire cluster: it listens on the rendezvous address,
// forks cfg.Procs−1 worker processes, performs the handshake (hello →
// welcome with the rank map and seed → ready), and builds the leader's
// local machine over group 0. On any failure everything already started
// is torn down before returning.
func Spawn(cfg Config) (*Cluster, error) {
	if cfg.P < 1 || cfg.Procs < 1 || cfg.Procs > cfg.P {
		return nil, fmt.Errorf("wire: invalid cluster shape p=%d procs=%d", cfg.P, cfg.Procs)
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 30 * time.Second
	}
	if cfg.ShutdownTimeout <= 0 {
		cfg.ShutdownTimeout = 10 * time.Second
	}
	c := &Cluster{
		cfg:     cfg,
		p:       cfg.P,
		procs:   cfg.Procs,
		ownerOf: make([]int32, cfg.P),
		ctl:     make(chan ctlEvent, 4*cfg.Procs+4),
		links:   make([]*link, cfg.Procs),
	}
	for g := 0; g < cfg.Procs; g++ {
		lo, hi := GroupBounds(cfg.P, cfg.Procs, g)
		for r := lo; r < hi; r++ {
			c.ownerOf[r] = int32(g)
		}
	}
	if err := c.rendezvous(); err != nil {
		c.teardown(true)
		return nil, err
	}
	_, hi0 := GroupBounds(cfg.P, cfg.Procs, 0)
	c.m = comm.NewMachine(comm.Config{
		P: cfg.P, Alpha: cfg.alphaOrDefault(), Beta: cfg.betaOrDefault(),
		Seed: cfg.seedOrDefault(), Backend: comm.BackendWire,
		Workers: cfg.Workers, PopBatch: cfg.PopBatch,
		Remote: &comm.Remote{Lo: 0, Hi: hi0, Forward: c.forward},
	})
	return c, nil
}

// rendezvous starts the listener and workers and completes the
// handshake: each worker dials in, identifies its group (hello), gets
// the machine shape and its rank window (welcome), builds its machine,
// and confirms (ready).
func (c *Cluster) rendezvous() error {
	if c.procs == 1 {
		return nil // degenerate single-process cluster: no transport at all
	}
	network, addr := c.cfg.Network, c.cfg.Addr
	if network == "" {
		network = "unix"
	}
	if addr == "" {
		switch network {
		case "unix":
			dir, err := os.MkdirTemp("", "commtopk-wire-")
			if err != nil {
				return fmt.Errorf("wire: temp dir for rendezvous socket: %w", err)
			}
			c.tmpDir = dir
			addr = filepath.Join(dir, "leader.sock")
		case "tcp":
			addr = "127.0.0.1:0"
		default:
			return fmt.Errorf("wire: unsupported network %q (want unix or tcp)", network)
		}
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return fmt.Errorf("wire: listen %s %s: %w", network, addr, err)
	}
	c.ln = ln
	dialAddr := ln.Addr().String()

	argv := c.cfg.WorkerCommand
	if len(argv) == 0 {
		self, err := os.Executable()
		if err != nil {
			return fmt.Errorf("wire: resolve worker executable: %w", err)
		}
		argv = []string{self}
	}
	for g := 1; g < c.procs; g++ {
		cmd := exec.Command(argv[0], argv[1:]...)
		cmd.Env = append(os.Environ(),
			envNet+"="+network,
			envAddr+"="+dialAddr,
			fmt.Sprintf("%s=%d", envIndex, g),
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("wire: start worker %d (%s): %w", g, argv[0], err)
		}
		c.cmds = append(c.cmds, cmd)
	}

	deadline := time.Now().Add(c.cfg.HandshakeTimeout)
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := ln.(deadliner); ok {
		d.SetDeadline(deadline)
	}
	for n := 0; n < c.procs-1; n++ {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("wire: rendezvous accept (%d of %d workers connected): %w", n, c.procs-1, err)
		}
		conn.SetDeadline(deadline)
		br := bufio.NewReader(conn)
		body, err := readFrame(br)
		if err != nil {
			conn.Close()
			return fmt.Errorf("wire: rendezvous hello: %w", err)
		}
		g, err := decodeHello(body)
		if err != nil {
			conn.Close()
			return err
		}
		if g < 1 || g >= c.procs || c.links[g] != nil {
			conn.Close()
			return fmt.Errorf("wire: rendezvous: invalid or duplicate group index %d", g)
		}
		lo, hi := GroupBounds(c.p, c.procs, g)
		w := welcome{
			P: c.p, Procs: c.procs, Lo: lo, Hi: hi,
			Alpha: c.cfg.alphaOrDefault(), Beta: c.cfg.betaOrDefault(),
			Seed: c.cfg.seedOrDefault(), Workers: c.cfg.Workers, PopBatch: c.cfg.PopBatch,
		}
		if err := writeFrame(conn, appendWelcome(nil, w)); err != nil {
			conn.Close()
			return fmt.Errorf("wire: rendezvous welcome to worker %d: %w", g, err)
		}
		conn.SetDeadline(time.Time{})
		c.links[g] = newLink(conn)
		go c.reader(g, br)
	}
	if d, ok := ln.(deadliner); ok {
		d.SetDeadline(time.Time{})
	}
	ready := 0
	timeout := time.NewTimer(time.Until(deadline))
	defer timeout.Stop()
	for ready < c.procs-1 {
		select {
		case ev := <-c.ctl:
			switch ev.kind {
			case evReady:
				ready++
			case evFail:
				return fmt.Errorf("wire: worker %d failed during rendezvous: %w", ev.group, ev.err)
			}
		case <-timeout.C:
			return fmt.Errorf("wire: rendezvous timeout (%d of %d workers ready)", ready, c.procs-1)
		}
	}
	return nil
}

// forward is the leader machine's Remote.Forward hook: encode and ship
// to the destination's owning worker. Called concurrently from PE
// goroutines; link.send never blocks. An unregistered payload type
// panics in the sending PE, which the machine converts into a clean run
// abort naming the type.
func (c *Cluster) forward(dst int, msg mailbox.Msg) {
	body, err := appendEnvelope(nil, c.p, dst, msg)
	if err != nil {
		panic(err)
	}
	c.links[c.ownerOf[dst]].send(body)
}

// reader consumes one worker's frames: local deliveries decode here,
// frames for other workers relay untouched (hub topology), control
// frames go to the ctl channel. A read error (worker death) aborts the
// machine so a run in progress unwinds instead of hanging.
func (c *Cluster) reader(g int, br *bufio.Reader) {
	for {
		body, err := readFrame(br)
		if err != nil {
			c.linkDown(g, fmt.Errorf("wire: worker %d connection lost: %w", g, err))
			return
		}
		switch body[0] {
		case kData:
			dst, ok := envelopeDst(body)
			if !ok || dst < 0 || dst >= c.p {
				c.linkDown(g, fmt.Errorf("wire: worker %d sent a malformed data frame", g))
				return
			}
			if owner := c.ownerOf[dst]; owner != 0 {
				c.links[owner].send(body)
				continue
			}
			dst, msg, err := decodeEnvelope(body, c.p)
			if err != nil {
				c.linkDown(g, fmt.Errorf("wire: worker %d: %w", g, err))
				return
			}
			c.m.Deliver(dst, msg)
		case kReady:
			c.ctl <- ctlEvent{kind: evReady, group: g}
		case kDone:
			dm, err := decodeDone(body)
			if err != nil {
				c.linkDown(g, fmt.Errorf("wire: worker %d: %w", g, err))
				return
			}
			if dm.Err != "" {
				// A remote failure can leave local PEs (and other workers)
				// blocked on messages that will never come; propagate the
				// abort immediately, from here, rather than after the local
				// run returns.
				remoteErr := fmt.Errorf("wire: worker %d: %s", g, dm.Err)
				c.m.AbortExternal(remoteErr)
				c.broadcastAbort(dm.RunID, remoteErr.Error())
			}
			c.ctl <- ctlEvent{kind: evDone, group: g, done: dm}
		case kShutdown, kStart, kAbort, kWelcome, kHello:
			c.linkDown(g, fmt.Errorf("wire: worker %d sent unexpected frame kind %d", g, body[0]))
			return
		default:
			c.linkDown(g, fmt.Errorf("wire: worker %d sent unknown frame kind %d", g, body[0]))
			return
		}
	}
}

// linkDown records a worker failure: the cluster is dead from here on,
// and any run in progress unwinds via the machine abort.
func (c *Cluster) linkDown(g int, err error) {
	c.mu.Lock()
	if c.dead == nil {
		c.dead = err
	}
	closed := c.closed
	c.mu.Unlock()
	c.links[g].abort()
	if c.m != nil && !closed {
		c.m.AbortExternal(err)
	}
	c.ctl <- ctlEvent{kind: evFail, group: g, err: err}
}

func (c *Cluster) broadcastAbort(runID uint64, msg string) {
	for _, l := range c.links {
		if l != nil {
			l.send(appendAbort(nil, runID, msg))
		}
	}
}

// P returns the cluster's total PE count.
func (c *Cluster) P() int { return c.p }

// Procs returns the cluster's process count (including the leader).
func (c *Cluster) Procs() int { return c.procs }

// Run executes the named registered program SPMD across all processes
// and returns the per-rank result words and the cluster-wide folded
// statistics (totals summed, bottleneck maxima and the modeled clock
// maxed over processes). The first failure anywhere — a PE panic in any
// process, a worker death, an unregistered payload — aborts every
// process's run and is returned; a worker death additionally marks the
// cluster dead (subsequent Runs fail immediately).
func (c *Cluster) Run(prog string, args []uint64) ([]uint64, comm.Stats, error) {
	c.mu.Lock()
	dead, closed := c.dead, c.closed
	c.mu.Unlock()
	if closed {
		return nil, comm.Stats{}, fmt.Errorf("wire: cluster is closed")
	}
	if dead != nil {
		return nil, comm.Stats{}, fmt.Errorf("wire: cluster is dead: %w", dead)
	}
	pr := lookupProg(prog)
	if pr == nil {
		return nil, comm.Stats{}, fmt.Errorf("wire: program %q not registered", prog)
	}
	c.runSeq++
	runID := c.runSeq
	c.m.ResetStats()
	start := appendStart(nil, startMsg{RunID: runID, Prog: prog, Args: args})
	for _, l := range c.links {
		if l != nil {
			l.send(start)
		}
	}
	results := make([]uint64, c.p)
	localErr := c.m.Run(func(pe *comm.PE) {
		results[pe.Rank()] = pr(pe, args)
	})
	firstErr := localErr
	if localErr != nil {
		c.broadcastAbort(runID, localErr.Error())
	}
	stats := c.m.Stats()
	doneSeen := make([]bool, c.procs)
	for pending := c.procs - 1; pending > 0; {
		ev := <-c.ctl
		switch ev.kind {
		case evDone:
			if ev.done.RunID != runID || doneSeen[ev.group] {
				continue // stale (failed earlier run); cluster is dead anyway
			}
			doneSeen[ev.group] = true
			pending--
			if ev.done.Err != "" && firstErr == nil {
				firstErr = fmt.Errorf("wire: worker %d: %s", ev.group, ev.done.Err)
			}
			lo, hi := GroupBounds(c.p, c.procs, ev.group)
			if len(ev.done.Results) == hi-lo {
				copy(results[lo:hi], ev.done.Results)
			} else if firstErr == nil {
				firstErr = fmt.Errorf("wire: worker %d returned %d results for window [%d, %d)", ev.group, len(ev.done.Results), lo, hi)
			}
			stats.TotalWords += ev.done.Stats.TotalWords
			stats.TotalSends += ev.done.Stats.TotalSends
			stats.MaxSentWords = max(stats.MaxSentWords, ev.done.Stats.MaxSentWords)
			stats.MaxRecvWords = max(stats.MaxRecvWords, ev.done.Stats.MaxRecvWords)
			stats.MaxSends = max(stats.MaxSends, ev.done.Stats.MaxSends)
			if ev.done.Stats.MaxClock > stats.MaxClock {
				stats.MaxClock = ev.done.Stats.MaxClock
			}
		case evFail:
			if !doneSeen[ev.group] {
				pending--
			}
			if firstErr == nil {
				firstErr = ev.err
			}
		}
	}
	if firstErr != nil {
		return nil, comm.Stats{}, firstErr
	}
	return results, stats, nil
}

// Close tears the cluster down: shutdown frames to every worker, a
// bounded wait for clean exits, SIGKILL for stragglers, and release of
// the leader machine, listener and socket directory. Idempotent. Safe to
// call on a dead cluster (workers that died are reaped; live ones are
// told to exit).
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	dead := c.dead
	c.mu.Unlock()
	graceful := dead == nil
	return c.teardown(!graceful)
}

func (c *Cluster) teardown(force bool) error {
	var firstErr error
	if !force {
		for _, l := range c.links {
			if l != nil {
				l.send([]byte{kShutdown})
				l.close()
			}
		}
	} else {
		for _, l := range c.links {
			if l != nil {
				l.abort()
			}
		}
	}
	deadline := time.Now().Add(c.cfg.ShutdownTimeout)
	for i, cmd := range c.cmds {
		exited := make(chan error, 1)
		go func() { exited <- cmd.Wait() }()
		var werr error
		select {
		case werr = <-exited:
		case <-time.After(time.Until(deadline)):
			cmd.Process.Kill()
			werr = <-exited
			if !force && firstErr == nil {
				firstErr = fmt.Errorf("wire: worker %d did not exit within %v; killed", i+1, c.cfg.ShutdownTimeout)
			}
		}
		if !force && werr != nil && firstErr == nil {
			firstErr = fmt.Errorf("wire: worker %d exit: %w", i+1, werr)
		}
	}
	for _, l := range c.links {
		if l != nil {
			l.abort()
			l.wait()
		}
	}
	if c.ln != nil {
		c.ln.Close()
	}
	if c.tmpDir != "" {
		os.RemoveAll(c.tmpDir)
	}
	if c.m != nil {
		c.m.Close()
	}
	return firstErr
}
