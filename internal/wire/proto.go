package wire

import (
	"fmt"

	"commtopk/internal/comm"
	"commtopk/internal/mailbox"
)

// Protocol frames. Every frame body starts with a kind byte (see
// codec.go); this file defines the per-kind layouts. Data frames carry
// one machine message across the process boundary; control frames drive
// the rendezvous handshake and the per-run start/done/abort protocol.

// envHeaderLen is the fixed prefix of a data frame before the payload:
// kind, src, dst, ctx, tag, words, depart.
const envHeaderLen = 1 + 4 + 4 + 4 + 8 + 8 + 8

// appendEnvelope encodes one cross-process message. src == p encodes an
// external injection (Machine.Post), matching the in-process ExternalSrc
// convention. The depart stamp crosses as raw float64 bits so the
// receiver's clock rule folds bit-identically to a local delivery.
func appendEnvelope(b []byte, p int, dst int, msg mailbox.Msg) ([]byte, error) {
	e := Enc{b: b}
	e.U8(kData)
	e.U32(uint32(msg.Src))
	e.U32(uint32(dst))
	e.U32(msg.Ctx)
	e.U64(msg.Tag)
	e.U64(uint64(msg.Words))
	e.F64(msg.Depart)
	return appendPayload(e.Bytes(), msg.Data)
}

// envelopeDst peeks a data frame's destination rank without decoding the
// payload — the leader's relay path forwards the raw body untouched.
func envelopeDst(body []byte) (int, bool) {
	if len(body) < envHeaderLen || body[0] != kData {
		return 0, false
	}
	d := Dec{b: body, off: 5}
	return int(d.U32()), true
}

// decodeEnvelope decodes a data frame into a deliverable message. p is
// the machine size, used to validate the rank fields.
func decodeEnvelope(body []byte, p int) (dst int, msg mailbox.Msg, err error) {
	d := Dec{b: body}
	if d.U8() != kData {
		return 0, msg, fmt.Errorf("wire: not a data frame")
	}
	src := int(d.U32())
	dst = int(d.U32())
	msg.Src = src
	msg.Ctx = d.U32()
	msg.Tag = d.U64()
	msg.Words = int64(d.U64())
	msg.Depart = d.F64()
	if d.Err() != nil {
		return 0, msg, d.Err()
	}
	if src < 0 || src > p || dst < 0 || dst >= p || src == dst {
		return 0, msg, fmt.Errorf("wire: envelope ranks src=%d dst=%d out of range for p=%d", src, dst, p)
	}
	if msg.Words < 0 {
		return 0, msg, fmt.Errorf("wire: negative word count %d", msg.Words)
	}
	msg.Data, err = decodePayload(&d)
	if err != nil {
		return 0, msg, err
	}
	if d.Remaining() != 0 {
		return 0, msg, fmt.Errorf("wire: %d trailing bytes after payload", d.Remaining())
	}
	return dst, msg, nil
}

// hello is the worker's first frame: which group index it was launched
// as.
func appendHello(b []byte, index int) []byte {
	e := Enc{b: b}
	e.U8(kHello)
	e.U32(uint32(index))
	return e.Bytes()
}

func decodeHello(body []byte) (int, error) {
	d := Dec{b: body}
	if d.U8() != kHello {
		return 0, fmt.Errorf("wire: expected hello frame, got kind %d", body[0])
	}
	idx := int(d.U32())
	if d.Err() != nil {
		return 0, d.Err()
	}
	return idx, nil
}

// welcome carries everything a worker needs to build its local machine:
// the global machine shape, its own rank window, and the shared seed —
// the rendezvous rank-map exchange and seed distribution in one frame.
type welcome struct {
	P        int
	Procs    int
	Lo, Hi   int
	Alpha    float64
	Beta     float64
	Seed     int64
	Workers  int
	PopBatch int
	Global   bool // GlobalReadyQueue
}

func appendWelcome(b []byte, w welcome) []byte {
	e := Enc{b: b}
	e.U8(kWelcome)
	e.U32(uint32(w.P))
	e.U32(uint32(w.Procs))
	e.U32(uint32(w.Lo))
	e.U32(uint32(w.Hi))
	e.F64(w.Alpha)
	e.F64(w.Beta)
	e.I64(w.Seed)
	e.U32(uint32(w.Workers))
	e.U32(uint32(w.PopBatch))
	if w.Global {
		e.U8(1)
	} else {
		e.U8(0)
	}
	return e.Bytes()
}

func decodeWelcome(body []byte) (welcome, error) {
	d := Dec{b: body}
	var w welcome
	if d.U8() != kWelcome {
		return w, fmt.Errorf("wire: expected welcome frame, got kind %d", body[0])
	}
	w.P = int(d.U32())
	w.Procs = int(d.U32())
	w.Lo = int(d.U32())
	w.Hi = int(d.U32())
	w.Alpha = d.F64()
	w.Beta = d.F64()
	w.Seed = d.I64()
	w.Workers = int(d.U32())
	w.PopBatch = int(d.U32())
	w.Global = d.U8() != 0
	if d.Err() != nil {
		return w, d.Err()
	}
	if w.P < 1 || w.Lo < 0 || w.Hi <= w.Lo || w.Hi > w.P {
		return w, fmt.Errorf("wire: welcome window [%d, %d) invalid for p=%d", w.Lo, w.Hi, w.P)
	}
	return w, nil
}

// start launches one registered program run on a worker. Args are the
// run's parameter words; the program name resolves against the program
// registry (progs.go) in the worker process.
type startMsg struct {
	RunID uint64
	Prog  string
	Args  []uint64
}

func appendStart(b []byte, s startMsg) []byte {
	e := Enc{b: b}
	e.U8(kStart)
	e.U64(s.RunID)
	e.Str(s.Prog)
	e.U64(uint64(len(s.Args)))
	for _, a := range s.Args {
		e.U64(a)
	}
	return e.Bytes()
}

func decodeStart(body []byte) (startMsg, error) {
	d := Dec{b: body}
	var s startMsg
	if d.U8() != kStart {
		return s, fmt.Errorf("wire: expected start frame, got kind %d", body[0])
	}
	s.RunID = d.U64()
	s.Prog = d.Str()
	n := d.Len(8)
	if d.Err() == nil && n > 0 {
		s.Args = make([]uint64, n)
		for i := range s.Args {
			s.Args[i] = d.U64()
		}
	}
	return s, d.Err()
}

// done reports one worker's run completion: its local stats fold, its
// local ranks' result words, and the error (empty string: none). Results
// travel here, out of band, so the in-band data frames — and with them
// the meters — stay identical to the in-process backends.
type doneMsg struct {
	RunID   uint64
	Stats   comm.Stats
	Results []uint64
	Err     string
}

func appendDone(b []byte, m doneMsg) []byte {
	e := Enc{b: b}
	e.U8(kDone)
	e.U64(m.RunID)
	e.I64(m.Stats.TotalWords)
	e.I64(m.Stats.MaxSentWords)
	e.I64(m.Stats.MaxRecvWords)
	e.I64(m.Stats.TotalSends)
	e.I64(m.Stats.MaxSends)
	e.F64(m.Stats.MaxClock)
	e.U64(uint64(len(m.Results)))
	for _, r := range m.Results {
		e.U64(r)
	}
	e.Str(m.Err)
	return e.Bytes()
}

func decodeDone(body []byte) (doneMsg, error) {
	d := Dec{b: body}
	var m doneMsg
	if d.U8() != kDone {
		return m, fmt.Errorf("wire: expected done frame, got kind %d", body[0])
	}
	m.RunID = d.U64()
	m.Stats.TotalWords = d.I64()
	m.Stats.MaxSentWords = d.I64()
	m.Stats.MaxRecvWords = d.I64()
	m.Stats.TotalSends = d.I64()
	m.Stats.MaxSends = d.I64()
	m.Stats.MaxClock = d.F64()
	n := d.Len(8)
	if d.Err() == nil && n > 0 {
		m.Results = make([]uint64, n)
		for i := range m.Results {
			m.Results[i] = d.U64()
		}
	}
	m.Err = d.Str()
	return m, d.Err()
}

// abort tells a worker to unwind the identified run (stale aborts for
// already-finished runs are ignored by the worker).
func appendAbort(b []byte, runID uint64, msg string) []byte {
	e := Enc{b: b}
	e.U8(kAbort)
	e.U64(runID)
	e.Str(msg)
	return e.Bytes()
}

func decodeAbort(body []byte) (runID uint64, msg string, err error) {
	d := Dec{b: body}
	if d.U8() != kAbort {
		return 0, "", fmt.Errorf("wire: expected abort frame, got kind %d", body[0])
	}
	runID = d.U64()
	msg = d.Str()
	return runID, msg, d.Err()
}
