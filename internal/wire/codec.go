// Package wire is the multi-process transport behind comm.BackendWire:
// the machine's p PEs are split into contiguous groups, one OS process
// per group, connected by length-prefixed frames over Unix-domain
// sockets (TCP via the same dialer seam). The leader process runs group
// 0 and relays frames between workers (hub topology: every worker holds
// exactly one connection, to the leader), so cross-process sends behave
// exactly like in-process ones — keyed demux, IRecv binding, Post
// doorbells and the α/β meters are all unchanged, pinned bit-identical
// to the mailbox backend by the differential suite.
//
// This file is the codec layer: frame I/O, the (src, dst, ctx, payload)
// envelope, and the payload type registry. Payloads cross process
// boundaries by value, so every concrete payload type must be registered
// (RegisterPOD for pointer-free types, Register for custom layouts);
// type identity on the wire is the FNV-64a hash of the registration
// name, which is stable across binaries — registration ORDER is not.
// Decoding is defensive end to end: malformed input (truncated frames,
// oversized lengths, unknown type ids) returns an error, never panics,
// and never allocates more than the bytes that actually arrived plus one
// read chunk.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"reflect"
	"sync"
	"unsafe"
)

// MaxFrame is the hard cap on one frame body. Larger bodies indicate a
// corrupt stream (or a payload that should have been chunked by the
// algorithm layer) and are rejected before allocation.
const MaxFrame = 1 << 28

// Frame kinds (first body byte).
const (
	kData     byte = iota + 1 // envelope: a cross-process message
	kHello                    // worker → leader: here is my group index
	kWelcome                  // leader → worker: machine config + rank map
	kReady                    // worker → leader: machine built, rendezvous done
	kStart                    // leader → worker: run this registered program
	kDone                     // worker → leader: run finished (stats, results, error)
	kAbort                    // leader → worker: abort the current run
	kShutdown                 // leader → worker: tear down and exit 0
)

// writeFrame writes one length-prefixed frame (4-byte little-endian body
// length, then the body).
func writeFrame(w io.Writer, body []byte) error {
	if len(body) == 0 || len(body) > MaxFrame {
		return fmt.Errorf("wire: invalid frame body length %d", len(body))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one frame body. The declared length is validated
// against MaxFrame before any allocation, and the buffer grows only as
// bytes actually arrive — a hostile length header cannot force a large
// allocation.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n == 0 || n > MaxFrame {
		return nil, fmt.Errorf("wire: frame length %d out of range (0, %d]", n, MaxFrame)
	}
	const chunk = 64 << 10
	body := make([]byte, 0, min(n, chunk))
	for len(body) < n {
		grab := min(n-len(body), chunk)
		off := len(body)
		body = append(body, make([]byte, grab)...)
		if _, err := io.ReadFull(r, body[off:]); err != nil {
			return nil, fmt.Errorf("wire: truncated frame (%d of %d bytes): %w", off, n, err)
		}
	}
	return body, nil
}

// Enc appends primitive values to a byte buffer — the write half the
// registered payload codecs are built from.
type Enc struct{ b []byte }

func (e *Enc) U8(v byte)      { e.b = append(e.b, v) }
func (e *Enc) U32(v uint32)   { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *Enc) U64(v uint64)   { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *Enc) I64(v int64)    { e.U64(uint64(v)) }
func (e *Enc) F64(v float64)  { e.U64(math.Float64bits(v)) }
func (e *Enc) Raw(p []byte)   { e.b = append(e.b, p...) }
func (e *Enc) Str(s string)   { e.U64(uint64(len(s))); e.b = append(e.b, s...) }
func (e *Enc) Bytes() []byte  { return e.b }

// Dec consumes primitive values from a frame body. Every read validates
// the remaining length; the first failure latches Err and all subsequent
// reads return zero values, so codecs can decode straight-line and check
// Err once.
type Dec struct {
	b   []byte
	off int
	err error
}

// Err returns the first decoding failure, or nil.
func (d *Dec) Err() error { return d.err }

// Failf records a decoding failure (used by codecs for semantic checks,
// e.g. an element count that exceeds the remaining bytes).
func (d *Dec) Failf(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

// Remaining returns the number of unconsumed bytes.
func (d *Dec) Remaining() int { return len(d.b) - d.off }

// Take consumes n raw bytes, returning a subslice of the frame body (the
// caller copies if it retains).
func (d *Dec) Take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > d.Remaining() {
		d.Failf("truncated: need %d bytes, have %d", n, d.Remaining())
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

func (d *Dec) U8() byte {
	p := d.Take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (d *Dec) U32() uint32 {
	p := d.Take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (d *Dec) U64() uint64 {
	p := d.Take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (d *Dec) I64() int64   { return int64(d.U64()) }
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

func (d *Dec) Str() string {
	n := d.U64()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.Remaining()) {
		d.Failf("truncated string: length %d exceeds %d remaining bytes", n, d.Remaining())
		return ""
	}
	return string(d.Take(int(n)))
}

// Len consumes an element count and validates it against the remaining
// bytes at elemSize bytes per element — the over-allocation guard every
// slice codec must pass before making the slice.
func (d *Dec) Len(elemSize int) int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if n > uint64(d.Remaining()/elemSize) {
		d.Failf("element count %d exceeds remaining payload (%d bytes, %d per element)", n, d.Remaining(), elemSize)
		return 0
	}
	return int(n)
}

// --- payload type registry ---

type codecEntry struct {
	name string
	id   uint64
	rt   reflect.Type
	enc  func(e *Enc, v any)
	dec  func(d *Dec) any
}

var reg struct {
	sync.RWMutex
	byID   map[uint64]*codecEntry
	byType map[reflect.Type]*codecEntry
}

// TypeID returns the wire identity of a registration name: FNV-64a of
// the name. Stable across binaries and registration orders — the leader
// and worker processes need only agree on names, not init sequences.
func TypeID(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	id := h.Sum64()
	if id == 0 {
		id = 1 // 0 is reserved for the nil payload
	}
	return id
}

// Register adds a payload codec for concrete type T under name.
// Registering the same (name, T) pair again is a no-op; any other
// collision (name reused for a different type, or T already registered
// under a different name) panics at init time.
func Register[T any](name string, encFn func(*Enc, T), decFn func(*Dec) T) {
	registerEntry(&codecEntry{
		name: name,
		id:   TypeID(name),
		rt:   reflect.TypeFor[T](),
		enc:  func(e *Enc, v any) { encFn(e, v.(T)) },
		dec:  func(d *Dec) any { return decFn(d) },
	})
}

func registerEntry(ce *codecEntry) {
	reg.Lock()
	defer reg.Unlock()
	if reg.byID == nil {
		reg.byID = make(map[uint64]*codecEntry)
		reg.byType = make(map[reflect.Type]*codecEntry)
	}
	if old := reg.byID[ce.id]; old != nil {
		if old.rt == ce.rt && old.name == ce.name {
			return // idempotent re-registration
		}
		panic(fmt.Sprintf("wire: codec name %q (id %#x) collides with %q for %v", ce.name, ce.id, old.name, old.rt))
	}
	if old := reg.byType[ce.rt]; old != nil {
		panic(fmt.Sprintf("wire: type %v already registered as %q", ce.rt, old.name))
	}
	reg.byID[ce.id] = ce
	reg.byType[ce.rt] = ce
}

func lookupType(rt reflect.Type) *codecEntry {
	reg.RLock()
	ce := reg.byType[rt]
	reg.RUnlock()
	return ce
}

func lookupID(id uint64) *codecEntry {
	reg.RLock()
	ce := reg.byID[id]
	reg.RUnlock()
	return ce
}

// RegisterPOD registers a pointer-free fixed-size type T — and its
// derived payload shapes *T, []T and *[]T — for raw-byte transport. The
// element type must contain no pointers, no padding, and have a
// little-endian-stable layout (the substrate's payloads are machine
// words and flat structs of them). Panics if T contains pointers.
func RegisterPOD[T any](name string) {
	rt := reflect.TypeFor[T]()
	size := int(rt.Size())
	if size == 0 || hasPointers(rt) {
		panic(fmt.Sprintf("wire: RegisterPOD %q: %v is not a pointer-free fixed-size type", name, rt))
	}
	Register[T](name,
		func(e *Enc, v T) { e.Raw(podBytes(&v, size)) },
		func(d *Dec) T {
			var v T
			if p := d.Take(size); p != nil {
				copy(podBytes(&v, size), p)
			}
			return v
		})
	Register[*T](name+"*",
		func(e *Enc, v *T) {
			if v == nil {
				e.U8(0)
				return
			}
			e.U8(1)
			e.Raw(podBytes(v, size))
		},
		func(d *Dec) *T {
			if d.U8() == 0 {
				return nil
			}
			v := new(T)
			if p := d.Take(size); p != nil {
				copy(podBytes(v, size), p)
			}
			return v
		})
	Register[[]T](name+"[]",
		func(e *Enc, v []T) { encPODSlice(e, v, size) },
		func(d *Dec) []T { return decPODSlice[T](d, size) })
	Register[*[]T](name+"[]*",
		func(e *Enc, v *[]T) {
			if v == nil {
				e.U8(0)
				return
			}
			e.U8(1)
			encPODSlice(e, *v, size)
		},
		func(d *Dec) *[]T {
			if d.U8() == 0 {
				return nil
			}
			s := decPODSlice[T](d, size)
			return &s
		})
}

// EncPODSlice / DecPODSlice encode a slice of a pointer-free fixed-size
// element type as a count plus raw bytes — the building blocks composite
// codecs (e.g. coll's ranked-block and Bruck batch types) are written
// from. DecPODSlice enforces the same count-vs-remaining-bytes guard as
// every registered slice codec.
func EncPODSlice[T any](e *Enc, v []T) {
	e.checkPOD(reflect.TypeFor[T]())
	encPODSlice(e, v, int(unsafe.Sizeof(*new(T))))
}

func DecPODSlice[T any](d *Dec) []T {
	return decPODSlice[T](d, int(unsafe.Sizeof(*new(T))))
}

func (e *Enc) checkPOD(rt reflect.Type) {
	if rt.Size() == 0 || hasPointers(rt) {
		panic(fmt.Sprintf("wire: %v is not a pointer-free fixed-size type", rt))
	}
}

func encPODSlice[T any](e *Enc, v []T, size int) {
	e.U64(uint64(len(v)))
	if len(v) > 0 {
		e.Raw(unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), size*len(v)))
	}
}

func decPODSlice[T any](d *Dec, size int) []T {
	n := d.Len(size)
	if d.err != nil || n == 0 {
		return nil
	}
	s := make([]T, n)
	copy(unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), size*n), d.Take(size*n))
	return s
}

func podBytes[T any](v *T, size int) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(v)), size)
}

func hasPointers(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return false
	case reflect.Array:
		return hasPointers(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if hasPointers(t.Field(i).Type) {
				return true
			}
		}
		return false
	default:
		return true
	}
}

// appendPayload appends the typed payload (type id, then the codec's
// bytes). A nil payload is id 0. Unregistered types are an error naming
// the type, so a new algorithm payload fails fast with a fix-it message.
func appendPayload(b []byte, v any) ([]byte, error) {
	e := Enc{b: b}
	if v == nil {
		e.U64(0)
		return e.b, nil
	}
	ce := lookupType(reflect.TypeOf(v))
	if ce == nil {
		return b, fmt.Errorf("wire: payload type %T not registered (add a wire.RegisterPOD/Register call, see internal/wire/wireprogs)", v)
	}
	e.U64(ce.id)
	ce.enc(&e, v)
	return e.b, nil
}

// decodePayload consumes a typed payload.
func decodePayload(d *Dec) (any, error) {
	id := d.U64()
	if d.err != nil {
		return nil, d.err
	}
	if id == 0 {
		return nil, nil
	}
	ce := lookupID(id)
	if ce == nil {
		return nil, fmt.Errorf("wire: unknown payload type id %#x (codec not registered in this process)", id)
	}
	v := ce.dec(d)
	if d.err != nil {
		return nil, d.err
	}
	return v, nil
}
