package wire

import (
	"bufio"
	"net"
	"sync"
)

// link is one framed connection endpoint with an unbounded outbound
// queue drained by a dedicated writer goroutine. Senders never block on
// the socket: a PE goroutine (or the leader's relay path) enqueues the
// frame and moves on. The unbounded queue is what makes the leader's hub
// relay deadlock-free — a reader that forwarded frames synchronously
// into a full peer socket while that peer's frames sat unread would
// complete the classic relay cycle.
type link struct {
	conn net.Conn
	bw   *bufio.Writer

	mu     sync.Mutex
	cond   *sync.Cond
	q      [][]byte
	closed bool // no further sends accepted; writer drains then closes conn
	dead   bool // write error: queue is discarded
	done   chan struct{}
}

func newLink(conn net.Conn) *link {
	l := &link{conn: conn, bw: bufio.NewWriter(conn), done: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)
	go l.writer()
	return l
}

// send enqueues one frame body. Never blocks; silently drops on a closed
// or dead link (the cluster is already unwinding then).
func (l *link) send(body []byte) {
	l.mu.Lock()
	if l.closed || l.dead {
		l.mu.Unlock()
		return
	}
	l.q = append(l.q, body)
	l.cond.Signal()
	l.mu.Unlock()
}

// close stops accepting sends, lets the writer flush what is queued, and
// closes the connection. Idempotent. Does not wait; use wait for that.
func (l *link) close() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		l.cond.Signal()
	}
	l.mu.Unlock()
}

// abort drops the queue and closes the connection immediately.
func (l *link) abort() {
	l.mu.Lock()
	l.dead, l.closed = true, true
	l.q = nil
	l.cond.Signal()
	l.mu.Unlock()
	l.conn.Close()
}

// wait blocks until the writer goroutine has exited (queue flushed or
// connection dead).
func (l *link) wait() { <-l.done }

func (l *link) writer() {
	defer close(l.done)
	for {
		l.mu.Lock()
		for len(l.q) == 0 && !l.closed && !l.dead {
			l.cond.Wait()
		}
		if l.dead || (l.closed && len(l.q) == 0) {
			dead := l.dead
			l.mu.Unlock()
			if !dead {
				l.bw.Flush()
			}
			l.conn.Close()
			return
		}
		batch := l.q
		l.q = nil
		l.mu.Unlock()
		for _, body := range batch {
			if err := writeFrame(l.bw, body); err != nil {
				l.fail()
				return
			}
		}
		// Flush once per drained batch: frames coalesce under load, and an
		// idle queue means the peer has everything.
		if err := l.bw.Flush(); err != nil {
			l.fail()
			return
		}
	}
}

func (l *link) fail() {
	l.mu.Lock()
	l.dead, l.closed = true, true
	l.q = nil
	l.mu.Unlock()
	l.conn.Close()
}
