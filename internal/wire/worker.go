package wire

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"strconv"
	"sync/atomic"

	"commtopk/internal/comm"
	"commtopk/internal/mailbox"
)

// Worker process side. A worker is launched by Spawn with the rendezvous
// address and its group index in the environment; it dials the leader,
// completes the handshake, builds a BackendWire machine over its rank
// window, and then serves start frames until shutdown. Every frame it
// sends goes to the leader, which delivers or relays (hub topology).

// Environment keys Spawn sets for worker processes.
const (
	envNet   = "COMMTOPK_WIRE_NET"
	envAddr  = "COMMTOPK_WIRE_ADDR"
	envIndex = "COMMTOPK_WIRE_INDEX"
)

// MaybeWorker turns the current process into a wire worker if the
// rendezvous environment is present, and never returns in that case
// (os.Exit with the worker's status). Call it first thing in main — or
// TestMain — of any binary used as Config.WorkerCommand; the default
// re-exec-self launch mode depends on it.
func MaybeWorker() {
	addr := os.Getenv(envAddr)
	if addr == "" {
		return
	}
	idx, err := strconv.Atoi(os.Getenv(envIndex))
	if err != nil {
		fmt.Fprintf(os.Stderr, "wire worker: bad %s: %v\n", envIndex, err)
		os.Exit(2)
	}
	os.Exit(WorkerMain(os.Getenv(envNet), addr, idx))
}

// WorkerMain runs the worker loop against the leader at (network, addr)
// as group index and returns the process exit code: 0 after a clean
// shutdown frame, nonzero on transport or protocol failure.
func WorkerMain(network, addr string, index int) int {
	if network == "" {
		network = "unix"
	}
	conn, err := net.Dial(network, addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wire worker %d: dial %s %s: %v\n", index, network, addr, err)
		return 2
	}
	defer conn.Close()
	if err := writeFrame(conn, appendHello(nil, index)); err != nil {
		fmt.Fprintf(os.Stderr, "wire worker %d: hello: %v\n", index, err)
		return 2
	}
	br := bufio.NewReader(conn)
	body, err := readFrame(br)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wire worker %d: welcome: %v\n", index, err)
		return 2
	}
	w, err := decodeWelcome(body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wire worker %d: %v\n", index, err)
		return 2
	}
	l := newLink(conn)
	m := comm.NewMachine(comm.Config{
		P: w.P, Alpha: w.Alpha, Beta: w.Beta, Seed: w.Seed,
		Backend: comm.BackendWire, Workers: w.Workers, PopBatch: w.PopBatch,
		GlobalReadyQueue: w.Global,
		Remote: &comm.Remote{Lo: w.Lo, Hi: w.Hi, Forward: func(dst int, msg mailbox.Msg) {
			b, err := appendEnvelope(nil, w.P, dst, msg)
			if err != nil {
				panic(err) // unregistered payload: aborts the run with the type name
			}
			l.send(b)
		}},
	})
	defer m.Close()
	l.send([]byte{kReady})

	var (
		curRun    atomic.Uint64 // run in progress (0: idle)
		lastAbort atomic.Uint64 // highest aborted run id seen
		startCh   = make(chan startMsg, 1)
		shutCh    = make(chan struct{})
		downCh    = make(chan error, 1)
	)
	go func() { // reader: deliveries and control, concurrent with m.Run
		for {
			body, err := readFrame(br)
			if err != nil {
				select {
				case <-shutCh:
					return // clean: leader closed after shutdown
				default:
				}
				err = fmt.Errorf("wire worker %d: leader connection lost: %w", index, err)
				m.AbortExternal(err)
				downCh <- err
				return
			}
			switch body[0] {
			case kData:
				dst, msg, err := decodeEnvelope(body, w.P)
				if err == nil && (dst < w.Lo || dst >= w.Hi) {
					err = fmt.Errorf("misrouted frame for rank %d (window [%d, %d))", dst, w.Lo, w.Hi)
				}
				if err != nil {
					err = fmt.Errorf("wire worker %d: %w", index, err)
					m.AbortExternal(err)
					downCh <- err
					return
				}
				m.Deliver(dst, msg)
			case kStart:
				s, err := decodeStart(body)
				if err != nil {
					m.AbortExternal(err)
					downCh <- err
					return
				}
				startCh <- s
			case kAbort:
				runID, msg, err := decodeAbort(body)
				if err == nil && runID != 0 {
					lastAbort.Store(runID)
					if curRun.Load() == runID {
						m.AbortExternal(fmt.Errorf("wire: aborted by leader: %s", msg))
					}
				}
			case kShutdown:
				close(shutCh)
				return
			default:
				err := fmt.Errorf("wire worker %d: unexpected frame kind %d", index, body[0])
				m.AbortExternal(err)
				downCh <- err
				return
			}
		}
	}()

	for {
		select {
		case s := <-startCh:
			dm := doneMsg{RunID: s.RunID}
			pr := lookupProg(s.Prog)
			switch {
			case pr == nil:
				dm.Err = fmt.Sprintf("program %q not registered in worker (import its registration package)", s.Prog)
			default:
				curRun.Store(s.RunID)
				// An abort that raced in before curRun was visible must not
				// be lost: apply it now, poisoning the run so it unwinds.
				if lastAbort.Load() == s.RunID {
					m.AbortExternal(fmt.Errorf("wire: aborted by leader"))
				}
				m.ResetStats()
				results := make([]uint64, w.Hi-w.Lo)
				err := m.Run(func(pe *comm.PE) {
					results[pe.Rank()-w.Lo] = pr(pe, s.Args)
				})
				curRun.Store(0)
				dm.Stats = m.Stats()
				dm.Results = results
				if err != nil {
					dm.Err = err.Error()
				}
			}
			l.send(appendDone(nil, dm))
		case <-shutCh:
			l.close()
			l.wait()
			return 0
		case err := <-downCh:
			fmt.Fprintln(os.Stderr, err)
			l.abort()
			return 2
		}
	}
}
