package wire_test

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"commtopk/internal/comm"
	"commtopk/internal/wire"
	_ "commtopk/internal/wire/wireprogs"
)

// TestMain makes the test binary usable as its own worker executable: a
// re-exec'd child sees the rendezvous environment and never reaches
// m.Run(). Every registration in this package's (and wireprogs') init
// runs before MaybeWorker, so leader and workers agree on programs.
func TestMain(m *testing.M) {
	wire.MaybeWorker()
	os.Exit(m.Run())
}

// crashVictim: the PE named by args[0] kills its whole process mid-run
// while everyone else blocks on a message that will never arrive — the
// worker-death scenario the teardown path must unwind without hanging.
func init() {
	wire.RegisterProg("test.crash", func(pe *comm.PE, args []uint64) uint64 {
		if pe.Rank() == int(args[0]) {
			os.Exit(3)
		}
		pe.Recv(int(args[0]), 1)
		return 0
	})
}

// progArgs returns the differential battery: every registered program
// with arguments sized for test time at machine size p.
func progArgs(p int) map[string][]uint64 {
	return map[string][]uint64{
		"collectives": {42, uint64(8 + p%5)},
		"kth":         {7, 96, uint64(int64(p) * 96 / 3)},
		"deletemin":   {11, 64, uint64(4 * p), 3},
		"mtopk":       {13, 48, 3, 6},
		"freq":        {17, 256, 48, 8},
	}
}

func sameStats(a, b comm.Stats) bool {
	return a.TotalWords == b.TotalWords && a.MaxSentWords == b.MaxSentWords &&
		a.MaxRecvWords == b.MaxRecvWords && a.TotalSends == b.TotalSends &&
		a.MaxSends == b.MaxSends &&
		math.Float64bits(a.MaxClock) == math.Float64bits(b.MaxClock)
}

// TestWireDifferential pins the wire backend bit-identical — results AND
// meters — to a single-process mailbox run of the same programs, across
// process splits of the PE range.
func TestWireDifferential(t *testing.T) {
	for _, tc := range []struct{ p, procs int }{
		{4, 2}, {4, 4}, {16, 2}, {16, 3}, {64, 4},
	} {
		t.Run(fmt.Sprintf("p%d_procs%d", tc.p, tc.procs), func(t *testing.T) {
			if testing.Short() && tc.p > 16 {
				t.Skip("short mode")
			}
			cfg := wire.Config{P: tc.p, Procs: tc.procs, Seed: 5, ShutdownTimeout: 20 * time.Second}
			c, err := wire.Spawn(cfg)
			if err != nil {
				t.Fatalf("Spawn: %v", err)
			}
			defer c.Close()
			for prog, args := range progArgs(tc.p) {
				wres, wst, err := c.Run(prog, args)
				if err != nil {
					t.Fatalf("%s: wire run: %v", prog, err)
				}
				lres, lst, err := wire.RunLocal(cfg, prog, args)
				if err != nil {
					t.Fatalf("%s: local run: %v", prog, err)
				}
				for r := range lres {
					if wres[r] != lres[r] {
						t.Errorf("%s: rank %d result %#x (wire) != %#x (mailbox)", prog, r, wres[r], lres[r])
					}
				}
				if !sameStats(wst, lst) {
					t.Errorf("%s: stats diverge:\n  wire:    %+v\n  mailbox: %+v", prog, wst, lst)
				}
			}
		})
	}
}

// TestWireTCP runs one differential case over the TCP dialer seam.
func TestWireTCP(t *testing.T) {
	cfg := wire.Config{P: 8, Procs: 2, Network: "tcp", Seed: 3}
	c, err := wire.Spawn(cfg)
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	defer c.Close()
	args := []uint64{21, 6}
	wres, wst, err := c.Run("collectives", args)
	if err != nil {
		t.Fatalf("wire run: %v", err)
	}
	lres, lst, err := wire.RunLocal(cfg, "collectives", args)
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	for r := range lres {
		if wres[r] != lres[r] {
			t.Fatalf("rank %d: %#x != %#x", r, wres[r], lres[r])
		}
	}
	if !sameStats(wst, lst) {
		t.Fatalf("stats diverge: %+v vs %+v", wst, lst)
	}
}

// TestWireRepeatedRuns reuses one cluster for several runs, checking the
// per-run stat reset and tag-protocol state stay coherent across runs.
func TestWireRepeatedRuns(t *testing.T) {
	cfg := wire.Config{P: 8, Procs: 2, Seed: 9}
	c, err := wire.Spawn(cfg)
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	defer c.Close()
	m := comm.NewMachine(comm.Config{P: 8, Alpha: 1000, Beta: 1, Seed: 9, Backend: comm.BackendMailbox})
	defer m.Close()
	args := []uint64{13, 7}
	var prev []uint64
	for round := 0; round < 3; round++ {
		res, st, err := c.Run("collectives", args)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if prev != nil {
			for r := range res {
				if res[r] != prev[r] {
					t.Fatalf("round %d: rank %d drifted: %#x != %#x", round, r, res[r], prev[r])
				}
			}
		}
		prev = res
		if st.TotalWords == 0 || st.MaxClock == 0 {
			t.Fatalf("round %d: empty stats %+v", round, st)
		}
	}
}

// TestWireUnknownProgram: a run of an unregistered program fails cleanly
// and the cluster stays usable.
func TestWireUnknownProgram(t *testing.T) {
	c, err := wire.Spawn(wire.Config{P: 4, Procs: 2})
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	defer c.Close()
	if _, _, err := c.Run("no.such.program", nil); err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("got %v, want not-registered error", err)
	}
	if _, _, err := c.Run("collectives", []uint64{1, 4}); err != nil {
		t.Fatalf("cluster unusable after bad program name: %v", err)
	}
}

// TestWorkerCrashTeardown kills a worker process mid-run: the leader's
// Run must return an error (not hang), Close must reap the dead process,
// and no goroutines may leak.
func TestWorkerCrashTeardown(t *testing.T) {
	before := runtime.NumGoroutine()
	c, err := wire.Spawn(wire.Config{P: 8, Procs: 2, ShutdownTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	type runOut struct {
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		_, _, err := c.Run("test.crash", []uint64{6}) // rank 6 lives in worker 1
		done <- runOut{err}
	}()
	select {
	case out := <-done:
		if out.err == nil {
			t.Error("Run succeeded despite worker death")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run hung after worker death")
	}
	// The dead cluster refuses further runs with the recorded cause.
	if _, _, err := c.Run("collectives", []uint64{1, 4}); err == nil || !strings.Contains(err.Error(), "dead") {
		t.Errorf("post-crash Run: got %v, want dead-cluster error", err)
	}
	closed := make(chan error, 1)
	go func() { closed <- c.Close() }()
	select {
	case <-closed: // force teardown: exit status of the killed worker is not an error
	case <-time.After(30 * time.Second):
		t.Fatal("Close hung after worker death")
	}
	// All transport goroutines (readers, link writers) must be gone.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+1 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after:\n%s", before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestClusterCloseIdempotent: Close twice, and Close without any run.
func TestClusterCloseIdempotent(t *testing.T) {
	c, err := wire.Spawn(wire.Config{P: 4, Procs: 2})
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, _, err := c.Run("collectives", []uint64{1, 4}); err == nil {
		t.Fatal("Run on closed cluster succeeded")
	}
}

// TestSingleProcCluster: Procs=1 degenerates to a plain in-process
// machine behind the same API.
func TestSingleProcCluster(t *testing.T) {
	cfg := wire.Config{P: 4, Procs: 1, Seed: 2}
	c, err := wire.Spawn(cfg)
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	defer c.Close()
	wres, wst, err := c.Run("kth", []uint64{3, 32, 40})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	lres, lst, err := wire.RunLocal(cfg, "kth", []uint64{3, 32, 40})
	if err != nil {
		t.Fatalf("local: %v", err)
	}
	if wres[0] != lres[0] || !sameStats(wst, lst) {
		t.Fatalf("degenerate cluster diverges: %v %+v vs %v %+v", wres, wst, lres, lst)
	}
}
