package wire

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"commtopk/internal/mailbox"
)

// Test-local registered payload shapes (names disjoint from the real
// registration package so both can live in one test binary).
type tPoint struct {
	X, Y int32
}

func init() {
	RegisterPOD[uint16]("test.u16")
	RegisterPOD[tPoint]("test.point")
	Register[string]("test.str",
		func(e *Enc, s string) { e.Str(s) },
		func(d *Dec) string { return d.Str() })
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bodies := [][]byte{{1}, []byte("hello frames"), bytes.Repeat([]byte{0xab}, 200_000)}
	for _, b := range bodies {
		if err := writeFrame(&buf, b); err != nil {
			t.Fatalf("writeFrame(%d bytes): %v", len(b), err)
		}
	}
	for i, want := range bodies {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame #%d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame #%d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
}

func TestReadFrameHostileLength(t *testing.T) {
	// A header declaring more than MaxFrame is rejected before allocation.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("oversized length accepted")
	}
	// A large declared length with a short stream fails as truncated
	// without allocating the declared size (allocation grows with arrival).
	buf.Reset()
	buf.Write([]byte{0x00, 0x00, 0x00, 0x08}) // 128 MiB declared
	buf.Write(make([]byte, 1000))
	if _, err := readFrame(&buf); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("got %v, want truncated-frame error", err)
	}
	// Zero length is invalid (every body has a kind byte).
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 0})
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("zero-length frame accepted")
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	const p = 16
	payloads := []any{
		nil,
		uint16(0xbeef),
		[]uint16{1, 2, 3},
		&[]uint16{9, 8},
		tPoint{X: -3, Y: 7},
		[]tPoint{{1, 2}, {3, 4}},
		"a string payload",
	}
	for i, data := range payloads {
		in := mailbox.Msg{Src: 3, Ctx: 2, Tag: 77, Words: int64(i), Depart: 1234.5 + float64(i), Data: data}
		body, err := appendEnvelope(nil, p, 11, in)
		if err != nil {
			t.Fatalf("payload #%d (%T): %v", i, data, err)
		}
		if dst, ok := envelopeDst(body); !ok || dst != 11 {
			t.Fatalf("payload #%d: envelopeDst = %d, %v", i, dst, ok)
		}
		dst, out, err := decodeEnvelope(body, p)
		if err != nil {
			t.Fatalf("payload #%d decode: %v", i, err)
		}
		if dst != 11 || out.Src != in.Src || out.Ctx != in.Ctx || out.Tag != in.Tag ||
			out.Words != in.Words || math.Float64bits(out.Depart) != math.Float64bits(in.Depart) {
			t.Fatalf("payload #%d: header mismatch %+v", i, out)
		}
		switch want := data.(type) {
		case nil:
			if out.Data != nil {
				t.Fatalf("nil payload decoded to %v", out.Data)
			}
		case []uint16:
			if got := out.Data.([]uint16); !bytes.Equal(u16bytes(got), u16bytes(want)) {
				t.Fatalf("got %v want %v", got, want)
			}
		case *[]uint16:
			if got := out.Data.(*[]uint16); !bytes.Equal(u16bytes(*got), u16bytes(*want)) {
				t.Fatalf("got %v want %v", *got, *want)
			}
		default:
			// Comparable payloads.
			if gotS, ok := out.Data.([]tPoint); ok {
				wantS := data.([]tPoint)
				for j := range wantS {
					if gotS[j] != wantS[j] {
						t.Fatalf("got %v want %v", gotS, wantS)
					}
				}
			} else if out.Data != data {
				t.Fatalf("payload #%d: got %v want %v", i, out.Data, data)
			}
		}
	}
}

func u16bytes(s []uint16) []byte {
	b := make([]byte, 0, 2*len(s))
	for _, v := range s {
		b = append(b, byte(v), byte(v>>8))
	}
	return b
}

func TestEnvelopeRejectsBadInput(t *testing.T) {
	const p = 8
	good, err := appendEnvelope(nil, p, 5, mailbox.Msg{Src: 1, Tag: 9, Words: 3, Data: []uint16{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"wrong kind":     {kHello},
		"short header":   good[:10],
		"truncated":      good[:len(good)-1],
		"trailing bytes": append(append([]byte{}, good...), 0),
	}
	for name, body := range cases {
		if _, _, err := decodeEnvelope(body, p); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Rank out of range for this machine size.
	if _, _, err := decodeEnvelope(good, 4); err == nil {
		t.Error("dst beyond p accepted")
	}
	// Unknown payload type id.
	bad := append([]byte{}, good...)
	for i := envHeaderLen; i < envHeaderLen+8; i++ {
		bad[i] = 0xee
	}
	if _, _, err := decodeEnvelope(bad, p); err == nil || !strings.Contains(err.Error(), "unknown payload type") {
		t.Errorf("unknown type id: got %v", err)
	}
	// Element count exceeding the remaining bytes must error, not allocate.
	var e Enc
	e.U8(kData)
	e.U32(1)
	e.U32(5)
	e.U32(0)
	e.U64(9)
	e.U64(3)
	e.F64(0)
	e.U64(TypeID("test.u16[]"))
	e.U64(1 << 40) // declared element count
	if _, _, err := decodeEnvelope(e.Bytes(), p); err == nil || !strings.Contains(err.Error(), "element count") {
		t.Errorf("oversized element count: got %v", err)
	}
}

func TestUnregisteredPayloadErrors(t *testing.T) {
	type private struct{ a int }
	_, err := appendEnvelope(nil, 4, 1, mailbox.Msg{Src: 0, Data: private{1}})
	if err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("got %v, want not-registered error", err)
	}
}

func TestControlFrameRoundTrips(t *testing.T) {
	if idx, err := decodeHello(appendHello(nil, 3)); err != nil || idx != 3 {
		t.Fatalf("hello: %d, %v", idx, err)
	}
	w := welcome{P: 64, Procs: 4, Lo: 16, Hi: 32, Alpha: 1000, Beta: 1, Seed: 42, Workers: 2, PopBatch: 4, Global: true}
	got, err := decodeWelcome(appendWelcome(nil, w))
	if err != nil || got != w {
		t.Fatalf("welcome: %+v, %v", got, err)
	}
	s := startMsg{RunID: 7, Prog: "collectives", Args: []uint64{1, 2, 3}}
	gs, err := decodeStart(appendStart(nil, s))
	if err != nil || gs.RunID != 7 || gs.Prog != s.Prog || len(gs.Args) != 3 || gs.Args[2] != 3 {
		t.Fatalf("start: %+v, %v", gs, err)
	}
	d := doneMsg{RunID: 9, Results: []uint64{5, 6}, Err: "boom"}
	d.Stats.TotalWords, d.Stats.MaxClock = 123, 4.5
	gd, err := decodeDone(appendDone(nil, d))
	if err != nil || gd.RunID != 9 || gd.Stats.TotalWords != 123 || gd.Stats.MaxClock != 4.5 ||
		len(gd.Results) != 2 || gd.Results[1] != 6 || gd.Err != "boom" {
		t.Fatalf("done: %+v, %v", gd, err)
	}
	id, msg, err := decodeAbort(appendAbort(nil, 11, "why"))
	if err != nil || id != 11 || msg != "why" {
		t.Fatalf("abort: %d %q %v", id, msg, err)
	}
}

func TestTypeIDStability(t *testing.T) {
	// The on-wire identity is the FNV-64a of the name — pin a few values
	// so an accidental hash change cannot silently break cross-binary
	// compatibility.
	if got := TypeID("u64"); got != 0x4d35d3193e8d66f2 {
		t.Errorf("TypeID(u64) = %#x", got)
	}
	if TypeID("a") == TypeID("b") {
		t.Error("distinct names share an id")
	}
}

// FuzzEnvelope: malformed bytes through every decode path must return an
// error or a valid value — never panic, never allocate beyond the input
// size plus one read chunk.
func FuzzEnvelope(f *testing.F) {
	seed, _ := appendEnvelope(nil, 16, 11, mailbox.Msg{Src: 3, Ctx: 1, Tag: 5, Words: 3, Depart: 7.5, Data: []uint16{1, 2, 3}})
	f.Add(seed)
	f.Add(appendHello(nil, 2))
	f.Add(appendWelcome(nil, welcome{P: 8, Procs: 2, Lo: 4, Hi: 8}))
	f.Add(appendStart(nil, startMsg{RunID: 1, Prog: "kth", Args: []uint64{9}}))
	f.Add(appendDone(nil, doneMsg{RunID: 1, Results: []uint64{4}}))
	f.Add(appendAbort(nil, 1, "x"))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) > 0 {
			decodeEnvelope(body, 16)
			envelopeDst(body)
			decodeHello(body)
			decodeWelcome(body)
			decodeStart(body)
			decodeDone(body)
			decodeAbort(body)
		}
		// The same bytes as a raw stream: framing must fail cleanly on
		// truncation and hostile length headers alike.
		r := bytes.NewReader(body)
		for {
			if _, err := readFrame(r); err != nil {
				if r.Len() != 0 {
					io.Copy(io.Discard, r)
				}
				break
			}
		}
	})
}
