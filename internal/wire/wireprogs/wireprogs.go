// Package wireprogs is the shared registration unit for wire clusters:
// every binary that participates in a cluster — the leader and every
// Config.WorkerCommand binary — imports this package so that all
// processes agree on the registered program names and payload codecs.
// (Type identity on the wire is the FNV hash of the registration name,
// so agreement on names is agreement on the protocol; see wire/codec.go.)
//
// The registered programs double as the differential battery: each runs a
// representative algorithm slice — the collective suite, sel.Kth,
// bpq.DeleteMin — and folds its observations into one result word per PE,
// so a wire run and its in-process mailbox twin can be compared
// bit-for-bit on both results and meters.
package wireprogs

import (
	"math"

	"commtopk/internal/bpq"
	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/freq"
	"commtopk/internal/mtopk"
	"commtopk/internal/sel"
	"commtopk/internal/wire"
	"commtopk/internal/xrand"
)

func init() {
	bpq.RegisterWireCodecs[uint64]("u64")
	bpq.RegisterWireCodecs[int64]("i64")
	mtopk.RegisterWireCodecs()
	freq.RegisterWireCodecs()
	wire.RegisterPOD[int]("int")
	wire.RegisterPOD[[2]int64]("i64x2")

	wire.RegisterProg("collectives", progCollectives)
	wire.RegisterProg("kth", progKth)
	wire.RegisterProg("deletemin", progDeleteMin)
	wire.RegisterProg("mtopk", progMtopk)
	wire.RegisterProg("freq", progFreq)
}

// mix folds a word into a running FNV-1a-style checksum; the programs
// fold every observed value through it so any divergence — a wrong
// element, a wrong order, a wrong count — lands in the result word.
func mix(h, v uint64) uint64 {
	h ^= v
	h *= 0x100000001b3
	return h
}

func mixSlice(h uint64, s []uint64) uint64 {
	h = mix(h, uint64(len(s)))
	for _, v := range s {
		h = mix(h, v)
	}
	return h
}

// progCollectives runs the collective battery over pseudo-random local
// blocks: broadcasts, reductions, scans, gather/scatter, all-to-all, the
// chunked Bruck all-gather and the bitonic merge — together these cover
// every payload shape the coll package puts on the wire.
// args: [seed, n] with n the per-PE block length.
func progCollectives(pe *comm.PE, args []uint64) uint64 {
	seed, n := int64(args[0]), int(args[1])
	rank, p := pe.Rank(), pe.P()
	rng := xrand.NewPE(seed, rank)
	local := make([]uint64, n)
	for i := range local {
		local[i] = rng.Uint64()
	}
	h := uint64(14695981039346656037)

	h = mixSlice(h, coll.Broadcast(pe, 0, local))
	h = mix(h, coll.BroadcastScalar(pe, p-1, local[0]))
	h = mix(h, uint64(coll.SumAll(pe, int64(local[0]%1024))))
	h = mix(h, uint64(coll.ExScanSum(pe, int64(rank+1))))
	h = mix(h, coll.AllReduceScalar(pe, local[0], func(a, b uint64) uint64 { return min(a, b) }))

	parts := make([][]uint64, p)
	for d := range parts {
		parts[d] = local[:min(1+(rank+d)%4, n)]
	}
	for src, part := range coll.AllToAll(pe, parts) {
		h = mix(h, uint64(src))
		h = mixSlice(h, part)
	}

	gathered := coll.Gatherv(pe, 0, local[:1+rank%3])
	if rank == 0 {
		for _, part := range gathered {
			h = mixSlice(h, part)
		}
		h = mixSlice(h, coll.Scatterv(pe, 0, gathered))
	} else {
		h = mixSlice(h, coll.Scatterv[uint64](pe, 0, nil))
	}

	coll.AllGatherChunked(pe, local[:1+rank%2], 2, func(src int, block []uint64) {
		h = mix(h, uint64(src))
		h = mixSlice(h, block)
	})

	if p > 1 {
		// Two globally ascending, globally unique sequences.
		posA, posB := coll.BitonicMergePositions(pe, uint64(2*rank), uint64(2*rank+1))
		h = mix(h, uint64(posA)<<32|uint64(posB))
	}
	return h
}

// progKth selects the k-th smallest of p·n pseudo-random keys.
// args: [seed, n, k]; every PE returns the same selected value.
func progKth(pe *comm.PE, args []uint64) uint64 {
	seed, n, k := int64(args[0]), int(args[1]), int64(args[2])
	rng := xrand.NewPE(seed, pe.Rank())
	local := make([]uint64, n)
	for i := range local {
		local[i] = rng.Uint64()
	}
	return sel.Kth(pe, local, k, xrand.NewPE(seed+1, pe.Rank()))
}

// progDeleteMin drives the bulk priority queue: insert n unique keys per
// PE, then alternate DeleteMin batches with refill insertions, folding
// every deleted batch and the surviving queue length into the checksum.
// args: [seed, n, k, rounds].
func progDeleteMin(pe *comm.PE, args []uint64) uint64 {
	seed, n, k, rounds := int64(args[0]), int(args[1]), int64(args[2]), int(args[3])
	rank, p := pe.Rank(), pe.P()
	rng := xrand.NewPE(seed, rank)
	q := bpq.New[uint64](pe, seed)
	var seq uint32
	fresh := func(m int) []uint64 {
		ks := make([]uint64, m)
		for i := range ks {
			ks[i] = bpq.MakeUnique(uint32(rng.Uint64()>>40), seq, rank, p)
			seq++
		}
		return ks
	}
	q.InsertBulk(fresh(n))
	h := uint64(14695981039346656037)
	for r := 0; r < rounds; r++ {
		h = mixSlice(h, q.DeleteMin(k))
		if r%2 == 0 {
			q.InsertBulk(fresh(int(k) / 2))
		}
	}
	if v, ok := q.PeekMin(); ok {
		h = mix(h, v)
	}
	h = mix(h, uint64(q.GlobalLen()))
	return h
}

// progMtopk runs the multicriteria layer over pseudo-random score lists:
// the distributed threshold algorithm (threshold, scan depths, local
// candidate hits) followed by the exact refinement, folding every field
// of both results into the checksum. IDs are globally unique by
// rank-disjoint offsets. args: [seed, n, m, k] with n objects and m
// criteria per PE.
func progMtopk(pe *comm.PE, args []uint64) uint64 {
	seed, n, m, k := int64(args[0]), int(args[1]), int(args[2]), int(args[3])
	rank := pe.Rank()
	objs := mtopk.GenObjects(xrand.NewPE(seed, rank), n, m, 1+uint64(rank)*uint64(n))
	d := mtopk.NewData(objs, m)
	h := uint64(14695981039346656037)

	res := mtopk.DTA(pe, d, mtopk.SumScore, k, xrand.NewPE(seed+1, rank))
	h = mix(h, math.Float64bits(res.Threshold))
	h = mix(h, uint64(res.K))
	h = mix(h, uint64(res.Rounds))
	for _, pl := range res.PrefixLens {
		h = mix(h, uint64(pl))
	}
	for _, hit := range res.Hits {
		h = mix(h, hit.ID)
		h = mix(h, math.Float64bits(hit.Score))
	}
	for _, hit := range mtopk.RDTA(pe, d, mtopk.SumScore, k, xrand.NewPE(seed+2, rank)) {
		h = mix(h, hit.ID)
		h = mix(h, math.Float64bits(hit.Score))
	}
	return h
}

// progFreq runs the heavy-hitter layer over skewed pseudo-random
// streams (small keys dominate, so the top-k counts are nontrivial):
// the sampling-based PAC estimate followed by the exact-counting
// refinement, folding item lists, sample sizes and the realized
// sampling probability into the checksum. args: [seed, n, universe, k].
func progFreq(pe *comm.PE, args []uint64) uint64 {
	seed, n, uni, k := int64(args[0]), int(args[1]), args[2], int(args[3])
	rank := pe.Rank()
	rng := xrand.NewPE(seed, rank)
	local := make([]uint64, n)
	for i := range local {
		u := rng.Uint64() % uni
		local[i] = rng.Uint64() % (u + 1)
	}
	pr := freq.Params{K: k, Eps: 0.05, Delta: 0.01}
	h := uint64(14695981039346656037)

	res := freq.PAC(pe, local, pr, xrand.NewPE(seed+1, rank))
	h = mix(h, uint64(res.SampleSize))
	h = mix(h, math.Float64bits(res.Rho))
	for _, kv := range res.Items {
		h = mix(h, kv.Key)
		h = mix(h, uint64(kv.Count))
	}
	res = freq.EC(pe, local, pr, xrand.NewPE(seed+2, rank))
	h = mix(h, uint64(res.SampleSize))
	h = mix(h, uint64(res.KStar))
	for _, kv := range res.Items {
		h = mix(h, kv.Key)
		h = mix(h, uint64(kv.Count))
	}
	return h
}
