// Package stats contains the sample-size calculators and error metrics of
// Sections 7 and 8 of the paper: the Chernoff-derived PAC sampling
// probability (Equation 3), the exact-counting sample size (Lemma 10), the
// communication-optimal k* (Theorem 11), the PEC threshold (Lemma 12), the
// Zipf closed form (Theorem 14), the Hoeffding-based sum-aggregation sample
// size (Theorem 15), and the relative error ε̃ used to score results.
package stats

import (
	"math"
	"sort"
)

// PACSampleSize returns the expected sample size ρn for the basic PAC
// algorithm (Equation 3):
//
//	ρn ≥ (4/ε²)·max((3/k)·ln(2n/δ), 2·ln(2k/δ))
func PACSampleSize(n int64, k int, eps, delta float64) float64 {
	a := 3.0 / float64(k) * math.Log(2*float64(n)/delta)
	b := 2 * math.Log(2*float64(k)/delta)
	return 4 / (eps * eps) * math.Max(a, b)
}

// ECSampleSize returns the expected sample size for algorithm EC when the
// kStar most frequently sampled objects are counted exactly (Lemma 10):
//
//	ρn = (2/(ε²·k*))·ln(n/δ)
func ECSampleSize(n int64, kStar int, eps, delta float64) float64 {
	return 2 / (eps * eps * float64(kStar)) * math.Log(float64(n)/delta)
}

// OptimalKStar returns the k* that minimizes total communication volume for
// algorithm EC (Theorem 11): k* = max(k, (1/ε)·sqrt(2·log p / p · ln(n/δ))).
func OptimalKStar(n int64, k int, p int, eps, delta float64) int {
	if p < 2 {
		// log p = 0 would make the volume-optimal k* collapse; a single PE
		// pays no communication, so exact counting beyond k is pointless.
		return k
	}
	v := 1 / eps * math.Sqrt(2*math.Log2(float64(p))/float64(p)*math.Log(float64(n)/delta))
	ks := int(math.Ceil(v))
	if ks < k {
		ks = k
	}
	return ks
}

// PECThreshold returns the sample-count threshold of Lemma 12: k* must be
// chosen so that the k*-th largest sample count is at most
//
//	E[ŝ_k] − sqrt(2·E[ŝ_k]·ln(k/δ))
//
// where E[ŝ_k] = ρ0·x_k is estimated from the first sample.
func PECThreshold(expectedSk float64, k int, delta float64) float64 {
	if expectedSk <= 0 {
		return 0
	}
	return expectedSk - math.Sqrt(2*expectedSk*math.Log(float64(k)/delta))
}

// PECKStarFromSample chooses k* from the (descending) sample counts of the
// first-stage sample: the smallest k* ≥ k such that counts[k*-1] (the
// k*-th largest) is below the Lemma 12 threshold. Returns k* and ok=false
// if no such k* exists within the sampled objects (distribution has no
// usable gap).
func PECKStarFromSample(countsDesc []int64, k int, delta float64) (int, bool) {
	if len(countsDesc) < k || k < 1 {
		return 0, false
	}
	// High-probability lower bound on E[ŝ_k] from the observed ŝ_k
	// (Theorem 13): E[ŝ_k] ≥ ŝ_k − sqrt(2·ŝ_k·ln(1/δ)).
	sk := float64(countsDesc[k-1])
	esk := sk - math.Sqrt(2*sk*math.Log(1/delta))
	thr := PECThreshold(esk, k, delta)
	if thr <= 0 {
		return 0, false
	}
	for ks := k; ks <= len(countsDesc); ks++ {
		if float64(countsDesc[ks-1]) <= thr {
			return ks, true
		}
	}
	return 0, false
}

// ZipfPECSampleSize returns the Theorem 14 sample size for a probably
// exactly correct result under Zipf(s) inputs: ρn = 4·k^s·H_{n,s}·ln(k/δ).
// hns is the generalized harmonic number H_{universe,s}.
func ZipfPECSampleSize(k int, s float64, hns float64, delta float64) float64 {
	return 4 * math.Pow(float64(k), s) * hns * math.Log(float64(k)/delta)
}

// SumAggSampleSize returns the Theorem 15 sample size for top-k sum
// aggregation: s ≥ (1/ε)·sqrt(2p·ln(2n/δ)).
func SumAggSampleSize(n int64, p int, eps, delta float64) float64 {
	return 1 / eps * math.Sqrt(2*float64(p)*math.Log(2*float64(n)/delta))
}

// EpsTilde computes the paper's relative error ε̃ for a frequent-objects
// result: the count of the most frequent object that was *not* output
// minus the count of the least frequent object that *was* output, divided
// by n; 0 if the result is exact (Section 7, error definition).
//
// exact maps every object to its true count; output is the returned top-k
// key set; n is the input size.
func EpsTilde(exact map[uint64]int64, output []uint64, n int64) float64 {
	if len(output) == 0 {
		return 0
	}
	out := make(map[uint64]bool, len(output))
	minOut := int64(math.MaxInt64)
	for _, k := range output {
		out[k] = true
		c := exact[k]
		if c < minOut {
			minOut = c
		}
	}
	maxMissed := int64(0)
	for k, c := range exact {
		if !out[k] && c > maxMissed {
			maxMissed = c
		}
	}
	if maxMissed <= minOut {
		return 0
	}
	return float64(maxMissed-minOut) / float64(n)
}

// TopKOf returns the keys of the k largest counts in a frequency table
// (ties broken by smaller key for determinism) — the ground truth used to
// score approximate results.
func TopKOf(exact map[uint64]int64, k int) []uint64 {
	type kc struct {
		key uint64
		c   int64
	}
	all := make([]kc, 0, len(exact))
	for key, c := range exact {
		all = append(all, kc{key, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].key < all[j].key
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]uint64, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].key
	}
	return out
}

// Count builds the exact frequency table of a stream.
func Count(stream []uint64) map[uint64]int64 {
	m := make(map[uint64]int64)
	for _, x := range stream {
		m[x]++
	}
	return m
}

// MergeCounts adds src counts into dst.
func MergeCounts(dst, src map[uint64]int64) {
	for k, c := range src {
		dst[k] += c
	}
}
