package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPACSampleSizeMonotonicity(t *testing.T) {
	// Tighter ε requires quadratically more samples.
	s1 := PACSampleSize(1<<30, 32, 3e-4, 1e-4)
	s2 := PACSampleSize(1<<30, 32, 1.5e-4, 1e-4)
	if ratio := s2 / s1; math.Abs(ratio-4) > 0.01 {
		t.Errorf("halving eps scaled sample by %v, want 4", ratio)
	}
	// Tighter δ requires more samples.
	if PACSampleSize(1<<30, 32, 3e-4, 1e-8) <= s1 {
		t.Error("smaller delta should need more samples")
	}
}

func TestECSampleSizeLinearInEps(t *testing.T) {
	// EC's point (Section 7.2): sample size in 1/ε per unit k*, so with
	// the volume-optimal k* ∝ 1/ε total scales as 1/ε, not 1/ε².
	n := int64(1 << 30)
	k1 := OptimalKStar(n, 32, 1024, 3e-4, 1e-4)
	k2 := OptimalKStar(n, 32, 1024, 1.5e-4, 1e-4)
	s1 := ECSampleSize(n, k1, 3e-4, 1e-4)
	s2 := ECSampleSize(n, k2, 1.5e-4, 1e-4)
	if ratio := s2 / s1; ratio > 2.5 {
		t.Errorf("EC sample grew by %v on eps halving; should be ~2 (linear)", ratio)
	}
}

func TestOptimalKStarFloorsAtK(t *testing.T) {
	if ks := OptimalKStar(1<<20, 500, 4, 0.5, 0.1); ks < 500 {
		t.Errorf("k* = %d < k", ks)
	}
	if ks := OptimalKStar(1<<20, 32, 1, 1e-6, 1e-8); ks != 32 {
		t.Errorf("single PE k* = %d, want k", ks)
	}
}

func TestPECThreshold(t *testing.T) {
	if thr := PECThreshold(0, 10, 0.01); thr != 0 {
		t.Errorf("zero expectation threshold %v", thr)
	}
	thr := PECThreshold(1000, 10, 0.01)
	if thr <= 0 || thr >= 1000 {
		t.Errorf("threshold %v out of (0, E)", thr)
	}
	// Larger expected count -> threshold closer (relatively) to E.
	rel1 := PECThreshold(1000, 10, 0.01) / 1000
	rel2 := PECThreshold(100000, 10, 0.01) / 100000
	if rel2 <= rel1 {
		t.Errorf("relative threshold should tighten with counts: %v vs %v", rel1, rel2)
	}
}

func TestPECKStarFromSample(t *testing.T) {
	// Gapped distribution: head of 5 objects with ~1000 samples, tail at ~10.
	counts := []int64{1000, 990, 985, 980, 975, 10, 9, 8, 7, 6, 5}
	ks, ok := PECKStarFromSample(counts, 5, 1e-3)
	if !ok {
		t.Fatal("gap not detected")
	}
	if ks < 5 || ks > 7 {
		t.Errorf("k* = %d, want just past the head", ks)
	}
	// Flat distribution: no usable gap.
	flat := []int64{100, 99, 99, 98, 98, 97, 97, 96}
	if _, ok := PECKStarFromSample(flat, 5, 1e-3); ok {
		t.Error("flat distribution should not admit a k*")
	}
	// Degenerate inputs.
	if _, ok := PECKStarFromSample(nil, 3, 0.1); ok {
		t.Error("empty sample should fail")
	}
}

func TestZipfPECSampleSizeGrowsWithK(t *testing.T) {
	h := 14.4 // ~H_{2^20,1}
	s1 := ZipfPECSampleSize(8, 1, h, 1e-3)
	s2 := ZipfPECSampleSize(64, 1, h, 1e-3)
	if s2 <= s1 {
		t.Error("deeper k must need more samples")
	}
}

func TestSumAggSampleSize(t *testing.T) {
	s := SumAggSampleSize(1<<30, 64, 1e-4, 1e-6)
	if s <= 0 {
		t.Fatal("non-positive sample size")
	}
	// Linear in 1/ε.
	if ratio := SumAggSampleSize(1<<30, 64, 5e-5, 1e-6) / s; math.Abs(ratio-2) > 0.01 {
		t.Errorf("eps halving scaled by %v, want 2", ratio)
	}
}

func TestEpsTilde(t *testing.T) {
	exact := map[uint64]int64{1: 100, 2: 90, 3: 80, 4: 70, 5: 60}
	// Perfect top-3.
	if e := EpsTilde(exact, []uint64{1, 2, 3}, 1000); e != 0 {
		t.Errorf("exact result has error %v", e)
	}
	// Swap 3 (80) for 4 (70): error (80-70)/1000.
	if e := EpsTilde(exact, []uint64{1, 2, 4}, 1000); math.Abs(e-0.01) > 1e-12 {
		t.Errorf("error %v, want 0.01", e)
	}
	// Paper's Figure 4 example: D (8) missed, O (7) returned -> error 1/n.
	fig4 := map[uint64]int64{'E': 16, 'A': 10, 'T': 10, 'I': 9, 'D': 8, 'O': 7}
	if e := EpsTilde(fig4, []uint64{'E', 'A', 'T', 'I', 'O'}, 100); math.Abs(e-0.01) > 1e-12 {
		t.Errorf("Figure 4 error %v·n, want 1", e*100)
	}
	// Empty output.
	if e := EpsTilde(exact, nil, 100); e != 0 {
		t.Errorf("empty output error %v", e)
	}
}

func TestTopKOfAndCount(t *testing.T) {
	stream := []uint64{5, 5, 5, 3, 3, 9, 9, 9, 9, 1}
	exact := Count(stream)
	if exact[9] != 4 || exact[5] != 3 || exact[3] != 2 || exact[1] != 1 {
		t.Fatalf("Count wrong: %v", exact)
	}
	top2 := TopKOf(exact, 2)
	if len(top2) != 2 || top2[0] != 9 || top2[1] != 5 {
		t.Errorf("TopKOf = %v", top2)
	}
	// k larger than universe.
	if got := TopKOf(exact, 100); len(got) != 4 {
		t.Errorf("oversized k returned %d keys", len(got))
	}
	// Determinstic tie-break by key.
	ties := map[uint64]int64{7: 5, 2: 5, 9: 5}
	if got := TopKOf(ties, 2); got[0] != 2 || got[1] != 7 {
		t.Errorf("tie-break = %v", got)
	}
}

func TestMergeCounts(t *testing.T) {
	dst := map[uint64]int64{1: 1, 2: 2}
	MergeCounts(dst, map[uint64]int64{2: 3, 4: 4})
	if dst[1] != 1 || dst[2] != 5 || dst[4] != 4 {
		t.Errorf("merge = %v", dst)
	}
}

func TestEpsTildeQuickNonNegative(t *testing.T) {
	check := func(counts []uint8, pick []bool) bool {
		exact := map[uint64]int64{}
		for i, c := range counts {
			exact[uint64(i)] = int64(c) + 1
		}
		var out []uint64
		for i := range pick {
			if pick[i] && i < len(counts) {
				out = append(out, uint64(i))
			}
		}
		e := EpsTilde(exact, out, int64(len(counts)+1))
		return e >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
