package dht

import (
	"commtopk/internal/coll"
)

// RegisterWireCodecs registers every payload shape the DHT layer puts on
// a cross-process frame: KV pairs (counting inserts, gathers of
// selections and resolutions) and HC cells (the dSBF wire format), each
// with the full collective carrier set (routed batches travel as pooled
// *[]T copies, gathers as Bruck composites). Call once from the shared
// registration package of every participating binary (see
// internal/wire/wireprogs); idempotent.
func RegisterWireCodecs() {
	coll.RegisterWireCodecs[KV]("dht.KV")
	coll.RegisterWireCodecs[HC]("dht.HC")
}
