package dht

import (
	"sort"

	"commtopk/internal/comm"
	"commtopk/internal/xrand"
)

// SortKVDesc orders by count descending, key ascending (deterministic).
func SortKVDesc(items []KV) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].Count != items[j].Count {
			return items[i].Count > items[j].Count
		}
		return items[i].Key < items[j].Key
	})
}

// SelectTopKTable returns the k entries with the highest counts from a
// DHT-sharded count Table, on all PEs, using the unsorted selection
// algorithm of Section 4.1 on the counts (descending order is realized by
// complementing the count). Ties at the threshold are split
// deterministically — across PEs with a prefix sum, within a PE by
// ascending key, so shard iteration order cannot leak into the result —
// and exactly k entries are returned (fewer if fewer exist globally).
// Shared by the frequent-objects (§7) and sum-aggregation (§8) layers.
// The shard table is only read. Collective.
func SelectTopKTable(pe *comm.PE, shard *Table, k int, rng *xrand.RNG) []KV {
	items := comm.ScratchSlice[KV](pe, "dht.topk.items", shard.Len())[:0]
	items = shard.AppendKVs(items)
	return selectTopKItems(pe, items, k, rng)
}

// SelectTopK is SelectTopKTable for callers holding a Go map.
func SelectTopK(pe *comm.PE, shard map[uint64]int64, k int, rng *xrand.RNG) []KV {
	items := comm.ScratchSlice[KV](pe, "dht.topk.items", len(shard))[:0]
	for key, c := range shard {
		items = append(items, KV{Key: key, Count: c})
	}
	return selectTopKItems(pe, items, k, rng)
}

// selectTopKItems is the shared selection core: the blocking driver of
// selectTopKStep (see async.go for the algorithm — the rank of the
// threshold in the complemented-count multiset splits the local entries
// into a strictly-above band and a tie band compressed forward in one
// pass, and a prefix sum splits the ties deterministically across PEs).
// items is consumed as scratch (it may be reordered); the returned slice
// is freshly gathered and caller-owned.
func selectTopKItems(pe *comm.PE, items []KV, k int, rng *xrand.RNG) []KV {
	st := newSelectTopKStep(pe, items, k, rng, nil, false)
	comm.RunSteps(pe, st)
	res := st.res
	st.release(pe)
	return res
}
