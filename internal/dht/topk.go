package dht

import (
	"sort"

	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/qsel"
	"commtopk/internal/sel"
	"commtopk/internal/xrand"
)

// SortKVDesc orders by count descending, key ascending (deterministic).
func SortKVDesc(items []KV) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].Count != items[j].Count {
			return items[i].Count > items[j].Count
		}
		return items[i].Key < items[j].Key
	})
}

// SelectTopKTable returns the k entries with the highest counts from a
// DHT-sharded count Table, on all PEs, using the unsorted selection
// algorithm of Section 4.1 on the counts (descending order is realized by
// complementing the count). Ties at the threshold are split
// deterministically — across PEs with a prefix sum, within a PE by
// ascending key, so shard iteration order cannot leak into the result —
// and exactly k entries are returned (fewer if fewer exist globally).
// Shared by the frequent-objects (§7) and sum-aggregation (§8) layers.
// The shard table is only read. Collective.
func SelectTopKTable(pe *comm.PE, shard *Table, k int, rng *xrand.RNG) []KV {
	items := comm.ScratchSlice[KV](pe, "dht.topk.items", shard.Len())[:0]
	items = shard.AppendKVs(items)
	return selectTopKItems(pe, items, k, rng)
}

// SelectTopK is SelectTopKTable for callers holding a Go map.
func SelectTopK(pe *comm.PE, shard map[uint64]int64, k int, rng *xrand.RNG) []KV {
	items := comm.ScratchSlice[KV](pe, "dht.topk.items", len(shard))[:0]
	for key, c := range shard {
		items = append(items, KV{Key: key, Count: c})
	}
	return selectTopKItems(pe, items, k, rng)
}

// selectTopKItems is the shared selection core. items is consumed as
// scratch (it may be reordered); the returned slice is freshly gathered
// and caller-owned.
func selectTopKItems(pe *comm.PE, items []KV, k int, rng *xrand.RNG) []KV {
	ords := comm.ScratchSlice[uint64](pe, "dht.topk.ords", len(items))[:0]
	for _, it := range items {
		ords = append(ords, ^uint64(it.Count))
	}
	total := coll.SumAll(pe, int64(len(items)))
	if total == 0 {
		return nil
	}
	if total <= int64(k) {
		all := coll.AllGatherConcat(pe, items)
		SortKVDesc(all)
		return all
	}
	thr := sel.Kth(pe, ords, int64(k), rng)
	thrCount := int64(^thr)
	// Rank the threshold in the complemented-count multiset first (ords may
	// have been reordered by Kth's window, but rank is permutation-
	// invariant): below ⇔ Count strictly above the threshold, equal ⇔ tied.
	// Knowing the band sizes up front turns the extraction into a single
	// forward compress — strictly-above entries slide to the front (the
	// write cursor never passes the read cursor), ties stage through a
	// scratch band copied in behind them. Both branches are rare once the
	// threshold is selective, so the pass predicts well, mirroring the
	// compress narrowing of qsel's bucket engine.
	nSel, nTied := qsel.Rank(ords, thr)
	tiedTmp := comm.ScratchSlice[KV](pe, "dht.topk.tied", nTied)[:0]
	w := 0
	for _, it := range items {
		if it.Count > thrCount {
			items[w] = it
			w++
		} else if it.Count == thrCount {
			tiedTmp = append(tiedTmp, it)
		}
	}
	copy(items[nSel:], tiedTmp)
	tied := items[nSel : nSel+nTied]
	nAbove := coll.SumAll(pe, int64(nSel))
	needTies := int64(k) - nAbove
	prevTies := coll.ExScanSum(pe, int64(nTied))
	take := min(max(needTies-prevTies, 0), int64(nTied))
	sort.Slice(tied, func(i, j int) bool { return tied[i].Key < tied[j].Key })
	out := coll.AllGatherConcat(pe, items[:nSel+int(take)])
	SortKVDesc(out)
	return out
}
