package dht

import (
	"sort"

	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/sel"
	"commtopk/internal/xrand"
)

// SortKVDesc orders by count descending, key ascending (deterministic).
func SortKVDesc(items []KV) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].Count != items[j].Count {
			return items[i].Count > items[j].Count
		}
		return items[i].Key < items[j].Key
	})
}

// SelectTopK returns the k entries with the highest counts from a
// DHT-sharded count table, on all PEs, using the unsorted selection
// algorithm of Section 4.1 on the counts (descending order is realized by
// complementing the count). Ties at the threshold are split
// deterministically — across PEs with a prefix sum, within a PE by
// ascending key, so map iteration order cannot leak into the result —
// and exactly k entries are returned (fewer if fewer exist globally).
// Shared by the frequent-objects (§7) and sum-aggregation (§8) layers.
// Collective.
func SelectTopK(pe *comm.PE, shard map[uint64]int64, k int, rng *xrand.RNG) []KV {
	items := make([]KV, 0, len(shard))
	ords := make([]uint64, 0, len(shard))
	for key, c := range shard {
		items = append(items, KV{Key: key, Count: c})
		ords = append(ords, ^uint64(c))
	}
	total := coll.SumAll(pe, int64(len(items)))
	if total == 0 {
		return nil
	}
	if total <= int64(k) {
		all := coll.AllGatherConcat(pe, items)
		SortKVDesc(all)
		return all
	}
	thr := sel.Kth(pe, ords, int64(k), rng)
	thrCount := int64(^thr)
	var selected, tied []KV
	for _, it := range items {
		if it.Count > thrCount {
			selected = append(selected, it)
		} else if it.Count == thrCount {
			tied = append(tied, it)
		}
	}
	nAbove := coll.SumAll(pe, int64(len(selected)))
	needTies := int64(k) - nAbove
	prevTies := coll.ExScanSum(pe, int64(len(tied)))
	take := min(max(needTies-prevTies, 0), int64(len(tied)))
	sort.Slice(tied, func(i, j int) bool { return tied[i].Key < tied[j].Key })
	selected = append(selected, tied[:take]...)
	out := coll.AllGatherConcat(pe, selected)
	SortKVDesc(out)
	return out
}
