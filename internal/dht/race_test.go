//go:build race

package dht

const raceEnabled = true
