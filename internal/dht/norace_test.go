//go:build !race

package dht

const raceEnabled = false
