package dht

import (
	"reflect"
	"slices"
	"testing"
)

func TestTableBasicAndGrowth(t *testing.T) {
	tb := NewTable(0)
	defer tb.Release()
	const n = 10_000
	for i := uint64(0); i < n; i++ {
		tb.Add(i, int64(i%7)+1)
		tb.Add(i, 1) // every key incremented twice
	}
	if tb.Len() != n {
		t.Fatalf("Len = %d, want %d", tb.Len(), n)
	}
	var wantTotal int64
	for i := uint64(0); i < n; i++ {
		want := int64(i%7) + 2
		wantTotal += want
		if got, ok := tb.Get(i); !ok || got != want {
			t.Fatalf("Get(%d) = %d,%v want %d", i, got, ok, want)
		}
	}
	if tb.Total() != wantTotal {
		t.Errorf("Total = %d, want %d", tb.Total(), wantTotal)
	}
	if _, ok := tb.Get(n + 1); ok {
		t.Error("absent key reported present")
	}
}

func TestTableSet(t *testing.T) {
	tb := NewTable(4)
	defer tb.Release()
	tb.Set(7, 5)
	tb.Set(7, 3)
	tb.Add(9, 2)
	if got, _ := tb.Get(7); got != 3 {
		t.Errorf("Set did not replace: %d", got)
	}
	if tb.Total() != 5 {
		t.Errorf("Total after Set = %d, want 5", tb.Total())
	}
}

func TestTableIterationDeterministic(t *testing.T) {
	build := func() []KV {
		tb := NewTable(0)
		defer tb.Release()
		for i := 0; i < 500; i++ {
			tb.Add(uint64(i*2654435761)%1000, 1)
		}
		return tb.AppendKVs(nil)
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Error("identical insertion sequences iterated in different orders")
	}
	if len(a) == 0 {
		t.Fatal("empty iteration")
	}
}

func TestTableResetAndReleaseReuse(t *testing.T) {
	tb := NewTable(8)
	tb.Add(1, 1)
	tb.Reset()
	if tb.Len() != 0 || tb.Total() != 0 {
		t.Fatalf("Reset left %d/%d", tb.Len(), tb.Total())
	}
	if _, ok := tb.Get(1); ok {
		t.Error("Reset kept a key")
	}
	tb.Add(2, 5)
	tb.Release()
	// A released table must be usable again.
	tb.Add(3, 7)
	if got, ok := tb.Get(3); !ok || got != 7 {
		t.Errorf("post-Release Get = %d,%v", got, ok)
	}
	if _, ok := tb.Get(2); ok {
		t.Error("Release kept a key")
	}
	tb.Release()
}

// TestTableSteadyStateAllocs pins the satellite claim: a released table's
// slots come back from the pool, so repeated query-sized fills allocate
// (amortized) nothing.
func TestTableSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	warm := func() {
		tb := NewTable(0)
		for i := uint64(0); i < 2048; i++ {
			tb.Add(i*0x9e3779b9, 1)
		}
		tb.Release()
	}
	warm()
	allocs := testing.AllocsPerRun(20, warm)
	// One alloc for the Table header itself; the slot slabs must recycle.
	if allocs > 2 {
		t.Errorf("steady-state table fill allocates %.1f times, want ≤ 2", allocs)
	}
}

func TestSumTableBasics(t *testing.T) {
	s := NewSumTable(4)
	s.Add(10, 1.5)
	s.Add(11, 2.0)
	s.Add(10, 0.25)
	if got, ok := s.Get(10); !ok || got != 1.75 {
		t.Errorf("Get(10) = %v, %v", got, ok)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Total() != 3.75 {
		t.Errorf("Total = %v", s.Total())
	}
	s.Set(11, 1.0)
	if s.Total() != 2.75 {
		t.Errorf("Total after Set = %v", s.Total())
	}
	s.Release()
	if _, ok := s.Get(10); ok {
		t.Error("released table still holds keys")
	}
	s.Add(3, 1) // released table must be usable again
	if got, _ := s.Get(3); got != 1 {
		t.Errorf("post-release Add lost value: %v", got)
	}
}

func TestSortedKeysDeterministic(t *testing.T) {
	tb := NewTable(0)
	keys := []uint64{900, 3, 77, 12, 500, 1}
	for _, k := range keys {
		tb.Add(k, int64(k))
	}
	got := tb.SortedKeys(nil)
	want := append([]uint64(nil), keys...)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Errorf("SortedKeys = %v, want %v", got, want)
	}
	// Appending into a reused buffer must extend, not clobber.
	buf := []uint64{42}
	got = tb.SortedKeys(buf[:1])
	if got[0] > got[1] { // sorted including the prefix
		t.Logf("prefix participates in the sort, as documented: %v", got[:2])
	}
	if len(got) != len(keys)+1 {
		t.Errorf("reused-buffer SortedKeys has %d keys", len(got))
	}
}

func TestTableGrowPreservesSumValues(t *testing.T) {
	s := NewSumTable(0)
	const n = 1000
	for i := 0; i < n; i++ {
		s.Add(uint64(i*2654435761), float64(i)/8)
	}
	if s.Len() != n {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := 0; i < n; i++ {
		if got, ok := s.Get(uint64(i * 2654435761)); !ok || got != float64(i)/8 {
			t.Fatalf("key %d: got %v ok=%v", i, got, ok)
		}
	}
}
