// Package dht provides the distributed counting hash table of Section 7.1
// and the distributed single-shot Bloom filter (dSBF) refinement of
// Section 7.4. Keys are assigned to PEs by a mixing hash assumed to behave
// like a random function; counts are routed to the owner either directly
// (all-to-all) or through the hypercube with per-step aggregation
// ("indirect delivery to maintain logarithmic latency ... the incoming
// sample counts are merged with a hash table in each step").
package dht

import (
	"sort"

	"commtopk/internal/coll"
	"commtopk/internal/comm"
)

// KV is one key's (partial or global) count.
type KV struct {
	Key   uint64
	Count int64
}

// RouteMode selects the delivery strategy for count insertion.
type RouteMode int

const (
	// RouteHypercube uses indirect hypercube delivery with per-step count
	// aggregation: O(log p) startups per PE (the paper's default).
	RouteHypercube RouteMode = iota
	// RouteDirect uses direct all-to-all delivery: O(p) startups.
	RouteDirect
)

// Mix is the hash assigning keys to PEs (and to Bloom-filter cells); a
// SplitMix64-style finalizer, modelling the paper's random hash function.
func Mix(key uint64) uint64 {
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Owner returns the PE owning key.
func Owner(key uint64, p int) int { return int(Mix(key) % uint64(p)) }

// CountKV inserts every PE's locally aggregated counts (as KV pairs, any
// order) and returns, on each PE, the global counts of the keys it owns
// in a pooled Table the caller must Release. This is the allocation-lean
// core of the counting DHT: the hypercube route re-aggregates with one
// reused Table per query instead of a fresh Go map per routing step, and
// the in-place combine writes its output over the held buffer, so the
// steady-state per-step cost is zero allocations. Collective.
func CountKV(pe *comm.PE, items []KV, mode RouteMode) *Table {
	st := CountKVStep(pe, items, mode, nil).(*countKVStep)
	out := st.t
	comm.RunSteps(pe, st)
	return out
}

// CountKeys is CountKV for callers holding a Go map; it returns a map.
// Prefer CountKV + Table on hot paths — this wrapper pays the map churn
// CountKV exists to avoid.
func CountKeys(pe *comm.PE, local map[uint64]int64, mode RouteMode) map[uint64]int64 {
	items := make([]KV, 0, len(local))
	for k, c := range local {
		items = append(items, KV{k, c})
	}
	t := CountKV(pe, items, mode)
	out := make(map[uint64]int64, t.Len())
	t.ForEach(func(k uint64, c int64) { out[k] = c })
	t.Release()
	return out
}

// HC is a hashed cell count: the dSBF wire format. Hash and Count are
// 32-bit so one cell costs a single machine word — half the volume of a
// KV pair, which is the refinement's point.
type HC struct {
	Hash  uint32
	Count uint32
}

// SBF is a distributed single-shot Bloom filter over counted keys: each
// PE holds the summed counts of the hash cells it owns, plus its local
// per-key contributions for later resolution of collisions. All state is
// map-free (pooled Table + sorted slice), so repeated builds over the
// same input are bit-identical — cell iteration order cannot leak into
// downstream selection, RNG consumption, or meters.
type SBF struct {
	pe *comm.PE
	// Cells holds owned 32-bit hash cells (as uint64 keys) → global summed
	// counts, in a pooled Table released by Release.
	Cells *Table
	// local is this PE's own contribution, sorted by (cell, key) so
	// Resolve scans it in a deterministic order.
	local []cellKV
}

// cellKV is one local (cell, key, count) contribution kept for Resolve.
type cellKV struct {
	cell uint32
	kv   KV
}

// Release recycles the pooled cell table.
func (s *SBF) Release() {
	if s.Cells != nil {
		s.Cells.Release()
		s.Cells = nil
	}
}

// cellOf hashes a key into the 32-bit cell space.
func cellOf(key uint64) uint32 { return uint32(Mix(key) >> 32) }

// cellOwner distributes cells over PEs by range-ish hashing.
func cellOwner(cell uint32, p int) int { return int(uint64(cell) % uint64(p)) }

// BuildSBF inserts locally aggregated counts (a sampled count table) as
// (hash, count) cells. Counts are saturated at 2^32−1 per message (ample
// for sample counts). The table is only read. Collective.
func BuildSBF(pe *comm.PE, local *Table) *SBF {
	p := pe.P()
	s := &SBF{pe: pe, Cells: NewTable(local.Len()), local: make([]cellKV, 0, local.Len())}
	cellAgg := NewTable(local.Len())
	local.ForEach(func(k uint64, c int64) {
		cell := cellOf(k)
		s.local = append(s.local, cellKV{cell, KV{k, c}})
		cellAgg.Add(uint64(cell), c)
	})
	// Sort contributions by (cell, key) and emit the routed cells in
	// ascending cell order: the message content is order-insensitive (the
	// router re-aggregates per destination), but a fixed order pins the
	// in-flight batch layouts bit-identical across repeated runs.
	sort.Slice(s.local, func(i, j int) bool {
		if s.local[i].cell != s.local[j].cell {
			return s.local[i].cell < s.local[j].cell
		}
		return s.local[i].kv.Key < s.local[j].kv.Key
	})
	items := make([]HC, 0, cellAgg.Len())
	for _, ck := range cellAgg.SortedKeys(nil) {
		c, _ := cellAgg.Get(ck)
		if c > 0xffffffff {
			c = 0xffffffff
		}
		items = append(items, HC{uint32(ck), uint32(c)})
	}
	cellAgg.Release()
	destFn := func(hc HC) int { return cellOwner(hc.Hash, p) }
	agg := NewTable(len(items))
	combine := func(held []HC) []HC {
		agg.Reset()
		for _, hc := range held {
			agg.Add(uint64(hc.Hash), int64(hc.Count))
		}
		// Overwrite held in place (batch ownership moves with the message,
		// see CountKV); slot order is deterministic given the deterministic
		// insertion sequence above.
		out := held[:0]
		agg.ForEach(func(cell uint64, c int64) {
			if c > 0xffffffff {
				c = 0xffffffff
			}
			out = append(out, HC{uint32(cell), uint32(c)})
		})
		return out
	}
	// Borrowed-batch consumption: the cell table is folded straight out of
	// the router's held buffer, no caller-owned clone needed.
	comm.RunSteps(pe, coll.RouteCombineStep(pe, items, destFn, combine, func(held []HC) {
		for _, hc := range held {
			s.Cells.Add(uint64(hc.Hash), int64(hc.Count))
		}
	}))
	agg.Release()
	return s
}

// Resolve splits the given hash cells back into per-key global counts
// ("we request the keys of all elements with higher rank, and replace the
// (hash, value) pairs with (key, value) pairs, splitting them where hash
// collisions occurred"). cells must be identical on all PEs (e.g. from an
// all-gather of owners' selections). The result — global per-key counts
// for every key falling in one of the cells — is returned on all PEs.
// Collective.
func (s *SBF) Resolve(cells []uint32) []KV {
	want := make(map[uint32]bool, len(cells))
	for _, c := range cells {
		want[c] = true
	}
	var mine []KV
	for _, ck := range s.local { // sorted by (cell, key): deterministic
		if want[ck.cell] {
			mine = append(mine, ck.kv)
		}
	}
	all := coll.AllGatherConcat(s.pe, mine)
	agg := NewTable(len(all))
	for _, kv := range all {
		agg.Add(kv.Key, kv.Count)
	}
	out := agg.AppendKVs(make([]KV, 0, agg.Len()))
	agg.Release()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
