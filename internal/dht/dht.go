// Package dht provides the distributed counting hash table of Section 7.1
// and the distributed single-shot Bloom filter (dSBF) refinement of
// Section 7.4. Keys are assigned to PEs by a mixing hash assumed to behave
// like a random function; counts are routed to the owner either directly
// (all-to-all) or through the hypercube with per-step aggregation
// ("indirect delivery to maintain logarithmic latency ... the incoming
// sample counts are merged with a hash table in each step").
package dht

import (
	"commtopk/internal/coll"
	"commtopk/internal/comm"
)

// KV is one key's (partial or global) count.
type KV struct {
	Key   uint64
	Count int64
}

// RouteMode selects the delivery strategy for count insertion.
type RouteMode int

const (
	// RouteHypercube uses indirect hypercube delivery with per-step count
	// aggregation: O(log p) startups per PE (the paper's default).
	RouteHypercube RouteMode = iota
	// RouteDirect uses direct all-to-all delivery: O(p) startups.
	RouteDirect
)

// Mix is the hash assigning keys to PEs (and to Bloom-filter cells); a
// SplitMix64-style finalizer, modelling the paper's random hash function.
func Mix(key uint64) uint64 {
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Owner returns the PE owning key.
func Owner(key uint64, p int) int { return int(Mix(key) % uint64(p)) }

// CountKV inserts every PE's locally aggregated counts (as KV pairs, any
// order) and returns, on each PE, the global counts of the keys it owns
// in a pooled Table the caller must Release. This is the allocation-lean
// core of the counting DHT: the hypercube route re-aggregates with one
// reused Table per query instead of a fresh Go map per routing step, and
// the in-place combine writes its output over the held buffer, so the
// steady-state per-step cost is zero allocations. Collective.
func CountKV(pe *comm.PE, items []KV, mode RouteMode) *Table {
	p := pe.P()
	out := NewTable(len(items))
	switch mode {
	case RouteDirect:
		parts := make([][]KV, p)
		for _, kv := range items {
			d := Owner(kv.Key, p)
			parts[d] = append(parts[d], kv)
		}
		recv := coll.AllToAll(pe, parts)
		for _, part := range recv {
			for _, kv := range part {
				out.Add(kv.Key, kv.Count)
			}
		}
		return out
	case RouteHypercube:
		// The destination is derivable from the key, so only the
		// (key, count) pair travels; counts for equal keys merge at
		// every routing step through the reused table.
		destFn := func(kv KV) int { return Owner(kv.Key, p) }
		combine := func(held []KV) []KV {
			out.Reset()
			for _, kv := range held {
				out.Add(kv.Key, kv.Count)
			}
			// Overwriting held in place is safe because ownership of a
			// routed batch moves with the message: on the low ranks held is
			// an append-built local slice, and on a folded-out high rank it
			// is the batch its partner sent and then abandoned (RouteCombine
			// senders never touch a slice after Send).
			return out.AppendKVs(held[:0])
		}
		// The stepper form lends the routed batch to the out hook for the
		// duration of the call — the table rebuild consumes it element by
		// element, so RouteCombine's defensive clone of the result would be
		// pure allocation.
		comm.RunSteps(pe, coll.RouteCombineStep(pe, items, destFn, combine, func(held []KV) {
			out.Reset()
			for _, kv := range held {
				out.Add(kv.Key, kv.Count)
			}
		}))
		return out
	default:
		panic("dht: unknown route mode")
	}
}

// CountKeys is CountKV for callers holding a Go map; it returns a map.
// Prefer CountKV + Table on hot paths — this wrapper pays the map churn
// CountKV exists to avoid.
func CountKeys(pe *comm.PE, local map[uint64]int64, mode RouteMode) map[uint64]int64 {
	items := make([]KV, 0, len(local))
	for k, c := range local {
		items = append(items, KV{k, c})
	}
	t := CountKV(pe, items, mode)
	out := make(map[uint64]int64, t.Len())
	t.ForEach(func(k uint64, c int64) { out[k] = c })
	t.Release()
	return out
}

// HC is a hashed cell count: the dSBF wire format. Hash and Count are
// 32-bit so one cell costs a single machine word — half the volume of a
// KV pair, which is the refinement's point.
type HC struct {
	Hash  uint32
	Count uint32
}

// SBF is a distributed single-shot Bloom filter over counted keys: each
// PE holds the summed counts of the hash cells it owns, plus its local
// per-key contributions for later resolution of collisions.
type SBF struct {
	pe *comm.PE
	// Cells maps owned 32-bit hash cells to their global summed counts.
	Cells map[uint32]int64
	// local is this PE's own contribution by cell, kept for Resolve.
	local map[uint32][]KV
}

// cellOf hashes a key into the 32-bit cell space.
func cellOf(key uint64) uint32 { return uint32(Mix(key) >> 32) }

// cellOwner distributes cells over PEs by range-ish hashing.
func cellOwner(cell uint32, p int) int { return int(uint64(cell) % uint64(p)) }

// BuildSBF inserts locally aggregated counts (a sampled count table) as
// (hash, count) cells. Counts are saturated at 2^32−1 per message (ample
// for sample counts). The table is only read. Collective.
func BuildSBF(pe *comm.PE, local *Table) *SBF {
	p := pe.P()
	s := &SBF{pe: pe, Cells: map[uint32]int64{}, local: map[uint32][]KV{}}
	cellAgg := make(map[uint32]int64)
	local.ForEach(func(k uint64, c int64) {
		cell := cellOf(k)
		s.local[cell] = append(s.local[cell], KV{k, c})
		cellAgg[cell] += c
	})
	items := make([]HC, 0, len(cellAgg))
	for cell, c := range cellAgg {
		cc := c
		if cc > 0xffffffff {
			cc = 0xffffffff
		}
		items = append(items, HC{cell, uint32(cc)})
	}
	destFn := func(hc HC) int { return cellOwner(hc.Hash, p) }
	combine := func(held []HC) []HC {
		agg := make(map[uint32]int64, len(held))
		for _, hc := range held {
			agg[hc.Hash] += int64(hc.Count)
		}
		out := make([]HC, 0, len(agg))
		for cell, c := range agg {
			if c > 0xffffffff {
				c = 0xffffffff
			}
			out = append(out, HC{cell, uint32(c)})
		}
		return out
	}
	// Borrowed-batch consumption: the cell map is folded straight out of
	// the router's held buffer, no caller-owned clone needed.
	comm.RunSteps(pe, coll.RouteCombineStep(pe, items, destFn, combine, func(held []HC) {
		for _, hc := range held {
			s.Cells[hc.Hash] += int64(hc.Count)
		}
	}))
	return s
}

// Resolve splits the given hash cells back into per-key global counts
// ("we request the keys of all elements with higher rank, and replace the
// (hash, value) pairs with (key, value) pairs, splitting them where hash
// collisions occurred"). cells must be identical on all PEs (e.g. from an
// all-gather of owners' selections). The result — global per-key counts
// for every key falling in one of the cells — is returned on all PEs.
// Collective.
func (s *SBF) Resolve(cells []uint32) []KV {
	want := make(map[uint32]bool, len(cells))
	for _, c := range cells {
		want[c] = true
	}
	var mine []KV
	for cell, kvs := range s.local {
		if want[cell] {
			mine = append(mine, kvs...)
		}
	}
	all := coll.AllGatherConcat(s.pe, mine)
	agg := make(map[uint64]int64, len(all))
	for _, kv := range all {
		agg[kv.Key] += kv.Count
	}
	out := make([]KV, 0, len(agg))
	for k, c := range agg {
		out = append(out, KV{k, c})
	}
	return out
}
