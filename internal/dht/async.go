package dht

import (
	"sort"

	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/qsel"
	"commtopk/internal/sel"
	"commtopk/internal/xrand"
)

// Continuation forms of the DHT collectives, following the
// sel.KthStep template: pooled per-PE state (comm.GetPooled), cached
// result-delivery closures built once per pooled object, sub-steppers
// driven to completion through the cur slot, and blocking forms that
// drive the same engines through comm.RunSteps — one implementation,
// both execution modes, bit-identical results and meters.

// countKVStep — see CountKVStep.
type countKVStep struct {
	out func(*Table)
	t   *Table
	p   int
	cur comm.Stepper

	// Cached closures (built once per pooled object; they capture only s
	// and read the live fields at call time).
	visit   func(src int, part []KV)
	destFn  func(kv KV) int
	combine func(held []KV) []KV
	onHeld  func(held []KV)
}

// CountKVStep is the continuation form of CountKV: out receives, on each
// PE, the global counts of the keys it owns in a pooled Table the
// receiver must Release. The routed batches are consumed borrowed (no
// caller-owned clones); the metered schedule matches CountKV exactly —
// the blocking form is this stepper driven with blocking waits.
func CountKVStep(pe *comm.PE, items []KV, mode RouteMode, out func(*Table)) comm.Stepper {
	s := comm.GetPooled[countKVStep](pe)
	s.out = out
	s.t = NewTable(len(items))
	s.p = pe.P()
	if s.visit == nil {
		s.visit = func(src int, part []KV) {
			for _, kv := range part {
				s.t.Add(kv.Key, kv.Count)
			}
		}
		s.destFn = func(kv KV) int { return Owner(kv.Key, s.p) }
		s.combine = func(held []KV) []KV {
			s.t.Reset()
			for _, kv := range held {
				s.t.Add(kv.Key, kv.Count)
			}
			// Overwriting held in place is safe: ownership of a routed batch
			// moves with the message (see CountKV's rationale).
			return s.t.AppendKVs(held[:0])
		}
		s.onHeld = func(held []KV) {
			s.t.Reset()
			for _, kv := range held {
				s.t.Add(kv.Key, kv.Count)
			}
		}
	}
	switch mode {
	case RouteDirect:
		parts := make([][]KV, s.p)
		for _, kv := range items {
			d := Owner(kv.Key, s.p)
			parts[d] = append(parts[d], kv)
		}
		s.cur = coll.AllToAllStep(pe, parts, s.visit)
	case RouteHypercube:
		s.cur = coll.RouteCombineStep(pe, items, s.destFn, s.combine, s.onHeld)
	default:
		panic("dht: unknown route mode")
	}
	return s
}

func (s *countKVStep) Step(pe *comm.PE) *comm.RecvHandle {
	if h := s.cur.Step(pe); h != nil {
		return h
	}
	out, t := s.out, s.t
	s.out, s.t, s.cur = nil, nil, nil
	comm.PutPooled(pe, s)
	if out != nil {
		out(t)
	}
	return nil
}

// selectTopKStep phases.
const (
	tphInit       = iota // start the global size sum
	tphTotalWait         // harvest total; branch small-gather vs selection
	tphSmallWait         // total ≤ k: harvest the full gather
	tphKthWait           // harvest the threshold; band the local entries
	tphNAboveWait        // harvest the strictly-above count; start the tie scan
	tphPrevWait          // harvest the tie prefix; start the result gather
	tphGatherWait        // harvest the selected entries
	tphDone
)

// selectTopKStep — see SelectTopKTableStep.
type selectTopKStep struct {
	pe    *comm.PE
	items []KV
	k     int
	rng   *xrand.RNG
	out   func([]KV)
	self  bool
	res   []KV

	ords  []uint64
	i64   int64
	thr   uint64
	nSel  int
	nTied int
	nAb   int64

	cur comm.Stepper

	onI64 func(int64)
	onThr func(uint64)
	onAll func([]KV)

	phase int
}

func newSelectTopKStep(pe *comm.PE, items []KV, k int, rng *xrand.RNG, out func([]KV), self bool) *selectTopKStep {
	s := comm.GetPooled[selectTopKStep](pe)
	s.pe = pe
	s.items, s.k, s.rng, s.out, s.self = items, k, rng, out, self
	s.phase = tphInit
	s.cur = nil
	if s.onI64 == nil {
		s.onI64 = func(v int64) { s.i64 = v }
		s.onThr = func(v uint64) { s.thr = v }
		s.onAll = func(got []KV) {
			// The gathered concatenation is a borrowed pooled buffer; the
			// result is caller-owned (matching the blocking AllGatherConcat
			// contract), so materialize a fresh copy.
			r := make([]KV, len(got))
			copy(r, got)
			s.res = r
		}
	}
	return s
}

// SelectTopKTableStep is the continuation form of SelectTopKTable: out
// receives the k highest-count entries of the sharded count table on
// every PE, caller-owned and sorted by SortKVDesc. The shard is read at
// construction time (into per-PE scratch), so it may be released once
// the factory returns. Semantics, RNG consumption and the metered
// schedule match SelectTopKTable exactly.
func SelectTopKTableStep(pe *comm.PE, shard *Table, k int, rng *xrand.RNG, out func([]KV)) comm.Stepper {
	items := comm.ScratchSlice[KV](pe, "dht.topk.items", shard.Len())[:0]
	return newSelectTopKStep(pe, shard.AppendKVs(items), k, rng, out, true)
}

func (s *selectTopKStep) release(pe *comm.PE) {
	s.pe = nil
	s.items, s.ords, s.res = nil, nil, nil
	s.rng, s.out, s.cur = nil, nil, nil
	comm.PutPooled(pe, s)
}

func (s *selectTopKStep) finish(pe *comm.PE, v []KV) *comm.RecvHandle {
	s.res = v
	s.phase = tphDone
	if s.self {
		out := s.out
		s.release(pe)
		if out != nil {
			out(v)
		}
	}
	return nil
}

func addI64(a, b int64) int64 { return a + b }

func (s *selectTopKStep) Step(pe *comm.PE) *comm.RecvHandle {
	for {
		if s.cur != nil {
			if h := s.cur.Step(pe); h != nil {
				return h
			}
			s.cur = nil
		}
		switch s.phase {
		case tphInit:
			ords := comm.ScratchSlice[uint64](pe, "dht.topk.ords", len(s.items))[:0]
			for _, it := range s.items {
				ords = append(ords, ^uint64(it.Count))
			}
			s.ords = ords
			s.cur = coll.AllReduceScalarStep(pe, int64(len(s.items)), addI64, s.onI64)
			s.phase = tphTotalWait
		case tphTotalWait:
			total := s.i64
			if total == 0 {
				return s.finish(pe, nil)
			}
			if total <= int64(s.k) {
				s.cur = coll.AllGatherConcatStep(pe, s.items, s.onAll)
				s.phase = tphSmallWait
				continue
			}
			s.cur = sel.KthStep(pe, s.ords, int64(s.k), s.rng, s.onThr)
			s.phase = tphKthWait
		case tphSmallWait:
			SortKVDesc(s.res)
			return s.finish(pe, s.res)
		case tphKthWait:
			// Band the local entries around the selected threshold — see the
			// compress rationale in the blocking selectTopKItems.
			thrCount := int64(^s.thr)
			nSel, nTied := qsel.Rank(s.ords, s.thr)
			tiedTmp := comm.ScratchSlice[KV](pe, "dht.topk.tied", nTied)[:0]
			items := s.items
			w := 0
			for _, it := range items {
				if it.Count > thrCount {
					items[w] = it
					w++
				} else if it.Count == thrCount {
					tiedTmp = append(tiedTmp, it)
				}
			}
			copy(items[nSel:], tiedTmp)
			s.nSel, s.nTied = nSel, nTied
			s.cur = coll.AllReduceScalarStep(pe, int64(nSel), addI64, s.onI64)
			s.phase = tphNAboveWait
		case tphNAboveWait:
			s.nAb = s.i64
			s.cur = coll.ExScanSumStep(pe, int64(s.nTied), s.onI64)
			s.phase = tphPrevWait
		case tphPrevWait:
			prevTies := s.i64
			needTies := int64(s.k) - s.nAb
			take := min(max(needTies-prevTies, 0), int64(s.nTied))
			tied := s.items[s.nSel : s.nSel+s.nTied]
			sort.Slice(tied, func(i, j int) bool { return tied[i].Key < tied[j].Key })
			s.cur = coll.AllGatherConcatStep(pe, s.items[:s.nSel+int(take)], s.onAll)
			s.phase = tphGatherWait
		case tphGatherWait:
			SortKVDesc(s.res)
			return s.finish(pe, s.res)
		default:
			return nil
		}
	}
}
