package dht

import (
	"testing"

	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/xrand"
)

var peCounts = []int{1, 2, 3, 4, 7, 8, 12}

func localCountsFor(seed int64, rank, universe, items int) map[uint64]int64 {
	rng := xrand.NewPE(seed, rank)
	m := map[uint64]int64{}
	for i := 0; i < items; i++ {
		m[uint64(rng.Intn(universe))]++
	}
	return m
}

// tableFromMap loads a count map into a fresh Table (test convenience).
func tableFromMap(m map[uint64]int64) *Table {
	t := NewTable(len(m))
	for k, c := range m {
		t.Add(k, c)
	}
	return t
}

func globalExpected(seed int64, p, universe, items int) map[uint64]int64 {
	want := map[uint64]int64{}
	for r := 0; r < p; r++ {
		for k, c := range localCountsFor(seed, r, universe, items) {
			want[k] += c
		}
	}
	return want
}

func TestCountKeysBothRoutes(t *testing.T) {
	for _, mode := range []RouteMode{RouteDirect, RouteHypercube} {
		for _, p := range peCounts {
			want := globalExpected(42, p, 200, 500)
			m := comm.NewMachine(comm.DefaultConfig(p))
			got := make([]map[uint64]int64, p)
			m.MustRun(func(pe *comm.PE) {
				local := localCountsFor(42, pe.Rank(), 200, 500)
				got[pe.Rank()] = CountKeys(pe, local, mode)
			})
			merged := map[uint64]int64{}
			for r, shard := range got {
				for k, c := range shard {
					if Owner(k, p) != r {
						t.Errorf("mode=%d p=%d: key %d landed on %d, owner %d", mode, p, k, r, Owner(k, p))
					}
					merged[k] += c
				}
			}
			if len(merged) != len(want) {
				t.Fatalf("mode=%d p=%d: %d distinct keys, want %d", mode, p, len(merged), len(want))
			}
			for k, c := range want {
				if merged[k] != c {
					t.Errorf("mode=%d p=%d: key %d count %d, want %d", mode, p, k, merged[k], c)
				}
			}
		}
	}
}

func TestCountKeysEmpty(t *testing.T) {
	m := comm.NewMachine(comm.DefaultConfig(4))
	m.MustRun(func(pe *comm.PE) {
		got := CountKeys(pe, nil, RouteHypercube)
		if len(got) != 0 {
			t.Errorf("empty insert produced %v", got)
		}
	})
}

func TestHypercubeVolumeAdvantageOnSharedKeys(t *testing.T) {
	// When all PEs count the same keys, per-step aggregation should keep
	// hypercube volume below direct delivery's p copies.
	const p = 16
	const universe = 64
	run := func(mode RouteMode) int64 {
		m := comm.NewMachine(comm.DefaultConfig(p))
		m.MustRun(func(pe *comm.PE) {
			local := map[uint64]int64{}
			for k := 0; k < universe; k++ {
				local[uint64(k)] = int64(pe.Rank() + 1)
			}
			CountKeys(pe, local, mode)
		})
		return m.Stats().MaxRecvWords
	}
	direct, hyper := run(RouteDirect), run(RouteHypercube)
	if hyper >= direct {
		t.Errorf("hypercube bottleneck volume %d not below direct %d", hyper, direct)
	}
}

func TestMixDistributesOwners(t *testing.T) {
	const p = 8
	counts := make([]int, p)
	for k := uint64(0); k < 8000; k++ {
		counts[Owner(k, p)]++
	}
	for r, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("owner %d got %d/8000 keys; hash is skewed", r, c)
		}
	}
}

func TestSBFCountsMatch(t *testing.T) {
	for _, p := range []int{1, 4, 6} {
		want := globalExpected(7, p, 300, 400)
		m := comm.NewMachine(comm.DefaultConfig(p))
		cellsByPE := make([]map[uint32]int64, p)
		m.MustRun(func(pe *comm.PE) {
			local := tableFromMap(localCountsFor(7, pe.Rank(), 300, 400))
			s := BuildSBF(pe, local)
			local.Release()
			cells := map[uint32]int64{}
			s.Cells.ForEach(func(cell uint64, c int64) { cells[uint32(cell)] = c })
			s.Release()
			cellsByPE[pe.Rank()] = cells
		})
		// Cell sums must equal the key-count sums grouped by cell
		// (collisions merge, never lose).
		wantCells := map[uint32]int64{}
		for k, c := range want {
			wantCells[cellOf(k)] += c
		}
		gotCells := map[uint32]int64{}
		for r, cells := range cellsByPE {
			for cell, c := range cells {
				if cellOwner(cell, p) != r {
					t.Errorf("p=%d: cell %d on wrong PE", p, cell)
				}
				gotCells[cell] += c
			}
		}
		if len(gotCells) != len(wantCells) {
			t.Fatalf("p=%d: %d cells, want %d", p, len(gotCells), len(wantCells))
		}
		for cell, c := range wantCells {
			if gotCells[cell] != c {
				t.Errorf("p=%d: cell %d count %d, want %d", p, cell, gotCells[cell], c)
			}
		}
	}
}

func TestSBFResolveSplitsCollisions(t *testing.T) {
	const p = 4
	want := globalExpected(11, p, 100, 300)
	m := comm.NewMachine(comm.DefaultConfig(p))
	resolvedByPE := make([][]KV, p)
	m.MustRun(func(pe *comm.PE) {
		local := tableFromMap(localCountsFor(11, pe.Rank(), 100, 300))
		s := BuildSBF(pe, local)
		local.Release()
		// Resolve every cell: must reconstruct the full exact table.
		var cells []uint32
		for k := range want {
			cells = append(cells, cellOf(k))
		}
		resolvedByPE[pe.Rank()] = s.Resolve(cells)
		s.Release()
	})
	for r := 0; r < p; r++ {
		got := map[uint64]int64{}
		for _, kv := range resolvedByPE[r] {
			got[kv.Key] += kv.Count
		}
		if len(got) != len(want) {
			t.Fatalf("PE %d resolved %d keys, want %d", r, len(got), len(want))
		}
		for k, c := range want {
			if got[k] != c {
				t.Errorf("PE %d: key %d resolved to %d, want %d", r, k, got[k], c)
			}
		}
	}
}

func TestSBFWireFormatIsOneWord(t *testing.T) {
	// The refinement's raison d'être: a cell must cost 1 word vs KV's 2.
	if w := coll.WordsOf[HC](); w != 1 {
		t.Errorf("HC costs %d words, want 1", w)
	}
	if w := coll.WordsOf[KV](); w != 2 {
		t.Errorf("KV costs %d words, want 2", w)
	}
}
