package dht

import (
	"fmt"
	"math/bits"
	"slices"

	"commtopk/internal/commbuf"
)

// Table is an open-addressing uint64 → int64 count table whose slot and
// control arrays are pooled buffers (internal/commbuf). The
// frequent-objects and sum-aggregation layers build and discard a count
// table per query — and, on the hypercube insertion route, one per
// routing step — so the Go map they used churned O(distinct keys) of
// allocation per query. A Table recycles its arrays through the pool:
// steady-state queries allocate nothing for counting.
//
// The probe loop is cache-conscious in the SwissTable style: liveness and
// a 7-bit hash tag live in a separate control array, one byte per slot,
// packed eight to a uint64 word so a whole group of eight slots is
// tag-matched with three word ops (SWAR zero-byte finder) before any
// 16-byte slot is touched. Slots store only {key, val} — no liveness
// byte, so a cache line holds four of them instead of two — and a probe
// walks groups linearly, stopping at the first group containing an empty
// byte (the table never deletes, so an empty byte ends every probe
// chain). Tag mismatches are rejected eight at a time without leaving the
// control line; the slot array is read only for the (rare) tag hits.
//
// SumTable is the same structure over float64 values, for the
// sum-aggregation layer's per-key value totals (Section 8.1) — the last
// query-path structure that was still a Go map.
//
// Iteration (ForEach, AppendKVs) is in slot order, which is a pure
// function of the insertion sequence — deterministic wherever the
// insertions are, unlike Go map iteration; SortedKeys gives the
// ascending-key order the RNG-consuming passes need. Keys hash through
// Mix, the same finalizer that shards keys across PEs: the group index
// comes from its low bits, the control tag from its top seven.
//
// A Table is not safe for concurrent use; like all per-PE state it lives
// on one PE at a time. Call Release to return the arrays to the pool (the
// zero Table and a released Table are both usable again and simply
// re-acquire storage on first insert).
type Table struct {
	tableOf[int64]
}

// NewTable returns a count table pre-sized for about hint live keys.
func NewTable(hint int) *Table {
	t := &Table{}
	t.presize(hint)
	return t
}

// AppendKVs appends the live entries to dst in slot order.
func (t *Table) AppendKVs(dst []KV) []KV {
	t.ForEach(func(k uint64, c int64) {
		dst = append(dst, KV{Key: k, Count: c})
	})
	return dst
}

// SumTable is Table over float64 values: uint64 → float64 value sums
// (see Table's doc). The zero value is usable.
type SumTable struct {
	tableOf[float64]
}

// NewSumTable returns a value-sum table pre-sized for about hint keys.
func NewSumTable(hint int) *SumTable {
	t := &SumTable{}
	t.presize(hint)
	return t
}

// tableOf is the open-addressing engine shared by Table and SumTable.
//
// ctrl holds one byte per slot, eight slots to a word: 0x00 for empty,
// 0x80|tag for live, where tag is the top seven bits of Mix(key). slots
// is never cleared — a slot's bytes are meaningful only while its control
// byte is live, so Reset and grow touch just the control words (n/8 words
// instead of n slots).
type tableOf[V int64 | float64] struct {
	ctrl  *[]uint64
	slots *[]slotOf[V]
	used  int
	total V
}

type slotOf[V int64 | float64] struct {
	key uint64
	val V
}

const (
	ctrlLive = 0x80               // high bit of every live control byte
	lowBytes = 0x0101010101010101 // SWAR broadcast constants
	highBits = 0x8080808080808080
)

// ctrlTag returns the control byte for a key's hash: live bit + top
// seven hash bits. The group index uses the hash's low bits, so tag and
// placement are independent.
func ctrlTag(h uint64) uint64 { return (h >> 57) | ctrlLive }

// matchWord flags (with the byte's high bit) every zero byte of x.
// Empty-slot detection passes ctrl words directly: live bytes all have
// the high bit set, so the borrow chain cannot false-positive on them and
// the result is exact. Tag matching passes ctrl ^ (tag·lowBytes): a
// matching live byte XORs to zero; a non-matching one may rarely be
// flagged through a borrow, which costs only a key compare.
func matchWord(x uint64) uint64 { return (x - lowBytes) &^ x & highBits }

func (t *tableOf[V]) presize(hint int) {
	if hint > 0 {
		t.grow(slotsFor(hint))
	}
}

// slotsFor returns the power-of-two slot count that keeps hint keys
// under the ~2/3 load-factor ceiling.
func slotsFor(hint int) int {
	n := 16
	for n*2 < hint*3 {
		n <<= 1
	}
	return n
}

// Len returns the number of live keys.
func (t *tableOf[V]) Len() int { return t.used }

// Total returns the sum of all counts/values — maintained incrementally,
// so realized sample sizes and value masses cost O(1) instead of a full
// scan.
func (t *tableOf[V]) Total() V { return t.total }

// find returns the index of the slot holding key (live=true) or of the
// first empty slot on key's probe chain (live=false). Group-at-a-time:
// each iteration tag-matches eight control bytes in three word ops, reads
// the slot array only on tag hits, and terminates at the first group
// containing an empty byte. The control and slot slices are loaded into
// locals once, hoisting the pointer-chase and length loads out of the
// probe loop. Requires a non-nil slot array.
func (t *tableOf[V]) find(key uint64) (idx int, live bool) {
	ctrl := *t.ctrl
	slots := *t.slots
	h := Mix(key)
	gm := uint64(len(ctrl) - 1)
	tagw := ctrlTag(h) * lowBytes
	for gi := h & gm; ; gi = (gi + 1) & gm {
		w := ctrl[gi]
		for m := matchWord(w ^ tagw); m != 0; m &= m - 1 {
			i := int(gi)<<3 + bits.TrailingZeros64(m)>>3
			if slots[i].key == key {
				return i, true
			}
		}
		if e := matchWord(w); e != 0 {
			return int(gi)<<3 + bits.TrailingZeros64(e)>>3, false
		}
	}
}

// markLive publishes slot idx as holding key in the control array.
func (t *tableOf[V]) markLive(idx int, key uint64) {
	(*t.ctrl)[idx>>3] |= ctrlTag(Mix(key)) << uint((idx&7)<<3)
}

// Add increments key's count by delta, inserting it if absent.
func (t *tableOf[V]) Add(key uint64, delta V) {
	t.total += delta
	if t.slots == nil {
		t.grow(16)
	}
	idx, live := t.find(key)
	if !live {
		if t.ensure() {
			idx, _ = t.find(key)
		}
		(*t.slots)[idx] = slotOf[V]{key: key}
		t.markLive(idx, key)
		t.used++
	}
	(*t.slots)[idx].val += delta
}

// Set stores val for key, replacing any previous value. Total tracks the
// stored values like Add's deltas would.
func (t *tableOf[V]) Set(key uint64, val V) {
	if t.slots == nil {
		t.grow(16)
	}
	idx, live := t.find(key)
	if !live {
		if t.ensure() {
			idx, _ = t.find(key)
		}
		(*t.slots)[idx] = slotOf[V]{key: key}
		t.markLive(idx, key)
		t.used++
	} else {
		t.total -= (*t.slots)[idx].val
	}
	(*t.slots)[idx].val = val
	t.total += val
}

// Get returns key's count and whether it is present.
func (t *tableOf[V]) Get(key uint64) (V, bool) {
	if t.slots == nil || t.used == 0 {
		return 0, false
	}
	idx, live := t.find(key)
	if !live {
		return 0, false
	}
	return (*t.slots)[idx].val, true
}

// ensure grows the table if the next insert would push the load factor
// past ~2/3, reporting whether a rehash happened (invalidating indices).
func (t *tableOf[V]) ensure() bool {
	if t.slots != nil && (t.used+1)*3 <= len(*t.slots)*2 {
		return false
	}
	n := 16
	if t.slots != nil {
		n = len(*t.slots) * 2
	}
	t.grow(n)
	return true
}

// grow rehashes into pooled control/slot arrays of exactly n
// (power-of-two, ≥ 16) slots, recycling the previous arrays. Only the
// control words are cleared; slot bytes are garbage until marked live.
func (t *tableOf[V]) grow(n int) {
	if n&(n-1) != 0 || n < 16 {
		panic(fmt.Sprintf("dht: slot count %d not a power of two ≥ 16", n))
	}
	oldCtrl, oldSlots := t.ctrl, t.slots
	freshCtrl := commbuf.For[uint64]().Get(n >> 3)
	clear(*freshCtrl)
	t.ctrl = freshCtrl
	t.slots = commbuf.For[slotOf[V]]().Get(n)
	if oldCtrl != nil {
		oc, os := *oldCtrl, *oldSlots
		for gi, w := range oc {
			for w != 0 {
				i := bits.TrailingZeros64(w) >> 3
				w &^= 0xff << uint(i<<3)
				s := os[gi<<3+i]
				idx, _ := t.find(s.key)
				(*t.slots)[idx] = s
				t.markLive(idx, s.key)
			}
		}
		commbuf.For[uint64]().Put(oldCtrl)
		commbuf.For[slotOf[V]]().Put(oldSlots)
	}
}

// ForEach calls f for every live (key, value) pair in slot order. f must
// not mutate the table.
func (t *tableOf[V]) ForEach(f func(key uint64, val V)) {
	if t.slots == nil {
		return
	}
	slots := *t.slots
	for gi, w := range *t.ctrl {
		for w != 0 {
			i := bits.TrailingZeros64(w) >> 3
			w &^= 0xff << uint(i<<3)
			s := slots[gi<<3+i]
			f(s.key, s.val)
		}
	}
}

// SortedKeys appends every live key to dst and sorts the result
// ascending — the deterministic iteration order for passes that consume
// RNG deviates per key (sampling) or build wire batches, replacing the
// build-a-slice-and-sort dance every such caller used to do on Go maps.
func (t *tableOf[V]) SortedKeys(dst []uint64) []uint64 {
	t.ForEach(func(k uint64, _ V) { dst = append(dst, k) })
	slices.Sort(dst)
	return dst
}

// Reset clears the table for reuse, keeping its arrays. Only the control
// words need zeroing — 1/24th of the footprint the old slot-clearing
// Reset touched.
func (t *tableOf[V]) Reset() {
	if t.ctrl != nil {
		clear(*t.ctrl)
	}
	t.used, t.total = 0, 0
}

// Release returns the arrays to the pool; the table remains usable and
// re-acquires storage on the next insert.
func (t *tableOf[V]) Release() {
	if t.slots != nil {
		commbuf.For[uint64]().Put(t.ctrl)
		commbuf.For[slotOf[V]]().Put(t.slots)
		t.ctrl, t.slots = nil, nil
	}
	t.used, t.total = 0, 0
}
