package dht

import (
	"fmt"
	"slices"

	"commtopk/internal/commbuf"
)

// Table is an open-addressing (linear-probing) uint64 → int64 count
// table whose slot array is a pooled buffer (internal/commbuf). The
// frequent-objects and sum-aggregation layers build and discard a count
// table per query — and, on the hypercube insertion route, one per
// routing step — so the Go map they used churned O(distinct keys) of
// allocation per query. A Table recycles its slots through the pool:
// steady-state queries allocate nothing for counting.
//
// SumTable is the same structure over float64 values, for the
// sum-aggregation layer's per-key value totals (Section 8.1) — the last
// query-path structure that was still a Go map.
//
// Iteration (ForEach, AppendKVs) is in slot order, which is a pure
// function of the insertion sequence — deterministic wherever the
// insertions are, unlike Go map iteration; SortedKeys gives the
// ascending-key order the RNG-consuming passes need. Keys hash through
// Mix, the same finalizer that shards keys across PEs.
//
// A Table is not safe for concurrent use; like all per-PE state it lives
// on one PE at a time. Call Release to return the slots to the pool (the
// zero Table and a released Table are both usable again and simply
// re-acquire slots on first insert).
type Table struct {
	tableOf[int64]
}

// NewTable returns a count table pre-sized for about hint live keys.
func NewTable(hint int) *Table {
	t := &Table{}
	t.presize(hint)
	return t
}

// AppendKVs appends the live entries to dst in slot order.
func (t *Table) AppendKVs(dst []KV) []KV {
	t.ForEach(func(k uint64, c int64) {
		dst = append(dst, KV{Key: k, Count: c})
	})
	return dst
}

// SumTable is Table over float64 values: uint64 → float64 value sums
// (see Table's doc). The zero value is usable.
type SumTable struct {
	tableOf[float64]
}

// NewSumTable returns a value-sum table pre-sized for about hint keys.
func NewSumTable(hint int) *SumTable {
	t := &SumTable{}
	t.presize(hint)
	return t
}

// tableOf is the open-addressing engine shared by Table and SumTable.
type tableOf[V int64 | float64] struct {
	slots *[]slotOf[V]
	used  int
	total V
}

type slotOf[V int64 | float64] struct {
	key  uint64
	val  V
	live bool
}

func (t *tableOf[V]) presize(hint int) {
	if hint > 0 {
		t.grow(slotsFor(hint))
	}
}

// slotsFor returns the power-of-two slot count that keeps hint keys
// under the ~2/3 load-factor ceiling.
func slotsFor(hint int) int {
	n := 16
	for n*2 < hint*3 {
		n <<= 1
	}
	return n
}

// Len returns the number of live keys.
func (t *tableOf[V]) Len() int { return t.used }

// Total returns the sum of all counts/values — maintained incrementally,
// so realized sample sizes and value masses cost O(1) instead of a full
// scan.
func (t *tableOf[V]) Total() V { return t.total }

// Add increments key's count by delta, inserting it if absent.
func (t *tableOf[V]) Add(key uint64, delta V) {
	t.total += delta
	slot := t.probe(key)
	if !slot.live {
		if t.ensure() {
			slot = t.probe(key)
		}
		slot.key, slot.val, slot.live = key, 0, true
		t.used++
	}
	slot.val += delta
}

// Set stores val for key, replacing any previous value. Total tracks the
// stored values like Add's deltas would.
func (t *tableOf[V]) Set(key uint64, val V) {
	slot := t.probe(key)
	if !slot.live {
		if t.ensure() {
			slot = t.probe(key)
		}
		slot.key, slot.live = key, true
		t.used++
	} else {
		t.total -= slot.val
	}
	slot.val = val
	t.total += val
}

// Get returns key's count and whether it is present.
func (t *tableOf[V]) Get(key uint64) (V, bool) {
	if t.slots == nil || t.used == 0 {
		return 0, false
	}
	slot := t.probe(key)
	return slot.val, slot.live
}

// probe returns the slot holding key, or the empty slot where it would
// be inserted. Requires a non-nil slot array unless called via ensure.
func (t *tableOf[V]) probe(key uint64) *slotOf[V] {
	if t.slots == nil {
		t.grow(16)
	}
	s := *t.slots
	mask := uint64(len(s) - 1)
	for i := Mix(key) & mask; ; i = (i + 1) & mask {
		if !s[i].live || s[i].key == key {
			return &s[i]
		}
	}
}

// ensure grows the table if the next insert would push the load factor
// past ~2/3, reporting whether a rehash happened (invalidating slots).
func (t *tableOf[V]) ensure() bool {
	if t.slots != nil && (t.used+1)*3 <= len(*t.slots)*2 {
		return false
	}
	n := 16
	if t.slots != nil {
		n = len(*t.slots) * 2
	}
	t.grow(n)
	return true
}

// grow rehashes into a pooled slot array of exactly n (power-of-two)
// slots, recycling the previous array.
func (t *tableOf[V]) grow(n int) {
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("dht: slot count %d not a power of two", n))
	}
	old := t.slots
	fresh := commbuf.For[slotOf[V]]().Get(n)
	clear(*fresh)
	t.slots = fresh
	if old != nil {
		mask := uint64(n - 1)
		for _, s := range *old {
			if !s.live {
				continue
			}
			i := Mix(s.key) & mask
			for (*fresh)[i].live {
				i = (i + 1) & mask
			}
			(*fresh)[i] = s
		}
		commbuf.For[slotOf[V]]().Put(old)
	}
}

// ForEach calls f for every live (key, value) pair in slot order. f must
// not mutate the table.
func (t *tableOf[V]) ForEach(f func(key uint64, val V)) {
	if t.slots == nil {
		return
	}
	for _, s := range *t.slots {
		if s.live {
			f(s.key, s.val)
		}
	}
}

// SortedKeys appends every live key to dst and sorts the result
// ascending — the deterministic iteration order for passes that consume
// RNG deviates per key (sampling) or build wire batches, replacing the
// build-a-slice-and-sort dance every such caller used to do on Go maps.
func (t *tableOf[V]) SortedKeys(dst []uint64) []uint64 {
	t.ForEach(func(k uint64, _ V) { dst = append(dst, k) })
	slices.Sort(dst)
	return dst
}

// Reset clears the table for reuse, keeping its slot array.
func (t *tableOf[V]) Reset() {
	if t.slots != nil {
		clear(*t.slots)
	}
	t.used, t.total = 0, 0
}

// Release returns the slot array to the pool; the table remains usable
// and re-acquires slots on the next insert.
func (t *tableOf[V]) Release() {
	if t.slots != nil {
		commbuf.For[slotOf[V]]().Put(t.slots)
		t.slots = nil
	}
	t.used, t.total = 0, 0
}
