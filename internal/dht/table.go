package dht

import (
	"fmt"

	"commtopk/internal/commbuf"
)

// Table is an open-addressing (linear-probing) uint64 → int64 count
// table whose slot array is a pooled buffer (internal/commbuf). The
// frequent-objects and sum-aggregation layers build and discard a count
// table per query — and, on the hypercube insertion route, one per
// routing step — so the Go map they used churned O(distinct keys) of
// allocation per query. A Table recycles its slots through the pool:
// steady-state queries allocate nothing for counting.
//
// Iteration (ForEach, AppendKVs) is in slot order, which is a pure
// function of the insertion sequence — deterministic wherever the
// insertions are, unlike Go map iteration. Keys hash through Mix, the
// same finalizer that shards keys across PEs.
//
// A Table is not safe for concurrent use; like all per-PE state it lives
// on one PE at a time. Call Release to return the slots to the pool (the
// zero Table and a released Table are both usable again and simply
// re-acquire slots on first insert).
type Table struct {
	slots *[]tableSlot
	used  int
	total int64
}

type tableSlot struct {
	key  uint64
	val  int64
	live bool
}

// NewTable returns a table pre-sized for about hint live keys.
func NewTable(hint int) *Table {
	t := &Table{}
	if hint > 0 {
		t.grow(slotsFor(hint))
	}
	return t
}

// slotsFor returns the power-of-two slot count that keeps hint keys
// under the ~2/3 load-factor ceiling.
func slotsFor(hint int) int {
	n := 16
	for n*2 < hint*3 {
		n <<= 1
	}
	return n
}

// Len returns the number of live keys.
func (t *Table) Len() int { return t.used }

// Total returns the sum of all counts — maintained incrementally, so
// realized sample sizes cost O(1) instead of a full scan.
func (t *Table) Total() int64 { return t.total }

// Add increments key's count by delta, inserting it if absent.
func (t *Table) Add(key uint64, delta int64) {
	t.total += delta
	slot := t.probe(key)
	if !slot.live {
		if t.ensure() {
			slot = t.probe(key)
		}
		slot.key, slot.val, slot.live = key, 0, true
		t.used++
	}
	slot.val += delta
}

// Set stores val for key, replacing any previous value. Total tracks the
// stored values like Add's deltas would.
func (t *Table) Set(key uint64, val int64) {
	slot := t.probe(key)
	if !slot.live {
		if t.ensure() {
			slot = t.probe(key)
		}
		slot.key, slot.live = key, true
		t.used++
	} else {
		t.total -= slot.val
	}
	slot.val = val
	t.total += val
}

// Get returns key's count and whether it is present.
func (t *Table) Get(key uint64) (int64, bool) {
	if t.slots == nil || t.used == 0 {
		return 0, false
	}
	slot := t.probe(key)
	return slot.val, slot.live
}

// probe returns the slot holding key, or the empty slot where it would
// be inserted. Requires a non-nil slot array unless called via ensure.
func (t *Table) probe(key uint64) *tableSlot {
	if t.slots == nil {
		t.grow(16)
	}
	s := *t.slots
	mask := uint64(len(s) - 1)
	for i := Mix(key) & mask; ; i = (i + 1) & mask {
		if !s[i].live || s[i].key == key {
			return &s[i]
		}
	}
}

// ensure grows the table if the next insert would push the load factor
// past ~2/3, reporting whether a rehash happened (invalidating slots).
func (t *Table) ensure() bool {
	if t.slots != nil && (t.used+1)*3 <= len(*t.slots)*2 {
		return false
	}
	n := 16
	if t.slots != nil {
		n = len(*t.slots) * 2
	}
	t.grow(n)
	return true
}

// grow rehashes into a pooled slot array of exactly n (power-of-two)
// slots, recycling the previous array.
func (t *Table) grow(n int) {
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("dht: slot count %d not a power of two", n))
	}
	old := t.slots
	fresh := commbuf.For[tableSlot]().Get(n)
	clear(*fresh)
	t.slots = fresh
	if old != nil {
		mask := uint64(n - 1)
		for _, s := range *old {
			if !s.live {
				continue
			}
			i := Mix(s.key) & mask
			for (*fresh)[i].live {
				i = (i + 1) & mask
			}
			(*fresh)[i] = s
		}
		commbuf.For[tableSlot]().Put(old)
	}
}

// ForEach calls f for every live (key, count) pair in slot order. f must
// not mutate the table.
func (t *Table) ForEach(f func(key uint64, count int64)) {
	if t.slots == nil {
		return
	}
	for _, s := range *t.slots {
		if s.live {
			f(s.key, s.val)
		}
	}
}

// AppendKVs appends the live entries to dst in slot order.
func (t *Table) AppendKVs(dst []KV) []KV {
	t.ForEach(func(k uint64, c int64) {
		dst = append(dst, KV{Key: k, Count: c})
	})
	return dst
}

// Reset clears the table for reuse, keeping its slot array.
func (t *Table) Reset() {
	if t.slots != nil {
		clear(*t.slots)
	}
	t.used, t.total = 0, 0
}

// Release returns the slot array to the pool; the table remains usable
// and re-acquires slots on the next insert.
func (t *Table) Release() {
	if t.slots != nil {
		commbuf.For[tableSlot]().Put(t.slots)
		t.slots = nil
	}
	t.used, t.total = 0, 0
}
