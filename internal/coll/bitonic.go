package coll

import (
	"fmt"
	"sort"

	"commtopk/internal/comm"
)

// mergeElem travels through the bitonic network: a sort key plus the
// origin it reports its final position back to.
type mergeElem struct {
	Key    uint64
	Origin int32 // contributing PE
	Seq    int32 // 0 = first sequence, 1 = second, -1 = padding
}

// posReport routes a final position back to the element's origin.
type posReport struct {
	Origin int32
	Seq    int32
	Pos    int32
}

// BitonicMergePositions merges two globally sorted sequences — sequence A
// holds aKey of PE r at index r, sequence B holds bKey likewise; both must
// be globally ascending in rank and all 2p keys globally unique — using
// Batcher's bitonic merge network with one compare-exchange round per
// stage: O(α log p) latency and O(1) words per PE per stage, exactly the
// merge step Section 9 of the paper uses to match surplus runs with
// receiving slots. It returns this PE's elements' positions (0-based) in
// the merged order of all 2p keys.
func BitonicMergePositions(pe *comm.PE, aKey, bKey uint64) (posA, posB int) {
	p := pe.P()
	if p == 1 {
		if aKey == bKey {
			panic("coll: BitonicMergePositions requires unique keys")
		}
		if aKey < bKey {
			return 0, 1
		}
		return 1, 0
	}
	// Virtual network size: next power of two ≥ 2p, padded with sentinel
	// elements smaller than every real key (real keys are shifted up by
	// the pad count to guarantee that).
	m := 1
	for m < 2*p {
		m <<= 1
	}
	padPerHalf := m/2 - p
	pads := 2 * padPerHalf
	shift := uint64(pads)
	if aKey > ^uint64(0)-shift || bKey > ^uint64(0)-shift {
		panic("coll: BitonicMergePositions key overflow")
	}

	// Slot layout (ascending-then-descending = bitonic):
	//   [0, padPerHalf)              A-half padding (sentinels, ascending)
	//   [padPerHalf, m/2)            A ascending: slot padPerHalf+r = A of PE r
	//   [m/2, m/2+p)                 B descending: slot m/2+i = B of PE p-1-i
	//   [m/2+p, m)                   B-half padding (sentinels, descending)
	ownerOf := func(q int) int {
		switch {
		case q < padPerHalf:
			return q % p
		case q < m/2:
			return q - padPerHalf
		case q < m/2+p:
			return p - 1 - (q - m/2)
		default:
			return (q - m/2 - p) % p
		}
	}
	// Sentinel keys: A-half pads ascending 0..padPerHalf-1; B-half pads
	// descending padPerHalf-1..0 offset into the second pad block — all
	// distinct and below every shifted real key.
	padKey := func(q int) uint64 {
		if q < padPerHalf {
			return uint64(q)
		}
		return uint64(padPerHalf) + uint64(m-1-q)
	}

	// My slots and initial contents.
	slots := map[int]mergeElem{}
	for q := 0; q < m; q++ {
		if ownerOf(q) != pe.Rank() {
			continue
		}
		switch {
		case q >= padPerHalf && q < m/2:
			slots[q] = mergeElem{Key: aKey + shift, Origin: int32(pe.Rank()), Seq: 0}
		case q >= m/2 && q < m/2+p:
			slots[q] = mergeElem{Key: bKey + shift, Origin: int32(pe.Rank()), Seq: 1}
		default:
			slots[q] = mergeElem{Key: padKey(q), Origin: int32(ownerOf(q)), Seq: -1}
		}
	}

	tag := pe.NextCollTag()
	for h := m / 2; h >= 1; h /= 2 {
		// My pairings this stage, in pair-id order so that per-partner
		// message sequences agree on both ends.
		type pairing struct {
			low, mine int
		}
		var pairs []pairing
		for q := range slots {
			pairs = append(pairs, pairing{low: q &^ h, mine: q})
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].low != pairs[j].low {
				return pairs[i].low < pairs[j].low
			}
			return pairs[i].mine < pairs[j].mine
		})
		for _, pr := range pairs {
			q := pr.mine
			partner := q ^ h
			po := ownerOf(partner)
			if po == pe.Rank() {
				// Local compare-exchange, handled once from the low slot.
				if q < partner {
					lo, hi := slots[q], slots[partner]
					if hi.Key < lo.Key {
						slots[q], slots[partner] = hi, lo
					}
				}
				continue
			}
			mine := slots[q]
			rx, _ := pe.SendRecv(po, mine, 2, po, tag)
			theirs := rx.(mergeElem)
			if q < partner {
				if theirs.Key < mine.Key {
					slots[q] = theirs
				}
			} else {
				if theirs.Key > mine.Key {
					slots[q] = theirs
				}
			}
		}
	}

	// Report final positions back to origins (positions among the real
	// elements: pads occupy the first `pads` merged slots).
	var reports []posReport
	for q, e := range slots {
		if e.Seq < 0 {
			continue
		}
		pos := q - pads
		if pos < 0 {
			panic(fmt.Sprintf("coll: real element sorted into pad zone (slot %d)", q))
		}
		reports = append(reports, posReport{Origin: e.Origin, Seq: e.Seq, Pos: int32(pos)})
	}
	back := RouteCombine(pe, reports, func(r posReport) int { return int(r.Origin) }, nil)
	posA, posB = -1, -1
	for _, r := range back {
		if r.Seq == 0 {
			posA = int(r.Pos)
		} else {
			posB = int(r.Pos)
		}
	}
	if posA < 0 || posB < 0 {
		panic("coll: bitonic merge lost an element (duplicate keys?)")
	}
	return posA, posB
}
