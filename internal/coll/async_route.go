package coll

import (
	"fmt"

	"commtopk/internal/comm"
	"commtopk/internal/commbuf"
)

// Continuation forms of the hypercube router (RouteCombine /
// AllToAllCombine, plus the chunk-framed variants) and the streaming
// chunked all-gather. As in async_vec.go, the engines here are THE
// implementation — the blocking forms in hypercube.go/chunked.go drive
// the same steppers through comm.RunSteps — and the *Step forms deliver
// borrowed results.
//
// The route engine ships every batch as a pooled copy with ownership
// transfer (the receiver recycles it after folding it in), where the old
// blocking direct router sent slices by reference. The meter is
// unchanged — the same sends with the same word counts — and the framing
// makes the engine's internal ping-pong buffers safe to reuse across
// rounds: nothing a partner may still be reading is ever overwritten.

// routeStep phases.
const (
	rtphInit = iota
	rtphHighMain   // high rank: awaiting its final batch (or its count)
	rtphHighChunks // high rank: draining the final batch's chunk frames
	rtphExtraMain  // low partner: awaiting the folded-in batch (or count)
	rtphExtraChunks
	rtphBit // partition + post + ship for the current hypercube dimension
	rtphBitMain
	rtphBitChunks
	rtphUnfold
	rtphDone
)

// routeStep is the hypercube routing engine as a continuation: fold-in
// of non-power-of-two stragglers, the dimension sweeps with optional
// per-step combine, and the unfold — RouteCombine's schedule, with
// chunk > 0 selecting the chunk-framed shipments of routeCombineChunked
// (a one-word count then ⌈n/chunk⌉ bounded messages per exchange). The
// engine does not self-release: consumers harvest hold, then call
// release. hold's backing is engine-owned (the ping-pong buffers); the
// blocking wrappers copy it out, the *Step forms lend it to out.
type routeStep[T any] struct {
	dest  func(T) int
	cmb   func([]T) []T
	chunk int
	pool  *commbuf.Pool[T]
	tag   comm.Tag
	rank  int
	r     int
	dims  int
	extra int
	bit   int
	peer  int
	hold  []T
	// bufA/bufB are the alternating partition targets (hold aliases at
	// most one of them, never the one being written), shipBuf the staging
	// area for outgoing batches (always copied into pooled messages
	// before sending, so reuse is safe). All three keep their capacity
	// across pooling.
	bufA, bufB []T
	shipBuf    []T
	useA       bool
	need       int // chunk frames: items still to receive this exchange
	h          *comm.RecvHandle
	phase      int
}

// newRouteStep builds the engine; chunk 0 selects direct (unframed)
// exchanges, chunk ≥ 1 the count + chunk framing (validated by the
// chunked entry points).
func newRouteStep[T any](pe *comm.PE, items []T, chunk int, dest func(T) int, cmb func([]T) []T) *routeStep[T] {
	s := comm.GetPooled[routeStep[T]](pe)
	bufA, bufB, ship := s.bufA[:0], s.bufB[:0], s.shipBuf[:0]
	*s = routeStep[T]{dest: dest, cmb: cmb, chunk: chunk, hold: items, bufA: bufA, bufB: bufB, shipBuf: ship}
	return s
}

func (s *routeStep[T]) release(pe *comm.PE) {
	bufA, bufB, ship := s.bufA[:0], s.bufB[:0], s.shipBuf[:0]
	*s = routeStep[T]{bufA: bufA, bufB: bufB, shipBuf: ship}
	comm.PutPooled(pe, s)
}

// flipKeep returns the reset partition target hold does not alias.
func (s *routeStep[T]) flipKeep() []T {
	s.useA = !s.useA
	if s.useA {
		return s.bufA[:0]
	}
	return s.bufB[:0]
}

// storeKeep records the (possibly grown) partition buffer back.
func (s *routeStep[T]) storeKeep(b []T) {
	if s.useA {
		s.bufA = b
	} else {
		s.bufB = b
	}
}

// ship sends items to dst: one pooled-copy message (direct), or the
// count + chunk framing of sendChunked.
func (s *routeStep[T]) ship(pe *comm.PE, dst int, items []T) {
	if s.chunk > 0 {
		sendChunked(pe, dst, s.tag, s.chunk, items)
		return
	}
	sendCopy(pe, s.pool, dst, s.tag, items)
}

// combineHold applies the optional per-step combine hook.
func (s *routeStep[T]) combineHold() {
	if s.cmb != nil {
		s.hold = s.cmb(s.hold)
	}
}

// takeMain consumes the exchange's first message. Direct mode: the whole
// batch — append it onto dst and report done. Chunked mode: the count
// word — record how many items follow and report not-done.
func (s *routeStep[T]) takeMain(dst []T) ([]T, bool) {
	rxAny, _ := s.h.Wait()
	s.h = nil
	if s.chunk > 0 {
		hp := rxAny.(*[]int64)
		s.need = int((*hp)[0])
		commbuf.For[int64]().Put(hp)
		return dst, s.need == 0
	}
	rx := rxAny.(*[]T)
	dst = append(dst, *rx...)
	s.pool.Put(rx)
	return dst, true
}

// takeChunk consumes one chunk frame, appending onto dst.
func (s *routeStep[T]) takeChunk(dst []T) []T {
	rxAny, _ := s.h.Wait()
	s.h = nil
	rx := rxAny.(*[]T)
	dst = append(dst, *rx...)
	s.need -= len(*rx)
	s.pool.Put(rx)
	return dst
}

func (s *routeStep[T]) Step(pe *comm.PE) *comm.RecvHandle {
	p := pe.P()
	for {
		switch s.phase {
		case rtphInit:
			for _, it := range s.hold {
				if d := s.dest(it); d < 0 || d >= p {
					panic(fmt.Sprintf("coll: RouteCombine item with invalid dest %d", d))
				}
			}
			if p == 1 {
				s.combineHold()
				s.phase = rtphDone
				return nil
			}
			s.pool = commbuf.For[T]()
			s.tag = pe.NextCollTag()
			s.rank = pe.Rank()
			s.r = 1
			s.dims = 0
			for s.r*2 <= p {
				s.r *= 2
				s.dims++
			}
			s.extra = p - s.r
			if s.rank >= s.r {
				// Fold-in: hand everything to the low partner, then await the
				// final batch (receive posted before the send so the hand-over
				// and the eventual return overlap).
				s.peer = s.rank - s.r
				s.h = pe.IRecv(s.peer, s.tag)
				s.ship(pe, s.peer, s.hold)
				s.hold = s.flipKeep()
				s.phase = rtphHighMain
				if !s.h.Test() {
					return s.h
				}
				continue
			}
			if s.rank < s.extra {
				s.peer = s.rank + s.r
				s.h = pe.IRecv(s.peer, s.tag)
				s.phase = rtphExtraMain
				if !s.h.Test() {
					return s.h
				}
				continue
			}
			s.bit = 0
			s.phase = rtphBit
		case rtphHighMain:
			var done bool
			s.hold, done = s.takeMain(s.hold)
			if done {
				s.storeKeep(s.hold)
				s.combineHold()
				s.phase = rtphDone
				return nil
			}
			s.phase = rtphHighChunks
		case rtphHighChunks:
			for s.need > 0 {
				if s.h == nil {
					s.h = pe.IRecv(s.peer, s.tag)
					if !s.h.Test() {
						return s.h
					}
				}
				s.hold = s.takeChunk(s.hold)
			}
			s.storeKeep(s.hold)
			s.combineHold()
			s.phase = rtphDone
			return nil
		case rtphExtraMain:
			var done bool
			s.hold, done = s.takeMain(s.hold)
			if done {
				s.combineHold()
				s.bit = 0
				s.phase = rtphBit
				continue
			}
			s.phase = rtphExtraChunks
		case rtphExtraChunks:
			// hold still aliases the caller's items here (the fold-in
			// appends onto it, like the blocking form did) — it must NOT be
			// stored as a keep buffer, or a later partition round would
			// write into the caller's slice.
			for s.need > 0 {
				if s.h == nil {
					s.h = pe.IRecv(s.peer, s.tag)
					if !s.h.Test() {
						return s.h
					}
				}
				s.hold = s.takeChunk(s.hold)
			}
			s.combineHold()
			s.bit = 0
			s.phase = rtphBit
		case rtphBit:
			if s.bit >= s.dims {
				s.phase = rtphUnfold
				continue
			}
			maskBit := 1 << s.bit
			s.peer = s.rank ^ maskBit
			keep := s.flipKeep()
			shipB := s.shipBuf[:0]
			for _, it := range s.hold {
				carrier := s.dest(it)
				if carrier >= s.r {
					carrier -= s.r
				}
				if carrier&maskBit != s.rank&maskBit {
					shipB = append(shipB, it)
				} else {
					keep = append(keep, it)
				}
			}
			s.shipBuf = shipB
			s.hold = keep
			s.h = pe.IRecv(s.peer, s.tag)
			s.ship(pe, s.peer, shipB)
			s.phase = rtphBitMain
			if !s.h.Test() {
				return s.h
			}
		case rtphBitMain:
			var done bool
			s.hold, done = s.takeMain(s.hold)
			if done {
				s.storeKeep(s.hold)
				s.combineHold()
				s.bit++
				s.phase = rtphBit
				continue
			}
			s.phase = rtphBitChunks
		case rtphBitChunks:
			for s.need > 0 {
				if s.h == nil {
					s.h = pe.IRecv(s.peer, s.tag)
					if !s.h.Test() {
						return s.h
					}
				}
				s.hold = s.takeChunk(s.hold)
			}
			s.storeKeep(s.hold)
			s.combineHold()
			s.bit++
			s.phase = rtphBit
		case rtphUnfold:
			if s.rank < s.extra {
				// Everything for rank+r goes back out.
				mine := s.flipKeep()
				theirs := s.shipBuf[:0]
				for _, it := range s.hold {
					if s.dest(it) == s.rank+s.r {
						theirs = append(theirs, it)
					} else {
						mine = append(mine, it)
					}
				}
				s.shipBuf = theirs
				s.ship(pe, s.rank+s.r, theirs)
				s.hold = mine
				s.storeKeep(mine)
			}
			s.combineHold()
			s.phase = rtphDone
			return nil
		default:
			return nil
		}
	}
}

// routeResult clones the engine's held batch into a caller-owned slice
// (nil stays nil for an empty result, matching the old appends-from-nil
// behavior of the blocking router).
func (s *routeStep[T]) routeResult() []T {
	return append([]T(nil), s.hold...)
}

// routeOutStep — the self-releasing wrapper behind the public route
// steppers.
type routeOutStep[T any] struct {
	items []T
	chunk int
	dest  func(T) int
	cmb   func([]T) []T
	out   func([]T)
	eng   *routeStep[T]
}

func newRouteOutStep[T any](pe *comm.PE, items []T, chunk int, dest func(T) int, cmb func([]T) []T, out func([]T)) comm.Stepper {
	s := comm.GetPooled[routeOutStep[T]](pe)
	*s = routeOutStep[T]{items: items, chunk: chunk, dest: dest, cmb: cmb, out: out}
	return s
}

func (s *routeOutStep[T]) Step(pe *comm.PE) *comm.RecvHandle {
	if s.eng == nil {
		s.eng = newRouteStep(pe, s.items, s.chunk, s.dest, s.cmb)
	}
	if h := s.eng.Step(pe); h != nil {
		return h
	}
	out := s.out
	eng := s.eng
	*s = routeOutStep[T]{}
	comm.PutPooled(pe, s)
	if out != nil {
		out(eng.hold)
	}
	eng.release(pe)
	return nil
}

// RouteCombineStep is the continuation form of RouteCombine: out
// receives this PE's routed batch as a borrowed view valid only during
// the call (the blocking form's result is caller-owned). dest and
// combine follow RouteCombine's contract. Steady-state allocation-free
// (modulo the caller's own combine hook).
func RouteCombineStep[T any](pe *comm.PE, items []T, dest func(T) int, combine func([]T) []T, out func([]T)) comm.Stepper {
	return newRouteOutStep(pe, items, 0, dest, combine, out)
}

// AllToAllCombineStep is the continuation form of AllToAllCombine.
func AllToAllCombineStep[T any](pe *comm.PE, items []Routed[T], combine func([]Routed[T]) []Routed[T], out func([]Routed[T])) comm.Stepper {
	return newRouteOutStep(pe, items, 0, routedDest[T], combine, out)
}

// RouteCombineChunkedStep is the continuation form of the chunk-framed
// router underneath AllToAllCombineChunked.
func RouteCombineChunkedStep[T any](pe *comm.PE, items []T, chunk int, dest func(T) int, combine func([]T) []T, out func([]T)) comm.Stepper {
	if chunk < 1 {
		panic(fmt.Sprintf("coll: chunk %d < 1", chunk))
	}
	return newRouteOutStep(pe, items, chunk, dest, combine, out)
}

// AllToAllCombineChunkedStep is the continuation form of
// AllToAllCombineChunked.
func AllToAllCombineChunkedStep[T any](pe *comm.PE, items []Routed[T], chunk int, combine func([]Routed[T]) []Routed[T], out func([]Routed[T])) comm.Stepper {
	if chunk < 1 {
		panic(fmt.Sprintf("coll: chunk %d < 1", chunk))
	}
	return newRouteOutStep(pe, items, chunk, routedDest[T], combine, out)
}

// routedDest is AllToAllCombine's dest function (package-level so the
// stepper factories do not allocate a closure per op).
func routedDest[T any](it Routed[T]) int { return it.Dest }

// ---------------------------------------------------------------------------
// Chunked all-gather
// ---------------------------------------------------------------------------

// agChunkedStep phases.
const (
	acphInit = iota
	acphBruck
	acphBruckWait
	acphRing
	acphRingWait
	acphDone
)

// agChunkedStep is AllGatherChunked as a continuation (and its
// implementation — the blocking form drives this stepper): the
// intra-group Bruck all-gather followed by the inter-group ring, visit
// semantics unchanged.
type agChunkedStep[T any] struct {
	data     []T
	chunk    int
	visit    func(src int, block []T)
	ipool    *commbuf.Pool[int64]
	dpool    *commbuf.Pool[T]
	wpool    *commbuf.Pool[bruckMsg[T]]
	tag      comm.Tag
	c, gb    int
	li, g    int
	d        int
	ri       int
	dst, src int
	lensPtr  *[]int64
	lens     []int64
	arenaPtr *[]T
	arena    []T
	cur      *[]bruckMsg[T]
	h        *comm.RecvHandle
	phase    int
}

// AllGatherChunkedStep is the continuation form of AllGatherChunked:
// visit is called exactly once per rank with a view valid only during
// the call, per-PE memory O(m + chunk·m̄). Steady-state allocation-free
// (modulo the caller's visit hook).
func AllGatherChunkedStep[T any](pe *comm.PE, data []T, chunk int, visit func(src int, block []T)) comm.Stepper {
	s := comm.GetPooled[agChunkedStep[T]](pe)
	*s = agChunkedStep[T]{data: data, chunk: chunk, visit: visit}
	return s
}

func (s *agChunkedStep[T]) finish(pe *comm.PE) *comm.RecvHandle {
	*s = agChunkedStep[T]{}
	comm.PutPooled(pe, s)
	return nil
}

func (s *agChunkedStep[T]) Step(pe *comm.PE) *comm.RecvHandle {
	p := pe.P()
	for {
		switch s.phase {
		case acphInit:
			if p == 1 {
				visit := s.visit
				data := s.data
				*s = agChunkedStep[T]{}
				comm.PutPooled(pe, s)
				visit(0, data)
				return nil
			}
			rank := pe.Rank()
			s.c = groupSize(p, s.chunk)
			s.gb = rank - rank%s.c
			s.li = rank - s.gb
			s.ipool = commbuf.For[int64]()
			s.dpool = commbuf.For[T]()
			s.wpool = commbuf.For[bruckMsg[T]]()

			// Phase 1 — intra-group Bruck all-gather with pooled-copy
			// payloads (these batches get forwarded in phase 2, so
			// ownership must travel). Afterwards lens/arena hold the
			// group's blocks in shifted order li, li+1, … mod c.
			s.tag = pe.NextCollTag()
			s.lensPtr = s.ipool.GetCap(s.c)
			s.lens = append(*s.lensPtr, int64(len(s.data)))
			s.arenaPtr = s.dpool.GetCap(2*len(s.data) + 8)
			s.arena = append(*s.arenaPtr, s.data...)
			s.d = 1
			s.phase = acphBruck
		case acphBruck:
			if s.d >= s.c {
				s.rotateAndStartRing(pe)
				continue
			}
			dst := s.gb + (s.li-s.d+s.c)%s.c
			src := s.gb + (s.li+s.d)%s.c
			cnt := min(s.d, s.c-s.d)
			var elems int64
			for _, l := range s.lens[:cnt] {
				elems += l
			}
			s.h = pe.IRecv(src, s.tag)
			lp := s.ipool.Get(cnt)
			copy(*lp, s.lens[:cnt])
			dp := s.dpool.Get(int(elems))
			copy(*dp, s.arena[:elems])
			wp := s.wpool.Get(1)
			(*wp)[0] = bruckMsg[T]{lens: lp, data: dp}
			pe.Send(dst, s.tag, wp, int64(cnt)+elems*WordsOf[T]())
			s.phase = acphBruckWait
			if !s.h.Test() {
				return s.h
			}
		case acphBruckWait:
			rxAny, _ := s.h.Wait()
			s.h = nil
			rw := rxAny.(*[]bruckMsg[T])
			rx := (*rw)[0]
			s.lens = append(s.lens, (*rx.lens)...)
			s.arena = append(s.arena, (*rx.data)...)
			s.ipool.Put(rx.lens)
			s.dpool.Put(rx.data)
			(*rw)[0] = bruckMsg[T]{}
			s.wpool.Put(rw)
			s.d <<= 1
			s.phase = acphBruck
		case acphRing:
			if s.ri >= s.g {
				final := (*s.cur)[0]
				s.ipool.Put(final.lens)
				s.dpool.Put(final.data)
				(*s.cur)[0] = bruckMsg[T]{}
				s.wpool.Put(s.cur)
				s.cur = nil
				return s.finish(pe)
			}
			batch := (*s.cur)[0]
			var words int64
			for _, l := range *batch.lens {
				words += l
			}
			s.h = pe.IRecv(s.src, s.tag)
			pe.Send(s.dst, s.tag, s.cur, int64(s.c)+words*WordsOf[T]())
			s.cur = nil
			s.phase = acphRingWait
			if !s.h.Test() {
				return s.h
			}
		case acphRingWait:
			rxAny, _ := s.h.Wait()
			s.h = nil
			s.cur = rxAny.(*[]bruckMsg[T])
			rx := (*s.cur)[0]
			rank := pe.Rank()
			srcGroup := ((rank / s.c) - s.ri + s.g) % s.g
			visitBatch(srcGroup*s.c, *rx.lens, *rx.data, s.visit)
			s.ri++
			s.phase = acphRing
		default:
			return nil
		}
	}
}

// rotateAndStartRing rotates the group batch into canonical order (block
// of rank gb+j at position j), visits it, and sets up phase 2 — the
// inter-group ring where each round forwards the batch received in the
// previous round (ownership moves with the message).
func (s *agChunkedStep[T]) rotateAndStartRing(pe *comm.PE) {
	p := pe.P()
	rank := pe.Rank()
	c := s.c
	i0 := (c - s.li) % c
	var off0 int64
	for _, l := range s.lens[:i0] {
		off0 += l
	}
	canLens := s.ipool.Get(c)
	canData := s.dpool.Get(len(s.arena))
	copy(*canLens, s.lens[i0:])
	copy((*canLens)[c-i0:], s.lens[:i0])
	n := copy(*canData, s.arena[off0:])
	copy((*canData)[n:], s.arena[:off0])
	*s.lensPtr = s.lens
	s.ipool.Put(s.lensPtr)
	s.lensPtr, s.lens = nil, nil
	*s.arenaPtr = s.arena
	s.dpool.Put(s.arenaPtr)
	s.arenaPtr, s.arena = nil, nil

	s.cur = s.wpool.Get(1)
	(*s.cur)[0] = bruckMsg[T]{lens: canLens, data: canData}
	visitBatch(s.gb, *canLens, *canData, s.visit)

	s.tag = pe.NextCollTag()
	s.g = p / c
	s.dst = (rank + c) % p
	s.src = (rank - c + p) % p
	s.ri = 1
	s.phase = acphRing
}
