package coll

import (
	"commtopk/internal/comm"
	"commtopk/internal/commbuf"
)

// Continuation forms of the vector prefix scans — the last collectives
// in the catalog to gain stepper forms. Same wire schedule as the
// blocking InScan/ExScan (Hillis–Steele dissemination, plus one
// shift-down round for the exclusive form), which are these steppers
// driven by comm.RunSteps.

// inScan phase constants.
const (
	isphInit = iota
	isphRounds
	isphRoundWait
	isphShift
	isphShiftWait
	isphDone
)

// inScanStep — see InScanStep / ExScanStep.
type inScanStep[T any] struct {
	acc       []T
	op        func(a, b T) T
	identity  []T
	exclusive bool
	out       func([]T)
	pool      *commbuf.Pool[T]
	tag       comm.Tag
	rank      int
	d         int
	h         *comm.RecvHandle
	phase     int
}

// InScanStep is the continuation form of InScan: dst (resized as needed,
// may be nil) receives op(x@0, ..., x@rank) elementwise and is handed to
// out. The result never aliases x.
func InScanStep[T any](pe *comm.PE, dst, x []T, op func(a, b T) T, out func([]T)) comm.Stepper {
	dst = commbuf.Resize(dst[:0], len(x))
	copy(dst, x)
	s := comm.GetPooled[inScanStep[T]](pe)
	*s = inScanStep[T]{acc: dst, op: op, out: out}
	return s
}

// ExScanStep is the continuation form of ExScan: dst receives
// op(x@0, ..., x@(rank-1)) elementwise — the identity on rank 0.
// identity must have the same length as x.
func ExScanStep[T any](pe *comm.PE, dst, x []T, op func(a, b T) T, identity []T, out func([]T)) comm.Stepper {
	dst = commbuf.Resize(dst[:0], len(x))
	copy(dst, x)
	s := comm.GetPooled[inScanStep[T]](pe)
	*s = inScanStep[T]{acc: dst, op: op, identity: identity, exclusive: true, out: out}
	return s
}

func (s *inScanStep[T]) Step(pe *comm.PE) *comm.RecvHandle {
	p := pe.P()
	for {
		switch s.phase {
		case isphInit:
			if p == 1 {
				if s.exclusive {
					s.acc = s.acc[:0]
					s.acc = append(s.acc, s.identity...)
				}
				s.phase = isphDone
				continue
			}
			s.pool = commbuf.For[T]()
			s.rank = pe.Rank()
			s.tag = pe.NextCollTag()
			s.d = 1
			s.phase = isphRounds
		case isphRounds:
			if s.d >= p {
				if !s.exclusive {
					s.phase = isphDone
					continue
				}
				s.tag = pe.NextCollTag()
				s.phase = isphShift
				continue
			}
			// acc currently covers ranks (rank-d, rank]; post the round's
			// receive, then send, then fold — receive and send overlap.
			if s.rank-s.d >= 0 {
				s.h = pe.IRecv(s.rank-s.d, s.tag)
			}
			if s.rank+s.d < p {
				sendCopy(pe, s.pool, s.rank+s.d, s.tag, s.acc)
			}
			s.phase = isphRoundWait
			if s.h != nil && !s.h.Test() {
				return s.h
			}
		case isphRoundWait:
			if s.h != nil {
				rxAny, _ := s.h.Wait()
				s.h = nil
				rx := rxAny.(*[]T)
				// acc = op(rx, acc): the earlier-ranks prefix is the left
				// operand.
				for i, v := range *rx {
					s.acc[i] = s.op(v, s.acc[i])
				}
				s.pool.Put(rx)
			}
			s.d <<= 1
			s.phase = isphRounds
		case isphShift:
			if s.rank > 0 {
				s.h = pe.IRecv(s.rank-1, s.tag)
			}
			if s.rank+1 < p {
				sendCopy(pe, s.pool, s.rank+1, s.tag, s.acc)
			}
			s.phase = isphShiftWait
			if s.h != nil && !s.h.Test() {
				return s.h
			}
		case isphShiftWait:
			if s.h != nil {
				rxAny, _ := s.h.Wait()
				s.h = nil
				rx := rxAny.(*[]T)
				copy(s.acc, *rx)
				s.pool.Put(rx)
			} else {
				// Rank 0: the exclusive prefix is the identity.
				s.acc = s.acc[:0]
				s.acc = append(s.acc, s.identity...)
			}
			s.phase = isphDone
		default:
			out, acc := s.out, s.acc
			*s = inScanStep[T]{}
			comm.PutPooled(pe, s)
			if out != nil {
				out(acc)
			}
			return nil
		}
	}
}
