package coll

import (
	"commtopk/internal/comm"
)

// Routed is an item travelling through the hypercube all-to-all: Dest is
// the final destination rank, Payload the application data.
type Routed[T any] struct {
	Dest    int
	Payload T
}

// AllToAllCombine routes items to their destination PEs through a
// hypercube (indirect delivery, Section 7.1: "the elements are communicated
// using indirect delivery to maintain logarithmic latency ... incoming
// sample counts are merged in each step"). After every exchange step the
// combine hook is applied to the held buffer, letting the application
// re-aggregate (e.g. sum counts with equal keys) so message sizes stay
// bounded. combine may be nil for plain routing.
func AllToAllCombine[T any](pe *comm.PE, items []Routed[T], combine func([]Routed[T]) []Routed[T]) []Routed[T] {
	return RouteCombine(pe, items, routedDest[T], combine)
}

// RouteCombine is the hypercube router underneath AllToAllCombine for
// items whose destination is derivable from the item itself (e.g. a
// hashed key): nothing but the payload travels, saving the explicit
// destination word. dest must be pure; combine (optional) re-aggregates
// the held buffer after every exchange and must preserve destinations.
//
// O(log p) startups per PE. Non-power-of-two p is handled by folding the
// top p−r ranks onto their partners before routing and unfolding at the
// end (two extra exchanges). The schedule is the route engine stepper of
// async_route.go driven with blocking waits — one implementation, both
// execution modes; the result is caller-owned (for p = 1 it aliases
// items, as before).
func RouteCombine[T any](pe *comm.PE, items []T, dest func(T) int, combine func([]T) []T) []T {
	st := newRouteStep(pe, items, 0, dest, combine)
	comm.RunSteps(pe, st)
	out := st.hold
	if pe.P() > 1 {
		out = st.routeResult()
	}
	st.release(pe)
	return out
}
