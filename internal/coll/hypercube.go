package coll

import (
	"fmt"

	"commtopk/internal/comm"
)

// Routed is an item travelling through the hypercube all-to-all: Dest is
// the final destination rank, Payload the application data.
type Routed[T any] struct {
	Dest    int
	Payload T
}

// AllToAllCombine routes items to their destination PEs through a
// hypercube (indirect delivery, Section 7.1: "the elements are communicated
// using indirect delivery to maintain logarithmic latency ... incoming
// sample counts are merged in each step"). After every exchange step the
// combine hook is applied to the held buffer, letting the application
// re-aggregate (e.g. sum counts with equal keys) so message sizes stay
// bounded. combine may be nil for plain routing.
func AllToAllCombine[T any](pe *comm.PE, items []Routed[T], combine func([]Routed[T]) []Routed[T]) []Routed[T] {
	return RouteCombine(pe, items, func(it Routed[T]) int { return it.Dest }, combine)
}

// RouteCombine is the hypercube router underneath AllToAllCombine for
// items whose destination is derivable from the item itself (e.g. a
// hashed key): nothing but the payload travels, saving the explicit
// destination word. dest must be pure; combine (optional) re-aggregates
// the held buffer after every exchange and must preserve destinations.
//
// O(log p) startups per PE. Non-power-of-two p is handled by folding the
// top p−r ranks onto their partners before routing and unfolding at the
// end (two extra exchanges).
func RouteCombine[T any](pe *comm.PE, items []T, dest func(T) int, combine func([]T) []T) []T {
	p := pe.P()
	rank := pe.Rank()
	for _, it := range items {
		if d := dest(it); d < 0 || d >= p {
			panic(fmt.Sprintf("coll: RouteCombine item with invalid dest %d", d))
		}
	}
	if p == 1 {
		if combine != nil {
			items = combine(items)
		}
		return items
	}
	tag := pe.NextCollTag()
	r := 1
	dims := 0
	for r*2 <= p {
		r *= 2
		dims++
	}
	extra := p - r
	w := WordsOf[T]()

	hold := items
	// Fold-in: high ranks hand everything to their low partner and then
	// wait for their final batch (receive posted before the send so the
	// hand-over and the eventual return overlap).
	if rank >= r {
		h := pe.IRecv(rank-r, tag)
		pe.Send(rank-r, tag, hold, int64(len(hold))*w)
		rx, _ := h.Wait()
		hold = rx.([]T)
		if combine != nil {
			hold = combine(hold)
		}
		return hold
	}
	if rank < extra {
		rx, _ := pe.Recv(rank+r, tag)
		hold = append(hold, rx.([]T)...)
		if combine != nil {
			hold = combine(hold)
		}
	}

	// Hypercube routing among the r low ranks; an item for dest d travels
	// toward d mod r (its "carrier"), resolving its true dest at unfold.
	for bit := 0; bit < dims; bit++ {
		maskBit := 1 << bit
		partner := rank ^ maskBit
		var keep, ship []T
		for _, it := range hold {
			carrier := dest(it)
			if carrier >= r {
				carrier -= r
			}
			if carrier&maskBit != rank&maskBit {
				ship = append(ship, it)
			} else {
				keep = append(keep, it)
			}
		}
		rx, _ := pe.SendRecv(partner, ship, int64(len(ship))*w, partner, tag)
		hold = append(keep, rx.([]T)...)
		if combine != nil {
			hold = combine(hold)
		}
	}

	// Unfold: everything for rank+r goes back out.
	if rank < extra {
		var mine, theirs []T
		for _, it := range hold {
			if dest(it) == rank+r {
				theirs = append(theirs, it)
			} else {
				mine = append(mine, it)
			}
		}
		pe.Send(rank+r, tag, theirs, int64(len(theirs))*w)
		hold = mine
	}
	if combine != nil {
		hold = combine(hold)
	}
	return hold
}
