package coll

import (
	"fmt"

	"commtopk/internal/comm"
	"commtopk/internal/commbuf"
)

// Chunked / streaming variants of the gather-shaped collectives.
//
// The materializing forms (AllGatherv, AllGatherConcat, AllToAll) hand
// every PE all p blocks at once: per-PE result memory O(p·m̄), which at
// p = 16384 with even 4-word blocks is ~0.5 MB per PE — p² in aggregate,
// the reason the scaling suite's collective set was capped at the
// O(log p) operations. The variants here never materialize: the caller
// supplies a visit callback and the per-PE footprint stays
// O(m + chunk·m̄) — the local block plus a bounded window of in-flight
// blocks — at the price of a startup count that grows from O(log p)
// toward O(p/chunk). That trade is fundamental: every PE must still
// *see* p·m̄ words, it just no longer has to *hold* them.
//
// Both protocols are implemented as continuation steppers
// (async_route.go); the blocking forms here drive them through
// comm.RunSteps.

// AllGatherChunked delivers every PE's block to every PE without
// materializing the gather: visit is called exactly once per rank — in
// an unspecified but deterministic order, own block included — with a
// view that is only valid during the call (the backing buffers are
// pooled and recycled). chunk bounds the window of blocks buffered and
// shipped together (clamped to [1, p]); per-PE memory is O(m + c·m̄)
// where c ≤ chunk, instead of the O(p·m̄) of AllGatherv.
//
// Structure: ranks are partitioned into ⌈p/c⌉ contiguous groups of c =
// the largest divisor of p not exceeding chunk. Each group first
// all-gathers internally (Bruck dissemination, ⌈log₂ c⌉ startups), then
// the group batches circulate around an inter-group ring (p/c − 1
// rounds, each forwarding the batch received in the previous round with
// ownership transfer). Volume per PE is ≤ total + p length words — the
// same class as the materializing Bruck all-gather — in
// ⌈log₂ c⌉ + p/c − 1 startups. For prime p the group size degenerates
// to 1 and the exchange is a pure ring (p − 1 startups).
func AllGatherChunked[T any](pe *comm.PE, data []T, chunk int, visit func(src int, block []T)) {
	comm.RunSteps(pe, AllGatherChunkedStep(pe, data, chunk, visit))
}

// visitBatch walks a canonical group batch: block j belongs to rank
// base+j.
func visitBatch[T any](base int, lens []int64, data []T, visit func(src int, block []T)) {
	var off int64
	for j, l := range lens {
		visit(base+j, data[off:off+l:off+l])
		off += l
	}
}

// groupSize returns the largest divisor of p not exceeding max(chunk, 1).
func groupSize(p, chunk int) int {
	c := max(min(chunk, p), 1)
	for ; c > 1; c-- {
		if p%c == 0 {
			return c
		}
	}
	return 1
}

// AllToAllCombineChunked is AllToAllCombine with bounded in-flight
// blocks: each hypercube exchange ships its items in ⌈n/chunk⌉ messages
// of at most chunk items, preceded by a one-word count, so no single
// in-flight message (and no mailbox node) ever holds more than chunk
// items. The extra startups are metered honestly; total volume gains one
// word per exchange. combine (optional) re-aggregates the held buffer
// after every exchange step exactly as in AllToAllCombine — with a
// combine that keeps the held set small, per-PE memory is
// O(held + chunk) instead of O(held + largest shipment).
func AllToAllCombineChunked[T any](pe *comm.PE, items []Routed[T], chunk int, combine func([]Routed[T]) []Routed[T]) []Routed[T] {
	return routeCombineChunked(pe, items, chunk, routedDest[T], combine)
}

// routeCombineChunked is RouteCombine with chunk-bounded shipments. The
// routing structure (fold-in of non-power-of-two stragglers, hypercube
// dimension sweeps, unfold) and the item order delivered to combine are
// identical to RouteCombine's — both drive the same route engine — so
// results are bit-identical and the word volume differs by exactly one
// count word per exchange.
func routeCombineChunked[T any](pe *comm.PE, items []T, chunk int, dest func(T) int, combine func([]T) []T) []T {
	if chunk < 1 {
		panic(fmt.Sprintf("coll: chunk %d < 1", chunk))
	}
	st := newRouteStep(pe, items, chunk, dest, combine)
	comm.RunSteps(pe, st)
	out := st.hold
	if pe.P() > 1 {
		out = st.routeResult()
	}
	st.release(pe)
	return out
}

// sendChunked frames items as a one-word count followed by ⌈n/chunk⌉
// pooled messages of at most chunk items each (ownership transfers).
func sendChunked[T any](pe *comm.PE, dst int, tag comm.Tag, chunk int, items []T) {
	w := WordsOf[T]()
	hp := commbuf.For[int64]().Get(1)
	(*hp)[0] = int64(len(items))
	pe.Send(dst, tag, hp, 1)
	pool := commbuf.For[T]()
	for off := 0; off < len(items); off += chunk {
		end := min(off+chunk, len(items))
		b := pool.Get(end - off)
		copy(*b, items[off:end])
		pe.Send(dst, tag, b, int64(end-off)*w)
	}
}
