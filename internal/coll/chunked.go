package coll

import (
	"fmt"

	"commtopk/internal/comm"
	"commtopk/internal/commbuf"
)

// Chunked / streaming variants of the gather-shaped collectives.
//
// The materializing forms (AllGatherv, AllGatherConcat, AllToAll) hand
// every PE all p blocks at once: per-PE result memory O(p·m̄), which at
// p = 16384 with even 4-word blocks is ~0.5 MB per PE — p² in aggregate,
// the reason the scaling suite's collective set was capped at the
// O(log p) operations. The variants here never materialize: the caller
// supplies a visit callback and the per-PE footprint stays
// O(m + chunk·m̄) — the local block plus a bounded window of in-flight
// blocks — at the price of a startup count that grows from O(log p)
// toward O(p/chunk). That trade is fundamental: every PE must still
// *see* p·m̄ words, it just no longer has to *hold* them.

// AllGatherChunked delivers every PE's block to every PE without
// materializing the gather: visit is called exactly once per rank — in
// an unspecified but deterministic order, own block included — with a
// view that is only valid during the call (the backing buffers are
// pooled and recycled). chunk bounds the window of blocks buffered and
// shipped together (clamped to [1, p]); per-PE memory is O(m + c·m̄)
// where c ≤ chunk, instead of the O(p·m̄) of AllGatherv.
//
// Structure: ranks are partitioned into ⌈p/c⌉ contiguous groups of c =
// the largest divisor of p not exceeding chunk. Each group first
// all-gathers internally (Bruck dissemination, ⌈log₂ c⌉ startups), then
// the group batches circulate around an inter-group ring (p/c − 1
// rounds, each forwarding the batch received in the previous round with
// ownership transfer). Volume per PE is ≤ total + p length words — the
// same class as the materializing Bruck all-gather — in
// ⌈log₂ c⌉ + p/c − 1 startups. For prime p the group size degenerates
// to 1 and the exchange is a pure ring (p − 1 startups).
func AllGatherChunked[T any](pe *comm.PE, data []T, chunk int, visit func(src int, block []T)) {
	p := pe.P()
	if p == 1 {
		visit(0, data)
		return
	}
	rank := pe.Rank()
	c := groupSize(p, chunk)
	gb := rank - rank%c // my group's base rank
	li := rank - gb     // my index within the group
	ipool := commbuf.For[int64]()
	dpool := commbuf.For[T]()
	wpool := commbuf.For[bruckMsg[T]]()

	// Phase 1 — intra-group Bruck all-gather: allGatherBruck's
	// dissemination pattern over the c group members, with pooled-copy
	// payloads (unlike the materializing gather's shared views — these
	// batches get forwarded in phase 2, so ownership must travel).
	// Afterwards lens/arena hold the group's blocks in shifted order
	// li, li+1, … mod c.
	tag := pe.NextCollTag()
	lensPtr := ipool.GetCap(c)
	lens := append(*lensPtr, int64(len(data)))
	arenaPtr := dpool.GetCap(2*len(data) + 8)
	arena := append(*arenaPtr, data...)
	for d := 1; d < c; d <<= 1 {
		dst := gb + (li-d+c)%c
		src := gb + (li+d)%c
		cnt := min(d, c-d)
		var elems int64
		for _, l := range lens[:cnt] {
			elems += l
		}
		h := pe.IRecv(src, tag)
		lp := ipool.Get(cnt)
		copy(*lp, lens[:cnt])
		dp := dpool.Get(int(elems))
		copy(*dp, arena[:elems])
		wp := wpool.Get(1)
		(*wp)[0] = bruckMsg[T]{lens: lp, data: dp}
		pe.Send(dst, tag, wp, int64(cnt)+elems*WordsOf[T]())
		rxAny, _ := h.Wait()
		rw := rxAny.(*[]bruckMsg[T])
		rx := (*rw)[0]
		lens = append(lens, (*rx.lens)...)
		arena = append(arena, (*rx.data)...)
		ipool.Put(rx.lens)
		dpool.Put(rx.data)
		(*rw)[0] = bruckMsg[T]{}
		wpool.Put(rw)
	}

	// Rotate the batch into canonical group order (block of rank gb+j at
	// position j), so ring messages carry rank labels implicitly.
	i0 := (c - li) % c
	var off0 int64
	for _, l := range lens[:i0] {
		off0 += l
	}
	canLens := ipool.Get(c)
	canData := dpool.Get(len(arena))
	copy(*canLens, lens[i0:])
	copy((*canLens)[c-i0:], lens[:i0])
	n := copy(*canData, arena[off0:])
	copy((*canData)[n:], arena[:off0])
	*lensPtr = lens
	ipool.Put(lensPtr)
	*arenaPtr = arena
	dpool.Put(arenaPtr)

	cur := wpool.Get(1)
	(*cur)[0] = bruckMsg[T]{lens: canLens, data: canData}
	visitBatch(gb, *canLens, *canData, visit)

	// Phase 2 — inter-group ring: each round forwards the batch received
	// in the previous round (ownership moves with the message, like the
	// reduction accumulators), and receives the batch of the group r
	// steps behind. The sends are honest in the meter: α + β·(c + words)
	// per hop, the lengths riding along as payload.
	tag = pe.NextCollTag()
	g := p / c
	dst := (rank + c) % p
	src := (rank - c + p) % p
	for r := 1; r < g; r++ {
		batch := (*cur)[0]
		var words int64
		for _, l := range *batch.lens {
			words += l
		}
		h := pe.IRecv(src, tag)
		pe.Send(dst, tag, cur, int64(c)+words*WordsOf[T]())
		rxAny, _ := h.Wait()
		cur = rxAny.(*[]bruckMsg[T])
		rx := (*cur)[0]
		srcGroup := ((rank / c) - r + g) % g
		visitBatch(srcGroup*c, *rx.lens, *rx.data, visit)
	}
	final := (*cur)[0]
	ipool.Put(final.lens)
	dpool.Put(final.data)
	(*cur)[0] = bruckMsg[T]{}
	wpool.Put(cur)
}

// visitBatch walks a canonical group batch: block j belongs to rank
// base+j.
func visitBatch[T any](base int, lens []int64, data []T, visit func(src int, block []T)) {
	var off int64
	for j, l := range lens {
		visit(base+j, data[off:off+l:off+l])
		off += l
	}
}

// groupSize returns the largest divisor of p not exceeding max(chunk, 1).
func groupSize(p, chunk int) int {
	c := max(min(chunk, p), 1)
	for ; c > 1; c-- {
		if p%c == 0 {
			return c
		}
	}
	return 1
}

// AllToAllCombineChunked is AllToAllCombine with bounded in-flight
// blocks: each hypercube exchange ships its items in ⌈n/chunk⌉ messages
// of at most chunk items, preceded by a one-word count, so no single
// in-flight message (and no mailbox node) ever holds more than chunk
// items. The extra startups are metered honestly; total volume gains one
// word per exchange. combine (optional) re-aggregates the held buffer
// after every exchange step exactly as in AllToAllCombine — with a
// combine that keeps the held set small, per-PE memory is
// O(held + chunk) instead of O(held + largest shipment).
func AllToAllCombineChunked[T any](pe *comm.PE, items []Routed[T], chunk int, combine func([]Routed[T]) []Routed[T]) []Routed[T] {
	return routeCombineChunked(pe, items, chunk, func(it Routed[T]) int { return it.Dest }, combine)
}

// routeCombineChunked is RouteCombine with chunk-bounded shipments. The
// routing structure (fold-in of non-power-of-two stragglers, hypercube
// dimension sweeps, unfold) and the item order delivered to combine are
// identical to RouteCombine's; only the framing of each logical shipment
// into count + chunk messages differs, so results are bit-identical and
// the word volume differs by exactly one count word per exchange.
func routeCombineChunked[T any](pe *comm.PE, items []T, chunk int, dest func(T) int, combine func([]T) []T) []T {
	p := pe.P()
	rank := pe.Rank()
	if chunk < 1 {
		panic(fmt.Sprintf("coll: chunk %d < 1", chunk))
	}
	for _, it := range items {
		if d := dest(it); d < 0 || d >= p {
			panic(fmt.Sprintf("coll: RouteCombine item with invalid dest %d", d))
		}
	}
	if p == 1 {
		if combine != nil {
			items = combine(items)
		}
		return items
	}
	tag := pe.NextCollTag()
	r := 1
	dims := 0
	for r*2 <= p {
		r *= 2
		dims++
	}
	extra := p - r

	hold := items
	if rank >= r {
		// Post the count receive before shipping so the fold-in hand-over
		// and the eventual return frame overlap.
		hc := pe.IRecv(rank-r, tag)
		sendChunked(pe, rank-r, tag, chunk, hold)
		hold = recvChunkedPre(pe, hc, rank-r, tag, hold[:0])
		if combine != nil {
			hold = combine(hold)
		}
		return hold
	}
	if rank < extra {
		hold = recvChunked(pe, rank+r, tag, hold)
		if combine != nil {
			hold = combine(hold)
		}
	}

	for bit := 0; bit < dims; bit++ {
		maskBit := 1 << bit
		partner := rank ^ maskBit
		var keep, ship []T
		for _, it := range hold {
			carrier := dest(it)
			if carrier >= r {
				carrier -= r
			}
			if carrier&maskBit != rank&maskBit {
				ship = append(ship, it)
			} else {
				keep = append(keep, it)
			}
		}
		hc := pe.IRecv(partner, tag)
		sendChunked(pe, partner, tag, chunk, ship)
		hold = recvChunkedPre(pe, hc, partner, tag, keep)
		if combine != nil {
			hold = combine(hold)
		}
	}

	if rank < extra {
		var mine, theirs []T
		for _, it := range hold {
			if dest(it) == rank+r {
				theirs = append(theirs, it)
			} else {
				mine = append(mine, it)
			}
		}
		sendChunked(pe, rank+r, tag, chunk, theirs)
		hold = mine
	}
	if combine != nil {
		hold = combine(hold)
	}
	return hold
}

// sendChunked frames items as a one-word count followed by ⌈n/chunk⌉
// pooled messages of at most chunk items each (ownership transfers).
func sendChunked[T any](pe *comm.PE, dst int, tag comm.Tag, chunk int, items []T) {
	w := WordsOf[T]()
	hp := commbuf.For[int64]().Get(1)
	(*hp)[0] = int64(len(items))
	pe.Send(dst, tag, hp, 1)
	pool := commbuf.For[T]()
	for off := 0; off < len(items); off += chunk {
		end := min(off+chunk, len(items))
		b := pool.Get(end - off)
		copy(*b, items[off:end])
		pe.Send(dst, tag, b, int64(end-off)*w)
	}
}

// recvChunked receives a sendChunked frame from src, appending the items
// to dst and recycling the chunk buffers.
func recvChunked[T any](pe *comm.PE, src int, tag comm.Tag, dst []T) []T {
	return recvChunkedPre(pe, pe.IRecv(src, tag), src, tag, dst)
}

// recvChunkedPre is recvChunked with the count word's receive already
// posted (hc), so callers can overlap it with their own sends.
func recvChunkedPre[T any](pe *comm.PE, hc *comm.RecvHandle, src int, tag comm.Tag, dst []T) []T {
	rxAny, _ := hc.Wait()
	hp := rxAny.(*[]int64)
	n := int((*hp)[0])
	commbuf.For[int64]().Put(hp)
	pool := commbuf.For[T]()
	for got := 0; got < n; {
		b := recvOwned[T](pe, src, tag)
		dst = append(dst, *b...)
		got += len(*b)
		pool.Put(b)
	}
	return dst
}
