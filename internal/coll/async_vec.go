package coll

import (
	"fmt"

	"commtopk/internal/comm"
	"commtopk/internal/commbuf"
)

// Continuation forms of the vector- and gather-shaped collectives:
// AllReduce/AllReduceInto (recursive doubling + the Rabenseifner long
// path), the dissemination all-gather (AllGatherv/AllGatherConcat), the
// staggered direct AllToAll, the binomial Gatherv, and BroadcastScalar.
// The hypercube router and the chunked gathers are in async_route.go.
//
// The reduction and gather engines here are THE implementation: the
// blocking forms in coll.go drive the same steppers through
// comm.RunSteps, so the two execution modes cannot diverge in results or
// metered statistics (additionally pinned by the async pairs and the
// randomized differential fuzz).
//
// Result-delivery convention: the *Step forms hand results to the out
// callback as borrowed views — valid only during the call, backed by
// pooled buffers recycled immediately after — so a continuation body
// that consumes results in place runs allocation-free. The blocking
// wrappers keep their documented materializing contracts (caller-owned
// results) by copying out of the engine before releasing it.

// ---------------------------------------------------------------------------
// Vector all-reduce
// ---------------------------------------------------------------------------

// arLevel is one recursive-halving level of the Rabenseifner path.
type arLevel struct {
	partner int
	keptLow bool
	lowLen  int
	highLen int
}

// allReduceAccStep phases.
const (
	avphInit = iota
	avphStragglerWait
	avphExtraWait
	avphStart
	avphRound
	avphRoundWait
	avphRSRound
	avphRSWait
	avphAGRound
	avphAGWait
	avphFoldOut
	avphDone
)

// allReduceAccStep is the all-reduce engine as a continuation: it
// combines acc (this PE's contribution) with every other PE's, in
// place, leaving the global result in acc on every PE. Short vectors use
// recursive doubling; long vectors the Rabenseifner reduce-scatter +
// all-gather; non-power-of-two stragglers fold onto partners first —
// exactly the blocking AllReduce's schedule (which drives this stepper).
type allReduceAccStep[T any] struct {
	acc  []T
	op   func(a, b T) T
	out  func([]T)
	pool *commbuf.Pool[T]
	tag  comm.Tag
	rank int
	r    int
	extra int
	mask int
	// Rabenseifner state: the live window [lo, hi), the current level's
	// split, and the halving history retraced by the all-gather. hist's
	// backing survives pooling so steady state allocates nothing.
	lo, hi  int
	mid     int
	keepLow bool
	hist    []arLevel
	idx     int
	h       *comm.RecvHandle
	phase   int
}

func newAllReduceAccStep[T any](pe *comm.PE, acc []T, op func(a, b T) T, out func([]T)) *allReduceAccStep[T] {
	s := comm.GetPooled[allReduceAccStep[T]](pe)
	hist := s.hist
	*s = allReduceAccStep[T]{acc: acc, op: op, out: out, hist: hist[:0]}
	return s
}

// AllReduceIntoStep is the continuation form of AllReduceInto: dst
// (grown as needed; nil to allocate) receives the elementwise
// combination of x across PEs and is handed to out. dst must not
// overlap x. With a reused dst the steady state allocates nothing.
func AllReduceIntoStep[T any](pe *comm.PE, dst, x []T, op func(a, b T) T, out func([]T)) comm.Stepper {
	dst = commbuf.Resize(dst[:0], len(x))
	copy(dst, x)
	return newAllReduceAccStep(pe, dst, op, out)
}

// AllReduceStep is the continuation form of AllReduce: out receives a
// freshly allocated caller-owned result.
func AllReduceStep[T any](pe *comm.PE, x []T, op func(a, b T) T, out func([]T)) comm.Stepper {
	return AllReduceIntoStep(pe, nil, x, op, out)
}

func (s *allReduceAccStep[T]) take() *[]T {
	rxAny, _ := s.h.Wait()
	s.h = nil
	return rxAny.(*[]T)
}

func (s *allReduceAccStep[T]) Step(pe *comm.PE) *comm.RecvHandle {
	p := pe.P()
	for {
		switch s.phase {
		case avphInit:
			if p == 1 {
				s.phase = avphDone
				continue
			}
			s.pool = commbuf.For[T]()
			s.tag = pe.NextCollTag()
			s.rank = pe.Rank()
			s.r = 1
			for s.r*2 <= p {
				s.r *= 2
			}
			s.extra = p - s.r
			if s.rank >= s.r {
				// Straggler: fold onto the low partner, then wait for the
				// result (receive posted up front so the transfers overlap).
				s.h = pe.IRecv(s.rank-s.r, s.tag)
				sendCopy(pe, s.pool, s.rank-s.r, s.tag, s.acc)
				s.phase = avphStragglerWait
				if !s.h.Test() {
					return s.h
				}
				continue
			}
			if s.rank < s.extra {
				s.h = pe.IRecv(s.rank+s.r, s.tag)
				s.phase = avphExtraWait
				if !s.h.Test() {
					return s.h
				}
				continue
			}
			s.phase = avphStart
		case avphStragglerWait:
			rx := s.take()
			copy(s.acc, *rx)
			s.pool.Put(rx)
			s.phase = avphDone
		case avphExtraWait:
			rx := s.take()
			combine(s.op, s.acc, *rx)
			s.pool.Put(rx)
			s.phase = avphStart
		case avphStart:
			if sliceWords(s.acc) >= int64(4*s.r) && s.r > 2 {
				s.lo, s.hi = 0, len(s.acc)
				s.hist = s.hist[:0]
				s.mask = s.r / 2
				s.phase = avphRSRound
			} else {
				s.mask = 1
				s.phase = avphRound
			}
		case avphRound:
			if s.mask >= s.r {
				s.phase = avphFoldOut
				continue
			}
			// Ship a copy (the partner reads it while we keep mutating acc).
			partner := s.rank ^ s.mask
			b := s.pool.Get(len(s.acc))
			copy(*b, s.acc)
			s.h = pe.IRecv(partner, s.tag)
			pe.Send(partner, s.tag, b, sliceWords(s.acc))
			s.phase = avphRoundWait
			if !s.h.Test() {
				return s.h
			}
		case avphRoundWait:
			rx := s.take()
			combine(s.op, s.acc, *rx)
			s.pool.Put(rx)
			s.mask <<= 1
			s.phase = avphRound
		case avphRSRound:
			// Reduce-scatter by recursive halving.
			if s.mask < 1 {
				s.idx = len(s.hist) - 1
				s.phase = avphAGRound
				continue
			}
			partner := s.rank ^ s.mask
			s.mid = s.lo + (s.hi-s.lo)/2
			s.keepLow = s.rank&s.mask == 0
			var sendSeg []T
			if s.keepLow {
				sendSeg = s.acc[s.mid:s.hi]
			} else {
				sendSeg = s.acc[s.lo:s.mid]
			}
			b := s.pool.Get(len(sendSeg))
			copy(*b, sendSeg)
			s.h = pe.IRecv(partner, s.tag)
			pe.Send(partner, s.tag, b, sliceWords(sendSeg))
			s.phase = avphRSWait
			if !s.h.Test() {
				return s.h
			}
		case avphRSWait:
			rx := s.take()
			partner := s.rank ^ s.mask
			if s.keepLow {
				for i, v := range *rx {
					s.acc[s.lo+i] = s.op(s.acc[s.lo+i], v)
				}
				s.hist = append(s.hist, arLevel{partner, true, s.mid - s.lo, s.hi - s.mid})
				s.hi = s.mid
			} else {
				for i, v := range *rx {
					s.acc[s.mid+i] = s.op(s.acc[s.mid+i], v)
				}
				s.hist = append(s.hist, arLevel{partner, false, s.mid - s.lo, s.hi - s.mid})
				s.lo = s.mid
			}
			s.pool.Put(rx)
			s.mask >>= 1
			s.phase = avphRSRound
		case avphAGRound:
			// All-gather by retracing the halving in reverse.
			if s.idx < 0 {
				s.phase = avphFoldOut
				continue
			}
			lv := s.hist[s.idx]
			seg := s.acc[s.lo:s.hi]
			b := s.pool.Get(len(seg))
			copy(*b, seg)
			s.h = pe.IRecv(lv.partner, s.tag)
			pe.Send(lv.partner, s.tag, b, sliceWords(seg))
			s.phase = avphAGWait
			if !s.h.Test() {
				return s.h
			}
		case avphAGWait:
			rx := s.take()
			lv := s.hist[s.idx]
			if lv.keptLow {
				copy(s.acc[s.hi:s.hi+len(*rx)], *rx)
				s.hi += lv.highLen
			} else {
				copy(s.acc[s.lo-len(*rx):s.lo], *rx)
				s.lo -= lv.lowLen
			}
			s.pool.Put(rx)
			s.idx--
			s.phase = avphAGRound
		case avphFoldOut:
			if s.rank < s.extra {
				sendCopy(pe, s.pool, s.rank+s.r, s.tag, s.acc)
			}
			s.phase = avphDone
		default:
			out, acc := s.out, s.acc
			hist := s.hist[:0]
			*s = allReduceAccStep[T]{hist: hist}
			comm.PutPooled(pe, s)
			if out != nil {
				out(acc)
			}
			return nil
		}
	}
}

// ---------------------------------------------------------------------------
// Dissemination all-gather
// ---------------------------------------------------------------------------

// agBruckStep is the Bruck all-gather engine as a continuation (see
// allGatherBruck for the protocol). fresh selects the result-ownership
// mode: true allocates arena/lens freshly (the blocking AllGatherv and
// AllGatherConcat contracts — their caller-owned results view or copy
// the arena) and ships in-process read-only views per round; false draws
// them from the commbuf pools and ships pooled copies instead, because a
// pooled arena is recycled as soon as the op completes and a partner on
// another worker may still be reading a shipped view at that instant —
// the view optimization is only sound for arenas that die by GC. The
// engine does not self-release: consumers harvest arena/lens, then call
// release (pooled) or put (fresh).
type agBruckStep[T any] struct {
	data     []T
	fresh    bool
	arena    []T
	lens     []int64
	lensPtr  *[]int64
	arenaPtr *[]T
	fpool    *commbuf.Pool[bruckView[T]]
	wpool    *commbuf.Pool[bruckMsg[T]]
	tag      comm.Tag
	d        int
	h        *comm.RecvHandle
	phase    int
}

func newAGBruckStep[T any](pe *comm.PE, data []T, fresh bool) *agBruckStep[T] {
	s := comm.GetPooled[agBruckStep[T]](pe)
	*s = agBruckStep[T]{data: data, fresh: fresh}
	return s
}

// put releases the engine state only (fresh mode: the harvested
// arena/lens are caller-owned).
func (s *agBruckStep[T]) put(pe *comm.PE) {
	*s = agBruckStep[T]{}
	comm.PutPooled(pe, s)
}

// release recycles the pooled arena/lens and then the engine state
// (pooled mode, after the consumer is done reading).
func (s *agBruckStep[T]) release(pe *comm.PE) {
	*s.lensPtr = s.lens
	commbuf.For[int64]().Put(s.lensPtr)
	*s.arenaPtr = s.arena
	commbuf.For[T]().Put(s.arenaPtr)
	s.put(pe)
}

func (s *agBruckStep[T]) Step(pe *comm.PE) *comm.RecvHandle {
	p := pe.P()
	for {
		switch s.phase {
		case 0:
			s.tag = pe.NextCollTag()
			if s.fresh {
				s.fpool = commbuf.For[bruckView[T]]()
				s.lens = make([]int64, 1, p)
				s.lens[0] = int64(len(s.data))
				s.arena = make([]T, 0, 2*len(s.data)+8)
			} else {
				s.wpool = commbuf.For[bruckMsg[T]]()
				s.lensPtr = commbuf.For[int64]().GetCap(p)
				s.lens = append(*s.lensPtr, int64(len(s.data)))
				s.arenaPtr = commbuf.For[T]().GetCap(2*len(s.data) + 8)
				s.arena = *s.arenaPtr
			}
			s.arena = append(s.arena, s.data...)
			s.d = 1
			s.phase = 1
		case 1:
			if s.d >= p {
				return nil // complete; the consumer harvests arena/lens
			}
			rank := pe.Rank()
			dst := (rank - s.d + p) % p
			src := (rank + s.d) % p
			cnt := min(s.d, p-s.d)
			var elems int64
			for _, l := range s.lens[:cnt] {
				elems += l
			}
			// One message per round: lengths ride along with the payload
			// (both metered), and a single send keeps the exchange
			// deadlock-free. Fresh mode ships capacity-capped views of the
			// held run (see bruckView); pooled mode ships owned copies.
			s.h = pe.IRecv(src, s.tag)
			if s.fresh {
				fp := s.fpool.Get(1)
				(*fp)[0] = bruckView[T]{lens: s.lens[:cnt:cnt], data: s.arena[:elems:elems]}
				pe.Send(dst, s.tag, fp, int64(cnt)+elems*WordsOf[T]())
			} else {
				lp := commbuf.For[int64]().Get(cnt)
				copy(*lp, s.lens[:cnt])
				dp := commbuf.For[T]().Get(int(elems))
				copy(*dp, s.arena[:elems])
				wp := s.wpool.Get(1)
				(*wp)[0] = bruckMsg[T]{lens: lp, data: dp}
				pe.Send(dst, s.tag, wp, int64(cnt)+elems*WordsOf[T]())
			}
			s.phase = 2
			if !s.h.Test() {
				return s.h
			}
		default:
			rxAny, _ := s.h.Wait()
			s.h = nil
			if s.fresh {
				rf := rxAny.(*[]bruckView[T])
				rx := (*rf)[0]
				s.lens = append(s.lens, rx.lens...)
				s.arena = append(s.arena, rx.data...)
				(*rf)[0] = bruckView[T]{}
				s.fpool.Put(rf)
			} else {
				rw := rxAny.(*[]bruckMsg[T])
				rx := (*rw)[0]
				s.lens = append(s.lens, (*rx.lens)...)
				s.arena = append(s.arena, (*rx.data)...)
				commbuf.For[int64]().Put(rx.lens)
				commbuf.For[T]().Put(rx.data)
				(*rw)[0] = bruckMsg[T]{}
				s.wpool.Put(rw)
			}
			s.d <<= 1
			s.phase = 1
		}
	}
}

// allGathervStep — see AllGathervStep.
type allGathervStep[T any] struct {
	data []T
	out  func([][]T)
	eng  *agBruckStep[T]
}

// AllGathervStep is the continuation form of AllGatherv: out receives
// every PE's slice indexed by rank. Unlike the blocking form's
// caller-owned result, out's argument is a borrowed view — the slices
// and their backing arena are pooled and recycled when out returns, so
// consume (or copy) them inside the callback. Steady-state
// allocation-free.
func AllGathervStep[T any](pe *comm.PE, data []T, out func([][]T)) comm.Stepper {
	s := comm.GetPooled[allGathervStep[T]](pe)
	*s = allGathervStep[T]{data: data, out: out}
	return s
}

func (s *allGathervStep[T]) Step(pe *comm.PE) *comm.RecvHandle {
	p := pe.P()
	if p == 1 {
		out, data := s.out, s.data
		*s = allGathervStep[T]{}
		comm.PutPooled(pe, s)
		if out != nil {
			out([][]T{data})
		}
		return nil
	}
	if s.eng == nil {
		s.eng = newAGBruckStep(pe, s.data, false)
	}
	if h := s.eng.Step(pe); h != nil {
		return h
	}
	arena, lens := s.eng.arena, s.eng.lens
	partsPtr := commbuf.For[[]T]().Get(p)
	parts := *partsPtr
	var off int64
	for i := 0; i < p; i++ {
		r := (pe.Rank() + i) % p
		parts[r] = arena[off : off+lens[i]]
		off += lens[i]
	}
	out := s.out
	eng := s.eng
	*s = allGathervStep[T]{}
	comm.PutPooled(pe, s)
	if out != nil {
		out(parts)
	}
	clear(parts)
	commbuf.For[[]T]().Put(partsPtr)
	eng.release(pe)
	return nil
}

// allGatherConcatStep — see AllGatherConcatStep.
type allGatherConcatStep[T any] struct {
	data []T
	out  func([]T)
	eng  *agBruckStep[T]
}

// AllGatherConcatStep is the continuation form of AllGatherConcat: out
// receives every PE's slice concatenated in rank order, as a borrowed
// pooled buffer valid only during the call (the blocking form's result
// is caller-owned instead). Steady-state allocation-free.
func AllGatherConcatStep[T any](pe *comm.PE, data []T, out func([]T)) comm.Stepper {
	s := comm.GetPooled[allGatherConcatStep[T]](pe)
	*s = allGatherConcatStep[T]{data: data, out: out}
	return s
}

func (s *allGatherConcatStep[T]) Step(pe *comm.PE) *comm.RecvHandle {
	p := pe.P()
	if p == 1 {
		out, data := s.out, s.data
		*s = allGatherConcatStep[T]{}
		comm.PutPooled(pe, s)
		if out != nil {
			out(data)
		}
		return nil
	}
	if s.eng == nil {
		s.eng = newAGBruckStep(pe, s.data, false)
	}
	if h := s.eng.Step(pe); h != nil {
		return h
	}
	arena, lens := s.eng.arena, s.eng.lens
	// Rotate into rank order (see AllGatherConcat) inside a pooled buffer.
	i0 := (p - pe.Rank()) % p
	var off0 int64
	for _, l := range lens[:i0] {
		off0 += l
	}
	rotPtr := commbuf.For[T]().Get(len(arena))
	rot := *rotPtr
	n := copy(rot, arena[off0:])
	copy(rot[n:], arena[:off0])
	out := s.out
	eng := s.eng
	*s = allGatherConcatStep[T]{}
	comm.PutPooled(pe, s)
	if out != nil {
		out(rot)
	}
	commbuf.For[T]().Put(rotPtr)
	eng.release(pe)
	return nil
}

// ---------------------------------------------------------------------------
// Direct all-to-all
// ---------------------------------------------------------------------------

// allToAllStep — see AllToAllStep.
type allToAllStep[T any] struct {
	parts [][]T
	visit func(src int, part []T)
	pool  *commbuf.Pool[T]
	tag   comm.Tag
	i     int
	h     *comm.RecvHandle
	phase int
}

// AllToAllStep is the continuation form of AllToAll: parts[i] reaches PE
// i, and visit observes each received part — the own part first, then
// the staggered sources in exchange order. Unlike the blocking form's
// per-sender aliasing, visited parts are pooled receiver-side copies
// valid only during the call (the ownership-transfer framing that makes
// the stepper allocation-free); the measured words and startups are
// identical.
func AllToAllStep[T any](pe *comm.PE, parts [][]T, visit func(src int, part []T)) comm.Stepper {
	s := comm.GetPooled[allToAllStep[T]](pe)
	*s = allToAllStep[T]{parts: parts, visit: visit}
	return s
}

func (s *allToAllStep[T]) Step(pe *comm.PE) *comm.RecvHandle {
	p := pe.P()
	rank := pe.Rank()
	for {
		switch s.phase {
		case 0:
			if len(s.parts) != p {
				panic(fmt.Sprintf("coll: AllToAll needs %d parts, got %d", p, len(s.parts)))
			}
			if s.visit != nil {
				s.visit(rank, s.parts[rank])
			}
			if p == 1 {
				s.phase = 3
				continue
			}
			s.pool = commbuf.For[T]()
			s.tag = pe.NextCollTag()
			s.i = 1
			s.phase = 1
		case 1:
			if s.i >= p {
				s.phase = 3
				continue
			}
			dst := (rank + s.i) % p
			src := (rank - s.i + p) % p
			s.h = pe.IRecv(src, s.tag)
			sendCopy(pe, s.pool, dst, s.tag, s.parts[dst])
			s.phase = 2
			if !s.h.Test() {
				return s.h
			}
		case 2:
			rxAny, _ := s.h.Wait()
			s.h = nil
			rx := rxAny.(*[]T)
			if s.visit != nil {
				s.visit((rank-s.i+p)%p, *rx)
			}
			s.pool.Put(rx)
			s.i++
			s.phase = 1
		default:
			*s = allToAllStep[T]{}
			comm.PutPooled(pe, s)
			return nil
		}
	}
}

// ---------------------------------------------------------------------------
// Binomial gather
// ---------------------------------------------------------------------------

// gathervStep is the Gatherv tree engine as a continuation. It does not
// self-release: the root's consumer harvests hold (blocks in tree-merge
// order, each labeled with its contributing rank) and calls release.
// Non-root PEs end with hold nil (their batch moved to the parent).
type gathervStep[T any] struct {
	root    int
	data    []T
	bpool   *commbuf.Pool[rankedBlock[T]]
	tag     comm.Tag
	vr      int
	mask    int
	holdPtr *[]rankedBlock[T]
	hold    []rankedBlock[T]
	h       *comm.RecvHandle
	phase   int
}

func newGathervStep[T any](pe *comm.PE, root int, data []T) *gathervStep[T] {
	s := comm.GetPooled[gathervStep[T]](pe)
	*s = gathervStep[T]{root: root, data: data}
	return s
}

func (s *gathervStep[T]) release(pe *comm.PE) {
	if s.holdPtr != nil {
		*s.holdPtr = s.hold
		s.bpool.Put(s.holdPtr)
	}
	*s = gathervStep[T]{}
	comm.PutPooled(pe, s)
}

func (s *gathervStep[T]) Step(pe *comm.PE) *comm.RecvHandle {
	p := pe.P()
	for {
		switch s.phase {
		case 0:
			s.bpool = commbuf.For[rankedBlock[T]]()
			s.tag = pe.NextCollTag()
			s.vr = (pe.Rank() - s.root + p) % p
			s.holdPtr = s.bpool.GetCap(1)
			s.hold = append(*s.holdPtr, rankedBlock[T]{rank: pe.Rank(), data: s.data})
			s.mask = 1
			s.phase = 1
		case 1:
			for s.mask < p {
				if s.vr&s.mask != 0 {
					dst := ((s.vr &^ s.mask) + s.root) % p
					var words int64
					for _, b := range s.hold {
						words += sliceWords(b.data)
					}
					*s.holdPtr = s.hold
					pe.Send(dst, s.tag, s.holdPtr, words) // ownership moves to the parent
					s.holdPtr, s.hold = nil, nil
					return nil
				}
				src := s.vr | s.mask
				if src < p {
					s.h = pe.IRecv((src+s.root)%p, s.tag)
					s.phase = 2
					if !s.h.Test() {
						return s.h
					}
					break
				}
				s.mask <<= 1
			}
			if s.phase == 1 {
				return nil // root: hold carries all p blocks
			}
		default:
			rxAny, _ := s.h.Wait()
			s.h = nil
			blocks := rxAny.(*[]rankedBlock[T])
			s.hold = append(s.hold, (*blocks)...)
			s.bpool.Put(blocks)
			s.mask <<= 1
			s.phase = 1
		}
	}
}

// gathervOutStep — see GathervStep.
type gathervOutStep[T any] struct {
	root int
	data []T
	out  func([][]T)
	eng  *gathervStep[T]
}

// GathervStep is the continuation form of Gatherv: out receives the
// rank-indexed slice of contributions on the root and nil elsewhere. The
// rank-indexed slice is a borrowed pooled view valid only during the
// call (the contributed subslices themselves alias the senders' data,
// exactly like the blocking form — read-only). Steady-state
// allocation-free on every PE.
func GathervStep[T any](pe *comm.PE, root int, data []T, out func([][]T)) comm.Stepper {
	s := comm.GetPooled[gathervOutStep[T]](pe)
	*s = gathervOutStep[T]{root: root, data: data, out: out}
	return s
}

func (s *gathervOutStep[T]) Step(pe *comm.PE) *comm.RecvHandle {
	p := pe.P()
	if p == 1 {
		out, data := s.out, s.data
		*s = gathervOutStep[T]{}
		comm.PutPooled(pe, s)
		if out != nil {
			out([][]T{data})
		}
		return nil
	}
	if s.eng == nil {
		s.eng = newGathervStep(pe, s.root, s.data)
	}
	if h := s.eng.Step(pe); h != nil {
		return h
	}
	var parts [][]T
	var partsPtr *[][]T
	if pe.Rank() == s.root {
		partsPtr = commbuf.For[[]T]().Get(p)
		parts = *partsPtr
		for _, b := range s.eng.hold {
			parts[b.rank] = b.data
		}
	}
	out := s.out
	eng := s.eng
	*s = gathervOutStep[T]{}
	comm.PutPooled(pe, s)
	if out != nil {
		out(parts)
	}
	if partsPtr != nil {
		clear(*partsPtr)
		commbuf.For[[]T]().Put(partsPtr)
	}
	eng.release(pe)
	return nil
}

// ---------------------------------------------------------------------------
// Scalar broadcast
// ---------------------------------------------------------------------------

// broadcastScalarStep — see BroadcastScalarStep.
type broadcastScalarStep[T any] struct {
	root  int
	v     T
	out   func(T)
	pool  *commbuf.Pool[T]
	tag   comm.Tag
	vr    int
	mask  int
	h     *comm.RecvHandle
	phase int
}

// BroadcastScalarStep is the continuation form of BroadcastScalar: the
// binomial tree on pooled one-element buffers, identical wire schedule.
func BroadcastScalarStep[T any](pe *comm.PE, root int, v T, out func(T)) comm.Stepper {
	s := comm.GetPooled[broadcastScalarStep[T]](pe)
	*s = broadcastScalarStep[T]{root: root, v: v, out: out}
	return s
}

func (s *broadcastScalarStep[T]) Step(pe *comm.PE) *comm.RecvHandle {
	p := pe.P()
	for {
		switch s.phase {
		case 0:
			if p == 1 {
				s.phase = 3
				continue
			}
			s.pool = commbuf.For[T]()
			s.tag = pe.NextCollTag()
			s.vr = (pe.Rank() - s.root + p) % p
			s.mask = 1
			for s.mask < p {
				if s.vr&s.mask != 0 {
					parent := ((s.vr &^ s.mask) + s.root) % p
					s.h = pe.IRecv(parent, s.tag)
					break
				}
				s.mask <<= 1
			}
			s.phase = 1
			if s.h != nil && !s.h.Test() {
				return s.h
			}
		case 1:
			if s.h != nil {
				rxAny, _ := s.h.Wait()
				s.h = nil
				rx := rxAny.(*[]T)
				s.v = (*rx)[0]
				s.pool.Put(rx)
			}
			s.phase = 2
		case 2:
			w := WordsOf[T]()
			for s.mask >>= 1; s.mask > 0; s.mask >>= 1 {
				child := s.vr | s.mask
				if child < p && child != s.vr {
					b := s.pool.Get(1)
					(*b)[0] = s.v
					pe.Send((child+s.root)%p, s.tag, b, w)
				}
			}
			s.phase = 3
		default:
			out, v := s.out, s.v
			*s = broadcastScalarStep[T]{}
			comm.PutPooled(pe, s)
			if out != nil {
				out(v)
			}
			return nil
		}
	}
}
