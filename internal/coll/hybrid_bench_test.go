package coll

import (
	"fmt"
	"testing"

	"commtopk/internal/comm"
)

// BenchmarkAllGatherConcatPayload measures the all-gather across block
// sizes — the final-round reference-share hybrid's win grows with the
// payload (at 1-word blocks per-message overhead dominates; at KB-scale
// blocks the saved copy of half the total is the bulk of host time).
func BenchmarkAllGatherConcatPayload(b *testing.B) {
	for _, words := range []int{1, 256, 4096} {
		for _, cfg := range []func(int) comm.Config{comm.MatrixConfig, comm.MailboxConfig} {
			c := cfg(64)
			b.Run(fmt.Sprintf("words=%d/%s", words, c.Backend), func(b *testing.B) {
				m := comm.NewMachine(c)
				defer m.Close()
				data := make([]int64, words)
				m.MustRun(func(pe *comm.PE) {}) // warm scheduler
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.MustRun(func(pe *comm.PE) { AllGatherConcat(pe, data) })
				}
			})
		}
	}
}
