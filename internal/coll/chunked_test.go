package coll

import (
	"fmt"
	"reflect"
	"slices"
	"testing"

	"commtopk/internal/comm"
)

// raggedBlock builds rank r's deterministic, uneven contribution.
func raggedBlock(r, seed int) []int64 {
	out := make([]int64, (r+seed)%5)
	for i := range out {
		out[i] = int64(seed*1000 + r*10 + i)
	}
	return out
}

// TestAllGatherChunkedMatchesAllGatherv pins the streaming all-gather
// against the materializing reference: every rank's block delivered
// exactly once, with the right contents, for ragged inputs, power and
// non-power p, and chunk sizes from the pure ring (1) through a single
// group (≥ p) — on both backends.
func TestAllGatherChunkedMatchesAllGatherv(t *testing.T) {
	for _, cfg := range []func(int) comm.Config{comm.MailboxConfig, comm.MatrixConfig} {
		for _, p := range []int{1, 2, 4, 6, 7, 16} {
			for _, chunk := range []int{1, 2, 3, 64} {
				name := fmt.Sprintf("%s/p=%d/chunk=%d", cfg(p).Backend, p, chunk)
				t.Run(name, func(t *testing.T) {
					m := comm.NewMachine(cfg(p))
					defer m.Close()
					want := make([][][]int64, p) // [rank][src]block
					got := make([][][]int64, p)
					calls := make([]int, p)
					m.MustRun(func(pe *comm.PE) {
						data := raggedBlock(pe.Rank(), p)
						ref := AllGatherv(pe, slices.Clone(data))
						want[pe.Rank()] = make([][]int64, p)
						for src, b := range ref {
							want[pe.Rank()][src] = slices.Clone(b)
						}
						got[pe.Rank()] = make([][]int64, p)
						AllGatherChunked(pe, data, chunk, func(src int, block []int64) {
							if got[pe.Rank()][src] != nil {
								t.Errorf("PE %d: rank %d visited twice", pe.Rank(), src)
							}
							got[pe.Rank()][src] = slices.Clone(block)
							calls[pe.Rank()]++
						})
					})
					for r := 0; r < p; r++ {
						if calls[r] != p {
							t.Errorf("PE %d: %d visits, want %d", r, calls[r], p)
						}
						if !reflect.DeepEqual(want[r], got[r]) {
							t.Errorf("PE %d: chunked gather diverges from AllGatherv\nwant %v\ngot  %v", r, want[r], got[r])
						}
					}
				})
			}
		}
	}
}

// TestAllGatherChunkedStartups pins the latency model: ⌈log₂ c⌉ + p/c − 1
// startups per PE for the group phase plus the inter-group ring.
func TestAllGatherChunkedStartups(t *testing.T) {
	for _, tc := range []struct{ p, chunk, want int }{
		{16, 4, 2 + 3},  // log2(4) + 16/4 − 1
		{16, 1, 0 + 15}, // pure ring
		{16, 16, 4 + 0}, // single group = plain Bruck
		{12, 5, 2 + 2},  // c = largest divisor ≤ 5 → 4
	} {
		m := comm.NewMachine(comm.MailboxConfig(tc.p))
		m.MustRun(func(pe *comm.PE) {
			AllGatherChunked(pe, []int64{int64(pe.Rank())}, tc.chunk, func(int, []int64) {})
		})
		if got := int(m.Stats().MaxSends); got != tc.want {
			t.Errorf("p=%d chunk=%d: %d startups/PE, want %d", tc.p, tc.chunk, got, tc.want)
		}
		m.Close()
	}
}

// TestAllGatherChunkedVolume pins the volume class: per-PE sent words
// stay within total + p length-words regardless of chunk.
func TestAllGatherChunkedVolume(t *testing.T) {
	const p, blockLen = 16, 8
	total := int64(p * blockLen)
	for _, chunk := range []int{1, 4, 16} {
		m := comm.NewMachine(comm.MailboxConfig(p))
		m.MustRun(func(pe *comm.PE) {
			AllGatherChunked(pe, make([]int64, blockLen), chunk, func(int, []int64) {})
		})
		if got := m.Stats().MaxSentWords; got > total+int64(p) {
			t.Errorf("chunk=%d: %d words/PE sent, want ≤ %d", chunk, got, total+int64(p))
		}
		m.Close()
	}
}

// TestAllToAllCombineChunkedMatchesUnchunked pins the chunk-framed
// hypercube router against AllToAllCombine: identical delivered
// multisets (and identical order, since the routing structure is shared)
// with and without a combine hook, across chunk sizes and non-power p.
func TestAllToAllCombineChunkedMatchesUnchunked(t *testing.T) {
	combine := func(held []Routed[int64]) []Routed[int64] {
		// Sum payloads per destination — order-canonical, like the DHT use.
		sums := map[int]int64{}
		for _, it := range held {
			sums[it.Dest] += it.Payload
		}
		dests := make([]int, 0, len(sums))
		for d := range sums {
			dests = append(dests, d)
		}
		slices.Sort(dests)
		out := make([]Routed[int64], 0, len(sums))
		for _, d := range dests {
			out = append(out, Routed[int64]{Dest: d, Payload: sums[d]})
		}
		return out
	}
	for _, p := range []int{1, 2, 5, 8, 13} {
		for _, chunk := range []int{1, 3, 1024} {
			for _, withCombine := range []bool{false, true} {
				name := fmt.Sprintf("p=%d/chunk=%d/combine=%v", p, chunk, withCombine)
				t.Run(name, func(t *testing.T) {
					mk := func(pe *comm.PE) []Routed[int64] {
						items := make([]Routed[int64], 2*pe.P())
						for i := range items {
							items[i] = Routed[int64]{Dest: i % pe.P(), Payload: int64(pe.Rank()*1000 + i)}
						}
						return items
					}
					var cmb func([]Routed[int64]) []Routed[int64]
					if withCombine {
						cmb = combine
					}
					want := make([][]Routed[int64], p)
					got := make([][]Routed[int64], p)
					m := comm.NewMachine(comm.MailboxConfig(p))
					defer m.Close()
					m.MustRun(func(pe *comm.PE) {
						want[pe.Rank()] = AllToAllCombine(pe, mk(pe), cmb)
						got[pe.Rank()] = AllToAllCombineChunked(pe, mk(pe), chunk, cmb)
					})
					for r := 0; r < p; r++ {
						sortRouted(want[r])
						sortRouted(got[r])
						if !reflect.DeepEqual(want[r], got[r]) {
							t.Errorf("PE %d: chunked routing diverges\nwant %v\ngot  %v", r, want[r], got[r])
						}
					}
				})
			}
		}
	}
}

func sortRouted(items []Routed[int64]) {
	slices.SortFunc(items, func(a, b Routed[int64]) int {
		if a.Dest != b.Dest {
			return a.Dest - b.Dest
		}
		switch {
		case a.Payload < b.Payload:
			return -1
		case a.Payload > b.Payload:
			return 1
		}
		return 0
	})
}

// TestAllToAllCombineChunkedInFlightBound pins the chunk framing in the
// meter: with n items per shipment and chunk c, each exchange costs
// ⌈n/c⌉ + 1 startups instead of 1, and exactly one extra word.
func TestAllToAllCombineChunkedInFlightBound(t *testing.T) {
	const p = 8
	run := func(chunk int) (sends, words int64) {
		m := comm.NewMachine(comm.MailboxConfig(p))
		defer m.Close()
		m.MustRun(func(pe *comm.PE) {
			items := make([]Routed[int64], 6)
			for i := range items {
				items[i] = Routed[int64]{Dest: (pe.Rank() + i) % p, Payload: 1}
			}
			AllToAllCombineChunked(pe, items, chunk, nil)
		})
		s := m.Stats()
		return s.TotalSends, s.TotalWords
	}
	s1, w1 := run(1)
	s64, w64 := run(64)
	if s1 <= s64 {
		t.Errorf("chunk=1 should need more startups than chunk=64: %d vs %d", s1, s64)
	}
	if w1 != w64 {
		t.Errorf("volume must not depend on chunk: %d vs %d words", w1, w64)
	}
}
