// Package coll implements the collective communication operations of
// Section 2 of the paper on top of the point-to-point primitives of
// internal/comm: broadcast, (all-)reduction, prefix sums, gather, scatter,
// all-gather, all-to-all, and the hypercube all-to-all with per-step
// combining used for distributed hash table insertion.
//
// All collectives are implemented with binomial trees, recursive doubling
// or hypercube exchanges, so their measured startup counts are O(log p)
// and their measured volumes match the O(βm + α log p) bounds the paper
// assumes. Every collective must be entered by all PEs (SPMD discipline);
// tags are drawn from the synchronized per-PE sequence.
//
// # Buffer ownership and allocation discipline
//
// The reduction-shaped collectives move all intermediate message buffers
// through the typed pools in internal/commbuf, travelling as *[]T (a
// pointer in an interface does not allocate, unlike a slice header).
// Ownership of a buffer transfers with the message — the sender never
// touches it again, and the receiver recycles it after combining — so
// recycling is race-free without any extra synchronization. Results never
// alias caller inputs, and caller inputs are never sent by reference, so
// callers may reuse their input slices immediately.
//
// Fully allocation-free in steady state are the variants that do not hand
// a fresh result slice to the caller: ReduceInto/AllReduceInto (with a
// reused dst), the scalar collectives (AllReduceScalar, SumAll, MinAll,
// MaxAll, BroadcastScalar, ExScanSum), and Barrier. The slice-returning
// conveniences (Reduce, AllReduce, InScan, ExScan, AllGatherConcat) still
// allocate their result — one slice per call, with all internal traffic
// pooled.
//
// The data-movement collectives (Broadcast, Gatherv, AllGatherv, AllToAll)
// keep their by-reference semantics for the payload: see each function's
// aliasing notes.
package coll

import (
	"cmp"
	"fmt"
	"slices"
	"unsafe"

	"commtopk/internal/comm"
	"commtopk/internal/commbuf"
)

// WordsOf returns the size of T in 64-bit machine words (rounded up),
// used to meter messages in the paper's unit of account.
func WordsOf[T any]() int64 {
	var zero T
	sz := int64(unsafe.Sizeof(zero))
	if sz == 0 {
		return 0
	}
	return (sz + 7) / 8
}

func sliceWords[T any](s []T) int64 { return int64(len(s)) * WordsOf[T]() }

// sendCopy copies s into a pooled buffer and sends it to dst. Ownership of
// the buffer passes to the receiver (which recycles it via recvOwned +
// Put), so s itself never enters a channel and the caller may mutate it as
// soon as sendCopy returns.
func sendCopy[T any](pe *comm.PE, pool *commbuf.Pool[T], dst int, tag comm.Tag, s []T) {
	b := pool.Get(len(s))
	copy(*b, s)
	pe.Send(dst, tag, b, sliceWords(s))
}

// recvOwned receives a pooled buffer sent with sendCopy (or an ownership
// transfer of a pooled accumulator). The caller owns the buffer and must
// Put it back when done reading.
func recvOwned[T any](pe *comm.PE, src int, tag comm.Tag) *[]T {
	rx, _ := pe.Recv(src, tag)
	return rx.(*[]T)
}

// combine folds rx into acc elementwise, in place.
func combine[T any](op func(a, b T) T, acc, rx []T) {
	if len(acc) != len(rx) {
		panic(fmt.Sprintf("coll: reduction vector length mismatch: %d vs %d", len(acc), len(rx)))
	}
	for i, v := range rx {
		acc[i] = op(acc[i], v)
	}
}

// Barrier synchronizes all PEs (a zero-word all-reduce).
func Barrier(pe *comm.PE) {
	AllReduceScalar(pe, int64(0), func(a, b int64) int64 { return a + b })
}

// Broadcast distributes root's data to all PEs along a binomial tree and
// returns it everywhere. Non-root inputs are ignored. The returned slice
// is shared between PEs in-process and must be treated as read-only; use
// slices.Clone if mutation is needed.
func Broadcast[T any](pe *comm.PE, root int, data []T) []T {
	p := pe.P()
	if p == 1 {
		return data
	}
	tag := pe.NextCollTag()
	vr := (pe.Rank() - root + p) % p
	// The payload is boxed into an interface once and the same box reused
	// for every child, so a fan-out of log p sends costs one allocation.
	var boxed any
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			parent := ((vr &^ mask) + root) % p
			rx, _ := pe.Recv(parent, tag)
			boxed = rx
			data = rx.([]T)
			break
		}
		mask <<= 1
	}
	if boxed == nil {
		boxed = data
	}
	// mask is now the position at which we received (or ≥p for the root);
	// children sit at vr|m for all m below it.
	words := sliceWords(data)
	for mask >>= 1; mask > 0; mask >>= 1 {
		child := vr | mask
		if child < p && child != vr {
			pe.Send((child+root)%p, tag, boxed, words)
		}
	}
	return data
}

// BroadcastScalar broadcasts a single value from root.
func BroadcastScalar[T any](pe *comm.PE, root int, v T) T {
	p := pe.P()
	if p == 1 {
		return v
	}
	pool := commbuf.For[T]()
	tag := pe.NextCollTag()
	vr := (pe.Rank() - root + p) % p
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			parent := ((vr &^ mask) + root) % p
			rx := recvOwned[T](pe, parent, tag)
			v = (*rx)[0]
			pool.Put(rx)
			break
		}
		mask <<= 1
	}
	w := WordsOf[T]()
	for mask >>= 1; mask > 0; mask >>= 1 {
		child := vr | mask
		if child < p && child != vr {
			b := pool.Get(1)
			(*b)[0] = v
			pe.Send((child+root)%p, tag, b, w)
		}
	}
	return v
}

// Reduce combines the vectors x elementwise with op along a binomial tree;
// the result lands on root (nil elsewhere). op must be associative and
// commutative. The result never aliases x, and x is not retained after
// Reduce returns.
func Reduce[T any](pe *comm.PE, root int, x []T, op func(a, b T) T) []T {
	if pe.Rank() != root && pe.P() > 1 {
		return ReduceInto(pe, root, nil, x, op)
	}
	return ReduceInto(pe, root, make([]T, 0, len(x)), x, op)
}

// ReduceInto is Reduce writing the root's result into dst (grown as
// needed; pass nil to allocate). dst must not overlap x. Only the root's
// dst is used; other PEs may pass nil and receive nil. With a reused dst
// the steady-state allocation count is zero on every PE. The schedule is
// the binomial-tree engine of async_reduce.go driven to completion with
// blocking waits — one implementation for both execution modes.
func ReduceInto[T any](pe *comm.PE, root int, dst, x []T, op func(a, b T) T) []T {
	var result []T
	comm.RunSteps(pe, ReduceStep(pe, root, dst, x, op, func(r []T) { result = r }))
	return result
}

// AllReduce combines x elementwise with op and returns the result on all
// PEs. Short vectors use recursive doubling (volume m·log p, minimal
// latency); long vectors switch to reduce-scatter + all-gather
// (Rabenseifner), whose volume is O(m) independent of p — the
// full-bandwidth regime of the collectives the paper cites [33]. Both
// paths fold non-power-of-two stragglers onto partners first. The result
// never aliases x and is owned by the caller.
func AllReduce[T any](pe *comm.PE, x []T, op func(a, b T) T) []T {
	return AllReduceInto(pe, nil, x, op)
}

// AllReduceInto is AllReduce writing the result into dst (grown as needed;
// pass nil to allocate). dst must not overlap x. With a reused dst the
// steady-state allocation count is zero. The schedule is the all-reduce
// engine stepper of async_vec.go, driven to completion with blocking
// waits (comm.RunSteps) — one implementation for both execution modes.
func AllReduceInto[T any](pe *comm.PE, dst, x []T, op func(a, b T) T) []T {
	dst = commbuf.Resize(dst[:0], len(x))
	copy(dst, x)
	comm.RunSteps(pe, newAllReduceAccStep(pe, dst, op, nil))
	return dst
}

// AllReduceScalar is AllReduce for a single value. Allocation-free in
// steady state.
func AllReduceScalar[T any](pe *comm.PE, v T, op func(a, b T) T) T {
	if pe.P() == 1 {
		return v
	}
	pool := commbuf.For[T]()
	b := pool.Get(1)
	(*b)[0] = v
	comm.RunSteps(pe, newAllReduceAccStep(pe, *b, op, nil))
	out := (*b)[0]
	pool.Put(b)
	return out
}

// addOf, minOf and maxOf are the scalar reduction operators as
// package-level generic functions. Evaluating one inside a generic
// function still builds a dictionary-carrying func value that
// heap-allocates when it escapes into the pooled stepper state, so the
// zero-alloc wrappers below cache the built values in a per-PE singleton
// (comm.GetSingleton) — one allocation per PE and element type, ever.
func addOf[T cmp.Ordered](a, b T) T { return a + b }
func minOf[T cmp.Ordered](a, b T) T { return min(a, b) }
func maxOf[T cmp.Ordered](a, b T) T { return max(a, b) }

type scalarOps[T cmp.Ordered] struct {
	add, mn, mx func(a, b T) T
}

func opsOf[T cmp.Ordered](pe *comm.PE) *scalarOps[T] {
	o := comm.GetSingleton[scalarOps[T]](pe)
	if o.add == nil {
		o.add, o.mn, o.mx = addOf[T], minOf[T], maxOf[T]
	}
	return o
}

// SumAll returns the global sum of v across PEs on all PEs.
func SumAll[T int | int64 | float64 | uint64](pe *comm.PE, v T) T {
	return AllReduceScalar(pe, v, opsOf[T](pe).add)
}

// MinAll returns the global minimum of v across PEs on all PEs.
func MinAll[T cmp.Ordered](pe *comm.PE, v T) T {
	return AllReduceScalar(pe, v, opsOf[T](pe).mn)
}

// MaxAll returns the global maximum of v across PEs on all PEs.
func MaxAll[T cmp.Ordered](pe *comm.PE, v T) T {
	return AllReduceScalar(pe, v, opsOf[T](pe).mx)
}

// InScan returns the inclusive prefix combination of x: PE j receives
// op(x@0, ..., x@j) elementwise (Hillis–Steele dissemination, O(log p)
// rounds). The result never aliases x.
func InScan[T any](pe *comm.PE, x []T, op func(a, b T) T) []T {
	var res []T
	comm.RunSteps(pe, InScanStep(pe, nil, x, op, func(v []T) { res = v }))
	return res
}

// ExScan returns the exclusive prefix combination of x: PE j receives
// op(x@0, ..., x@(j-1)), and PE 0 receives identity.
func ExScan[T any](pe *comm.PE, x []T, op func(a, b T) T, identity []T) []T {
	var res []T
	comm.RunSteps(pe, ExScanStep(pe, nil, x, op, identity, func(v []T) { res = v }))
	return res
}

// ExScanSum returns the exclusive prefix sum of a scalar. Allocation-free
// in steady state.
func ExScanSum[T int | int64 | float64 | uint64](pe *comm.PE, v T) T {
	p := pe.P()
	if p == 1 {
		return 0
	}
	pool := commbuf.For[T]()
	w := WordsOf[T]()
	rank := pe.Rank()
	// Inclusive dissemination scan on the scalar.
	tag := pe.NextCollTag()
	acc := v
	for d := 1; d < p; d <<= 1 {
		var h *comm.RecvHandle
		if rank-d >= 0 {
			h = pe.IRecv(rank-d, tag)
		}
		if rank+d < p {
			b := pool.Get(1)
			(*b)[0] = acc
			pe.Send(rank+d, tag, b, w)
		}
		if h != nil {
			rxAny, _ := h.Wait()
			rx := rxAny.(*[]T)
			acc = (*rx)[0] + acc
			pool.Put(rx)
		}
	}
	// Shift down by one rank to make it exclusive.
	tag = pe.NextCollTag()
	var h *comm.RecvHandle
	if rank > 0 {
		h = pe.IRecv(rank-1, tag)
	}
	if rank+1 < p {
		b := pool.Get(1)
		(*b)[0] = acc
		pe.Send(rank+1, tag, b, w)
	}
	if rank == 0 {
		return 0
	}
	rxAny, _ := h.Wait()
	rx := rxAny.(*[]T)
	out := (*rx)[0]
	pool.Put(rx)
	return out
}

// rankedBlock carries a PE's contribution through a gather tree.
type rankedBlock[T any] struct {
	rank int
	data []T
}

// Gatherv collects every PE's slice on root: the returned slice of slices
// is indexed by rank on root, nil elsewhere. Contributions may have
// different lengths. Uses a binomial tree (O(α log p) startups; each tree
// edge carries its whole subtree, so volume is O(β·total) at the root's
// incoming edges, matching the model). The root's result aliases the
// contributing PEs' data slices (not copies); treat it as read-only.
func Gatherv[T any](pe *comm.PE, root int, data []T) [][]T {
	p := pe.P()
	if p == 1 {
		return [][]T{data}
	}
	st := newGathervStep(pe, root, data)
	comm.RunSteps(pe, st)
	var out [][]T
	if pe.Rank() == root {
		out = make([][]T, p)
		for _, b := range st.hold {
			out[b.rank] = b.data
		}
	}
	st.release(pe)
	return out
}

// Scatterv distributes parts[i] from root to PE i along a binomial tree and
// returns the local part on every PE. parts is only read on root. The
// returned slice aliases the root's parts[i] (not a copy). The schedule
// is the binomial-tree engine of async_reduce.go driven to completion
// with blocking waits — one implementation for both execution modes.
func Scatterv[T any](pe *comm.PE, root int, parts [][]T) []T {
	var mine []T
	comm.RunSteps(pe, ScattervStep(pe, root, parts, func(r []T) { mine = r }))
	return mine
}

// bruckMsg is one dissemination round's payload: the concatenated data of
// a contiguous run of blocks plus their individual lengths. The slices
// are pooled buffers whose ownership travels with the message (pointers,
// so the receiver can recycle them).
type bruckMsg[T any] struct {
	lens *[]int64
	data *[]T
}

// bruckView is a dissemination round's payload in the hybrid scheme:
// read-only views straight into the sender's held run, no staging copy.
// Each hop still lands one physical copy in the receiver (the arena
// append — what a real transfer's write side costs), but the sender no
// longer stages the run into a pooled buffer first; dropping that second
// copy plus the per-round pool traffic recovers most of the host-side
// cost the all-copying rewrite added, without touching the meter (the
// same words are charged). Safe because the sender only ever appends
// *beyond* the sent prefix afterwards (in-place appends write disjoint
// indices; reallocating appends leave the shared backing untouched), the
// receiver only reads, and every downstream consumer of the gathered
// result either copies it out (AllGatherConcat) or exposes it read-only
// (AllGatherv).
type bruckView[T any] struct {
	lens []int64
	data []T
}

// allGatherBruck is the dissemination (Bruck-style gossiping) all-gather
// engine: starting from its own block, every PE doubles its held run of
// blocks per round by exchanging with partners at distance 2^i, so after
// ⌈log₂ p⌉ rounds it holds all p blocks. Compared to the previous
// gather+broadcast realization the bottleneck volume drops from the
// root's Θ(total·log p) (the binomial broadcast resends the full
// assembly to every child) to ≤ total + p length words per PE — the
// paper's O(β·total + α log p) with the gossiping constant — and the
// startup count is a uniform ⌈log₂ p⌉ per PE.
//
// Returns the receiver-local arena holding the blocks in shifted order
// (rank, rank+1, …, rank+p−1 mod p) and the per-block lengths in that
// order. Both are freshly allocated and caller-owned; nothing aliases
// another PE's memory. Every round ships in-process read-only views of
// the sender's held run (see bruckView) and the receiver appends them
// into its own arena — one physical copy per hop instead of a staging
// copy plus an append, while the meter still charges the full transfer.
func allGatherBruck[T any](pe *comm.PE, data []T) (arena []T, lens []int64) {
	st := newAGBruckStep(pe, data, true)
	comm.RunSteps(pe, st)
	arena, lens = st.arena, st.lens
	st.put(pe)
	return arena, lens
}

// AllGatherv collects every PE's slice on all PEs (indexed by rank), via
// the dissemination all-gather (see allGatherBruck): volume ≤ total + p
// length words per PE in ⌈log₂ p⌉ startups — the paper's gossiping bound,
// half (or better) of the previous gather+broadcast realization. The
// returned subslices view one receiver-local buffer; as before, treat
// them as read-only (for p = 1 the result aliases data).
func AllGatherv[T any](pe *comm.PE, data []T) [][]T {
	p := pe.P()
	if p == 1 {
		return [][]T{data}
	}
	arena, lens := allGatherBruck(pe, data)
	out := make([][]T, p)
	var off int64
	for i := 0; i < p; i++ {
		r := (pe.Rank() + i) % p
		out[r] = arena[off : off+lens[i]]
		off += lens[i]
	}
	return out
}

// AllGatherConcat collects every PE's slice concatenated in rank order.
// The result is owned by the caller (each PE gets its own copy).
func AllGatherConcat[T any](pe *comm.PE, data []T) []T {
	p := pe.P()
	if p == 1 {
		return slices.Clone(data)
	}
	arena, lens := allGatherBruck(pe, data)
	// The arena starts at this PE's own block; rotate into rank order.
	// Block of rank 0 sits at held index i0 = p − rank (mod p).
	i0 := (p - pe.Rank()) % p
	var off0 int64
	for _, l := range lens[:i0] {
		off0 += l
	}
	out := make([]T, len(arena))
	n := copy(out, arena[off0:])
	copy(out[n:], arena[:off0])
	return out
}

// AllToAll delivers parts[i] from every PE to PE i; the result is indexed
// by source rank. Direct point-to-point delivery: p-1 startups per PE,
// pairwise-staggered to avoid hot spots. The self-part out[rank] aliases
// parts[rank] (no copy — pinned by tests), and received parts alias the
// senders' slices; treat the result as read-only.
func AllToAll[T any](pe *comm.PE, parts [][]T) [][]T {
	p := pe.P()
	if len(parts) != p {
		panic(fmt.Sprintf("coll: AllToAll needs %d parts, got %d", p, len(parts)))
	}
	out := make([][]T, p)
	out[pe.Rank()] = parts[pe.Rank()]
	if p == 1 {
		return out
	}
	tag := pe.NextCollTag()
	rank := pe.Rank()
	for i := 1; i < p; i++ {
		dst := (rank + i) % p
		src := (rank - i + p) % p
		h := pe.IRecv(src, tag)
		pe.Send(dst, tag, parts[dst], sliceWords(parts[dst]))
		rx, _ := h.Wait()
		out[src] = rx.([]T)
	}
	return out
}

// SortedSample realizes the paper's "fast inefficient sorting" of a small
// distributed sample (O(√p) objects): the sample is all-gathered and each
// PE sorts it locally, so afterwards every PE knows the globally sorted
// sample. Volume O(β|S|) per PE and O(α log p) startups, the same cost
// class as the brute-force comparison sort of [2].
func SortedSample[K cmp.Ordered](pe *comm.PE, local []K) []K {
	all := AllGatherConcat(pe, local)
	slices.Sort(all)
	return all
}
