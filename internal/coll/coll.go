// Package coll implements the collective communication operations of
// Section 2 of the paper on top of the point-to-point primitives of
// internal/comm: broadcast, (all-)reduction, prefix sums, gather, scatter,
// all-gather, all-to-all, and the hypercube all-to-all with per-step
// combining used for distributed hash table insertion.
//
// All collectives are implemented with binomial trees, recursive doubling
// or hypercube exchanges, so their measured startup counts are O(log p)
// and their measured volumes match the O(βm + α log p) bounds the paper
// assumes. Every collective must be entered by all PEs (SPMD discipline);
// tags are drawn from the synchronized per-PE sequence.
package coll

import (
	"cmp"
	"fmt"
	"slices"
	"unsafe"

	"commtopk/internal/comm"
)

// WordsOf returns the size of T in 64-bit machine words (rounded up),
// used to meter messages in the paper's unit of account.
func WordsOf[T any]() int64 {
	var zero T
	sz := int64(unsafe.Sizeof(zero))
	if sz == 0 {
		return 0
	}
	return (sz + 7) / 8
}

func sliceWords[T any](s []T) int64 { return int64(len(s)) * WordsOf[T]() }

// Barrier synchronizes all PEs (a zero-word all-reduce).
func Barrier(pe *comm.PE) {
	AllReduce(pe, []int64{0}, func(a, b int64) int64 { return a + b })
}

// Broadcast distributes root's data to all PEs along a binomial tree and
// returns it everywhere. Non-root inputs are ignored. The returned slice
// is shared between PEs in-process and must be treated as read-only; use
// slices.Clone if mutation is needed.
func Broadcast[T any](pe *comm.PE, root int, data []T) []T {
	p := pe.P()
	if p == 1 {
		return data
	}
	tag := pe.NextCollTag()
	vr := (pe.Rank() - root + p) % p
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			parent := ((vr &^ mask) + root) % p
			rx, _ := pe.Recv(parent, tag)
			data = rx.([]T)
			break
		}
		mask <<= 1
	}
	// mask is now the position at which we received (or ≥p for the root);
	// children sit at vr|m for all m below it.
	for mask >>= 1; mask > 0; mask >>= 1 {
		child := vr | mask
		if child < p && child != vr {
			pe.Send((child+root)%p, tag, data, sliceWords(data))
		}
	}
	return data
}

// BroadcastScalar broadcasts a single value from root.
func BroadcastScalar[T any](pe *comm.PE, root int, v T) T {
	return Broadcast(pe, root, []T{v})[0]
}

func combineInto[T any](op func(a, b T) T, acc, rx []T) []T {
	if len(acc) != len(rx) {
		panic(fmt.Sprintf("coll: reduction vector length mismatch: %d vs %d", len(acc), len(rx)))
	}
	out := make([]T, len(acc))
	for i := range acc {
		out[i] = op(acc[i], rx[i])
	}
	return out
}

// Reduce combines the vectors x elementwise with op along a binomial tree;
// the result lands on root (nil elsewhere). op must be associative and
// commutative.
func Reduce[T any](pe *comm.PE, root int, x []T, op func(a, b T) T) []T {
	p := pe.P()
	if p == 1 {
		return slices.Clone(x)
	}
	tag := pe.NextCollTag()
	vr := (pe.Rank() - root + p) % p
	acc := x
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			parent := ((vr &^ mask) + root) % p
			pe.Send(parent, tag, acc, sliceWords(acc))
			return nil
		}
		src := vr | mask
		if src < p {
			rx, _ := pe.Recv((src+root)%p, tag)
			acc = combineInto(op, acc, rx.([]T))
		}
		mask <<= 1
	}
	if vr != 0 {
		return nil
	}
	if &acc[0] == &x[0] { // no child contributed; do not alias caller data
		acc = slices.Clone(x)
	}
	return acc
}

// AllReduce combines x elementwise with op and returns the result on all
// PEs. Short vectors use recursive doubling (volume m·log p, minimal
// latency); long vectors switch to reduce-scatter + all-gather
// (Rabenseifner), whose volume is O(m) independent of p — the
// full-bandwidth regime of the collectives the paper cites [33]. Both
// paths fold non-power-of-two stragglers onto partners first.
func AllReduce[T any](pe *comm.PE, x []T, op func(a, b T) T) []T {
	p := pe.P()
	if p == 1 {
		return slices.Clone(x)
	}
	tag := pe.NextCollTag()
	rank := pe.Rank()
	r := 1
	for r*2 <= p {
		r *= 2
	}
	extra := p - r
	acc := slices.Clone(x)
	if rank >= r {
		pe.Send(rank-r, tag, acc, sliceWords(acc))
		rx, _ := pe.Recv(rank-r, tag)
		return rx.([]T)
	}
	if rank < extra {
		rx, _ := pe.Recv(rank+r, tag)
		acc = combineInto(op, acc, rx.([]T))
	}
	if int64(len(acc))*WordsOf[T]() >= int64(4*r) && r > 2 {
		allReduceLong(pe, rank, r, tag, acc, op)
	} else {
		for mask := 1; mask < r; mask <<= 1 {
			partner := rank ^ mask
			rx, _ := pe.SendRecv(partner, acc, sliceWords(acc), partner, tag)
			acc = combineInto(op, acc, rx.([]T))
		}
	}
	if rank < extra {
		pe.Send(rank+r, tag, acc, sliceWords(acc))
	}
	return acc
}

// allReduceLong is the Rabenseifner path among the r (power of two)
// low ranks: recursive-halving reduce-scatter followed by
// recursive-doubling all-gather, mutating acc in place. Volume per PE is
// ≈ 2·m·(1−1/r) words in 2·log r startups.
func allReduceLong[T any](pe *comm.PE, rank, r int, tag comm.Tag, acc []T, op func(a, b T) T) {
	lo, hi := 0, len(acc)
	type level struct {
		partner int
		keptLow bool
		mid     int
		lowLen  int
		highLen int
	}
	var hist []level
	// Reduce-scatter by recursive halving.
	for mask := r / 2; mask >= 1; mask >>= 1 {
		partner := rank ^ mask
		mid := lo + (hi-lo)/2
		keepLow := rank&mask == 0
		var sendSeg []T
		if keepLow {
			sendSeg = slices.Clone(acc[mid:hi])
		} else {
			sendSeg = slices.Clone(acc[lo:mid])
		}
		rx, _ := pe.SendRecv(partner, sendSeg, sliceWords(sendSeg), partner, tag)
		rseg := rx.([]T)
		if keepLow {
			for i, v := range rseg {
				acc[lo+i] = op(acc[lo+i], v)
			}
			hist = append(hist, level{partner, true, mid, mid - lo, hi - mid})
			hi = mid
		} else {
			for i, v := range rseg {
				acc[mid+i] = op(acc[mid+i], v)
			}
			hist = append(hist, level{partner, false, mid, mid - lo, hi - mid})
			lo = mid
		}
	}
	// All-gather by retracing the halving in reverse.
	for i := len(hist) - 1; i >= 0; i-- {
		lv := hist[i]
		sendSeg := slices.Clone(acc[lo:hi])
		rx, _ := pe.SendRecv(lv.partner, sendSeg, sliceWords(sendSeg), lv.partner, tag)
		rseg := rx.([]T)
		if lv.keptLow {
			copy(acc[hi:hi+len(rseg)], rseg)
			hi += lv.highLen
		} else {
			copy(acc[lo-len(rseg):lo], rseg)
			lo -= lv.lowLen
		}
	}
}

// AllReduceScalar is AllReduce for a single value.
func AllReduceScalar[T any](pe *comm.PE, v T, op func(a, b T) T) T {
	return AllReduce(pe, []T{v}, op)[0]
}

// SumAll returns the global sum of v across PEs on all PEs.
func SumAll[T int | int64 | float64 | uint64](pe *comm.PE, v T) T {
	return AllReduceScalar(pe, v, func(a, b T) T { return a + b })
}

// MinAll returns the global minimum of v across PEs on all PEs.
func MinAll[T cmp.Ordered](pe *comm.PE, v T) T {
	return AllReduceScalar(pe, v, func(a, b T) T { return min(a, b) })
}

// MaxAll returns the global maximum of v across PEs on all PEs.
func MaxAll[T cmp.Ordered](pe *comm.PE, v T) T {
	return AllReduceScalar(pe, v, func(a, b T) T { return max(a, b) })
}

// InScan returns the inclusive prefix combination of x: PE j receives
// op(x@0, ..., x@j) elementwise (Hillis–Steele dissemination, O(log p)
// rounds).
func InScan[T any](pe *comm.PE, x []T, op func(a, b T) T) []T {
	p := pe.P()
	acc := slices.Clone(x)
	if p == 1 {
		return acc
	}
	tag := pe.NextCollTag()
	rank := pe.Rank()
	for d := 1; d < p; d <<= 1 {
		// acc currently covers ranks (rank-d, rank]; exchange to extend.
		if rank+d < p {
			pe.Send(rank+d, tag, acc, sliceWords(acc))
		}
		if rank-d >= 0 {
			rx, _ := pe.Recv(rank-d, tag)
			acc = combineInto(op, rx.([]T), acc)
		}
	}
	return acc
}

// ExScan returns the exclusive prefix combination of x: PE j receives
// op(x@0, ..., x@(j-1)), and PE 0 receives identity.
func ExScan[T any](pe *comm.PE, x []T, op func(a, b T) T, identity []T) []T {
	p := pe.P()
	if p == 1 {
		return slices.Clone(identity)
	}
	incl := InScan(pe, x, op)
	tag := pe.NextCollTag()
	rank := pe.Rank()
	if rank+1 < p {
		pe.Send(rank+1, tag, incl, sliceWords(incl))
	}
	if rank == 0 {
		return slices.Clone(identity)
	}
	rx, _ := pe.Recv(rank-1, tag)
	return rx.([]T)
}

// ExScanSum returns the exclusive prefix sum of a scalar.
func ExScanSum[T int | int64 | float64 | uint64](pe *comm.PE, v T) T {
	return ExScan(pe, []T{v}, func(a, b T) T { return a + b }, []T{0})[0]
}

// rankedBlock carries a PE's contribution through a gather tree.
type rankedBlock[T any] struct {
	rank int
	data []T
}

// Gatherv collects every PE's slice on root: the returned slice of slices
// is indexed by rank on root, nil elsewhere. Contributions may have
// different lengths. Uses a binomial tree (O(α log p) startups; each tree
// edge carries its whole subtree, so volume is O(β·total) at the root's
// incoming edges, matching the model).
func Gatherv[T any](pe *comm.PE, root int, data []T) [][]T {
	p := pe.P()
	if p == 1 {
		return [][]T{data}
	}
	tag := pe.NextCollTag()
	vr := (pe.Rank() - root + p) % p
	hold := []rankedBlock[T]{{rank: pe.Rank(), data: data}}
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			dst := ((vr &^ mask) + root) % p
			var words int64
			for _, b := range hold {
				words += sliceWords(b.data)
			}
			pe.Send(dst, tag, hold, words)
			return nil
		}
		src := vr | mask
		if src < p {
			rx, _ := pe.Recv((src+root)%p, tag)
			hold = append(hold, rx.([]rankedBlock[T])...)
		}
		mask <<= 1
	}
	out := make([][]T, p)
	for _, b := range hold {
		out[b.rank] = b.data
	}
	return out
}

// Scatterv distributes parts[i] from root to PE i along a binomial tree and
// returns the local part on every PE. parts is only read on root.
func Scatterv[T any](pe *comm.PE, root int, parts [][]T) []T {
	p := pe.P()
	if p == 1 {
		return parts[0]
	}
	if pe.Rank() == root && len(parts) != p {
		panic(fmt.Sprintf("coll: Scatterv needs %d parts, got %d", p, len(parts)))
	}
	tag := pe.NextCollTag()
	vr := (pe.Rank() - root + p) % p

	// mySpan is the power of two covering my subtree in vr-space.
	mySpan := 1
	if vr == 0 {
		for mySpan < p {
			mySpan <<= 1
		}
	} else {
		mySpan = vr & (-vr)
	}

	var hold []rankedBlock[T]
	if vr == 0 {
		for i, part := range parts {
			hold = append(hold, rankedBlock[T]{rank: (i - root + p) % p, data: part})
		}
	} else {
		parent := ((vr - mySpan) + root) % p
		rx, _ := pe.Recv(parent, tag)
		hold = rx.([]rankedBlock[T])
	}
	var mine []T
	for mask := mySpan >> 1; mask >= 1; mask >>= 1 {
		child := vr | mask
		if child >= p {
			continue
		}
		var block []rankedBlock[T]
		var words int64
		for _, b := range hold {
			if b.rank >= child && b.rank < child+mask {
				block = append(block, b)
				words += sliceWords(b.data)
			}
		}
		pe.Send((child+root)%p, tag, block, words)
		// Keep only what remains in my half.
		var rest []rankedBlock[T]
		for _, b := range hold {
			if b.rank < child || b.rank >= child+mask {
				rest = append(rest, b)
			}
		}
		hold = rest
	}
	for _, b := range hold {
		if b.rank == vr {
			mine = b.data
		}
	}
	return mine
}

// AllGatherv collects every PE's slice on all PEs (indexed by rank). It is
// realized as a gather to PE 0 followed by a broadcast of the flattened
// assembly, which preserves the O(β·total + α log p) bound (with a
// factor-2 volume constant; the paper's gossiping achieves the same
// asymptotics). The flattening keeps the word metering honest: the
// broadcast carries the actual payload, not slice headers.
func AllGatherv[T any](pe *comm.PE, data []T) [][]T {
	parts := Gatherv(pe, 0, data)
	p := pe.P()
	var flat []T
	var lens []int64
	if pe.Rank() == 0 {
		lens = make([]int64, p)
		for i, part := range parts {
			lens[i] = int64(len(part))
			flat = append(flat, part...)
		}
	}
	lens = Broadcast(pe, 0, lens)
	flat = Broadcast(pe, 0, flat)
	out := make([][]T, p)
	var off int64
	for i := range out {
		out[i] = flat[off : off+lens[i]]
		off += lens[i]
	}
	return out
}

// AllGatherConcat collects every PE's slice concatenated in rank order.
func AllGatherConcat[T any](pe *comm.PE, data []T) []T {
	parts := AllGatherv(pe, data)
	var total int
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// AllToAll delivers parts[i] from every PE to PE i; the result is indexed
// by source rank. Direct point-to-point delivery: p-1 startups per PE,
// pairwise-staggered to avoid hot spots.
func AllToAll[T any](pe *comm.PE, parts [][]T) [][]T {
	p := pe.P()
	if len(parts) != p {
		panic(fmt.Sprintf("coll: AllToAll needs %d parts, got %d", p, len(parts)))
	}
	out := make([][]T, p)
	out[pe.Rank()] = parts[pe.Rank()]
	if p == 1 {
		return out
	}
	tag := pe.NextCollTag()
	rank := pe.Rank()
	for i := 1; i < p; i++ {
		dst := (rank + i) % p
		src := (rank - i + p) % p
		pe.Send(dst, tag, parts[dst], sliceWords(parts[dst]))
		rx, _ := pe.Recv(src, tag)
		out[src] = rx.([]T)
	}
	return out
}

// SortedSample realizes the paper's "fast inefficient sorting" of a small
// distributed sample (O(√p) objects): the sample is all-gathered and each
// PE sorts it locally, so afterwards every PE knows the globally sorted
// sample. Volume O(β|S|) per PE and O(α log p) startups, the same cost
// class as the brute-force comparison sort of [2].
func SortedSample[K cmp.Ordered](pe *comm.PE, local []K) []K {
	all := AllGatherConcat(pe, local)
	slices.Sort(all)
	return all
}
