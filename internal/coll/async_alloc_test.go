package coll

import (
	"testing"

	"commtopk/internal/comm"
)

// Steady-state allocation guards for the continuation forms: every
// ported stepper, rebuilt fresh each op from the per-PE state pool and
// driven under Machine.RunAsync, must dispatch allocation-free — the
// PR 5 tentpole property that removes the ~1.2 KB/PE/op continuation
// constant (151 MB of garbage per collectives op at p = 131072) the
// PR 4 measurements charged to per-op stepper state.
//
// Inputs come from per-PE scratch and package-level funcs so the guards
// measure the steppers, not the harness. The only tolerated allocations
// are protocol-inherent boxings the blocking forms share (Broadcast's
// root boxes its slice payload once per op).

// measureAsyncAllocs returns the average allocations per RunAsync op
// across the whole machine, with the empty-run dispatch overhead
// measured separately and subtracted.
func measureAsyncAllocs(p int, start func(pe *comm.PE) comm.Stepper) float64 {
	m := comm.NewMachine(comm.DefaultConfig(p))
	defer m.Close()
	empty := testing.AllocsPerRun(10, func() {
		m.MustRunAsync(func(pe *comm.PE) comm.Stepper { return nil })
	})
	// Warm up pools, scratch stores and the per-PE stepper freelists.
	for i := 0; i < 3; i++ {
		m.MustRunAsync(start)
	}
	loaded := testing.AllocsPerRun(10, func() {
		m.MustRunAsync(start)
	})
	return loaded - empty
}

func guardPayload(pe *comm.PE) []int64 {
	b := comm.ScratchSlice[int64](pe, "guard.payload", 3)
	b[0], b[1], b[2] = int64(pe.Rank()), 7, int64(pe.Rank()*3)
	return b
}

func discardVisit(src int, b []int64) {}

func TestZeroAllocSteppersRunAsync(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race (sync.Pool is randomized)")
	}
	const p = 8
	cases := []struct {
		name   string
		budget float64 // machine-wide allocs per op tolerated beyond slack
		start  func(pe *comm.PE) comm.Stepper
	}{
		{"Broadcast", 1, func(pe *comm.PE) comm.Stepper {
			// The root boxes its payload slice once per op (shared-view
			// semantics, identical in the blocking form).
			return BroadcastStep(pe, 0, guardPayload(pe), nil)
		}},
		{"AllReduceScalar", 0, func(pe *comm.PE) comm.Stepper {
			return AllReduceScalarStep(pe, int64(pe.Rank()), sumI64, nil)
		}},
		{"Barrier", 0, func(pe *comm.PE) comm.Stepper {
			return BarrierStep(pe)
		}},
		{"ExScanSum", 0, func(pe *comm.PE) comm.Stepper {
			return ExScanSumStep(pe, int64(pe.Rank()), nil)
		}},
		{"InScan", 0, func(pe *comm.PE) comm.Stepper {
			dst := comm.ScratchSlice[int64](pe, "guard.scan.dst", 3)
			return InScanStep(pe, dst, guardPayload(pe), sumI64, nil)
		}},
		{"ExScan", 0, func(pe *comm.PE) comm.Stepper {
			dst := comm.ScratchSlice[int64](pe, "guard.scan.dst", 3)
			id := comm.ScratchSlice[int64](pe, "guard.scan.id", 3)
			clear(id)
			return ExScanStep(pe, dst, guardPayload(pe), sumI64, id, nil)
		}},
		{"GatherStrided", 0, func(pe *comm.PE) comm.Stepper {
			return GatherStridedStep(pe, guardPayload(pe), 3, discardVisit)
		}},
		{"AllReduceIntoVec", 0, func(pe *comm.PE) comm.Stepper {
			dst := comm.ScratchSlice[int64](pe, "guard.dst", 3)
			return AllReduceIntoStep(pe, dst, guardPayload(pe), sumI64, nil)
		}},
		{"AllReduceIntoLong", 0, func(pe *comm.PE) comm.Stepper {
			// ≥ 4p words selects the Rabenseifner path.
			x := comm.ScratchSlice[int64](pe, "guard.long", 4*pe.P()+3)
			dst := comm.ScratchSlice[int64](pe, "guard.longdst", len(x))
			return AllReduceIntoStep(pe, dst, x, sumI64, nil)
		}},
		{"AllGatherv", 0, func(pe *comm.PE) comm.Stepper {
			return AllGathervStep(pe, guardPayload(pe), nil)
		}},
		{"AllGatherConcat", 0, func(pe *comm.PE) comm.Stepper {
			return AllGatherConcatStep(pe, guardPayload(pe), nil)
		}},
		{"AllToAll", 0, func(pe *comm.PE) comm.Stepper {
			parts := comm.ScratchSlice[[]int64](pe, "guard.parts", pe.P())
			flat := comm.ScratchSlice[int64](pe, "guard.flat", pe.P())
			for d := range parts {
				flat[d] = int64(pe.Rank()*100 + d)
				parts[d] = flat[d : d+1]
			}
			return AllToAllStep(pe, parts, discardVisit)
		}},
		{"Gatherv", 0, func(pe *comm.PE) comm.Stepper {
			return GathervStep(pe, 0, guardPayload(pe), nil)
		}},
		{"BroadcastScalar", 0, func(pe *comm.PE) comm.Stepper {
			return BroadcastScalarStep(pe, 0, int64(pe.Rank()), nil)
		}},
		{"RouteCombine", 0, func(pe *comm.PE) comm.Stepper {
			return RouteCombineStep(pe, guardRouted(pe), guardDest, nil, nil)
		}},
		{"RouteCombineChunked", 0, func(pe *comm.PE) comm.Stepper {
			return RouteCombineChunkedStep(pe, guardRouted(pe), 2, guardDest, nil, nil)
		}},
		{"AllGatherChunked", 0, func(pe *comm.PE) comm.Stepper {
			return AllGatherChunkedStep(pe, guardPayload(pe), 3, discardVisit)
		}},
		{"SeqPChain", 1, func(pe *comm.PE) comm.Stepper {
			// The scaling suite's collectives op shape: pooled sequence of
			// pooled steppers (the broadcast root boxing is the 1).
			return comm.SeqP(pe,
				BroadcastStep(pe, 0, guardPayload(pe), nil),
				AllReduceScalarStep(pe, int64(pe.Rank()), sumI64, nil),
				ExScanSumStep(pe, int64(pe.Rank()), nil),
				BarrierStep(pe),
			)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			perOp := measureAsyncAllocs(p, tc.start)
			// Slack absorbs rare sync.Pool refills after GC; anything near
			// one allocation per PE means the stepper state is not pooled.
			if perOp > tc.budget+float64(p)*0.25 {
				t.Errorf("%s allocates %.2f per op across %d PEs (budget %.0f + slack); stepper state pooling regressed",
					tc.name, perOp, p, tc.budget)
			}
		})
	}
}

func sumI64(a, b int64) int64 { return a + b }

func guardDest(v int64) int { return int(v) }

// guardRouted builds a small routed workload in scratch: payload IS the
// destination (guardDest), so nothing allocates per op.
func guardRouted(pe *comm.PE) []int64 {
	items := comm.ScratchSlice[int64](pe, "guard.routed", pe.P())
	for d := range items {
		items[d] = int64(d)
	}
	return items
}

// TestZeroAllocSelKthStepRunAsync lives in internal/sel (the stepper is
// sel.KthStep); this file keeps only the collectives guards.
