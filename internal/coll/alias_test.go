package coll

import (
	"testing"

	"commtopk/internal/comm"
)

// These tests pin the buffer-ownership contracts of the collectives after
// the in-place/pooled rewrite: reduction results must never alias caller
// inputs (so callers may reuse their buffers immediately), while AllToAll
// deliberately keeps the self-part aliased (zero-copy local delivery).

func TestAllReduceDoesNotAliasInput(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		runOn(t, p, func(pe *comm.PE) {
			x := []int64{int64(pe.Rank()), 7}
			got := AllReduce(pe, x, func(a, b int64) int64 { return a + b })
			got[0], got[1] = -1, -1
			if x[0] != int64(pe.Rank()) || x[1] != 7 {
				t.Errorf("p=%d rank=%d: AllReduce result aliases caller input", p, pe.Rank())
			}
			// The input may be reused (even mutated) immediately after the
			// collective returns: nothing in flight references it.
			x[0] = 99
		})
	}
}

func TestReduceDoesNotAliasInputAllRanks(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8} {
		runOn(t, p, func(pe *comm.PE) {
			x := []int64{5, int64(pe.Rank())}
			got := Reduce(pe, 0, x, func(a, b int64) int64 { return a + b })
			if pe.Rank() == 0 {
				got[0] = 99
			}
			// Mutating the input after the call must not corrupt anything:
			// inputs are copied (never sent by reference) on every path.
			x[0], x[1] = -3, -4
			if pe.Rank() == 0 && got[0] != 99 {
				t.Errorf("p=%d: result buffer not caller-owned", p)
			}
		})
	}
}

func TestAllReduceIntoReusesDst(t *testing.T) {
	runOn(t, 4, func(pe *comm.PE) {
		dst := make([]int64, 2, 8)
		first := AllReduceInto(pe, dst, []int64{1, 2}, func(a, b int64) int64 { return a + b })
		if first[0] != 4 || first[1] != 8 {
			t.Fatalf("got %v", first)
		}
		second := AllReduceInto(pe, first, []int64{10, 20}, func(a, b int64) int64 { return a + b })
		if &second[0] != &first[0] {
			t.Error("AllReduceInto reallocated although dst capacity sufficed")
		}
		if second[0] != 40 || second[1] != 80 {
			t.Fatalf("got %v", second)
		}
	})
}

func TestReduceIntoReusesDst(t *testing.T) {
	runOn(t, 4, func(pe *comm.PE) {
		var dst []int64
		if pe.Rank() == 0 {
			dst = make([]int64, 0, 4)
		}
		got := ReduceInto(pe, 0, dst, []int64{1}, func(a, b int64) int64 { return a + b })
		if pe.Rank() == 0 {
			if got[0] != 4 {
				t.Fatalf("got %v", got)
			}
			if &got[0] != &dst[:1][0] {
				t.Error("ReduceInto reallocated although dst capacity sufficed")
			}
		} else if got != nil {
			t.Errorf("non-root got %v", got)
		}
	})
}

func TestAllToAllKeepsSelfPartAliased(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		runOn(t, p, func(pe *comm.PE) {
			parts := make([][]int, p)
			for i := range parts {
				parts[i] = []int{pe.Rank(), i}
			}
			out := AllToAll(pe, parts)
			if len(parts[pe.Rank()]) > 0 && &out[pe.Rank()][0] != &parts[pe.Rank()][0] {
				t.Errorf("p=%d rank=%d: self-part was copied; must stay aliased", p, pe.Rank())
			}
		})
	}
}

// measureCollectiveAllocs returns the average allocations per collective
// invocation, with the constant per-Run overhead (goroutine spawns, wait
// group) measured separately and subtracted.
func measureCollectiveAllocs(p, opsPerRun int, body func(pe *comm.PE)) float64 {
	m := comm.NewMachine(comm.DefaultConfig(p))
	empty := testing.AllocsPerRun(10, func() {
		m.MustRun(func(pe *comm.PE) {})
	})
	// Warm up pools and scratch stores before measuring.
	m.MustRun(func(pe *comm.PE) {
		for i := 0; i < 3; i++ {
			body(pe)
		}
	})
	loaded := testing.AllocsPerRun(10, func() {
		m.MustRun(func(pe *comm.PE) {
			for i := 0; i < opsPerRun; i++ {
				body(pe)
			}
		})
	})
	return (loaded - empty) / float64(opsPerRun)
}

// TestZeroAllocCollectives guards the zero-allocation hot paths: the
// reduction-shaped collectives must not allocate per call in steady state
// on any PE. The budget is a small fraction of an allocation per op to
// absorb rare sync.Pool refills after GC; the pre-rewrite baseline was
// ≥ 5 allocations per op per PE.
func TestZeroAllocCollectives(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race (sync.Pool is randomized)")
	}
	const p, ops = 8, 64
	cases := []struct {
		name string
		body func(pe *comm.PE)
	}{
		{"AllReduceScalar", func(pe *comm.PE) {
			AllReduceScalar(pe, int64(pe.Rank()), func(a, b int64) int64 { return a + b })
		}},
		{"SumAll", func(pe *comm.PE) { SumAll(pe, int64(1)) }},
		{"ExScanSum", func(pe *comm.PE) { ExScanSum(pe, int64(pe.Rank())) }},
		{"Barrier", func(pe *comm.PE) { Barrier(pe) }},
		{"BroadcastScalar", func(pe *comm.PE) { BroadcastScalar(pe, 0, int64(42)) }},
		{"AllReduceInto", func(pe *comm.PE) {
			dst := comm.ScratchSlice[int64](pe, "test.dst", 4)
			var x [4]int64
			x[0] = int64(pe.Rank())
			AllReduceInto(pe, dst, x[:], func(a, b int64) int64 { return a + b })
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			perOp := measureCollectiveAllocs(p, ops, tc.body)
			// Per PE per op; allow slack for pool refills under GC.
			if perOp > float64(p)*0.25 {
				t.Errorf("%s allocates %.2f per op across %d PEs (%.2f per PE); hot path regressed",
					tc.name, perOp, p, perOp/float64(p))
			}
		})
	}
}

// TestZeroAllocUnsortedSelectionSteadyState guards the end-to-end hot path
// of Algorithm 1: after warmup, repeated Kth calls must not grow the heap
// per call beyond the Run overhead (the work buffer, sample buffers and
// reduction accumulators are all reused).
func TestZeroAllocSelectionHarness(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race (sync.Pool is randomized)")
	}
	// Lives here rather than in sel to keep the AllocsPerRun helpers in one
	// place; sel's own tests cover correctness.
	const p, ops = 4, 8
	perOp := measureCollectiveAllocs(p, ops, func(pe *comm.PE) {
		var x [2]int64
		x[0], x[1] = int64(pe.Rank()), 1
		AllReduceInto(pe, comm.ScratchSlice[int64](pe, "test.sel", 2), x[:],
			func(a, b int64) int64 { return a + b })
		ExScanSum(pe, int64(pe.Rank()))
	})
	if perOp > float64(p)*0.5 {
		t.Errorf("selection-shaped collective pair allocates %.2f per op; want ~0", perOp)
	}
}
