package coll

import (
	"commtopk/internal/wire"
)

// RegisterWireCodecs registers, under names derived from elemName, every
// payload shape the collectives over element type T can put on a
// cross-process frame: the POD element shapes (T, *T, []T, *[]T) that
// Broadcast, AllToAll, the scans and the pooled-copy sends use, plus the
// composite carriers — ranked gather/scatter blocks, Bruck batches with
// pooled ownership, and borrowed Bruck views. Call it (from the same
// registration package in every participating binary — see
// internal/wire/wireprogs) once per element type a wire-backed program
// communicates; elemName must match across processes because it defines
// the on-wire type identity. Registration is idempotent for the same
// (name, type) pair.
//
// It also registers the element-independent bitonic merge payloads
// (mergeElem, posReport) and their routed composites, so programs using
// BitonicMergePositions need no extra calls.
func RegisterWireCodecs[T any](elemName string) {
	registerElem[T](elemName)
	registerElem[mergeElem]("coll.mergeElem")
	registerElem[posReport]("coll.posReport")
}

func registerElem[T any](elemName string) {
	wire.RegisterPOD[T](elemName)

	rb := "coll.rankedBlock[" + elemName + "]"
	wire.Register[[]rankedBlock[T]](rb+"[]", encRankedBlocks[T], decRankedBlocks[T])
	wire.Register[*[]rankedBlock[T]](rb+"[]*",
		func(e *wire.Enc, v *[]rankedBlock[T]) {
			if v == nil {
				e.U8(0)
				return
			}
			e.U8(1)
			encRankedBlocks(e, *v)
		},
		func(d *wire.Dec) *[]rankedBlock[T] {
			if d.U8() == 0 {
				return nil
			}
			s := decRankedBlocks[T](d)
			return &s
		})

	// Bruck batches cross only as one-element pooled slices; the decoded
	// side materializes fresh backing stores, which the receiver recycles
	// into its own pools exactly as it would a locally forwarded batch.
	wire.Register[*[]bruckMsg[T]]("coll.bruckMsg["+elemName+"][]*",
		func(e *wire.Enc, v *[]bruckMsg[T]) {
			if v == nil {
				e.U8(0)
				return
			}
			e.U8(1)
			e.U64(uint64(len(*v)))
			for _, m := range *v {
				encPtrSlice(e, m.lens)
				encPtrSlice(e, m.data)
			}
		},
		func(d *wire.Dec) *[]bruckMsg[T] {
			if d.U8() == 0 {
				return nil
			}
			n := d.Len(2) // two nil flags minimum per batch
			if d.Err() != nil {
				return nil
			}
			s := make([]bruckMsg[T], n)
			for i := range s {
				s[i].lens = decPtrSlice[int64](d)
				s[i].data = decPtrSlice[T](d)
			}
			return &s
		})

	wire.Register[*[]bruckView[T]]("coll.bruckView["+elemName+"][]*",
		func(e *wire.Enc, v *[]bruckView[T]) {
			if v == nil {
				e.U8(0)
				return
			}
			e.U8(1)
			e.U64(uint64(len(*v)))
			for _, m := range *v {
				wire.EncPODSlice(e, m.lens)
				wire.EncPODSlice(e, m.data)
			}
		},
		func(d *wire.Dec) *[]bruckView[T] {
			if d.U8() == 0 {
				return nil
			}
			n := d.Len(16) // two counts minimum per view
			if d.Err() != nil {
				return nil
			}
			s := make([]bruckView[T], n)
			for i := range s {
				s[i].lens = wire.DecPODSlice[int64](d)
				s[i].data = wire.DecPODSlice[T](d)
			}
			return &s
		})
}

func encRankedBlocks[T any](e *wire.Enc, v []rankedBlock[T]) {
	e.U64(uint64(len(v)))
	for _, b := range v {
		e.I64(int64(b.rank))
		wire.EncPODSlice(e, b.data)
	}
}

func decRankedBlocks[T any](d *wire.Dec) []rankedBlock[T] {
	n := d.Len(16) // rank word + element count minimum per block
	if d.Err() != nil {
		return nil
	}
	s := make([]rankedBlock[T], n)
	for i := range s {
		s[i].rank = int(d.I64())
		s[i].data = wire.DecPODSlice[T](d)
	}
	return s
}

func encPtrSlice[T any](e *wire.Enc, v *[]T) {
	if v == nil {
		e.U8(0)
		return
	}
	e.U8(1)
	wire.EncPODSlice(e, *v)
}

func decPtrSlice[T any](d *wire.Dec) *[]T {
	if d.U8() == 0 {
		return nil
	}
	s := wire.DecPODSlice[T](d)
	return &s
}
