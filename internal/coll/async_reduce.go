package coll

import (
	"fmt"

	"commtopk/internal/comm"
	"commtopk/internal/commbuf"
)

// Continuation forms of the rooted binomial-tree collectives Reduce and
// Scatterv — the same wire schedule (tags, partners, message sizes) as
// the blocking forms, expressed as steppers so serving-layer queries can
// interleave them on one RunAsync scheduler. The blocking forms drive
// these engines via comm.RunSteps, exactly like Gatherv/gathervStep, so
// there is one schedule implementation per collective.

// ---------------------------------------------------------------------------
// Binomial reduce
// ---------------------------------------------------------------------------

// reduceStep — see ReduceStep.
type reduceStep[T any] struct {
	root   int
	dst, x []T
	op     func(a, b T) T
	out    func([]T)
	pool   *commbuf.Pool[T]
	tag    comm.Tag
	vr     int
	mask   int
	accPtr *[]T
	h      *comm.RecvHandle
	phase  int
}

// ReduceStep is the continuation form of ReduceInto: x combined
// elementwise with op along a binomial tree, the result written into a
// resized dst and handed to out on the root (out(nil) elsewhere). op
// must be associative and commutative; dst must not overlap x. With a
// reused dst the steady state allocates nothing on any PE.
func ReduceStep[T any](pe *comm.PE, root int, dst, x []T, op func(a, b T) T, out func([]T)) comm.Stepper {
	s := comm.GetPooled[reduceStep[T]](pe)
	*s = reduceStep[T]{root: root, dst: dst, x: x, op: op, out: out}
	return s
}

func (s *reduceStep[T]) finish(pe *comm.PE, result []T) *comm.RecvHandle {
	out := s.out
	*s = reduceStep[T]{}
	comm.PutPooled(pe, s)
	if out != nil {
		out(result)
	}
	return nil
}

func (s *reduceStep[T]) Step(pe *comm.PE) *comm.RecvHandle {
	p := pe.P()
	for {
		switch s.phase {
		case 0:
			if p == 1 {
				dst := commbuf.Resize(s.dst[:0], len(s.x))
				copy(dst, s.x)
				return s.finish(pe, dst)
			}
			s.pool = commbuf.For[T]()
			s.tag = pe.NextCollTag()
			s.vr = (pe.Rank() - s.root + p) % p
			s.mask = 1
			s.phase = 1
		case 1:
			for s.mask < p {
				if s.vr&s.mask != 0 {
					parent := ((s.vr &^ s.mask) + s.root) % p
					if s.accPtr != nil {
						// Hand the accumulator itself to the parent; it
						// recycles it.
						pe.Send(parent, s.tag, s.accPtr, sliceWords(*s.accPtr))
						s.accPtr = nil
					} else {
						sendCopy(pe, s.pool, parent, s.tag, s.x)
					}
					return s.finish(pe, nil)
				}
				child := s.vr | s.mask
				if child < p {
					s.h = pe.IRecv((child+s.root)%p, s.tag)
					s.phase = 2
					if !s.h.Test() {
						return s.h
					}
					break
				}
				s.mask <<= 1
			}
			if s.phase == 1 {
				// Only vr == 0 (the root) exits the loop.
				dst := commbuf.Resize(s.dst[:0], len(s.x))
				if s.accPtr != nil {
					copy(dst, *s.accPtr)
					s.pool.Put(s.accPtr)
					s.accPtr = nil
				} else {
					copy(dst, s.x)
				}
				return s.finish(pe, dst)
			}
		default:
			rxAny, _ := s.h.Wait()
			s.h = nil
			rx := rxAny.(*[]T)
			if s.accPtr == nil {
				// First contribution: fold x into the received buffer and
				// adopt it as the accumulator — zero copies, zero allocs.
				if len(*rx) != len(s.x) {
					panic(fmt.Sprintf("coll: reduction vector length mismatch: %d vs %d", len(s.x), len(*rx)))
				}
				for i, v := range s.x {
					(*rx)[i] = s.op(v, (*rx)[i])
				}
				s.accPtr = rx
			} else {
				combine(s.op, *s.accPtr, *rx)
				s.pool.Put(rx)
			}
			s.mask <<= 1
			s.phase = 1
		}
	}
}

// ---------------------------------------------------------------------------
// Binomial scatter
// ---------------------------------------------------------------------------

// scattervStep — see ScattervStep.
type scattervStep[T any] struct {
	root  int
	parts [][]T
	out   func([]T)
	tag   comm.Tag
	vr    int
	mask  int
	hold  []rankedBlock[T]
	h     *comm.RecvHandle
	phase int
}

// ScattervStep is the continuation form of Scatterv: root's parts[i]
// travels to PE i along a binomial tree and out receives the local part
// on every PE. parts is only read on root; the delivered slice aliases
// the root's parts[i] (not a copy), exactly like the blocking form.
func ScattervStep[T any](pe *comm.PE, root int, parts [][]T, out func([]T)) comm.Stepper {
	s := comm.GetPooled[scattervStep[T]](pe)
	*s = scattervStep[T]{root: root, parts: parts, out: out}
	return s
}

func (s *scattervStep[T]) finish(pe *comm.PE, mine []T) *comm.RecvHandle {
	out := s.out
	*s = scattervStep[T]{}
	comm.PutPooled(pe, s)
	if out != nil {
		out(mine)
	}
	return nil
}

func (s *scattervStep[T]) Step(pe *comm.PE) *comm.RecvHandle {
	p := pe.P()
	for {
		switch s.phase {
		case 0:
			if p == 1 {
				return s.finish(pe, s.parts[0])
			}
			if pe.Rank() == s.root && len(s.parts) != p {
				panic(fmt.Sprintf("coll: Scatterv needs %d parts, got %d", p, len(s.parts)))
			}
			s.tag = pe.NextCollTag()
			s.vr = (pe.Rank() - s.root + p) % p
			// mask starts at half the power of two covering my subtree in
			// vr-space (mySpan in the blocking form).
			mySpan := 1
			if s.vr == 0 {
				for mySpan < p {
					mySpan <<= 1
				}
				s.mask = mySpan >> 1
				for i, part := range s.parts {
					s.hold = append(s.hold, rankedBlock[T]{rank: (i - s.root + p) % p, data: part})
				}
				s.phase = 2
				continue
			}
			mySpan = s.vr & (-s.vr)
			s.mask = mySpan >> 1
			parent := ((s.vr - mySpan) + s.root) % p
			s.h = pe.IRecv(parent, s.tag)
			s.phase = 1
			if !s.h.Test() {
				return s.h
			}
		case 1:
			rxAny, _ := s.h.Wait()
			s.h = nil
			s.hold = rxAny.([]rankedBlock[T])
			s.phase = 2
		default:
			for ; s.mask >= 1; s.mask >>= 1 {
				child := s.vr | s.mask
				if child >= p {
					continue
				}
				var block []rankedBlock[T]
				var words int64
				for _, b := range s.hold {
					if b.rank >= child && b.rank < child+s.mask {
						block = append(block, b)
						words += sliceWords(b.data)
					}
				}
				pe.Send((child+s.root)%p, s.tag, block, words)
				// Keep only what remains in my half.
				var rest []rankedBlock[T]
				for _, b := range s.hold {
					if b.rank < child || b.rank >= child+s.mask {
						rest = append(rest, b)
					}
				}
				s.hold = rest
			}
			var mine []T
			for _, b := range s.hold {
				if b.rank == s.vr {
					mine = b.data
				}
			}
			return s.finish(pe, mine)
		}
	}
}
