package coll

import (
	"slices"
	"testing"

	"commtopk/internal/comm"
)

// peCounts covers the interesting topology cases: 1, powers of two, odd,
// and non-power-of-two composites.
var peCounts = []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17}

func runOn(t *testing.T, p int, body func(pe *comm.PE)) *comm.Machine {
	t.Helper()
	m := comm.NewMachine(comm.DefaultConfig(p))
	if err := m.Run(body); err != nil {
		t.Fatalf("p=%d: %v", p, err)
	}
	return m
}

func TestBroadcast(t *testing.T) {
	for _, p := range peCounts {
		for root := 0; root < p; root += max(1, p/3) {
			runOn(t, p, func(pe *comm.PE) {
				var data []int64
				if pe.Rank() == root {
					data = []int64{10, 20, 30}
				}
				got := Broadcast(pe, root, data)
				if !slices.Equal(got, []int64{10, 20, 30}) {
					t.Errorf("p=%d root=%d rank=%d: got %v", p, root, pe.Rank(), got)
				}
			})
		}
	}
}

func TestBroadcastLogStartups(t *testing.T) {
	// Bottleneck startups must be O(log p), not O(p).
	m := comm.NewMachine(comm.DefaultConfig(64))
	m.MustRun(func(pe *comm.PE) {
		Broadcast(pe, 0, []int64{1})
	})
	if s := m.Stats(); s.MaxSends > 6 { // log2(64) = 6
		t.Errorf("broadcast bottleneck startups = %d, want <= 6", s.MaxSends)
	}
}

func TestReduce(t *testing.T) {
	for _, p := range peCounts {
		root := p / 2
		runOn(t, p, func(pe *comm.PE) {
			x := []int64{int64(pe.Rank()), 1}
			got := Reduce(pe, root, x, func(a, b int64) int64 { return a + b })
			if pe.Rank() == root {
				wantSum := int64(p * (p - 1) / 2)
				if got[0] != wantSum || got[1] != int64(p) {
					t.Errorf("p=%d: reduce got %v, want [%d %d]", p, got, wantSum, p)
				}
			} else if got != nil {
				t.Errorf("p=%d rank=%d: non-root got %v", p, pe.Rank(), got)
			}
		})
	}
}

func TestReduceDoesNotAliasInput(t *testing.T) {
	runOn(t, 1, func(pe *comm.PE) {
		x := []int64{5}
		got := Reduce(pe, 0, x, func(a, b int64) int64 { return a + b })
		got[0] = 99
		if x[0] != 5 {
			t.Error("Reduce result aliases caller input")
		}
	})
}

func TestAllReduce(t *testing.T) {
	for _, p := range peCounts {
		runOn(t, p, func(pe *comm.PE) {
			x := []int64{int64(pe.Rank()), int64(pe.Rank() * 2)}
			got := AllReduce(pe, x, func(a, b int64) int64 { return a + b })
			wantSum := int64(p * (p - 1) / 2)
			if got[0] != wantSum || got[1] != 2*wantSum {
				t.Errorf("p=%d rank=%d: got %v, want [%d %d]", p, pe.Rank(), got, wantSum, 2*wantSum)
			}
		})
	}
}

func TestAllReduceMinMax(t *testing.T) {
	for _, p := range peCounts {
		runOn(t, p, func(pe *comm.PE) {
			if got := MinAll(pe, pe.Rank()+5); got != 5 {
				t.Errorf("MinAll got %d", got)
			}
			if got := MaxAll(pe, pe.Rank()); got != p-1 {
				t.Errorf("MaxAll got %d, want %d", got, p-1)
			}
			if got := SumAll(pe, int64(1)); got != int64(p) {
				t.Errorf("SumAll got %d, want %d", got, p)
			}
		})
	}
}

func TestScans(t *testing.T) {
	for _, p := range peCounts {
		runOn(t, p, func(pe *comm.PE) {
			r := int64(pe.Rank())
			incl := InScan(pe, []int64{r + 1}, func(a, b int64) int64 { return a + b })
			wantIncl := (r + 1) * (r + 2) / 2
			if incl[0] != wantIncl {
				t.Errorf("p=%d rank=%d: InScan got %d, want %d", p, pe.Rank(), incl[0], wantIncl)
			}
			excl := ExScanSum(pe, r+1)
			if excl != wantIncl-(r+1) {
				t.Errorf("p=%d rank=%d: ExScan got %d, want %d", p, pe.Rank(), excl, wantIncl-(r+1))
			}
		})
	}
}

func TestGatherv(t *testing.T) {
	for _, p := range peCounts {
		root := p - 1
		runOn(t, p, func(pe *comm.PE) {
			// Varying lengths: rank i contributes i+1 copies of i.
			data := make([]int, pe.Rank()+1)
			for i := range data {
				data[i] = pe.Rank()
			}
			got := Gatherv(pe, root, data)
			if pe.Rank() != root {
				if got != nil {
					t.Errorf("non-root got %v", got)
				}
				return
			}
			for r := 0; r < p; r++ {
				if len(got[r]) != r+1 || (len(got[r]) > 0 && got[r][0] != r) {
					t.Errorf("p=%d: gathered[%d] = %v", p, r, got[r])
				}
			}
		})
	}
}

func TestScatterv(t *testing.T) {
	for _, p := range peCounts {
		for _, root := range []int{0, p - 1} {
			runOn(t, p, func(pe *comm.PE) {
				var parts [][]int
				if pe.Rank() == root {
					parts = make([][]int, p)
					for i := range parts {
						parts[i] = []int{i * 10, i}
					}
				}
				got := Scatterv(pe, root, parts)
				if len(got) != 2 || got[0] != pe.Rank()*10 || got[1] != pe.Rank() {
					t.Errorf("p=%d root=%d rank=%d: got %v", p, root, pe.Rank(), got)
				}
			})
		}
	}
}

func TestAllGatherv(t *testing.T) {
	for _, p := range peCounts {
		runOn(t, p, func(pe *comm.PE) {
			got := AllGatherv(pe, []int{pe.Rank() * 3})
			for r := 0; r < p; r++ {
				if len(got[r]) != 1 || got[r][0] != r*3 {
					t.Errorf("p=%d rank=%d: allgather[%d] = %v", p, pe.Rank(), r, got[r])
				}
			}
		})
	}
}

func TestAllGatherConcat(t *testing.T) {
	runOn(t, 4, func(pe *comm.PE) {
		got := AllGatherConcat(pe, []int{pe.Rank(), pe.Rank()})
		want := []int{0, 0, 1, 1, 2, 2, 3, 3}
		if !slices.Equal(got, want) {
			t.Errorf("got %v, want %v", got, want)
		}
	})
}

func TestAllGatherDisseminationBounds(t *testing.T) {
	// The Bruck all-gather must cost ⌈log₂ p⌉ startups per PE and a
	// bottleneck volume of ≤ total + p length words — half (or better) of
	// the old gather+broadcast, whose root resent the full assembly to
	// every binomial child (Θ(total·log p) at the bottleneck).
	const p, blockLen = 64, 4
	m := comm.NewMachine(comm.DefaultConfig(p))
	m.MustRun(func(pe *comm.PE) {
		data := make([]int64, blockLen)
		for i := range data {
			data[i] = int64(pe.Rank())
		}
		AllGatherConcat(pe, data)
	})
	s := m.Stats()
	if s.MaxSends > 6 { // log2(64)
		t.Errorf("all-gather bottleneck startups = %d, want <= 6", s.MaxSends)
	}
	total := int64(p * blockLen)
	if got, bound := s.BottleneckWords(), total+p; got > bound {
		t.Errorf("all-gather bottleneck volume = %d words, want <= total+p = %d", got, bound)
	}
}

func TestAllGatherConcatOwnedResult(t *testing.T) {
	// The concat result is caller-owned: mutating it must not corrupt any
	// other PE's view or the caller's input.
	runOn(t, 4, func(pe *comm.PE) {
		in := []int{pe.Rank()}
		got := AllGatherConcat(pe, in)
		for i := range got {
			got[i] = -1
		}
		if in[0] != pe.Rank() {
			t.Errorf("rank %d: input mutated through result", pe.Rank())
		}
	})
}

func TestAllToAll(t *testing.T) {
	for _, p := range peCounts {
		runOn(t, p, func(pe *comm.PE) {
			parts := make([][]int, p)
			for i := range parts {
				parts[i] = []int{pe.Rank()*100 + i}
			}
			got := AllToAll(pe, parts)
			for src := 0; src < p; src++ {
				want := src*100 + pe.Rank()
				if len(got[src]) != 1 || got[src][0] != want {
					t.Errorf("p=%d rank=%d: from %d got %v, want [%d]", p, pe.Rank(), src, got[src], want)
				}
			}
		})
	}
}

func TestBarrier(t *testing.T) {
	runOn(t, 8, func(pe *comm.PE) { Barrier(pe) })
}

func TestSortedSample(t *testing.T) {
	for _, p := range peCounts {
		runOn(t, p, func(pe *comm.PE) {
			local := []uint64{uint64(100 - pe.Rank()), uint64(pe.Rank())}
			got := SortedSample(pe, local)
			if len(got) != 2*p {
				t.Fatalf("p=%d: sample size %d, want %d", p, len(got), 2*p)
			}
			if !slices.IsSorted(got) {
				t.Errorf("p=%d: sample not sorted: %v", p, got)
			}
		})
	}
}

func TestWordsOf(t *testing.T) {
	if w := WordsOf[uint64](); w != 1 {
		t.Errorf("WordsOf[uint64] = %d", w)
	}
	if w := WordsOf[struct{ A, B uint64 }](); w != 2 {
		t.Errorf("WordsOf[pair] = %d", w)
	}
	if w := WordsOf[byte](); w != 1 {
		t.Errorf("WordsOf[byte] = %d", w)
	}
}

func TestAllToAllCombine(t *testing.T) {
	type kv struct {
		Key   uint64
		Count int64
	}
	for _, p := range peCounts {
		runOn(t, p, func(pe *comm.PE) {
			// Every PE sends one item to every dest; dest d should end with
			// p items (or fewer after combining) summing to p * (d+1).
			items := make([]Routed[kv], 0, p)
			for d := 0; d < p; d++ {
				items = append(items, Routed[kv]{Dest: d, Payload: kv{Key: uint64(d), Count: int64(d + 1)}})
			}
			combine := func(held []Routed[kv]) []Routed[kv] {
				type dk struct {
					dest int
					key  uint64
				}
				agg := map[dk]int64{}
				for _, it := range held {
					agg[dk{it.Dest, it.Payload.Key}] += it.Payload.Count
				}
				out := make([]Routed[kv], 0, len(agg))
				for k, c := range agg {
					out = append(out, Routed[kv]{Dest: k.dest, Payload: kv{k.key, c}})
				}
				return out
			}
			got := AllToAllCombine(pe, items, combine)
			var total int64
			for _, it := range got {
				if it.Dest != pe.Rank() {
					t.Errorf("p=%d rank=%d: received item for dest %d", p, pe.Rank(), it.Dest)
				}
				if it.Payload.Key != uint64(pe.Rank()) {
					t.Errorf("p=%d rank=%d: received key %d", p, pe.Rank(), it.Payload.Key)
				}
				total += it.Payload.Count
			}
			want := int64(p) * int64(pe.Rank()+1)
			if total != want {
				t.Errorf("p=%d rank=%d: total %d, want %d", p, pe.Rank(), total, want)
			}
		})
	}
}

func TestAllToAllCombineNoCombineHook(t *testing.T) {
	for _, p := range peCounts {
		runOn(t, p, func(pe *comm.PE) {
			items := []Routed[int]{{Dest: (pe.Rank() + 1) % p, Payload: pe.Rank()}}
			got := AllToAllCombine(pe, items, nil)
			wantFrom := (pe.Rank() - 1 + p) % p
			if len(got) != 1 || got[0].Payload != wantFrom {
				t.Errorf("p=%d rank=%d: got %v, want payload %d", p, pe.Rank(), got, wantFrom)
			}
		})
	}
}

func TestAllToAllCombineLogStartups(t *testing.T) {
	m := comm.NewMachine(comm.DefaultConfig(64))
	m.MustRun(func(pe *comm.PE) {
		items := make([]Routed[uint64], 64)
		for d := range items {
			items[d] = Routed[uint64]{Dest: d, Payload: uint64(d)}
		}
		AllToAllCombine(pe, items, nil)
	})
	if s := m.Stats(); s.MaxSends > 8 {
		t.Errorf("hypercube bottleneck startups = %d, want <= 8 (log p + fold)", s.MaxSends)
	}
}

func TestAllReduceLongVectors(t *testing.T) {
	// Exercise the Rabenseifner path (len ≥ 4p) on all topology shapes,
	// including lengths that do not divide evenly.
	for _, p := range peCounts {
		for _, n := range []int{4 * p, 4*p + 3, 257, 1024} {
			runOn(t, p, func(pe *comm.PE) {
				x := make([]int64, n)
				for i := range x {
					x[i] = int64(pe.Rank()*n + i)
				}
				got := AllReduce(pe, x, func(a, b int64) int64 { return a + b })
				for i := range got {
					var want int64
					for r := 0; r < p; r++ {
						want += int64(r*n + i)
					}
					if got[i] != want {
						t.Fatalf("p=%d n=%d: elem %d = %d, want %d", p, n, i, got[i], want)
					}
				}
			})
		}
	}
}

func TestAllReduceLongVolumeIndependentOfP(t *testing.T) {
	// The Rabenseifner path must cost ~2m words per PE, not m·log p.
	const n = 4096
	vol := func(p int) int64 {
		m := comm.NewMachine(comm.DefaultConfig(p))
		m.MustRun(func(pe *comm.PE) {
			x := make([]int64, n)
			AllReduce(pe, x, func(a, b int64) int64 { return a + b })
		})
		return m.Stats().MaxSentWords
	}
	v8, v64 := vol(8), vol(64)
	if v64 > v8*3/2 {
		t.Errorf("long allreduce volume grew from %d (p=8) to %d (p=64); should be ~flat", v8, v64)
	}
	if v64 > 3*n {
		t.Errorf("long allreduce volume %d exceeds ~2m = %d", v64, 2*n)
	}
}

func TestBitonicMergePositions(t *testing.T) {
	// Compare against a local sort for a spread of topologies and inputs.
	for _, p := range peCounts {
		for seed := int64(0); seed < 3; seed++ {
			// Build two globally ascending unique sequences.
			aKeys := make([]uint64, p)
			bKeys := make([]uint64, p)
			cur := uint64(seed * 7)
			rngStep := func(i int64) uint64 { return uint64((i*2654435761)%13) + 1 }
			for i := 0; i < p; i++ {
				cur += rngStep(int64(i) + seed)
				aKeys[i] = cur * 2
			}
			cur = uint64(seed * 3)
			for i := 0; i < p; i++ {
				cur += rngStep(int64(i) + 5*seed)
				bKeys[i] = cur*2 + 1 // odd: disjoint from aKeys
			}
			all := append(slices.Clone(aKeys), bKeys...)
			slices.Sort(all)
			wantPos := map[uint64]int{}
			for i, k := range all {
				wantPos[k] = i
			}
			m := comm.NewMachine(comm.DefaultConfig(p))
			m.MustRun(func(pe *comm.PE) {
				pa, pb := BitonicMergePositions(pe, aKeys[pe.Rank()], bKeys[pe.Rank()])
				if pa != wantPos[aKeys[pe.Rank()]] {
					t.Errorf("p=%d seed=%d rank=%d: posA=%d want %d", p, seed, pe.Rank(), pa, wantPos[aKeys[pe.Rank()]])
				}
				if pb != wantPos[bKeys[pe.Rank()]] {
					t.Errorf("p=%d seed=%d rank=%d: posB=%d want %d", p, seed, pe.Rank(), pb, wantPos[bKeys[pe.Rank()]])
				}
			})
		}
	}
}

func TestBitonicMergeLogStartups(t *testing.T) {
	const p = 64
	m := comm.NewMachine(comm.DefaultConfig(p))
	m.MustRun(func(pe *comm.PE) {
		BitonicMergePositions(pe, uint64(pe.Rank())*2, uint64(pe.Rank())*2+1+128)
	})
	// log2(2p)=7 stages × ≤2 slots + position routing (≈log p): well under 64.
	if s := m.Stats(); s.MaxSends > 40 {
		t.Errorf("bitonic merge used %d startups at p=64", s.MaxSends)
	}
}
