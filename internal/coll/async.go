package coll

import (
	"commtopk/internal/comm"
	"commtopk/internal/commbuf"
)

// Continuation (Stepper) forms of the scalar collectives and the strided
// gather, for comm.Machine.RunAsync: the same protocols — same message
// schedule, same metered words, startups and modeled clock, pinned by
// the differential suite — expressed as resumable bodies. Where the
// blocking forms park a goroutine per waiting PE (transiently O(p)
// stacks during a collective at scale), a stepper suspends as data and
// the scheduler's w workers keep driving: mid-run goroutine residency
// stays O(w). The vector/gather-shaped forms live in async_vec.go and
// async_route.go.
//
// Each XxxStep factory returns a single-use Stepper for one PE; results
// are delivered through the out callback (nil to discard). Compose
// multi-collective bodies with comm.Seq / comm.SeqP, and reuse the same
// stepper under a blocking body via comm.RunSteps — one implementation,
// both execution modes.
//
// # State pooling
//
// Every stepper's state struct is drawn from the PE's typed freelist
// (comm.GetPooled) and released back when the protocol completes, so a
// continuation body rebuilt every op allocates nothing in steady state —
// the property that makes RunAsync dispatch cost match blocking Run at
// p = 131072, where per-op stepper garbage (~1.2 KB/PE) otherwise feeds
// the GC ~150 MB per collectives op. The lifecycle contract: a factory
// fully reinitializes the popped struct; the final Step clears
// reference-holding fields, releases the struct, then invokes out; a
// completed stepper must never be stepped again (comm.Seq and RunAsync
// both guarantee this). Guarded by the AllocsPerRun tests in
// async_alloc_test.go.

// broadcastStep — see BroadcastStep.
type broadcastStep[T any] struct {
	root  int
	data  []T
	out   func([]T)
	tag   comm.Tag
	vr    int
	mask  int
	boxed any
	h     *comm.RecvHandle
	phase int
}

// BroadcastStep is the continuation form of Broadcast: root's data
// reaches every PE along the binomial tree; out receives the (shared,
// read-only) result slice.
func BroadcastStep[T any](pe *comm.PE, root int, data []T, out func([]T)) comm.Stepper {
	s := comm.GetPooled[broadcastStep[T]](pe)
	*s = broadcastStep[T]{root: root, data: data, out: out}
	return s
}

func (s *broadcastStep[T]) Step(pe *comm.PE) *comm.RecvHandle {
	p := pe.P()
	for {
		switch s.phase {
		case 0:
			if p == 1 {
				s.phase = 3
				continue
			}
			s.tag = pe.NextCollTag()
			s.vr = (pe.Rank() - s.root + p) % p
			s.mask = 1
			for s.mask < p {
				if s.vr&s.mask != 0 {
					parent := ((s.vr &^ s.mask) + s.root) % p
					s.h = pe.IRecv(parent, s.tag)
					break
				}
				s.mask <<= 1
			}
			s.phase = 1
			if s.h != nil && !s.h.Test() {
				return s.h
			}
		case 1:
			if s.h != nil {
				rx, _ := s.h.Wait()
				s.boxed = rx
				s.data = rx.([]T)
				s.h = nil
			} else {
				s.boxed = s.data
			}
			s.phase = 2
		case 2:
			words := sliceWords(s.data)
			for s.mask >>= 1; s.mask > 0; s.mask >>= 1 {
				child := s.vr | s.mask
				if child < p && child != s.vr {
					pe.Send((child+s.root)%p, s.tag, s.boxed, words)
				}
			}
			s.phase = 3
		default:
			out, data := s.out, s.data
			*s = broadcastStep[T]{}
			comm.PutPooled(pe, s)
			if out != nil {
				out(data)
			}
			return nil
		}
	}
}

// scalar-collective phase constants (allReduceScalarStep).
const (
	arphInit = iota
	arphStragglerWait
	arphExtraWait
	arphRounds
	arphRoundWait
	arphFoldOut
	arphDone
)

// allReduceScalarStep — see AllReduceScalarStep.
type allReduceScalarStep[T any] struct {
	op       func(a, b T) T
	out      func(T)
	pool     *commbuf.Pool[T]
	tag      comm.Tag
	acc      T
	rank     int
	r, extra int
	mask     int
	h        *comm.RecvHandle
	phase    int
}

// AllReduceScalarStep is the continuation form of AllReduceScalar: the
// non-power-of-two fold-in/out around recursive doubling, scalar
// payloads in pooled one-element buffers, exactly as the blocking form
// ships them.
func AllReduceScalarStep[T any](pe *comm.PE, v T, op func(a, b T) T, out func(T)) comm.Stepper {
	s := comm.GetPooled[allReduceScalarStep[T]](pe)
	*s = allReduceScalarStep[T]{op: op, out: out, acc: v}
	return s
}

func (s *allReduceScalarStep[T]) send1(pe *comm.PE, dst int, x T) {
	b := s.pool.Get(1)
	(*b)[0] = x
	pe.Send(dst, s.tag, b, WordsOf[T]())
}

func (s *allReduceScalarStep[T]) take1() T {
	rxAny, _ := s.h.Wait()
	s.h = nil
	rx := rxAny.(*[]T)
	x := (*rx)[0]
	s.pool.Put(rx)
	return x
}

func (s *allReduceScalarStep[T]) Step(pe *comm.PE) *comm.RecvHandle {
	p := pe.P()
	for {
		switch s.phase {
		case arphInit:
			if p == 1 {
				s.phase = arphDone
				continue
			}
			s.pool = commbuf.For[T]()
			s.tag = pe.NextCollTag()
			s.rank = pe.Rank()
			s.r = 1
			for s.r*2 <= p {
				s.r *= 2
			}
			s.extra = p - s.r
			if s.rank >= s.r {
				// Straggler: fold onto the low partner, await the result.
				s.h = pe.IRecv(s.rank-s.r, s.tag)
				s.send1(pe, s.rank-s.r, s.acc)
				s.phase = arphStragglerWait
				if !s.h.Test() {
					return s.h
				}
				continue
			}
			if s.rank < s.extra {
				s.h = pe.IRecv(s.rank+s.r, s.tag)
				s.phase = arphExtraWait
				if !s.h.Test() {
					return s.h
				}
				continue
			}
			s.mask = 1
			s.phase = arphRounds
		case arphStragglerWait:
			s.acc = s.take1()
			s.phase = arphDone
		case arphExtraWait:
			s.acc = s.op(s.acc, s.take1())
			s.mask = 1
			s.phase = arphRounds
		case arphRounds:
			if s.mask >= s.r {
				s.phase = arphFoldOut
				continue
			}
			partner := s.rank ^ s.mask
			s.h = pe.IRecv(partner, s.tag)
			s.send1(pe, partner, s.acc)
			s.phase = arphRoundWait
			if !s.h.Test() {
				return s.h
			}
		case arphRoundWait:
			s.acc = s.op(s.acc, s.take1())
			s.mask <<= 1
			s.phase = arphRounds
		case arphFoldOut:
			if s.rank < s.extra {
				s.send1(pe, s.rank+s.r, s.acc)
			}
			s.phase = arphDone
		default:
			out, acc := s.out, s.acc
			*s = allReduceScalarStep[T]{}
			comm.PutPooled(pe, s)
			if out != nil {
				out(acc)
			}
			return nil
		}
	}
}

// BarrierStep is the continuation form of Barrier (a zero-word
// all-reduce, like the blocking Barrier).
func BarrierStep(pe *comm.PE) comm.Stepper {
	return AllReduceScalarStep(pe, int64(0), func(a, b int64) int64 { return a + b }, nil)
}

// exScanSum phase constants.
const (
	esphInit = iota
	esphRounds
	esphRoundWait
	esphShift
	esphShiftWait
	esphDone
)

// exScanSumStep — see ExScanSumStep.
type exScanSumStep[T int | int64 | float64 | uint64] struct {
	out   func(T)
	pool  *commbuf.Pool[T]
	tag   comm.Tag
	acc   T
	rank  int
	d     int
	h     *comm.RecvHandle
	phase int
}

// ExScanSumStep is the continuation form of ExScanSum: the dissemination
// scan followed by the shift-down round, identical wire schedule.
func ExScanSumStep[T int | int64 | float64 | uint64](pe *comm.PE, v T, out func(T)) comm.Stepper {
	s := comm.GetPooled[exScanSumStep[T]](pe)
	*s = exScanSumStep[T]{out: out, acc: v}
	return s
}

func (s *exScanSumStep[T]) send1(pe *comm.PE, dst int, x T) {
	b := s.pool.Get(1)
	(*b)[0] = x
	pe.Send(dst, s.tag, b, WordsOf[T]())
}

func (s *exScanSumStep[T]) take1() T {
	rxAny, _ := s.h.Wait()
	s.h = nil
	rx := rxAny.(*[]T)
	x := (*rx)[0]
	s.pool.Put(rx)
	return x
}

func (s *exScanSumStep[T]) Step(pe *comm.PE) *comm.RecvHandle {
	p := pe.P()
	for {
		switch s.phase {
		case esphInit:
			if p == 1 {
				s.acc = 0
				s.phase = esphDone
				continue
			}
			s.pool = commbuf.For[T]()
			s.rank = pe.Rank()
			s.tag = pe.NextCollTag()
			s.d = 1
			s.phase = esphRounds
		case esphRounds:
			if s.d >= p {
				s.tag = pe.NextCollTag()
				s.phase = esphShift
				continue
			}
			if s.rank-s.d >= 0 {
				s.h = pe.IRecv(s.rank-s.d, s.tag)
			}
			if s.rank+s.d < p {
				s.send1(pe, s.rank+s.d, s.acc)
			}
			s.phase = esphRoundWait
			if s.h != nil && !s.h.Test() {
				return s.h
			}
		case esphRoundWait:
			if s.h != nil {
				s.acc = s.take1() + s.acc
			}
			s.d <<= 1
			s.phase = esphRounds
		case esphShift:
			if s.rank > 0 {
				s.h = pe.IRecv(s.rank-1, s.tag)
			}
			if s.rank+1 < p {
				s.send1(pe, s.rank+1, s.acc)
			}
			s.phase = esphShiftWait
			if s.h != nil && !s.h.Test() {
				return s.h
			}
		case esphShiftWait:
			if s.h != nil {
				s.acc = s.take1()
			} else {
				s.acc = 0 // rank 0: exclusive prefix is the identity
			}
			s.phase = esphDone
		default:
			out, acc := s.out, s.acc
			*s = exScanSumStep[T]{}
			comm.PutPooled(pe, s)
			if out != nil {
				out(acc)
			}
			return nil
		}
	}
}

// GatherStrided delivers, to every PE, the blocks of its s = samples
// strided sources {(rank + 1 + j·⌈(p−1)/s⌉) mod p : j < s} — a sampled
// gather: the suite's answer to the p²·m aggregate movement that caps
// full all-gathers on one host. Every PE still sends and receives
// exactly s blocks (the sampling pattern is symmetric), so the measured
// volume is s·m words and s startups per PE while per-PE memory stays
// O(m) — blocks are visited, never materialized. visit observes views
// of other PEs' memory (in-process read-only, like AllGatherv's result).
// The exchange is round-staggered like AllToAll, so in-flight messages
// stay O(p) rather than O(p·s).
func GatherStrided[T any](pe *comm.PE, data []T, samples int, visit func(src int, block []T)) {
	comm.RunSteps(pe, GatherStridedStep(pe, data, samples, visit))
}

// gatherStridedStep — see GatherStridedStep.
type gatherStridedStep[T any] struct {
	data    []T
	samples int
	visit   func(src int, block []T)
	pool    *commbuf.Pool[T]
	tag     comm.Tag
	stride  int
	s       int
	i       int
	h       *comm.RecvHandle
	inited  bool
}

// GatherStridedStep is the continuation form of GatherStrided (and its
// implementation — the blocking form drives the same stepper).
func GatherStridedStep[T any](pe *comm.PE, data []T, samples int, visit func(src int, block []T)) comm.Stepper {
	s := comm.GetPooled[gatherStridedStep[T]](pe)
	*s = gatherStridedStep[T]{data: data, samples: samples, visit: visit}
	return s
}

func (s *gatherStridedStep[T]) Step(pe *comm.PE) *comm.RecvHandle {
	p := pe.P()
	if !s.inited {
		s.inited = true
		if p == 1 || s.samples < 1 {
			s.s = 0
			return s.finish(pe)
		}
		s.s = min(s.samples, p-1)
		s.stride = max((p-1)/s.s, 1)
		s.pool = commbuf.For[T]()
		s.tag = pe.NextCollTag()
	}
	rank := pe.Rank()
	for s.i < s.s {
		off := 1 + s.i*s.stride
		if s.h == nil {
			s.h = pe.IRecv((rank+off)%p, s.tag)
			// My block goes to the PE that samples me at this offset, as a
			// pooled copy with ownership transfer (a by-reference slice send
			// would box the header — one heap allocation per hop — and the
			// stepper is pinned allocation-free).
			sendCopy(pe, s.pool, (rank-off+p)%p, s.tag, s.data)
			if !s.h.Test() {
				return s.h
			}
		}
		rxAny, _ := s.h.Wait()
		s.h = nil
		rx := rxAny.(*[]T)
		s.visit((rank+off)%p, *rx)
		s.pool.Put(rx)
		s.i++
	}
	return s.finish(pe)
}

func (s *gatherStridedStep[T]) finish(pe *comm.PE) *comm.RecvHandle {
	*s = gatherStridedStep[T]{}
	comm.PutPooled(pe, s)
	return nil
}
