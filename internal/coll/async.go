package coll

import (
	"commtopk/internal/comm"
	"commtopk/internal/commbuf"
)

// Continuation (Stepper) forms of the hot collectives, for
// comm.Machine.RunAsync: the same protocols — same message schedule,
// same metered words, startups and modeled clock, pinned by the
// differential suite — expressed as resumable bodies. Where the blocking
// forms park a goroutine per waiting PE (transiently O(p) stacks during
// a collective at scale), a stepper suspends as data and the scheduler's
// w workers keep driving: mid-run goroutine residency stays O(w).
//
// Each XxxStep factory returns a single-use Stepper for one PE; results
// are delivered through the out callback (nil to discard). Compose
// multi-collective bodies with comm.Seq, and reuse the same stepper
// under a blocking body via comm.RunSteps — one implementation, both
// execution modes.

// BroadcastStep is the continuation form of Broadcast: root's data
// reaches every PE along the binomial tree; out receives the (shared,
// read-only) result slice.
func BroadcastStep[T any](root int, data []T, out func([]T)) comm.Stepper {
	var (
		tag   comm.Tag
		vr    int
		mask  int
		boxed any
		h     *comm.RecvHandle
		phase int
	)
	return comm.StepFunc(func(pe *comm.PE) *comm.RecvHandle {
		p := pe.P()
		for {
			switch phase {
			case 0:
				if p == 1 {
					phase = 3
					continue
				}
				tag = pe.NextCollTag()
				vr = (pe.Rank() - root + p) % p
				mask = 1
				for mask < p {
					if vr&mask != 0 {
						parent := ((vr &^ mask) + root) % p
						h = pe.IRecv(parent, tag)
						break
					}
					mask <<= 1
				}
				phase = 1
				if h != nil && !h.Test() {
					return h
				}
			case 1:
				if h != nil {
					rx, _ := h.Wait()
					boxed = rx
					data = rx.([]T)
					h = nil
				} else {
					boxed = data
				}
				phase = 2
			case 2:
				words := sliceWords(data)
				for mask >>= 1; mask > 0; mask >>= 1 {
					child := vr | mask
					if child < p && child != vr {
						pe.Send((child+root)%p, tag, boxed, words)
					}
				}
				phase = 3
			default:
				if out != nil {
					out(data)
				}
				return nil
			}
		}
	})
}

// AllReduceScalarStep is the continuation form of AllReduceScalar: the
// non-power-of-two fold-in/out around recursive doubling, scalar
// payloads in pooled one-element buffers, exactly as the blocking form
// ships them.
func AllReduceScalarStep[T any](v T, op func(a, b T) T, out func(T)) comm.Stepper {
	var (
		pool     *commbuf.Pool[T]
		tag      comm.Tag
		acc      T
		rank     int
		r, extra int
		mask     int
		h        *comm.RecvHandle
		phase    int
	)
	const (
		phInit = iota
		phStragglerWait
		phExtraWait
		phRounds
		phRoundWait
		phFoldOut
		phDone
	)
	w := WordsOf[T]()
	send1 := func(pe *comm.PE, dst int, x T) {
		b := pool.Get(1)
		(*b)[0] = x
		pe.Send(dst, tag, b, w)
	}
	take1 := func(h *comm.RecvHandle) T {
		rxAny, _ := h.Wait()
		rx := rxAny.(*[]T)
		x := (*rx)[0]
		pool.Put(rx)
		return x
	}
	return comm.StepFunc(func(pe *comm.PE) *comm.RecvHandle {
		p := pe.P()
		for {
			switch phase {
			case phInit:
				acc = v
				if p == 1 {
					phase = phDone
					continue
				}
				pool = commbuf.For[T]()
				tag = pe.NextCollTag()
				rank = pe.Rank()
				r = 1
				for r*2 <= p {
					r *= 2
				}
				extra = p - r
				if rank >= r {
					// Straggler: fold onto the low partner, await the result.
					h = pe.IRecv(rank-r, tag)
					send1(pe, rank-r, acc)
					phase = phStragglerWait
					if !h.Test() {
						return h
					}
					continue
				}
				if rank < extra {
					h = pe.IRecv(rank+r, tag)
					phase = phExtraWait
					if !h.Test() {
						return h
					}
					continue
				}
				mask = 1
				phase = phRounds
			case phStragglerWait:
				acc = take1(h)
				h = nil
				phase = phDone
			case phExtraWait:
				acc = op(acc, take1(h))
				h = nil
				mask = 1
				phase = phRounds
			case phRounds:
				if mask >= r {
					phase = phFoldOut
					continue
				}
				partner := rank ^ mask
				h = pe.IRecv(partner, tag)
				send1(pe, partner, acc)
				phase = phRoundWait
				if !h.Test() {
					return h
				}
			case phRoundWait:
				acc = op(acc, take1(h))
				h = nil
				mask <<= 1
				phase = phRounds
			case phFoldOut:
				if rank < extra {
					send1(pe, rank+r, acc)
				}
				phase = phDone
			default:
				if out != nil {
					out(acc)
				}
				return nil
			}
		}
	})
}

// BarrierStep is the continuation form of Barrier (a zero-word
// all-reduce, like the blocking Barrier).
func BarrierStep() comm.Stepper {
	return AllReduceScalarStep(int64(0), func(a, b int64) int64 { return a + b }, nil)
}

// ExScanSumStep is the continuation form of ExScanSum: the dissemination
// scan followed by the shift-down round, identical wire schedule.
func ExScanSumStep[T int | int64 | float64 | uint64](v T, out func(T)) comm.Stepper {
	var (
		pool  *commbuf.Pool[T]
		tag   comm.Tag
		acc   T
		rank  int
		d     int
		h     *comm.RecvHandle
		phase int
	)
	const (
		phInit = iota
		phRounds
		phRoundWait
		phShift
		phShiftWait
		phDone
	)
	w := WordsOf[T]()
	send1 := func(pe *comm.PE, dst int, x T) {
		b := pool.Get(1)
		(*b)[0] = x
		pe.Send(dst, tag, b, w)
	}
	take1 := func(h *comm.RecvHandle) T {
		rxAny, _ := h.Wait()
		rx := rxAny.(*[]T)
		x := (*rx)[0]
		pool.Put(rx)
		return x
	}
	return comm.StepFunc(func(pe *comm.PE) *comm.RecvHandle {
		p := pe.P()
		for {
			switch phase {
			case phInit:
				if p == 1 {
					acc = 0
					phase = phDone
					continue
				}
				pool = commbuf.For[T]()
				rank = pe.Rank()
				tag = pe.NextCollTag()
				acc = v
				d = 1
				phase = phRounds
			case phRounds:
				if d >= p {
					tag = pe.NextCollTag()
					phase = phShift
					continue
				}
				if rank-d >= 0 {
					h = pe.IRecv(rank-d, tag)
				}
				if rank+d < p {
					send1(pe, rank+d, acc)
				}
				phase = phRoundWait
				if h != nil && !h.Test() {
					return h
				}
			case phRoundWait:
				if h != nil {
					acc = take1(h) + acc
					h = nil
				}
				d <<= 1
				phase = phRounds
			case phShift:
				if rank > 0 {
					h = pe.IRecv(rank-1, tag)
				}
				if rank+1 < p {
					send1(pe, rank+1, acc)
				}
				phase = phShiftWait
				if h != nil && !h.Test() {
					return h
				}
			case phShiftWait:
				if h != nil {
					acc = take1(h)
					h = nil
				} else {
					acc = 0 // rank 0: exclusive prefix is the identity
				}
				phase = phDone
			default:
				if out != nil {
					out(acc)
				}
				return nil
			}
		}
	})
}

// GatherStrided delivers, to every PE, the blocks of its s = samples
// strided sources {(rank + 1 + j·⌈(p−1)/s⌉) mod p : j < s} — a sampled
// gather: the suite's answer to the p²·m aggregate movement that caps
// full all-gathers on one host. Every PE still sends and receives
// exactly s blocks (the sampling pattern is symmetric), so the measured
// volume is s·m words and s startups per PE while per-PE memory stays
// O(m) — blocks are visited, never materialized. visit observes views
// of other PEs' memory (in-process read-only, like AllGatherv's result).
// The exchange is round-staggered like AllToAll, so in-flight messages
// stay O(p) rather than O(p·s).
func GatherStrided[T any](pe *comm.PE, data []T, samples int, visit func(src int, block []T)) {
	comm.RunSteps(pe, GatherStridedStep(data, samples, visit))
}

// GatherStridedStep is the continuation form of GatherStrided (and its
// implementation — the blocking form drives the same stepper).
func GatherStridedStep[T any](data []T, samples int, visit func(src int, block []T)) comm.Stepper {
	var (
		tag    comm.Tag
		stride int
		s      int
		i      int
		h      *comm.RecvHandle
		inited bool
	)
	return comm.StepFunc(func(pe *comm.PE) *comm.RecvHandle {
		p := pe.P()
		if !inited {
			inited = true
			if p == 1 || samples < 1 {
				return nil
			}
			s = min(samples, p-1)
			stride = max((p-1)/s, 1)
			tag = pe.NextCollTag()
		}
		if s == 0 {
			return nil
		}
		words := sliceWords(data)
		rank := pe.Rank()
		for i < s {
			off := 1 + i*stride
			if h == nil {
				h = pe.IRecv((rank+off)%p, tag)
				// My block goes to the PE that samples me at this offset.
				pe.Send((rank-off+p)%p, tag, data, words)
				if !h.Test() {
					return h
				}
			}
			rx, _ := h.Wait()
			h = nil
			visit((rank+off)%p, rx.([]T))
			i++
		}
		return nil
	})
}
