package coll

import (
	"fmt"
	"slices"
	"testing"

	"commtopk/internal/comm"
)

// The stepper forms must be bit-identical — results AND metered
// statistics — to their blocking counterparts, on both backends, at
// w < p scheduler widths, and whether driven by RunAsync or by RunSteps
// inside a blocking body.

// asyncPair is one blocking/stepper collective pair under test.
type asyncPair struct {
	name  string
	block func(pe *comm.PE, out *any)
	start func(pe *comm.PE, out *any) comm.Stepper
}

func asyncPairs() []asyncPair {
	sum := func(a, b int64) int64 { return a + b }
	return []asyncPair{
		{
			name: "Broadcast",
			block: func(pe *comm.PE, out *any) {
				var data []int64
				if pe.Rank() == 0 {
					data = []int64{3, 1, 4, 1, 5}
				}
				got := Broadcast(pe, 0, data)
				*out = slices.Clone(got)
			},
			start: func(pe *comm.PE, out *any) comm.Stepper {
				var data []int64
				if pe.Rank() == 0 {
					data = []int64{3, 1, 4, 1, 5}
				}
				return BroadcastStep(0, data, func(got []int64) { *out = slices.Clone(got) })
			},
		},
		{
			name: "AllReduceScalar",
			block: func(pe *comm.PE, out *any) {
				*out = AllReduceScalar(pe, int64(pe.Rank())+7, sum)
			},
			start: func(pe *comm.PE, out *any) comm.Stepper {
				return AllReduceScalarStep(int64(pe.Rank())+7, sum, func(v int64) { *out = v })
			},
		},
		{
			name:  "Barrier",
			block: func(pe *comm.PE, out *any) { Barrier(pe); *out = true },
			start: func(pe *comm.PE, out *any) comm.Stepper {
				return comm.Seq(BarrierStep(), comm.StepFunc(func(pe *comm.PE) *comm.RecvHandle {
					*out = true
					return nil
				}))
			},
		},
		{
			name: "ExScanSum",
			block: func(pe *comm.PE, out *any) {
				*out = ExScanSum(pe, int64(pe.Rank()*2)+1)
			},
			start: func(pe *comm.PE, out *any) comm.Stepper {
				return ExScanSumStep(int64(pe.Rank()*2)+1, func(v int64) { *out = v })
			},
		},
		{
			name: "GatherStrided",
			block: func(pe *comm.PE, out *any) {
				block := []int64{int64(pe.Rank()), int64(pe.Rank() * 2)}
				var sum int64
				GatherStrided(pe, block, 3, func(src int, b []int64) { sum += int64(src) + b[1] })
				*out = sum
			},
			start: func(pe *comm.PE, out *any) comm.Stepper {
				block := []int64{int64(pe.Rank()), int64(pe.Rank() * 2)}
				var sum int64
				return comm.Seq(
					GatherStridedStep(block, 3, func(src int, b []int64) { sum += int64(src) + b[1] }),
					comm.StepFunc(func(pe *comm.PE) *comm.RecvHandle { *out = sum; return nil }),
				)
			},
		},
		{
			name: "ChainedSuite",
			block: func(pe *comm.PE, out *any) {
				Broadcast(pe, 0, []int64{1, 2, 3, 4})
				a := AllReduceScalar(pe, int64(pe.Rank()), sum)
				b := ExScanSum(pe, int64(pe.Rank()))
				Barrier(pe)
				*out = a + b
			},
			start: func(pe *comm.PE, out *any) comm.Stepper {
				var a, b int64
				return comm.Seq(
					BroadcastStep[int64](0, []int64{1, 2, 3, 4}, nil),
					AllReduceScalarStep(int64(pe.Rank()), sum, func(v int64) { a = v }),
					ExScanSumStep(int64(pe.Rank()), func(v int64) { b = v }),
					BarrierStep(),
					comm.StepFunc(func(pe *comm.PE) *comm.RecvHandle { *out = a + b; return nil }),
				)
			},
		},
	}
}

// runPair executes one collective three ways on cfg — blocking body,
// RunAsync steppers, and steppers driven by RunSteps inside a blocking
// body — and requires identical per-PE results and machine stats.
func runPair(t *testing.T, cfg comm.Config, pair asyncPair) {
	t.Helper()
	type outcome struct {
		res   []any
		stats comm.Stats
	}
	measure := func(run func(m *comm.Machine, res []any)) outcome {
		m := comm.NewMachine(cfg)
		defer m.Close()
		res := make([]any, cfg.P)
		run(m, res)
		return outcome{res: res, stats: m.Stats()}
	}
	blocking := measure(func(m *comm.Machine, res []any) {
		m.MustRun(func(pe *comm.PE) { pair.block(pe, &res[pe.Rank()]) })
	})
	async := measure(func(m *comm.Machine, res []any) {
		m.MustRunAsync(func(pe *comm.PE) comm.Stepper { return pair.start(pe, &res[pe.Rank()]) })
	})
	stepped := measure(func(m *comm.Machine, res []any) {
		m.MustRun(func(pe *comm.PE) { comm.RunSteps(pe, pair.start(pe, &res[pe.Rank()])) })
	})
	for i := range blocking.res {
		if !equalAny(blocking.res[i], async.res[i]) {
			t.Errorf("%s rank %d: blocking %v vs async %v", pair.name, i, blocking.res[i], async.res[i])
		}
		if !equalAny(blocking.res[i], stepped.res[i]) {
			t.Errorf("%s rank %d: blocking %v vs RunSteps %v", pair.name, i, blocking.res[i], stepped.res[i])
		}
	}
	if blocking.stats != async.stats {
		t.Errorf("%s: stats diverge blocking vs async:\n  %+v\n  %+v", pair.name, blocking.stats, async.stats)
	}
	if blocking.stats != stepped.stats {
		t.Errorf("%s: stats diverge blocking vs RunSteps:\n  %+v\n  %+v", pair.name, blocking.stats, stepped.stats)
	}
}

func equalAny(a, b any) bool {
	if as, ok := a.([]int64); ok {
		bs, ok := b.([]int64)
		return ok && slices.Equal(as, bs)
	}
	return a == b
}

func TestStepperCollectivesMatchBlocking(t *testing.T) {
	for _, p := range []int{1, 2, 5, 16, 64} {
		for _, mk := range []func(int) comm.Config{comm.MailboxConfig, comm.MatrixConfig} {
			cfg := mk(p)
			t.Run(fmt.Sprintf("p=%d/%s", p, cfg.Backend), func(t *testing.T) {
				for _, pair := range asyncPairs() {
					runPair(t, cfg, pair)
				}
			})
		}
	}
}

// TestStepperCollectivesShardedScheduler pins the continuation path in
// the multiplexed regime: w ≪ p, where every suspension crosses worker
// boundaries and resumes land mid-batch.
func TestStepperCollectivesShardedScheduler(t *testing.T) {
	for _, w := range []int{1, 4} {
		cfg := comm.MailboxConfig(64)
		cfg.Workers = w
		t.Run(fmt.Sprintf("w=%d", w), func(t *testing.T) {
			for _, pair := range asyncPairs() {
				runPair(t, cfg, pair)
			}
		})
	}
}

// TestGatherStridedCoverage pins the sampling pattern: every PE visits
// exactly s distinct non-self sources, and the global send/receive
// volume balances.
func TestGatherStridedCoverage(t *testing.T) {
	const p, s = 32, 5
	m := comm.NewMachine(comm.MailboxConfig(p))
	defer m.Close()
	visited := make([][]int, p)
	m.MustRun(func(pe *comm.PE) {
		block := []int64{int64(pe.Rank())}
		GatherStrided(pe, block, s, func(src int, b []int64) {
			if b[0] != int64(src) {
				t.Errorf("rank %d: block from %d carries %d", pe.Rank(), src, b[0])
			}
			visited[pe.Rank()] = append(visited[pe.Rank()], src)
		})
	})
	for r, vs := range visited {
		if len(vs) != s {
			t.Errorf("rank %d visited %d sources, want %d", r, len(vs), s)
		}
		seen := map[int]bool{r: true}
		for _, src := range vs {
			if seen[src] {
				t.Errorf("rank %d visited %d twice (or itself)", r, src)
			}
			seen[src] = true
		}
	}
	st := m.Stats()
	if st.MaxSends != s {
		t.Errorf("MaxSends = %d, want %d", st.MaxSends, s)
	}
}
