package coll

import (
	"fmt"
	"slices"
	"testing"

	"commtopk/internal/comm"
)

// The stepper forms must be bit-identical — results AND metered
// statistics — to their blocking counterparts, on both backends, at
// w < p scheduler widths, and whether driven by RunAsync or by RunSteps
// inside a blocking body.

// asyncPair is one blocking/stepper collective pair under test.
type asyncPair struct {
	name  string
	block func(pe *comm.PE, out *any)
	start func(pe *comm.PE, out *any) comm.Stepper
}

func asyncPairs() []asyncPair {
	sum := func(a, b int64) int64 { return a + b }
	return []asyncPair{
		{
			name: "Broadcast",
			block: func(pe *comm.PE, out *any) {
				var data []int64
				if pe.Rank() == 0 {
					data = []int64{3, 1, 4, 1, 5}
				}
				got := Broadcast(pe, 0, data)
				*out = slices.Clone(got)
			},
			start: func(pe *comm.PE, out *any) comm.Stepper {
				var data []int64
				if pe.Rank() == 0 {
					data = []int64{3, 1, 4, 1, 5}
				}
				return BroadcastStep(pe, 0, data, func(got []int64) { *out = slices.Clone(got) })
			},
		},
		{
			name: "AllReduceScalar",
			block: func(pe *comm.PE, out *any) {
				*out = AllReduceScalar(pe, int64(pe.Rank())+7, sum)
			},
			start: func(pe *comm.PE, out *any) comm.Stepper {
				return AllReduceScalarStep(pe, int64(pe.Rank())+7, sum, func(v int64) { *out = v })
			},
		},
		{
			name:  "Barrier",
			block: func(pe *comm.PE, out *any) { Barrier(pe); *out = true },
			start: func(pe *comm.PE, out *any) comm.Stepper {
				return comm.Seq(BarrierStep(pe), comm.StepFunc(func(pe *comm.PE) *comm.RecvHandle {
					*out = true
					return nil
				}))
			},
		},
		{
			name: "ExScanSum",
			block: func(pe *comm.PE, out *any) {
				*out = ExScanSum(pe, int64(pe.Rank()*2)+1)
			},
			start: func(pe *comm.PE, out *any) comm.Stepper {
				return ExScanSumStep(pe, int64(pe.Rank()*2)+1, func(v int64) { *out = v })
			},
		},
		{
			name: "InScan",
			block: func(pe *comm.PE, out *any) {
				x := []int64{int64(pe.Rank()) + 1, int64(pe.Rank() * 2)}
				*out = InScan(pe, x, sum)
			},
			start: func(pe *comm.PE, out *any) comm.Stepper {
				x := []int64{int64(pe.Rank()) + 1, int64(pe.Rank() * 2)}
				return InScanStep(pe, nil, x, sum, func(v []int64) { *out = slices.Clone(v) })
			},
		},
		{
			name: "ExScan",
			block: func(pe *comm.PE, out *any) {
				x := []int64{int64(pe.Rank()) + 3, 1}
				*out = ExScan(pe, x, sum, []int64{0, 0})
			},
			start: func(pe *comm.PE, out *any) comm.Stepper {
				x := []int64{int64(pe.Rank()) + 3, 1}
				return ExScanStep(pe, nil, x, sum, []int64{0, 0}, func(v []int64) { *out = slices.Clone(v) })
			},
		},
		{
			name: "GatherStrided",
			block: func(pe *comm.PE, out *any) {
				block := []int64{int64(pe.Rank()), int64(pe.Rank() * 2)}
				var sum int64
				GatherStrided(pe, block, 3, func(src int, b []int64) { sum += int64(src) + b[1] })
				*out = sum
			},
			start: func(pe *comm.PE, out *any) comm.Stepper {
				block := []int64{int64(pe.Rank()), int64(pe.Rank() * 2)}
				var sum int64
				return comm.Seq(
					GatherStridedStep(pe, block, 3, func(src int, b []int64) { sum += int64(src) + b[1] }),
					comm.StepFunc(func(pe *comm.PE) *comm.RecvHandle { *out = sum; return nil }),
				)
			},
		},
		{
			name: "AllReduceVec",
			block: func(pe *comm.PE, out *any) {
				x := []int64{int64(pe.Rank()) + 2, 1, int64(pe.Rank() * pe.Rank())}
				*out = AllReduce(pe, x, sum)
			},
			start: func(pe *comm.PE, out *any) comm.Stepper {
				x := []int64{int64(pe.Rank()) + 2, 1, int64(pe.Rank() * pe.Rank())}
				return AllReduceStep(pe, x, sum, func(v []int64) { *out = slices.Clone(v) })
			},
		},
		{
			name: "AllReduceLong",
			block: func(pe *comm.PE, out *any) {
				x := make([]int64, 4*pe.P()+3)
				for i := range x {
					x[i] = int64(pe.Rank()*len(x) + i)
				}
				*out = AllReduce(pe, x, sum)
			},
			start: func(pe *comm.PE, out *any) comm.Stepper {
				x := make([]int64, 4*pe.P()+3)
				for i := range x {
					x[i] = int64(pe.Rank()*len(x) + i)
				}
				return AllReduceStep(pe, x, sum, func(v []int64) { *out = slices.Clone(v) })
			},
		},
		{
			name: "AllGatherv",
			block: func(pe *comm.PE, out *any) {
				data := make([]int64, pe.Rank()%3)
				for i := range data {
					data[i] = int64(pe.Rank()*10 + i)
				}
				var flat []int64
				for _, v := range AllGatherv(pe, data) {
					flat = append(flat, v...)
				}
				*out = flat
			},
			start: func(pe *comm.PE, out *any) comm.Stepper {
				data := make([]int64, pe.Rank()%3)
				for i := range data {
					data[i] = int64(pe.Rank()*10 + i)
				}
				return AllGathervStep(pe, data, func(parts [][]int64) {
					var flat []int64
					for _, v := range parts {
						flat = append(flat, v...)
					}
					*out = flat
				})
			},
		},
		{
			name: "AllGatherConcat",
			block: func(pe *comm.PE, out *any) {
				*out = AllGatherConcat(pe, []int64{int64(pe.Rank()), 9})
			},
			start: func(pe *comm.PE, out *any) comm.Stepper {
				return AllGatherConcatStep(pe, []int64{int64(pe.Rank()), 9}, func(v []int64) {
					*out = slices.Clone(v) // borrowed: copy before the buffer recycles
				})
			},
		},
		{
			name: "AllToAll",
			block: func(pe *comm.PE, out *any) {
				parts := make([][]int64, pe.P())
				for d := range parts {
					parts[d] = []int64{int64(pe.Rank()*100 + d)}
				}
				var flat []int64
				for src, part := range AllToAll(pe, parts) {
					flat = append(flat, int64(src))
					flat = append(flat, part...)
				}
				*out = flat
			},
			start: func(pe *comm.PE, out *any) comm.Stepper {
				parts := make([][]int64, pe.P())
				for d := range parts {
					parts[d] = []int64{int64(pe.Rank()*100 + d)}
				}
				// Visit order differs from index order; re-index to compare.
				bys := make([][]int64, pe.P())
				return comm.Seq(
					AllToAllStep(pe, parts, func(src int, part []int64) {
						bys[src] = slices.Clone(part)
					}),
					comm.StepFunc(func(pe *comm.PE) *comm.RecvHandle {
						var flat []int64
						for src, part := range bys {
							flat = append(flat, int64(src))
							flat = append(flat, part...)
						}
						*out = flat
						return nil
					}),
				)
			},
		},
		{
			name: "Gatherv",
			block: func(pe *comm.PE, out *any) {
				data := make([]int64, pe.Rank()%3+1)
				for i := range data {
					data[i] = int64(pe.Rank()*7 + i)
				}
				flat := []int64{}
				for _, part := range Gatherv(pe, 0, data) {
					flat = append(flat, part...)
				}
				*out = flat
			},
			start: func(pe *comm.PE, out *any) comm.Stepper {
				data := make([]int64, pe.Rank()%3+1)
				for i := range data {
					data[i] = int64(pe.Rank()*7 + i)
				}
				return GathervStep(pe, 0, data, func(parts [][]int64) {
					flat := []int64{}
					for _, part := range parts {
						flat = append(flat, part...)
					}
					*out = flat
				})
			},
		},
		{
			name: "Reduce",
			block: func(pe *comm.PE, out *any) {
				x := []int64{int64(pe.Rank()) + 5, int64(pe.Rank() * 3), 11}
				*out = Reduce(pe, 1%pe.P(), x, sum)
			},
			start: func(pe *comm.PE, out *any) comm.Stepper {
				x := []int64{int64(pe.Rank()) + 5, int64(pe.Rank() * 3), 11}
				return ReduceStep(pe, 1%pe.P(), nil, x, sum, func(v []int64) { *out = slices.Clone(v) })
			},
		},
		{
			name: "Scatterv",
			block: func(pe *comm.PE, out *any) {
				var parts [][]int64
				if pe.Rank() == 0 {
					parts = make([][]int64, pe.P())
					for i := range parts {
						parts[i] = []int64{int64(i * 13), int64(i)}
					}
				}
				*out = slices.Clone(Scatterv(pe, 0, parts))
			},
			start: func(pe *comm.PE, out *any) comm.Stepper {
				var parts [][]int64
				if pe.Rank() == 0 {
					parts = make([][]int64, pe.P())
					for i := range parts {
						parts[i] = []int64{int64(i * 13), int64(i)}
					}
				}
				return ScattervStep(pe, 0, parts, func(v []int64) { *out = slices.Clone(v) })
			},
		},
		{
			name: "BroadcastScalar",
			block: func(pe *comm.PE, out *any) {
				*out = BroadcastScalar(pe, 0, int64(pe.Rank())+41)
			},
			start: func(pe *comm.PE, out *any) comm.Stepper {
				return BroadcastScalarStep(pe, 0, int64(pe.Rank())+41, func(v int64) { *out = v })
			},
		},
		{
			name: "RouteCombine",
			block: func(pe *comm.PE, out *any) {
				got := AllToAllCombine(pe, routeItems(pe), sumPerDest)
				*out = flattenRouted(got)
			},
			start: func(pe *comm.PE, out *any) comm.Stepper {
				return AllToAllCombineStep(pe, routeItems(pe), sumPerDest, func(got []Routed[int64]) {
					*out = flattenRouted(got)
				})
			},
		},
		{
			name: "RouteCombineChunked",
			block: func(pe *comm.PE, out *any) {
				got := AllToAllCombineChunked(pe, routeItems(pe), 2, nil)
				*out = flattenRouted(got)
			},
			start: func(pe *comm.PE, out *any) comm.Stepper {
				return AllToAllCombineChunkedStep(pe, routeItems(pe), 2, nil, func(got []Routed[int64]) {
					*out = flattenRouted(got)
				})
			},
		},
		{
			name: "AllGatherChunked",
			block: func(pe *comm.PE, out *any) {
				data := []int64{int64(pe.Rank()), int64(pe.Rank() * 3)}
				acc := []int64{}
				AllGatherChunked(pe, data, 3, func(src int, b []int64) {
					acc = append(acc, int64(src), b[0], b[1])
				})
				*out = acc
			},
			start: func(pe *comm.PE, out *any) comm.Stepper {
				data := []int64{int64(pe.Rank()), int64(pe.Rank() * 3)}
				acc := []int64{}
				return comm.Seq(
					AllGatherChunkedStep(pe, data, 3, func(src int, b []int64) {
						acc = append(acc, int64(src), b[0], b[1])
					}),
					comm.StepFunc(func(pe *comm.PE) *comm.RecvHandle { *out = acc; return nil }),
				)
			},
		},
		{
			name: "ChainedSuite",
			block: func(pe *comm.PE, out *any) {
				Broadcast(pe, 0, []int64{1, 2, 3, 4})
				a := AllReduceScalar(pe, int64(pe.Rank()), sum)
				b := ExScanSum(pe, int64(pe.Rank()))
				Barrier(pe)
				*out = a + b
			},
			start: func(pe *comm.PE, out *any) comm.Stepper {
				var a, b int64
				return comm.SeqP(pe,
					BroadcastStep[int64](pe, 0, []int64{1, 2, 3, 4}, nil),
					AllReduceScalarStep(pe, int64(pe.Rank()), sum, func(v int64) { a = v }),
					ExScanSumStep(pe, int64(pe.Rank()), func(v int64) { b = v }),
					BarrierStep(pe),
					comm.StepFunc(func(pe *comm.PE) *comm.RecvHandle { *out = a + b; return nil }),
				)
			},
		},
	}
}

// routeItems builds the hypercube workload: two items per destination.
func routeItems(pe *comm.PE) []Routed[int64] {
	items := make([]Routed[int64], 0, 2*pe.P())
	for d := 0; d < pe.P(); d++ {
		items = append(items,
			Routed[int64]{Dest: d, Payload: int64(pe.Rank()*100 + d)},
			Routed[int64]{Dest: d, Payload: int64(d * d)})
	}
	return items
}

// sumPerDest is an order-canonical combine hook (sums per destination,
// emits in ascending dest order), usable on any backend.
func sumPerDest(held []Routed[int64]) []Routed[int64] {
	sums := map[int]int64{}
	for _, it := range held {
		sums[it.Dest] += it.Payload
	}
	dests := make([]int, 0, len(sums))
	for d := range sums {
		dests = append(dests, d)
	}
	slices.Sort(dests)
	out := make([]Routed[int64], 0, len(dests))
	for _, d := range dests {
		out = append(out, Routed[int64]{Dest: d, Payload: sums[d]})
	}
	return out
}

func flattenRouted(items []Routed[int64]) []int64 {
	flat := []int64{}
	for _, it := range items {
		flat = append(flat, int64(it.Dest), it.Payload)
	}
	return flat
}

// runPair executes one collective three ways on cfg — blocking body,
// RunAsync steppers, and steppers driven by RunSteps inside a blocking
// body — and requires identical per-PE results and machine stats.
func runPair(t *testing.T, cfg comm.Config, pair asyncPair) {
	t.Helper()
	type outcome struct {
		res   []any
		stats comm.Stats
	}
	measure := func(run func(m *comm.Machine, res []any)) outcome {
		m := comm.NewMachine(cfg)
		defer m.Close()
		res := make([]any, cfg.P)
		run(m, res)
		return outcome{res: res, stats: m.Stats()}
	}
	blocking := measure(func(m *comm.Machine, res []any) {
		m.MustRun(func(pe *comm.PE) { pair.block(pe, &res[pe.Rank()]) })
	})
	async := measure(func(m *comm.Machine, res []any) {
		m.MustRunAsync(func(pe *comm.PE) comm.Stepper { return pair.start(pe, &res[pe.Rank()]) })
	})
	stepped := measure(func(m *comm.Machine, res []any) {
		m.MustRun(func(pe *comm.PE) { comm.RunSteps(pe, pair.start(pe, &res[pe.Rank()])) })
	})
	for i := range blocking.res {
		if !equalAny(blocking.res[i], async.res[i]) {
			t.Errorf("%s rank %d: blocking %v vs async %v", pair.name, i, blocking.res[i], async.res[i])
		}
		if !equalAny(blocking.res[i], stepped.res[i]) {
			t.Errorf("%s rank %d: blocking %v vs RunSteps %v", pair.name, i, blocking.res[i], stepped.res[i])
		}
	}
	if blocking.stats != async.stats {
		t.Errorf("%s: stats diverge blocking vs async:\n  %+v\n  %+v", pair.name, blocking.stats, async.stats)
	}
	if blocking.stats != stepped.stats {
		t.Errorf("%s: stats diverge blocking vs RunSteps:\n  %+v\n  %+v", pair.name, blocking.stats, stepped.stats)
	}
}

func equalAny(a, b any) bool {
	if as, ok := a.([]int64); ok {
		bs, ok := b.([]int64)
		return ok && slices.Equal(as, bs)
	}
	return a == b
}

func TestStepperCollectivesMatchBlocking(t *testing.T) {
	for _, p := range []int{1, 2, 5, 16, 64} {
		for _, mk := range []func(int) comm.Config{comm.MailboxConfig, comm.MatrixConfig} {
			cfg := mk(p)
			t.Run(fmt.Sprintf("p=%d/%s", p, cfg.Backend), func(t *testing.T) {
				for _, pair := range asyncPairs() {
					runPair(t, cfg, pair)
				}
			})
		}
	}
}

// TestStepperCollectivesShardedScheduler pins the continuation path in
// the multiplexed regime: w ≪ p, where every suspension crosses worker
// boundaries and resumes land mid-batch.
func TestStepperCollectivesShardedScheduler(t *testing.T) {
	for _, w := range []int{1, 4} {
		cfg := comm.MailboxConfig(64)
		cfg.Workers = w
		t.Run(fmt.Sprintf("w=%d", w), func(t *testing.T) {
			for _, pair := range asyncPairs() {
				runPair(t, cfg, pair)
			}
		})
	}
}

// TestVectorSteppersContinuationStress is the -race stress over the
// vector/gather steppers at w < p: a chained continuation body (vector
// all-reduce, Bruck all-gather, hypercube route, chunked gather) runs
// repeatedly so suspend/resume events land on arbitrary workers while
// pooled stepper state is recycled across ops and run boundaries.
func TestVectorSteppersContinuationStress(t *testing.T) {
	const p, rounds = 24, 6
	for _, w := range []int{1, 3} {
		cfg := comm.MailboxConfig(p)
		cfg.Workers = w
		m := comm.NewMachine(cfg)
		for round := 0; round < rounds; round++ {
			round := round
			var results [p]int64
			m.MustRunAsync(func(pe *comm.PE) comm.Stepper {
				var vecSum, concatSum, routeSum, chunkSum int64
				x := []int64{int64(pe.Rank() + round), 3}
				return comm.SeqP(pe,
					AllReduceStep(pe, x, func(a, b int64) int64 { return a + b }, func(v []int64) {
						vecSum = v[0] + v[1]
					}),
					AllGatherConcatStep(pe, []int64{int64(pe.Rank())}, func(v []int64) {
						for _, e := range v {
							concatSum += e
						}
					}),
					AllToAllCombineStep(pe, routeItems(pe), nil, func(got []Routed[int64]) {
						for _, it := range got {
							routeSum += it.Payload
						}
					}),
					AllGatherChunkedStep(pe, []int64{int64(pe.Rank())}, 5, func(src int, b []int64) {
						chunkSum += b[0]
					}),
					comm.StepFunc(func(pe *comm.PE) *comm.RecvHandle {
						results[pe.Rank()] = vecSum + concatSum + routeSum + chunkSum
						return nil
					}),
				)
			})
			// Closed-form expectations keep the stress honest.
			base := int64(p*(p-1)/2) + int64(p*round) + 3*int64(p) // vector all-reduce
			gather := int64(p * (p - 1) / 2)                       // both gathers
			for r := 0; r < p; r++ {
				want := base + 2*gather
				for src := 0; src < p; src++ {
					want += int64(src*100+r) + int64(r*r)
				}
				if results[r] != want {
					t.Fatalf("w=%d round %d rank %d: got %d want %d", w, round, r, results[r], want)
				}
			}
		}
		m.Close()
	}
}

// TestGatherStridedCoverage pins the sampling pattern: every PE visits
// exactly s distinct non-self sources, and the global send/receive
// volume balances.
func TestGatherStridedCoverage(t *testing.T) {
	const p, s = 32, 5
	m := comm.NewMachine(comm.MailboxConfig(p))
	defer m.Close()
	visited := make([][]int, p)
	m.MustRun(func(pe *comm.PE) {
		block := []int64{int64(pe.Rank())}
		GatherStrided(pe, block, s, func(src int, b []int64) {
			if b[0] != int64(src) {
				t.Errorf("rank %d: block from %d carries %d", pe.Rank(), src, b[0])
			}
			visited[pe.Rank()] = append(visited[pe.Rank()], src)
		})
	})
	for r, vs := range visited {
		if len(vs) != s {
			t.Errorf("rank %d visited %d sources, want %d", r, len(vs), s)
		}
		seen := map[int]bool{r: true}
		for _, src := range vs {
			if seen[src] {
				t.Errorf("rank %d visited %d twice (or itself)", r, src)
			}
			seen[src] = true
		}
	}
	st := m.Stats()
	if st.MaxSends != s {
		t.Errorf("MaxSends = %d, want %d", st.MaxSends, s)
	}
}
