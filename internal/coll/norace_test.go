//go:build !race

package coll

const raceEnabled = false
