package qsel

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
)

// inputGen builds the adversarial input classes the selection kernel must
// handle without degrading: uniform random, duplicates-heavy, sorted,
// reverse-sorted, all-equal, and organ-pipe.
var inputGens = []struct {
	name string
	gen  func(r *rand.Rand, n int) []uint64
}{
	{"random", func(r *rand.Rand, n int) []uint64 {
		s := make([]uint64, n)
		for i := range s {
			s[i] = r.Uint64()
		}
		return s
	}},
	{"dupheavy", func(r *rand.Rand, n int) []uint64 {
		s := make([]uint64, n)
		for i := range s {
			s[i] = uint64(r.Intn(1 + n/16))
		}
		return s
	}},
	{"sorted", func(r *rand.Rand, n int) []uint64 {
		s := make([]uint64, n)
		for i := range s {
			s[i] = uint64(i) * 3
		}
		return s
	}},
	{"reverse", func(r *rand.Rand, n int) []uint64 {
		s := make([]uint64, n)
		for i := range s {
			s[i] = uint64(n - i)
		}
		return s
	}},
	{"allequal", func(r *rand.Rand, n int) []uint64 {
		s := make([]uint64, n)
		for i := range s {
			s[i] = 42
		}
		return s
	}},
	{"organpipe", func(r *rand.Rand, n int) []uint64 {
		s := make([]uint64, n)
		for i := range s {
			s[i] = uint64(min(i, n-i))
		}
		return s
	}},
}

func TestSelectCrossCheck(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, ig := range inputGens {
		t.Run(ig.name, func(t *testing.T) {
			for _, n := range []int{1, 2, 3, 17, 100, 601, 5000} {
				orig := ig.gen(r, n)
				sorted := slices.Clone(orig)
				slices.Sort(sorted)
				// A spread of ranks including the extremes.
				ranks := []int{0, n / 3, n / 2, n - 1}
				for _, k := range ranks {
					s := slices.Clone(orig)
					got := Select(s, k)
					if got != sorted[k] {
						t.Fatalf("n=%d k=%d: Select=%d, want %d", n, k, got, sorted[k])
					}
					if s[k] != got {
						t.Fatalf("n=%d k=%d: s[k]=%d not in place", n, k, s[k])
					}
					for i := 0; i < k; i++ {
						if s[i] > got {
							t.Fatalf("n=%d k=%d: s[%d]=%d > s[k]=%d", n, k, i, s[i], got)
						}
					}
					for i := k + 1; i < n; i++ {
						if s[i] < got {
							t.Fatalf("n=%d k=%d: s[%d]=%d < s[k]=%d", n, k, i, s[i], got)
						}
					}
					// The multiset must be preserved.
					resorted := slices.Clone(s)
					slices.Sort(resorted)
					if !slices.Equal(resorted, sorted) {
						t.Fatalf("n=%d k=%d: multiset changed", n, k)
					}
				}
			}
		})
	}
}

func TestSelectRandomizedRanks(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(2000)
		ig := inputGens[trial%len(inputGens)]
		orig := ig.gen(r, n)
		sorted := slices.Clone(orig)
		slices.Sort(sorted)
		k := r.Intn(n)
		s := slices.Clone(orig)
		if got := Select(s, k); got != sorted[k] {
			t.Fatalf("trial %d (%s) n=%d k=%d: Select=%d, want %d", trial, ig.name, n, k, got, sorted[k])
		}
	}
}

func TestSelectPanicsOutOfRange(t *testing.T) {
	for _, k := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Select(k=%d) did not panic", k)
				}
			}()
			Select([]uint64{1, 2, 3}, k)
		}()
	}
}

func TestPartitionRange(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		n := r.Intn(500)
		s := make([]uint64, n)
		for i := range s {
			s[i] = uint64(r.Intn(64)) // heavy ties around the pivots
		}
		orig := slices.Clone(s)
		lo := uint64(r.Intn(64))
		hi := lo + uint64(r.Intn(int(64-lo)))
		na, nb := PartitionRange(s, lo, hi)
		var wantA, wantB int
		for _, v := range orig {
			switch {
			case v < lo:
				wantA++
			case v <= hi:
				wantB++
			}
		}
		if na != wantA || nb != wantB {
			t.Fatalf("trial %d: (na,nb)=(%d,%d), want (%d,%d)", trial, na, nb, wantA, wantB)
		}
		for i, v := range s {
			switch {
			case i < na && v >= lo:
				t.Fatalf("trial %d: band a violated at %d: %d", trial, i, v)
			case i >= na && i < na+nb && (v < lo || v > hi):
				t.Fatalf("trial %d: band b violated at %d: %d", trial, i, v)
			case i >= na+nb && v <= hi:
				t.Fatalf("trial %d: band c violated at %d: %d", trial, i, v)
			}
		}
		sorted1, sorted2 := slices.Clone(orig), slices.Clone(s)
		slices.Sort(sorted1)
		slices.Sort(sorted2)
		if !slices.Equal(sorted1, sorted2) {
			t.Fatalf("trial %d: multiset changed", trial)
		}
	}
}

func TestSelectZeroAlloc(t *testing.T) {
	s := make([]uint64, 10000)
	r := rand.New(rand.NewSource(9))
	refill := func() {
		for i := range s {
			s[i] = r.Uint64()
		}
	}
	refill()
	if allocs := testing.AllocsPerRun(20, func() {
		Select(s, len(s)/2)
	}); allocs != 0 {
		t.Errorf("Select allocates %.1f per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		PartitionRange(s, 1<<62, 1<<63)
	}); allocs != 0 {
		t.Errorf("PartitionRange allocates %.1f per run, want 0", allocs)
	}
}

func BenchmarkSelectVsSort(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 16} {
		r := rand.New(rand.NewSource(4))
		orig := make([]uint64, n)
		for i := range orig {
			orig[i] = r.Uint64()
		}
		work := make([]uint64, n)
		b.Run(fmt.Sprintf("Select/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(work, orig)
				Select(work, n/2)
			}
		})
		b.Run(fmt.Sprintf("Sort/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(work, orig)
				slices.Sort(work)
			}
		})
	}
}
