package qsel

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"testing"
	"unsafe"
)

// diffCase runs the three-way differential: bucket-routed Select, scalar
// Floyd–Rivest, and a sorted reference must agree on the rank-k value, the
// partition invariant, and multiset preservation.
func diffCase[K selKey](t *testing.T, label string, orig []K, k int) {
	t.Helper()
	n := len(orig)
	sorted := slices.Clone(orig)
	slices.Sort(sorted)

	s := slices.Clone(orig)
	got := Select(s, k)
	sc := slices.Clone(orig)
	gotScalar := SelectScalar(sc, k)
	dst := make([]K, n)
	gotInto := SelectInto(dst, orig, k)

	if got != sorted[k] || gotScalar != sorted[k] || gotInto != sorted[k] {
		t.Fatalf("%s n=%d k=%d: Select=%v SelectScalar=%v SelectInto=%v, want %v",
			label, n, k, got, gotScalar, gotInto, sorted[k])
	}
	if s[k] != got {
		t.Fatalf("%s n=%d k=%d: s[k] not in place", label, n, k)
	}
	for i := 0; i < k; i++ {
		if s[i] > got {
			t.Fatalf("%s n=%d k=%d: s[%d]=%v > s[k]=%v", label, n, k, i, s[i], got)
		}
	}
	for i := k + 1; i < n; i++ {
		if s[i] < got {
			t.Fatalf("%s n=%d k=%d: s[%d]=%v < s[k]=%v", label, n, k, i, s[i], got)
		}
	}
	resorted := slices.Clone(s)
	slices.Sort(resorted)
	if !slices.Equal(resorted, sorted) {
		t.Fatalf("%s n=%d k=%d: multiset changed", label, n, k)
	}
}

// diffCaseReadOnly additionally pins that SelectInto never writes src.
func diffCaseReadOnly[K selKey](t *testing.T, label string, orig []K, k int) {
	t.Helper()
	snapshot := slices.Clone(orig)
	diffCase(t, label, orig, k)
	if !slices.Equal(orig, snapshot) {
		t.Fatalf("%s n=%d k=%d: SelectInto modified src", label, len(orig), k)
	}
}

// selKey is the test-local constraint: ordered and comparable (all Select key
// types used in the repo).
type selKey interface {
	~int | ~int32 | ~int64 | ~uint | ~uint32 | ~uint64 | ~float32 | ~float64 | ~uint16
}

func runDiff[K selKey](t *testing.T, typeName string, gens []struct {
	name string
	gen  func(r *rand.Rand, n int) []K
}) {
	r := rand.New(rand.NewSource(11))
	sizes := []int{1, 3, 257, BucketMinN - 1, BucketMinN, BucketMinN + 777, 3 * BucketMinN}
	for _, g := range gens {
		t.Run(typeName+"/"+g.name, func(t *testing.T) {
			for _, n := range sizes {
				orig := g.gen(r, n)
				ks := []int{0, n / 4, n / 2, n - 1}
				for _, k := range ks {
					diffCaseReadOnly(t, typeName+"/"+g.name, orig, k)
				}
			}
		})
	}
}

func TestBucketSelectDifferentialUints(t *testing.T) {
	runDiff(t, "uint64", []struct {
		name string
		gen  func(r *rand.Rand, n int) []uint64
	}{
		{"random", func(r *rand.Rand, n int) []uint64 {
			s := make([]uint64, n)
			for i := range s {
				s[i] = r.Uint64()
			}
			return s
		}},
		{"dupheavy", func(r *rand.Rand, n int) []uint64 {
			s := make([]uint64, n)
			for i := range s {
				s[i] = uint64(r.Intn(1 + n/64))
			}
			return s
		}},
		{"lowbyteonly", func(r *rand.Rand, n int) []uint64 {
			// Constant high 7 bytes: the or/and fold must skip straight to
			// the only varying byte instead of 7 dead counting passes.
			s := make([]uint64, n)
			for i := range s {
				s[i] = 0xABCD_0000_0000_0000 | uint64(r.Intn(256))
			}
			return s
		}},
		{"sawtooth", func(r *rand.Rand, n int) []uint64 {
			s := make([]uint64, n)
			for i := range s {
				s[i] = uint64(i % 509)
			}
			return s
		}},
		{"sorted", func(r *rand.Rand, n int) []uint64 {
			s := make([]uint64, n)
			for i := range s {
				s[i] = uint64(i) * 7
			}
			return s
		}},
	})
	runDiff(t, "uint32", []struct {
		name string
		gen  func(r *rand.Rand, n int) []uint32
	}{
		{"random", func(r *rand.Rand, n int) []uint32 {
			s := make([]uint32, n)
			for i := range s {
				s[i] = r.Uint32()
			}
			return s
		}},
		{"dupheavy", func(r *rand.Rand, n int) []uint32 {
			s := make([]uint32, n)
			for i := range s {
				s[i] = uint32(r.Intn(1 + n/64))
			}
			return s
		}},
	})
	runDiff(t, "uint", []struct {
		name string
		gen  func(r *rand.Rand, n int) []uint
	}{
		{"random", func(r *rand.Rand, n int) []uint {
			s := make([]uint, n)
			for i := range s {
				s[i] = uint(r.Uint64())
			}
			return s
		}},
	})
}

func TestBucketSelectDifferentialInts(t *testing.T) {
	runDiff(t, "int64", []struct {
		name string
		gen  func(r *rand.Rand, n int) []int64
	}{
		{"random", func(r *rand.Rand, n int) []int64 {
			s := make([]int64, n)
			for i := range s {
				s[i] = int64(r.Uint64()) // full range, both signs
			}
			return s
		}},
		{"signstraddle", func(r *rand.Rand, n int) []int64 {
			s := make([]int64, n)
			for i := range s {
				s[i] = int64(r.Intn(2*n+1) - n)
			}
			return s
		}},
		{"extremes", func(r *rand.Rand, n int) []int64 {
			s := make([]int64, n)
			vals := []int64{math.MinInt64, -1, 0, 1, math.MaxInt64}
			for i := range s {
				s[i] = vals[r.Intn(len(vals))]
			}
			return s
		}},
	})
	runDiff(t, "int32", []struct {
		name string
		gen  func(r *rand.Rand, n int) []int32
	}{
		{"signstraddle", func(r *rand.Rand, n int) []int32 {
			s := make([]int32, n)
			for i := range s {
				s[i] = int32(r.Intn(2*n+1) - n)
			}
			return s
		}},
	})
	runDiff(t, "int", []struct {
		name string
		gen  func(r *rand.Rand, n int) []int
	}{
		{"signstraddle", func(r *rand.Rand, n int) []int {
			s := make([]int, n)
			for i := range s {
				s[i] = r.Intn(2*n+1) - n
			}
			return s
		}},
	})
}

func TestBucketSelectDifferentialFloats(t *testing.T) {
	runDiff(t, "float64", []struct {
		name string
		gen  func(r *rand.Rand, n int) []float64
	}{
		{"random", func(r *rand.Rand, n int) []float64 {
			s := make([]float64, n)
			for i := range s {
				s[i] = (r.Float64() - 0.5) * 1e12
			}
			return s
		}},
		{"specials", func(r *rand.Rand, n int) []float64 {
			// ±0, ±Inf, denormals and sign-straddling magnitudes: the
			// monotone bit flip must order all of them like <.
			vals := []float64{
				math.Inf(-1), -math.MaxFloat64, -1.5, -math.SmallestNonzeroFloat64,
				math.Copysign(0, -1), 0, math.SmallestNonzeroFloat64, 2.5,
				math.MaxFloat64, math.Inf(1),
			}
			s := make([]float64, n)
			for i := range s {
				s[i] = vals[r.Intn(len(vals))]
			}
			return s
		}},
	})
	runDiff(t, "float32", []struct {
		name string
		gen  func(r *rand.Rand, n int) []float32
	}{
		{"specials", func(r *rand.Rand, n int) []float32 {
			vals := []float32{
				float32(math.Inf(-1)), -math.MaxFloat32, -3,
				float32(math.Copysign(0, -1)), 0, 3, math.MaxFloat32,
				float32(math.Inf(1)),
			}
			s := make([]float32, n)
			for i := range s {
				s[i] = vals[r.Intn(len(vals))]
			}
			return s
		}},
	})
}

// TestBucketSelectNegZeroBitsPreserved pins that the float transform is a
// bijection: the -0.0 population (invisible to ==) survives round-trip.
func TestBucketSelectNegZeroBitsPreserved(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := BucketMinN + 100
	s := make([]float64, n)
	negZeros := 0
	for i := range s {
		switch r.Intn(3) {
		case 0:
			s[i] = math.Copysign(0, -1)
			negZeros++
		case 1:
			s[i] = 0
		default:
			s[i] = r.NormFloat64()
		}
	}
	Select(s, n/2)
	after := 0
	for _, v := range s {
		if v == 0 && math.Signbit(v) {
			after++
		}
	}
	if after != negZeros {
		t.Fatalf("-0.0 count changed: %d -> %d", negZeros, after)
	}
}

// TestBucketSelectUnsupportedTypeFallsBack pins that key types outside the
// transform table still work (scalar path) at bucket-eligible sizes.
func TestBucketSelectUnsupportedTypeFallsBack(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	n := BucketMinN + 13
	before := BucketSelects()
	s := make([]uint16, n)
	for i := range s {
		s[i] = uint16(r.Intn(1 << 16))
	}
	sorted := slices.Clone(s)
	slices.Sort(sorted)
	if got := Select(s, n/3); got != sorted[n/3] {
		t.Fatalf("uint16 fallback: got %d want %d", got, sorted[n/3])
	}
	if BucketSelects() != before {
		t.Fatalf("uint16 took the bucket path; transform table has no entry for it")
	}
}

// TestBucketPathTaken is the CI guard: above the crossover, supported key
// types must actually be served by the bucket engine (counter-based, not
// timing-based), and below it they must not be.
func TestBucketPathTaken(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	mk := func(n int) []uint64 {
		s := make([]uint64, n)
		for i := range s {
			s[i] = r.Uint64()
		}
		return s
	}
	before := BucketSelects()
	Select(mk(BucketMinN), BucketMinN/2)
	if got := BucketSelects(); got != before+1 {
		t.Fatalf("bucket path not taken at n=BucketMinN: counter %d -> %d", before, got)
	}
	before = BucketSelects()
	Select(mk(BucketMinN-1), (BucketMinN-1)/2)
	if got := BucketSelects(); got != before {
		t.Fatalf("bucket path taken below crossover: counter %d -> %d", before, got)
	}
	// Select's in-place engine is bounded above: past BucketMaxInPlaceN it
	// must fall back to Floyd–Rivest …
	before = BucketSelects()
	Select(mk(BucketMaxInPlaceN+1), BucketMaxInPlaceN/2)
	if got := BucketSelects(); got != before {
		t.Fatalf("in-place bucket path taken above BucketMaxInPlaceN: counter %d -> %d", before, got)
	}
	// … while SelectInto's compress engine keeps going at any size.
	before = BucketSelects()
	big := mk(4 * BucketMaxInPlaceN)
	SelectInto(make([]uint64, len(big)), big, len(big)/2)
	if got := BucketSelects(); got != before+1 {
		t.Fatalf("compress path not taken at n=%d: counter %d -> %d", len(big), before, got)
	}
	// Every supported key type takes a bucket path at eligible sizes.
	before = BucketSelects()
	Select(make([]int64, BucketMinN), 0)
	Select(make([]int32, BucketMinN), 0)
	Select(make([]int, BucketMinN), 0)
	Select(make([]uint32, BucketMinN), 0)
	Select(make([]uint, BucketMinN), 0)
	Select(make([]float64, BucketMinN), 0)
	Select(make([]float32, BucketMinN), 0)
	dst8 := make([]uint64, BucketMinN)
	SelectInto(unsafeCast[int64](dst8), make([]int64, BucketMinN), 0)
	SelectInto(unsafeCast[float64](dst8), make([]float64, BucketMinN), 0)
	if got := BucketSelects(); got != before+9 {
		t.Fatalf("expected 9 bucket-path selects, counter %d -> %d", before, got)
	}
}

// unsafeCast reinterprets a uint64 scratch slice as a same-width key slice
// (test helper for exercising SelectInto workspaces across types).
func unsafeCast[K int64 | float64](s []uint64) []K {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*K)(unsafe.Pointer(&s[0])), len(s))
}

func TestBucketSelectZeroAlloc(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	n := 4 * BucketMinN
	u := make([]uint64, n)
	f := make([]float64, n)
	i64 := make([]int64, n)
	refill := func() {
		for i := range u {
			u[i] = r.Uint64()
			f[i] = r.NormFloat64()
			i64[i] = int64(r.Uint64())
		}
	}
	refill()
	if allocs := testing.AllocsPerRun(10, func() {
		Select(u, n/2)
		Select(f, n/2)
		Select(i64, n/2)
	}); allocs != 0 {
		t.Errorf("bucket Select allocates %.1f per run, want 0", allocs)
	}
	dst := make([]uint64, n)
	if allocs := testing.AllocsPerRun(10, func() {
		SelectInto(dst, u, n/2)
	}); allocs != 0 {
		t.Errorf("SelectInto allocates %.1f per run, want 0", allocs)
	}
	// Narrow-range input large enough for the 2^16-bucket level: its
	// histogram is pooled (too large for a stack frame), so the steady
	// state must stay allocation-free too.
	nw := 1 << 17
	saw := make([]uint64, nw)
	for i := range saw {
		saw[i] = uint64(i % 1024)
	}
	dstW := make([]uint64, nw)
	SelectInto(dstW, saw, nw/2) // warm the histogram pool
	if allocs := testing.AllocsPerRun(10, func() {
		SelectInto(dstW, saw, nw/2)
	}); allocs != 0 {
		t.Errorf("SelectInto (16-bit level) allocates %.1f per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		Rank(u, u[0])
	}); allocs != 0 {
		t.Errorf("Rank allocates %.1f per run, want 0", allocs)
	}
}

func TestRank(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(500)
		s := make([]uint64, n)
		for i := range s {
			s[i] = uint64(r.Intn(64))
		}
		v := uint64(r.Intn(64))
		below, equal := Rank(s, v)
		wb, we := 0, 0
		for _, e := range s {
			if e < v {
				wb++
			} else if e == v {
				we++
			}
		}
		if below != wb || equal != we {
			t.Fatalf("trial %d: Rank=(%d,%d), want (%d,%d)", trial, below, equal, wb, we)
		}
	}
}

func TestSelectInto(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	src := make([]uint64, 5000)
	for i := range src {
		src[i] = r.Uint64()
	}
	orig := slices.Clone(src)
	sorted := slices.Clone(src)
	slices.Sort(sorted)
	dst := make([]uint64, len(src)+7)
	got := SelectInto(dst, src, 1234)
	if got != sorted[1234] {
		t.Fatalf("SelectInto: got %d want %d", got, sorted[1234])
	}
	if !slices.Equal(src, orig) {
		t.Fatal("SelectInto modified src")
	}
}

func BenchmarkBucketVsScalar(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	for _, n := range []int{1 << 12, 1 << 16, 1 << 20} {
		orig := make([]uint64, n)
		for i := range orig {
			orig[i] = r.Uint64()
		}
		work := make([]uint64, n)
		b.Run(fmt.Sprintf("Bucket/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(work, orig)
				Select(work, n/2)
			}
		})
		b.Run(fmt.Sprintf("Scalar/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(work, orig)
				SelectScalar(work, n/2)
			}
		})
	}
}

// TestPeriodicitySniffRoutes pins the small-period reroute: sawtooth
// inputs must bypass the compress engine (counter-guarded, like
// TestBucketPathTaken) and still select correctly, while random and
// duplicate-heavy inputs must NOT trigger the sniff — those are bucket
// wins the heuristic is forbidden to give back.
func TestPeriodicitySniffRoutes(t *testing.T) {
	const n = 1 << 18
	dst := make([]uint64, n)

	saw := make([]uint64, n)
	for i := range saw {
		saw[i] = uint64(i % 1024)
	}
	before := BucketSelects()
	if got := SelectInto(dst, saw, n/2); got != 512 {
		t.Fatalf("sawtooth rank n/2: got %d want 512", got)
	}
	if BucketSelects() != before {
		t.Fatal("sawtooth input took the bucket path despite the periodicity sniff")
	}

	r := rand.New(rand.NewSource(19))
	rnd := make([]uint64, n)
	for i := range rnd {
		rnd[i] = r.Uint64()
	}
	before = BucketSelects()
	SelectInto(dst, rnd, n/3)
	if BucketSelects() != before+1 {
		t.Fatal("sniff misfired on a random input")
	}

	// Duplicate-heavy random input: the leading pair recurs within the
	// scan window, so the strided probes must do the rejecting.
	dup := make([]uint64, n)
	for i := range dup {
		dup[i] = uint64(r.Intn(64))
	}
	before = BucketSelects()
	SelectInto(dst, dup, n/2)
	if BucketSelects() != before+1 {
		t.Fatal("sniff misfired on a duplicate-heavy (aperiodic) input")
	}
}
