// Package qsel provides expected-linear order-statistic selection and
// in-place multiway partitioning — the sort-free local kernels under the
// paper's selection algorithms. Everywhere the distributed code only needs
// an order statistic (pivot extraction from a gathered sample, the k-th
// element of a gathered residual), a full slices.Sort is Θ(n log n) local
// work the cost model charges to the x term for no benefit; Select is
// expected O(n) and allocation-free.
//
// Select uses the Floyd–Rivest SELECT strategy (recursively selecting an
// approximate pivot from a sample window around the target rank) on large
// windows, falling back to plain three-way quickselect below the sampling
// threshold. The three-way (fat-pivot) partition makes duplicate-heavy
// inputs first-class: an equal run containing the target rank terminates
// immediately instead of degrading quadratically.
package qsel

import (
	"cmp"
	"fmt"
	"math"
)

// Select partially rearranges s so that s[k] holds the element of rank k
// (0-based) and returns it: afterwards every element of s[:k] is ≤ s[k]
// and every element of s[k+1:] is ≥ s[k]. Expected O(len(s)) time, zero
// allocations. Panics if k is out of range.
//
// Cache-resident slices ([BucketMinN, BucketMaxInPlaceN] elements) of a
// fixed-width numeric key type are served by the in-place bucket engine
// (bucket.go); everything else uses scalar Floyd–Rivest. Both paths produce
// the same partition contract. Callers that only need the rank-k value —
// no partition side effect — should use SelectInto, whose compress engine
// has no upper crossover and wins at memory scale.
func Select[K cmp.Ordered](s []K, k int) K {
	if k < 0 || k >= len(s) {
		panic(fmt.Sprintf("qsel: rank %d out of range [0, %d)", k, len(s)))
	}
	if len(s) >= BucketMinN && len(s) <= BucketMaxInPlaceN && bucketSelect(s, k) {
		return s[k]
	}
	sel(s, 0, len(s)-1, k)
	return s[k]
}

// SelectScalar is Select pinned to the scalar Floyd–Rivest path regardless
// of size or key type — the pre-bucket kernel, kept callable for the
// differential tests and the -exp kernels before/after benchmark family.
func SelectScalar[K cmp.Ordered](s []K, k int) K {
	if k < 0 || k >= len(s) {
		panic(fmt.Sprintf("qsel: rank %d out of range [0, %d)", k, len(s)))
	}
	sel(s, 0, len(s)-1, k)
	return s[k]
}

// SelectInto returns the element of rank k (0-based) of src without
// modifying src, using dst (len(dst) ≥ len(src)) as workspace; dst's
// contents are unspecified on return. This is the value-only kernel: every
// pivot-extraction and residual-solve site in the distributed pipelines
// needs just the order statistic, not Select's partition side effect, and
// dropping that obligation lets the large-n path narrow by compressing the
// rank-k radix bucket (branch-predictable, no swap traffic) instead of
// partitioning — see bucket.go. Small or unsupported-key inputs fall back
// to copy + scalar Floyd–Rivest inside dst. Zero allocations either way.
func SelectInto[K cmp.Ordered](dst, src []K, k int) K {
	if k < 0 || k >= len(src) {
		panic(fmt.Sprintf("qsel: rank %d out of range [0, %d)", k, len(src)))
	}
	if len(dst) < len(src) {
		panic(fmt.Sprintf("qsel: SelectInto dst len %d < src len %d", len(dst), len(src)))
	}
	if len(src) >= BucketMinN && !smallPeriod(src) {
		if v, ok := bucketSelectInto(dst, src, k); ok {
			return v
		}
	}
	d := dst[:len(src)]
	copy(d, src)
	sel(d, 0, len(d)-1, k)
	return d[k]
}

// Small-period inputs (sawtooth and friends) are the compress engine's
// documented adversarial case: the value range is tiny, so every element
// survives the early bucket levels and each pass re-streams nearly the
// whole window, while scalar Floyd–Rivest's fat-pivot partition retires
// the k-th value's whole equal run at once. sniffMaxPeriod bounds the
// recurrence scan (and with it the sniff's cost: at most one extra pass
// over a prefix); periods above it don't repeat values often enough to
// hurt the bucket path.
const (
	sniffMaxPeriod = 4096
	sniffProbes    = 16
)

// smallPeriod reports whether s looks periodic with a small period: the
// leading pair recurs within min(len/4, sniffMaxPeriod) positions AND
// sniffProbes strided probes across the whole slice agree with that
// period. Random inputs practically never pass the pair recurrence, and
// duplicate-heavy (random small-range) inputs that do are rejected by
// the probes, so the bucket path keeps those wins. False positives only
// reroute to the (always correct) scalar path.
func smallPeriod[K cmp.Ordered](s []K) bool {
	n := len(s)
	limit := min(n/4, sniffMaxPeriod)
	p := 0
	for j := 1; j <= limit; j++ {
		if s[j] == s[0] && s[j+1] == s[1] {
			p = j
			break
		}
	}
	if p <= 1 {
		// No recurrence, or a constant prefix: truly constant windows are
		// the compress engine's best case (the prep fold's diff==0 path
		// answers right after the transform pass), so never reroute them.
		return false
	}
	for t := 1; t <= sniffProbes; t++ {
		pos := (n - 1) * t / sniffProbes
		if s[pos] != s[pos%p] {
			return false
		}
	}
	return true
}

// Rank counts the elements of s strictly below v and equal to v in one
// pass — the local rank split every threshold-partition consumer (SmallestK,
// the dht top-k extraction) needs after a distributed selection. Zero
// allocations.
func Rank[K cmp.Ordered](s []K, v K) (below, equal int) {
	for _, e := range s {
		if e < v {
			below++
		} else if e == v {
			equal++
		}
	}
	return below, equal
}

// sel narrows [left, right] (inclusive) until s[k] is in final position.
func sel[K cmp.Ordered](s []K, left, right, k int) {
	for right > left {
		if right-left > 600 {
			// Floyd–Rivest: recursively select within a sample window of
			// size Θ(n^(2/3)) centered (with a √-spread safety margin) on
			// where rank k is expected to land, so the next partition's
			// pivot s[k] is already a near-exact quantile.
			n := float64(right - left + 1)
			i := float64(k - left + 1)
			z := math.Log(n)
			sz := 0.5 * math.Exp(2*z/3)
			sd := 0.5 * math.Sqrt(z*sz*(n-sz)/n)
			if i < n/2 {
				sd = -sd
			}
			newLeft := max(left, int(float64(k)-i*sz/n+sd))
			newRight := min(right, int(float64(k)+(n-i)*sz/n+sd))
			sel(s, newLeft, newRight, k)
		}
		pivot := s[k]
		lt, gt := partition3(s, left, right, pivot)
		switch {
		case k < lt:
			right = lt - 1
		case k > gt:
			left = gt + 1
		default:
			return // k lands inside the equal run
		}
	}
}

// partition3 rearranges s[left..right] (inclusive) into
// [ < pivot | == pivot | > pivot ] and returns the inclusive bounds
// [lt, gt] of the equal run (Dutch national flag).
func partition3[K cmp.Ordered](s []K, left, right int, pivot K) (lt, gt int) {
	lt, gt = left, right
	i := left
	for i <= gt {
		switch {
		case s[i] < pivot:
			s[i], s[lt] = s[lt], s[i]
			i++
			lt++
		case s[i] > pivot:
			s[i], s[gt] = s[gt], s[i]
			gt--
		default:
			i++
		}
	}
	return lt, gt
}

// PartitionRange rearranges s in place into the three bands
// [ x < lo | lo ≤ x ≤ hi | x > hi ] and returns the sizes (na, nb) of the
// first two bands: afterwards s[:na] < lo, lo ≤ s[na:na+nb] ≤ hi, and
// s[na+nb:] > hi. Single pass, zero allocations. lo ≤ hi is the caller's
// responsibility (lo == hi yields an exact three-way partition).
func PartitionRange[K cmp.Ordered](s []K, lo, hi K) (na, nb int) {
	lt, gt := 0, len(s)-1
	i := 0
	for i <= gt {
		switch {
		case s[i] < lo:
			s[i], s[lt] = s[lt], s[i]
			i++
			lt++
		case s[i] > hi:
			s[i], s[gt] = s[gt], s[i]
			gt--
		default:
			i++
		}
	}
	return lt, gt + 1 - lt
}
