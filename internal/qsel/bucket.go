// Bucket select: the histogram kernels behind the large-n selection paths.
//
// Both engines run on machine words obtained through an order-preserving
// key transform (uints pass through; ints get the sign-bit flip, floats the
// standard IEEE-754 monotone flip) and narrow to the rank-k element byte by
// byte: one counting pass over 256 radix buckets of the current
// most-significant differing byte (the &0xff-masked index lets the
// compiler drop the bounds check), a prefix sum to locate the bucket
// holding rank k, then a single narrowing pass that keeps that bucket only.
// An or/and fold of the window (seeded during the narrowing pass) skips
// byte levels that are constant across the window, so duplicate-heavy and
// small-valued inputs do not pay for dead bytes.
//
// The two engines differ in the narrowing pass, because the two exported
// entry points make different promises:
//
//   - Select promises the full partition contract (s[:k] ≤ s[k] ≤ s[k+1:]),
//     so its engine narrows with an in-place three-way partition around the
//     target byte. That pass carries the same ~50% unpredictable branches
//     as a comparison partition, so the engine only beats Floyd–Rivest
//     while the slice is cache-resident: Select routes through it in the
//     [BucketMinN, BucketMaxInPlaceN] window and uses scalar Floyd–Rivest
//     outside (crossovers from the -exp kernels sweep, see EXPERIMENTS.md).
//
//   - SelectInto promises only the rank-k value (src is read-only, dst is
//     workspace), so its engine narrows with a compress: copy the target
//     bucket to the front of the workspace with a branch that is taken only
//     for bucket members (~1/256 on spread data — essentially free after
//     the predictor locks on), and recurse inside the workspace. No
//     unpredictable branches, no swap traffic, ~3 word-streaming passes
//     total; this is the kernel that wins at memory scale and the one the
//     distributed pipelines' value-only call sites use.
//
// The transform is a monotone bijection, so narrowing in the transformed
// domain and inverting yields answers under the native < order (ties may
// resolve to either side, exactly as with the comparison-based path).
// -0.0 and +0.0 map to adjacent transformed keys with -0.0 first; they
// compare equal under <, so either is a valid rank-k answer. NaNs, which
// have no < order, are unsupported (the comparison path also returns
// arbitrary results for NaN).
package qsel

import (
	"cmp"
	"math/bits"
	"sync"
	"sync/atomic"
	"unsafe"
)

// BucketMinN is the lower crossover: selections over fewer elements (or
// unsupported key types) use scalar Floyd–Rivest. Below ~2k elements the
// counting pass cannot amortize its fixed 2 KiB histogram zeroing and the
// fold pass.
const BucketMinN = 2048

// BucketMaxInPlaceN is the upper crossover for the in-place (partitioning)
// engine only: above it the slice leaves cache and the extra full-width
// count pass costs more than the branch misses it saves, so Select falls
// back to Floyd–Rivest. SelectInto's compress engine has no upper bound —
// it replaces the unpredictable partition branches rather than adding to
// them, so it keeps winning as n grows.
const BucketMaxInPlaceN = 1 << 15

// bucketLeafN is the window size below which a level finishes with scalar
// Floyd–Rivest instead of another counting pass (same rationale as
// BucketMinN, but intra-recursion: the window is already cache-resident).
const bucketLeafN = 600

// bucketSelects counts calls served by either bucket engine — the CI guard
// asserts this advances for large supported inputs (counter-based, not
// timing-based). Atomic: PEs select concurrently.
var bucketSelects atomic.Int64

// BucketSelects returns the number of Select/SelectInto calls that were
// served by a bucket engine since process start.
func BucketSelects() int64 { return bucketSelects.Load() }

const (
	sign64 = uint64(1) << 63
	sign32 = uint32(1) << 31
)

// flipF64 maps float64 bits to monotone uint64: order of the transformed
// words equals the < order of the floats (with -0.0 just below +0.0).
func flipF64(v uint64) uint64 {
	mask := uint64(int64(v) >> 63) // all ones iff sign bit set
	return v ^ (mask | sign64)
}

// unflipF64 inverts flipF64.
func unflipF64(v uint64) uint64 {
	mask := uint64(int64(^v) >> 63) // all ones iff transformed sign bit clear
	return v ^ (mask | sign64)
}

func flipF32(v uint32) uint32 {
	mask := uint32(int32(v) >> 31)
	return v ^ (mask | sign32)
}

func unflipF32(v uint32) uint32 {
	mask := uint32(int32(^v) >> 31)
	return v ^ (mask | sign32)
}

// uword is the word domain the engines run on after the key transform.
type uword interface{ ~uint32 | ~uint64 }

// ---------------------------------------------------------------------------
// In-place engine (full partition contract) — Select's bucket path.
// ---------------------------------------------------------------------------

// bucketSelect reinterprets s as transformed machine words and runs the
// in-place bucket engine when K is a supported fixed-width numeric type.
// It reports whether it handled the call; false means the caller must use
// the scalar path. len(s) must be > 0.
func bucketSelect[K cmp.Ordered](s []K, k int) bool {
	p := unsafe.Pointer(&s[0])
	switch any((*K)(nil)).(type) {
	case *uint64:
		bucketSelectU(unsafe.Slice((*uint64)(p), len(s)), k)
	case *uint:
		if unsafe.Sizeof(uint(0)) != 8 {
			return false
		}
		bucketSelectU(unsafe.Slice((*uint64)(p), len(s)), k)
	case *uintptr:
		if unsafe.Sizeof(uintptr(0)) != 8 {
			return false
		}
		bucketSelectU(unsafe.Slice((*uint64)(p), len(s)), k)
	case *int64:
		u := unsafe.Slice((*uint64)(p), len(s))
		for i := range u {
			u[i] ^= sign64
		}
		bucketSelectU(u, k)
		for i := range u {
			u[i] ^= sign64
		}
	case *int:
		if unsafe.Sizeof(int(0)) != 8 {
			return false
		}
		u := unsafe.Slice((*uint64)(p), len(s))
		for i := range u {
			u[i] ^= sign64
		}
		bucketSelectU(u, k)
		for i := range u {
			u[i] ^= sign64
		}
	case *float64:
		u := unsafe.Slice((*uint64)(p), len(s))
		for i := range u {
			u[i] = flipF64(u[i])
		}
		bucketSelectU(u, k)
		for i := range u {
			u[i] = unflipF64(u[i])
		}
	case *uint32:
		bucketSelectU(unsafe.Slice((*uint32)(p), len(s)), k)
	case *int32:
		u := unsafe.Slice((*uint32)(p), len(s))
		for i := range u {
			u[i] ^= sign32
		}
		bucketSelectU(u, k)
		for i := range u {
			u[i] ^= sign32
		}
	case *float32:
		u := unsafe.Slice((*uint32)(p), len(s))
		for i := range u {
			u[i] = flipF32(u[i])
		}
		bucketSelectU(u, k)
		for i := range u {
			u[i] = unflipF32(u[i])
		}
	default:
		return false
	}
	bucketSelects.Add(1)
	return true
}

// bucketSelectU places the rank-k word of s into s[k] with everything
// smaller to its left and everything larger to its right. The window
// [lo, hi) always contains rank k and every element outside it is already
// on its final side.
func bucketSelectU[U uword](s []U, k int) {
	lo, hi := 0, len(s)
	// Initial or/and fold locates the most-significant byte that actually
	// varies; subsequent folds ride along with the partition pass.
	var orv, andv U = 0, ^U(0)
	for _, v := range s {
		orv |= v
		andv &= v
	}
	for {
		if hi-lo <= bucketLeafN {
			sel(s, lo, hi-1, k)
			return
		}
		diff := orv ^ andv
		if diff == 0 {
			return // window is one repeated value; s[k] already final
		}
		shift := uint(63-bits.LeadingZeros64(uint64(diff))) &^ 7

		// Counting pass over 256 buckets of the current byte.
		var counts [256]int
		win := s[lo:hi]
		for _, v := range win {
			counts[(v>>shift)&0xff]++
		}

		// Prefix-sum walk to the bucket holding rank k.
		r := k - lo
		b, before := 0, 0
		for {
			c := counts[b]
			if r < before+c {
				break
			}
			before += c
			b++
		}

		// In-place three-way partition of the window around byte value b,
		// folding or/and of the kept (== b) band for the next level's
		// varying-byte detection. The byte at shift varies across the
		// window (diff selected it), so the window strictly shrinks.
		tb := U(b)
		lt, i, gt := lo, lo, hi-1
		var o U = 0
		a := ^U(0)
		for i <= gt {
			v := s[i]
			c := (v >> shift) & 0xff
			switch {
			case c < tb:
				s[i], s[lt] = s[lt], v
				i++
				lt++
			case c > tb:
				s[i], s[gt] = s[gt], v
				gt--
			default:
				o |= v
				a &= v
				i++
			}
		}
		lo, hi = lt, gt+1
		orv, andv = o, a
	}
}

// ---------------------------------------------------------------------------
// Compress engine (value only) — SelectInto's bucket path.
// ---------------------------------------------------------------------------

// bucketSelectInto answers rank k of src via the compress engine when K is
// a supported fixed-width numeric type, writing only into dst (len(dst) ≥
// len(src); contents unspecified afterwards) and never into src. ok=false
// means the caller must use the scalar path. len(src) must be > 0.
func bucketSelectInto[K cmp.Ordered](dst, src []K, k int) (res K, ok bool) {
	ps := unsafe.Pointer(&src[0])
	pd := unsafe.Pointer(&dst[0])
	n := len(src)
	switch any((*K)(nil)).(type) {
	case *uint64, *uint, *uintptr, *int64, *int:
		if unsafe.Sizeof(src[0]) != 8 {
			return res, false // 32-bit platform uint/int: no transform entry
		}
		var x uint64
		switch any((*K)(nil)).(type) {
		case *int64, *int:
			x = sign64
		}
		d := unsafe.Slice((*uint64)(pd), n)
		s := unsafe.Slice((*uint64)(ps), n)
		v := selectValue64(d, prepXor64(d, s, x), k) ^ x
		res = *(*K)(unsafe.Pointer(&v))
	case *float64:
		d := unsafe.Slice((*uint64)(pd), n)
		s := unsafe.Slice((*uint64)(ps), n)
		v := unflipF64(selectValue64(d, prepFlip64(d, s), k))
		res = *(*K)(unsafe.Pointer(&v))
	case *uint32, *int32:
		var x uint32
		if _, isInt := any((*K)(nil)).(*int32); isInt {
			x = sign32
		}
		d := unsafe.Slice((*uint32)(pd), n)
		s := unsafe.Slice((*uint32)(ps), n)
		v := selectValue32(d, prepXor32(d, s, x), k) ^ x
		res = *(*K)(unsafe.Pointer(&v))
	case *float32:
		d := unsafe.Slice((*uint32)(pd), n)
		s := unsafe.Slice((*uint32)(ps), n)
		v := unflipF32(selectValue32(d, prepFlip32(d, s), k))
		res = *(*K)(unsafe.Pointer(&v))
	default:
		return res, false
	}
	bucketSelects.Add(1)
	return res, true
}

// prepState is pass 0's fused output: the or/and fold of the transformed
// words plus whether they were already ascending (rank order known).
type prepState[U uword] struct {
	orv, andv U
	asc       bool
}

// prepXor64 fills dst with src^x while folding or/and and detecting
// sortedness — transform, fold and copy in one streaming pass.
func prepXor64(dst, src []uint64, x uint64) prepState[uint64] {
	var orv uint64
	andv := ^uint64(0)
	asc := true
	prev := src[0] ^ x
	for i, v := range src {
		u := v ^ x
		dst[i] = u
		orv |= u
		andv &= u
		asc = asc && u >= prev
		prev = u
	}
	return prepState[uint64]{orv, andv, asc}
}

func prepFlip64(dst, src []uint64) prepState[uint64] {
	var orv uint64
	andv := ^uint64(0)
	asc := true
	prev := flipF64(src[0])
	for i, v := range src {
		u := flipF64(v)
		dst[i] = u
		orv |= u
		andv &= u
		asc = asc && u >= prev
		prev = u
	}
	return prepState[uint64]{orv, andv, asc}
}

func prepXor32(dst, src []uint32, x uint32) prepState[uint32] {
	var orv uint32
	andv := ^uint32(0)
	asc := true
	prev := src[0] ^ x
	for i, v := range src {
		u := v ^ x
		dst[i] = u
		orv |= u
		andv &= u
		asc = asc && u >= prev
		prev = u
	}
	return prepState[uint32]{orv, andv, asc}
}

func prepFlip32(dst, src []uint32) prepState[uint32] {
	var orv uint32
	andv := ^uint32(0)
	asc := true
	prev := flipF32(src[0])
	for i, v := range src {
		u := flipF32(v)
		dst[i] = u
		orv |= u
		andv &= u
		asc = asc && u >= prev
		prev = u
	}
	return prepState[uint32]{orv, andv, asc}
}

func selectValue64(dst []uint64, st prepState[uint64], k int) uint64 {
	return selectValueU(dst, st, k)
}

func selectValue32(dst []uint32, st prepState[uint32], k int) uint32 {
	return selectValueU(dst, st, k)
}

// selectValueU returns the rank-k word of the transformed window in dst.
// Every level compresses the target bucket to the front of the window — an
// in-buffer compress is safe because the write cursor never passes the
// read cursor.
func selectValueU[U uword](dst []U, st prepState[U], k int) U {
	if st.asc {
		return dst[k] // already in rank order; the transform preserved it
	}
	orv, andv := st.orv, st.andv
	win := dst
	for {
		if len(win) <= bucketLeafN {
			sel(win, 0, len(win)-1, k)
			return win[k]
		}
		diff := orv ^ andv
		if diff == 0 {
			return win[0] // window is one repeated value
		}
		topbit := 63 - bits.LeadingZeros64(uint64(diff))

		// Narrow-range refinement: when at most ~2 bytes still vary and the
		// window is large, one 2^16-bucket level resolves (nearly) the whole
		// remaining value in a single count+compress instead of two 8-bit
		// levels — this is what keeps duplicate-heavy and sawtooth inputs,
		// whose value range is far below the key width, at ~3 passes total.
		var shift uint
		var mask U
		if len(win) >= 1<<16 && topbit >= 8 && topbit <= 16 {
			shift = uint(max(topbit-15, 0))
			mask = U(0xffff)
		} else {
			shift = uint(topbit) &^ 7
			mask = U(0xff)
		}

		var b, before int
		if mask == 0xffff {
			b, before = bucketOf16(win, shift, k)
		} else {
			b, before = bucketOf8(win, shift, k)
		}

		// Compress the target bucket to the front of the window. The
		// unconditional store plus conditional advance keeps the loop free
		// of swap traffic, and the branch is taken only for bucket members,
		// so the predictor tracks it. An in-buffer compress is safe: the
		// write cursor never passes the read cursor.
		tb := U(b)
		w := 0
		var o U = 0
		a := ^U(0)
		for _, v := range win {
			win[w] = v
			if (v>>shift)&mask == tb {
				w++
				o |= v
				a &= v
			}
		}
		win = win[:w]
		k -= before
		orv, andv = o, a
	}
}

// bucketOf8 histograms the byte at shift and returns the bucket holding
// rank r plus the element count before it.
func bucketOf8[U uword](win []U, shift uint, r int) (b, before int) {
	var counts [256]int
	for _, v := range win {
		counts[(v>>shift)&0xff]++
	}
	for {
		c := counts[b]
		if r < before+c {
			return b, before
		}
		before += c
		b++
	}
}

// counts16Pool recycles the 2^16-bucket histograms: 256 KiB is over the
// compiler's stack-variable limit ("too large for stack"), so a plain
// local would heap-allocate on every narrow-range level. The level only
// runs on windows ≥ 2^16 elements, so the clear-on-return is < 7% of the
// counting pass it enables.
var counts16Pool = sync.Pool{New: func() any { return new([1 << 16]int32) }}

// bucketOf16 is bucketOf8 with 2^16 buckets of the 16-bit slice at shift.
func bucketOf16[U uword](win []U, shift uint, r int) (b, before int) {
	counts := counts16Pool.Get().(*[1 << 16]int32)
	for _, v := range win {
		counts[(v>>shift)&0xffff]++
	}
	for {
		c := int(counts[b])
		if r < before+c {
			clear(counts[:])
			counts16Pool.Put(counts)
			return b, before
		}
		before += c
		b++
	}
}
