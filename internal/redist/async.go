package redist

import (
	"fmt"
	"sort"

	"commtopk/internal/coll"
	"commtopk/internal/comm"
)

func addI64(a, b int64) int64 { return a + b }

// boundary is one PE's run in the surplus/deficit enumeration: the global
// index of its first moved element (or open slot) and the run length.
type boundary struct {
	rank  int
	start int64
	count int64
}

// buildPlanStep phases.
const (
	bpphInit     = iota // start the global count sum
	bpphNWait           // harvest n; trivial shortcut or start surplus scan
	bpphSPfxWait        // harvest surplus prefix; start deficit scan
	bpphDPfxWait        // harvest deficit prefix; start total-surplus sum
	bpphTotWait         // harvest total surplus; start send-run gather
	bpphSendWait        // harvest send runs; start recv-run gather
	bpphRecvWait        // harvest recv runs; intersect and finish
	bpphDone
)

// buildPlanStep is the continuation form of BuildPlan — the five
// sequential collectives of the plan construction (sum, two prefix
// scans, surplus total, two boundary gathers) as a pooled state machine.
// The blocking BuildPlan drives this machine through comm.RunSteps: one
// implementation, both execution modes, identical plans and meters.
type buildPlanStep struct {
	localCount int64
	out        func(Plan)
	self       bool

	n, nBar      int64
	surplus      int64
	deficit      int64
	sPrefix      int64
	dPrefix      int64
	totalSurplus int64
	bArr         [1]boundary
	sendRuns     []boundary
	recvRuns     []boundary
	plan         Plan

	cur    comm.Stepper
	onI64  func(int64) // n / sPrefix / dPrefix / totalSurplus by phase
	onSend func([][]boundary)
	onRecv func([][]boundary)
	phase  int
}

func newBuildPlanStep(pe *comm.PE, localCount int64, out func(Plan), self bool) *buildPlanStep {
	if localCount < 0 {
		panic("redist: negative local count")
	}
	s := comm.GetPooled[buildPlanStep](pe)
	s.localCount, s.out, s.self = localCount, out, self
	s.plan = Plan{}
	s.phase = bpphInit
	s.cur = nil
	if s.onI64 == nil {
		s.onI64 = func(v int64) {
			switch s.phase {
			case bpphNWait:
				s.n = v
			case bpphSPfxWait:
				s.sPrefix = v
			case bpphDPfxWait:
				s.dPrefix = v
			default:
				s.totalSurplus = v
			}
		}
		s.onSend = func(runs [][]boundary) {
			s.sendRuns = s.sendRuns[:0]
			for _, r := range runs {
				s.sendRuns = append(s.sendRuns, r[0])
			}
		}
		s.onRecv = func(runs [][]boundary) {
			s.recvRuns = s.recvRuns[:0]
			for _, r := range runs {
				s.recvRuns = append(s.recvRuns, r[0])
			}
		}
	}
	return s
}

// BuildPlanStep is the continuation form of BuildPlan: out (optional)
// receives this PE's transfer plan. Collective; interleaves with
// unrelated steppers under comm.RunAsync.
func BuildPlanStep(pe *comm.PE, localCount int64, out func(Plan)) comm.Stepper {
	return newBuildPlanStep(pe, localCount, out, true)
}

func (s *buildPlanStep) finish(pe *comm.PE) *comm.RecvHandle {
	s.phase = bpphDone
	if s.self {
		plan, out := s.plan, s.out
		s.release(pe)
		if out != nil {
			out(plan)
		}
	}
	return nil
}

func (s *buildPlanStep) release(pe *comm.PE) {
	s.out, s.cur = nil, nil
	s.plan = Plan{}
	s.sendRuns = s.sendRuns[:0]
	s.recvRuns = s.recvRuns[:0]
	comm.PutPooled(pe, s)
}

// intersect pairs this PE's run with the opposite side's runs, exactly
// as in the paper's merge of the two prefix-sum enumerations.
func (s *buildPlanStep) intersect(pe *comm.PE) {
	if s.surplus > 0 {
		myLo, myHi := s.sPrefix, s.sPrefix+s.surplus
		for _, r := range s.recvRuns {
			if r.count == 0 {
				continue
			}
			lo, hi := r.start, r.start+r.count
			if hi > s.totalSurplus {
				hi = s.totalSurplus
			}
			olo, ohi := max(lo, myLo), min(hi, myHi)
			if olo < ohi {
				s.plan.Sends = append(s.plan.Sends, Transfer{Peer: r.rank, Count: ohi - olo})
			}
		}
		sort.Slice(s.plan.Sends, func(i, j int) bool { return s.plan.Sends[i].Peer < s.plan.Sends[j].Peer })
	}
	if s.deficit > 0 {
		myLo := s.dPrefix
		myHi := min(s.dPrefix+s.deficit, s.totalSurplus)
		for _, r := range s.sendRuns {
			if r.count == 0 {
				continue
			}
			lo, hi := r.start, r.start+r.count
			olo, ohi := max(lo, myLo), min(hi, myHi)
			if olo < ohi {
				s.plan.Recvs = append(s.plan.Recvs, Transfer{Peer: r.rank, Count: ohi - olo})
			}
		}
		sort.Slice(s.plan.Recvs, func(i, j int) bool { return s.plan.Recvs[i].Peer < s.plan.Recvs[j].Peer })
	}
}

func (s *buildPlanStep) Step(pe *comm.PE) *comm.RecvHandle {
	for {
		if s.cur != nil {
			if h := s.cur.Step(pe); h != nil {
				return h
			}
			s.cur = nil
		}
		switch s.phase {
		case bpphInit:
			s.cur = coll.AllReduceScalarStep(pe, s.localCount, addI64, s.onI64)
			s.phase = bpphNWait
		case bpphNWait:
			p := int64(pe.P())
			s.nBar = (s.n + p - 1) / p
			s.plan.NBar = s.nBar
			if s.n == 0 {
				return s.finish(pe)
			}
			s.surplus = max(s.localCount-s.nBar, 0)
			s.deficit = max(s.nBar-s.localCount, 0)
			s.cur = coll.ExScanSumStep(pe, s.surplus, s.onI64)
			s.phase = bpphSPfxWait
		case bpphSPfxWait:
			s.cur = coll.ExScanSumStep(pe, s.deficit, s.onI64)
			s.phase = bpphDPfxWait
		case bpphDPfxWait:
			s.cur = coll.AllReduceScalarStep(pe, s.surplus, addI64, s.onI64)
			s.phase = bpphTotWait
		case bpphTotWait:
			s.bArr[0] = boundary{rank: pe.Rank(), start: s.sPrefix, count: s.surplus}
			s.cur = coll.AllGathervStep(pe, s.bArr[:1], s.onSend)
			s.phase = bpphSendWait
		case bpphSendWait:
			s.bArr[0] = boundary{rank: pe.Rank(), start: s.dPrefix, count: s.deficit}
			s.cur = coll.AllGathervStep(pe, s.bArr[:1], s.onRecv)
			s.phase = bpphRecvWait
		case bpphRecvWait:
			s.intersect(pe)
			return s.finish(pe)
		default:
			return nil
		}
	}
}

// executeStep phases.
const (
	xphInit     = iota // validate, ship all surplus segments
	xphRecvLoop        // post the next receive (or finish)
	xphRecvWait        // append the received segment
	xphDone
)

// executeStep is the continuation form of Apply: surplus segments are
// shipped eagerly (sends never block), then the receive loop yields on
// each pending segment so unrelated steppers can interleave.
type executeStep[T any] struct {
	local []T
	plan  Plan
	out   func([]T)
	self  bool

	tag     comm.Tag
	res     []T
	recvIdx int
	h       *comm.RecvHandle
	phase   int
}

func newExecuteStep[T any](pe *comm.PE, local []T, plan Plan, out func([]T), self bool) *executeStep[T] {
	s := comm.GetPooled[executeStep[T]](pe)
	*s = executeStep[T]{local: local, plan: plan, out: out, self: self}
	return s
}

// ExecuteStep is the continuation form of Apply: out (optional) receives
// the balanced local slice. Collective with respect to the plan's peers;
// interleaves with unrelated steppers under comm.RunAsync.
func ExecuteStep[T any](pe *comm.PE, local []T, plan Plan, out func([]T)) comm.Stepper {
	return newExecuteStep(pe, local, plan, out, true)
}

func (s *executeStep[T]) release(pe *comm.PE) {
	*s = executeStep[T]{}
	comm.PutPooled(pe, s)
}

func (s *executeStep[T]) finish(pe *comm.PE) *comm.RecvHandle {
	s.phase = xphDone
	if s.self {
		res, out := s.res, s.out
		s.release(pe)
		if out != nil {
			out(res)
		}
	}
	return nil
}

func (s *executeStep[T]) Step(pe *comm.PE) *comm.RecvHandle {
	for {
		switch s.phase {
		case xphInit:
			sendTotal := s.plan.TotalSent()
			if sendTotal > int64(len(s.local)) {
				panic(fmt.Sprintf("redist: plan sends %d of %d local objects", sendTotal, len(s.local)))
			}
			s.tag = pe.NextCollTag()
			keep := int64(len(s.local)) - sendTotal
			cursor := keep
			for _, seg := range s.plan.Sends {
				chunk := s.local[cursor : cursor+seg.Count]
				pe.Send(seg.Peer, s.tag, chunk, int64(len(chunk))*coll.WordsOf[T]())
				cursor += seg.Count
			}
			s.res = s.local[:keep:keep]
			s.recvIdx = 0
			s.phase = xphRecvLoop
		case xphRecvLoop:
			if s.recvIdx >= len(s.plan.Recvs) {
				return s.finish(pe)
			}
			s.h = pe.IRecv(s.plan.Recvs[s.recvIdx].Peer, s.tag)
			s.phase = xphRecvWait
			if !s.h.Test() {
				return s.h
			}
		case xphRecvWait:
			rxAny, _ := s.h.Wait()
			s.h = nil
			chunk := rxAny.([]T)
			seg := s.plan.Recvs[s.recvIdx]
			if int64(len(chunk)) != seg.Count {
				panic(fmt.Sprintf("redist: expected %d objects from %d, got %d", seg.Count, seg.Peer, len(chunk)))
			}
			s.res = append(s.res, chunk...)
			s.recvIdx++
			s.phase = xphRecvLoop
		default:
			return nil
		}
	}
}

// balanceStep chains BuildPlanStep into ExecuteStep (the plan is only
// known once the first sub-stepper completes, so the composition cannot
// be a static sequence).
type balanceStep[T any] struct {
	local []T
	out   func([]T)
	plan  Plan
	cur   comm.Stepper
	phase int
}

// BalanceStep is the continuation form of Balance: plan and apply in one
// stepper. Collective.
func BalanceStep[T any](pe *comm.PE, local []T, out func([]T)) comm.Stepper {
	s := comm.GetPooled[balanceStep[T]](pe)
	*s = balanceStep[T]{local: local, out: out}
	return s
}

func (s *balanceStep[T]) Step(pe *comm.PE) *comm.RecvHandle {
	for {
		if s.cur != nil {
			if h := s.cur.Step(pe); h != nil {
				return h
			}
			s.cur = nil
		}
		switch s.phase {
		case 0:
			s.cur = BuildPlanStep(pe, int64(len(s.local)), func(pl Plan) { s.plan = pl })
			s.phase = 1
		case 1:
			s.cur = ExecuteStep(pe, s.local, s.plan, s.out)
			s.phase = 2
		case 2:
			// ExecuteStep already delivered out; just recycle.
			*s = balanceStep[T]{}
			comm.PutPooled(pe, s)
			return nil
		default:
			return nil
		}
	}
}
