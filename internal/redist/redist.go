// Package redist implements the adaptive data redistribution of Section 9
// of the paper: given n_i objects on PE i, move data so that afterwards
// every PE holds at most n̄ = ⌈n/p⌉ objects, with PEs above n̄ only
// sending (at most n_i − n̄ objects) and PEs below only receiving (at most
// n̄ − n_i) — the minimal-movement discipline that makes the operation
// adaptive: if the data is already balanced, nothing moves.
//
// The matching works exactly as in the paper: prefix sums over the
// surplus and deficit sequences enumerate the elements to move and the
// empty slots; merging the two enumerations pairs every surplus run with
// its receiving slots, yielding per-PE gather/scatter transfer segments.
// The merge is realized with an all-gather of the 2p run boundaries
// (O(p) words per PE) rather than Batcher's O(α log p) distributed
// bitonic merge; the transfer plan — the section's actual contribution —
// is identical, and the plan-building cost is dwarfed by the transfer
// volume O(β·max_i n_i) it authorizes.
package redist

import (
	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/xrand"
)

// Transfer is one matched segment: Count objects move between this PE and
// Peer (direction depends on which list it appears in).
type Transfer struct {
	Peer  int
	Count int64
}

// Plan is one PE's redistribution schedule. Senders have only Sends,
// receivers only Recvs; balanced PEs have neither.
type Plan struct {
	// NBar is the post-balance ceiling ⌈n/p⌉.
	NBar int64
	// Sends lists (receiver, count) segments in ascending slot order.
	Sends []Transfer
	// Recvs lists (sender, count) segments in ascending element order.
	Recvs []Transfer
}

// TotalSent returns the number of objects this PE ships out.
func (pl *Plan) TotalSent() int64 {
	var t int64
	for _, s := range pl.Sends {
		t += s.Count
	}
	return t
}

// TotalReceived returns the number of objects this PE takes in.
func (pl *Plan) TotalReceived() int64 {
	var t int64
	for _, r := range pl.Recvs {
		t += r.Count
	}
	return t
}

// BuildPlan computes the transfer plan for the current distribution.
// Collective: all PEs pass their local object count. Blocking driver
// over the same state machine BuildPlanStep exposes for comm.RunAsync.
func BuildPlan(pe *comm.PE, localCount int64) Plan {
	st := newBuildPlanStep(pe, localCount, nil, false)
	comm.RunSteps(pe, st)
	plan := st.plan
	st.release(pe)
	return plan
}

// Apply executes a plan: surplus objects are taken from the tail of the
// local slice and shipped to the plan's receivers; received objects are
// appended. Returns the balanced local slice. Collective. Blocking
// driver over the ExecuteStep state machine.
func Apply[T any](pe *comm.PE, local []T, plan Plan) []T {
	st := newExecuteStep(pe, local, plan, nil, false)
	comm.RunSteps(pe, st)
	out := st.res
	st.release(pe)
	return out
}

// Balance is the convenience wrapper: plan and apply in one call.
// Collective.
func Balance[T any](pe *comm.PE, local []T) []T {
	plan := BuildPlan(pe, int64(len(local)))
	return Apply(pe, local, plan)
}

// NaiveExchange is the non-adaptive baseline for the ablation bench: the
// random (re)allocation prior algorithms rely on ([31]'s assumption that
// objects sit on random PEs), followed by an adaptive trim to meet the
// n̄ ceiling exactly. It moves Θ(n/p) words per PE regardless of how
// balanced the input already is — precisely the overhead Section 9's
// adaptive plan avoids. Collective.
func NaiveExchange[T any](pe *comm.PE, local []T, rng *xrand.RNG) []T {
	p := pe.P()
	parts := make([][]T, p)
	for _, x := range local {
		d := rng.Intn(p)
		parts[d] = append(parts[d], x)
	}
	recv := coll.AllToAll(pe, parts)
	var out []T
	for _, part := range recv {
		out = append(out, part...)
	}
	return Balance(pe, out)
}
