package redist

import (
	"slices"
	"testing"
	"testing/quick"

	"commtopk/internal/comm"
	"commtopk/internal/xrand"
)

// runBalance distributes counts[i] tagged objects to PE i, balances, and
// returns the per-PE results.
func runBalance(t *testing.T, counts []int64) [][]uint64 {
	t.Helper()
	p := len(counts)
	m := comm.NewMachine(comm.DefaultConfig(p))
	out := make([][]uint64, p)
	if err := m.Run(func(pe *comm.PE) {
		local := make([]uint64, counts[pe.Rank()])
		base := uint64(pe.Rank()) << 32
		for i := range local {
			local[i] = base + uint64(i)
		}
		out[pe.Rank()] = Balance(pe, local)
	}); err != nil {
		t.Fatalf("counts %v: %v", counts, err)
	}
	return out
}

func checkBalanced(t *testing.T, counts []int64, out [][]uint64) {
	t.Helper()
	var n int64
	for _, c := range counts {
		n += c
	}
	p := int64(len(counts))
	nBar := (n + p - 1) / p
	var total int64
	seen := map[uint64]bool{}
	for r, objs := range out {
		if int64(len(objs)) > nBar {
			t.Errorf("PE %d holds %d > n̄=%d", r, len(objs), nBar)
		}
		for _, o := range objs {
			if seen[o] {
				t.Fatalf("object %d duplicated", o)
			}
			seen[o] = true
		}
		total += int64(len(objs))
	}
	if total != n {
		t.Errorf("object count changed: %d -> %d", n, total)
	}
}

func TestBalanceVariousDistributions(t *testing.T) {
	cases := [][]int64{
		{100, 0, 0, 0},          // all on one PE
		{0, 0, 0, 100},          // all on the last
		{25, 25, 25, 25},        // already balanced
		{50, 10, 30, 10},        // mixed
		{1, 2, 3, 4, 5, 6, 7},   // ramp, odd p
		{0, 0, 0},               // empty
		{7},                     // single PE
		{13, 0, 27, 0, 1, 0, 2}, // sparse
	}
	for _, counts := range cases {
		out := runBalance(t, counts)
		checkBalanced(t, counts, out)
	}
}

func TestAlreadyBalancedMovesNothing(t *testing.T) {
	const p = 8
	m := comm.NewMachine(comm.DefaultConfig(p))
	m.MustRun(func(pe *comm.PE) {
		local := make([]uint64, 100)
		Balance(pe, local)
	})
	// Plan building uses collectives, but no payload transfer may happen:
	// payload volume = words beyond the plan-building collectives. Easiest
	// check: rerun with only BuildPlan and compare.
	m2 := comm.NewMachine(comm.DefaultConfig(p))
	m2.MustRun(func(pe *comm.PE) {
		BuildPlan(pe, 100)
	})
	full, planOnly := m.Stats().TotalWords, m2.Stats().TotalWords
	if full != planOnly {
		t.Errorf("balanced input still moved %d payload words", full-planOnly)
	}
}

func TestSendersOnlySendReceiversOnlyReceive(t *testing.T) {
	counts := []int64{90, 10, 50, 2}
	p := len(counts)
	m := comm.NewMachine(comm.DefaultConfig(p))
	m.MustRun(func(pe *comm.PE) {
		plan := BuildPlan(pe, counts[pe.Rank()])
		if len(plan.Sends) > 0 && len(plan.Recvs) > 0 {
			t.Errorf("PE %d both sends and receives", pe.Rank())
		}
		nBar := plan.NBar
		c := counts[pe.Rank()]
		if c > nBar && plan.TotalSent() != c-nBar {
			t.Errorf("PE %d sends %d, want %d", pe.Rank(), plan.TotalSent(), c-nBar)
		}
		if c <= nBar && plan.TotalSent() != 0 {
			t.Errorf("PE %d below n̄ but sends %d", pe.Rank(), plan.TotalSent())
		}
		if plan.TotalReceived() > max(nBar-c, 0) {
			t.Errorf("PE %d receives %d > deficit %d", pe.Rank(), plan.TotalReceived(), nBar-c)
		}
	})
}

func TestAdaptiveVolumeBeatsNaive(t *testing.T) {
	// One PE slightly over, the rest balanced: adaptive moves only the
	// overshoot, naive reshuffles nearly everything.
	const p = 8
	const base = 1000
	counts := make([]int64, p)
	for i := range counts {
		counts[i] = base
	}
	counts[3] = base + 3*p // slight overshoot

	run := func(naive bool) int64 {
		m := comm.NewMachine(comm.DefaultConfig(p))
		m.MustRun(func(pe *comm.PE) {
			local := make([]uint64, counts[pe.Rank()])
			if naive {
				NaiveExchange(pe, local, xrand.NewPE(5, pe.Rank()))
			} else {
				Balance(pe, local)
			}
		})
		return m.Stats().TotalWords
	}
	adaptive, naive := run(false), run(true)
	if adaptive >= naive/4 {
		t.Errorf("adaptive moved %d words, naive %d; expected large advantage", adaptive, naive)
	}
}

func TestNaiveExchangeBalances(t *testing.T) {
	counts := []int64{100, 0, 0, 0}
	const p = 4
	m := comm.NewMachine(comm.DefaultConfig(p))
	out := make([][]uint64, p)
	m.MustRun(func(pe *comm.PE) {
		local := make([]uint64, counts[pe.Rank()])
		for i := range local {
			local[i] = uint64(pe.Rank())<<32 + uint64(i)
		}
		out[pe.Rank()] = NaiveExchange(pe, local, xrand.NewPE(7, pe.Rank()))
	})
	checkBalanced(t, counts, out)
}

func TestBalancePreservesValues(t *testing.T) {
	counts := []int64{64, 1, 2, 1}
	p := len(counts)
	m := comm.NewMachine(comm.DefaultConfig(p))
	out := make([][]uint64, p)
	var want []uint64
	for r, c := range counts {
		for i := int64(0); i < c; i++ {
			want = append(want, uint64(r)<<32+uint64(i))
		}
	}
	m.MustRun(func(pe *comm.PE) {
		local := make([]uint64, counts[pe.Rank()])
		for i := range local {
			local[i] = uint64(pe.Rank())<<32 + uint64(i)
		}
		out[pe.Rank()] = Balance(pe, local)
	})
	var got []uint64
	for _, objs := range out {
		got = append(got, objs...)
	}
	slices.Sort(got)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Error("multiset of objects changed during balance")
	}
}

func TestBalanceQuick(t *testing.T) {
	check := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 10 {
			return true
		}
		counts := make([]int64, len(raw))
		for i, r := range raw {
			counts[i] = int64(r % 100)
		}
		p := len(counts)
		m := comm.NewMachine(comm.DefaultConfig(p))
		out := make([][]uint64, p)
		err := m.Run(func(pe *comm.PE) {
			local := make([]uint64, counts[pe.Rank()])
			for i := range local {
				local[i] = uint64(pe.Rank())<<32 + uint64(i)
			}
			out[pe.Rank()] = Balance(pe, local)
		})
		if err != nil {
			return false
		}
		var n, total int64
		for _, c := range counts {
			n += c
		}
		nBar := (n + int64(p) - 1) / int64(p)
		for _, objs := range out {
			if int64(len(objs)) > nBar {
				return false
			}
			total += int64(len(objs))
		}
		return total == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestApplyPanicsOnOversizedPlan(t *testing.T) {
	m := comm.NewMachine(comm.DefaultConfig(1))
	err := m.Run(func(pe *comm.PE) {
		Apply(pe, []uint64{1}, Plan{Sends: []Transfer{{Peer: 0, Count: 5}}})
	})
	if err == nil {
		t.Error("oversized plan should panic")
	}
}

func TestSkewedBigRedistribution(t *testing.T) {
	// Heavy skew with randomized sizes at p=16.
	const p = 16
	rng := xrand.New(99)
	counts := make([]int64, p)
	for i := range counts {
		if rng.Bernoulli(0.3) {
			counts[i] = int64(rng.Intn(5000))
		}
	}
	out := runBalance(t, counts)
	checkBalanced(t, counts, out)
}

// plansOf collects each PE's plan from both builders for equivalence checks.
func plansOf(t *testing.T, counts []int64, batcher bool) []Plan {
	t.Helper()
	p := len(counts)
	m := comm.NewMachine(comm.DefaultConfig(p))
	plans := make([]Plan, p)
	if err := m.Run(func(pe *comm.PE) {
		if batcher {
			plans[pe.Rank()] = BuildPlanBatcher(pe, counts[pe.Rank()])
		} else {
			plans[pe.Rank()] = BuildPlan(pe, counts[pe.Rank()])
		}
	}); err != nil {
		t.Fatalf("counts=%v batcher=%v: %v", counts, batcher, err)
	}
	return plans
}

func plansEqual(a, b []Plan) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].NBar != b[i].NBar ||
			!slices.Equal(a[i].Sends, b[i].Sends) ||
			!slices.Equal(a[i].Recvs, b[i].Recvs) {
			return false
		}
	}
	return true
}

func TestBatcherPlanMatchesAllGatherPlan(t *testing.T) {
	cases := [][]int64{
		{100, 0, 0, 0},
		{0, 0, 0, 100},
		{25, 25, 25, 25},
		{50, 10, 30, 10},
		{1, 2, 3, 4, 5, 6, 7},
		{0, 0, 0},
		{7},
		{13, 0, 27, 0, 1, 0, 2},
		{0, 64, 0, 64, 0, 64},
		{1000, 1, 1, 1, 1, 1, 1, 1},
	}
	for _, counts := range cases {
		ref := plansOf(t, counts, false)
		got := plansOf(t, counts, true)
		if !plansEqual(ref, got) {
			t.Errorf("counts %v:\n allgather %+v\n batcher   %+v", counts, ref, got)
		}
	}
}

func TestBatcherPlanQuickEquivalence(t *testing.T) {
	check := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true
		}
		counts := make([]int64, len(raw))
		for i, r := range raw {
			counts[i] = int64(r % 200)
		}
		ref := plansOf(t, counts, false)
		got := plansOf(t, counts, true)
		return plansEqual(ref, got)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBatcherPlanApplies(t *testing.T) {
	counts := []int64{90, 3, 40, 0, 8, 0, 0, 12}
	p := len(counts)
	m := comm.NewMachine(comm.DefaultConfig(p))
	out := make([][]uint64, p)
	m.MustRun(func(pe *comm.PE) {
		local := make([]uint64, counts[pe.Rank()])
		for i := range local {
			local[i] = uint64(pe.Rank())<<32 + uint64(i)
		}
		plan := BuildPlanBatcher(pe, int64(len(local)))
		out[pe.Rank()] = Apply(pe, local, plan)
	})
	checkBalanced(t, counts, out)
}

func TestBatcherPlanBuildingScalesBetter(t *testing.T) {
	// Plan-building volume: all-gather is O(p) words per PE, Batcher O(log p).
	const p = 64
	vol := func(batcher bool) int64 {
		m := comm.NewMachine(comm.DefaultConfig(p))
		m.MustRun(func(pe *comm.PE) {
			count := int64(100)
			if pe.Rank() == 3 {
				count = 100 + 5*p
			}
			if batcher {
				BuildPlanBatcher(pe, count)
			} else {
				BuildPlan(pe, count)
			}
		})
		return m.Stats().BottleneckWords()
	}
	allgather, batcher := vol(false), vol(true)
	if batcher >= allgather {
		t.Errorf("Batcher plan volume %d not below all-gather %d at p=%d", batcher, allgather, p)
	}
}
