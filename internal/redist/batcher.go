package redist

import (
	"fmt"
	"sort"

	"commtopk/internal/coll"
	"commtopk/internal/comm"
)

// BuildPlanBatcher computes the same transfer plan as BuildPlan but with
// the paper's own machinery: the surplus and deficit prefix sums are
// merged with Batcher's bitonic merging network (O(α log p) latency,
// O(1) words per PE per stage) instead of an all-gather, and each PE
// derives its matched peers from its elements' positions in the merged
// order — "we match receiving slots and elements to be moved by merging
// the sequences d and s" (Section 9). Matched pairs then exchange their
// run boundaries point-to-point (one 2-word message per transfer pair) to
// fix the exact segment sizes.
//
// Plan-building cost: O(α log p) + O(matched pairs) messages, versus
// BuildPlan's O(βp) all-gather. The plans are identical. Collective.
func BuildPlanBatcher(pe *comm.PE, localCount int64) Plan {
	if localCount < 0 {
		panic("redist: negative local count")
	}
	p := pe.P()
	rank := pe.Rank()
	n := coll.SumAll(pe, localCount)
	nBar := (n + int64(p) - 1) / int64(p)
	plan := Plan{NBar: nBar}
	if n == 0 || p == 1 {
		return plan
	}

	surplus := max(localCount-nBar, 0)
	deficit := max(nBar-localCount, 0)
	sCur := coll.InScan(pe, []int64{surplus}, func(a, b int64) int64 { return a + b })[0]
	dRaw := coll.InScan(pe, []int64{deficit}, func(a, b int64) int64 { return a + b })[0]
	totalSurplus := coll.SumAll(pe, surplus)
	dCur := min(dRaw, totalSurplus) // only the first Σsurplus slots fill
	sPrev := sCur - surplus
	dPrev := max(dRaw-deficit, 0)
	if dPrev > totalSurplus {
		dPrev = totalSurplus
	}

	// Two merged orders with opposite tie-breaking give the ≤ and <
	// counts: composite keys val·2p + slot, where slot places one kind
	// before the other at equal values and keeps each sequence ascending.
	stride := uint64(2 * p)
	if uint64(n) > (^uint64(0)-stride)/stride {
		panic("redist: input too large for composite merge keys")
	}
	keyAs := uint64(sCur)*stride + uint64(p+rank) // A-order: d before s on ties
	keyAd := uint64(dCur)*stride + uint64(rank)
	keyBs := uint64(sCur)*stride + uint64(rank) // B-order: s before d on ties
	keyBd := uint64(dCur)*stride + uint64(p+rank)
	posAs, posAd := coll.BitonicMergePositions(pe, keyAs, keyAd)
	posBs, posBd := coll.BitonicMergePositions(pe, keyBs, keyBd)

	// Shift each PE's A-position of s and B-position of d to its right
	// neighbour (rank r needs the predecessor boundary's counts); rank 0
	// uses the zero-boundary counts computed by two cheap reductions.
	zeroD := coll.SumAll(pe, boolToI64(dCur == 0)) // #{d_r ≤ 0} (ties: d first)
	zeroS := coll.SumAll(pe, boolToI64(sCur == 0)) // #{s_j ≤ 0}
	tagShift := pe.NextCollTag()
	if rank+1 < p {
		pe.Send(rank+1, tagShift, [2]int64{int64(posAs), int64(posBd)}, 2)
	}
	cntDleSPrev := zeroD // for rank 0: s_{-1} = 0
	cntSleDPrev := zeroS
	if rank > 0 {
		rx, _ := pe.Recv(rank-1, tagShift)
		pair := rx.([2]int64)
		cntDleSPrev = pair[0] - int64(rank-1) // posA(s_{r-1}) − (r−1)
		cntSleDPrev = pair[1] - int64(rank-1) // posB(d_{r-1}) − (r−1)
	}
	cntDltSCur := int64(posBs) - int64(rank) // #{d < s_rank}
	cntSltDCur := int64(posAd) - int64(rank) // #{s < d_rank}

	// Matched ranges: receivers r ∈ [r0, rEnd) for my surplus run,
	// senders j ∈ [j0, jEnd) for my deficit run.
	r0 := clampI64(cntDleSPrev, 0, int64(p))
	rEnd := clampI64(cntDltSCur+1, 0, int64(p))
	j0 := clampI64(cntSleDPrev, 0, int64(p))
	jEnd := clampI64(cntSltDCur+1, 0, int64(p))
	if r0 > rEnd {
		rEnd = r0
	}
	if j0 > jEnd {
		jEnd = j0
	}

	// Exchange run boundaries across the matched ranges. The ranges are
	// supersets of the true (nonempty-overlap) pairings — empty runs can
	// produce vacuous inclusions with inconsistent membership on the two
	// sides — so the boundary info travels through the hypercube router,
	// which needs no agreement on per-peer message counts; vacuous pairs
	// simply contribute zero-overlap items that are dropped below.
	type bound struct {
		Dest   int32
		From   int32
		Lo, Hi int64
	}
	overlap := func(aLo, aHi, bLo, bHi int64) int64 {
		return min(aHi, bHi) - max(aLo, bLo)
	}
	boundDest := func(b bound) int { return int(b.Dest) }
	var outbound []bound
	for r := r0; r < rEnd; r++ { // my s-run boundaries → candidate receivers
		outbound = append(outbound, bound{Dest: int32(r), From: int32(rank), Lo: sPrev, Hi: sCur})
	}
	// The routed boundary batches are consumed in place via the stepper
	// form's borrowed view — each bound folds into the plan during the out
	// call, so the blocking router's caller-owned clone would be waste.
	comm.RunSteps(pe, coll.RouteCombineStep(pe, outbound, boundDest, nil, func(sIn []bound) {
		for _, b := range sIn { // receiver role: pair my d-run with received s-runs
			if c := overlap(b.Lo, b.Hi, dPrev, dCur); c > 0 {
				plan.Recvs = append(plan.Recvs, Transfer{Peer: int(b.From), Count: c})
			}
		}
	}))

	outbound = nil
	for j := j0; j < jEnd; j++ { // my d-run boundaries → candidate senders
		outbound = append(outbound, bound{Dest: int32(j), From: int32(rank), Lo: dPrev, Hi: dCur})
	}
	comm.RunSteps(pe, coll.RouteCombineStep(pe, outbound, boundDest, nil, func(dIn []bound) {
		for _, b := range dIn { // sender role: pair my s-run with received d-runs
			if c := overlap(sPrev, sCur, b.Lo, b.Hi); c > 0 {
				plan.Sends = append(plan.Sends, Transfer{Peer: int(b.From), Count: c})
			}
		}
	}))
	sort.Slice(plan.Sends, func(i, j int) bool { return plan.Sends[i].Peer < plan.Sends[j].Peer })
	sort.Slice(plan.Recvs, func(i, j int) bool { return plan.Recvs[i].Peer < plan.Recvs[j].Peer })

	// A PE is a sender or a receiver, never both (surplus and deficit
	// cannot both be positive); zero-overlap pairings were dropped above.
	if len(plan.Sends) > 0 && len(plan.Recvs) > 0 {
		panic(fmt.Sprintf("redist: PE %d matched as both sender and receiver", rank))
	}
	return plan
}

func boolToI64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func clampI64(x, lo, hi int64) int64 { return min(max(x, lo), hi) }
