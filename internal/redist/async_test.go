package redist

import (
	"reflect"
	"testing"

	"commtopk/internal/comm"
)

// TestBalanceStepMatchesBlocking pins the tentpole contract for redist:
// BuildPlanStep→ExecuteStep under RunAsync produce bit-identical
// balanced slices and meters to the blocking Balance (which drives the
// same machines through RunSteps).
func TestBalanceStepMatchesBlocking(t *testing.T) {
	const p = 7
	mk := func() [][]uint64 {
		// Heavily skewed: PE i holds i*37 objects.
		data := make([][]uint64, p)
		for i := 0; i < p; i++ {
			for j := 0; j < i*37; j++ {
				data[i] = append(data[i], uint64(i)<<32|uint64(j))
			}
		}
		return data
	}

	ref := make([][]uint64, p)
	mach := comm.NewMachine(comm.DefaultConfig(p))
	in := mk()
	mach.MustRun(func(pe *comm.PE) {
		ref[pe.Rank()] = Balance(pe, in[pe.Rank()])
	})
	refStats := mach.Stats()

	got := make([][]uint64, p)
	mach2 := comm.NewMachine(comm.DefaultConfig(p))
	in2 := mk()
	mach2.MustRunAsync(func(pe *comm.PE) comm.Stepper {
		r := pe.Rank()
		return BalanceStep(pe, in2[r], func(v []uint64) { got[r] = v })
	})

	if !reflect.DeepEqual(got, ref) {
		t.Errorf("BalanceStep diverged from blocking Balance")
	}
	if s := mach2.Stats(); s != refStats {
		t.Errorf("stepper meters diverged: %+v vs %+v", s, refStats)
	}
}

// TestBuildPlanStepRepeatedRunsBitIdentical: the plan construction has
// no map iteration or RNG anywhere, so repeated runs must be
// bit-identical in both plans and meters.
func TestBuildPlanStepRepeatedRunsBitIdentical(t *testing.T) {
	const p = 5
	counts := []int64{190, 3, 77, 0, 41}
	run := func() ([]Plan, comm.Stats) {
		plans := make([]Plan, p)
		mach := comm.NewMachine(comm.DefaultConfig(p))
		mach.MustRun(func(pe *comm.PE) {
			plans[pe.Rank()] = BuildPlan(pe, counts[pe.Rank()])
		})
		return plans, mach.Stats()
	}
	refPlans, refStats := run()
	for rep := 0; rep < 3; rep++ {
		plans, stats := run()
		if !reflect.DeepEqual(plans, refPlans) {
			t.Fatalf("rep %d: plans diverged", rep)
		}
		if stats != refStats {
			t.Fatalf("rep %d: meters diverged", rep)
		}
	}
}
