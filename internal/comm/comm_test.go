package comm

import (
	"strings"
	"testing"
)

func TestMachineBasicSendRecv(t *testing.T) {
	m := NewMachine(DefaultConfig(2))
	err := m.Run(func(pe *PE) {
		const tag Tag = 7
		if pe.Rank() == 0 {
			pe.Send(1, tag, []int64{1, 2, 3}, 3)
		} else {
			data, words := pe.Recv(0, tag)
			got := data.([]int64)
			if words != 3 || len(got) != 3 || got[2] != 3 {
				t.Errorf("recv got %v (%d words)", got, words)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMachineCounters(t *testing.T) {
	m := NewMachine(Config{P: 2, Alpha: 10, Beta: 2, ChanCap: 4, Seed: 1})
	m.MustRun(func(pe *PE) {
		const tag Tag = 1
		if pe.Rank() == 0 {
			pe.Send(1, tag, []int64{1, 2, 3, 4, 5}, 5)
		} else {
			pe.Recv(0, tag)
		}
	})
	s := m.Stats()
	if s.TotalWords != 5 {
		t.Errorf("TotalWords = %d, want 5", s.TotalWords)
	}
	if s.MaxSentWords != 5 || s.MaxRecvWords != 5 {
		t.Errorf("bottleneck words = %d/%d, want 5/5", s.MaxSentWords, s.MaxRecvWords)
	}
	if s.TotalSends != 1 || s.MaxSends != 1 {
		t.Errorf("sends = %d/%d, want 1/1", s.TotalSends, s.MaxSends)
	}
	// Modeled clock: sender pays alpha + 5*beta = 20; receiver inherits it.
	if s.MaxClock != 20 {
		t.Errorf("MaxClock = %v, want 20", s.MaxClock)
	}
}

func TestVirtualClockCriticalPath(t *testing.T) {
	// A 3-hop relay: clock should accumulate along the chain, not in parallel.
	m := NewMachine(Config{P: 4, Alpha: 1, Beta: 0, ChanCap: 4})
	m.MustRun(func(pe *PE) {
		const tag Tag = 2
		switch pe.Rank() {
		case 0:
			pe.Send(1, tag, nil, 0)
		case 1:
			pe.Recv(0, tag)
			pe.Send(2, tag, nil, 0)
		case 2:
			pe.Recv(1, tag)
			pe.Send(3, tag, nil, 0)
		case 3:
			pe.Recv(2, tag)
		}
	})
	if got := m.Stats().MaxClock; got != 3 {
		t.Errorf("critical path clock = %v, want 3 (three sequential startups)", got)
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	m := NewMachine(DefaultConfig(4))
	err := m.Run(func(pe *PE) {
		if pe.Rank() == 2 {
			panic("boom")
		}
		// Other PEs block forever on a message that never comes; the abort
		// must release them.
		pe.Recv((pe.Rank()+1)%4, 99)
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected panic propagation, got %v", err)
	}
	// The machine must be reusable after an abort.
	if err := m.Run(func(pe *PE) {}); err != nil {
		t.Fatalf("machine not reusable after abort: %v", err)
	}
}

func TestTagMismatchDetected(t *testing.T) {
	m := NewMachine(DefaultConfig(2))
	err := m.Run(func(pe *PE) {
		if pe.Rank() == 0 {
			pe.Send(1, 5, nil, 0)
		} else {
			pe.Recv(0, 6)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "tag mismatch") {
		t.Fatalf("expected tag mismatch error, got %v", err)
	}
}

func TestSelfSendPanics(t *testing.T) {
	m := NewMachine(DefaultConfig(2))
	err := m.Run(func(pe *PE) {
		if pe.Rank() == 0 {
			pe.Send(0, 1, nil, 0)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "self-send") {
		t.Fatalf("expected self-send panic, got %v", err)
	}
}

func TestResetStats(t *testing.T) {
	m := NewMachine(DefaultConfig(2))
	m.MustRun(func(pe *PE) {
		if pe.Rank() == 0 {
			pe.Send(1, 1, nil, 4)
		} else {
			pe.Recv(0, 1)
		}
	})
	m.ResetStats()
	s := m.Stats()
	if s.TotalWords != 0 || s.MaxClock != 0 || s.TotalSends != 0 {
		t.Errorf("stats not reset: %+v", s)
	}
}

func TestSendRecvExchange(t *testing.T) {
	m := NewMachine(DefaultConfig(2))
	m.MustRun(func(pe *PE) {
		partner := 1 - pe.Rank()
		rx, _ := pe.SendRecv(partner, []int{pe.Rank()}, 1, partner, 3)
		if got := rx.([]int)[0]; got != partner {
			t.Errorf("PE %d exchanged got %d, want %d", pe.Rank(), got, partner)
		}
	})
}

func TestInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMachine(P=0) should panic")
		}
	}()
	NewMachine(Config{P: 0})
}

func TestManyPEsAllExchange(t *testing.T) {
	// Stress the buffered-channel matrix with a dense exchange (the
	// mailbox twin lives in backend_test.go).
	const p = 16
	m := NewMachine(MatrixConfig(p))
	m.MustRun(func(pe *PE) {
		const tag Tag = 11
		for i := 1; i < p; i++ {
			dst := (pe.Rank() + i) % p
			pe.Send(dst, tag, pe.Rank(), 1)
		}
		sum := 0
		for i := 1; i < p; i++ {
			src := (pe.Rank() - i + p) % p
			rx, _ := pe.Recv(src, tag)
			sum += rx.(int)
		}
		want := p*(p-1)/2 - pe.Rank()
		if sum != want {
			t.Errorf("PE %d: sum=%d want %d", pe.Rank(), sum, want)
		}
	})
}
