package comm

import (
	"testing"
	"time"
)

func TestAccessors(t *testing.T) {
	m := NewMachine(Config{P: 3, Alpha: 7, Beta: 2, ChanCap: 4, Seed: 5})
	if m.P() != 3 {
		t.Errorf("Machine.P = %d", m.P())
	}
	if c := m.Config(); c.Alpha != 7 || c.Beta != 2 {
		t.Errorf("Config = %+v", c)
	}
	m.MustRun(func(pe *PE) {
		if pe.P() != 3 {
			t.Errorf("PE.P = %d", pe.P())
		}
		if pe.Alpha() != 7 || pe.Beta() != 2 {
			t.Errorf("costs = %v/%v", pe.Alpha(), pe.Beta())
		}
		if pe.Rank() == 0 {
			pe.Send(1, 1, nil, 10)
			if pe.Clock() != 7+2*10 {
				t.Errorf("Clock = %v", pe.Clock())
			}
			if pe.SentWords() != 10 || pe.Sends() != 1 {
				t.Errorf("sent counters %d/%d", pe.SentWords(), pe.Sends())
			}
		}
		if pe.Rank() == 1 {
			pe.Recv(0, 1)
			if pe.RecvWords() != 10 {
				t.Errorf("RecvWords = %d", pe.RecvWords())
			}
		}
	})
	s := m.Stats()
	if s.BottleneckWords() != 10 {
		t.Errorf("BottleneckWords = %d", s.BottleneckWords())
	}
}

func TestCollTagSequenceSynchronized(t *testing.T) {
	m := NewMachine(DefaultConfig(4))
	tags := make([][]Tag, 4)
	m.MustRun(func(pe *PE) {
		for i := 0; i < 5; i++ {
			tags[pe.Rank()] = append(tags[pe.Rank()], pe.NextCollTag())
		}
	})
	for r := 1; r < 4; r++ {
		for i := range tags[0] {
			if tags[r][i] != tags[0][i] {
				t.Fatalf("tag sequences diverge at PE %d step %d", r, i)
			}
		}
	}
	// Tags keep advancing across runs (no reuse).
	m.MustRun(func(pe *PE) {
		if next := pe.NextCollTag(); next <= tags[pe.Rank()][4] {
			t.Errorf("tag %d did not advance past %d", next, tags[pe.Rank()][4])
		}
	})
}

func TestWaitTimeAccumulates(t *testing.T) {
	m := NewMachine(DefaultConfig(2))
	m.MustRun(func(pe *PE) {
		if pe.Rank() == 1 {
			time.Sleep(20 * time.Millisecond)
			pe.Send(0, 3, nil, 0)
			return
		}
		pe.Recv(1, 3)
		if pe.WaitTime() < 10*time.Millisecond {
			t.Errorf("WaitTime %v; expected to include the blocking recv", pe.WaitTime())
		}
	})
}

func TestReceiverPaysTransferTime(t *testing.T) {
	// A coordinator draining p−1 messages must pay Θ(p·(α+βm)) modeled
	// time even though all senders transmit concurrently.
	const p = 9
	m := NewMachine(Config{P: p, Alpha: 1, Beta: 0, ChanCap: p})
	m.MustRun(func(pe *PE) {
		const tag Tag = 4
		if pe.Rank() == 0 {
			for src := 1; src < p; src++ {
				pe.Recv(src, tag)
			}
		} else {
			pe.Send(0, tag, nil, 0)
		}
	})
	if got := m.Stats().MaxClock; got < float64(p-1) {
		t.Errorf("coordinator clock %v, want >= %d (serialized receives)", got, p-1)
	}
}

func TestMustRunPanicsOnError(t *testing.T) {
	m := NewMachine(DefaultConfig(2))
	defer func() {
		if recover() == nil {
			t.Error("MustRun should panic on PE failure")
		}
	}()
	m.MustRun(func(pe *PE) {
		if pe.Rank() == 0 {
			panic("kaboom")
		}
		pe.Recv(0, 9)
	})
}

func TestSendToInvalidRank(t *testing.T) {
	m := NewMachine(DefaultConfig(2))
	if err := m.Run(func(pe *PE) {
		if pe.Rank() == 0 {
			pe.Send(5, 1, nil, 0)
		}
	}); err == nil {
		t.Error("send to rank 5 of 2 should fail")
	}
	if err := m.Run(func(pe *PE) {
		if pe.Rank() == 0 {
			pe.Recv(-1, 1)
		}
	}); err == nil {
		t.Error("recv from rank -1 should fail")
	}
}

func TestChanCapBackpressure(t *testing.T) {
	// ChanCap 1 forces the sender to block on the second message until
	// the receiver drains — exercising the slow Send path.
	m := NewMachine(Config{P: 2, Alpha: 1, Beta: 1, ChanCap: 1})
	m.MustRun(func(pe *PE) {
		const tag Tag = 6
		if pe.Rank() == 0 {
			for i := 0; i < 50; i++ {
				pe.Send(1, tag, i, 1)
			}
		} else {
			for i := 0; i < 50; i++ {
				rx, _ := pe.Recv(0, tag)
				if rx.(int) != i {
					t.Fatalf("out of order: %v at %d", rx, i)
				}
			}
		}
	})
}
