package comm

import (
	"fmt"
	"sync"
	"testing"
)

// TestCtxIsolatedStreams pins the core serving invariant on both
// backends: traffic under different contexts between the same (src, dst)
// pair with the SAME tag forms independent FIFO streams. Receives posted
// under one context never bind another context's messages, even when the
// other context's messages arrive first (matrix stash detour, mailbox
// keyed demux).
func TestCtxIsolatedStreams(t *testing.T) {
	for _, cfg := range []Config{MailboxConfig(4), MatrixConfig(4)} {
		t.Run(cfg.Backend.String(), func(t *testing.T) {
			m := NewMachine(cfg)
			defer m.Close()
			m.MustRun(func(pe *PE) {
				const tag Tag = 61
				p, r := pe.P(), pe.Rank()
				right, left := (r+1)%p, (r-1+p)%p
				// Post receives for BOTH contexts before anything is sent,
				// then send ctx 7 traffic first and ctx 3 second — waiting
				// ctx 3 first forces the receiver past queued ctx 7 messages.
				pe.SetCtx(3)
				h3 := pe.IRecv(left, tag)
				pe.SetCtx(7)
				h7a := pe.IRecv(left, tag)
				h7b := pe.IRecv(left, tag)
				pe.Send(right, tag, fmt.Sprintf("c7a-%d", r), 1)
				pe.Send(right, tag, fmt.Sprintf("c7b-%d", r), 1)
				pe.SetCtx(3)
				pe.Send(right, tag, fmt.Sprintf("c3-%d", r), 1)
				if rx, _ := h3.Wait(); rx.(string) != fmt.Sprintf("c3-%d", left) {
					t.Errorf("rank %d ctx 3 got %v", r, rx)
				}
				if rx, _ := h7a.Wait(); rx.(string) != fmt.Sprintf("c7a-%d", left) {
					t.Errorf("rank %d ctx 7 first got %v", r, rx)
				}
				if rx, _ := h7b.Wait(); rx.(string) != fmt.Sprintf("c7b-%d", left) {
					t.Errorf("rank %d ctx 7 second got %v", r, rx)
				}
				pe.SetCtx(0)
			})
		})
	}
}

// TestCtxScratchNamespaced pins per-context scratch isolation: the same
// scratch key under different contexts resolves to different slots, so
// interleaved queries sharing one PE never see each other's protocol
// state.
func TestCtxScratchNamespaced(t *testing.T) {
	m := NewMachine(MailboxConfig(1))
	defer m.Close()
	m.MustRun(func(pe *PE) {
		pe.SetScratch("k", "default")
		pe.SetCtx(5)
		if pe.Scratch("k") != nil {
			t.Error("ctx 5 sees ctx 0 scratch")
		}
		pe.SetScratch("k", "five")
		pe.SetCtx(0)
		if got := pe.Scratch("k"); got != "default" {
			t.Errorf("ctx 0 scratch clobbered: %v", got)
		}
		pe.SetCtx(5)
		if got := pe.Scratch("k"); got != "five" {
			t.Errorf("ctx 5 scratch lost: %v", got)
		}
		pe.SetCtx(0)
	})
}

// TestCtxCollTagSequences pins per-context collective tag sequences:
// each context numbers its collectives independently, and context 0
// keeps the pre-context fast path. A shared counter would desynchronize
// tags when PEs interleave contexts in different orders.
func TestCtxCollTagSequences(t *testing.T) {
	m := NewMachine(MailboxConfig(1))
	defer m.Close()
	m.MustRun(func(pe *PE) {
		t0a := pe.NextCollTag()
		pe.SetCtx(2)
		c2a := pe.NextCollTag()
		pe.SetCtx(9)
		c9a := pe.NextCollTag()
		pe.SetCtx(2)
		c2b := pe.NextCollTag()
		pe.SetCtx(0)
		t0b := pe.NextCollTag()
		if c2a != c9a {
			t.Errorf("fresh contexts start at different seq: %d vs %d", c2a, c9a)
		}
		if c2b == c2a {
			t.Error("ctx 2 sequence did not advance")
		}
		if t0b != t0a+1 {
			t.Errorf("ctx 0 sequence disturbed by other contexts: %d then %d", t0a, t0b)
		}
		pe.SetCtx(0)
	})
}

// TestContextPoolReuse pins the lease pool: fresh ids are dense from 1,
// released ids are recycled LIFO, and the default context can never be
// released.
func TestContextPoolReuse(t *testing.T) {
	m := NewMachine(MailboxConfig(1))
	defer m.Close()
	a, b, c := m.NewContext(), m.NewContext(), m.NewContext()
	if a != 1 || b != 2 || c != 3 {
		t.Fatalf("fresh contexts = %d %d %d", a, b, c)
	}
	m.ReleaseContext(b)
	if got := m.NewContext(); got != b {
		t.Fatalf("released context not recycled: got %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("releasing context 0 did not panic")
		}
	}()
	m.ReleaseContext(0)
}

// TestPostDoorbell pins external injection on both backends: a
// non-PE goroutine Posts a message mid-run, every PE receives it from
// ExternalSrc under the posted context, and the receive is metered as a
// pure receive (one startup, no send charged to any PE).
func TestPostDoorbell(t *testing.T) {
	for _, cfg := range []Config{MailboxConfig(3), MatrixConfig(3)} {
		t.Run(cfg.Backend.String(), func(t *testing.T) {
			m := NewMachine(cfg)
			defer m.Close()
			const tag Tag = 77
			ctx := m.NewContext()
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for dst := 0; dst < cfg.P; dst++ {
					m.Post(dst, ctx, tag, dst*11, 1)
				}
			}()
			m.MustRun(func(pe *PE) {
				pe.SetCtx(ctx)
				h := pe.IRecv(pe.ExternalSrc(), tag)
				if rx, _ := h.Wait(); rx.(int) != pe.Rank()*11 {
					t.Errorf("rank %d doorbell payload %v", pe.Rank(), rx)
				}
				pe.SetCtx(0)
			})
			wg.Wait()
			s := m.Stats()
			if s.MaxSends != 0 {
				t.Errorf("Post charged a PE send: %+v", s)
			}
			if want := cfg.Alpha + cfg.Beta; s.MaxClock != want {
				t.Errorf("doorbell receive clock = %v, want α+β = %v", s.MaxClock, want)
			}
			m.ReleaseContext(ctx)
		})
	}
}

// anyWaiter is the test MultiWaiter: a two-phase stepper whose PE posts
// one receive in each of two contexts, sends the matching traffic, and
// then must complete when EITHER pending handle binds — the shape of a
// serving mux with several queries in flight.
type anyWaiter struct {
	phase  int
	h3, h8 *RecvHandle
	out    []string
}

func (s *anyWaiter) PendingHandles(buf []*RecvHandle) []*RecvHandle {
	if s.h3 != nil && s.h3.state == hPending {
		buf = append(buf, s.h3)
	}
	if s.h8 != nil && s.h8.state == hPending {
		buf = append(buf, s.h8)
	}
	return buf
}

func (s *anyWaiter) Step(pe *PE) *RecvHandle {
	const tag Tag = 83
	p, r := pe.P(), pe.Rank()
	for {
		switch s.phase {
		case 0:
			pe.SetCtx(3)
			s.h3 = pe.IRecv((r-1+p)%p, tag)
			pe.Send((r+1)%p, tag, fmt.Sprintf("c3-%d", r), 1)
			pe.SetCtx(8)
			s.h8 = pe.IRecv((r+1)%p, tag)
			pe.Send((r-1+p)%p, tag, fmt.Sprintf("c8-%d", r), 1)
			s.phase = 1
		case 1:
			// Wait for whichever stream delivers first; suspending here
			// must arm BOTH (src, ctx) keys or the body can strand.
			if s.h3 != nil && s.h3.Test() {
				rx, _ := s.h3.Wait()
				s.out[r] += rx.(string) + " "
				s.h3 = nil
				continue
			}
			if s.h8 != nil && s.h8.Test() {
				rx, _ := s.h8.Wait()
				s.out[r] += rx.(string) + " "
				s.h8 = nil
				continue
			}
			if s.h3 == nil && s.h8 == nil {
				pe.SetCtx(0)
				return nil
			}
			if s.h3 != nil {
				return s.h3
			}
			return s.h8
		}
	}
}

// TestMultiWaiterAnyOfResume drives anyWaiter through all three
// execution paths — RunAsync on the mailbox backend (ArmKeys
// suspension), blocking RunSteps on the mailbox backend (WaitAnyKeys),
// and blocking RunSteps on the channel matrix (reflect.Select mux) —
// and requires every PE to consume both streams regardless of arrival
// order.
func TestMultiWaiterAnyOfResume(t *testing.T) {
	const p = 8
	check := func(t *testing.T, out []string) {
		for r := 0; r < p; r++ {
			want3 := fmt.Sprintf("c3-%d", (r-1+p)%p)
			want8 := fmt.Sprintf("c8-%d", (r+1)%p)
			if out[r] != want3+" "+want8+" " && out[r] != want8+" "+want3+" " {
				t.Errorf("rank %d consumed %q", r, out[r])
			}
		}
	}
	t.Run("mailbox/async", func(t *testing.T) {
		m := NewMachine(MailboxConfig(p))
		defer m.Close()
		out := make([]string, p)
		m.MustRunAsync(func(pe *PE) Stepper { return &anyWaiter{out: out} })
		check(t, out)
	})
	t.Run("mailbox/blocking", func(t *testing.T) {
		m := NewMachine(MailboxConfig(p))
		defer m.Close()
		out := make([]string, p)
		m.MustRun(func(pe *PE) { RunSteps(pe, &anyWaiter{out: out}) })
		check(t, out)
	})
	t.Run("matrix/blocking", func(t *testing.T) {
		m := NewMachine(MatrixConfig(p))
		defer m.Close()
		out := make([]string, p)
		m.MustRun(func(pe *PE) { RunSteps(pe, &anyWaiter{out: out}) })
		check(t, out)
	})
}
