package comm

import (
	"fmt"
	"reflect"
	"runtime/debug"
	"time"

	"commtopk/internal/mailbox"
)

// Non-blocking communication: IRecv/ISend handles with Test/Wait/WaitAll,
// and continuation-scheduled PE bodies (Stepper, Machine.RunAsync).
//
// The paper's machine model assumes an MPI-like substrate where a PE can
// post a receive, keep computing, and synchronize later (MPI_Irecv /
// MPI_Wait). The blocking Recv forces the simulator to park a goroutine
// for every waiting PE body; at p = 131072 the transient park/hand-off
// churn dominates host time. The handle API decouples the three phases
// of a receive —
//
//	post (IRecv: no meter effect), bind (the message is matched to the
//	handle; whenever the transport delivers), fold (Wait: the meter —
//	virtual clock, word and receive counters — advances in program
//	order, exactly like a blocking Recv at that point)
//
// — so Recv is literally IRecv followed by Wait, both backends share the
// metering layer, and the two forms are bit-identical in results and
// statistics (pinned by the differential suite).
//
// # Handle discipline
//
// Handles are per-PE (never shared across PEs) and pooled: Wait consumes
// and recycles the handle, after which it must not be touched. Multiple
// receives from the same source must be waited in posting order
// (per-sender FIFO is a transport guarantee; the oldest posted handle
// owns the next message). Test may be polled freely; it binds any
// already-delivered messages but never blocks and never folds the meter.
//
// # Continuation-scheduled bodies
//
// A Stepper is a resumable PE body: Step runs until the body either
// completes (returns nil) or cannot proceed before a pending handle is
// bound (returns that handle). Under Machine.RunAsync on the mailbox
// backend, a Step that returns an unbound handle suspends the body as
// data — the worker goroutine returns to the scheduler and keeps driving
// other PEs — and the message's arrival re-enqueues the body on the
// scheduler's ready queue. Mid-run goroutine residency is therefore
// exactly the scheduler width w, not O(parked bodies): the property the
// blocking runtime can only provide between runs. Steppers must suspend
// via Step rather than calling a blocking Wait/Recv (blocking inside a
// stepper still works, but parks a goroutine like any blocking body).
// On the channel-matrix backend RunAsync simply drives the stepper with
// blocking waits on one goroutine per PE — the naive differential
// reference, bit-identical in results and statistics.

// handle states.
const (
	hFree    = iota // on the freelist; not a posted receive
	hPending        // posted, no message bound yet
	hBound          // message bound, meter not folded yet
)

// RecvHandle is a posted non-blocking receive (IRecv). Complete it with
// Wait (or poll with Test); handles from the same source complete in
// posting order.
type RecvHandle struct {
	pe    *PE
	src   int
	ctx   uint32 // the PE's communication context at posting time
	tag   Tag
	state uint8
	msg   message
	// prev/next link the PE's outstanding list while posted, and the
	// freelist (next only) while free.
	prev, next *RecvHandle
}

// SendHandle is the result of ISend. On the mailbox backend sends never
// block (intake is unbounded), so the handle is complete at creation, and
// without Config.AsyncSendBuffer the channel-matrix reference implements
// ISend as a completed blocking send. With the buffer enabled, a send
// that found its channel full is pending until capacity frees; Test
// reports delivery and Wait forces it (flushing this handle's send and
// everything posted before it). The zero SendHandle is complete.
type SendHandle struct {
	pe  *PE
	seq uint64 // 1-based position in the buffered-send order
}

// Test reports whether the send has been handed to the transport. It
// first drains whatever pending sends fit in the available capacity,
// never blocking.
func (h SendHandle) Test() bool {
	if h.pe == nil || h.pe.pendDone >= h.seq {
		return true
	}
	h.pe.drainPendingTry()
	return h.pe.pendDone >= h.seq
}

// Wait blocks until the send has been handed to the transport (flushing
// every buffered send up to and including this one). A no-op on complete
// handles.
func (h SendHandle) Wait() {
	if h.pe != nil {
		h.pe.flushPending(h.seq)
	}
}

// IRecv posts a non-blocking receive for the next message from src with
// the given tag, in the PE's current communication context, and returns
// its handle. src may be ExternalSrc (= p) to receive injected messages
// (Machine.Post). Posting has no effect on the meter; the virtual clock
// and counters advance at Wait, in program order, exactly as a blocking
// Recv would at that point. Receives from one (source, context) stream
// must be waited in posting order.
func (pe *PE) IRecv(src int, tag Tag) *RecvHandle {
	if src < 0 || src > pe.p {
		panic(fmt.Sprintf("comm: PE %d: recv from invalid rank %d", pe.rank, src))
	}
	h := pe.getHandle()
	h.src, h.ctx, h.tag, h.state = src, pe.ctx, tag, hPending
	pe.outAppend(h)
	// Eager bind: if the message is already queued (and no older handle
	// for the stream is pending), binding now keeps Test O(1) and Wait
	// free of transport calls on the fast path.
	if h.prevPendingFor(src, h.ctx) == nil {
		if msg, ok := pe.takeTry(src, h.ctx); ok {
			pe.bindMsg(h, msg)
		}
	}
	return h
}

// ISend transmits data to dst exactly like Send and returns the send
// handle. Mailbox sends never block, and the plain channel matrix
// completes the send eagerly as the naive reference — both return a
// completed handle. With Config.AsyncSendBuffer the channel matrix
// instead posts without blocking: the meter (clock, words, startups,
// depart stamp) advances here, at post time, exactly as the eager path
// would, and a send that finds its channel full parks in the PE's
// pending FIFO until a blocking point drains it. The payload aliasing
// rules of Send apply unchanged (and extend until actual delivery).
func (pe *PE) ISend(dst int, tag Tag, data any, words int64) SendHandle {
	if !pe.asyncBuf {
		pe.Send(dst, tag, data, words)
		return SendHandle{}
	}
	if dst < 0 || dst >= pe.p {
		panic(fmt.Sprintf("comm: PE %d: send to invalid rank %d", pe.rank, dst))
	}
	if dst == pe.rank {
		panic(fmt.Sprintf("comm: PE %d: self-send is not modeled; keep data local", pe.rank))
	}
	pe.clock += pe.alpha + pe.beta*float64(words)
	pe.sentWords += words
	pe.sends++
	msg := message{tag: tag, ctx: pe.ctx, words: words, depart: pe.clock, data: data}
	pe.drainPendingTry()
	if pe.pendHead == len(pe.pendQ) {
		select {
		case pe.m.chans[pe.rank][dst] <- msg:
			return SendHandle{} // delivered immediately; handle complete
		default:
		}
	}
	pe.pendQ = append(pe.pendQ, pendingSend{dst: dst, msg: msg})
	pe.pendTotal++
	return SendHandle{pe: pe, seq: pe.pendTotal}
}

// drainPendingTry delivers buffered sends in posting order for as long as
// channel capacity allows, without blocking.
func (pe *PE) drainPendingTry() {
	for pe.pendHead < len(pe.pendQ) {
		ps := &pe.pendQ[pe.pendHead]
		select {
		case pe.m.chans[pe.rank][ps.dst] <- ps.msg:
			pe.popPending()
		default:
			return
		}
	}
}

// flushPending blocks until the first seq buffered sends have been
// delivered (earlier posts first — the FIFO is never reordered). Sends
// beyond the queue's current extent are already done; callers pass
// pendTotal to flush everything.
func (pe *PE) flushPending(seq uint64) {
	for pe.pendDone < seq {
		ps := &pe.pendQ[pe.pendHead]
		select {
		case pe.m.chans[pe.rank][ps.dst] <- ps.msg:
			pe.popPending()
		default:
			t0 := time.Now()
			select {
			case pe.m.chans[pe.rank][ps.dst] <- ps.msg:
				pe.popPending()
			case <-pe.m.abort:
				panic(abortedError{})
			}
			pe.waitNs += time.Since(t0).Nanoseconds()
		}
	}
}

// popPending retires the queue head, dropping its payload reference and
// recycling the backing array once the queue empties.
func (pe *PE) popPending() {
	pe.pendQ[pe.pendHead] = pendingSend{}
	pe.pendHead++
	pe.pendDone++
	if pe.pendHead == len(pe.pendQ) {
		pe.pendQ = pe.pendQ[:0]
		pe.pendHead = 0
	}
}

// Test reports whether the handle's message has been bound, binding any
// already-delivered messages from the source (in posting order) on the
// way. It never blocks and never advances the meter.
func (h *RecvHandle) Test() bool {
	switch h.state {
	case hBound:
		return true
	case hFree:
		panic("comm: Test on a completed or unposted RecvHandle")
	}
	pe := h.pe
	for {
		g := pe.oldestPendingFor(h.src, h.ctx)
		msg, ok := pe.takeTry(h.src, h.ctx)
		if !ok {
			return false
		}
		pe.bindMsg(g, msg)
		if h.state == hBound {
			return true
		}
	}
}

// Wait completes the receive: it blocks until the message is bound (a
// body under RunAsync suspends via Step instead, so its Wait never
// blocks), folds the meter — clock, word and message counters, exactly
// like Recv — and returns the payload and its size in words. The handle
// is consumed and recycled; it must not be used afterwards.
func (h *RecvHandle) Wait() (any, int64) {
	pe := h.pe
	switch h.state {
	case hFree:
		panic("comm: Wait on a completed or unposted RecvHandle")
	case hPending:
		pe.fillUntil(h)
	}
	msg := h.msg
	// Single-ported receive: the transfer occupies this PE for α+βm,
	// starting no earlier than when the sender started transmitting and
	// no earlier than the PE's own clock (see Recv).
	cost := pe.alpha + pe.beta*float64(msg.words)
	avail := msg.depart - cost
	if avail < pe.clock {
		avail = pe.clock
	}
	pe.clock = avail + cost
	pe.recvWords += msg.words
	pe.recvs++
	pe.outUnlink(h)
	pe.putHandle(h)
	return msg.data, msg.words
}

// WaitAll completes the handles in slice order (meter folds in that
// order), discarding payloads — intended for receives whose payloads
// were already consumed via Test-driven binding or that carry only
// synchronization (acknowledgements, counts read elsewhere). For
// payload-carrying receives, call Wait on each handle.
func WaitAll(hs ...*RecvHandle) {
	for _, h := range hs {
		h.Wait()
	}
}

// ensureBound blocks until the handle's message is bound, without
// folding the meter (RunSteps' blocking drive between Step calls).
func (h *RecvHandle) ensureBound() {
	if h.state == hPending {
		h.pe.fillUntil(h)
	}
}

// prevPendingFor returns the closest older pending handle for the
// (src, ctx) stream before h in the outstanding list, or nil.
func (h *RecvHandle) prevPendingFor(src int, ctx uint32) *RecvHandle {
	for g := h.prev; g != nil; g = g.prev {
		if g.src == src && g.ctx == ctx && g.state == hPending {
			return g
		}
	}
	return nil
}

// oldestPendingFor returns the oldest pending handle for the (src, ctx)
// stream. The caller guarantees one exists.
func (pe *PE) oldestPendingFor(src int, ctx uint32) *RecvHandle {
	if g := pe.oldestPendingForOrNil(src, ctx); g != nil {
		return g
	}
	panic(fmt.Sprintf("comm: PE %d: no pending receive from %d ctx %d", pe.rank, src, ctx))
}

func (pe *PE) oldestPendingForOrNil(src int, ctx uint32) *RecvHandle {
	for g := pe.outHead; g != nil; g = g.next {
		if g.src == src && g.ctx == ctx && g.state == hPending {
			return g
		}
	}
	return nil
}

// fillUntil blocks taking messages from h's stream, binding them to the
// pending handles for that stream in posting order, until h is bound.
func (pe *PE) fillUntil(h *RecvHandle) {
	for h.state != hBound {
		g := pe.oldestPendingFor(h.src, h.ctx)
		msg, ok := pe.takeTry(h.src, h.ctx)
		if !ok {
			msg = pe.takeBlocking(h.src, h.ctx)
		}
		pe.bindMsg(g, msg)
	}
}

// bindMsg attaches a delivered message to its handle, enforcing the SPMD
// tag discipline exactly like Recv.
func (pe *PE) bindMsg(h *RecvHandle, msg message) {
	if msg.tag != h.tag {
		panic(fmt.Sprintf("comm: PE %d: tag mismatch receiving from %d: got %d want %d (desynchronized SPMD program)",
			pe.rank, h.src, msg.tag, h.tag))
	}
	h.msg = msg
	h.state = hBound
}

// fromMsg converts a mailbox message to the metered form.
func fromMsg(mm mailbox.Msg) message {
	return message{tag: Tag(mm.Tag), ctx: mm.Ctx, words: mm.Words, depart: mm.Depart, data: mm.Data}
}

// recvChan returns the channel-matrix channel messages from src arrive
// on: the matrix column for PEs, the external-injection channel for
// ExternalSrc.
func (pe *PE) recvChan(src int) chan message {
	if src == pe.p {
		return pe.m.ext[pe.rank]
	}
	return pe.m.chans[src][pe.rank]
}

// stashMsg parks a channel-matrix message taken off src's channel while
// looking for a different context; takeTry for its own (src, ctx)
// stream will find it. Stash order is arrival order, so per-stream FIFO
// survives the detour.
func (pe *PE) stashMsg(src int, msg message) {
	key := mailbox.Key(src, msg.ctx)
	if pe.stash == nil {
		pe.stash = make(map[uint64]*msgFifo)
	}
	f := pe.stash[key]
	if f == nil {
		f = &msgFifo{}
		pe.stash[key] = f
	}
	f.q = append(f.q, msg)
}

// stashTake removes the oldest stashed message for (src, ctx), if any.
func (pe *PE) stashTake(src int, ctx uint32) (message, bool) {
	f := pe.stash[mailbox.Key(src, ctx)]
	if f == nil || f.head >= len(f.q) {
		return message{}, false
	}
	msg := f.q[f.head]
	f.q[f.head] = message{}
	f.head++
	if f.head == len(f.q) {
		f.q = f.q[:0]
		f.head = 0
	}
	return msg, true
}

// takeTry removes the next queued message of the (src, ctx) stream
// without blocking. On the channel matrix, messages of other contexts
// encountered on the way are stashed per stream (each moved once), the
// same amortized discipline the mailbox Box applies internally.
func (pe *PE) takeTry(src int, ctx uint32) (message, bool) {
	if pe.box != nil {
		mm, ok := pe.box.TryTakeKey(mailbox.Key(src, ctx))
		if !ok {
			return message{}, false
		}
		return fromMsg(mm), true
	}
	if pe.asyncBuf {
		pe.drainPendingTry()
	}
	if msg, ok := pe.stashTake(src, ctx); ok {
		return msg, true
	}
	ch := pe.recvChan(src)
	for {
		select {
		case msg := <-ch:
			if msg.ctx == ctx {
				return msg, true
			}
			pe.stashMsg(src, msg)
		default:
			return message{}, false
		}
	}
}

// takeBlocking blocks for the next message of the (src, ctx) stream,
// accumulating wait time; on machine abort it unwinds via panic. On the
// mailbox backend it first hands the shard driver role off (WillPark)
// so queued PE bodies keep starting while this one parks.
func (pe *PE) takeBlocking(src int, ctx uint32) message {
	if pe.box != nil {
		pe.sched.WillPark(pe.sidx)
		t0 := time.Now()
		mm, ok := pe.box.TakeKey(mailbox.Key(src, ctx))
		pe.waitNs += time.Since(t0).Nanoseconds()
		if !ok {
			panic(abortedError{})
		}
		return fromMsg(mm)
	}
	t0 := time.Now()
	ch := pe.recvChan(src)
	// A parked receiver keeps offering its pending ISend head — the
	// progress guarantee that makes buffered posting deadlock-free: every
	// blocked PE is still a willing sender, so channel capacity somewhere
	// always frees.
	for pe.pendHead < len(pe.pendQ) {
		ps := &pe.pendQ[pe.pendHead]
		select {
		case msg := <-ch:
			if msg.ctx != ctx {
				pe.stashMsg(src, msg)
				continue
			}
			pe.waitNs += time.Since(t0).Nanoseconds()
			return msg
		case pe.m.chans[pe.rank][ps.dst] <- ps.msg:
			pe.popPending()
		case <-pe.m.abort:
			panic(abortedError{})
		}
	}
	for {
		select {
		case msg := <-ch:
			if msg.ctx != ctx {
				pe.stashMsg(src, msg)
				continue
			}
			pe.waitNs += time.Since(t0).Nanoseconds()
			return msg
		case <-pe.m.abort:
			panic(abortedError{})
		}
	}
}

// getHandle pops a pooled handle (per-PE freelist, so steady-state
// IRecv — and therefore Recv — allocates nothing).
func (pe *PE) getHandle() *RecvHandle {
	h := pe.freeH
	if h == nil {
		return &RecvHandle{pe: pe}
	}
	pe.freeH = h.next
	h.next = nil
	return h
}

// putHandle recycles a consumed handle, dropping the payload reference.
func (pe *PE) putHandle(h *RecvHandle) {
	h.state = hFree
	h.msg = message{}
	h.prev = nil
	h.next = pe.freeH
	pe.freeH = h
}

// outAppend adds h at the tail of the outstanding list.
func (pe *PE) outAppend(h *RecvHandle) {
	h.prev = pe.outTail
	h.next = nil
	if pe.outTail != nil {
		pe.outTail.next = h
	} else {
		pe.outHead = h
	}
	pe.outTail = h
}

// outUnlink removes h from the outstanding list.
func (pe *PE) outUnlink(h *RecvHandle) {
	if h.prev != nil {
		h.prev.next = h.next
	} else {
		pe.outHead = h.next
	}
	if h.next != nil {
		h.next.prev = h.prev
	} else {
		pe.outTail = h.prev
	}
	h.prev, h.next = nil, nil
}

// resetAsync drops any outstanding handles, the current stepper, the
// channel-matrix stash, and the context state — abort-path cleanup so a
// machine is reusable after a failed run.
func (pe *PE) resetAsync() {
	pe.step = nil
	pe.ctx = 0
	for _, f := range pe.stash {
		clear(f.q)
		f.q = f.q[:0]
		f.head = 0
	}
	for h := pe.outHead; h != nil; {
		next := h.next
		pe.putHandle(h)
		h = next
	}
	pe.outHead, pe.outTail = nil, nil
	// Abandon buffered sends (the run is unwinding; peers were released by
	// the abort) and mark stale SendHandles complete.
	clear(pe.pendQ)
	pe.pendQ = pe.pendQ[:0]
	pe.pendHead = 0
	pe.pendDone = pe.pendTotal
}

// Stepper is a resumable PE body: Step runs as far as it can and returns
// nil when the body is done, or the pending RecvHandle it cannot proceed
// without. The scheduler re-invokes Step once that handle's message has
// arrived (the handle is then bound, so the stepper's Wait on it will
// not block). Step must tolerate re-invocation at the same point and
// must not block (use Step-suspension, not blocking Wait/Recv) for the
// O(w) mid-run residency guarantee to hold.
type Stepper interface {
	Step(pe *PE) *RecvHandle
}

// MultiWaiter is an optional Stepper extension for bodies multiplexing
// several independent protocols — the serving mux, whose query slots
// suspend on handles in different communication contexts. A plain
// Stepper suspends on exactly the one handle Step returned; a
// MultiWaiter body instead advertises every handle it could resume on,
// and the scheduler arms its mailbox on all of them (ArmKeys) — resp.
// blocks on any of them under a blocking drive — so whichever query's
// message arrives first resumes the body. Without this, two PEs can
// deadlock each blocked on the other query's traffic even though both
// queries are individually deadlock-free.
type MultiWaiter interface {
	Stepper
	// PendingHandles appends the pending (unbound) handles the body is
	// currently suspended on to buf and returns it. Called only when
	// Step has just returned a non-nil handle; that handle must be
	// among them.
	PendingHandles(buf []*RecvHandle) []*RecvHandle
}

// StepFunc adapts a closure (typically over its own mutable state) to
// the Stepper interface.
type StepFunc func(pe *PE) *RecvHandle

// Step implements Stepper.
func (f StepFunc) Step(pe *PE) *RecvHandle { return f(pe) }

// Seq composes steppers into one body that runs them to completion in
// order — the building block for multi-collective continuation bodies.
// The composition state is allocated per call; hot callers use SeqP.
func Seq(steps ...Stepper) Stepper {
	// The variadic slice is call-owned; retaining it directly is safe
	// (only SeqP must copy, into its pooled backing).
	return &seqStep{steps: steps}
}

// SeqP is Seq with the composition state drawn from the PE's stepper
// pool (see steppool.go) and released when the sequence completes, so a
// body built fresh every op allocates nothing in steady state. The
// variadic argument slice is copied, not retained.
func SeqP(pe *PE, steps ...Stepper) Stepper {
	s := GetPooled[seqStep](pe)
	s.steps = append(s.steps[:0], steps...)
	s.i = 0
	s.pooled = true
	return s
}

type seqStep struct {
	steps  []Stepper
	i      int
	pooled bool
}

func (s *seqStep) Step(pe *PE) *RecvHandle {
	for s.i < len(s.steps) {
		if h := s.steps[s.i].Step(pe); h != nil {
			return h
		}
		// Completed steppers release their own state; drop the reference
		// so a pooled sequence does not retain it.
		s.steps[s.i] = nil
		s.i++
	}
	if s.pooled {
		s.steps = s.steps[:0]
		s.i = 0
		s.pooled = false
		PutPooled(pe, s)
	}
	return nil
}

// RunSteps drives a stepper to completion with blocking waits — the
// bridge that lets one stepper implementation serve both worlds: inside
// a blocking body (or on the channel matrix) RunSteps parks like any
// blocking protocol; under RunAsync on the mailbox backend the scheduler
// drives the same Step calls without ever blocking a goroutine. A
// MultiWaiter body blocks on any of its pending handles instead of the
// one Step returned.
func RunSteps(pe *PE, st Stepper) {
	mw, _ := st.(MultiWaiter)
	for {
		h := st.Step(pe)
		if h == nil {
			return
		}
		if mw != nil {
			pe.hBuf = mw.PendingHandles(pe.hBuf[:0])
			if len(pe.hBuf) > 1 {
				pe.waitAnyBound(pe.hBuf)
				continue
			}
		}
		h.ensureBound()
	}
}

// waitAnyBound blocks until at least one of the pending handles hs is
// bound, without folding any meter. The mailbox backend waits on the
// handles' (src, ctx) keys directly; the channel matrix multiplexes the
// distinct source channels through reflect.Select, stashing messages of
// uninvolved contexts exactly like takeBlocking. hs must belong to the
// running PE body and be pending.
func (pe *PE) waitAnyBound(hs []*RecvHandle) {
	// Messages may already be queued (or have raced in since Step
	// returned): a non-blocking sweep binds them without parking.
	for _, h := range hs {
		if h.Test() {
			return
		}
	}
	if pe.box != nil {
		keys := pe.keyBuf[:0]
		for _, h := range hs {
			keys = append(keys, mailbox.Key(h.src, h.ctx))
		}
		pe.keyBuf = keys
		pe.sched.WillPark(pe.sidx)
		t0 := time.Now()
		mm, ok := pe.box.WaitAnyKeys(keys)
		pe.waitNs += time.Since(t0).Nanoseconds()
		if !ok {
			panic(abortedError{})
		}
		pe.bindMsg(pe.oldestPendingFor(mm.Src, mm.Ctx), fromMsg(mm))
		return
	}
	// Channel matrix: select over the distinct source channels plus the
	// abort. Allocation per park is acceptable — the matrix is the
	// small-p differential reference, never the serving engine.
	t0 := time.Now()
	srcs := make([]int, 0, len(hs))
	cases := make([]reflect.SelectCase, 1, len(hs)+1)
	cases[0] = reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(pe.m.abort)}
	for _, h := range hs {
		seen := false
		for _, s := range srcs {
			if s == h.src {
				seen = true
				break
			}
		}
		if !seen {
			srcs = append(srcs, h.src)
			cases = append(cases, reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(pe.recvChan(h.src))})
		}
	}
	for {
		chosen, v, _ := reflect.Select(cases)
		if chosen == 0 {
			panic(abortedError{})
		}
		src := srcs[chosen-1]
		msg := v.Interface().(message)
		if g := pe.oldestPendingForOrNil(src, msg.ctx); g != nil {
			pe.bindMsg(g, msg)
			for _, h := range hs {
				if h.state == hBound {
					pe.waitNs += time.Since(t0).Nanoseconds()
					return
				}
			}
			continue
		}
		pe.stashMsg(src, msg)
	}
}

// RunAsync executes a continuation-scheduled SPMD program: start is
// called once per PE and returns the PE's body as a Stepper (nil for an
// empty body). On the mailbox backend the sharded scheduler drives the
// steppers directly — a suspension returns the worker to the scheduler,
// so the machine holds exactly w goroutines even while thousands of PE
// bodies are waiting mid-collective. On the channel matrix the steppers
// are driven with blocking waits on one goroutine per PE (the naive
// differential reference). Results and statistics are bit-identical to
// the equivalent blocking Run on either backend. Error semantics and
// machine reuse match Run.
func (m *Machine) RunAsync(start func(pe *PE) Stepper) error {
	if m.sched == nil {
		return m.Run(func(pe *PE) {
			if st := start(pe); st != nil {
				RunSteps(pe, st)
			}
		})
	}
	m.asyncStart = start
	m.sched.Run(m.execAsync)
	m.asyncStart = nil
	return m.finishRun()
}

// MustRunAsync is RunAsync but panics on error.
func (m *Machine) MustRunAsync(start func(pe *PE) Stepper) {
	if err := m.RunAsync(start); err != nil {
		panic(err)
	}
}

// execAsyncRank drives one PE's stepper as far as it can go. Returning
// false suspends the rank: its mailbox is armed, and the arming message's
// arrival (or an abort) re-enqueues the rank via the scheduler's ready
// queue. Created once per machine (execAsync field) so RunAsync dispatch
// does not allocate per rank.
func (m *Machine) execAsyncRank(rank int) (done bool) {
	pe := m.pes[rank]
	defer func() {
		if r := recover(); r != nil {
			pe.resetAsync()
			done = true
			m.foldStats(pe)
			if _, ok := r.(abortedError); !ok {
				m.abortErr(fmt.Errorf("comm: PE %d panicked: %v\n%s", pe.rank, r, debug.Stack()))
			}
		}
	}()
	if pe.step == nil {
		pe.step = m.asyncStart(pe)
		if pe.step == nil {
			m.foldStats(pe)
			return true
		}
	}
	for {
		h := pe.step.Step(pe)
		if h == nil {
			pe.step = nil
			m.foldStats(pe)
			return true
		}
		if h.state != hBound {
			var armed bool
			if mw, ok := pe.step.(MultiWaiter); ok {
				// Multi-query bodies resume when ANY pending receive can
				// bind, not just the one Step happened to return — arming
				// on a single key would strand progress on the others.
				pe.hBuf = mw.PendingHandles(pe.hBuf[:0])
				keys := pe.keyBuf[:0]
				for _, g := range pe.hBuf {
					keys = append(keys, mailbox.Key(g.src, g.ctx))
				}
				pe.keyBuf = keys
				armed = pe.box.ArmKeys(keys)
			} else {
				armed = pe.box.ArmKey(mailbox.Key(h.src, h.ctx))
			}
			if armed {
				// Suspended: the body exists only as data (pe.step plus the
				// armed box) until the message arrives. No goroutine parks.
				return false
			}
			if pe.box.Interrupted() {
				// Machine abort: the awaited message will never come and a
				// Test-polling stepper would spin. Unwind like a blocking
				// receive would (recovered above).
				panic(abortedError{})
			}
		}
		// The message arrived while arming (or was already bound): keep
		// stepping on this worker.
	}
}
