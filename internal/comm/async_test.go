package comm

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// ringBodyRecv and ringBodyIRecv are the same shifted-ring exchange, one
// through blocking Recv, one through the handle API with Test polling —
// the two must be bit-identical in results and metered statistics.
func ringBodyRecv(pe *PE, out []int) {
	const tag Tag = 41
	p := pe.P()
	pe.Send((pe.Rank()+1)%p, tag, pe.Rank()*3, 2)
	rx, _ := pe.Recv((pe.Rank()-1+p)%p, tag)
	out[pe.Rank()] = rx.(int)
}

func ringBodyIRecv(pe *PE, out []int) {
	const tag Tag = 41
	p := pe.P()
	h := pe.IRecv((pe.Rank()-1+p)%p, tag)
	pe.Send((pe.Rank()+1)%p, tag, pe.Rank()*3, 2)
	h.Test() // polling must be harmless and meter-neutral
	rx, _ := h.Wait()
	out[pe.Rank()] = rx.(int)
}

// TestIRecvWaitMatchesRecv pins the sugar equation Recv = IRecv + Wait on
// both backends: identical results and identical metered statistics
// (words, startups, modeled clock) whether the receive is posted early,
// polled, or taken blocking.
func TestIRecvWaitMatchesRecv(t *testing.T) {
	for _, cfg := range []Config{MailboxConfig(8), MatrixConfig(8)} {
		t.Run(cfg.Backend.String(), func(t *testing.T) {
			run := func(body func(pe *PE, out []int)) ([]int, Stats) {
				m := NewMachine(cfg)
				defer m.Close()
				out := make([]int, cfg.P)
				m.MustRun(func(pe *PE) { body(pe, out) })
				return out, m.Stats()
			}
			recvOut, recvStats := run(ringBodyRecv)
			irecvOut, irecvStats := run(ringBodyIRecv)
			for i := range recvOut {
				if recvOut[i] != irecvOut[i] {
					t.Fatalf("results diverge at rank %d: Recv %d, IRecv+Wait %d", i, recvOut[i], irecvOut[i])
				}
			}
			if recvStats != irecvStats {
				t.Errorf("stats diverge:\n  Recv:       %+v\n  IRecv+Wait: %+v", recvStats, irecvStats)
			}
		})
	}
}

// TestIRecvFIFOPerSource pins the posting-order completion rule: two
// receives posted against one source complete in post order even when
// waited out of arrival interleaving, on both backends.
func TestIRecvFIFOPerSource(t *testing.T) {
	for _, cfg := range []Config{MailboxConfig(2), MatrixConfig(2)} {
		t.Run(cfg.Backend.String(), func(t *testing.T) {
			m := NewMachine(cfg)
			defer m.Close()
			m.MustRun(func(pe *PE) {
				const tag Tag = 17
				if pe.Rank() == 0 {
					pe.Send(1, tag, "first", 1)
					pe.Send(1, tag, "second", 1)
					return
				}
				h1 := pe.IRecv(0, tag)
				h2 := pe.IRecv(0, tag)
				// Waiting the second handle first must still deliver the
				// second message to it (the first binds to h1 on the way).
				if rx, _ := h2.Wait(); rx.(string) != "second" {
					t.Errorf("h2 got %v", rx)
				}
				if rx, _ := h1.Wait(); rx.(string) != "first" {
					t.Errorf("h1 got %v", rx)
				}
			})
		})
	}
}

// TestISendAndWaitAll exercises the symmetric half of the API: ISend
// handles complete immediately, and WaitAll folds a batch of receives in
// slice order.
func TestISendAndWaitAll(t *testing.T) {
	m := NewMachine(MailboxConfig(4))
	defer m.Close()
	m.MustRun(func(pe *PE) {
		const tag Tag = 23
		p := pe.P()
		var hs []*RecvHandle
		for i := 1; i < p; i++ {
			hs = append(hs, pe.IRecv((pe.Rank()-i+p)%p, tag))
		}
		for i := 1; i < p; i++ {
			sh := pe.ISend((pe.Rank()+i)%p, tag, nil, 1)
			if !sh.Test() {
				t.Error("ISend handle not complete")
			}
			sh.Wait()
		}
		WaitAll(hs...)
	})
	s := m.Stats()
	if s.MaxSends != 3 || s.MaxRecvWords != 3 {
		t.Errorf("unexpected stats after WaitAll exchange: %+v", s)
	}
}

// TestHandleMisusePanics pins the consumed-handle contract.
func TestHandleMisusePanics(t *testing.T) {
	m := NewMachine(MailboxConfig(2))
	defer m.Close()
	err := m.Run(func(pe *PE) {
		const tag Tag = 5
		if pe.Rank() == 0 {
			pe.Send(1, tag, nil, 1)
			return
		}
		h := pe.IRecv(0, tag)
		h.Wait()
		h.Wait() // second Wait must panic, not corrupt the freelist
	})
	if err == nil || !strings.Contains(err.Error(), "completed or unposted") {
		t.Fatalf("double Wait: got %v", err)
	}
}

// cascadeStart builds the reverse-cascade continuation body: every rank
// but the last waits for its successor's token before passing one down.
// It suspends p−1 bodies at peak — the maximally parked workload that
// blocking bodies pay p−1 transient goroutines for.
func cascadeStart(tag Tag, out []int64) func(pe *PE) Stepper {
	return func(pe *PE) Stepper {
		var h *RecvHandle
		phase := 0
		var got int64
		return StepFunc(func(pe *PE) *RecvHandle {
			p := pe.P()
			for {
				switch phase {
				case 0:
					if pe.Rank() == p-1 {
						phase = 2
						continue
					}
					h = pe.IRecv(pe.Rank()+1, tag)
					phase = 1
					if !h.Test() {
						return h
					}
				case 1:
					v, _ := h.Wait()
					got = v.(int64)
					phase = 2
				case 2:
					if pe.Rank() > 0 {
						pe.Send(pe.Rank()-1, tag, got+1, 1)
					}
					phase = 3
				default:
					if out != nil {
						out[pe.Rank()] = got
					}
					return nil
				}
			}
		})
	}
}

// TestRunAsyncCascade runs the suspension-heavy cascade on both backends
// (mailbox at several scheduler widths) and checks results and stats
// against each other.
func TestRunAsyncCascade(t *testing.T) {
	const p = 64
	var wantStats *Stats
	check := func(t *testing.T, cfg Config) {
		m := NewMachine(cfg)
		defer m.Close()
		out := make([]int64, p)
		for round := 0; round < 3; round++ {
			for i := range out {
				out[i] = -1
			}
			m.ResetStats()
			if err := m.RunAsync(cascadeStart(Tag(100), out)); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			for r := 0; r < p-1; r++ {
				if out[r] != int64(p-1-r) {
					t.Fatalf("round %d: rank %d got %d, want %d", round, r, out[r], p-1-r)
				}
			}
			s := m.Stats()
			if wantStats == nil {
				wantStats = &s
			} else if s != *wantStats {
				t.Errorf("stats diverge: %+v vs %+v", s, *wantStats)
			}
		}
	}
	t.Run("chanmatrix", func(t *testing.T) { check(t, MatrixConfig(p)) })
	for _, w := range []int{0, 1, 4} {
		cfg := MailboxConfig(p)
		cfg.Workers = w
		t.Run(fmt.Sprintf("mailbox/w=%d", w), func(t *testing.T) { check(t, cfg) })
	}
}

// TestRunAsyncMidRunResidency is the mid-collective extension of the
// PR 3 residency guard: while a p = 16384 cascade is in flight — with
// thousands of PE bodies simultaneously waiting — the process goroutine
// count must stay at w + O(1). This is the property the blocking runtime
// cannot provide (its parked bodies each hold a transient goroutine) and
// the reason the async API exists.
func TestRunAsyncMidRunResidency(t *testing.T) {
	const p = 16384
	before := runtime.NumGoroutine()
	m := NewMachine(MailboxConfig(p))
	defer m.Close()
	w := m.Workers()
	if w >= p/4 {
		t.Skipf("GOMAXPROCS too large for a meaningful bound (w=%d, p=%d)", w, p)
	}
	done := make(chan struct{})
	var maxMid atomic.Int64
	var samples atomic.Int64
	go func() {
		defer close(done)
		// Two chained cascades lengthen the in-flight window.
		m.MustRunAsync(func(pe *PE) Stepper {
			return Seq(cascadeStart(Tag(7), nil)(pe), cascadeStart(Tag(8), nil)(pe))
		})
	}()
	for {
		select {
		case <-done:
			if samples.Load() == 0 {
				t.Log("run finished before the first sample; residency not observed mid-run")
			}
			// +3: the run goroutine, this test goroutine's own scheduling
			// slack, and the coordinator blocked in wg.Wait.
			if got := maxMid.Load(); got > int64(before+w+3) {
				t.Errorf("mid-run goroutines reached %d (baseline %d, w=%d); continuation scheduling broken", got, before, w)
			}
			return
		default:
			if g := int64(runtime.NumGoroutine()); g > maxMid.Load() {
				maxMid.Store(g)
			}
			samples.Add(1)
			time.Sleep(200 * time.Microsecond)
		}
	}
}

// TestRunAsyncAbort pins error propagation and machine reuse when a
// continuation body panics while thousands of its peers are suspended:
// the box interrupts must resume every suspended rank so the run can
// unwind, and the next run must start clean.
func TestRunAsyncAbort(t *testing.T) {
	const p = 256
	m := NewMachine(MailboxConfig(p))
	defer m.Close()
	err := m.RunAsync(func(pe *PE) Stepper {
		var h *RecvHandle
		return StepFunc(func(pe *PE) *RecvHandle {
			if pe.Rank() == p-1 {
				panic("boom")
			}
			// Everyone else suspends on a message that never comes.
			if h == nil {
				h = pe.IRecv(pe.Rank()+1, Tag(9))
			}
			if !h.Test() {
				return h
			}
			h.Wait()
			return nil
		})
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected panic propagation, got %v", err)
	}
	// Reusable afterwards, for both async and blocking runs.
	out := make([]int64, p)
	m.MustRunAsync(cascadeStart(Tag(10), out))
	if out[0] != p-1 {
		t.Errorf("post-abort cascade got %d", out[0])
	}
	m.MustRun(func(pe *PE) {
		const tag Tag = 11
		if pe.Rank() == 0 {
			pe.Send(1, tag, 42, 1)
		} else if pe.Rank() == 1 {
			if rx, _ := pe.Recv(0, tag); rx.(int) != 42 {
				t.Errorf("post-abort recv got %v", rx)
			}
		}
	})
}

// TestRunAsyncContinuationStress is the -race stress over continuation
// suspend/resume at w < p: pseudo-random partner shifts make resume
// events land on arbitrary workers while drivers are mid-batch, repeated
// across rounds so ready-queue and run-boundary interleavings vary.
func TestRunAsyncContinuationStress(t *testing.T) {
	const p, rounds = 96, 20
	for _, w := range []int{1, 3} {
		cfg := MailboxConfig(p)
		cfg.Workers = w
		m := NewMachine(cfg)
		for round := 0; round < rounds; round++ {
			shift := 1 + round%(p-1)
			tag := Tag(1000 + round)
			var bad atomic.Int32
			if err := m.RunAsync(func(pe *PE) Stepper {
				var h *RecvHandle
				sent := false
				return StepFunc(func(pe *PE) *RecvHandle {
					if !sent {
						sent = true
						pe.Send((pe.Rank()+shift)%p, tag, pe.Rank(), 1)
						h = pe.IRecv((pe.Rank()-shift+p)%p, tag)
						if !h.Test() {
							return h
						}
					}
					rx, _ := h.Wait()
					if rx.(int) != (pe.Rank()-shift+p)%p {
						bad.Add(1)
					}
					return nil
				})
			}); err != nil {
				t.Fatalf("w=%d round %d: %v", w, round, err)
			}
			if bad.Load() != 0 {
				t.Fatalf("w=%d round %d: %d ranks received wrong payloads", w, round, bad.Load())
			}
		}
		m.Close()
	}
}

// TestRunAsyncInterleavedWithBlockingRuns pins cross-mode machine reuse:
// async and blocking runs alternate on one machine and the folded stats
// keep accumulating coherently.
func TestRunAsyncInterleavedWithBlockingRuns(t *testing.T) {
	const p = 16
	ma := NewMachine(MailboxConfig(p))
	defer ma.Close()
	mb := NewMachine(MatrixConfig(p))
	for i := 0; i < 4; i++ {
		out := make([]int64, p)
		ma.MustRunAsync(cascadeStart(Tag(50+i), out))
		mb.MustRunAsync(cascadeStart(Tag(50+i), out))
		ma.MustRun(func(pe *PE) { ringBodyRecv(pe, make([]int, p)) })
		mb.MustRun(func(pe *PE) { ringBodyRecv(pe, make([]int, p)) })
		if sa, sb := ma.Stats(), mb.Stats(); sa != sb {
			t.Fatalf("cycle %d: cumulative stats diverge:\n  mailbox: %+v\n  matrix:  %+v", i, sa, sb)
		}
	}
}
