package comm

import (
	"fmt"
	"testing"
)

// TestAsyncSendBufferPostedVsDelivered drives two PEs from the test
// goroutine (no Run, nothing blocks) to pin the distinction the buffer
// introduces: a posted send is metered immediately, but delivery waits
// for channel capacity, and the handle observes the difference.
func TestAsyncSendBufferPostedVsDelivered(t *testing.T) {
	cfg := MatrixConfig(2)
	cfg.ChanCap = 1
	cfg.AsyncSendBuffer = true
	m := NewMachine(cfg)
	pe0, pe1 := m.pes[0], m.pes[1]
	tag := Tag(7)

	h1 := pe0.ISend(1, tag, 100, 1)
	h2 := pe0.ISend(1, tag, 200, 1)
	h3 := pe0.ISend(1, tag, 300, 1)
	if !h1.Test() {
		t.Fatal("first ISend should deliver straight into the free channel slot")
	}
	if h2.Test() || h3.Test() {
		t.Fatal("ISends beyond ChanCap should be posted but not delivered")
	}
	// The meter advanced at post time for all three.
	if pe0.Sends() != 3 || pe0.SentWords() != 3 {
		t.Fatalf("posted sends not metered: sends=%d words=%d", pe0.Sends(), pe0.SentWords())
	}
	wantClock := 3 * (cfg.Alpha + cfg.Beta)
	if pe0.Clock() != wantClock {
		t.Fatalf("clock = %v, want %v (advance at post time)", pe0.Clock(), wantClock)
	}

	// Receiving frees capacity; Test's opportunistic drain delivers the
	// next pending send, strictly in posted order.
	if v, _ := pe1.Recv(0, tag); v.(int) != 100 {
		t.Fatalf("first delivery = %v, want 100", v)
	}
	if !h2.Test() {
		t.Fatal("capacity freed: second send should now deliver via Test")
	}
	if h3.Test() {
		t.Fatal("third send should still be pending (channel refilled by the second)")
	}
	if v, _ := pe1.Recv(0, tag); v.(int) != 200 {
		t.Fatal("second delivery out of posted order")
	}
	h3.Wait() // capacity is free again, so the flush completes immediately
	if !h3.Test() {
		t.Fatal("waited handle should test complete")
	}
	if v, _ := pe1.Recv(0, tag); v.(int) != 300 {
		t.Fatal("third delivery out of posted order")
	}
}

// asyncHeadToHead is the exchange pattern that deadlocks under eager
// (blocking) ISend when the per-pair channel cannot hold all messages:
// both PEs post n sends to each other before receiving anything.
func asyncHeadToHead(n int) func(pe *PE) {
	return func(pe *PE) {
		peer := 1 - pe.Rank()
		tag := pe.NextCollTag()
		hs := make([]SendHandle, n)
		for i := 0; i < n; i++ {
			hs[i] = pe.ISend(peer, tag, pe.Rank()*1000+i, 1)
		}
		for i := 0; i < n; i++ {
			v, _ := pe.Recv(peer, tag)
			if got, want := v.(int), peer*1000+i; got != want {
				panic(fmt.Sprintf("PE %d: delivery %d = %d, want %d (posted order violated)", pe.Rank(), i, got, want))
			}
		}
		for _, h := range hs {
			h.Wait()
		}
	}
}

// TestAsyncSendBufferHeadToHead runs the head-to-head exchange with the
// buffer on and a small channel (it would deadlock eagerly), and checks
// results and the full meter are bit-identical to an eager reference run
// whose channels are deep enough to never block.
func TestAsyncSendBufferHeadToHead(t *testing.T) {
	const n = 8
	buffered := MatrixConfig(2)
	buffered.ChanCap = 1
	buffered.AsyncSendBuffer = true
	mb := NewMachine(buffered)
	if err := mb.Run(asyncHeadToHead(n)); err != nil {
		t.Fatalf("buffered run failed: %v", err)
	}

	eager := MatrixConfig(2)
	eager.ChanCap = 2 * n // deep enough that eager ISend never blocks
	me := NewMachine(eager)
	if err := me.Run(asyncHeadToHead(n)); err != nil {
		t.Fatalf("eager reference run failed: %v", err)
	}

	if got, want := mb.Stats(), me.Stats(); got != want {
		t.Errorf("meters diverge:\n  buffered %+v\n  eager    %+v", got, want)
	}
}

// TestAsyncSendBufferFlushAtBodyEnd pins that buffered sends a body never
// waits on are still delivered before the PE retires: PE 0 posts and
// returns; PE 1 receives everything.
func TestAsyncSendBufferFlushAtBodyEnd(t *testing.T) {
	const n = 6
	cfg := MatrixConfig(2)
	cfg.ChanCap = 1
	cfg.AsyncSendBuffer = true
	m := NewMachine(cfg)
	err := m.Run(func(pe *PE) {
		tag := pe.NextCollTag()
		if pe.Rank() == 0 {
			for i := 0; i < n; i++ {
				pe.ISend(1, tag, i, 1) // handles dropped on purpose
			}
			return
		}
		for i := 0; i < n; i++ {
			if v, _ := pe.Recv(0, tag); v.(int) != i {
				panic("posted order violated")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAsyncSendBufferSendFlushesFIFO pins that a blocking Send posted
// after buffered ISends cannot overtake them (per-sender FIFO).
func TestAsyncSendBufferSendFlushesFIFO(t *testing.T) {
	cfg := MatrixConfig(2)
	cfg.ChanCap = 1
	cfg.AsyncSendBuffer = true
	m := NewMachine(cfg)
	err := m.Run(func(pe *PE) {
		tag := pe.NextCollTag()
		if pe.Rank() == 0 {
			pe.ISend(1, tag, 1, 1)
			pe.ISend(1, tag, 2, 1) // pending: channel already holds the first
			pe.Send(1, tag, 3, 1)  // must flush the pending send first
			return
		}
		for want := 1; want <= 3; want++ {
			if v, _ := pe.Recv(0, tag); v.(int) != want {
				panic(fmt.Sprintf("got %v, want %d", v, want))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
