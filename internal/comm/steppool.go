package comm

import "reflect"

// Per-PE pooled stepper state.
//
// A continuation body exists as data between suspensions: its phase
// counters, posted handle, captured round state, and the Seq that chains
// its collectives. Allocating that state per operation costs ~1.2 KB per
// PE per collectives op — irrelevant at small p, but at p = 131072 it is
// ~150 MB of garbage per op, and the GC drag eats most of the park-churn
// win continuation scheduling buys (the PR 4 measurement). The freelists
// here make steady-state RunAsync dispatch allocation-free, like blocking
// Run: a stepper factory pops its state struct from the PE's typed
// freelist, fully reinitializes it, and the stepper pushes it back when
// its protocol completes.
//
// The freelists are PE-local (no synchronization — a PE's body runs on
// one goroutine at a time, like the Scratch store) and keyed by the
// state's concrete type, so every stepper form shares one list per PE
// regardless of call site. Objects in the list are inert: Get hands out
// spares in LIFO order and the factory must overwrite every field
// (`*s = stepT{...}` resets stale state wholesale). Steppers released on
// completion must never be stepped again — comm.Seq and Machine.RunAsync
// both guarantee a stepper that returned nil is not re-invoked.
//
// Abort unwinds (machine errors) drop in-flight state objects on the
// floor; they are collected by the GC rather than recycled, which keeps
// the abort path free of lifecycle bookkeeping.

// stepFree is one typed freelist.
type stepFree[T any] struct{ free []*T }

// GetPooled pops a recycled *T from this PE's typed freelist, or
// allocates a fresh one. The returned object holds stale state from its
// previous use: the caller must reinitialize every field before use.
func GetPooled[T any](pe *PE) *T {
	t := reflect.TypeFor[T]()
	if v, ok := pe.pools[t]; ok {
		f := v.(*stepFree[T])
		if n := len(f.free); n > 0 {
			s := f.free[n-1]
			f.free[n-1] = nil
			f.free = f.free[:n-1]
			return s
		}
		return new(T)
	}
	if pe.pools == nil {
		pe.pools = make(map[reflect.Type]any)
	}
	pe.pools[t] = &stepFree[T]{}
	return new(T)
}

// PutPooled recycles a state object obtained from GetPooled. The caller
// must not touch it afterwards; clearing reference-holding fields before
// the Put (so the pool does not retain payloads) is the caller's job —
// the idiomatic release is `*s = stepT{}; PutPooled(pe, s)`.
func PutPooled[T any](pe *PE, s *T) {
	t := reflect.TypeFor[T]()
	if v, ok := pe.pools[t]; ok {
		f := v.(*stepFree[T])
		f.free = append(f.free, s)
	}
	// No list yet: the object did not come from GetPooled; drop it.
}

// singletonOf distinguishes singleton entries from freelist entries in
// the per-PE type-keyed store.
type singletonOf[T any] struct{ v T }

// GetSingleton returns this PE's singleton of type T, zero-initialized
// on first use and persistent for the machine's lifetime. It exists for
// state that is per-PE and per-type but not per-operation — canonically
// the cached operator func values of generic callers: a func literal (or
// an instantiated generic function) evaluated inside a generic function
// carries the type dictionary and heap-allocates every time it escapes,
// so zero-alloc call paths build such values once and reuse them from
// here.
func GetSingleton[T any](pe *PE) *T {
	t := reflect.TypeFor[singletonOf[T]]()
	if v, ok := pe.pools[t]; ok {
		return &v.(*singletonOf[T]).v
	}
	if pe.pools == nil {
		pe.pools = make(map[reflect.Type]any)
	}
	s := new(singletonOf[T])
	pe.pools[t] = s
	return &s.v
}
