// Package comm provides the distributed-machine substrate the paper's
// algorithms run on: p processing elements (PEs) executing the same SPMD
// program as goroutines, exchanging point-to-point messages through a
// pluggable message runtime (see Backend).
//
// The package meters every message in machine words and startups, and keeps
// a per-PE "LogP-lite" virtual clock so the paper's cost model
// O(x + βy + αz) is directly observable: x (local work) is wall time,
// y (bottleneck communication volume) and z (startups) are counters, and
// the virtual clock approximates the α/β critical path.
//
// Cost model (Section 2 of the paper): single-ported full-duplex
// communication; sending a message of m machine words takes time α + mβ.
// Send advances the sender's virtual clock by α+βm and stamps the message
// with the resulting time; Recv advances the receiver's clock to the
// maximum of its own clock and the stamp. Local computation is not added
// to the virtual clock.
//
// Communication is available in blocking form (Send/Recv/SendRecv) and
// non-blocking form (ISend/IRecv handles with Test/Wait/WaitAll — the
// MPI_Irecv/MPI_Wait shape the paper's substrate assumes); Recv is sugar
// for IRecv+Wait, and the meter folds at Wait in program order, so both
// forms are bit-identical in results and statistics. PE bodies likewise
// run in two forms: blocking (Machine.Run) or continuation-scheduled
// (Machine.RunAsync over Stepper bodies), where a wait on an unbound
// handle suspends the body as data instead of parking a goroutine — see
// async.go.
//
// # Backends
//
// Two interchangeable message runtimes implement the same Send/Recv
// semantics (per-sender FIFO delivery, abort propagation, identical
// metering — pinned by the differential tests in internal/experiments):
//
//   - BackendMailbox (default): one MPSC mailbox per receiver
//     (internal/mailbox) — O(p) queue memory — plus the sharded worker
//     scheduler: w = min(GOMAXPROCS·8, p) shards multiplex the p PE
//     bodies, a blocked Recv hands its shard's driver role to an idle
//     spare, and the machine's resident goroutine count is O(w), not
//     O(p). Aggregate statistics fold incrementally, so Stats() is O(1)
//     instead of an O(p) scan. This is the runtime that scales to
//     p = 131072 (see the scaling suite in internal/experiments).
//   - BackendChannelMatrix: the original engine — one buffered channel
//     per ordered PE pair and p goroutines spawned per Run. Queue memory
//     is O(p²·ChanCap), which caps it near p ≈ 512; it is retained as
//     the differential reference the mailbox runtime is pinned against
//     (comm.MatrixConfig, exercised at p ∈ {4, 16, 64}).
package comm

import (
	"fmt"
	"reflect"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
	"unsafe"

	"commtopk/internal/mailbox"
)

// Backend selects the message runtime of a Machine.
type Backend int

const (
	// BackendChannelMatrix is the original engine: a buffered channel per
	// ordered PE pair, p goroutines spawned per Run, Stats by O(p) scan.
	// Retained as the differential reference; the Config zero value keeps
	// selecting it so explicitly constructed Configs are unambiguous.
	BackendChannelMatrix Backend = iota
	// BackendMailbox is the scalable engine (and the DefaultConfig
	// choice): per-receiver MPSC mailboxes, the sharded worker scheduler,
	// and O(1) aggregate Stats.
	BackendMailbox
	// BackendWire is the multi-process engine: this machine owns only the
	// contiguous local rank window Config.Remote [Lo, Hi) of the full
	// p-PE machine, runs it on the mailbox scheduler exactly like
	// BackendMailbox, and hands every message addressed outside the
	// window to Config.Remote.Forward — the seam internal/wire plugs its
	// socket transport into. Incoming cross-process messages are injected
	// with Machine.Deliver. Metering is unchanged: the sender stamps
	// depart before the frame leaves, the frame carries the stamp, and
	// the receiver folds the α/β receive rule against it, so results and
	// per-PE meters are bit-identical to an in-process machine.
	BackendWire
)

// String names the backend as used in benchmark reports and CLI flags.
func (b Backend) String() string {
	switch b {
	case BackendMailbox:
		return "mailbox"
	case BackendWire:
		return "wire"
	default:
		return "chanmatrix"
	}
}

// Tag identifies the protocol step a message belongs to. Collectives draw
// tags from a per-PE sequence that stays synchronized because every PE
// enters every collective (SPMD); point-to-point protocols use explicit
// tags. A tag mismatch on receive indicates a desynchronized program and
// panics immediately rather than silently mismatching payloads.
type Tag uint64

// Config describes the simulated machine.
type Config struct {
	// P is the number of processing elements.
	P int
	// Alpha is the modeled message startup cost (arbitrary time units).
	Alpha float64
	// Beta is the modeled per-word transfer cost (same units as Alpha).
	Beta float64
	// ChanCap is the per-ordered-pair channel buffer capacity
	// (BackendChannelMatrix only; mailbox intake is unbounded and
	// flow-controlled by the SPMD protocol structure).
	ChanCap int
	// Seed seeds the per-PE deterministic RNG streams (see NewPERandSeed).
	Seed int64
	// Backend selects the message runtime. The zero value is the original
	// channel matrix.
	Backend Backend
	// Workers is the mailbox scheduler width w: the number of shards the
	// p PE bodies are multiplexed over, and the machine's resident
	// goroutine budget. 0 selects min(GOMAXPROCS·8, p); any value is
	// clamped to [1, p]. Ignored by the channel matrix. Execution results
	// and metering are independent of w (pinned by the differential
	// tests); w only trades host parallelism against resident memory.
	Workers int
	// GlobalReadyQueue (mailbox only) selects the scheduler's single
	// global ready queue instead of the default per-shard ready queues —
	// the contention A/B reference for the serving benchmark: under
	// concurrent-query resume storms every notify callback of the
	// machine funnels through the ready-queue mutex, and the per-shard
	// split spreads that over w mutexes with work stealing. Results and
	// metering are identical either way (only host-side contention
	// changes); the serving suite measures both.
	GlobalReadyQueue bool
	// AsyncSendBuffer (channel matrix only) makes ISend truly
	// non-blocking: a send that finds its channel full is buffered in a
	// per-PE pending FIFO instead of blocking, and drains at the next
	// blocking point (a parked receive offers the pending head while it
	// waits, SendHandle.Wait and blocking Send flush, and the end of the
	// PE body flushes the rest). The meter is unchanged — clock, word and
	// startup counters advance at post time with the same depart stamp the
	// eager path would produce — so posted-order semantics become
	// observable (head-to-head exchanges beyond ChanCap complete instead
	// of deadlocking) while results and statistics stay bit-identical.
	// Mailbox sends never block, so the knob is meaningless there.
	AsyncSendBuffer bool
	// PopBatch is the mailbox scheduler's cursor-claim batch size: how
	// many ranks a shard driver claims per atomic (0 selects the default,
	// 8). A host-side scheduling constant only — results and metering are
	// independent of it (see mailbox.Sched.SetPopBatch); the serving
	// suite exposes it for the adaptive-popBatch measurement hook.
	PopBatch int
	// Remote windows a BackendWire machine to its process-local
	// contiguous rank range (required for BackendWire, ignored
	// otherwise). See BackendWire.
	Remote *Remote
}

// Remote describes the local rank window of one process of a
// BackendWire machine and the transport hook for everything outside it.
type Remote struct {
	// Lo, Hi bound the local window [Lo, Hi): this process constructs
	// boxes, PEs and scheduler state for exactly these ranks.
	Lo, Hi int
	// Forward ships a message addressed to a non-local rank (or an
	// external Post to one) across the transport. Called synchronously
	// from the sending PE's goroutine — it must not block indefinitely
	// (the wire transport enqueues to a per-connection writer). The
	// message arrives at the owning process via Machine.Deliver.
	Forward func(dst int, msg mailbox.Msg)
}

// DefaultConfig returns a machine configuration with p PEs on the mailbox
// backend and the default α/β ratio used throughout the benchmarks
// (α = 1000β, a typical cluster-interconnect ratio of startup latency to
// per-word bandwidth). Since PR 3 the default runtime is the mailbox
// engine; use MatrixConfig for the channel-matrix reference.
func DefaultConfig(p int) Config {
	return Config{P: p, Alpha: 1000, Beta: 1, ChanCap: 64, Seed: 1, Backend: BackendMailbox}
}

// MailboxConfig is DefaultConfig with the mailbox backend made explicit.
// It predates the default flip and is kept so call sites that must not
// silently follow future default changes can say what they mean.
func MailboxConfig(p int) Config {
	cfg := DefaultConfig(p)
	cfg.Backend = BackendMailbox
	return cfg
}

// MatrixConfig is DefaultConfig on the channel-matrix engine — the
// differential-reference configuration. Its O(p²·ChanCap) queue memory
// limits it to small p; everything at scale runs on DefaultConfig.
func MatrixConfig(p int) Config {
	cfg := DefaultConfig(p)
	cfg.Backend = BackendChannelMatrix
	return cfg
}

// SchedWorkers resolves the mailbox scheduler width w for cfg: the
// explicit cfg.Workers clamped to [1, p], or min(GOMAXPROCS·8, p) when
// unset. Returns 0 for the channel matrix (which binds one goroutine per
// PE for the duration of each Run).
func SchedWorkers(cfg Config) int {
	if cfg.Backend == BackendChannelMatrix {
		return 0
	}
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0) * 8
	}
	return max(1, min(w, localP(cfg)))
}

// localP is the number of PEs this process hosts: the Remote window for
// a wire machine, all of cfg.P otherwise.
func localP(cfg Config) int {
	if cfg.Backend == BackendWire && cfg.Remote != nil {
		return cfg.Remote.Hi - cfg.Remote.Lo
	}
	return cfg.P
}

// QueueBytes estimates the message-queue memory NewMachine allocates up
// front for cfg: the channel matrix pays p² buffered channels, the
// mailbox backend p empty intake boxes. The scaling harness uses the
// estimate as its memory-budget guard (refusing configurations that could
// not complete) and tests pin the O(p) vs O(p²) growth.
func QueueBytes(cfg Config) int64 {
	p := int64(cfg.P)
	switch cfg.Backend {
	case BackendMailbox, BackendWire:
		const boxBytes = int64(unsafe.Sizeof(mailbox.Box{})) + 16 // box + slice slot + pointer
		return int64(localP(cfg)) * boxBytes
	default:
		chanCap := int64(cfg.ChanCap)
		if chanCap <= 0 {
			chanCap = 64
		}
		// hchan header (~96 B) + ring buffer of message structs; the +1
		// row is the per-destination external-injection channels.
		const hchanBytes = 96
		msgBytes := int64(unsafe.Sizeof(message{}))
		return (p*p + p) * (hchanBytes + chanCap*msgBytes)
	}
}

// MachineBytes estimates the full resident cost of a machine for cfg:
// the message queues (QueueBytes) plus the per-PE handles and, on the
// mailbox backend, the scheduler state — shard bookkeeping and up to w
// idle goroutine stacks. The channel matrix is instead charged the p
// goroutine stacks each Run binds for its duration. This is the number
// the scaling harness budgets against (QueueBytes alone flatters a
// backend whose queues are small but whose runtime state is not), and a
// test pins it against the measured live heap. Transient run state —
// bodies parked mid-collective — is workload-dependent and not included.
func MachineBytes(cfg Config) int64 {
	p := int64(localP(cfg))
	peBytes := int64(unsafe.Sizeof(PE{})) + 8 // handle + slice slot
	b := QueueBytes(cfg) + p*peBytes
	if cfg.Backend != BackendChannelMatrix {
		return b + mailbox.StateBytes(localP(cfg), SchedWorkers(cfg))
	}
	const stackBytes = 8 << 10
	return b + p*stackBytes
}

type message struct {
	tag    Tag
	ctx    uint32 // communication context (0: default); matched with tag at receive
	words  int64
	depart float64 // sender's virtual clock after the send completed
	data   any
}

// pendingSend is one buffered ISend awaiting channel capacity.
type pendingSend struct {
	dst int
	msg message
}

// Machine is a simulated cluster of PEs. Create one with NewMachine, run
// SPMD programs with Run, and read aggregate statistics with Stats.
type Machine struct {
	cfg   Config
	chans [][]chan message // channel-matrix backend: chans[src][dst]
	boxes []*mailbox.Box   // mailbox backend: boxes[dst]
	// ext carries externally injected messages (Machine.Post — the
	// serving front end's doorbells) on the channel matrix, one channel
	// per destination; the mailbox backend injects straight into the
	// destination box under the ExternalSrc rank.
	ext []chan message
	pes []*PE
	// lo is the first local rank (0 except on BackendWire, where the
	// machine owns only the Remote window and pes/boxes are indexed by
	// rank−lo).
	lo int

	// Pooled communication-context allocator (NewContext/ReleaseContext):
	// ids are never 0 (the default context) and are recycled so long
	// serving runs keep the per-PE per-context state bounded by the
	// front end's inflight limit rather than by query count.
	ctxMu   sync.Mutex
	ctxFree []Ctx
	ctxNext uint32

	// Mailbox-backend run machinery: the sharded scheduler (w shards
	// multiplexing the p PE bodies; goroutines spawn lazily and at most w
	// stay resident, torn down by Close or the finalizer), the per-rank
	// exec wrappers (one closure each per machine, so steady-state Run
	// and RunAsync dispatch allocate nothing), and the bodies they
	// dispatch (runBody for blocking Run, asyncStart for RunAsync).
	sched      *mailbox.Sched
	exec       func(rank int) bool
	execAsync  func(rank int) bool
	runBody    func(pe *PE)
	asyncStart func(pe *PE) Stepper
	closeOnce  sync.Once

	// Mailbox-backend aggregate statistics, folded in by each worker when
	// its body completes (O(1) Stats instead of an O(p) scan).
	aggMu sync.Mutex
	agg   Stats

	abortOnce sync.Once
	abort     chan struct{}
	errMu     sync.Mutex
	err       error
}

// NewMachine creates a machine with cfg.P PEs. It panics if cfg.P < 1.
func NewMachine(cfg Config) *Machine {
	if cfg.P < 1 {
		panic(fmt.Sprintf("comm: invalid PE count %d", cfg.P))
	}
	if cfg.ChanCap <= 0 {
		cfg.ChanCap = 64
	}
	lo := 0
	if cfg.Backend == BackendWire {
		r := cfg.Remote
		if r == nil || r.Forward == nil || r.Lo < 0 || r.Hi <= r.Lo || r.Hi > cfg.P {
			panic("comm: BackendWire requires Config.Remote with a valid [Lo, Hi) window and Forward hook")
		}
		lo = r.Lo
	}
	nLocal := localP(cfg)
	m := &Machine{
		cfg:   cfg,
		lo:    lo,
		pes:   make([]*PE, nLocal),
		abort: make(chan struct{}),
	}
	var sendBoxes []*mailbox.Box
	if cfg.Backend != BackendChannelMatrix {
		m.boxes = make([]*mailbox.Box, nLocal)
		for i := range m.boxes {
			m.boxes[i] = mailbox.New()
		}
		m.sched = mailbox.NewSchedReady(nLocal, SchedWorkers(cfg), !cfg.GlobalReadyQueue)
		if cfg.PopBatch > 0 {
			m.sched.SetPopBatch(cfg.PopBatch)
		}
		// Send indexes sendBoxes by global destination rank; on the wire
		// backend the non-local entries stay nil and Send falls through to
		// the Remote.Forward transport hook.
		if lo == 0 && nLocal == cfg.P {
			sendBoxes = m.boxes
		} else {
			sendBoxes = make([]*mailbox.Box, cfg.P)
			copy(sendBoxes[lo:], m.boxes)
		}
	} else {
		m.chans = make([][]chan message, cfg.P)
		for i := 0; i < cfg.P; i++ {
			m.chans[i] = make([]chan message, cfg.P)
			for j := 0; j < cfg.P; j++ {
				m.chans[i][j] = make(chan message, cfg.ChanCap)
			}
		}
		m.ext = make([]chan message, cfg.P)
		for i := range m.ext {
			m.ext[i] = make(chan message, cfg.ChanCap)
		}
	}
	for i := 0; i < nLocal; i++ {
		pe := &PE{m: m, rank: lo + i, sidx: i, p: cfg.P, alpha: cfg.Alpha, beta: cfg.Beta}
		if m.boxes != nil {
			pe.box = m.boxes[i]
			pe.sendBoxes = sendBoxes
			pe.sched = m.sched
		} else {
			pe.asyncBuf = cfg.AsyncSendBuffer
		}
		m.pes[i] = pe
	}
	if m.sched != nil {
		m.exec = m.execRank
		m.execAsync = m.execAsyncRank
		// Suspended continuation bodies (RunAsync) are resumed through the
		// box notify → scheduler ready-queue path; all boxes share the one
		// Ready method value and differ only in rank.
		ready := m.sched.Ready
		for i, b := range m.boxes {
			b.SetNotify(i, ready)
		}
		// An idle scheduler goroutine references only the scheduler, never
		// the machine, so the finalizer fires once callers drop the machine
		// and releases the spare pool.
		runtime.SetFinalizer(m, (*Machine).shutdown)
	}
	return m
}

// P returns the number of PEs.
func (m *Machine) P() int { return m.cfg.P }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Close releases the resident scheduler goroutines of a mailbox-backend
// machine. It is optional — an unreachable machine's scheduler is
// released by a finalizer — but deterministic teardown keeps harness
// measurements clean. The machine must not be used after Close. No-op on
// the channel matrix.
func (m *Machine) Close() {
	runtime.SetFinalizer(m, nil)
	m.shutdown()
}

func (m *Machine) shutdown() {
	m.closeOnce.Do(func() {
		if m.sched != nil {
			m.sched.Close()
		}
	})
}

// Workers returns the mailbox scheduler width w (0 on the channel
// matrix): the machine's resident goroutine budget.
func (m *Machine) Workers() int {
	if m.sched == nil {
		return 0
	}
	return m.sched.Workers()
}

// abortErr records the first error and releases all blocked PEs.
func (m *Machine) abortErr(err error) {
	m.errMu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.errMu.Unlock()
	m.abortOnce.Do(func() {
		close(m.abort)
		for _, b := range m.boxes {
			b.Interrupt()
		}
	})
}

// ErrAborted is the panic value delivered to PEs blocked in Send/Recv when
// another PE has failed; it unwinds the SPMD program cleanly.
type abortedError struct{}

func (abortedError) Error() string { return "comm: aborted because another PE failed" }

// Run executes body on every PE concurrently (SPMD) and blocks until all
// PEs return. If any PE panics, all PEs are unblocked and Run returns the
// first panic as an error. Run may be called repeatedly on the same
// machine; communication state must be drained (which it is whenever a
// run completes without error, since tags are checked).
//
// On the channel matrix, each Run spawns p goroutines. On the mailbox
// backend the sharded scheduler multiplexes the p bodies over w shards:
// a Run whose bodies never block dispatches entirely on the resident
// goroutines and allocates nothing in steady state (pinned by a test);
// bodies that block in Recv park on their mailbox and transiently occupy
// a goroutine each until the run completes.
func (m *Machine) Run(body func(pe *PE)) error {
	if m.sched != nil {
		m.runBody = body
		m.sched.Run(m.exec)
		m.runBody = nil
	} else {
		var wg sync.WaitGroup
		wg.Add(m.cfg.P)
		for i := 0; i < m.cfg.P; i++ {
			pe := m.pes[i]
			go func() {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						pe.resetAsync()
						if _, ok := r.(abortedError); ok {
							return // secondary failure; first cause already recorded
						}
						m.abortErr(fmt.Errorf("comm: PE %d panicked: %v\n%s", pe.rank, r, debug.Stack()))
					}
				}()
				body(pe)
				// Buffered ISends the body never waited on must still be
				// delivered before the PE retires (a peer may be blocked
				// receiving them).
				pe.flushPending(pe.pendTotal)
			}()
		}
		wg.Wait()
	}
	return m.finishRun()
}

// finishRun collects a run's first error and, on failure, restores the
// machine to a clean reusable state (shared by Run and RunAsync).
func (m *Machine) finishRun() error {
	m.errMu.Lock()
	err := m.err
	m.err = nil
	m.errMu.Unlock()
	if err != nil {
		// The machine's queues may hold stale messages after an abort, and
		// unwound PE bodies may have left posted receive handles behind;
		// drain both so a subsequent Run starts clean.
		for _, b := range m.boxes {
			b.Reset()
		}
		for i := range m.chans {
			for j := range m.chans[i] {
				for len(m.chans[i][j]) > 0 {
					<-m.chans[i][j]
				}
			}
		}
		for _, ch := range m.ext {
			for len(ch) > 0 {
				<-ch
			}
		}
		for _, pe := range m.pes {
			pe.resetAsync()
		}
		m.abort = make(chan struct{})
		m.abortOnce = sync.Once{}
	}
	return err
}

// execRank is the mailbox backend's per-rank run wrapper for blocking
// bodies: dispatch the body, convert panics into machine aborts, and
// fold this PE's counter deltas into the aggregate. Created once per
// machine so Run stays allocation-free. Blocking bodies always complete
// within one exec call (they park goroutines instead of suspending), so
// it always reports done.
func (m *Machine) execRank(rank int) (done bool) {
	pe := m.pes[rank]
	defer func() {
		if r := recover(); r != nil {
			pe.resetAsync()
			done = true // the rank is finished (it failed); never suspended
			if _, ok := r.(abortedError); !ok {
				m.abortErr(fmt.Errorf("comm: PE %d panicked: %v\n%s", pe.rank, r, debug.Stack()))
			}
		}
		m.foldStats(pe)
	}()
	m.runBody(pe)
	return true
}

// foldStats folds pe's monotone counters into the machine aggregate —
// the mailbox backend's incremental statistics. Deltas (for the totals)
// use per-PE shadows of the last folded values; the maxima need none
// because per-PE counters only grow between ResetStats calls.
func (m *Machine) foldStats(pe *PE) {
	m.aggMu.Lock()
	m.agg.TotalWords += pe.sentWords - pe.foldedSentWords
	m.agg.TotalSends += pe.sends - pe.foldedSends
	pe.foldedSentWords = pe.sentWords
	pe.foldedSends = pe.sends
	m.agg.MaxSentWords = max(m.agg.MaxSentWords, pe.sentWords)
	m.agg.MaxRecvWords = max(m.agg.MaxRecvWords, pe.recvWords)
	m.agg.MaxSends = max(m.agg.MaxSends, pe.sends)
	if pe.clock > m.agg.MaxClock {
		m.agg.MaxClock = pe.clock
	}
	m.aggMu.Unlock()
}

// Ctx is a communication context — the MPI-communicator-style tag that
// isolates concurrent operations sharing one machine. Every message
// carries its sender's current context, and receives match on
// (source, context) before the tag discipline applies, so collectives
// and selection steppers of different queries interleave on one
// scheduler without ever seeing each other's traffic. Context 0 is the
// default every PE starts in; nonzero contexts are leased from the
// machine's pooled allocator (NewContext/ReleaseContext).
type Ctx uint32

// NewContext leases a communication context from the machine's pool.
// Safe from any goroutine. Contexts are recycled by ReleaseContext;
// a context must not be released while any operation tagged with it is
// still in flight on any PE (the serving layer releases only after all
// p per-PE steppers of the context's operation have completed).
func (m *Machine) NewContext() Ctx {
	m.ctxMu.Lock()
	defer m.ctxMu.Unlock()
	if n := len(m.ctxFree); n > 0 {
		c := m.ctxFree[n-1]
		m.ctxFree = m.ctxFree[:n-1]
		return c
	}
	m.ctxNext++
	return Ctx(m.ctxNext)
}

// ReleaseContext returns a leased context to the pool. Safe from any
// goroutine. Reuse is safe because operations run SPMD over all PEs:
// every PE has retired the context's traffic (messages and collective
// tag state) before the next lease can reach it.
func (m *Machine) ReleaseContext(c Ctx) {
	if c == 0 {
		panic("comm: cannot release the default context")
	}
	m.ctxMu.Lock()
	m.ctxFree = append(m.ctxFree, c)
	m.ctxMu.Unlock()
}

// ExternalSrc is the reserved source rank of externally injected
// messages (Machine.Post): one past the last PE, so it can never
// collide with PE traffic.
func (m *Machine) ExternalSrc() int { return m.cfg.P }

// Post injects a message from outside the machine — the serving front
// end's doorbell: an admission goroutine that is not a PE hands work to
// the PEs mid-run. The message arrives at dst under (ExternalSrc, ctx)
// and is received like any other (IRecv(ExternalSrc, tag) with the PE's
// context set to ctx). It carries no sender-side meter (no PE paid a
// send); the receiver's Wait folds the usual α + βm receive cost with a
// zero depart stamp, so consuming a doorbell costs one startup of
// modeled time. Safe from any goroutine; never blocks on the mailbox
// backend (channel-matrix injection queues block when full, watching
// the abort).
func (m *Machine) Post(dst int, ctx Ctx, tag Tag, data any, words int64) {
	if m.boxes != nil {
		msg := mailbox.Msg{
			Src: m.cfg.P, Ctx: uint32(ctx), Tag: uint64(tag), Words: words, Data: data,
		}
		if dst < m.lo || dst >= m.lo+len(m.pes) {
			m.cfg.Remote.Forward(dst, msg)
			return
		}
		m.boxes[dst-m.lo].Put(msg)
		return
	}
	select {
	case m.ext[dst] <- message{tag: tag, ctx: uint32(ctx), words: words, data: data}:
	case <-m.abort:
	}
}

// Deliver injects a transport-delivered message for local rank dst — the
// receive half of the BackendWire seam: the wire reader decodes a frame
// and hands its envelope here, after which keyed demux, IRecv binding and
// the metered receive rule proceed exactly as for an in-process send (the
// message carries the sender's depart stamp across the process boundary).
// dst must be a local rank. Safe from any goroutine.
func (m *Machine) Deliver(dst int, msg mailbox.Msg) {
	if m.boxes == nil || dst < m.lo || dst >= m.lo+len(m.pes) {
		panic(fmt.Sprintf("comm: Deliver to non-local rank %d (local window [%d, %d))", dst, m.lo, m.lo+len(m.pes)))
	}
	m.boxes[dst-m.lo].Put(msg)
}

// AbortExternal records err as the machine's failure and releases every
// blocked or suspended local PE, exactly as a local PE panic would — the
// wire transport's hook for propagating a remote process's death into a
// run in progress. The current (or next) Run returns err; finishRun then
// restores the machine to a clean state.
func (m *Machine) AbortExternal(err error) { m.abortErr(err) }

// LocalRanks returns the machine's local rank window [lo, hi): the full
// [0, P) except on BackendWire, where it is the Config.Remote window.
func (m *Machine) LocalRanks() (lo, hi int) { return m.lo, m.lo + len(m.pes) }

// MustRun is Run but panics on error. Intended for examples and benches.
func (m *Machine) MustRun(body func(pe *PE)) {
	if err := m.Run(body); err != nil {
		panic(err)
	}
}

// ResetStats zeroes all per-PE counters and virtual clocks. Call between
// measured phases. Must not be called while a Run is in progress. The
// collective tag sequence is deliberately left untouched — it is protocol
// state, not a statistic.
func (m *Machine) ResetStats() {
	for _, pe := range m.pes {
		pe.sentWords, pe.recvWords, pe.sends, pe.recvs = 0, 0, 0, 0
		pe.foldedSentWords, pe.foldedSends = 0, 0
		pe.clock = 0
		pe.waitNs = 0
	}
	m.aggMu.Lock()
	m.agg = Stats{}
	m.aggMu.Unlock()
}

// Stats aggregates communication counters across PEs after a Run.
type Stats struct {
	// TotalWords is the sum of all words sent.
	TotalWords int64
	// MaxSentWords / MaxRecvWords are the bottleneck communication volumes
	// (the paper's h: max over PEs of words sent resp. received).
	MaxSentWords int64
	MaxRecvWords int64
	// TotalSends is the total number of messages (startups paid somewhere).
	TotalSends int64
	// MaxSends is the bottleneck startup count (max over PEs of messages sent).
	MaxSends int64
	// MaxClock is the modeled α/β critical-path time (max PE virtual clock).
	MaxClock float64
}

// BottleneckWords is the paper's h: the maximum over PEs of words sent or
// received.
func (s Stats) BottleneckWords() int64 {
	return max(s.MaxSentWords, s.MaxRecvWords)
}

// Stats returns aggregate counters. Only meaningful between Runs. On the
// mailbox backend this reads the incrementally folded aggregate in O(1);
// the channel matrix scans its p PEs.
func (m *Machine) Stats() Stats {
	if m.sched != nil {
		m.aggMu.Lock()
		s := m.agg
		m.aggMu.Unlock()
		return s
	}
	var s Stats
	for _, pe := range m.pes {
		s.TotalWords += pe.sentWords
		s.TotalSends += pe.sends
		s.MaxSentWords = max(s.MaxSentWords, pe.sentWords)
		s.MaxRecvWords = max(s.MaxRecvWords, pe.recvWords)
		s.MaxSends = max(s.MaxSends, pe.sends)
		if pe.clock > s.MaxClock {
			s.MaxClock = pe.clock
		}
	}
	return s
}

// PE is one processing element's handle, valid only inside the goroutine
// Run started for it. All fields are goroutine-local; no synchronization
// is needed to update counters.
type PE struct {
	m    *Machine
	rank int
	// sidx is the scheduler-local index (rank − machine window lo): what
	// the mailbox scheduler and box-notify path know this PE as. Equal to
	// rank everywhere except BackendWire.
	sidx int
	p    int

	// alpha/beta are copied from the machine config so the Send/Recv hot
	// paths touch only this cache line, not the shared Machine.
	alpha float64
	beta  float64

	// Mailbox backend: box is this PE's own intake, sendBoxes the
	// machine-wide slice indexed by destination, sched the sharded
	// scheduler a blocking Recv must notify (driver hand-off). All nil on
	// the channel matrix (the Send/Recv dispatch tests box/sendBoxes, not
	// config).
	box       *mailbox.Box
	sendBoxes []*mailbox.Box
	sched     *mailbox.Sched

	clock     float64
	sentWords int64
	recvWords int64
	sends     int64
	recvs     int64
	waitNs    int64

	// foldedSentWords/foldedSends shadow the last values folded into the
	// machine aggregate (mailbox backend incremental stats).
	foldedSentWords int64
	foldedSends     int64

	// ctx is the PE's current communication context: attached to every
	// send and matched by every receive posted while set. The serving
	// mux switches it per query slot (SetCtx); everything else runs in
	// the default context 0. collSeq is context 0's collective tag
	// sequence (the hot path); nonzero contexts draw from collSeqCtx,
	// one independent sequence per context so concurrently interleaved
	// queries each keep the SPMD tag discipline internally.
	ctx        uint32
	collSeq    uint64
	collSeqCtx map[uint32]uint64

	// Channel-matrix per-PE stash: messages taken off a source channel
	// while looking for a different context, parked per (src, ctx) key
	// until their own receive comes looking. The mailbox backend demuxes
	// inside the Box instead.
	stash map[uint64]*msgFifo

	// keyBuf/hBuf are reusable buffers for multi-handle suspension
	// (MultiWaiter bodies): the pending handles of the current body and
	// their (src, ctx) arm keys.
	keyBuf []uint64
	hBuf   []*RecvHandle

	// Non-blocking receive state: the outstanding posted handles (FIFO,
	// doubly linked), the handle freelist (so Recv = IRecv+Wait allocates
	// nothing in steady state), and — under RunAsync — the PE's current
	// continuation body.
	outHead, outTail *RecvHandle
	freeH            *RecvHandle
	step             Stepper

	// Buffered-ISend state (channel matrix with Config.AsyncSendBuffer):
	// the pending FIFO of posted-but-undelivered sends, its consumed-head
	// index, and the monotone posted/delivered counters SendHandle
	// completion is judged against.
	asyncBuf  bool
	pendQ     []pendingSend
	pendHead  int
	pendTotal uint64
	pendDone  uint64

	scratch map[scratchKey]any
	// pools holds the per-PE typed freelists of pooled stepper state
	// (see steppool.go). Like scratch, it is only touched by the
	// goroutine currently running this PE's body. Pools need no context
	// namespacing: concurrent queries pop distinct objects off the same
	// freelist, and released objects carry no query state.
	pools map[reflect.Type]any
}

// scratchKey namespaces the scratch store by the PE's communication
// context, so concurrently interleaved queries reusing the same named
// buffers (sel.KthStep's partition scratch, the collectives' hold
// buffers) never alias each other. Call sites keep their plain string
// keys; the context is attached here.
type scratchKey struct {
	ctx uint32
	key string
}

// msgFifo is one (src, ctx) key's stashed-message queue on the channel
// matrix (see PE.stash).
type msgFifo struct {
	q    []message
	head int
}

// Scratch returns the value stored under key in this PE's scratch store
// (scoped to the PE's current communication context), or nil. The store
// holds goroutine-local reusable state (typically buffers, see
// ScratchSlice) that survives across collective calls and Runs; it
// needs no synchronization because a PE handle is only valid inside its
// own goroutine.
func (pe *PE) Scratch(key string) any {
	return pe.scratch[scratchKey{pe.ctx, key}]
}

// SetScratch stores v under key in this PE's scratch store (scoped to
// the PE's current communication context).
func (pe *PE) SetScratch(key string, v any) {
	if pe.scratch == nil {
		pe.scratch = make(map[scratchKey]any)
	}
	pe.scratch[scratchKey{pe.ctx, key}] = v
}

// ScratchSlice returns a per-PE reusable buffer of length n for the given
// key, allocating or growing it only when the stored buffer is missing,
// of a different element type, or too small. Contents are unspecified.
// Callers own the buffer until their next ScratchSlice call with the same
// key — do not hold it across calls into code that may use the same key,
// and never send it (ownership cannot transfer off the PE). Buffers are
// scoped to the PE's current communication context, so interleaved
// queries cannot alias each other's scratch.
func ScratchSlice[T any](pe *PE, key string, n int) []T {
	if v, ok := pe.scratch[scratchKey{pe.ctx, key}]; ok {
		if b, ok := v.(*[]T); ok && cap(*b) >= n {
			*b = (*b)[:n]
			return *b
		}
	}
	b := make([]T, n)
	pe.SetScratch(key, &b)
	return b
}

// WaitTime returns how long this PE has been blocked waiting for messages
// (or for channel space). Harness code subtracts it from a phase's wall
// time to estimate pure local work.
func (pe *PE) WaitTime() time.Duration { return time.Duration(pe.waitNs) }

// Rank returns this PE's rank in 0..P-1.
func (pe *PE) Rank() int { return pe.rank }

// P returns the number of PEs.
func (pe *PE) P() int { return pe.p }

// Alpha returns the modeled startup cost.
func (pe *PE) Alpha() float64 { return pe.m.cfg.Alpha }

// Beta returns the modeled per-word cost.
func (pe *PE) Beta() float64 { return pe.m.cfg.Beta }

// Clock returns this PE's modeled communication-time clock.
func (pe *PE) Clock() float64 { return pe.clock }

// SentWords returns the number of machine words this PE has sent.
func (pe *PE) SentWords() int64 { return pe.sentWords }

// RecvWords returns the number of machine words this PE has received.
func (pe *PE) RecvWords() int64 { return pe.recvWords }

// Sends returns the number of messages this PE has sent.
func (pe *PE) Sends() int64 { return pe.sends }

// SetCtx switches the PE's current communication context: sends attach
// it, receives posted afterwards match on it, and the scratch store and
// collective tag sequence are scoped to it. The serving mux switches
// contexts between query slots; ordinary SPMD bodies stay in the
// default context 0. The context must be identical across PEs for the
// same logical operation (it replaces nothing of the SPMD discipline —
// it isolates whole operations from each other).
func (pe *PE) SetCtx(c Ctx) { pe.ctx = uint32(c) }

// CurCtx returns the PE's current communication context.
func (pe *PE) CurCtx() Ctx { return Ctx(pe.ctx) }

// ExternalSrc is the reserved source rank of externally injected
// messages (Machine.Post) — one past the last PE.
func (pe *PE) ExternalSrc() int { return pe.p }

// NextCollTag returns the next collective-operation tag. Every PE must call
// it the same number of times in the same order (SPMD discipline, per
// communication context — concurrent contexts hold independent
// sequences); the returned tags then agree across PEs without
// communication.
func (pe *PE) NextCollTag() Tag {
	if pe.ctx == 0 {
		pe.collSeq++
		return Tag(1<<32 | pe.collSeq)
	}
	if pe.collSeqCtx == nil {
		pe.collSeqCtx = make(map[uint32]uint64)
	}
	s := pe.collSeqCtx[pe.ctx] + 1
	pe.collSeqCtx[pe.ctx] = s
	return Tag(1<<32 | s)
}

// Send transmits data (words machine words) to PE dst with the given tag.
// The payload is passed by reference; the sender must not mutate it after
// sending (collectives in package coll copy where required). Send never
// blocks indefinitely: if the machine aborts, Send unwinds via panic.
func (pe *PE) Send(dst int, tag Tag, data any, words int64) {
	if dst < 0 || dst >= pe.p {
		panic(fmt.Sprintf("comm: PE %d: send to invalid rank %d", pe.rank, dst))
	}
	if dst == pe.rank {
		panic(fmt.Sprintf("comm: PE %d: self-send is not modeled; keep data local", pe.rank))
	}
	// Earlier buffered ISends must hit the wire first (per-sender FIFO is
	// a transport guarantee the receivers' tag discipline relies on).
	pe.flushPending(pe.pendTotal)
	pe.clock += pe.alpha + pe.beta*float64(words)
	pe.sentWords += words
	pe.sends++
	if pe.sendBoxes != nil {
		// Mailbox backend: intake is unbounded, so sends never block and
		// need no abort watch. A nil box entry (wire backend, non-local
		// destination) routes through the transport hook instead; the
		// frame carries the depart stamp so the receiver's meter folds
		// identically to a local delivery.
		msg := mailbox.Msg{
			Src: pe.rank, Ctx: pe.ctx, Tag: uint64(tag), Words: words, Depart: pe.clock, Data: data,
		}
		if b := pe.sendBoxes[dst]; b != nil {
			b.Put(msg)
		} else {
			pe.m.cfg.Remote.Forward(dst, msg)
		}
		return
	}
	msg := message{tag: tag, ctx: pe.ctx, words: words, depart: pe.clock, data: data}
	// Fast path: the buffered channel has space, so no abort watch and no
	// wait-time clock reads are needed.
	select {
	case pe.m.chans[pe.rank][dst] <- msg:
	default:
		t0 := time.Now()
		select {
		case pe.m.chans[pe.rank][dst] <- msg:
		case <-pe.m.abort:
			panic(abortedError{})
		}
		pe.waitNs += time.Since(t0).Nanoseconds()
	}
}

// Recv receives the next message from PE src, which must carry the given
// tag. It returns the payload and its size in words. Recv is sugar for
// IRecv followed by Wait (literally — the handle comes from the per-PE
// pool, so the sugar allocates nothing): posting binds an
// already-delivered message eagerly, Wait parks only when the message
// has not arrived (handing the shard driver role off first on the
// mailbox backend), and the meter — the single-ported α+βm clock rule, a
// coordinator draining p−1 messages therefore paying Θ(p·(α+βm)) of
// modeled time — folds at Wait.
func (pe *PE) Recv(src int, tag Tag) (any, int64) {
	return pe.IRecv(src, tag).Wait()
}

// SendRecv sends to dst and receives from src in one full-duplex step
// (the common exchange pattern of recursive doubling), posting the
// receive before the send so the two transfers overlap — the handle-API
// form of the exchange. Sends never block on the mailbox backend, and
// the buffered channels of the matrix make the exchange deadlock-free
// for any pairing as long as ChanCap ≥ 1.
func (pe *PE) SendRecv(dst int, sendData any, sendWords int64, src int, tag Tag) (any, int64) {
	h := pe.IRecv(src, tag)
	pe.Send(dst, tag, sendData, sendWords)
	return h.Wait()
}
