package comm

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// The mailbox backend must be a drop-in replacement for the channel
// matrix: same Send/Recv semantics, same metering, same abort behavior.
// (Full cross-backend differential coverage over the collective suite
// lives in internal/experiments; these tests pin the substrate itself.)

func TestMailboxBasicSendRecv(t *testing.T) {
	m := NewMachine(MailboxConfig(2))
	defer m.Close()
	err := m.Run(func(pe *PE) {
		const tag Tag = 7
		if pe.Rank() == 0 {
			pe.Send(1, tag, []int64{1, 2, 3}, 3)
		} else {
			data, words := pe.Recv(0, tag)
			got := data.([]int64)
			if words != 3 || len(got) != 3 || got[2] != 3 {
				t.Errorf("recv got %v (%d words)", got, words)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMailboxManyPEsAllExchange(t *testing.T) {
	// The dense-exchange stress of the channel matrix, on mailboxes: every
	// PE sends to every other, interleaving all senders in each intake.
	const p = 16
	m := NewMachine(MailboxConfig(p))
	defer m.Close()
	m.MustRun(func(pe *PE) {
		const tag Tag = 11
		for i := 1; i < p; i++ {
			dst := (pe.Rank() + i) % p
			pe.Send(dst, tag, pe.Rank(), 1)
		}
		sum := 0
		for i := 1; i < p; i++ {
			src := (pe.Rank() - i + p) % p
			rx, _ := pe.Recv(src, tag)
			sum += rx.(int)
		}
		want := p*(p-1)/2 - pe.Rank()
		if sum != want {
			t.Errorf("PE %d: sum=%d want %d", pe.Rank(), sum, want)
		}
	})
}

func TestMailboxPerSenderFIFOUnderReordering(t *testing.T) {
	// Receive sources in the opposite order they become ready: messages
	// from the not-yet-wanted sender must stash without disturbing the
	// per-sender order.
	m := NewMachine(MailboxConfig(3))
	defer m.Close()
	m.MustRun(func(pe *PE) {
		const tag Tag = 5
		switch pe.Rank() {
		case 0:
			for i := 0; i < 4; i++ {
				pe.Send(2, tag, 100+i, 1)
			}
		case 1:
			for i := 0; i < 4; i++ {
				pe.Send(2, tag, 200+i, 1)
			}
		case 2:
			// Drain sender 1 first, then sender 0.
			for i := 0; i < 4; i++ {
				rx, _ := pe.Recv(1, tag)
				if rx.(int) != 200+i {
					t.Errorf("from 1 step %d: got %v", i, rx)
				}
			}
			for i := 0; i < 4; i++ {
				rx, _ := pe.Recv(0, tag)
				if rx.(int) != 100+i {
					t.Errorf("from 0 step %d: got %v", i, rx)
				}
			}
		}
	})
}

func TestMailboxRunPropagatesPanicAndReuses(t *testing.T) {
	m := NewMachine(MailboxConfig(4))
	defer m.Close()
	err := m.Run(func(pe *PE) {
		if pe.Rank() == 2 {
			panic("boom")
		}
		// Other PEs block on a message that never comes; the box interrupt
		// must release them.
		pe.Recv((pe.Rank()+1)%4, 99)
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected panic propagation, got %v", err)
	}
	// The machine (and its persistent workers) must be reusable after an
	// abort, with queues drained.
	if err := m.Run(func(pe *PE) {}); err != nil {
		t.Fatalf("machine not reusable after abort: %v", err)
	}
	m.MustRun(func(pe *PE) {
		const tag Tag = 3
		if pe.Rank() == 0 {
			pe.Send(1, tag, 42, 1)
		} else if pe.Rank() == 1 {
			if rx, _ := pe.Recv(0, tag); rx.(int) != 42 {
				t.Errorf("post-abort recv got %v", rx)
			}
		}
	})
}

func TestMailboxTagMismatchDetected(t *testing.T) {
	m := NewMachine(MailboxConfig(2))
	defer m.Close()
	err := m.Run(func(pe *PE) {
		if pe.Rank() == 0 {
			pe.Send(1, 5, nil, 0)
		} else {
			pe.Recv(0, 6)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "tag mismatch") {
		t.Fatalf("expected tag mismatch error, got %v", err)
	}
}

// TestMailboxStatsMatchChannelMatrix pins the O(1) folded aggregate
// against the channel matrix's O(p) scan on a deterministic exchange,
// including accumulation across Runs and ResetStats.
func TestMailboxStatsMatchChannelMatrix(t *testing.T) {
	body := func(pe *PE) {
		const tag Tag = 2
		next := (pe.Rank() + 1) % pe.P()
		prev := (pe.Rank() - 1 + pe.P()) % pe.P()
		pe.Send(next, tag, nil, int64(pe.Rank()+1))
		pe.Recv(prev, tag)
	}
	run := func(cfg Config) (first, second, reset Stats) {
		m := NewMachine(cfg)
		defer m.Close()
		m.MustRun(body)
		first = m.Stats()
		m.MustRun(body)
		second = m.Stats()
		m.ResetStats()
		reset = m.Stats()
		return
	}
	c1, c2, cr := run(MatrixConfig(8))
	b1, b2, br := run(MailboxConfig(8))
	if c1 != b1 || c2 != b2 || cr != br {
		t.Errorf("stats diverge between backends:\nchan:    %+v %+v %+v\nmailbox: %+v %+v %+v",
			c1, c2, cr, b1, b2, br)
	}
	if c2.TotalWords != 2*c1.TotalWords {
		t.Errorf("stats did not accumulate across runs: %+v then %+v", c1, c2)
	}
	if br != (Stats{}) {
		t.Errorf("ResetStats left %+v", br)
	}
}

func TestMailboxWaitTimeAccumulates(t *testing.T) {
	m := NewMachine(MailboxConfig(2))
	defer m.Close()
	var waited time.Duration
	m.MustRun(func(pe *PE) {
		const tag Tag = 9
		if pe.Rank() == 0 {
			time.Sleep(20 * time.Millisecond)
			pe.Send(1, tag, nil, 1)
		} else {
			pe.Recv(0, tag)
			waited = pe.WaitTime()
		}
	})
	if waited < 5*time.Millisecond {
		t.Errorf("blocked receive recorded only %v of wait time", waited)
	}
}

func TestMailboxCloseIdempotent(t *testing.T) {
	m := NewMachine(MailboxConfig(4))
	m.MustRun(func(pe *PE) {})
	m.Close()
	m.Close() // second Close must be a no-op, not a double channel close
}

func TestMailboxWorkersReleasedOnClose(t *testing.T) {
	before := runtime.NumGoroutine()
	m := NewMachine(MailboxConfig(64))
	m.MustRun(func(pe *PE) {})
	m.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("worker goroutines not released: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestMailboxRunZeroAllocSteadyState is the AllocsPerRun guard of the
// persistent worker pool: after the first Run has started the workers, a
// Run dispatch itself must not allocate (the channel matrix pays ~2
// allocs per PE per Run for goroutine spawns — the floor PR 1 measured).
func TestMailboxRunZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	m := NewMachine(MailboxConfig(64))
	defer m.Close()
	body := func(pe *PE) {}
	m.MustRun(body) // spawn the worker pool outside the measurement
	allocs := testing.AllocsPerRun(50, func() {
		m.MustRun(body)
	})
	if allocs > 0.5 {
		t.Errorf("steady-state mailbox Run allocates %.1f times, want 0", allocs)
	}
}

// TestQueueBytesGrowth pins the tentpole memory claim: the mailbox
// backend's up-front queue memory is O(p) while the channel matrix is
// O(p²·ChanCap).
func TestQueueBytesGrowth(t *testing.T) {
	growth := func(cfg func(int) Config) float64 {
		return float64(QueueBytes(cfg(4096))) / float64(QueueBytes(cfg(256)))
	}
	// 16× more PEs: O(p) grows 16×, O(p²) grows 256×.
	if g := growth(MailboxConfig); g > 20 {
		t.Errorf("mailbox queue memory grew %.0f× for 16× PEs; want O(p)", g)
	}
	if g := growth(MatrixConfig); g < 200 {
		t.Errorf("channel-matrix queue estimate grew only %.0f× for 16× PEs; estimator wrong?", g)
	}
	// Absolute sanity: the matrix at p=4096 is beyond any reasonable
	// harness budget; the mailbox at the same p is trivial.
	if got := QueueBytes(MatrixConfig(4096)); got < 16<<30 {
		t.Errorf("channel-matrix estimate at p=4096 = %d B; expected tens of GB", got)
	}
	if got := QueueBytes(MailboxConfig(4096)); got > 16<<20 {
		t.Errorf("mailbox estimate at p=4096 = %d B; expected well under 16 MB", got)
	}
}

// TestDefaultConfigIsMailbox pins the PR 3 default flip: DefaultConfig
// selects the mailbox runtime, MatrixConfig the channel-matrix reference,
// and an explicitly constructed zero-Backend Config still means matrix.
func TestDefaultConfigIsMailbox(t *testing.T) {
	if b := DefaultConfig(4).Backend; b != BackendMailbox {
		t.Errorf("DefaultConfig backend = %v, want mailbox", b)
	}
	if b := MatrixConfig(4).Backend; b != BackendChannelMatrix {
		t.Errorf("MatrixConfig backend = %v, want chanmatrix", b)
	}
	if b := (Config{P: 4}).Backend; b != BackendChannelMatrix {
		t.Errorf("zero-value backend = %v, want chanmatrix", b)
	}
}

// TestMachineBytesGrowth pins the estimator the scaling budget guards
// against: O(p) for the mailbox runtime including scheduler state, O(p²)
// for the matrix, and never below QueueBytes.
func TestMachineBytesGrowth(t *testing.T) {
	growth := func(cfg func(int) Config) float64 {
		return float64(MachineBytes(cfg(4096))) / float64(MachineBytes(cfg(256)))
	}
	if g := growth(MailboxConfig); g > 20 {
		t.Errorf("mailbox machine estimate grew %.0f× for 16× PEs; want O(p)", g)
	}
	if g := growth(MatrixConfig); g < 100 {
		t.Errorf("matrix machine estimate grew only %.0f× for 16× PEs", g)
	}
	for _, cfg := range []Config{MailboxConfig(1024), MatrixConfig(64)} {
		if MachineBytes(cfg) < QueueBytes(cfg) {
			t.Errorf("%s: MachineBytes %d < QueueBytes %d", cfg.Backend, MachineBytes(cfg), QueueBytes(cfg))
		}
	}
	// The estimator must charge the scheduler: more workers, more bytes.
	wide, narrow := MailboxConfig(1024), MailboxConfig(1024)
	wide.Workers, narrow.Workers = 512, 4
	if MachineBytes(wide) <= MachineBytes(narrow) {
		t.Errorf("scheduler state not charged: w=512 → %d B, w=4 → %d B", MachineBytes(wide), MachineBytes(narrow))
	}
}

// TestSchedWorkersResolution pins the w = min(GOMAXPROCS·8, p) default
// and the clamping of explicit widths.
func TestSchedWorkersResolution(t *testing.T) {
	if w := SchedWorkers(MailboxConfig(1 << 20)); w != min(runtime.GOMAXPROCS(0)*8, 1<<20) {
		t.Errorf("auto w = %d", w)
	}
	if w := SchedWorkers(MailboxConfig(3)); w != 3 {
		t.Errorf("auto w at p=3 = %d, want 3", w)
	}
	cfg := MailboxConfig(64)
	cfg.Workers = 4
	if w := SchedWorkers(cfg); w != 4 {
		t.Errorf("explicit w = %d, want 4", w)
	}
	cfg.Workers = 1 << 20
	if w := SchedWorkers(cfg); w != 64 {
		t.Errorf("oversized w = %d, want clamp to 64", w)
	}
	if w := SchedWorkers(MatrixConfig(64)); w != 0 {
		t.Errorf("matrix w = %d, want 0", w)
	}
	m := NewMachine(MailboxConfig(16))
	defer m.Close()
	if m.Workers() != SchedWorkers(m.Config()) {
		t.Errorf("Machine.Workers = %d, want %d", m.Workers(), SchedWorkers(m.Config()))
	}
}

// TestMailboxSchedulerWLessThanP exercises the multiplexed regime — far
// fewer shards than PEs, every body blocking — at the substrate level.
func TestMailboxSchedulerWLessThanP(t *testing.T) {
	const p = 64
	cfg := MailboxConfig(p)
	cfg.Workers = 4
	m := NewMachine(cfg)
	defer m.Close()
	for round := 0; round < 3; round++ {
		m.MustRun(func(pe *PE) {
			const tag Tag = 21
			// Reverse-order ring: every PE waits on a successor that the
			// in-order shard queues have not started yet, forcing driver
			// hand-offs down the whole queue.
			next := (pe.Rank() + 1) % p
			prev := (pe.Rank() - 1 + p) % p
			pe.Send(prev, tag, pe.Rank()+round, 1)
			rx, _ := pe.Recv(next, tag)
			if rx.(int) != next+round {
				t.Errorf("PE %d: got %v", pe.Rank(), rx)
			}
		})
	}
}

// TestMailboxGoroutineCountResident is the tentpole residency guard: a
// resident p = 16384 machine — after runs in which thousands of PE
// bodies parked — keeps its goroutine count at O(w), not O(p).
func TestMailboxGoroutineCountResident(t *testing.T) {
	const p = 16384
	before := runtime.NumGoroutine()
	m := NewMachine(MailboxConfig(p))
	defer m.Close()
	w := m.Workers()
	if w >= p/4 {
		t.Skipf("GOMAXPROCS too large for a meaningful bound (w=%d, p=%d)", w, p)
	}
	// A shifted ring parks essentially every PE body at least once.
	m.MustRun(func(pe *PE) {
		const tag Tag = 33
		pe.Send((pe.Rank()+1)%p, tag, nil, 1)
		pe.Recv((pe.Rank()-1+p)%p, tag)
	})
	deadline := time.Now().Add(5 * time.Second)
	var after int
	for time.Now().Before(deadline) {
		if after = runtime.NumGoroutine(); after <= before+w+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("resident goroutines %d (baseline %d) exceed w+O(1) with w=%d; scheduler residency broken", after, before, w)
}

// heapInUse forces a GC and returns live heap bytes.
func heapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// TestMailboxMachineMemoryMeasured verifies the O(p) claim on the real
// allocator, not just the estimate: constructing a mailbox machine with
// 4096 PEs must cost (far) less heap than a 64-PE channel matrix.
func TestMailboxMachineMemoryMeasured(t *testing.T) {
	if raceEnabled {
		t.Skip("heap measurements are not meaningful under -race")
	}
	measure := func(cfg Config) uint64 {
		before := heapInUse()
		m := NewMachine(cfg)
		after := heapInUse()
		runtime.KeepAlive(m)
		if after < before {
			return 0
		}
		return after - before
	}
	chan64 := measure(MatrixConfig(64))
	box4096 := measure(MailboxConfig(4096))
	// chan64 ≈ 64²·(hchan + 64 slots) ≈ 13 MB; box4096 ≈ 4096 boxes < 2 MB.
	if box4096 >= chan64 {
		t.Errorf("mailbox machine at p=4096 uses %d B, channel matrix at p=64 uses %d B; mailbox should be far smaller",
			box4096, chan64)
	}
	if box4096 > 16<<20 {
		t.Errorf("mailbox machine at p=4096 uses %d B; want O(p) ≪ 16 MB", box4096)
	}
}
