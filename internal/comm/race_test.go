//go:build race

package comm

// raceEnabled gates the allocation- and memory-count guards: the race
// runtime randomizes sync.Pool behavior and inflates every allocation, so
// the counts are meaningless under -race.
const raceEnabled = true
