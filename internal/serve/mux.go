package serve

import (
	"cmp"

	"commtopk/internal/bpq"
	"commtopk/internal/comm"
	"commtopk/internal/dht"
	"commtopk/internal/freq"
	"commtopk/internal/sel"
	"commtopk/internal/xrand"
)

// op is one doorbell's payload: the batch of queries to start. A nil
// *op (or an empty batch) is the poison pill that retires the mux.
type op[K cmp.Ordered] struct {
	queries []*query[K]
}

// slot is one in-flight query on one PE: its selection stepper, the
// receive it is suspended on (nil when runnable), and the result
// delivery closure's landing field.
type slot[K cmp.Ordered] struct {
	q       *query[K]
	step    comm.Stepper
	pending *comm.RecvHandle
	res     K
	resN    int64    // realized batch size (DeleteMin slots only)
	items   []dht.KV // heavy hitters (TopKFreq slots only)
}

// mux is the per-PE tenant multiplexer: one long-lived stepper that
// consumes doorbells from the admission front end and interleaves every
// active query's selection stepper on this PE, switching the PE's
// communication context per slot so the queries' traffic (and scratch,
// and collective tag sequences) never mix.
//
// Scheduling is a full sweep: every Step invocation tries the doorbell
// and every runnable slot until nothing can progress, then suspends.
// As a comm.MultiWaiter the mux suspends on ALL its pending receives at
// once — the doorbell plus one per waiting slot — so a message for any
// tenant (or a new batch) resumes the PE. A resume storm from one query
// cannot starve another: each sweep revisits every slot, and a slot
// only consumes worker time when one of its messages has arrived.
type mux[K cmp.Ordered] struct {
	srv   *Server[K]
	shard []K
	db    *comm.RecvHandle // posted doorbell receive (ctx 0)
	slots []*slot[K]
	// Bulk-PQ state: the resident queue (lazily built from the shard at
	// the first DeleteMin dispatch) and the FIFO of its in-flight slots.
	// The queue is shared mutable state across DeleteMin queries, so
	// only the FIFO head runs; dispatch order is identical on every PE
	// (one dispatcher goroutine, per-(src,ctx) FIFO doorbell streams),
	// which keeps the queue's mutation order — and with it every
	// query's result and meters — independent of backend, worker count,
	// and inflight depth. Kth slots interleave freely around the FIFO.
	pq      *bpq.Queue[K]
	pqQ     []*slot[K]
	closing bool
}

func newMux[K cmp.Ordered](s *Server[K], pe *comm.PE) *mux[K] {
	return &mux[K]{srv: s, shard: s.shards[pe.Rank()]}
}

// PendingHandles implements comm.MultiWaiter: everything this PE might
// be resumed by.
func (x *mux[K]) PendingHandles(buf []*comm.RecvHandle) []*comm.RecvHandle {
	if x.db != nil {
		buf = append(buf, x.db)
	}
	for _, sl := range x.slots {
		if sl.pending != nil {
			buf = append(buf, sl.pending)
		}
	}
	// Only the FIFO head of the bulk-PQ queue can be suspended.
	if len(x.pqQ) > 0 && x.pqQ[0].pending != nil {
		buf = append(buf, x.pqQ[0].pending)
	}
	return buf
}

func (x *mux[K]) Step(pe *comm.PE) *comm.RecvHandle {
	if x.db == nil && !x.closing {
		x.db = pe.IRecv(pe.ExternalSrc(), doorbellTag)
	}
	for {
		progress := false
		if x.db != nil && x.db.Test() {
			rx, _ := x.db.Wait()
			x.db = nil
			progress = true
			if o, _ := rx.(*op[K]); o != nil && len(o.queries) > 0 {
				for _, q := range o.queries {
					x.addSlot(pe, q)
				}
				x.db = pe.IRecv(pe.ExternalSrc(), doorbellTag)
			} else {
				x.closing = true
			}
		}
		// Sweep the slots; completed ones swap-delete out. A slot's Step
		// runs its query as far as arrived messages allow — it returns
		// only when suspended (or done), so each sweep gives every
		// runnable tenant one burst.
		for i := 0; i < len(x.slots); {
			sl := x.slots[i]
			if sl.pending != nil && !sl.pending.Test() {
				i++
				continue
			}
			sl.pending = nil
			progress = true
			if x.stepSlot(pe, sl) {
				last := len(x.slots) - 1
				x.slots[i] = x.slots[last]
				x.slots[last] = nil
				x.slots = x.slots[:last]
				continue
			}
			i++
		}
		// Bulk-PQ FIFO: step only the head; the next query starts after
		// the head retires, so the resident queue mutates in dispatch
		// order on every PE.
		if len(x.pqQ) > 0 {
			sl := x.pqQ[0]
			if sl.pending == nil || sl.pending.Test() {
				sl.pending = nil
				progress = true
				if x.stepSlot(pe, sl) {
					copy(x.pqQ, x.pqQ[1:])
					x.pqQ[len(x.pqQ)-1] = nil
					x.pqQ = x.pqQ[:len(x.pqQ)-1]
				}
			}
		}
		if !progress {
			if x.closing && len(x.slots) == 0 && len(x.pqQ) == 0 {
				return nil // retired: poison consumed, tenants drained
			}
			// Suspend. The returned handle is what single-waiter drivers
			// block on; MultiWaiter-aware drivers (RunSteps, RunAsync)
			// collect the full set via PendingHandles instead.
			if x.db != nil {
				return x.db
			}
			if len(x.slots) > 0 {
				return x.slots[0].pending
			}
			return x.pqQ[0].pending
		}
	}
}

// addSlot starts a dispatched query on this PE. For Kth the per-query
// RNG seed makes the pivot walk (and so the meter) independent of
// interleaving; DeleteMin draws from the resident queue's own streams,
// which the FIFO consumes in dispatch order.
func (x *mux[K]) addSlot(pe *comm.PE, q *query[K]) {
	sl := &slot[K]{q: q}
	pe.SetCtx(q.ctx)
	switch q.kind {
	case kindPQ:
		if x.pq == nil {
			// Materialize the resident queue from the shard. Local-only
			// (insert is communication-free), seeded identically across
			// servers, so the trajectory matches any dispatch schedule.
			x.pq = bpq.New[K](pe, x.srv.cfg.Seed)
			x.pq.InsertBulk(x.shard)
		}
		sl.step = x.pq.DeleteMinStep(q.k, func(_ []K, v K, n int64) { sl.res, sl.resN = v, n })
		x.pqQ = append(x.pqQ, sl)
	case kindFreq:
		p := freq.Params{K: int(q.k), Eps: x.srv.cfg.FreqEps, Delta: x.srv.cfg.FreqDelta}
		sl.step = freq.PACStep(pe, x.srv.freqShards[pe.Rank()], p, xrand.NewPE(q.seed, pe.Rank()),
			func(r freq.Result) { sl.items = r.Items })
		x.slots = append(x.slots, sl)
	default:
		sl.step = sel.KthStep(pe, x.shard, q.k, xrand.NewPE(q.seed, pe.Rank()), func(v K) { sl.res = v })
		x.slots = append(x.slots, sl)
	}
	pe.SetCtx(0)
}

// stepSlot runs one tenant burst under its context, attributing the
// traffic it performs (sent words and message startups, exact deltas of
// this PE's counters around the burst) to its query. Reports completion.
func (x *mux[K]) stepSlot(pe *comm.PE, sl *slot[K]) (done bool) {
	w0, s0 := pe.SentWords(), pe.Sends()
	pe.SetCtx(sl.q.ctx)
	h := sl.step.Step(pe)
	pe.SetCtx(0)
	if dw := pe.SentWords() - w0; dw != 0 {
		sl.q.words.Add(dw)
	}
	if ds := pe.Sends() - s0; ds != 0 {
		sl.q.sends.Add(ds)
	}
	if h != nil {
		sl.pending = h
		return false
	}
	// The stepper delivered on every PE; rank 0's copy is the ticket's.
	if pe.Rank() == 0 {
		sl.q.t.res = sl.res
		sl.q.t.n = sl.resN
		sl.q.t.items = sl.items
	}
	if sl.q.peLeft.Add(-1) == 0 {
		x.srv.finishQuery(sl.q)
	}
	return true
}
