// Package serve is the multi-tenant query-serving front end over one
// simulated machine: an admission queue, a batching dispatcher, and a
// per-PE tenant multiplexer that interleaves many concurrent selection
// queries — each under its own leased communication context — on the
// machine's single scheduler.
//
// The paper's algorithms are phrased as one SPMD program at a time; a
// serving deployment instead sees an open stream of independent top-k
// queries against resident shards. Running them back-to-back leaves the
// machine idle during every query's communication stalls. The pieces
// here overlap those stalls: every query leases a comm.Ctx, so its
// collective traffic is invisible to every other query's, and the per-PE
// mux steps whichever query's messages have arrived (comm.MultiWaiter
// suspension arms all pending (src, ctx) keys at once). Throughput
// rises with inflight depth while each query's metered words/sends stay
// bit-identical to a sequential run — pinned by the differential test.
//
// Lifecycle: NewServer starts the machine body (RunAsync on the mailbox
// backend; a blocking RunSteps body on the channel matrix, which serves
// as the small-p differential reference) and the dispatcher. Submit
// (Kth) is non-blocking admission: a full queue returns ErrOverloaded —
// the caller sheds load instead of queueing unboundedly. Close drains,
// posts a poison doorbell, and waits for the muxes to retire. The
// machine itself stays owned by the caller (Close does not close it),
// so one machine can outlive many server generations.
//
// Not supported: the channel matrix with AsyncSendBuffer (buffered
// posting parks without offering sends inside the serving mux's
// multi-key wait, which can deadlock the reference backend; the mailbox
// backend has no such coupling).
package serve

import (
	"cmp"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"commtopk/internal/comm"
	"commtopk/internal/dht"
)

var (
	// ErrOverloaded is returned by Submit when the admission queue is
	// full — open-loop callers drop or retry with backoff.
	ErrOverloaded = errors.New("serve: admission queue full")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("serve: server closed")
	// ErrCanceled is returned by Ticket.Wait for queries canceled while
	// still queued.
	ErrCanceled = errors.New("serve: query canceled")
	// ErrDeadlineExpired is returned — by KthDeadline/DeleteMinDeadline at
	// submission, or by Ticket.Wait for queries that aged out while queued
	// — when a query's admission deadline passes before the query occupies
	// a context lease. Distinct from ErrOverloaded: the queue had room,
	// but the answer would have arrived too late to matter.
	ErrDeadlineExpired = errors.New("serve: admission deadline expired")
)

// doorbellTag marks doorbell messages. The (ExternalSrc, ctx 0) stream
// carries nothing else, so any fixed tag below the collective tag space
// (1<<32 | seq) works.
const doorbellTag = comm.Tag(0x0d00)

// Config tunes the admission front end. Zero values select defaults.
type Config struct {
	// QueueDepth bounds the submission queue (default 256). Admission
	// beyond it fails fast with ErrOverloaded.
	QueueDepth int
	// MaxInflight bounds concurrently executing queries — the number of
	// simultaneously leased communication contexts (default 4).
	// MaxInflight == 1 is the sequential baseline the benchmark and the
	// differential test compare against.
	MaxInflight int
	// BatchMax bounds how many queued queries one doorbell dispatches
	// (default 8): same-shape queries coalesce into one bulk op, paying
	// one doorbell startup per PE for the whole batch.
	BatchMax int
	// Seed derives per-query RNG streams (query i uses Seed+i on every
	// PE via xrand.NewPE), making every query's pivot walk — and with it
	// its meter — reproducible independent of interleaving.
	Seed int64
	// FreqEps/FreqDelta are the (ε, δ) guarantees TopKFreq queries run
	// under (defaults 0.02 and 0.01). Per-server, not per-query: the
	// sampling rate they imply is a property of the resident data set.
	FreqEps   float64
	FreqDelta float64
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 8
	}
	if c.FreqEps <= 0 {
		c.FreqEps = 0.02
	}
	if c.FreqDelta <= 0 {
		c.FreqDelta = 0.01
	}
	return c
}

// Query kinds. Kth selections and TopKFreq heavy-hitter queries run
// against the immutable shards and may interleave freely; bulk-PQ
// operations mutate the resident queue and are serialized per mux in
// dispatch order (see mux.pqQ).
const (
	kindKth = iota
	kindPQ
	kindFreq
)

// query is the shared per-query record all p mux slots work on.
type query[K cmp.Ordered] struct {
	kind     int
	k        int64
	seed     int64
	deadline time.Time // zero: no admission deadline
	ctx      comm.Ctx
	t        *Ticket[K]
	// peLeft counts PEs still running this query's stepper; the PE that
	// takes it to zero releases the context lease and completes the
	// ticket.
	peLeft     atomic.Int32
	dispatched atomic.Bool
	words      atomic.Int64 // sent words, summed over PEs
	sends      atomic.Int64 // messages, summed over PEs
}

// Ticket is a submitted query's handle.
type Ticket[K cmp.Ordered] struct {
	srv      *Server[K]
	q        *query[K]
	res      K
	n        int64
	items    []dht.KV
	err      error
	done     chan struct{}
	canceled atomic.Bool
}

// Wait blocks until the query completes (or the machine dies) and
// returns the query's scalar result: the element of global rank k for
// Kth, the agreed selection threshold for DeleteMin (zero K when the
// queue drained or was empty).
func (t *Ticket[K]) Wait() (K, error) {
	select {
	case <-t.done:
		return t.res, t.err
	case <-t.srv.runDone:
		// The machine body exited (abort or Close racing an in-flight
		// query); prefer a completed result if both races resolved.
		select {
		case <-t.done:
			return t.res, t.err
		default:
			var zero K
			if err := t.srv.runErr; err != nil {
				return zero, err
			}
			return zero, ErrClosed
		}
	}
}

// Cancel marks the query canceled. It reports true if the cancellation
// can still take effect — i.e. the query had not been dispatched to the
// PEs yet. A dispatched query runs to completion (its collectives are
// SPMD across all p PEs; there is no mid-collective abort that does not
// kill the machine) and Cancel returns false.
func (t *Ticket[K]) Cancel() bool {
	t.canceled.Store(true)
	return !t.q.dispatched.Load()
}

// BatchLen returns the realized global batch size of a DeleteMin query
// (min(k, queue size) — every PE agreed on it). Zero for Kth queries.
// Valid after Wait returns nil error.
func (t *Ticket[K]) BatchLen() int64 { return t.n }

// Items returns a TopKFreq query's heavy hitters, most frequent first
// (counts are 1/ρ-scaled estimates under the server's (ε, δ) config;
// identical on all PEs). Nil for Kth/DeleteMin queries. Valid after
// Wait returns nil error.
func (t *Ticket[K]) Items() []dht.KV { return t.items }

// Meters returns the query's attributed communication: words sent and
// messages sent, summed over all PEs, exactly the traffic its stepper
// performed. Valid after Wait returns nil error. The virtual clock is
// deliberately not attributed — under interleaving a PE's clock folds
// waits of whichever query resumed it, so per-query clock is not well
// defined; words and startups are, and they are what the differential
// test pins against sequential execution.
func (t *Ticket[K]) Meters() (words, sends int64) {
	return t.q.words.Load(), t.q.sends.Load()
}

// Server owns the serving state over one machine. Create with NewServer.
type Server[K cmp.Ordered] struct {
	m      *comm.Machine
	shards [][]K
	n      int64 // total elements across shards
	cfg    Config
	// freqShards is the uint64 view of shards (non-nil iff K is uint64);
	// the heavy-hitter query kind counts object identifiers, so it is
	// only available on servers whose resident keys are identifiers.
	freqShards [][]uint64

	mu      sync.RWMutex // guards subQ against Submit/Close races
	subQ    chan *query[K]
	sem     chan struct{} // MaxInflight lease tokens
	closed  atomic.Bool
	nextID  atomic.Int64
	batch   []*query[K] // dispatcher's reusable coalescing buffer
	runErr  error
	runDone chan struct{}
	dspDone chan struct{}
}

// NewServer starts serving queries against shards (shards[i] is PE i's
// resident data; read-only for the server's lifetime) on m. The machine
// must be idle; it stays busy until Close and remains owned by the
// caller afterwards.
func NewServer[K cmp.Ordered](m *comm.Machine, shards [][]K, cfg Config) (*Server[K], error) {
	if len(shards) != m.P() {
		return nil, fmt.Errorf("serve: %d shards for %d PEs", len(shards), m.P())
	}
	if m.Config().Backend == comm.BackendChannelMatrix && m.Config().AsyncSendBuffer {
		return nil, errors.New("serve: channel matrix with AsyncSendBuffer is not supported")
	}
	s := &Server[K]{
		m:       m,
		shards:  shards,
		cfg:     cfg.withDefaults(),
		runDone: make(chan struct{}),
		dspDone: make(chan struct{}),
	}
	for _, sh := range shards {
		s.n += int64(len(sh))
	}
	if fs, ok := any(s.shards).([][]uint64); ok {
		s.freqShards = fs
	}
	s.subQ = make(chan *query[K], s.cfg.QueueDepth)
	s.sem = make(chan struct{}, s.cfg.MaxInflight)
	go func() {
		var err error
		if m.Config().Backend == comm.BackendMailbox {
			err = m.RunAsync(func(pe *comm.PE) comm.Stepper { return newMux(s, pe) })
		} else {
			err = m.Run(func(pe *comm.PE) { comm.RunSteps(pe, newMux(s, pe)) })
		}
		s.runErr = err
		close(s.runDone)
	}()
	go s.dispatch()
	return s, nil
}

// Kth submits a query for the element of global rank k (1-based) among
// the union of all shards. Non-blocking: a full admission queue returns
// ErrOverloaded immediately.
func (s *Server[K]) Kth(k int64) (*Ticket[K], error) {
	if k < 1 || k > s.n {
		return nil, fmt.Errorf("serve: rank %d out of range [1, %d]", k, s.n)
	}
	return s.submit(kindKth, k, time.Time{})
}

// KthDeadline is Kth with an admission deadline: a query that has not
// occupied a context lease by then — already late at submission, or aged
// out while queued behind the MaxInflight window — is shed with
// ErrDeadlineExpired (at submission when possible, else via Wait) instead
// of wasting a lease on an answer nobody is waiting for. A query
// dispatched before the deadline runs to completion regardless of how
// long that takes; the deadline bounds queueing, not execution.
func (s *Server[K]) KthDeadline(k int64, deadline time.Time) (*Ticket[K], error) {
	if k < 1 || k > s.n {
		return nil, fmt.Errorf("serve: rank %d out of range [1, %d]", k, s.n)
	}
	return s.submit(kindKth, k, deadline)
}

// DeleteMin submits a bulk delete-min of global batch size min(k, queue
// size) against the server's resident priority queue — the second query
// kind. Every PE lazily materializes the queue from its shard at the
// first DeleteMin dispatch (shard keys must be globally unique for this
// query kind); the queue then mutates across DeleteMin queries, so the
// muxes execute them serialized in dispatch order while Kth queries —
// which keep serving the immutable shards — interleave freely around
// them. The popped elements stay resident on their PEs (owner-computes);
// the ticket surfaces the agreed threshold via Wait and the realized
// batch size via BatchLen. Non-blocking admission, like Kth.
func (s *Server[K]) DeleteMin(k int64) (*Ticket[K], error) {
	if k < 1 {
		return nil, fmt.Errorf("serve: batch size %d must be at least 1", k)
	}
	return s.submit(kindPQ, k, time.Time{})
}

// DeleteMinDeadline is DeleteMin with an admission deadline — the same
// shedding contract as KthDeadline.
func (s *Server[K]) DeleteMinDeadline(k int64, deadline time.Time) (*Ticket[K], error) {
	if k < 1 {
		return nil, fmt.Errorf("serve: batch size %d must be at least 1", k)
	}
	return s.submit(kindPQ, k, deadline)
}

// TopKFreq submits a heavy-hitter query: the k most frequent keys among
// the union of all shards, computed by the Section 7.1 PAC pipeline
// under the server's (FreqEps, FreqDelta) guarantee — the third query
// kind. Like Kth it serves the immutable shards, so it interleaves
// freely with every other query under its own context lease, with the
// same meter attribution; the per-query RNG seed pins its sampling and
// pivot walks independent of interleaving. Results arrive via
// Ticket.Items (identical on all PEs). Only available when K is uint64
// (the shard elements are the counted identifiers). Non-blocking
// admission, like Kth.
func (s *Server[K]) TopKFreq(k int) (*Ticket[K], error) {
	return s.TopKFreqDeadline(k, time.Time{})
}

// TopKFreqDeadline is TopKFreq with an admission deadline — the same
// shedding contract as KthDeadline.
func (s *Server[K]) TopKFreqDeadline(k int, deadline time.Time) (*Ticket[K], error) {
	if s.freqShards == nil {
		return nil, errors.New("serve: TopKFreq requires uint64 shards")
	}
	if k < 1 {
		return nil, fmt.Errorf("serve: top-k %d must be at least 1", k)
	}
	return s.submit(kindFreq, int64(k), deadline)
}

// submit builds the ticket and runs non-blocking admission.
func (s *Server[K]) submit(kind int, k int64, deadline time.Time) (*Ticket[K], error) {
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		return nil, ErrDeadlineExpired
	}
	t := &Ticket[K]{done: make(chan struct{}), srv: s}
	t.q = &query[K]{kind: kind, k: k, seed: s.cfg.Seed + s.nextID.Add(1), deadline: deadline, t: t}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	select {
	case s.subQ <- t.q:
		return t, nil
	default:
		return nil, ErrOverloaded
	}
}

// Close stops admission, drains dispatched queries, retires the per-PE
// muxes via a poison doorbell, and returns the machine body's error (nil
// on a clean drain). Idempotent. The machine is NOT closed — it belongs
// to the caller.
func (s *Server[K]) Close() error {
	if s.closed.CompareAndSwap(false, true) {
		s.mu.Lock()
		close(s.subQ)
		s.mu.Unlock()
	}
	<-s.dspDone
	<-s.runDone
	return s.runErr
}

// dispatch is the admission loop: dequeue, coalesce up to BatchMax
// queries, lease a context per query (blocking on the MaxInflight
// semaphore — backpressure lands in the bounded subQ, which is what
// Submit's ErrOverloaded reports against), and ring every PE's doorbell
// once per batch.
func (s *Server[K]) dispatch() {
	defer close(s.dspDone)
	p := s.m.P()
	for q := range s.subQ {
		s.batch = s.batch[:0]
		s.admit(q)
	coalesce:
		for len(s.batch) < s.cfg.BatchMax {
			select {
			case q2, ok := <-s.subQ:
				if !ok {
					break coalesce
				}
				s.admit(q2)
			default:
				break coalesce
			}
		}
		if len(s.batch) == 0 {
			continue
		}
		// Ring in sub-batches bounded by available inflight leases: a
		// doorbell must carry only leased queries, and leases must never
		// block behind queries this loop has not yet posted (a batch
		// larger than MaxInflight would otherwise deadlock on its own
		// tokens).
		pending := s.batch
		for len(pending) > 0 {
			if s.shedExpired(pending[0]) {
				pending = pending[1:]
				continue
			}
			s.sem <- struct{}{}
			k := 1
			for k < len(pending) {
				select {
				case s.sem <- struct{}{}:
					k++
					continue
				default:
				}
				break
			}
			grant := pending[:k]
			pending = pending[k:]
			// The blocking lease acquisition above is where a queued query
			// spends its life under load — re-check deadlines on the way
			// out, returning the token of anything that aged out rather
			// than burning a lease on it.
			live := grant[:0]
			for _, q := range grant {
				if s.shedExpired(q) {
					<-s.sem
					continue
				}
				live = append(live, q)
			}
			if len(live) == 0 {
				continue
			}
			for _, q := range live {
				q.ctx = s.m.NewContext()
				q.peLeft.Store(int32(p))
				q.dispatched.Store(true)
			}
			o := &op[K]{queries: append([]*query[K](nil), live...)}
			for dst := 0; dst < p; dst++ {
				s.m.Post(dst, 0, doorbellTag, o, 1)
			}
		}
	}
	// Admission closed and every batch dispatched: poison the muxes.
	// In-flight queries finish first — the mux only retires once its
	// slots drain.
	for dst := 0; dst < p; dst++ {
		s.m.Post(dst, 0, doorbellTag, (*op[K])(nil), 1)
	}
}

// admit moves a dequeued query into the current batch, resolving queued
// cancellations and expired deadlines.
func (s *Server[K]) admit(q *query[K]) {
	if q.t.canceled.Load() {
		q.t.err = ErrCanceled
		close(q.t.done)
		return
	}
	if s.shedExpired(q) {
		return
	}
	s.batch = append(s.batch, q)
}

// shedExpired completes an aged-out query with ErrDeadlineExpired. Only
// the dispatcher calls it, and only before the query is dispatched, so
// the ticket's done channel cannot be closed twice.
func (s *Server[K]) shedExpired(q *query[K]) bool {
	if q.deadline.IsZero() || time.Now().Before(q.deadline) {
		return false
	}
	q.t.err = ErrDeadlineExpired
	close(q.t.done)
	return true
}

// finishQuery runs on whichever PE decrements peLeft to zero: all p
// steppers have retired, so no traffic under the context remains and the
// lease can recycle.
func (s *Server[K]) finishQuery(q *query[K]) {
	s.m.ReleaseContext(q.ctx)
	<-s.sem
	close(q.t.done)
}
