package serve

import (
	"reflect"
	"testing"

	"commtopk/internal/comm"
	"commtopk/internal/dht"
	"commtopk/internal/xrand"
)

// freqQuery is one entry of a Kth/TopKFreq workload: freq selects the
// heavy-hitter kind (k is the top-k size), otherwise k is a rank.
type freqQuery struct {
	freq bool
	k    int64
}

// freqOutcome is one query's observable including the heavy-hitter item
// list (nil for Kth queries).
type freqOutcome struct {
	res   uint64
	items []dht.KV
	words int64
	sends int64
}

// runServedFreq executes a mixed Kth/TopKFreq workload, sequentially or
// fully concurrently, returning per-query outcomes in submission order.
func runServedFreq(t *testing.T, m *comm.Machine, shards [][]uint64, queries []freqQuery, cfg Config, concurrent bool) []freqOutcome {
	t.Helper()
	s, err := NewServer(m, shards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	submit := func(q freqQuery) *Ticket[uint64] {
		var tk *Ticket[uint64]
		var err error
		if q.freq {
			tk, err = s.TopKFreq(int(q.k))
		} else {
			tk, err = s.Kth(q.k)
		}
		if err != nil {
			t.Fatalf("submit %+v: %v", q, err)
		}
		return tk
	}
	out := make([]freqOutcome, len(queries))
	collect := func(i int, tk *Ticket[uint64]) {
		res, err := tk.Wait()
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		w, sd := tk.Meters()
		out[i] = freqOutcome{res: res, items: tk.Items(), words: w, sends: sd}
	}
	if concurrent {
		tickets := make([]*Ticket[uint64], len(queries))
		for i, q := range queries {
			tickets[i] = submit(q)
		}
		for i, tk := range tickets {
			collect(i, tk)
		}
	} else {
		for i, q := range queries {
			collect(i, submit(q))
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

// mkSkewedShards builds p shards with a heavily skewed key distribution
// (key u appears roughly proportional to 1/(u+1)) so TopKFreq has real
// heavy hitters, plus the exact global counts.
func mkSkewedShards(p int, seed int64) ([][]uint64, map[uint64]int64) {
	rng := xrand.New(seed)
	shards := make([][]uint64, p)
	exact := map[uint64]int64{}
	for r := range shards {
		n := 1500 + r*67%500
		sh := make([]uint64, n)
		for j := range sh {
			// Two geometric-ish draws folded: small keys dominate.
			u := rng.Uint64() % 64
			v := rng.Uint64() % (u + 1)
			sh[j] = v
			exact[v]++
		}
		shards[r] = sh
	}
	return shards, exact
}

// TestServeFreqConcurrentMatchesSequential extends the serving
// differential to the third query kind: a workload mixing Kth
// selections with TopKFreq heavy-hitter queries must produce
// bit-identical per-query answers, item lists, AND attributed meters
// whether run strictly one at a time or at full inflight depth, on both
// in-process backends, with the mailbox scheduler squeezed to w < p.
// TopKFreq runs the whole PAC pipeline (sampling, DHT routing, shard
// top-k selection) under a leased context, so this pins that its
// multi-collective chain — including the ctx-scoped scratch and RNG
// streams — does not leak between tenants.
func TestServeFreqConcurrentMatchesSequential(t *testing.T) {
	const p = 8
	shards, _ := mkSkewedShards(p, 77)
	var sorted []uint64
	for _, sh := range shards {
		sorted = append(sorted, sh...)
	}
	n := int64(len(sorted))
	queries := []freqQuery{
		{true, 4}, {false, 1}, {true, 8}, {false, n / 2},
		{false, n}, {true, 2}, {true, 4}, {false, 17},
		{true, 6}, {false, n / 3},
	}
	for _, tc := range []struct {
		name string
		cfg  comm.Config
	}{
		{"mailbox-wltp", func() comm.Config { c := comm.MailboxConfig(p); c.Workers = 3; return c }()},
		{"matrix", comm.MatrixConfig(p)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seqM := comm.NewMachine(tc.cfg)
			defer seqM.Close()
			seq := runServedFreq(t, seqM, shards, queries, Config{MaxInflight: 1, BatchMax: 1, Seed: 61}, false)
			conM := comm.NewMachine(tc.cfg)
			defer conM.Close()
			con := runServedFreq(t, conM, shards, queries, Config{MaxInflight: 6, BatchMax: 4, Seed: 61}, true)
			for i, q := range queries {
				if !reflect.DeepEqual(seq[i], con[i]) {
					t.Errorf("query %d (%+v): outcomes diverge\n  sequential: %+v\n  concurrent: %+v",
						i, q, seq[i], con[i])
				}
				if q.freq {
					if len(seq[i].items) != int(q.k) {
						t.Errorf("query %d: TopKFreq returned %d items, want %d", i, len(seq[i].items), q.k)
					}
					for j := 1; j < len(seq[i].items); j++ {
						if seq[i].items[j].Count > seq[i].items[j-1].Count {
							t.Errorf("query %d: items not sorted by count desc", i)
						}
					}
				}
			}
		})
	}
}
