package serve

import (
	"errors"
	"testing"
	"time"

	"commtopk/internal/comm"
	"commtopk/internal/xrand"
)

// TestDeadlineExpiredAtSubmit: a deadline already in the past is shed
// synchronously with the distinct error — no ticket, no queue slot.
func TestDeadlineExpiredAtSubmit(t *testing.T) {
	const p = 4
	shards, _ := mkShards(p, 5)
	m := comm.NewMachine(comm.MailboxConfig(p))
	defer m.Close()
	s, err := NewServer(m, shards, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	past := time.Now().Add(-time.Second)
	if tk, err := s.KthDeadline(1, past); !errors.Is(err, ErrDeadlineExpired) || tk != nil {
		t.Fatalf("KthDeadline(past) = %v, %v; want nil, ErrDeadlineExpired", tk, err)
	}
	if tk, err := s.DeleteMinDeadline(3, past); !errors.Is(err, ErrDeadlineExpired) || tk != nil {
		t.Fatalf("DeleteMinDeadline(past) = %v, %v; want nil, ErrDeadlineExpired", tk, err)
	}
	// A zero deadline means none: the plain path still works.
	tk, err := s.KthDeadline(1, time.Now().Add(time.Hour))
	if err != nil {
		t.Fatalf("KthDeadline(future): %v", err)
	}
	if _, err := tk.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

// TestDeadlineExpiredWhileQueued: with MaxInflight=1 and a long query
// holding the sole lease, a short-deadline query ages out in the queue
// and is shed — with the distinct error, before occupying a context
// lease — when the dispatcher reaches it.
func TestDeadlineExpiredWhileQueued(t *testing.T) {
	const p = 4
	// Big shards make the blocker query take real wall time (tens of ms),
	// dwarfing the follower's deadline.
	rng := xrand.New(9)
	shards := make([][]uint64, p)
	var n int64
	for i := range shards {
		sh := make([]uint64, 1<<19)
		for j := range sh {
			sh[j] = rng.Uint64()
		}
		shards[i] = sh
		n += int64(len(sh))
	}
	m := comm.NewMachine(comm.MailboxConfig(p))
	defer m.Close()
	s, err := NewServer(m, shards, Config{Seed: 2, MaxInflight: 1, BatchMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	blocker, err := s.Kth(n / 2)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := s.KthDeadline(n/3, time.Now().Add(time.Millisecond))
	if err != nil {
		// The dispatcher cannot have drained the blocker yet, so the only
		// legal submit-time failure is a deadline that lapsed before
		// submit's own clock check.
		if !errors.Is(err, ErrDeadlineExpired) {
			t.Fatalf("KthDeadline: %v", err)
		}
		return
	}
	if _, werr := tk.Wait(); !errors.Is(werr, ErrDeadlineExpired) {
		t.Fatalf("queued query Wait = %v; want ErrDeadlineExpired", werr)
	}
	if _, err := blocker.Wait(); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	// The shed query's lease was never taken: the server still serves.
	after, err := s.Kth(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := after.Wait(); err != nil {
		t.Fatalf("post-shed query: %v", err)
	}
}
