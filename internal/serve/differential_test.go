package serve

import (
	"testing"

	"commtopk/internal/comm"
)

// queryOutcome is one query's observable: its answer and its attributed
// meter (words + startups summed over PEs).
type queryOutcome struct {
	res   uint64
	words int64
	sends int64
}

// runServed executes the fixed query set against a fresh server on m,
// either strictly sequentially (submit → wait → submit) or fully
// concurrently (submit all, wait all), and returns per-query outcomes in
// submission order.
func runServed(t *testing.T, m *comm.Machine, shards [][]uint64, ranks []int64, cfg Config, concurrent bool) []queryOutcome {
	t.Helper()
	s, err := NewServer(m, shards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]queryOutcome, len(ranks))
	collect := func(i int, tk *Ticket[uint64]) {
		res, err := tk.Wait()
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		w, sd := tk.Meters()
		out[i] = queryOutcome{res: res, words: w, sends: sd}
	}
	if concurrent {
		tickets := make([]*Ticket[uint64], len(ranks))
		for i, k := range ranks {
			tk, err := s.Kth(k)
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			tickets[i] = tk
		}
		for i, tk := range tickets {
			collect(i, tk)
		}
	} else {
		for i, k := range ranks {
			tk, err := s.Kth(k)
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			collect(i, tk)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServeConcurrentMatchesSequential is the serving layer's
// differential: N tagged queries interleaved at full inflight depth must
// be bit-identical — answers AND per-query attributed meters — to the
// same queries run strictly one at a time, on both backends, with the
// mailbox scheduler squeezed to w < p (the regime where suspended
// tenants genuinely share workers). Per-query RNG streams are derived
// from the submission index, so the pivot walks are interleaving-
// independent by construction; this test pins that nothing else (tag
// allocation, scratch, context demux, meter attribution) leaks between
// tenants either.
func TestServeConcurrentMatchesSequential(t *testing.T) {
	const p = 8
	shards, sorted := mkShards(p, 17)
	ranks := []int64{1, 3, 500, 999, 42, int64(len(sorted)), 7, 7, 250, 250, 123, 1000}
	for _, tc := range []struct {
		name string
		cfg  comm.Config
	}{
		{"mailbox-wltp", func() comm.Config { c := comm.MailboxConfig(p); c.Workers = 3; return c }()},
		{"matrix", comm.MatrixConfig(p)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seqM := comm.NewMachine(tc.cfg)
			defer seqM.Close()
			seq := runServed(t, seqM, shards, ranks, Config{MaxInflight: 1, BatchMax: 1, Seed: 29}, false)
			conM := comm.NewMachine(tc.cfg)
			defer conM.Close()
			con := runServed(t, conM, shards, ranks, Config{MaxInflight: 6, BatchMax: 4, Seed: 29}, true)
			for i := range ranks {
				if want := sorted[ranks[i]-1]; seq[i].res != want {
					t.Errorf("query %d (rank %d): sequential got %d want %d", i, ranks[i], seq[i].res, want)
				}
				if seq[i] != con[i] {
					t.Errorf("query %d (rank %d): outcomes diverge\n  sequential: %+v\n  concurrent: %+v",
						i, ranks[i], seq[i], con[i])
				}
			}
		})
	}
}
