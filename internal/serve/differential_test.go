package serve

import (
	"slices"
	"testing"

	"commtopk/internal/comm"
	"commtopk/internal/xrand"
)

// queryOutcome is one query's observable: its answer, its realized
// batch size (DeleteMin only), and its attributed meter (words +
// startups summed over PEs).
type queryOutcome struct {
	res   uint64
	n     int64
	words int64
	sends int64
}

// runServed executes the fixed query set against a fresh server on m,
// either strictly sequentially (submit → wait → submit) or fully
// concurrently (submit all, wait all), and returns per-query outcomes in
// submission order.
func runServed(t *testing.T, m *comm.Machine, shards [][]uint64, ranks []int64, cfg Config, concurrent bool) []queryOutcome {
	t.Helper()
	s, err := NewServer(m, shards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]queryOutcome, len(ranks))
	collect := func(i int, tk *Ticket[uint64]) {
		res, err := tk.Wait()
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		w, sd := tk.Meters()
		out[i] = queryOutcome{res: res, n: tk.BatchLen(), words: w, sends: sd}
	}
	if concurrent {
		tickets := make([]*Ticket[uint64], len(ranks))
		for i, k := range ranks {
			tk, err := s.Kth(k)
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			tickets[i] = tk
		}
		for i, tk := range tickets {
			collect(i, tk)
		}
	} else {
		for i, k := range ranks {
			tk, err := s.Kth(k)
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			collect(i, tk)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServeConcurrentMatchesSequential is the serving layer's
// differential: N tagged queries interleaved at full inflight depth must
// be bit-identical — answers AND per-query attributed meters — to the
// same queries run strictly one at a time, on both backends, with the
// mailbox scheduler squeezed to w < p (the regime where suspended
// tenants genuinely share workers). Per-query RNG streams are derived
// from the submission index, so the pivot walks are interleaving-
// independent by construction; this test pins that nothing else (tag
// allocation, scratch, context demux, meter attribution) leaks between
// tenants either.
// mixedQuery is one entry of a mixed-kind workload: pq selects the
// query type submitted with batch/rank size k.
type mixedQuery struct {
	pq bool
	k  int64
}

// runServedMixed executes a mixed Kth/DeleteMin workload against a
// fresh server on m, sequentially or fully concurrently, returning
// per-query outcomes in submission order.
func runServedMixed(t *testing.T, m *comm.Machine, shards [][]uint64, queries []mixedQuery, cfg Config, concurrent bool) []queryOutcome {
	t.Helper()
	s, err := NewServer(m, shards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	submit := func(q mixedQuery) *Ticket[uint64] {
		var tk *Ticket[uint64]
		var err error
		if q.pq {
			tk, err = s.DeleteMin(q.k)
		} else {
			tk, err = s.Kth(q.k)
		}
		if err != nil {
			t.Fatalf("submit %+v: %v", q, err)
		}
		return tk
	}
	out := make([]queryOutcome, len(queries))
	collect := func(i int, tk *Ticket[uint64]) {
		res, err := tk.Wait()
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		w, sd := tk.Meters()
		out[i] = queryOutcome{res: res, n: tk.BatchLen(), words: w, sends: sd}
	}
	if concurrent {
		tickets := make([]*Ticket[uint64], len(queries))
		for i, q := range queries {
			tickets[i] = submit(q)
		}
		for i, tk := range tickets {
			collect(i, tk)
		}
	} else {
		for i, q := range queries {
			collect(i, submit(q))
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

// mkUniqueShards builds p shards of globally unique keys (the DeleteMin
// query kind's precondition) plus the sorted union oracle.
func mkUniqueShards(p int, seed int64) (shards [][]uint64, sorted []uint64) {
	rng := xrand.New(seed)
	shards = make([][]uint64, p)
	for r := range shards {
		n := 40 + r*13%30
		sh := make([]uint64, n)
		for j := range sh {
			// High bits random, low bits a global sequence number: unique
			// by construction, order dominated by the random bits.
			sh[j] = rng.Uint64()<<20 | uint64(len(sorted))
			sorted = append(sorted, sh[j])
		}
		shards[r] = sh
	}
	slices.Sort(sorted)
	return shards, sorted
}

// TestServeMixedKindsConcurrentMatchesSequential extends the serving
// differential to the second query kind: a workload mixing Kth
// selections with resident-queue DeleteMin batches must produce
// bit-identical per-query answers, batch sizes, AND attributed meters
// whether run strictly one at a time or at full inflight depth, on both
// backends, with the mailbox scheduler squeezed to w < p. DeleteMin
// queries mutate shared state, so this additionally pins the mux's FIFO
// serialization: the resident queue's mutation (and RNG-stream) order
// must equal dispatch order on every PE regardless of interleaving.
func TestServeMixedKindsConcurrentMatchesSequential(t *testing.T) {
	const p = 8
	shards, sorted := mkUniqueShards(p, 23)
	n := int64(len(sorted))
	queries := []mixedQuery{
		{false, 1}, {true, 5}, {false, n / 2}, {true, 1},
		{true, 37}, {false, n}, {false, 7}, {true, 64},
		{true, 11}, {false, n / 3}, {true, 3}, {false, 2},
	}
	// Oracle: Kth answers come from the immutable union; DeleteMin pops
	// the globally smallest remaining keys in submission order.
	remaining := append([]uint64(nil), sorted...)
	want := make([]queryOutcome, len(queries))
	for i, q := range queries {
		if !q.pq {
			want[i].res = sorted[q.k-1]
			continue
		}
		take := q.k
		if take > int64(len(remaining)) {
			take = int64(len(remaining))
		}
		want[i].n = take
		if take == q.k && take > 0 {
			want[i].res = remaining[take-1] // exact path: threshold = batch max
		}
		remaining = remaining[take:]
	}
	for _, tc := range []struct {
		name string
		cfg  comm.Config
	}{
		{"mailbox-wltp", func() comm.Config { c := comm.MailboxConfig(p); c.Workers = 3; return c }()},
		{"matrix", comm.MatrixConfig(p)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seqM := comm.NewMachine(tc.cfg)
			defer seqM.Close()
			seq := runServedMixed(t, seqM, shards, queries, Config{MaxInflight: 1, BatchMax: 1, Seed: 31}, false)
			conM := comm.NewMachine(tc.cfg)
			defer conM.Close()
			con := runServedMixed(t, conM, shards, queries, Config{MaxInflight: 6, BatchMax: 4, Seed: 31}, true)
			for i, q := range queries {
				if seq[i].res != want[i].res || seq[i].n != want[i].n {
					t.Errorf("query %d (%+v): sequential got (res %d, n %d) want (res %d, n %d)",
						i, q, seq[i].res, seq[i].n, want[i].res, want[i].n)
				}
				if seq[i] != con[i] {
					t.Errorf("query %d (%+v): outcomes diverge\n  sequential: %+v\n  concurrent: %+v",
						i, q, seq[i], con[i])
				}
			}
		})
	}
}

func TestServeConcurrentMatchesSequential(t *testing.T) {
	const p = 8
	shards, sorted := mkShards(p, 17)
	ranks := []int64{1, 3, 500, 999, 42, int64(len(sorted)), 7, 7, 250, 250, 123, 1000}
	for _, tc := range []struct {
		name string
		cfg  comm.Config
	}{
		{"mailbox-wltp", func() comm.Config { c := comm.MailboxConfig(p); c.Workers = 3; return c }()},
		{"matrix", comm.MatrixConfig(p)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seqM := comm.NewMachine(tc.cfg)
			defer seqM.Close()
			seq := runServed(t, seqM, shards, ranks, Config{MaxInflight: 1, BatchMax: 1, Seed: 29}, false)
			conM := comm.NewMachine(tc.cfg)
			defer conM.Close()
			con := runServed(t, conM, shards, ranks, Config{MaxInflight: 6, BatchMax: 4, Seed: 29}, true)
			for i := range ranks {
				if want := sorted[ranks[i]-1]; seq[i].res != want {
					t.Errorf("query %d (rank %d): sequential got %d want %d", i, ranks[i], seq[i].res, want)
				}
				if seq[i] != con[i] {
					t.Errorf("query %d (rank %d): outcomes diverge\n  sequential: %+v\n  concurrent: %+v",
						i, ranks[i], seq[i], con[i])
				}
			}
		})
	}
}
