package serve

import (
	"slices"
	"sync"
	"testing"

	"commtopk/internal/comm"
	"commtopk/internal/xrand"
)

// mkShards builds p deterministic shards of varying length and returns
// them with the sorted union (the rank oracle).
func mkShards(p int, seed int64) (shards [][]uint64, sorted []uint64) {
	rng := xrand.New(seed)
	shards = make([][]uint64, p)
	for i := range shards {
		n := 200 + i*37%150
		sh := make([]uint64, n)
		for j := range sh {
			sh[j] = rng.Uint64() % 10000
		}
		shards[i] = sh
		sorted = append(sorted, sh...)
	}
	slices.Sort(sorted)
	return shards, sorted
}

// TestServeBasic pins the end-to-end path on the default backend:
// submitted rank queries come back with the exact order statistic, and
// Close drains cleanly.
func TestServeBasic(t *testing.T) {
	const p = 8
	shards, sorted := mkShards(p, 3)
	m := comm.NewMachine(comm.MailboxConfig(p))
	defer m.Close()
	s, err := NewServer(m, shards, Config{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	ranks := []int64{1, 7, int64(len(sorted) / 2), int64(len(sorted))}
	var tickets []*Ticket[uint64]
	for _, k := range ranks {
		tk, err := s.Kth(k)
		if err != nil {
			t.Fatalf("Kth(%d): %v", k, err)
		}
		tickets = append(tickets, tk)
	}
	for i, tk := range tickets {
		got, err := tk.Wait()
		if err != nil {
			t.Fatalf("rank %d: %v", ranks[i], err)
		}
		if want := sorted[ranks[i]-1]; got != want {
			t.Errorf("rank %d: got %d want %d", ranks[i], got, want)
		}
		if w, sd := tk.Meters(); w <= 0 || sd <= 0 {
			t.Errorf("rank %d: empty meters (%d words, %d sends)", ranks[i], w, sd)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The machine is reusable after the server retires.
	m.MustRun(func(pe *comm.PE) {})
}

// TestServeRankValidationAndOverload pins the admission edge cases:
// out-of-range ranks are rejected before touching the queue, a full
// queue sheds with ErrOverloaded, submissions after Close fail with
// ErrClosed, and a queued query can be canceled.
func TestServeRankValidationAndOverload(t *testing.T) {
	const p = 4
	shards, _ := mkShards(p, 5)
	m := comm.NewMachine(comm.MailboxConfig(p))
	defer m.Close()
	var n int64
	for _, sh := range shards {
		n += int64(len(sh))
	}
	s, err := NewServer(m, shards, Config{QueueDepth: 1, MaxInflight: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Kth(0); err == nil {
		t.Error("rank 0 admitted")
	}
	if _, err := s.Kth(n + 1); err == nil {
		t.Error("rank n+1 admitted")
	}
	// Saturate: with depth 1 and inflight 1, repeated submission must
	// eventually shed. (The dispatcher may drain a few promptly.)
	var tickets []*Ticket[uint64]
	overloaded := false
	for i := 0; i < 1000 && !overloaded; i++ {
		tk, err := s.Kth(1 + int64(i)%n)
		switch err {
		case nil:
			tickets = append(tickets, tk)
		case ErrOverloaded:
			overloaded = true
		default:
			t.Fatalf("unexpected admission error: %v", err)
		}
	}
	if !overloaded {
		t.Error("bounded queue never shed load")
	}
	// Cancel the youngest queued ticket; canceled-while-queued must
	// surface ErrCanceled from Wait.
	last := tickets[len(tickets)-1]
	if last.Cancel() {
		if _, err := last.Wait(); err != ErrCanceled {
			t.Errorf("canceled query: Wait err = %v", err)
		}
		tickets = tickets[:len(tickets)-1]
	}
	for _, tk := range tickets {
		if _, err := tk.Wait(); err != nil && err != ErrCanceled {
			t.Fatalf("Wait: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Kth(1); err != ErrClosed {
		t.Errorf("post-Close submit err = %v", err)
	}
}

// TestServeMatrixUnsupportedAsyncBuf pins the documented hole: the
// channel matrix with buffered posting is rejected at construction, not
// discovered as a deadlock.
func TestServeMatrixUnsupportedAsyncBuf(t *testing.T) {
	cfg := comm.MatrixConfig(2)
	cfg.AsyncSendBuffer = true
	m := comm.NewMachine(cfg)
	defer m.Close()
	if _, err := NewServer(m, make([][]uint64, 2), Config{}); err == nil {
		t.Fatal("AsyncSendBuffer matrix accepted")
	}
}

// TestServeConcurrentStress is the -race job: many goroutines submit
// against one server at full inflight depth while results are verified
// against the oracle. Exercises keyed demux, context leasing, ArmKeys
// suspension, and completion accounting under real contention.
func TestServeConcurrentStress(t *testing.T) {
	const p, submitters, each = 16, 8, 25
	shards, sorted := mkShards(p, 11)
	m := comm.NewMachine(comm.MailboxConfig(p))
	defer m.Close()
	s, err := NewServer(m, shards, Config{QueueDepth: submitters * each, MaxInflight: 8, BatchMax: 4, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	n := int64(len(sorted))
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := xrand.New(int64(100 + g))
			for i := 0; i < each; i++ {
				k := 1 + int64(rng.Uint64()%uint64(n))
				tk, err := s.Kth(k)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				got, err := tk.Wait()
				if err != nil {
					t.Errorf("wait: %v", err)
					return
				}
				if want := sorted[k-1]; got != want {
					t.Errorf("rank %d: got %d want %d", k, got, want)
				}
			}
		}(g)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
