package mtopk

import (
	"commtopk/internal/sel"
)

// RegisterWireCodecs registers the payload codecs the multicriteria
// algorithms put on a cross-process frame: the selection set over the
// OrdDesc-packed uint64 score keys (AMS selection, SmallestK) plus the
// float64 scalar carriers of the threshold/estimate reductions and the
// int64 carriers of the size/above-threshold count reductions. Call it
// from the shared registration package (see internal/wire/wireprogs) of
// every binary that runs mtopk programs on comm.BackendWire; idempotent.
func RegisterWireCodecs() {
	sel.RegisterWireCodecs[uint64]("u64")
	sel.RegisterWireCodecs[int64]("i64")
	sel.RegisterWireCodecs[float64]("f64")
}
