package mtopk

import (
	"reflect"
	"testing"

	"commtopk/internal/comm"
	"commtopk/internal/xrand"
)

// runOnce executes one full battery (DTA, RDTA, TopK) on a fresh machine
// and returns everything observable: per-PE results and the machine
// meters.
type mtopkObs struct {
	dta   []DTAResult
	rdta  [][]Hit
	topk  [][]Hit
	stats comm.Stats
}

func runBattery(p int, datas []*Data) mtopkObs {
	o := mtopkObs{dta: make([]DTAResult, p), rdta: make([][]Hit, p), topk: make([][]Hit, p)}
	mach := comm.NewMachine(comm.DefaultConfig(p))
	mach.MustRun(func(pe *comm.PE) {
		r := pe.Rank()
		o.dta[r] = DTA(pe, datas[r], SumScore, 9, xrand.NewPE(101, r))
		o.rdta[r] = RDTA(pe, datas[r], SumScore, 9, xrand.NewPE(103, r))
		o.topk[r], _ = TopK(pe, datas[r], SumScore, 9, xrand.NewPE(105, r))
	})
	o.stats = mach.Stats()
	return o
}

// TestMtopkRepeatedRunsBitIdentical pins the map-order satellite: with
// slice/Table-backed data structures there is no map iteration anywhere
// on the DTA/RDTA/TopK paths, so repeated runs over identical inputs
// must produce bit-identical results AND meters. Run with -count=5 in CI
// for the repeated-process variant.
func TestMtopkRepeatedRunsBitIdentical(t *testing.T) {
	const p = 6
	datas, _ := buildDistributed(41, p, 250, 3)
	ref := runBattery(p, datas)
	for rep := 0; rep < 4; rep++ {
		// Rebuild the data too: NewData itself must be deterministic.
		datas2, _ := buildDistributed(41, p, 250, 3)
		got := runBattery(p, datas2)
		if !reflect.DeepEqual(got.dta, ref.dta) {
			t.Fatalf("rep %d: DTA results diverged", rep)
		}
		if !reflect.DeepEqual(got.rdta, ref.rdta) {
			t.Fatalf("rep %d: RDTA results diverged", rep)
		}
		if !reflect.DeepEqual(got.topk, ref.topk) {
			t.Fatalf("rep %d: TopK results diverged", rep)
		}
		if got.stats != ref.stats {
			t.Fatalf("rep %d: meters diverged: %+v vs %+v", rep, got.stats, ref.stats)
		}
	}
}

// TestMtopkSteppersMatchBlocking pins the tentpole contract: the stepper
// forms under RunAsync produce bit-identical results and meters to the
// blocking forms (which drive the same engines through RunSteps).
func TestMtopkSteppersMatchBlocking(t *testing.T) {
	const p = 6
	datas, _ := buildDistributed(43, p, 250, 3)
	ref := runBattery(p, datas)

	got := mtopkObs{dta: make([]DTAResult, p), rdta: make([][]Hit, p), topk: make([][]Hit, p)}
	mach := comm.NewMachine(comm.DefaultConfig(p))
	mach.MustRunAsync(func(pe *comm.PE) comm.Stepper {
		r := pe.Rank()
		return comm.SeqP(pe,
			DTAStep(pe, datas[r], SumScore, 9, xrand.NewPE(101, r), func(v DTAResult) { got.dta[r] = v }),
			RDTAStep(pe, datas[r], SumScore, 9, xrand.NewPE(103, r), func(v []Hit) { got.rdta[r] = v }),
			TopKStep(pe, datas[r], SumScore, 9, xrand.NewPE(105, r), func(v []Hit, _ DTAResult) { got.topk[r] = v }),
		)
	})
	got.stats = mach.Stats()

	if !reflect.DeepEqual(got.dta, ref.dta) {
		t.Errorf("DTAStep diverged from blocking DTA")
	}
	if !reflect.DeepEqual(got.rdta, ref.rdta) {
		t.Errorf("RDTAStep diverged from blocking RDTA")
	}
	if !reflect.DeepEqual(got.topk, ref.topk) {
		t.Errorf("TopKStep diverged from blocking TopK")
	}
	if got.stats != ref.stats {
		t.Errorf("stepper meters diverged: %+v vs %+v", got.stats, ref.stats)
	}
}
