package mtopk

import (
	"math"

	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/sel"
	"commtopk/internal/xrand"
)

// Continuation forms of the Section 6 multicriteria algorithms,
// following the sel.KthStep template: pooled per-PE state
// (comm.GetPooled), cached result-delivery closures built once per
// pooled object, collective sub-steppers driven through the cur slot,
// and blocking forms that drive the same engines via comm.RunSteps —
// one implementation, both execution modes, bit-identical results, RNG
// consumption and meters. DTA's exponential search and RDTA's k̂
// doubling loop are re-entrant: every communication round suspends as
// data, so multicriteria queries run under Machine.RunAsync at O(w)
// mid-run goroutines and can ride the serve mux.

func addI64(a, b int64) int64     { return a + b }
func addF64(a, b float64) float64 { return a + b }

// dtaStep phases.
const (
	dphInit        = iota // start the global object-count sum
	dphNWait              // harvest n, start the first probe round
	dphListLoop           // dispatch the next list's prefix selection
	dphListMinWait        // whole-list prefix: harvest the min score
	dphListSelWait        // harvest the AMS selection for one list
	dphEstWait            // harvest the hit estimate; branch the search
	dphDone
)

// dtaStep — see DTAStep/DTAProbedStep.
type dtaStep struct {
	pe     *comm.PE
	d      *Data
	t      ScoreFunc
	k      int
	probes int
	rng    *xrand.RNG
	out    func(DTAResult)
	self   bool
	res    DTAResult

	nGlobal   int64
	probe     int64
	lastProbe int64
	probeIdx  int
	found     bool

	lens []int
	xs   []float64
	li   int // current list index within the round

	i64 int64
	f64 float64
	ams sel.AMSResult[uint64]

	cur comm.Stepper

	onI64 func(int64)
	onF64 func(float64)
	onAMS func(sel.AMSResult[uint64])

	phase int
}

func newDTAStep(pe *comm.PE, d *Data, t ScoreFunc, k, probes int, rng *xrand.RNG, out func(DTAResult), self bool) *dtaStep {
	if k < 1 {
		panic("mtopk: k must be positive")
	}
	if probes < 1 {
		panic("mtopk: probes must be positive")
	}
	s := comm.GetPooled[dtaStep](pe)
	s.pe = pe
	s.d, s.t, s.k, s.probes, s.rng, s.out, s.self = d, t, k, probes, rng, out, self
	s.phase = dphInit
	s.cur = nil
	s.res = DTAResult{}
	if s.onI64 == nil {
		s.onI64 = func(v int64) { s.i64 = v }
		s.onF64 = func(v float64) { s.f64 = v }
		s.onAMS = func(v sel.AMSResult[uint64]) { s.ams = v }
	}
	return s
}

// DTAStep is the continuation form of DTA; out receives the DTAResult on
// every PE.
func DTAStep(pe *comm.PE, d *Data, t ScoreFunc, k int, rng *xrand.RNG, out func(DTAResult)) comm.Stepper {
	return newDTAStep(pe, d, t, k, 1, rng, out, true)
}

// DTAProbedStep is the continuation form of DTAProbed.
func DTAProbedStep(pe *comm.PE, d *Data, t ScoreFunc, k, probes int, rng *xrand.RNG, out func(DTAResult)) comm.Stepper {
	return newDTAStep(pe, d, t, k, probes, rng, out, true)
}

func (s *dtaStep) release(pe *comm.PE) {
	s.pe, s.d, s.t, s.rng, s.out, s.cur = nil, nil, nil, nil, nil, nil
	s.res = DTAResult{}
	s.lens, s.xs = nil, nil
	comm.PutPooled(pe, s)
}

func (s *dtaStep) finish(pe *comm.PE, v DTAResult) *comm.RecvHandle {
	s.res = v
	s.phase = dphDone
	if s.self {
		out := s.out
		s.release(pe)
		if out != nil {
			out(v)
		}
	}
	return nil
}

// startProbe begins one scan-depth evaluation (the blocking dtaRound):
// fresh per-probe bands, list cursor reset.
func (s *dtaStep) startProbe() {
	s.lens = make([]int, s.d.m)
	s.xs = make([]float64, s.d.m)
	s.li = 0
	s.phase = dphListLoop
}

func (s *dtaStep) Step(pe *comm.PE) *comm.RecvHandle {
	for {
		if s.cur != nil {
			if h := s.cur.Step(pe); h != nil {
				return h
			}
			s.cur = nil
		}
		switch s.phase {
		case dphInit:
			s.cur = coll.AllReduceScalarStep(pe, int64(s.d.NumObjects()), addI64, s.onI64)
			s.phase = dphNWait
		case dphNWait:
			s.nGlobal = s.i64
			if s.nGlobal == 0 {
				return s.finish(pe, DTAResult{PrefixLens: make([]int, s.d.m)})
			}
			s.probe = int64(s.k)/(int64(s.d.m)*int64(pe.P())) + 1
			s.res.Rounds++
			s.probeIdx = 0
			s.found = false
			s.startProbe()
		case dphListLoop:
			if s.li < s.d.m {
				i := s.li
				if s.probe >= s.nGlobal {
					// Prefix = whole list: the threshold entry is the global
					// minimum score of the list.
					s.lens[i] = len(s.d.ords[i])
					v := math.Inf(1)
					if n := len(s.d.lists[i]); n > 0 {
						v = s.d.lists[i][n-1].score
					}
					s.cur = coll.AllReduceScalarStep(pe, v, math.Min, s.onF64)
					s.phase = dphListMinWait
					continue
				}
				s.cur = sel.AMSSelectStep[uint64](pe, sel.SliceSeq[uint64](s.d.ords[i]), s.probe, 2*s.probe, s.rng, s.onAMS)
				s.phase = dphListSelWait
				continue
			}
			// All list thresholds in hand: estimate the number of hits by
			// sampling each prefix (rejecting objects already present in an
			// earlier list's prefix to avoid double counting).
			thr := s.t(s.xs)
			y := 4 * int(math.Log2(float64(s.probe)+2))
			var localEst float64
			for i := 0; i < s.d.m; i++ {
				pl := s.lens[i]
				if pl == 0 {
					continue
				}
				var rejected, hits int
				for sm := 0; sm < y; sm++ {
					e := s.d.lists[i][s.rng.Intn(pl)]
					if s.d.inEarlierPrefix(e.id, i, s.lens) {
						rejected++
						continue
					}
					if sc, _ := s.d.Score(e.id, s.t); sc >= thr {
						hits++
					}
				}
				localEst += float64(pl) * (1 - float64(rejected)/float64(y)) * (float64(hits) / float64(y))
			}
			s.cur = coll.AllReduceScalarStep(pe, localEst, addF64, s.onF64)
			s.phase = dphEstWait
		case dphListMinWait:
			s.xs[s.li] = s.f64
			s.li++
			s.phase = dphListLoop
		case dphListSelWait:
			s.lens[s.li] = min(s.ams.LocalLen, len(s.d.lists[s.li]))
			s.xs[s.li] = FromOrdDesc(s.ams.Threshold)
			s.li++
			s.phase = dphListLoop
		case dphEstWait:
			est := s.f64
			s.res.PrefixLens = s.lens
			s.res.Threshold = s.t(s.xs)
			s.res.EstimatedHits = est
			s.res.K = s.probe
			s.lastProbe = s.probe
			if est >= 2*float64(s.k) || s.probe >= s.nGlobal {
				s.found = true
			}
			s.probe *= 4
			s.probeIdx++
			if s.found {
				s.res.Hits = s.d.collectHits(s.t, s.res.Threshold, s.res.PrefixLens)
				return s.finish(pe, s.res)
			}
			if s.probeIdx < s.probes {
				s.startProbe()
				continue
			}
			// Round exhausted: continue the exponential search past the
			// probes.
			s.probe = s.lastProbe * 2
			s.res.Rounds++
			s.probeIdx = 0
			s.startProbe()
		default:
			return nil
		}
	}
}

// rdtaStep phases.
const (
	rphLoop      = iota // run the local TA, start the threshold max
	rphTauWait          // harvest the global threshold, start the count
	rphTotalWait        // harvest the candidate count; verify or double k̂
	rphTakeWait         // harvest the global candidate total
	rphSelWait          // harvest the SmallestK share, grant local hits
	rphDone
)

// rdtaStep — see RDTAStep.
type rdtaStep struct {
	pe   *comm.PE
	d    *Data
	t    ScoreFunc
	k    int
	rng  *xrand.RNG
	out  func([]Hit)
	self bool
	res  []Hit

	kHat      int
	nLocal    int
	localHits []Hit
	ords      []uint64
	selected  []uint64

	i64 int64
	f64 float64

	cur comm.Stepper

	onI64 func(int64)
	onF64 func(float64)
	onSel func([]uint64)

	phase int
}

func newRDTAStep(pe *comm.PE, d *Data, t ScoreFunc, k int, rng *xrand.RNG, out func([]Hit), self bool) *rdtaStep {
	s := comm.GetPooled[rdtaStep](pe)
	s.pe = pe
	s.d, s.t, s.k, s.rng, s.out, s.self = d, t, k, rng, out, self
	s.phase = rphLoop
	s.cur = nil
	s.kHat = k/pe.P() + 2*bitLen(pe.P()) + 1
	s.nLocal = d.NumObjects()
	if s.onI64 == nil {
		s.onI64 = func(v int64) { s.i64 = v }
		s.onF64 = func(v float64) { s.f64 = v }
		s.onSel = func(v []uint64) { s.selected = v }
	}
	return s
}

// RDTAStep is the continuation form of RDTA; out receives this PE's
// share of the top-k.
func RDTAStep(pe *comm.PE, d *Data, t ScoreFunc, k int, rng *xrand.RNG, out func([]Hit)) comm.Stepper {
	return newRDTAStep(pe, d, t, k, rng, out, true)
}

func (s *rdtaStep) release(pe *comm.PE) {
	s.pe, s.d, s.t, s.rng, s.out, s.cur = nil, nil, nil, nil, nil, nil
	s.res, s.localHits, s.ords, s.selected = nil, nil, nil, nil
	comm.PutPooled(pe, s)
}

func (s *rdtaStep) finish(pe *comm.PE, v []Hit) *comm.RecvHandle {
	s.res = v
	s.phase = rphDone
	if s.self {
		out := s.out
		s.release(pe)
		if out != nil {
			out(v)
		}
	}
	return nil
}

func (s *rdtaStep) Step(pe *comm.PE) *comm.RecvHandle {
	for {
		if s.cur != nil {
			if h := s.cur.Step(pe); h != nil {
				return h
			}
			s.cur = nil
		}
		switch s.phase {
		case rphLoop:
			if s.kHat > s.nLocal {
				s.kHat = s.nLocal
			}
			s.localHits, _ = SequentialTA(s.d, s.t, max(s.kHat, 1))
			// Local threshold: worst score this PE can still vouch for (the
			// entire local set scanned means -inf — we have everything).
			tau := math.Inf(-1)
			if len(s.localHits) == s.kHat && s.kHat > 0 {
				tau = s.localHits[len(s.localHits)-1].Score
			}
			s.cur = coll.AllReduceScalarStep(pe, tau, math.Max, s.onF64)
			s.phase = rphTauWait
		case rphTauWait:
			globalTau := s.f64
			var above int64
			for _, h := range s.localHits {
				if h.Score >= globalTau {
					above++
				}
			}
			s.cur = coll.AllReduceScalarStep(pe, above, addI64, s.onI64)
			s.phase = rphTotalWait
		case rphTotalWait:
			total := s.i64
			if total >= int64(s.k) || int64(s.nLocal*pe.P()) <= int64(s.k) || s.kHat >= s.nLocal {
				// Verified (or exhausted): select the top-k among candidates.
				ords := make([]uint64, 0, len(s.localHits))
				for _, h := range s.localHits {
					ords = append(ords, OrdDesc(h.Score))
				}
				s.ords = ords
				s.cur = coll.AllReduceScalarStep(pe, int64(len(ords)), addI64, s.onI64)
				s.phase = rphTakeWait
				continue
			}
			s.kHat *= 2
			s.phase = rphLoop
		case rphTakeWait:
			take := min(int64(s.k), s.i64)
			s.cur = sel.SmallestKStep(pe, s.ords, take, s.rng, s.onSel)
			s.phase = rphSelWait
		case rphSelWait:
			return s.finish(pe, grantHits(s.localHits, s.selected))
		default:
			return nil
		}
	}
}

// topkStep phases.
const (
	kphDTA     = iota // run the DTA sub-machine
	kphSumWait        // harvest the global hit-ord total
	kphSelWait        // harvest the SmallestK share, grant local hits
	kphDone
)

// topkStep — see TopKStep.
type topkStep struct {
	pe   *comm.PE
	d    *Data
	t    ScoreFunc
	k    int
	rng  *xrand.RNG
	out  func([]Hit, DTAResult)
	self bool
	res  []Hit
	dta  DTAResult

	ords     []uint64
	selected []uint64
	i64      int64

	cur comm.Stepper

	onDTA func(DTAResult)
	onI64 func(int64)
	onSel func([]uint64)

	phase int
}

func newTopKStep(pe *comm.PE, d *Data, t ScoreFunc, k int, rng *xrand.RNG, out func([]Hit, DTAResult), self bool) *topkStep {
	s := comm.GetPooled[topkStep](pe)
	s.pe = pe
	s.d, s.t, s.k, s.rng, s.out, s.self = d, t, k, rng, out, self
	s.phase = kphDTA
	if s.onDTA == nil {
		s.onDTA = func(v DTAResult) { s.dta = v }
		s.onI64 = func(v int64) { s.i64 = v }
		s.onSel = func(v []uint64) { s.selected = v }
	}
	s.cur = newDTAStep(pe, d, t, k, 1, rng, s.onDTA, true)
	return s
}

// TopKStep is the continuation form of TopK; out receives this PE's
// share of the exact top-k plus the underlying DTAResult.
func TopKStep(pe *comm.PE, d *Data, t ScoreFunc, k int, rng *xrand.RNG, out func([]Hit, DTAResult)) comm.Stepper {
	return newTopKStep(pe, d, t, k, rng, out, true)
}

func (s *topkStep) release(pe *comm.PE) {
	s.pe, s.d, s.t, s.rng, s.out, s.cur = nil, nil, nil, nil, nil, nil
	s.res, s.ords, s.selected = nil, nil, nil
	s.dta = DTAResult{}
	comm.PutPooled(pe, s)
}

func (s *topkStep) finish(pe *comm.PE) *comm.RecvHandle {
	s.phase = kphDone
	if s.self {
		out, res, dta := s.out, s.res, s.dta
		s.release(pe)
		if out != nil {
			out(res, dta)
		}
	}
	return nil
}

func (s *topkStep) Step(pe *comm.PE) *comm.RecvHandle {
	for {
		if s.cur != nil {
			if h := s.cur.Step(pe); h != nil {
				return h
			}
			s.cur = nil
		}
		switch s.phase {
		case kphDTA:
			ords := make([]uint64, len(s.dta.Hits))
			for i, h := range s.dta.Hits {
				ords[i] = OrdDesc(h.Score)
			}
			s.ords = ords
			s.cur = coll.AllReduceScalarStep(pe, int64(len(ords)), addI64, s.onI64)
			s.phase = kphSumWait
		case kphSumWait:
			take := min(int64(s.k), s.i64)
			s.cur = sel.SmallestKStep(pe, s.ords, take, s.rng, s.onSel)
			s.phase = kphSelWait
		case kphSelWait:
			s.res = grantHits(s.dta.Hits, s.selected)
			return s.finish(pe)
		default:
			return nil
		}
	}
}
