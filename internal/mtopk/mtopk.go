// Package mtopk implements the multicriteria top-k algorithms of
// Section 6 of the paper: the sequential threshold algorithm of Fagin
// (TA) as the reference, RDTA for randomly distributed objects, and DTA
// (Algorithm 3) for arbitrary distribution.
//
// Data model: every object lives wholly on one PE together with its m
// scores; each PE keeps m lists ranking its local objects by each score
// (the paper's distributed setting: "each PE has a subset of the objects
// and m sorted lists ranking its locally present objects"). Overall
// relevance is a monotone scoring function t(x₁,...,x_m).
package mtopk

import (
	"fmt"
	"math"
	"sort"

	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/sel"
	"commtopk/internal/xrand"
)

// ScoreFunc maps the m per-criterion scores to an overall relevance; it
// must be monotone in every argument (Fagin's requirement).
type ScoreFunc func(scores []float64) float64

// SumScore is the canonical monotone aggregate.
func SumScore(scores []float64) float64 {
	var s float64
	for _, x := range scores {
		s += x
	}
	return s
}

// Object is one item with its per-criterion scores.
type Object struct {
	ID     uint64
	Scores []float64
}

// Hit is a scored result object.
type Hit struct {
	ID    uint64
	Score float64
}

// listEntry is one row of a score list.
type listEntry struct {
	score float64
	id    uint64
}

// Data is one PE's share of the dataset: objects plus m local rankings.
type Data struct {
	m       int
	objects map[uint64][]float64
	lists   [][]listEntry    // per criterion, sorted by score descending
	ranks   []map[uint64]int // per criterion: id → local rank (0-based)
	ords    [][]uint64       // per criterion: ascending OrdDesc keys for selection
}

// NewData indexes a PE's local objects. Every object must carry exactly m
// scores; IDs must be globally unique (they identify objects across PEs).
func NewData(objects []Object, m int) *Data {
	d := &Data{
		m:       m,
		objects: make(map[uint64][]float64, len(objects)),
		lists:   make([][]listEntry, m),
		ranks:   make([]map[uint64]int, m),
		ords:    make([][]uint64, m),
	}
	for _, o := range objects {
		if len(o.Scores) != m {
			panic(fmt.Sprintf("mtopk: object %d has %d scores, want %d", o.ID, len(o.Scores), m))
		}
		if _, dup := d.objects[o.ID]; dup {
			panic(fmt.Sprintf("mtopk: duplicate object id %d", o.ID))
		}
		d.objects[o.ID] = o.Scores
	}
	for i := 0; i < m; i++ {
		list := make([]listEntry, 0, len(objects))
		for _, o := range objects {
			list = append(list, listEntry{score: o.Scores[i], id: o.ID})
		}
		sort.Slice(list, func(a, b int) bool {
			if list[a].score != list[b].score {
				return list[a].score > list[b].score
			}
			return list[a].id < list[b].id
		})
		d.lists[i] = list
		d.ranks[i] = make(map[uint64]int, len(list))
		d.ords[i] = make([]uint64, len(list))
		for r, e := range list {
			d.ranks[i][e.id] = r
			d.ords[i][r] = OrdDesc(e.score)
		}
	}
	return d
}

// NumObjects returns the local object count.
func (d *Data) NumObjects() int { return len(d.objects) }

// M returns the number of criteria.
func (d *Data) M() int { return d.m }

// Score evaluates t on an object's local score vector ("random access").
func (d *Data) Score(id uint64, t ScoreFunc) (float64, bool) {
	s, ok := d.objects[id]
	if !ok {
		return 0, false
	}
	return t(s), true
}

// OrdDesc maps a float score to a uint64 whose ascending order equals
// descending score order — the packing that lets the generic ascending
// selection algorithms of internal/sel run on score lists. Lossless.
func OrdDesc(score float64) uint64 {
	u := math.Float64bits(score)
	if u&(1<<63) != 0 {
		u = ^u
	} else {
		u |= 1 << 63
	}
	return ^u
}

// FromOrdDesc inverts OrdDesc.
func FromOrdDesc(u uint64) float64 {
	u = ^u
	if u&(1<<63) != 0 {
		u &^= 1 << 63
	} else {
		u = ^u
	}
	return math.Float64frombits(u)
}

// ---------------------------------------------------------------------------
// Sequential threshold algorithm (Fagin) — the reference DTA approximates
// ---------------------------------------------------------------------------

// SequentialTA runs the original threshold algorithm on a single dataset:
// scan one object per list per iteration, random-access its full score,
// stop once the k-th best seen reaches the threshold t(x₁..x_m) of the
// last scanned scores. Returns the top-k hits (best first) and K, the
// number of scanned list rows.
func SequentialTA(d *Data, t ScoreFunc, k int) ([]Hit, int) {
	seen := map[uint64]float64{}
	K := 0
	n := 0
	for i := 0; i < d.m; i++ {
		if len(d.lists[i]) > n {
			n = len(d.lists[i])
		}
	}
	xs := make([]float64, d.m)
	for row := 0; row < n; row++ {
		K++
		for i := 0; i < d.m; i++ {
			if row >= len(d.lists[i]) {
				continue
			}
			e := d.lists[i][row]
			xs[i] = e.score
			if _, ok := seen[e.id]; !ok {
				seen[e.id], _ = d.Score(e.id, t)
			}
		}
		if len(seen) >= k {
			tau := t(xs)
			if kthBest(seen, k) >= tau {
				break
			}
		}
	}
	return topHits(seen, k), K
}

func kthBest(seen map[uint64]float64, k int) float64 {
	scores := make([]float64, 0, len(seen))
	for _, s := range seen {
		scores = append(scores, s)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	if k > len(scores) {
		k = len(scores)
	}
	return scores[k-1]
}

func topHits(seen map[uint64]float64, k int) []Hit {
	hits := make([]Hit, 0, len(seen))
	for id, s := range seen {
		hits = append(hits, Hit{ID: id, Score: s})
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Score != hits[b].Score {
			return hits[a].Score > hits[b].Score
		}
		return hits[a].ID < hits[b].ID
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// BruteForceTopK scores every object — exact ground truth for tests.
func BruteForceTopK(d *Data, t ScoreFunc, k int) []Hit {
	seen := make(map[uint64]float64, len(d.objects))
	for id, scores := range d.objects {
		seen[id] = t(scores)
	}
	return topHits(seen, k)
}

// ---------------------------------------------------------------------------
// DTA — Algorithm 3 (arbitrary data distribution)
// ---------------------------------------------------------------------------

// DTAResult is the outcome of the distributed threshold algorithm.
type DTAResult struct {
	// Threshold is t(x₁..x_m), the final stopping threshold.
	Threshold float64
	// K is the final per-list scan depth guess.
	K int64
	// PrefixLens are this PE's local prefix lengths |L'_i| per list.
	PrefixLens []int
	// Hits are this PE's local objects from the prefixes with overall
	// score ≥ Threshold (deduplicated locally). Their union over PEs
	// contains the true top-k with high probability.
	Hits []Hit
	// Rounds is the number of exponential-search rounds.
	Rounds int
	// EstimatedHits is the final sampling-based hit estimate H.
	EstimatedHits float64
}

// DTA runs Algorithm 3: exponential search on the TA scan depth K, with
// the approximate multisequence selection of Section 4.3 approximating
// the globally K-th largest score of every list and a sampling-based
// truthful estimator of the number of hits. Expected time
// O(m² log²K + βm logK + α log p logK) — Theorem 6. Collective.
func DTA(pe *comm.PE, d *Data, t ScoreFunc, k int, rng *xrand.RNG) DTAResult {
	return DTAProbed(pe, d, t, k, 1, rng)
}

// DTAProbed is DTA with the Section 6 refinement "we can further reduce
// the latency of DTA by trying several values of K in each iteration":
// each round evaluates `probes` scan depths K, 4K, 16K, ... concurrently
// and jumps directly to the smallest depth whose hit estimate suffices,
// cutting the number of exponential-search rounds by the probe factor at
// the cost of O(probes) extra selections of small prefixes per round.
// probes = 1 is plain DTA. Collective.
func DTAProbed(pe *comm.PE, d *Data, t ScoreFunc, k int, probes int, rng *xrand.RNG) DTAResult {
	if k < 1 {
		panic("mtopk: k must be positive")
	}
	if probes < 1 {
		panic("mtopk: probes must be positive")
	}
	m := d.m
	nGlobal := coll.SumAll(pe, int64(d.NumObjects()))
	if nGlobal == 0 {
		return DTAResult{PrefixLens: make([]int, m)}
	}
	K := int64(k)/(int64(m)*int64(pe.P())) + 1

	res := DTAResult{}
	for {
		res.Rounds++
		// Probe depths K, 4K, 16K, ... in this round.
		probe := K
		var lastProbe int64
		found := false
		for j := 0; j < probes && !found; j++ {
			lens, xs, est := dtaRound(pe, d, t, probe, nGlobal, rng)
			res.PrefixLens = lens
			res.Threshold = t(xs)
			res.EstimatedHits = est
			res.K = probe
			lastProbe = probe
			if est >= 2*float64(k) || probe >= nGlobal {
				found = true
			}
			probe *= 4
		}
		if found {
			break
		}
		K = lastProbe * 2 // continue the exponential search past the probes
	}
	res.Hits = d.collectHits(t, res.Threshold, res.PrefixLens)
	return res
}

// dtaRound performs one scan-depth evaluation: approximate the K-th
// largest score of every list, form the threshold, and estimate the hit
// count by prefix sampling with duplicate rejection. Collective.
func dtaRound(pe *comm.PE, d *Data, t ScoreFunc, K, nGlobal int64, rng *xrand.RNG) ([]int, []float64, float64) {
	m := d.m
	lens := make([]int, m)
	xs := make([]float64, m)
	for i := 0; i < m; i++ {
		if K >= nGlobal {
			lens[i] = len(d.ords[i])
			xs[i] = minListScore(pe, d, i)
			continue
		}
		r := sel.AMSSelect[uint64](pe, sel.SliceSeq[uint64](d.ords[i]), K, 2*K, rng)
		lens[i] = min(r.LocalLen, len(d.lists[i]))
		xs[i] = FromOrdDesc(r.Threshold)
	}
	thr := t(xs)

	// Estimate the number of hits by sampling each prefix (rejecting
	// objects already present in an earlier list's prefix to avoid
	// double counting).
	y := 4 * int(math.Log2(float64(K)+2))
	var localEst float64
	for i := 0; i < m; i++ {
		pl := lens[i]
		if pl == 0 {
			continue
		}
		var rejected, hits int
		for s := 0; s < y; s++ {
			e := d.lists[i][rng.Intn(pl)]
			if d.inEarlierPrefix(e.id, i, lens) {
				rejected++
				continue
			}
			if sc, _ := d.Score(e.id, t); sc >= thr {
				hits++
			}
		}
		localEst += float64(pl) * (1 - float64(rejected)/float64(y)) * (float64(hits) / float64(y))
	}
	est := coll.AllReduceScalar(pe, localEst, func(a, b float64) float64 { return a + b })
	return lens, xs, est
}

// minListScore returns the global minimum score of list i (prefix = whole
// list). Collective.
func minListScore(pe *comm.PE, d *Data, i int) float64 {
	v := math.Inf(1)
	if n := len(d.lists[i]); n > 0 {
		v = d.lists[i][n-1].score
	}
	return coll.AllReduceScalar(pe, v, math.Min)
}

// inEarlierPrefix reports whether the object also appears in the prefix of
// an earlier list — purely local, since all of an object's list entries
// live on its home PE.
func (d *Data) inEarlierPrefix(id uint64, i int, prefixLens []int) bool {
	for j := 0; j < i; j++ {
		if r, ok := d.ranks[j][id]; ok && r < prefixLens[j] {
			return true
		}
	}
	return false
}

// collectHits scans the local prefixes and returns deduplicated objects
// with overall score at least thr.
func (d *Data) collectHits(t ScoreFunc, thr float64, prefixLens []int) []Hit {
	seen := map[uint64]bool{}
	var hits []Hit
	for i := 0; i < d.m; i++ {
		for r := 0; r < prefixLens[i] && r < len(d.lists[i]); r++ {
			id := d.lists[i][r].id
			if seen[id] {
				continue
			}
			seen[id] = true
			if sc, _ := d.Score(id, t); sc >= thr {
				hits = append(hits, Hit{ID: id, Score: sc})
			}
		}
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Score != hits[b].Score {
			return hits[a].Score > hits[b].Score
		}
		return hits[a].ID < hits[b].ID
	})
	return hits
}

// TopK completes DTA into an exact top-k query: it collects the DTA hits
// and runs the unsorted selection of Section 4.1 on their scores to
// identify the k most relevant; ties at the boundary are split by a
// prefix sum. Returns this PE's share of the top-k. Collective.
func TopK(pe *comm.PE, d *Data, t ScoreFunc, k int, rng *xrand.RNG) ([]Hit, DTAResult) {
	res := DTA(pe, d, t, k, rng)
	ords := make([]uint64, len(res.Hits))
	for i, h := range res.Hits {
		ords[i] = OrdDesc(h.Score)
	}
	selected := sel.SmallestK(pe, ords, min(int64(k), coll.SumAll(pe, int64(len(ords)))), rng)
	// Map the selected ord keys back to local hits (ords may contain
	// duplicates across PEs only for exactly equal scores; SmallestK has
	// already split those fairly — keep as many local hits per ord value
	// as SmallestK granted us).
	grant := map[uint64]int{}
	for _, o := range selected {
		grant[o]++
	}
	var out []Hit
	for _, h := range res.Hits {
		o := OrdDesc(h.Score)
		if grant[o] > 0 {
			grant[o]--
			out = append(out, h)
		}
	}
	return out, res
}

// ---------------------------------------------------------------------------
// RDTA — randomly distributed objects
// ---------------------------------------------------------------------------

// RDTA exploits random object placement: each PE runs the sequential TA
// locally for k̂ = c·(k/p + log p) results, the global threshold is the
// max of the local thresholds, and the candidate count above it is
// verified; on failure k̂ doubles (Section 6, "Random Data Distribution").
// Returns this PE's share of the top-k. Collective.
func RDTA(pe *comm.PE, d *Data, t ScoreFunc, k int, rng *xrand.RNG) []Hit {
	p := pe.P()
	kHat := k/p + 2*bitLen(p) + 1
	nLocal := d.NumObjects()
	for {
		if kHat > nLocal {
			kHat = nLocal
		}
		localHits, _ := SequentialTA(d, t, max(kHat, 1))
		// Local threshold: worst score this PE can still vouch for.
		tau := math.Inf(-1)
		if len(localHits) == kHat && kHat > 0 {
			tau = localHits[len(localHits)-1].Score
		} else if nLocal > 0 {
			// Entire local set scanned: local threshold is -inf (we have
			// everything), which never constrains the global threshold.
			tau = math.Inf(-1)
		}
		globalTau := coll.AllReduceScalar(pe, tau, math.Max)

		var above int64
		for _, h := range localHits {
			if h.Score >= globalTau {
				above++
			}
		}
		total := coll.SumAll(pe, above)
		if total >= int64(k) || int64(nLocal*p) <= int64(k) || kHat >= nLocal {
			// Verified (or exhausted): select the top-k among candidates.
			ords := make([]uint64, 0, len(localHits))
			for _, h := range localHits {
				ords = append(ords, OrdDesc(h.Score))
			}
			take := min(int64(k), coll.SumAll(pe, int64(len(ords))))
			selected := sel.SmallestK(pe, ords, take, rng)
			grant := map[uint64]int{}
			for _, o := range selected {
				grant[o]++
			}
			var out []Hit
			for _, h := range localHits {
				o := OrdDesc(h.Score)
				if grant[o] > 0 {
					grant[o]--
					out = append(out, h)
				}
			}
			return out
		}
		kHat *= 2
	}
}

func bitLen(x int) int {
	n := 0
	for x > 0 {
		n++
		x >>= 1
	}
	return n
}

// GenObjects generates n objects with m independent uniform scores — the
// standard threshold-algorithm benchmark workload.
func GenObjects(rng *xrand.RNG, n, m int, idOffset uint64) []Object {
	out := make([]Object, n)
	for i := range out {
		scores := make([]float64, m)
		for j := range scores {
			scores[j] = rng.Float64()
		}
		out[i] = Object{ID: idOffset + uint64(i), Scores: scores}
	}
	return out
}

// GenCorrelatedObjects generates objects whose criteria are positively
// correlated (an easier TA instance, used by the ablation benches).
func GenCorrelatedObjects(rng *xrand.RNG, n, m int, idOffset uint64) []Object {
	out := make([]Object, n)
	for i := range out {
		base := rng.Float64()
		scores := make([]float64, m)
		for j := range scores {
			scores[j] = 0.7*base + 0.3*rng.Float64()
		}
		out[i] = Object{ID: idOffset + uint64(i), Scores: scores}
	}
	return out
}
