// Package mtopk implements the multicriteria top-k algorithms of
// Section 6 of the paper: the sequential threshold algorithm of Fagin
// (TA) as the reference, RDTA for randomly distributed objects, and DTA
// (Algorithm 3) for arbitrary distribution.
//
// Data model: every object lives wholly on one PE together with its m
// scores; each PE keeps m lists ranking its local objects by each score
// (the paper's distributed setting: "each PE has a subset of the objects
// and m sorted lists ranking its locally present objects"). Overall
// relevance is a monotone scoring function t(x₁,...,x_m).
package mtopk

import (
	"fmt"
	"math"
	"sort"

	"commtopk/internal/comm"
	"commtopk/internal/dht"
	"commtopk/internal/xrand"
)

// ScoreFunc maps the m per-criterion scores to an overall relevance; it
// must be monotone in every argument (Fagin's requirement).
type ScoreFunc func(scores []float64) float64

// SumScore is the canonical monotone aggregate.
func SumScore(scores []float64) float64 {
	var s float64
	for _, x := range scores {
		s += x
	}
	return s
}

// Object is one item with its per-criterion scores.
type Object struct {
	ID     uint64
	Scores []float64
}

// Hit is a scored result object.
type Hit struct {
	ID    uint64
	Score float64
}

// listEntry is one row of a score list.
type listEntry struct {
	score float64
	id    uint64
}

// Data is one PE's share of the dataset: objects plus m local rankings.
// All indexes are map-free (slices in insertion order plus pooled
// dht.Table id→position tables), so every scan over the data — the
// sequential TA, the hit collection, the brute-force reference — visits
// objects in a fixed order and repeated runs are bit-identical: no Go
// map iteration order anywhere (the class of nondeterminism that
// produced the agg ECSum flake fixed in PR 2).
type Data struct {
	m      int
	ids    []uint64    // insertion order
	scores [][]float64 // aligned with ids
	index  *dht.Table  // id → position in ids/scores
	lists  [][]listEntry // per criterion, sorted by score descending
	ranks  []*dht.Table  // per criterion: id → local rank (0-based)
	ords   [][]uint64    // per criterion: ascending OrdDesc keys for selection
}

// NewData indexes a PE's local objects. Every object must carry exactly m
// scores; IDs must be globally unique (they identify objects across PEs).
func NewData(objects []Object, m int) *Data {
	d := &Data{
		m:      m,
		ids:    make([]uint64, 0, len(objects)),
		scores: make([][]float64, 0, len(objects)),
		index:  dht.NewTable(len(objects)),
		lists:  make([][]listEntry, m),
		ranks:  make([]*dht.Table, m),
		ords:   make([][]uint64, m),
	}
	for _, o := range objects {
		if len(o.Scores) != m {
			panic(fmt.Sprintf("mtopk: object %d has %d scores, want %d", o.ID, len(o.Scores), m))
		}
		if _, dup := d.index.Get(o.ID); dup {
			panic(fmt.Sprintf("mtopk: duplicate object id %d", o.ID))
		}
		d.index.Set(o.ID, int64(len(d.ids)))
		d.ids = append(d.ids, o.ID)
		d.scores = append(d.scores, o.Scores)
	}
	for i := 0; i < m; i++ {
		list := make([]listEntry, 0, len(objects))
		for _, o := range objects {
			list = append(list, listEntry{score: o.Scores[i], id: o.ID})
		}
		sort.Slice(list, func(a, b int) bool {
			if list[a].score != list[b].score {
				return list[a].score > list[b].score
			}
			return list[a].id < list[b].id
		})
		d.lists[i] = list
		d.ranks[i] = dht.NewTable(len(list))
		d.ords[i] = make([]uint64, len(list))
		for r, e := range list {
			d.ranks[i].Set(e.id, int64(r))
			d.ords[i][r] = OrdDesc(e.score)
		}
	}
	return d
}

// NumObjects returns the local object count.
func (d *Data) NumObjects() int { return len(d.ids) }

// M returns the number of criteria.
func (d *Data) M() int { return d.m }

// Score evaluates t on an object's local score vector ("random access").
func (d *Data) Score(id uint64, t ScoreFunc) (float64, bool) {
	pos, ok := d.index.Get(id)
	if !ok {
		return 0, false
	}
	return t(d.scores[pos]), true
}

// OrdDesc maps a float score to a uint64 whose ascending order equals
// descending score order — the packing that lets the generic ascending
// selection algorithms of internal/sel run on score lists. Lossless.
func OrdDesc(score float64) uint64 {
	u := math.Float64bits(score)
	if u&(1<<63) != 0 {
		u = ^u
	} else {
		u |= 1 << 63
	}
	return ^u
}

// FromOrdDesc inverts OrdDesc.
func FromOrdDesc(u uint64) float64 {
	u = ^u
	if u&(1<<63) != 0 {
		u &^= 1 << 63
	} else {
		u = ^u
	}
	return math.Float64frombits(u)
}

// ---------------------------------------------------------------------------
// Sequential threshold algorithm (Fagin) — the reference DTA approximates
// ---------------------------------------------------------------------------

// SequentialTA runs the original threshold algorithm on a single dataset:
// scan one object per list per iteration, random-access its full score,
// stop once the k-th best seen reaches the threshold t(x₁..x_m) of the
// last scanned scores. Returns the top-k hits (best first) and K, the
// number of scanned list rows.
func SequentialTA(d *Data, t ScoreFunc, k int) ([]Hit, int) {
	seen := dht.NewSumTable(k)
	defer seen.Release()
	K := 0
	n := 0
	for i := 0; i < d.m; i++ {
		if len(d.lists[i]) > n {
			n = len(d.lists[i])
		}
	}
	xs := make([]float64, d.m)
	for row := 0; row < n; row++ {
		K++
		for i := 0; i < d.m; i++ {
			if row >= len(d.lists[i]) {
				continue
			}
			e := d.lists[i][row]
			xs[i] = e.score
			if _, ok := seen.Get(e.id); !ok {
				sc, _ := d.Score(e.id, t)
				seen.Set(e.id, sc)
			}
		}
		if seen.Len() >= k {
			tau := t(xs)
			if kthBest(seen, k) >= tau {
				break
			}
		}
	}
	return topHits(seen, k), K
}

func kthBest(seen *dht.SumTable, k int) float64 {
	scores := make([]float64, 0, seen.Len())
	seen.ForEach(func(_ uint64, s float64) { scores = append(scores, s) })
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	if k > len(scores) {
		k = len(scores)
	}
	return scores[k-1]
}

func topHits(seen *dht.SumTable, k int) []Hit {
	hits := make([]Hit, 0, seen.Len())
	seen.ForEach(func(id uint64, s float64) { hits = append(hits, Hit{ID: id, Score: s}) })
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Score != hits[b].Score {
			return hits[a].Score > hits[b].Score
		}
		return hits[a].ID < hits[b].ID
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// BruteForceTopK scores every object — exact ground truth for tests.
func BruteForceTopK(d *Data, t ScoreFunc, k int) []Hit {
	seen := dht.NewSumTable(len(d.ids))
	defer seen.Release()
	for pos, id := range d.ids {
		seen.Set(id, t(d.scores[pos]))
	}
	return topHits(seen, k)
}

// ---------------------------------------------------------------------------
// DTA — Algorithm 3 (arbitrary data distribution)
// ---------------------------------------------------------------------------

// DTAResult is the outcome of the distributed threshold algorithm.
type DTAResult struct {
	// Threshold is t(x₁..x_m), the final stopping threshold.
	Threshold float64
	// K is the final per-list scan depth guess.
	K int64
	// PrefixLens are this PE's local prefix lengths |L'_i| per list.
	PrefixLens []int
	// Hits are this PE's local objects from the prefixes with overall
	// score ≥ Threshold (deduplicated locally). Their union over PEs
	// contains the true top-k with high probability.
	Hits []Hit
	// Rounds is the number of exponential-search rounds.
	Rounds int
	// EstimatedHits is the final sampling-based hit estimate H.
	EstimatedHits float64
}

// DTA runs Algorithm 3: exponential search on the TA scan depth K, with
// the approximate multisequence selection of Section 4.3 approximating
// the globally K-th largest score of every list and a sampling-based
// truthful estimator of the number of hits. Expected time
// O(m² log²K + βm logK + α log p logK) — Theorem 6. Collective.
func DTA(pe *comm.PE, d *Data, t ScoreFunc, k int, rng *xrand.RNG) DTAResult {
	return DTAProbed(pe, d, t, k, 1, rng)
}

// DTAProbed is DTA with the Section 6 refinement "we can further reduce
// the latency of DTA by trying several values of K in each iteration":
// each round evaluates `probes` scan depths K, 4K, 16K, ... concurrently
// and jumps directly to the smallest depth whose hit estimate suffices,
// cutting the number of exponential-search rounds by the probe factor at
// the cost of O(probes) extra selections of small prefixes per round.
// probes = 1 is plain DTA. The blocking form drives the dtaStep state
// machine of async.go through comm.RunSteps — one implementation, both
// execution modes. Collective.
func DTAProbed(pe *comm.PE, d *Data, t ScoreFunc, k int, probes int, rng *xrand.RNG) DTAResult {
	st := newDTAStep(pe, d, t, k, probes, rng, nil, false)
	comm.RunSteps(pe, st)
	res := st.res
	st.release(pe)
	return res
}

// inEarlierPrefix reports whether the object also appears in the prefix of
// an earlier list — purely local, since all of an object's list entries
// live on its home PE.
func (d *Data) inEarlierPrefix(id uint64, i int, prefixLens []int) bool {
	for j := 0; j < i; j++ {
		if r, ok := d.ranks[j].Get(id); ok && int(r) < prefixLens[j] {
			return true
		}
	}
	return false
}

// collectHits scans the local prefixes and returns deduplicated objects
// with overall score at least thr. The scan order (list-major, rank
// ascending) plus table-backed dedup makes the hit order deterministic
// before the final sort even sees it.
func (d *Data) collectHits(t ScoreFunc, thr float64, prefixLens []int) []Hit {
	seen := dht.NewTable(0)
	defer seen.Release()
	var hits []Hit
	for i := 0; i < d.m; i++ {
		for r := 0; r < prefixLens[i] && r < len(d.lists[i]); r++ {
			id := d.lists[i][r].id
			if _, dup := seen.Get(id); dup {
				continue
			}
			seen.Set(id, 1)
			if sc, _ := d.Score(id, t); sc >= thr {
				hits = append(hits, Hit{ID: id, Score: sc})
			}
		}
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Score != hits[b].Score {
			return hits[a].Score > hits[b].Score
		}
		return hits[a].ID < hits[b].ID
	})
	return hits
}

// grantHits maps SmallestK's selected ord keys back to local hits: ords
// may contain duplicates across PEs only for exactly equal scores, and
// SmallestK has already split those fairly — keep as many local hits per
// ord value as it granted us. Table-backed, so the grant bookkeeping
// cannot reorder anything.
func grantHits(hits []Hit, selected []uint64) []Hit {
	grant := dht.NewTable(len(selected))
	defer grant.Release()
	for _, o := range selected {
		grant.Add(o, 1)
	}
	var out []Hit
	for _, h := range hits {
		o := OrdDesc(h.Score)
		if g, _ := grant.Get(o); g > 0 {
			grant.Add(o, -1)
			out = append(out, h)
		}
	}
	return out
}

// TopK completes DTA into an exact top-k query: it collects the DTA hits
// and runs the unsorted selection of Section 4.1 on their scores to
// identify the k most relevant; ties at the boundary are split by a
// prefix sum. Returns this PE's share of the top-k. Collective.
func TopK(pe *comm.PE, d *Data, t ScoreFunc, k int, rng *xrand.RNG) ([]Hit, DTAResult) {
	st := newTopKStep(pe, d, t, k, rng, nil, false)
	comm.RunSteps(pe, st)
	hits, res := st.res, st.dta
	st.release(pe)
	return hits, res
}

// ---------------------------------------------------------------------------
// RDTA — randomly distributed objects
// ---------------------------------------------------------------------------

// RDTA exploits random object placement: each PE runs the sequential TA
// locally for k̂ = c·(k/p + log p) results, the global threshold is the
// max of the local thresholds, and the candidate count above it is
// verified; on failure k̂ doubles (Section 6, "Random Data Distribution").
// Returns this PE's share of the top-k. The blocking form drives the
// rdtaStep state machine of async.go. Collective.
func RDTA(pe *comm.PE, d *Data, t ScoreFunc, k int, rng *xrand.RNG) []Hit {
	st := newRDTAStep(pe, d, t, k, rng, nil, false)
	comm.RunSteps(pe, st)
	res := st.res
	st.release(pe)
	return res
}

func bitLen(x int) int {
	n := 0
	for x > 0 {
		n++
		x >>= 1
	}
	return n
}

// GenObjects generates n objects with m independent uniform scores — the
// standard threshold-algorithm benchmark workload.
func GenObjects(rng *xrand.RNG, n, m int, idOffset uint64) []Object {
	out := make([]Object, n)
	for i := range out {
		scores := make([]float64, m)
		for j := range scores {
			scores[j] = rng.Float64()
		}
		out[i] = Object{ID: idOffset + uint64(i), Scores: scores}
	}
	return out
}

// GenCorrelatedObjects generates objects whose criteria are positively
// correlated (an easier TA instance, used by the ablation benches).
func GenCorrelatedObjects(rng *xrand.RNG, n, m int, idOffset uint64) []Object {
	out := make([]Object, n)
	for i := range out {
		base := rng.Float64()
		scores := make([]float64, m)
		for j := range scores {
			scores[j] = 0.7*base + 0.3*rng.Float64()
		}
		out[i] = Object{ID: idOffset + uint64(i), Scores: scores}
	}
	return out
}
