package mtopk

import (
	"math"
	"testing"
	"testing/quick"

	"commtopk/internal/comm"
	"commtopk/internal/xrand"
)

func TestOrdDescRoundTripAndOrder(t *testing.T) {
	vals := []float64{math.Inf(1), 1e300, 3.5, 1, 1e-300, 0, -1e-300, -2.5, -1e300, math.Inf(-1)}
	for i, v := range vals {
		if got := FromOrdDesc(OrdDesc(v)); got != v {
			t.Errorf("round trip of %v gave %v", v, got)
		}
		if i > 0 && OrdDesc(vals[i-1]) >= OrdDesc(v) {
			t.Errorf("descending order broken at %v vs %v", vals[i-1], v)
		}
	}
}

func TestOrdDescQuick(t *testing.T) {
	check := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a == b {
			return OrdDesc(a) == OrdDesc(b)
		}
		return (a > b) == (OrdDesc(a) < OrdDesc(b))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSequentialTAMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		objs := GenObjects(xrand.New(seed), 500, 3, 0)
		d := NewData(objs, 3)
		hits, K := SequentialTA(d, SumScore, 10)
		want := BruteForceTopK(d, SumScore, 10)
		if len(hits) != 10 {
			t.Fatalf("seed %d: %d hits", seed, len(hits))
		}
		for i := range hits {
			if hits[i].Score != want[i].Score {
				t.Errorf("seed %d rank %d: score %v, want %v", seed, i, hits[i].Score, want[i].Score)
			}
		}
		if K >= 500 {
			t.Errorf("seed %d: TA scanned all %d rows; early stopping broken", seed, K)
		}
	}
}

func TestSequentialTASmallInputs(t *testing.T) {
	d := NewData(nil, 2)
	hits, _ := SequentialTA(d, SumScore, 3)
	if len(hits) != 0 {
		t.Errorf("empty data produced hits %v", hits)
	}
	d2 := NewData([]Object{{ID: 1, Scores: []float64{0.5, 0.5}}}, 2)
	hits2, _ := SequentialTA(d2, SumScore, 3)
	if len(hits2) != 1 || hits2[0].ID != 1 {
		t.Errorf("singleton data: %v", hits2)
	}
}

// buildDistributed scatters objects over p PEs.
func buildDistributed(seed int64, p, perPE, m int) ([]*Data, *Data) {
	var all []Object
	datas := make([]*Data, p)
	for r := 0; r < p; r++ {
		objs := GenObjects(xrand.NewPE(seed, r), perPE, m, uint64(r)<<32)
		datas[r] = NewData(objs, m)
		all = append(all, objs...)
	}
	return datas, NewData(all, m)
}

func TestDTAHitsContainTrueTopK(t *testing.T) {
	for _, p := range []int{1, 3, 4, 8} {
		const perPE = 400
		const m = 3
		const k = 12
		datas, global := buildDistributed(7, p, perPE, m)
		want := BruteForceTopK(global, SumScore, k)
		mach := comm.NewMachine(comm.DefaultConfig(p))
		hitsByPE := make([][]Hit, p)
		var res DTAResult
		mach.MustRun(func(pe *comm.PE) {
			r := DTA(pe, datas[pe.Rank()], SumScore, k, xrand.NewPE(11, pe.Rank()))
			hitsByPE[pe.Rank()] = r.Hits
			if pe.Rank() == 0 {
				res = r
			}
		})
		union := map[uint64]bool{}
		for _, hs := range hitsByPE {
			for _, h := range hs {
				union[h.ID] = true
			}
		}
		missed := 0
		for _, w := range want {
			if !union[w.ID] {
				missed++
			}
		}
		if missed > 0 {
			t.Errorf("p=%d: DTA hits miss %d of the true top-%d", p, missed, k)
		}
		// Sanity on the scan-depth guess: K should stay well below n.
		if res.K >= int64(p*perPE) {
			t.Logf("p=%d: DTA escalated to full scan (K=%d)", p, res.K)
		}
	}
}

func TestDTATopKExact(t *testing.T) {
	for _, p := range []int{1, 4, 6} {
		const perPE = 300
		const k = 10
		datas, global := buildDistributed(13, p, perPE, 2)
		want := BruteForceTopK(global, SumScore, k)
		mach := comm.NewMachine(comm.DefaultConfig(p))
		outByPE := make([][]Hit, p)
		mach.MustRun(func(pe *comm.PE) {
			out, _ := TopK(pe, datas[pe.Rank()], SumScore, k, xrand.NewPE(17, pe.Rank()))
			outByPE[pe.Rank()] = out
		})
		var all []Hit
		for _, hs := range outByPE {
			all = append(all, hs...)
		}
		if len(all) != k {
			t.Fatalf("p=%d: TopK returned %d hits, want %d", p, len(all), k)
		}
		gotScores := map[uint64]float64{}
		for _, h := range all {
			gotScores[h.ID] = h.Score
		}
		for _, w := range want {
			if _, ok := gotScores[w.ID]; !ok {
				t.Errorf("p=%d: missing top-k object %d (score %v)", p, w.ID, w.Score)
			}
		}
	}
}

func TestRDTAMatchesBruteForce(t *testing.T) {
	// RDTA assumes random placement, which GenObjects' independent
	// uniform draws satisfy.
	for _, p := range []int{1, 4, 7} {
		const perPE = 300
		const k = 9
		datas, global := buildDistributed(19, p, perPE, 3)
		want := BruteForceTopK(global, SumScore, k)
		mach := comm.NewMachine(comm.DefaultConfig(p))
		outByPE := make([][]Hit, p)
		mach.MustRun(func(pe *comm.PE) {
			outByPE[pe.Rank()] = RDTA(pe, datas[pe.Rank()], SumScore, k, xrand.NewPE(23, pe.Rank()))
		})
		var all []Hit
		for _, hs := range outByPE {
			all = append(all, hs...)
		}
		if len(all) != k {
			t.Fatalf("p=%d: RDTA returned %d hits, want %d", p, len(all), k)
		}
		wantIDs := map[uint64]bool{}
		for _, w := range want {
			wantIDs[w.ID] = true
		}
		for _, h := range all {
			if !wantIDs[h.ID] {
				t.Errorf("p=%d: RDTA returned non-top-k object %d (score %v, k-th %v)",
					p, h.ID, h.Score, want[k-1].Score)
			}
		}
	}
}

func TestDTAPolylogCommunication(t *testing.T) {
	// Theorem 6: communication O(βm logK + α log p logK) — bottleneck
	// volume must be tiny relative to the input.
	const p = 8
	const perPE = 2000
	datas, _ := buildDistributed(29, p, perPE, 3)
	mach := comm.NewMachine(comm.DefaultConfig(p))
	mach.MustRun(func(pe *comm.PE) {
		DTA(pe, datas[pe.Rank()], SumScore, 16, xrand.NewPE(31, pe.Rank()))
	})
	if words := mach.Stats().MaxSentWords; words > perPE/2 {
		t.Errorf("DTA moved %d words per PE on n/p=%d input", words, perPE)
	}
}

func TestMonotoneScoreFuncs(t *testing.T) {
	// A different monotone aggregate: weighted max.
	wmax := func(scores []float64) float64 {
		best := 0.0
		for i, s := range scores {
			v := s * float64(i+1)
			if v > best {
				best = v
			}
		}
		return best
	}
	const p = 4
	datas, global := buildDistributed(37, p, 200, 3)
	want := BruteForceTopK(global, wmax, 5)
	mach := comm.NewMachine(comm.DefaultConfig(p))
	union := map[uint64]bool{}
	hitsByPE := make([][]Hit, p)
	mach.MustRun(func(pe *comm.PE) {
		r := DTA(pe, datas[pe.Rank()], wmax, 5, xrand.NewPE(41, pe.Rank()))
		hitsByPE[pe.Rank()] = r.Hits
	})
	for _, hs := range hitsByPE {
		for _, h := range hs {
			union[h.ID] = true
		}
	}
	for _, w := range want {
		if !union[w.ID] {
			t.Errorf("weighted-max top-5 object %d missed", w.ID)
		}
	}
}

func TestNewDataValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("score arity mismatch should panic")
		}
	}()
	NewData([]Object{{ID: 1, Scores: []float64{1}}}, 2)
}

func TestDataAccessors(t *testing.T) {
	objs := []Object{{ID: 5, Scores: []float64{0.3, 0.9}}, {ID: 6, Scores: []float64{0.8, 0.1}}}
	d := NewData(objs, 2)
	if d.NumObjects() != 2 || d.M() != 2 {
		t.Error("accessors wrong")
	}
	if s, ok := d.Score(5, SumScore); !ok || math.Abs(s-1.2) > 1e-12 {
		t.Errorf("Score(5) = %v,%v", s, ok)
	}
	if _, ok := d.Score(99, SumScore); ok {
		t.Error("missing object reported present")
	}
	// List 0 must rank 6 (0.8) before 5 (0.3).
	if d.lists[0][0].id != 6 || d.lists[1][0].id != 5 {
		t.Error("list ordering wrong")
	}
}
