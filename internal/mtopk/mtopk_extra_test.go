package mtopk

import (
	"testing"

	"commtopk/internal/comm"
	"commtopk/internal/xrand"
)

func TestGenCorrelatedObjects(t *testing.T) {
	objs := GenCorrelatedObjects(xrand.New(1), 2000, 3, 100)
	if len(objs) != 2000 || objs[0].ID != 100 {
		t.Fatal("shape wrong")
	}
	// Positive correlation: per-object score variance should be well below
	// the variance of independent uniforms.
	var within float64
	for _, o := range objs {
		mean := (o.Scores[0] + o.Scores[1] + o.Scores[2]) / 3
		for _, s := range o.Scores {
			within += (s - mean) * (s - mean)
		}
	}
	within /= float64(3 * len(objs))
	if within > 0.04 { // independent uniforms would give ~0.083·2/3 ≈ 0.056
		t.Errorf("within-object variance %v; correlation too weak", within)
	}
}

func TestDTAOnCorrelatedWorkload(t *testing.T) {
	// Correlated criteria are TA's easy case: DTA should stop at small K.
	const p = 4
	datas := make([]*Data, p)
	var all []Object
	for r := 0; r < p; r++ {
		objs := GenCorrelatedObjects(xrand.NewPE(2, r), 500, 3, uint64(r)<<32)
		datas[r] = NewData(objs, 3)
		all = append(all, objs...)
	}
	want := BruteForceTopK(NewData(all, 3), SumScore, 8)
	m := comm.NewMachine(comm.DefaultConfig(p))
	union := map[uint64]bool{}
	hitsByPE := make([][]Hit, p)
	var res DTAResult
	m.MustRun(func(pe *comm.PE) {
		r := DTA(pe, datas[pe.Rank()], SumScore, 8, xrand.NewPE(3, pe.Rank()))
		hitsByPE[pe.Rank()] = r.Hits
		if pe.Rank() == 0 {
			res = r
		}
	})
	for _, hs := range hitsByPE {
		for _, h := range hs {
			union[h.ID] = true
		}
	}
	for _, w := range want {
		if !union[w.ID] {
			t.Errorf("missed top object %d", w.ID)
		}
	}
	if res.K >= 2000 {
		t.Errorf("DTA escalated to K=%d on an easy workload", res.K)
	}
}

func TestDTAEmptyAndTinyInputs(t *testing.T) {
	const p = 3
	m := comm.NewMachine(comm.DefaultConfig(p))
	m.MustRun(func(pe *comm.PE) {
		empty := NewData(nil, 2)
		res := DTA(pe, empty, SumScore, 5, xrand.NewPE(4, pe.Rank()))
		if len(res.Hits) != 0 {
			t.Errorf("empty data produced hits")
		}
	})
	// One object total, living on PE 0; k exceeds the corpus.
	m2 := comm.NewMachine(comm.DefaultConfig(p))
	m2.MustRun(func(pe *comm.PE) {
		var objs []Object
		if pe.Rank() == 0 {
			objs = []Object{{ID: 42, Scores: []float64{0.9, 0.1}}}
		}
		d := NewData(objs, 2)
		res := DTA(pe, d, SumScore, 5, xrand.NewPE(5, pe.Rank()))
		if pe.Rank() == 0 {
			if len(res.Hits) != 1 || res.Hits[0].ID != 42 {
				t.Errorf("singleton corpus: hits %v", res.Hits)
			}
		} else if len(res.Hits) != 0 {
			t.Errorf("PE %d fabricated hits", pe.Rank())
		}
	})
}

func TestRDTAKExceedsCorpus(t *testing.T) {
	const p = 2
	m := comm.NewMachine(comm.DefaultConfig(p))
	shares := make([][]Hit, p)
	m.MustRun(func(pe *comm.PE) {
		objs := GenObjects(xrand.NewPE(6, pe.Rank()), 3, 2, uint64(pe.Rank())<<32)
		d := NewData(objs, 2)
		shares[pe.Rank()] = RDTA(pe, d, SumScore, 50, xrand.NewPE(7, pe.Rank()))
	})
	total := len(shares[0]) + len(shares[1])
	if total != 6 {
		t.Errorf("k beyond corpus returned %d of 6 objects", total)
	}
}

func TestDuplicateObjectIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate ID should panic")
		}
	}()
	NewData([]Object{
		{ID: 1, Scores: []float64{0.1}},
		{ID: 1, Scores: []float64{0.2}},
	}, 1)
}

func TestDTAKValidation(t *testing.T) {
	m := comm.NewMachine(comm.DefaultConfig(1))
	err := m.Run(func(pe *comm.PE) {
		DTA(pe, NewData(nil, 1), SumScore, 0, xrand.New(1))
	})
	if err == nil {
		t.Error("k=0 should panic")
	}
}

func TestDTAProbedFewerRounds(t *testing.T) {
	// The Section 6 refinement: probing several K per round must reduce
	// the exponential-search round count without losing hits.
	const p = 4
	const perPE = 2000
	const k = 24
	datas := make([]*Data, p)
	var all []Object
	for r := 0; r < p; r++ {
		objs := GenObjects(xrand.NewPE(8, r), perPE, 3, uint64(r)<<32)
		datas[r] = NewData(objs, 3)
		all = append(all, objs...)
	}
	want := BruteForceTopK(NewData(all, 3), SumScore, k)

	run := func(probes int) (DTAResult, map[uint64]bool) {
		m := comm.NewMachine(comm.DefaultConfig(p))
		union := map[uint64]bool{}
		hitsByPE := make([][]Hit, p)
		var res DTAResult
		m.MustRun(func(pe *comm.PE) {
			r := DTAProbed(pe, datas[pe.Rank()], SumScore, k, probes, xrand.NewPE(9, pe.Rank()))
			hitsByPE[pe.Rank()] = r.Hits
			if pe.Rank() == 0 {
				res = r
			}
		})
		for _, hs := range hitsByPE {
			for _, h := range hs {
				union[h.ID] = true
			}
		}
		return res, union
	}
	plain, unionPlain := run(1)
	probed, unionProbed := run(3)
	if probed.Rounds > plain.Rounds {
		t.Errorf("probed rounds %d > plain %d", probed.Rounds, plain.Rounds)
	}
	for _, w := range want {
		if !unionPlain[w.ID] {
			t.Errorf("plain DTA missed %d", w.ID)
		}
		if !unionProbed[w.ID] {
			t.Errorf("probed DTA missed %d", w.ID)
		}
	}
}

func TestDTAProbedValidation(t *testing.T) {
	m := comm.NewMachine(comm.DefaultConfig(1))
	err := m.Run(func(pe *comm.PE) {
		DTAProbed(pe, NewData(nil, 1), SumScore, 1, 0, xrand.New(1))
	})
	if err == nil {
		t.Error("probes=0 should panic")
	}
}
