package experiments

import (
	"fmt"
	"testing"
	"time"

	"commtopk/internal/dht"
	"commtopk/internal/qsel"
	"commtopk/internal/treap"
	"commtopk/internal/xrand"
)

// The local-kernel microbenchmark family (-exp kernels and the
// Kernels/... entries of the JSON pipeline): the sort-free selection
// kernels under every pivot-extraction and residual-solve site, the
// dht.Table probe loop, and the treap's structural operations. These are
// host-only measurements — no machine, no meters — because the kernels
// are exactly the local-work x term of the cost model; the distributed
// meters cannot move (pinned by the differential suites).
//
// Engine comparison semantics: the value-only call sites used to do
// "copy into scratch, then scalar Floyd–Rivest" (the copy paid either
// explicitly or as the concat that built the scratch), so the scalar
// twin times copy+SelectScalar while SelectInto runs bare — its first
// fused pass is the copy. Select times the in-place engine dispatch on
// an equally fresh copy.

// kernelDist is one input distribution of the sweep.
type kernelDist struct {
	name string
	gen  func(rng *xrand.RNG, n int) []uint64
}

// kernelDists covers the branch-predictability spectrum the two bucket
// engines were designed against: uniform random (counting wins),
// duplicate-heavy (16-bit level resolves narrow ranges), low-byte-only
// (adversarial for radix narrowing: every high byte constant), sorted
// (ascending fast path), and sawtooth (adversarial, period 1024: the
// branch predictor learns Floyd–Rivest's partition, so the scalar path
// is the one to beat and the bucket engines lose — kept in the family
// precisely to keep that regression visible).
var kernelDists = []kernelDist{
	{"random", func(rng *xrand.RNG, n int) []uint64 {
		s := make([]uint64, n)
		for i := range s {
			s[i] = rng.Uint64()
		}
		return s
	}},
	{"dupheavy", func(rng *xrand.RNG, n int) []uint64 {
		s := make([]uint64, n)
		for i := range s {
			s[i] = rng.Uint64() % 16
		}
		return s
	}},
	{"lowbyte", func(rng *xrand.RNG, n int) []uint64 {
		s := make([]uint64, n)
		for i := range s {
			s[i] = 0xabcdef0000000000 | (rng.Uint64() & 0xff)
		}
		return s
	}},
	{"sorted", func(rng *xrand.RNG, n int) []uint64 {
		s := make([]uint64, n)
		for i := range s {
			s[i] = uint64(i)
		}
		return s
	}},
	{"sawtooth", func(rng *xrand.RNG, n int) []uint64 {
		s := make([]uint64, n)
		for i := range s {
			s[i] = uint64(i % 1024)
		}
		return s
	}},
}

// kernelSink defeats dead-code elimination of the benchmark bodies.
var kernelSink uint64

// kernelEngines are the three selection paths of the sweep (see the
// package comment for why scalar and select pay an explicit copy).
var kernelEngines = []struct {
	name string
	run  func(work, src []uint64, k int)
}{
	{"scalar", func(work, src []uint64, k int) {
		copy(work, src)
		kernelSink += qsel.SelectScalar(work, k)
	}},
	{"select", func(work, src []uint64, k int) {
		copy(work, src)
		kernelSink += qsel.Select(work, k)
	}},
	{"into", func(work, src []uint64, k int) {
		kernelSink += qsel.SelectInto(work, src, k)
	}},
}

// timeKernel measures one engine on one input: a single timed run in
// quick mode (the CI smoke tier), otherwise the best of three — the
// right statistic for a deterministic kernel under scheduler noise.
func timeKernel(run func(), quick bool) time.Duration {
	reps := 3
	if quick {
		reps = 1
	}
	best := time.Duration(0)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		run()
		d := time.Since(t0)
		if r == 0 || d < best {
			best = d
		}
	}
	return best
}

// KernelsTables renders the -exp kernels family: the selection-engine
// sweep over n and distribution, plus the probe-loop and treap
// structural-operation rows. quick selects the CI smoke tier — one run
// per op and n capped at 2^18.
func KernelsTables(quick bool) []Table {
	nMax := 1 << 24
	if quick {
		nMax = 1 << 18
	}
	selT := Table{
		Title: "Local kernels: selection engines (ns/element, rank n/2)",
		Notes: "scalar = copy+Floyd-Rivest (the pre-PR6 value-only path); select = in-place engine dispatch\n" +
			"(bucket within [2^11, 2^15], scalar outside); into = SelectInto compress engine (no copy: its\n" +
			"first fused pass is the copy). sawtooth is the documented adversarial case: the predictor\n" +
			"learns the periodic partition branches, so scalar wins there at every n.",
		Header: []string{"n", "dist", "scalar", "select", "into", "into vs scalar"},
	}
	for n := 1 << 10; n <= nMax; n <<= 2 {
		for _, d := range kernelDists {
			src := d.gen(xrand.New(int64(n)), n)
			work := make([]uint64, n)
			k := n / 2
			perElem := make([]float64, len(kernelEngines))
			for ei, e := range kernelEngines {
				e := e
				dur := timeKernel(func() { e.run(work, src, k) }, quick)
				perElem[ei] = float64(dur.Nanoseconds()) / float64(n)
			}
			selT.Rows = append(selT.Rows, []string{
				fmt.Sprintf("2^%d", log2i(n)),
				d.name,
				fmt.Sprintf("%.2f", perElem[0]),
				fmt.Sprintf("%.2f", perElem[1]),
				fmt.Sprintf("%.2f", perElem[2]),
				fmt.Sprintf("%+.0f%%", (perElem[2]/perElem[0]-1)*100),
			})
		}
	}

	locT := Table{
		Title: "Local kernels: dht.Table probe and treap structural ops",
		Notes: "probe: Get over every inserted key (hit) plus as many misses, SWAR group-matched control\n" +
			"words; treap: random insert/delete churn plus split/concat cycles, iterative alloc-free paths.",
		Header: []string{"kernel", "n", "ns/op"},
	}
	nTab := 1 << 16
	if quick {
		nTab = 1 << 12
	}
	dur := timeKernel(func() { kernelSink += benchTableProbe(nTab) }, quick)
	locT.Rows = append(locT.Rows, []string{"table-probe", fmt.Sprintf("2^%d", log2i(nTab)),
		fmt.Sprintf("%.1f", float64(dur.Nanoseconds())/float64(2*nTab))})
	nTr := 1 << 13
	if quick {
		nTr = 1 << 10
	}
	dur = timeKernel(func() { kernelSink += benchTreapChurn(nTr) }, quick)
	locT.Rows = append(locT.Rows, []string{"treap-churn", fmt.Sprintf("2^%d", log2i(nTr)),
		fmt.Sprintf("%.1f", float64(dur.Nanoseconds())/float64(4*nTr))})
	return []Table{selT, locT}
}

func log2i(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// benchTableProbe builds a count table of n keys and probes every key
// (hit) and n absent keys (miss); returns a sink value.
func benchTableProbe(n int) uint64 {
	t := dht.NewTable(n)
	rng := xrand.New(99)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
		t.Add(keys[i], 1)
	}
	var sink uint64
	for _, k := range keys {
		if v, ok := t.Get(k); ok {
			sink += uint64(v)
		}
	}
	for i := 0; i < n; i++ {
		if _, ok := t.Get(rng.Uint64()); ok {
			sink++
		}
	}
	t.Release()
	return sink
}

// benchTreapChurn exercises the iterative treap paths the bulk priority
// queue leans on: n inserts, n/2 deletes, rank splits and concats, and a
// full in-order walk; returns a sink value.
func benchTreapChurn(n int) uint64 {
	tr := treap.New[uint64](5)
	rng := xrand.New(7)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
		tr.Insert(keys[i])
	}
	for i := 0; i < n/2; i++ {
		tr.Delete(keys[i])
	}
	for i := 0; i < 8; i++ {
		low := tr.SplitByRank(tr.Len() / 2)
		low.Concat(tr)
		*tr = *low
	}
	var sink uint64
	tr.Ascend(func(k uint64) bool {
		sink += k
		return true
	})
	return sink
}

// KernelSuite runs the pipeline subset of the kernel family through
// testing.Benchmark and returns Kernels/... entries for BENCH_PR<N>.json:
// the full distribution set at n = 2^20 (the acceptance-criterion size)
// for the value-only engines, the crossover sizes on random input for all
// three, the memory-scale point, and the probe/treap kernels.
func KernelSuite(progress func(string)) []BenchResult {
	var out []BenchResult
	add := func(name string, body func(b *testing.B)) {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			body(b)
		})
		res := BenchResult{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: float64(r.AllocsPerOp()),
			BytesPerOp:  float64(r.AllocedBytesPerOp()),
		}
		out = append(out, res)
		if progress != nil {
			progress(fmt.Sprintf("%-40s %12.0f ns/op %10.1f allocs/op %12.0f B/op",
				name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp))
		}
	}
	selCase := func(engine int, dist kernelDist, n int) {
		e := kernelEngines[engine]
		add(fmt.Sprintf("Kernels/Select/%s/%s/n=2^%d", e.name, dist.name, log2i(n)), func(b *testing.B) {
			src := dist.gen(xrand.New(int64(n)), n)
			work := make([]uint64, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.run(work, src, n/2)
			}
		})
	}
	for di := range kernelDists {
		selCase(0, kernelDists[di], 1<<20) // scalar: the before
		selCase(2, kernelDists[di], 1<<20) // into: the after
	}
	for _, n := range []int{1 << 12, 1 << 16} { // in-place engine band and its upper edge
		for e := range kernelEngines {
			selCase(e, kernelDists[0], n)
		}
	}
	selCase(0, kernelDists[0], 1<<24) // memory scale
	selCase(2, kernelDists[0], 1<<24)
	add("Kernels/TableProbe/n=2^16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kernelSink += benchTableProbe(1 << 16)
		}
	})
	add("Kernels/TreapChurn/n=2^13", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kernelSink += benchTreapChurn(1 << 13)
		}
	})
	return out
}
