package experiments

import (
	"fmt"

	"commtopk/internal/bpq"
	"commtopk/internal/comm"
	"commtopk/internal/dht"
	"commtopk/internal/redist"
	"commtopk/internal/sel"
	"commtopk/internal/xrand"
)

// AblationAMSBatch measures Theorem 4: batching d concurrent Bernoulli
// trials into one vector reduction cuts the expected round count of
// flexible selection, at β·d extra volume per round.
func AblationAMSBatch(p, perPE int, kmin, kmax int64, seed int64) Table {
	t := Table{
		Title:  fmt.Sprintf("Ablation — amsSelect concurrent trials (p=%d, n/p=%d, k∈[%d,%d])", p, perPE, kmin, kmax),
		Notes:  "Theorem 4: expected rounds drop as d grows; words/PE grows with βd per round",
		Header: append([]string{"d", "rounds(avg)", "wall(ms)"}, stdHeader...),
	}
	locals := sortedLocals(seed, p, perPE)
	for _, d := range []int{1, 2, 4, 8, 16, 32} {
		const reps = 10
		var rounds int
		m := comm.NewMachine(expConfig(p))
		var last *measurement
		for rep := 0; rep < reps; rep++ {
			rep := rep
			meas := runMeasured(m, func(pe *comm.PE) {
				res := sel.AMSSelectBatched[uint64](pe, sel.SliceSeq[uint64](locals[pe.Rank()]),
					kmin, kmax, d, xrand.NewPE(seed+int64(100+rep), pe.Rank()))
				if pe.Rank() == 0 {
					rounds += res.Rounds
				}
			})
			last = meas
		}
		row := []string{fmt.Sprintf("%d", d), fmt.Sprintf("%.1f", float64(rounds)/reps), ms(last.wall)}
		t.Rows = append(t.Rows, append(row, stdCols(last)...))
	}
	return t
}

// AblationPQFlexible measures Theorem 5: flexible deleteMin* batches
// (O(α log kp)) vs exact batches (O(α log² kp)), in bottleneck startups.
func AblationPQFlexible(p, perPE int, k int64, seed int64) Table {
	t := Table{
		Title:  fmt.Sprintf("Ablation — bulk PQ deleteMin*: exact vs flexible batch (p=%d, n/p=%d, k=%d)", p, perPE, k),
		Notes:  "Theorem 5: flexible batch sizes save a log factor of startups",
		Header: append([]string{"variant", "wall(ms)"}, stdHeader...),
	}
	locals := sortedLocals(seed, p, perPE)
	for _, flexible := range []bool{false, true} {
		m := comm.NewMachine(expConfig(p))
		meas := runMeasured(m, func(pe *comm.PE) {
			q := bpq.New[uint64](pe, seed+1)
			q.InsertBulk(locals[pe.Rank()])
			if flexible {
				q.DeleteMinFlexible(k, 2*k)
			} else {
				q.DeleteMin(k)
			}
		})
		name := "exact k"
		if flexible {
			name = "flexible k..2k"
		}
		t.Rows = append(t.Rows, append([]string{name, ms(meas.wall)}, stdCols(meas)...))
	}
	return t
}

// AblationDHTRouting measures the Section 7.1 design choice: direct
// all-to-all vs hypercube delivery with per-step aggregation, on a
// workload where every PE counts the same keys. Total volume is the same
// for both (each contribution crosses the network once either way); the
// hypercube's wins are the O(log p) startups instead of p−1 — the
// "indirect delivery to maintain logarithmic latency" of the paper — and
// a smoother receive bottleneck under skewed key ownership.
func AblationDHTRouting(p, distinct int, seed int64) Table {
	t := Table{
		Title:  fmt.Sprintf("Ablation — DHT count routing (p=%d, %d shared keys per PE)", p, distinct),
		Notes:  "hypercube: O(log p) startups and smoothed recv bottleneck; direct: p−1 startups\n(total volume ties — every contribution crosses the network once either way)",
		Header: append([]string{"route", "wall(ms)"}, stdHeader...),
	}
	for _, mode := range []dht.RouteMode{dht.RouteDirect, dht.RouteHypercube} {
		m := comm.NewMachine(expConfig(p))
		meas := runMeasured(m, func(pe *comm.PE) {
			local := make(map[uint64]int64, distinct)
			for k := 0; k < distinct; k++ {
				local[uint64(k)] = int64(pe.Rank() + 1)
			}
			dht.CountKeys(pe, local, mode)
		})
		name := "direct"
		if mode == dht.RouteHypercube {
			name = "hypercube"
		}
		t.Rows = append(t.Rows, append([]string{name, ms(meas.wall)}, stdCols(meas)...))
	}
	return t
}

// AblationRedistribution measures Section 9's claim: the adaptive plan
// moves only the imbalance, the random-reallocation baseline moves
// everything, at increasing skew.
func AblationRedistribution(p, perPE int, seed int64) Table {
	t := Table{
		Title:  fmt.Sprintf("Ablation — data redistribution volume (p=%d, n/p=%d)", p, perPE),
		Notes:  "skew = fraction of the data concentrated on one PE; volume in total words moved",
		Header: []string{"skew", "adaptive words", "naive words", "ratio"},
	}
	for _, skewPct := range []int{0, 10, 50, 100} {
		counts := make([]int64, p)
		total := int64(p * perPE)
		hot := total * int64(skewPct) / 100
		rest := (total - hot) / int64(p)
		for i := range counts {
			counts[i] = rest
		}
		counts[0] += hot + (total - hot - rest*int64(p))
		run := func(naive bool) int64 {
			m := comm.NewMachine(expConfig(p))
			m.MustRun(func(pe *comm.PE) {
				local := make([]uint64, counts[pe.Rank()])
				if naive {
					redist.NaiveExchange(pe, local, xrand.NewPE(seed, pe.Rank()))
				} else {
					redist.Balance(pe, local)
				}
			})
			return m.Stats().TotalWords
		}
		adaptive, naive := run(false), run(true)
		ratio := "-"
		if adaptive > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(naive)/float64(adaptive))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d%%", skewPct),
			fmt.Sprintf("%d", adaptive),
			fmt.Sprintf("%d", naive),
			ratio,
		})
	}
	return t
}

// CollectivesScaling validates the substrate itself: bottleneck startup
// counts of the core collectives must grow logarithmically in p.
func CollectivesScaling(pList []int) Table {
	t := Table{
		Title:  "Substrate — collective startup scaling (expect O(log p))",
		Header: []string{"p", "bcast", "allreduce", "scan", "allgather", "hypercube a2a"},
	}
	for _, p := range pList {
		m := comm.NewMachine(expConfig(p))
		startups := func(body func(pe *comm.PE)) int64 {
			meas := runMeasured(m, body)
			return meas.stats.MaxSends
		}
		b := startups(func(pe *comm.PE) { collBroadcast(pe) })
		a := startups(func(pe *comm.PE) { collAllReduce(pe) })
		s := startups(func(pe *comm.PE) { collScan(pe) })
		g := startups(func(pe *comm.PE) { collAllGather(pe) })
		h := startups(func(pe *comm.PE) { collHyperA2A(pe) })
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%d", b), fmt.Sprintf("%d", a), fmt.Sprintf("%d", s),
			fmt.Sprintf("%d", g), fmt.Sprintf("%d", h),
		})
	}
	return t
}
