package experiments

import (
	"fmt"
	"math"
	"slices"

	"commtopk/internal/agg"
	"commtopk/internal/bpq"
	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/freq"
	"commtopk/internal/gen"
	"commtopk/internal/mtopk"
	"commtopk/internal/sel"
	"commtopk/internal/xrand"
)

// Table1 validates the paper's headline complexity table: for every
// problem it measures the bottleneck communication volume (β-term) and
// startup count (α-term) of the new algorithm, next to the "old"
// baseline where the paper lists one, at a fixed PE count. The stated
// bound is reproduced as a formula with its numeric value at the chosen
// parameters, so sublinearity is visible directly.
func Table1(p int, perPE int, k int, seed int64) Table {
	t := Table{
		Title: fmt.Sprintf("Table 1 — measured bottleneck communication vs stated bounds (p=%d, n/p=%d, k=%d)", p, perPE, k),
		Notes: "words/PE = max over PEs of words sent; start/PE = max messages sent\n" +
			"old baselines: unsorted selection = random redistribution first [31]; frequent objects = Naive coordinator",
		Header: []string{"problem", "variant", "words/PE", "start/PE", "bound (β-term)", "n/p"},
	}
	logp := math.Log2(float64(p))
	n := int64(p * perPE)

	addRow := func(problem, variant string, meas *measurement, bound string) {
		t.Rows = append(t.Rows, []string{
			problem, variant,
			fmt.Sprintf("%d", meas.stats.MaxSentWords),
			fmt.Sprintf("%d", meas.stats.MaxSends),
			bound,
			fmt.Sprintf("%d", perPE),
		})
	}

	// --- Unsorted selection --------------------------------------------
	{
		locals := make([][]uint64, p)
		for r := 0; r < p; r++ {
			locals[r] = gen.SelectionInput(xrand.NewPE(seed, r), perPE, 16)
		}
		m := comm.NewMachine(expConfig(p))
		meas := runMeasured(m, func(pe *comm.PE) {
			sel.Kth(pe, locals[pe.Rank()], n/2, xrand.NewPE(seed+1, pe.Rank()))
		})
		bound := fmt.Sprintf("min(√p·log_p n, n/p) = %.0f", math.Min(
			math.Sqrt(float64(p))*math.Log(float64(n))/math.Max(math.Log(float64(p)), 1),
			float64(perPE)))
		addRow("unsorted selection", "new (Thm 1)", meas, bound)

		measOld := runMeasured(m, func(pe *comm.PE) {
			sel.KthRandomized(pe, locals[pe.Rank()], n/2, xrand.NewPE(seed+2, pe.Rank()))
		})
		addRow("unsorted selection", "old [31]", measOld, fmt.Sprintf("Ω(n/p) = %d", perPE))
	}

	// --- Sorted selection (multisequence) ------------------------------
	{
		locals := sortedLocals(seed+3, p, perPE)
		m := comm.NewMachine(expConfig(p))
		meas := runMeasured(m, func(pe *comm.PE) {
			shared := xrand.New(seed + 4)
			sel.MSSelect[uint64](pe, sel.SliceSeq[uint64](locals[pe.Rank()]), int64(k), shared)
		})
		addRow("sorted selection", "exact (α log² kp)", meas, "O(1) words (pivots only)")

		measFlex := runMeasured(m, func(pe *comm.PE) {
			sel.AMSSelect[uint64](pe, sel.SliceSeq[uint64](locals[pe.Rank()]), int64(k), 2*int64(k), xrand.NewPE(seed+5, pe.Rank()))
		})
		addRow("sorted selection", "flexible k (α log kp)", measFlex, "O(1) words (pivots only)")
	}

	// --- Bulk priority queue -------------------------------------------
	{
		locals := sortedLocals(seed+6, p, perPE/4)
		m := comm.NewMachine(expConfig(p))
		meas := runMeasured(m, func(pe *comm.PE) {
			q := bpq.New[uint64](pe, seed+7)
			q.InsertBulk(locals[pe.Rank()])
			q.DeleteMin(int64(k))
		})
		addRow("bulk PQ insert*+deleteMin*", "new (Thm 5)", meas, "O(1) words (no element moves)")

		measOld := runMeasured(m, func(pe *comm.PE) {
			// Old approach [31]: inserted elements go to random PEs.
			rng := xrand.NewPE(seed+8, pe.Rank())
			shuffled := randomReassign(pe, locals[pe.Rank()], rng)
			q := bpq.New[uint64](pe, seed+9)
			q.InsertBulk(shuffled)
			q.DeleteMin(int64(k))
		})
		addRow("bulk PQ insert*+deleteMin*", "old [31] (random alloc)", measOld,
			fmt.Sprintf("Θ(n/p) = %d", perPE/4))
	}

	// --- Top-k most frequent objects ------------------------------------
	{
		z := gen.NewZipf(1<<16, 1)
		locals := make([][]uint64, p)
		for r := 0; r < p; r++ {
			locals[r] = gen.FrequencyInput(xrand.NewPE(seed+10, r), z, perPE)
		}
		params := freq.Params{K: k, Eps: 0.02, Delta: 1e-4}
		m := comm.NewMachine(expConfig(p))
		meas := runMeasured(m, func(pe *comm.PE) {
			freq.PAC(pe, locals[pe.Rank()], params, xrand.NewPE(seed+11, pe.Rank()))
		})
		addRow("top-k frequent", "PAC (Thm 7)", meas,
			fmt.Sprintf("(log p)/(p·ε²)·log(k/δ) ≈ %.0f", logp/(float64(p)*params.Eps*params.Eps)*math.Log(float64(k)/params.Delta)))

		measEC := runMeasured(m, func(pe *comm.PE) {
			freq.EC(pe, locals[pe.Rank()], params, xrand.NewPE(seed+12, pe.Rank()))
		})
		addRow("top-k frequent", "EC (Thm 11)", measEC,
			fmt.Sprintf("(1/ε)·√(log p/p)·log(n/δ) ≈ %.0f", 1/params.Eps*math.Sqrt(logp/float64(p))*math.Log(float64(n)/params.Delta)))

		measNaive := runMeasured(m, func(pe *comm.PE) {
			freq.Naive(pe, locals[pe.Rank()], params, xrand.NewPE(seed+13, pe.Rank()))
		})
		addRow("top-k frequent", "old (coordinator)", measNaive, "Ω(k/ε) at the master")
	}

	// --- Top-k sum aggregation ------------------------------------------
	{
		z := gen.NewZipf(1<<14, 1)
		keys := make([][]uint64, p)
		vals := make([][]float64, p)
		for r := 0; r < p; r++ {
			keys[r], vals[r] = gen.WeightedInput(xrand.NewPE(seed+14, r), z, perPE)
		}
		m := comm.NewMachine(expConfig(p))
		meas := runMeasured(m, func(pe *comm.PE) {
			agg.PAC(pe, keys[pe.Rank()], vals[pe.Rank()], agg.Params{K: k, Eps: 0.02, Delta: 1e-4}, xrand.NewPE(seed+15, pe.Rank()))
		})
		addRow("top-k sum aggregation", "new (Thm 15)", meas,
			fmt.Sprintf("(log p/ε)·√(1/p)·log(n/δ) ≈ %.0f", logp/0.02*math.Sqrt(1/float64(p))*math.Log(float64(n)/1e-4)))
	}

	// --- Multicriteria top-k --------------------------------------------
	{
		const mCrit = 4
		datas := make([]*mtopk.Data, p)
		for r := 0; r < p; r++ {
			datas[r] = mtopk.NewData(mtopk.GenObjects(xrand.NewPE(seed+16, r), perPE/8, mCrit, uint64(r)<<40), mCrit)
		}
		m := comm.NewMachine(expConfig(p))
		meas := runMeasured(m, func(pe *comm.PE) {
			mtopk.DTA(pe, datas[pe.Rank()], mtopk.SumScore, k, xrand.NewPE(seed+17, pe.Rank()))
		})
		addRow("multicriteria top-k", "DTA (Thm 6)", meas, "m·logK words")
	}

	return t
}

func sortedLocals(seed int64, p, perPE int) [][]uint64 {
	locals := make([][]uint64, p)
	for r := 0; r < p; r++ {
		rng := xrand.NewPE(seed, r)
		l := make([]uint64, perPE)
		for i := range l {
			// Globally unique: random high word, (rank, index) stamp low —
			// the paper's (v, x) tie-breaking composition.
			l[i] = rng.Uint64()<<32 | uint64(r)<<24 | uint64(i)&0xffffff
		}
		sortU64(l)
		locals[r] = l
	}
	return locals
}

func sortU64(s []uint64) {
	// stdlib sort; kept behind a helper so the experiment files stay
	// dependency-light.
	slicesSort(s)
}

// randomReassign sends every element to a uniformly random PE — the
// "random allocation" precondition of the pre-paper data structures.
func randomReassign(pe *comm.PE, local []uint64, rng *xrand.RNG) []uint64 {
	p := pe.P()
	parts := make([][]uint64, p)
	for _, x := range local {
		d := rng.Intn(p)
		parts[d] = append(parts[d], x)
	}
	recv := allToAll(pe, parts)
	var out []uint64
	for _, part := range recv {
		out = append(out, part...)
	}
	return out
}

// slicesSort and allToAll are thin aliases keeping the experiment files'
// import lists focused on the algorithm packages.
func slicesSort(s []uint64) { slices.Sort(s) }

func allToAll(pe *comm.PE, parts [][]uint64) [][]uint64 {
	return coll.AllToAll(pe, parts)
}
