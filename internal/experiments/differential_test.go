package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/gen"
	"commtopk/internal/sel"
	"commtopk/internal/xrand"
)

// Backend differential coverage: the mailbox runtime must be a bit-exact
// drop-in for the channel matrix. Every operation of the collective suite
// plus unsorted selection runs on both backends with equal seeds; the
// per-PE results AND the metered statistics (words/PE, startups/PE, the
// modeled clock) must match exactly — the metering happens above the
// transport, and both transports preserve per-sender FIFO order, so any
// divergence is a runtime bug.

// diffOp is one differentially tested operation: run returns this PE's
// result as a comparable value.
type diffOp struct {
	name string
	run  func(pe *comm.PE, seed int64) any
}

func diffOps(perPE int) []diffOp {
	return []diffOp{
		{"Broadcast", func(pe *comm.PE, seed int64) any {
			var data []int64
			if pe.Rank() == 0 {
				data = []int64{seed, seed * 3, 42}
			}
			got := coll.Broadcast(pe, 0, data)
			out := make([]int64, len(got))
			copy(out, got)
			return out
		}},
		{"AllReduceVec", func(pe *comm.PE, seed int64) any {
			x := []int64{int64(pe.Rank()) + seed, 1, int64(pe.Rank() * pe.Rank())}
			return coll.AllReduce(pe, x, func(a, b int64) int64 { return a + b })
		}},
		{"AllReduceLong", func(pe *comm.PE, seed int64) any {
			x := make([]int64, 4*pe.P()+3)
			for i := range x {
				x[i] = seed + int64(pe.Rank()*len(x)+i)
			}
			return coll.AllReduce(pe, x, func(a, b int64) int64 { return a + b })
		}},
		{"ExScanSum", func(pe *comm.PE, seed int64) any {
			return coll.ExScanSum(pe, int64(pe.Rank())+seed)
		}},
		{"InScan", func(pe *comm.PE, seed int64) any {
			return coll.InScan(pe, []int64{int64(pe.Rank()) + seed}, func(a, b int64) int64 { return a + b })
		}},
		{"GathervScatterv", func(pe *comm.PE, seed int64) any {
			data := make([]int64, pe.Rank()%3+1)
			for i := range data {
				data[i] = seed + int64(pe.Rank()*10+i)
			}
			parts := coll.Gatherv(pe, 0, data)
			back := coll.Scatterv(pe, 0, parts)
			out := make([]int64, len(back))
			copy(out, back)
			return out
		}},
		{"AllGatherConcat", func(pe *comm.PE, seed int64) any {
			return coll.AllGatherConcat(pe, []int64{int64(pe.Rank()) + seed, seed})
		}},
		{"AllGathervRagged", func(pe *comm.PE, seed int64) any {
			data := make([]int64, pe.Rank()%4)
			for i := range data {
				data[i] = seed + int64(pe.Rank()+i)
			}
			views := coll.AllGatherv(pe, data)
			var flat []int64
			for _, v := range views {
				flat = append(flat, v...)
			}
			return flat
		}},
		{"AllToAll", func(pe *comm.PE, seed int64) any {
			parts := make([][]int64, pe.P())
			for d := range parts {
				parts[d] = []int64{seed + int64(pe.Rank()*1000+d)}
			}
			got := coll.AllToAll(pe, parts)
			var flat []int64
			for _, part := range got {
				flat = append(flat, part...)
			}
			return flat
		}},
		{"AllGatherChunked", func(pe *comm.PE, seed int64) any {
			data := make([]int64, pe.Rank()%4)
			for i := range data {
				data[i] = seed + int64(pe.Rank()*7+i)
			}
			flat := make([]int64, 0, 4*pe.P())
			blocks := make([][]int64, pe.P())
			coll.AllGatherChunked(pe, data, 3, func(src int, block []int64) {
				blocks[src] = append([]int64(nil), block...)
			})
			for _, b := range blocks {
				flat = append(flat, b...)
			}
			return flat
		}},
		{"HypercubeA2AChunked", func(pe *comm.PE, seed int64) any {
			items := make([]coll.Routed[int64], pe.P())
			for d := range items {
				items[d] = coll.Routed[int64]{Dest: d, Payload: seed + int64(pe.Rank()+d)}
			}
			got := coll.AllToAllCombineChunked(pe, items, 2, nil)
			var sum int64
			for _, it := range got {
				sum += it.Payload
			}
			return sum
		}},
		{"HypercubeA2A", func(pe *comm.PE, seed int64) any {
			items := make([]coll.Routed[int64], pe.P())
			for d := range items {
				items[d] = coll.Routed[int64]{Dest: d, Payload: seed + int64(pe.Rank())}
			}
			got := coll.AllToAllCombine(pe, items, nil)
			var sum int64
			for _, it := range got {
				sum += it.Payload
			}
			return sum
		}},
		{"IRecvPipeline", func(pe *comm.PE, seed int64) any {
			// Two receives posted against one source must complete in
			// posting order with the same meter as blocking Recvs — the
			// handle API's FIFO contract, pinned across backends.
			tag := pe.NextCollTag()
			p := pe.P()
			next, prev := (pe.Rank()+1)%p, (pe.Rank()-1+p)%p
			h1 := pe.IRecv(prev, tag)
			h2 := pe.IRecv(prev, tag)
			pe.Send(next, tag, seed+int64(pe.Rank()), 1)
			pe.Send(next, tag, int64(pe.Rank()*7), 2)
			a, _ := h1.Wait()
			b, _ := h2.Wait()
			return []int64{a.(int64), b.(int64)}
		}},
		{"GatherStrided", func(pe *comm.PE, seed int64) any {
			block := []int64{seed + int64(pe.Rank()), int64(pe.Rank() * 3)}
			var acc []int64
			coll.GatherStrided(pe, block, 5, func(src int, b []int64) {
				acc = append(acc, int64(src), b[0], b[1])
			})
			return acc
		}},
		{"SelKth", func(pe *comm.PE, seed int64) any {
			local := gen.SelectionInput(xrand.NewPE(seed, pe.Rank()), perPE, 12)
			n := int64(pe.P() * perPE)
			return sel.Kth(pe, local, n/2, xrand.NewPE(seed+7, pe.Rank()))
		}},
		{"SelSmallestK", func(pe *comm.PE, seed int64) any {
			local := gen.SelectionInput(xrand.NewPE(seed+1, pe.Rank()), perPE, 12)
			out := sel.SmallestK(pe, local, int64(pe.P()*4), xrand.NewPE(seed+9, pe.Rank()))
			// Order within a PE is unspecified but deterministic per run;
			// normalize by summing (the multiset is what is pinned).
			var sum uint64
			for _, v := range out {
				sum += v
			}
			return []any{len(out), sum}
		}},
	}
}

// runDiffSuite executes all ops on one machine, capturing per-PE results
// and per-op stats (ResetStats between ops isolates each op's metering).
func runDiffSuite(t *testing.T, cfg comm.Config, seed int64, perPE int) (results [][]any, stats []comm.Stats) {
	t.Helper()
	m := comm.NewMachine(cfg)
	defer m.Close()
	ops := diffOps(perPE)
	results = make([][]any, len(ops))
	for i := range results {
		results[i] = make([]any, cfg.P)
	}
	for i, op := range ops {
		m.ResetStats()
		i := i
		op := op
		if err := m.Run(func(pe *comm.PE) {
			results[i][pe.Rank()] = op.run(pe, seed)
		}); err != nil {
			t.Fatalf("%s on %s: %v", op.name, cfg.Backend, err)
		}
		stats = append(stats, m.Stats())
	}
	return results, stats
}

func TestBackendDifferential(t *testing.T) {
	const perPE = 1 << 10
	for _, p := range []int{4, 16, 64} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			seed := int64(1000 + p)
			chanRes, chanStats := runDiffSuite(t, comm.MatrixConfig(p), seed, perPE)
			boxRes, boxStats := runDiffSuite(t, comm.MailboxConfig(p), seed, perPE)
			ops := diffOps(perPE)
			for i, op := range ops {
				if !reflect.DeepEqual(chanRes[i], boxRes[i]) {
					t.Errorf("%s: results diverge between backends", op.name)
				}
				if chanStats[i] != boxStats[i] {
					t.Errorf("%s: stats diverge:\n  chanmatrix: %+v\n  mailbox:    %+v",
						op.name, chanStats[i], boxStats[i])
				}
			}
		})
	}
}

// TestBackendDifferentialShardedScheduler pins the sharded scheduler
// against the channel-matrix reference in the multiplexed regime — far
// fewer shards than PEs (w = 4, p = 64, so every shard queue is 16 deep
// and every collective forces driver hand-offs) plus the degenerate
// single-shard machine. Results and metered statistics must be
// bit-identical: scheduling order may differ wildly, but the per-PE RNG
// streams, per-sender FIFO delivery, and above-transport metering make
// every observable deterministic.
func TestBackendDifferentialShardedScheduler(t *testing.T) {
	const p, perPE = 64, 1 << 10
	const seed = int64(7700)
	chanRes, chanStats := runDiffSuite(t, comm.MatrixConfig(p), seed, perPE)
	for _, w := range []int{1, 4} {
		t.Run(fmt.Sprintf("w=%d", w), func(t *testing.T) {
			cfg := comm.MailboxConfig(p)
			cfg.Workers = w
			boxRes, boxStats := runDiffSuite(t, cfg, seed, perPE)
			for i, op := range diffOps(perPE) {
				if !reflect.DeepEqual(chanRes[i], boxRes[i]) {
					t.Errorf("%s: results diverge at w=%d", op.name, w)
				}
				if chanStats[i] != boxStats[i] {
					t.Errorf("%s: stats diverge at w=%d:\n  chanmatrix: %+v\n  mailbox:    %+v",
						op.name, w, chanStats[i], boxStats[i])
				}
			}
		})
	}
}

// TestBackendDifferentialRepeatedRuns pins cross-run state handling: tag
// sequences, scratch stores and the persistent worker pool must leave the
// machines equivalent after many reuse cycles.
func TestBackendDifferentialRepeatedRuns(t *testing.T) {
	const p, rounds = 8, 5
	mc := comm.NewMachine(comm.MatrixConfig(p))
	mb := comm.NewMachine(comm.MailboxConfig(p))
	defer mb.Close()
	for r := 0; r < rounds; r++ {
		var resC, resB [p]int64
		mc.MustRun(func(pe *comm.PE) {
			resC[pe.Rank()] = coll.SumAll(pe, int64(pe.Rank()+r)) + coll.ExScanSum(pe, int64(r))
		})
		mb.MustRun(func(pe *comm.PE) {
			resB[pe.Rank()] = coll.SumAll(pe, int64(pe.Rank()+r)) + coll.ExScanSum(pe, int64(r))
		})
		if resC != resB {
			t.Fatalf("round %d: results diverge: %v vs %v", r, resC, resB)
		}
		if sc, sb := mc.Stats(), mb.Stats(); sc != sb {
			t.Fatalf("round %d: cumulative stats diverge:\n  %+v\n  %+v", r, sc, sb)
		}
	}
}

// TestBackendDifferentialContinuationBodies pins RunAsync against the
// blocking reference: the continuation-scheduled collective suite on the
// mailbox backend (including w < p scheduler widths, where suspensions
// cross worker boundaries) must be bit-identical — per-PE results and
// metered statistics — to the same collectives as blocking bodies on the
// channel matrix.
func TestBackendDifferentialContinuationBodies(t *testing.T) {
	const p = 64
	sum := func(a, b int64) int64 { return a + b }
	blockBody := func(pe *comm.PE) int64 {
		coll.Broadcast(pe, 0, []int64{9, 8, 7})
		a := coll.AllReduceScalar(pe, int64(pe.Rank())+3, sum)
		b := coll.ExScanSum(pe, int64(pe.Rank()))
		coll.Barrier(pe)
		var g int64
		coll.GatherStrided(pe, []int64{int64(pe.Rank())}, 7, func(src int, blk []int64) { g += blk[0] })
		return a ^ b ^ g
	}
	start := func(pe *comm.PE, out *int64) comm.Stepper {
		var a, b, g int64
		return comm.SeqP(pe,
			coll.BroadcastStep[int64](pe, 0, []int64{9, 8, 7}, nil),
			coll.AllReduceScalarStep(pe, int64(pe.Rank())+3, sum, func(v int64) { a = v }),
			coll.ExScanSumStep(pe, int64(pe.Rank()), func(v int64) { b = v }),
			coll.BarrierStep(pe),
			coll.GatherStridedStep(pe, []int64{int64(pe.Rank())}, 7, func(src int, blk []int64) { g += blk[0] }),
			comm.StepFunc(func(pe *comm.PE) *comm.RecvHandle { *out = a ^ b ^ g; return nil }),
		)
	}
	mc := comm.NewMachine(comm.MatrixConfig(p))
	var refRes [p]int64
	mc.MustRun(func(pe *comm.PE) { refRes[pe.Rank()] = blockBody(pe) })
	refStats := mc.Stats()
	for _, w := range []int{0, 1, 4} {
		cfg := comm.MailboxConfig(p)
		cfg.Workers = w
		m := comm.NewMachine(cfg)
		var res [p]int64
		m.MustRunAsync(func(pe *comm.PE) comm.Stepper { return start(pe, &res[pe.Rank()]) })
		if res != refRes {
			t.Errorf("w=%d: continuation results diverge from blocking matrix reference", w)
		}
		if s := m.Stats(); s != refStats {
			t.Errorf("w=%d: stats diverge:\n  matrix blocking: %+v\n  mailbox async:   %+v", w, refStats, s)
		}
		m.Close()
	}
}
