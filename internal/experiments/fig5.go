package experiments

import (
	"fmt"

	"commtopk/internal/comm"
	"commtopk/internal/freq"
	"commtopk/internal/gen"
	"commtopk/internal/stats"
	"commtopk/internal/xrand"
)

// Fig5 demonstrates the Figure 5 scenario: a frequency distribution with
// a gap between the top-k head and the tail. PEC detects the gap from a
// small first sample, chooses k* just past the head, and returns a
// probably exactly correct result; on a flat distribution it falls back
// to a sampling estimate. The table contrasts both inputs and records
// the chosen k* and the realized error.
func Fig5(p int, k int, seed int64) Table {
	t := Table{
		Title: "Figure 5 — PEC on gapped vs flat frequency distributions",
		Notes: "gapped: k head objects ~80x more frequent than the tail; flat: near-uniform counts\n" +
			"PEC should be exact (ε̃=0, k* ≈ k) on the gap and degrade gracefully to a PAC estimate on flat input",
		Header: []string{"input", "algo", "exact", "k*", "sample", "eps~", "words/PE"},
	}
	type workload struct {
		name string
		freq map[uint64]int64
	}
	gapped := gen.GappedFrequencies(k, 4000, 3000, 50)
	flat := gen.GappedFrequencies(0, 0, 3000, 60) // tail only: no gap
	for _, w := range []workload{{"gapped", gapped}, {"flat", flat}} {
		stream := gen.Materialize(xrand.New(seed), w.freq)
		locals := make([][]uint64, p)
		for i, x := range stream {
			locals[i%p] = append(locals[i%p], x)
		}
		n := int64(len(stream))
		m := comm.NewMachine(expConfig(p))
		for _, algo := range []string{"PEC", "PAC"} {
			var res freq.Result
			meas := runMeasured(m, func(pe *comm.PE) {
				rng := xrand.NewPE(seed+7, pe.Rank())
				var r freq.Result
				params := freq.Params{K: k, Eps: 0.02, Delta: 0.01}
				if algo == "PEC" {
					r = freq.PEC(pe, locals[pe.Rank()], params, 0.05, rng)
				} else {
					r = freq.PAC(pe, locals[pe.Rank()], params, rng)
				}
				if pe.Rank() == 0 {
					res = r
				}
			})
			keys := make([]uint64, len(res.Items))
			for i, it := range res.Items {
				keys[i] = it.Key
			}
			t.Rows = append(t.Rows, []string{
				w.name, algo,
				fmt.Sprintf("%v", res.Exact),
				fmt.Sprintf("%d", res.KStar),
				fmt.Sprintf("%d", res.SampleSize),
				fmt.Sprintf("%.5f", stats.EpsTilde(w.freq, keys, n)),
				fmt.Sprintf("%d", meas.stats.MaxSentWords),
			})
		}
	}
	return t
}
