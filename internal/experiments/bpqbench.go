package experiments

import (
	"fmt"
	"runtime"
	"testing"

	"commtopk/internal/bpq"
	"commtopk/internal/comm"
	"commtopk/internal/treap"
)

// The bulk-priority-queue benchmark family (-exp bpq and the Bpq/...
// entries of the JSON pipeline): monotone-key churn against the
// distributed queue — every op bulk-inserts one ascending batch of b
// keys per PE (the treap's build-sorted fast path) and deletes the
// globally smallest b·p keys — swept over p and b, with the
// continuation form (bpq.DeleteMinStep under comm.RunAsync) as the
// mailbox primary and the blocking form as the park-churn A/B twin.
// Both variants start from identically filled fresh queues, so they
// churn the same key trajectory. The treap insert/delete entry is the
// arena's allocation acceptance gate: one ascending insert plus one
// oldest-key delete per op on a steady-size tree must stay near zero
// allocs/op (slab growth never happens at steady state; freed nodes
// come back through the arena free list).

// bpqChurnBatches is the per-PE insert/delete batch size sweep. The
// large batch is capped at p ≤ 4096 to bound the setup fill (the
// window times b·p keys) on the biggest machines.
var bpqChurnBatches = []int{4, 64}

func bpqChurnPList(quick bool) []int {
	if quick {
		return []int{256}
	}
	return []int{256, 1024, 4096, 16384}
}

// bpqChurnWindow is how many not-yet-deleted batches the queue holds at
// steady state: the initial fill is window batches of b keys per PE,
// and every op inserts one batch and deletes one batch's worth.
const bpqChurnWindow = 8

// bpqChurnKey maps (cycle, index-in-batch, batch size, rank) to a
// globally unique key, ascending in (cycle, i) on every PE — each op's
// insert batch lands entirely above the tree max, which is the
// InsertBulk ascending fast path.
func bpqChurnKey(cycle int64, i, b, rank, p int) uint64 {
	return uint64((cycle*int64(b)+int64(i))*int64(p) + int64(rank))
}

// bpqChurnState is one measurement's resident queues (per-rank, on a
// resident machine whose PE objects are stable across runs) plus the
// monotone cycle counter and reusable per-rank insert buffers.
type bpqChurnState struct {
	qs    []*bpq.Queue[uint64]
	bufs  [][]uint64
	cycle int64
}

func newBpqChurn(m *comm.Machine, p, b int) *bpqChurnState {
	st := &bpqChurnState{
		qs:   make([]*bpq.Queue[uint64], p),
		bufs: make([][]uint64, p),
	}
	m.MustRun(func(pe *comm.PE) {
		r := pe.Rank()
		q := bpq.New[uint64](pe, 42)
		buf := make([]uint64, b)
		for c := int64(0); c < bpqChurnWindow; c++ {
			for i := 0; i < b; i++ {
				buf[i] = bpqChurnKey(c, i, b, r, p)
			}
			q.InsertBulk(buf)
		}
		st.qs[r] = q
		st.bufs[r] = buf
	})
	st.cycle = bpqChurnWindow
	return st
}

// insert refills rank's buffer with cycle c's ascending batch and bulk-
// inserts it.
func (st *bpqChurnState) insert(rank, b, p int, c int64) {
	buf := st.bufs[rank]
	for i := 0; i < b; i++ {
		buf[i] = bpqChurnKey(c, i, b, rank, p)
	}
	st.qs[rank].InsertBulk(buf)
}

// BpqSuite runs the family and returns Bpq/... entries for the JSON
// pipeline. quick selects the CI tier: p capped at 256, one run per op,
// no blocking A/B twins.
func BpqSuite(quick bool, progress func(string)) []BenchResult {
	var out []BenchResult
	emit := func(r BenchResult) {
		out = append(out, r)
		if progress != nil {
			progress(fmt.Sprintf("%-44s %14.0f ns/op %10.2f allocs/op %10.0f words/PE %8.0f starts/PE",
				r.Name, r.NsPerOp, r.AllocsPerOp, r.WordsPerPE, r.StartsPerPE))
		}
	}

	// Arena acceptance gate: steady-state insert/delete churn on one
	// treap, allocations per op reported by the benchmark harness.
	{
		const n = 1 << 13
		r := testing.Benchmark(func(bb *testing.B) {
			bb.ReportAllocs()
			tr := treap.New[uint64](5)
			for i := 0; i < n; i++ {
				tr.Insert(uint64(i))
			}
			bb.ResetTimer()
			for i := 0; i < bb.N; i++ {
				tr.Insert(uint64(n + i))
				tr.Delete(uint64(i))
			}
		})
		emit(BenchResult{
			Name:        "Bpq/TreapChurn/insert-delete/n=2^13",
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: float64(r.AllocsPerOp()),
			BytesPerOp:  float64(r.AllocedBytesPerOp()),
			Note:        "one ascending insert + one oldest-key delete per op at steady size 2^13; allocs/op is the arena gate (< 0.1 amortized)",
		})
	}

	for _, p := range bpqChurnPList(quick) {
		cfg := comm.MailboxConfig(p)
		baseline := runtime.NumGoroutine()
		m := comm.NewMachine(cfg)
		workers := comm.SchedWorkers(cfg)
		for _, b := range bpqChurnBatches {
			if p > 4096 && b > bpqChurnBatches[0] {
				continue
			}
			k := int64(b) * int64(p)
			iters := 4
			if quick {
				iters = 1
			}
			name := fmt.Sprintf("Bpq/Churn/p=%d/b=%d/%s", p, b, comm.BackendMailbox)
			fill := func(r BenchResult, ns float64, s comm.Stats) BenchResult {
				r.P = p
				r.Backend = comm.BackendMailbox.String()
				r.Workers = workers
				r.NsPerOp = ns
				r.WordsPerPE = float64(s.BottleneckWords())
				r.StartsPerPE = float64(s.MaxSends)
				r.MaxClock = s.MaxClock
				r.Goroutines = residentGoroutines(baseline + workers + 2)
				return r
			}

			// Continuation primary: InsertBulk at body construction (local,
			// communication-free), then the pooled DeleteMinStep runs under
			// RunAsync — mid-run residency stays at w+O(1).
			st := newBpqChurn(m, p, b)
			ns, s := measureScalingRuns(m, iters, func() {
				c := st.cycle
				st.cycle++
				m.MustRunAsync(func(pe *comm.PE) comm.Stepper {
					st.insert(pe.Rank(), b, p, c)
					return st.qs[pe.Rank()].DeleteMinStep(k, nil)
				})
			})
			r := fill(BenchResult{Name: name}, ns, s)
			r.Note = "continuation-scheduled (comm.RunAsync); op = ascending InsertBulk(b)/PE + DeleteMin(b·p)"
			emit(r)

			if !quick {
				// Blocking A/B twin on a fresh, identically filled queue set:
				// same key trajectory, park-churn execution.
				st = newBpqChurn(m, p, b)
				ns, s = measureScalingRuns(m, iters, func() {
					c := st.cycle
					st.cycle++
					m.MustRun(func(pe *comm.PE) {
						st.insert(pe.Rank(), b, p, c)
						st.qs[pe.Rank()].DeleteMin(k)
					})
				})
				rb := fill(BenchResult{Name: name + "/blocking"}, ns, s)
				rb.Note = "park-churn A/B reference (blocking bodies), same trajectory"
				emit(rb)
			}
		}
		m.Close()
	}
	return out
}

// BpqTable renders the family for `topkbench -exp bpq` (quick selects
// the CI smoke tier).
func BpqTable(quick bool) Table {
	t := Table{
		Title: "Bulk priority queue: monotone-key churn (ascending InsertBulk + DeleteMin(b·p)), continuation-scheduled with blocking A/B twins",
		Notes: fmt.Sprintf("op = every PE bulk-inserts b ascending keys (InsertBulk fast path) then the machine deletes the globally smallest b·p\nsteady queue size = %d·b·p keys; mailbox primaries run bpq.DeleteMinStep under comm.RunAsync, /blocking twins drive the same steppers through comm.RunSteps\nTreapChurn entry: one insert + one delete per op on an arena-backed treap — allocs/op near zero is the arena acceptance gate", bpqChurnWindow),
		Header: []string{"workload", "p", "backend", "ns/op", "allocs/op", "words/PE", "start/PE", "T_model", "w", "goroutines"},
	}
	for _, r := range BpqSuite(quick, nil) {
		t.Rows = append(t.Rows, []string{
			r.Name, fmt.Sprint(r.P), r.Backend,
			fmt.Sprintf("%.0f", r.NsPerOp),
			fmt.Sprintf("%.2f", r.AllocsPerOp),
			fmt.Sprintf("%.0f", r.WordsPerPE),
			fmt.Sprintf("%.0f", r.StartsPerPE),
			modelMs(r.MaxClock),
			fmt.Sprint(r.Workers),
			fmt.Sprint(r.Goroutines),
		})
	}
	return t
}
