package experiments

import (
	"commtopk/internal/coll"
	"commtopk/internal/comm"
)

// Small collective bodies used by CollectivesScaling.

func collBroadcast(pe *comm.PE) {
	coll.Broadcast(pe, 0, []int64{1, 2, 3, 4})
}

func collAllReduce(pe *comm.PE) {
	coll.AllReduce(pe, []int64{int64(pe.Rank())}, func(a, b int64) int64 { return a + b })
}

func collScan(pe *comm.PE) {
	coll.ExScanSum(pe, int64(pe.Rank()))
}

func collAllGather(pe *comm.PE) {
	coll.AllGatherConcat(pe, []int64{int64(pe.Rank())})
}

func collHyperA2A(pe *comm.PE) {
	items := make([]coll.Routed[int64], pe.P())
	for d := range items {
		items[d] = coll.Routed[int64]{Dest: d, Payload: int64(pe.Rank())}
	}
	coll.AllToAllCombine(pe, items, nil)
}
