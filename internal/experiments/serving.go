package experiments

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"time"

	"commtopk/internal/comm"
	"commtopk/internal/serve"
	"commtopk/internal/xrand"
)

// The serving axis: sustained QPS and tail latency of the multi-tenant
// query front end (internal/serve) at fixed p under OPEN-LOOP arrival —
// queries arrive on a fixed schedule whether or not earlier ones
// finished, as production load does, so queueing delay (not just service
// time) lands in the measured latency. The axes compared:
//
//   - sequential (MaxInflight=1) vs interleaved (MaxInflight=8): tagged
//     communication contexts let concurrent queries overlap one
//     another's scheduling gaps (a single query leaves workers idle
//     whenever its critical path narrows, and the machine fully idle
//     across admission handoffs). How much that buys depends on the
//     host: the effect is parallelism, so few-core CI boxes see modest
//     or negative deltas while the context-switch overhead still shows.
//   - sharded vs global scheduler ready queue: the mailbox scheduler's
//     per-shard ready queues vs the single global queue, under the same
//     serving workload (contended resumes from many tenants) — the
//     regime where per-shard stealing either pays or costs.
//
// The offered rate is calibrated on the host: a closed-loop sequential
// warmup measures the mean service time, and the open-loop schedule
// offers ~1.4× that service rate — past a sequential server's capacity
// (its queue grows and sheds) but within reach of an interleaved one.

// servingP and servingPerPE fix the machine shape: big enough that a
// query's collectives have real fan-out, small enough that one query is
// sub-millisecond and the suite finishes in seconds.
const (
	servingP     = 16
	servingPerPE = 1 << 13
)

// servingMetrics is one serving measurement.
type servingMetrics struct {
	offeredQPS    float64
	achievedQPS   float64
	meanNs        float64
	p50, p95, p99 float64 // ns
	completed     int
	dropped       int
	workers       int
}

// servingShards builds the resident per-PE shards and the rank oracle.
func servingShards(seed int64) (shards [][]uint64, sorted []uint64) {
	shards = make([][]uint64, servingP)
	for r := range shards {
		rng := xrand.NewPE(seed, r)
		sh := make([]uint64, servingPerPE)
		for i := range sh {
			sh[i] = rng.Uint64()
		}
		shards[r] = sh
		sorted = append(sorted, sh...)
	}
	slices.Sort(sorted)
	return shards, sorted
}

// servingQueryRanks derives the query stream: ranks spread over the full
// distribution (reproducible, interleaving-independent).
func servingQueryRanks(n int64, queries int, seed int64) []int64 {
	rng := xrand.New(seed)
	ks := make([]int64, queries)
	for i := range ks {
		ks[i] = 1 + int64(rng.Uint64()%uint64(n))
	}
	return ks
}

// measureServingClosed runs the query stream closed-loop (submit → wait
// → next) and returns the mean service time — the calibration for the
// open-loop offered rate, and the zero-queueing latency floor.
func measureServingClosed(cfg comm.Config, scfg serve.Config, shards [][]uint64, sorted []uint64, ks []int64) (meanNs float64) {
	m := comm.NewMachine(cfg)
	defer m.Close()
	s, err := serve.NewServer(m, shards, scfg)
	if err != nil {
		panic(err)
	}
	defer s.Close()
	t0 := time.Now()
	for _, k := range ks {
		tk, err := s.Kth(k)
		if err != nil {
			panic(err)
		}
		got, err := tk.Wait()
		if err != nil {
			panic(err)
		}
		if got != sorted[k-1] {
			panic(fmt.Sprintf("serving: rank %d: got %d want %d", k, got, sorted[k-1]))
		}
	}
	return float64(time.Since(t0).Nanoseconds()) / float64(len(ks))
}

// measureServingOpen offers the query stream on a fixed open-loop
// schedule (one arrival every arrivalNs) and measures completion
// latency from scheduled arrival to result. ErrOverloaded submissions
// count as drops — the bounded admission queue shedding load the server
// cannot absorb.
func measureServingOpen(cfg comm.Config, scfg serve.Config, shards [][]uint64, sorted []uint64, ks []int64, arrivalNs int64) servingMetrics {
	m := comm.NewMachine(cfg)
	defer m.Close()
	s, err := serve.NewServer(m, shards, scfg)
	if err != nil {
		panic(err)
	}
	var (
		mu   sync.Mutex
		lats []float64
		wg   sync.WaitGroup
	)
	dropped := 0
	start := time.Now()
	for i, k := range ks {
		target := start.Add(time.Duration(int64(i) * arrivalNs))
		if d := time.Until(target); d > 0 {
			time.Sleep(d)
		}
		tk, err := s.Kth(k)
		if err != nil {
			// ErrOverloaded: open-loop load shed. Anything else is a bug.
			if err != serve.ErrOverloaded {
				panic(err)
			}
			dropped++
			continue
		}
		wg.Add(1)
		go func(k int64, arrival time.Time) {
			defer wg.Done()
			got, err := tk.Wait()
			if err != nil {
				panic(err)
			}
			if got != sorted[k-1] {
				panic(fmt.Sprintf("serving: rank %d: got %d want %d", k, got, sorted[k-1]))
			}
			lat := float64(time.Since(arrival).Nanoseconds())
			mu.Lock()
			lats = append(lats, lat)
			mu.Unlock()
		}(k, target)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := s.Close(); err != nil {
		panic(err)
	}
	met := servingMetrics{
		offeredQPS:  1e9 / float64(arrivalNs),
		achievedQPS: float64(len(lats)) / elapsed.Seconds(),
		completed:   len(lats),
		dropped:     dropped,
		workers:     comm.SchedWorkers(cfg),
	}
	if len(lats) == 0 {
		return met
	}
	sort.Float64s(lats)
	var sum float64
	for _, l := range lats {
		sum += l
	}
	met.meanNs = sum / float64(len(lats))
	pct := func(q float64) float64 { return lats[int(q*float64(len(lats)-1))] }
	met.p50, met.p95, met.p99 = pct(0.50), pct(0.95), pct(0.99)
	return met
}

// servingConfigs are the measured serving variants.
type servingConfig struct {
	name        string
	maxInflight int
	globalReady bool
}

func servingConfigs() []servingConfig {
	return []servingConfig{
		{"sequential", 1, false},
		{"interleaved8", 8, false},
		{"interleaved8/globalready", 8, true},
	}
}

// runServingAxis performs the calibrated open-loop sweep shared by the
// table and the JSON suite.
func runServingAxis(quick bool, progress func(string)) []servingMetrics {
	queries := 1200
	calib := 60
	if quick {
		queries, calib = 120, 15
	}
	shards, sorted := servingShards(5)
	n := int64(len(sorted))
	// Calibrate on the sequential sharded-queue server, then offer 1.4×
	// its service rate to every variant.
	base := comm.MailboxConfig(servingP)
	svcNs := measureServingClosed(base, serve.Config{MaxInflight: 1, Seed: 77}, shards, sorted,
		servingQueryRanks(n, calib, 99))
	arrivalNs := int64(svcNs / 1.4)
	if arrivalNs < 1 {
		arrivalNs = 1
	}
	ks := servingQueryRanks(n, queries, 101)
	var out []servingMetrics
	for _, sc := range servingConfigs() {
		cfg := comm.MailboxConfig(servingP)
		cfg.GlobalReadyQueue = sc.globalReady
		met := measureServingOpen(cfg, serve.Config{
			MaxInflight: sc.maxInflight,
			QueueDepth:  64,
			BatchMax:    4,
			Seed:        77,
		}, shards, sorted, ks, arrivalNs)
		out = append(out, met)
		if progress != nil {
			progress(fmt.Sprintf("Serving/%-26s offered %6.0f qps  achieved %6.0f qps  p50 %6.0fµs  p99 %6.0fµs  dropped %d",
				sc.name, met.offeredQPS, met.achievedQPS, met.p50/1e3, met.p99/1e3, met.dropped))
		}
	}
	return out
}

// ServingSuite is the benchmark-pipeline form of the serving axis: one
// BenchResult per variant, NsPerOp carrying mean completion latency and
// Note the QPS/tail numbers.
func ServingSuite(quick bool, progress func(string)) []BenchResult {
	mets := runServingAxis(quick, progress)
	cfgs := servingConfigs()
	out := make([]BenchResult, len(mets))
	for i, met := range mets {
		out[i] = BenchResult{
			Name:    "Serving/OpenLoop/" + cfgs[i].name,
			NsPerOp: met.meanNs,
			P:       servingP,
			Backend: "mailbox",
			Workers: met.workers,
			Note: fmt.Sprintf("offered=%.0fqps achieved=%.0fqps p50=%.0fus p95=%.0fus p99=%.0fus completed=%d dropped=%d inflight=%d",
				met.offeredQPS, met.achievedQPS, met.p50/1e3, met.p95/1e3, met.p99/1e3,
				met.completed, met.dropped, cfgs[i].maxInflight),
		}
	}
	return out
}

// ServingTable renders the serving axis for topkbench -exp serve.
func ServingTable(quick bool) Table {
	mets := runServingAxis(quick, nil)
	cfgs := servingConfigs()
	t := Table{
		Title: fmt.Sprintf("Serving: open-loop QPS / tail latency (p=%d, n/p=2^13, offered ≈ 1.4× sequential capacity)", servingP),
		Notes: "multi-tenant front end over tagged communication contexts (internal/serve)\n" +
			"sequential = MaxInflight 1; interleaved8 = 8 queries share the machine; globalready = single scheduler ready queue\n" +
			"latency is scheduled-arrival → result (open loop: queueing included); dropped = admission-queue sheds",
		Header: []string{"variant", "offered qps", "achieved qps", "mean ms", "p50 ms", "p95 ms", "p99 ms", "done", "dropped"},
	}
	for i, met := range mets {
		t.Rows = append(t.Rows, []string{
			cfgs[i].name,
			fmt.Sprintf("%.0f", met.offeredQPS),
			fmt.Sprintf("%.0f", met.achievedQPS),
			fmt.Sprintf("%.2f", met.meanNs/1e6),
			fmt.Sprintf("%.2f", met.p50/1e6),
			fmt.Sprintf("%.2f", met.p95/1e6),
			fmt.Sprintf("%.2f", met.p99/1e6),
			fmt.Sprintf("%d", met.completed),
			fmt.Sprintf("%d", met.dropped),
		})
	}
	return t
}
