package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"commtopk/internal/comm"
	"commtopk/internal/gen"
	"commtopk/internal/sel"
	"commtopk/internal/xrand"
)

// The reproducible benchmark pipeline: cmd/topkbench -json runs this fixed
// suite in-process (via testing.Benchmark) and emits BENCH_PR<N>.json, so
// the performance trajectory — wall time, allocations, and the modeled
// communication cost — is tracked PR-over-PR with one command instead of
// hand-copied `go test -bench` output.

// BenchResult is one benchmark measurement.
type BenchResult struct {
	Name string `json:"name"`
	// NsPerOp is host wall time per operation (the paper's local-work x
	// term plus simulation overhead).
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp / BytesPerOp track the zero-allocation discipline of the
	// hot paths.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// WordsPerPE is the bottleneck communication volume per op (max over
	// PEs of words sent — the paper's y term).
	WordsPerPE float64 `json:"words_per_pe"`
	// StartsPerPE is the bottleneck startup count per op (the z term).
	StartsPerPE float64 `json:"starts_per_pe"`
	// MaxClock is the modeled α/β critical-path time per op.
	MaxClock float64 `json:"max_clock"`
	// P and Backend identify scaling-suite entries (zero/empty for the
	// fixed suite, whose configurations are part of the name).
	P       int    `json:"p,omitempty"`
	Backend string `json:"backend,omitempty"`
	// MachineBytes is the measured live-heap cost of constructing the
	// machine (message queues; goroutine stacks are not heap).
	MachineBytes float64 `json:"machine_bytes,omitempty"`
	// Workers is the mailbox scheduler width w (0 on the channel matrix);
	// Goroutines the resident process goroutine count measured while the
	// machine was live — the PR 3 decoupling claim: Goroutines tracks w,
	// not P, even after runs that parked thousands of PE bodies.
	Workers    int `json:"workers,omitempty"`
	Goroutines int `json:"goroutines,omitempty"`
	// Note carries entry-specific context (reduced n/p at huge p, the
	// materializing-variant memory a chunked gather avoided, …).
	Note string `json:"note,omitempty"`
	// Skipped records why a configuration was refused (e.g. the channel
	// matrix's estimated queue memory exceeding the harness budget) — the
	// entry then carries no measurements.
	Skipped string `json:"skipped,omitempty"`
}

// BenchReport is the schema of BENCH_PR<N>.json.
type BenchReport struct {
	PR        int           `json:"pr"`
	GoVersion string        `json:"go_version"`
	Note      string        `json:"note,omitempty"`
	Results   []BenchResult `json:"results"`
	// Baseline holds the pre-change numbers of the same suite when the
	// invoker supplies them (topkbench -json -baseline old.json), so a
	// single committed file carries the before/after comparison.
	Baseline     []BenchResult `json:"baseline,omitempty"`
	BaselineNote string        `json:"baseline_note,omitempty"`
}

// benchCase runs a benchmark body and reports the machine whose stats
// describe the measured communication.
type benchCase struct {
	name string
	run  func(b *testing.B) *comm.Machine
}

// benchSuite is the fixed benchmark set of the pipeline. It mirrors the
// root bench_test.go families that gate acceptance (Table 1 unsorted
// selection and the substrate collectives) at the same configurations.
// Every case exists on both backends. Since the PR 3 default flip the
// base names measure the mailbox runtime (what DefaultConfig now means,
// and what the root bench families run); the "/chanmatrix" twins keep
// the channel-matrix reference measurable, and the legacy "/mailbox"
// twins of the PR 2 reports map onto the new base names when comparing
// across the flip.
func benchSuite() []benchCase {
	var cases []benchCase
	selCfg := func(name string, cfg comm.Config, kth func(pe *comm.PE, local []uint64, k int64, rng *xrand.RNG) uint64) {
		cases = append(cases, benchCase{name: name, run: func(b *testing.B) *comm.Machine {
			const p, perPE = 16, 1 << 16
			locals := make([][]uint64, p)
			for r := 0; r < p; r++ {
				locals[r] = gen.SelectionInput(xrand.NewPE(3, r), perPE, 12)
			}
			m := comm.NewMachine(cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seed := int64(i)
				m.MustRun(func(pe *comm.PE) {
					kth(pe, locals[pe.Rank()], int64(p*perPE/2), xrand.NewPE(seed, pe.Rank()))
				})
			}
			return m
		}})
	}
	selCfg("Table1/UnsortedSelection", comm.DefaultConfig(16), sel.Kth[uint64])
	selCfg("Table1/UnsortedSelection/chanmatrix", comm.MatrixConfig(16), sel.Kth[uint64])
	selCfg("Table1/UnsortedSelectionOldRandomized", comm.DefaultConfig(16), sel.KthRandomized[uint64])
	subs := []struct {
		name string
		body func(pe *comm.PE)
	}{
		{"Broadcast", collBroadcast},
		{"AllReduce", collAllReduce},
		{"ExScan", collScan},
		{"AllGather", collAllGather},
		{"HypercubeA2A", collHyperA2A},
	}
	for _, s := range subs {
		body := s.body
		for _, backend := range []comm.Backend{comm.BackendMailbox, comm.BackendChannelMatrix} {
			name := "Substrate/Collectives/" + s.name
			cfg := comm.DefaultConfig(64)
			if backend == comm.BackendChannelMatrix {
				name += "/chanmatrix"
				cfg.Backend = comm.BackendChannelMatrix
			}
			cases = append(cases, benchCase{
				name: name,
				run: func(b *testing.B) *comm.Machine {
					m := comm.NewMachine(cfg)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						m.MustRun(body)
					}
					return m
				},
			})
		}
	}
	return cases
}

// RunBenchSuite executes the pipeline suite — the fixed benchmark set
// followed by the large-p scaling suite and the open-loop serving axis —
// and returns its measurements. progress (optional) receives one line
// per finished benchmark.
func RunBenchSuite(progress func(string)) []BenchResult {
	var out []BenchResult
	for _, c := range benchSuite() {
		var m *comm.Machine
		var n int
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			if mm := c.run(b); mm != nil {
				if m != nil {
					// testing.Benchmark calls run once per trial; release the
					// previous trial's machine (and its worker pool)
					// deterministically instead of leaving it to the finalizer.
					m.Close()
				}
				m = mm
				n = b.N
			}
		})
		res := BenchResult{
			Name:        c.name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: float64(r.AllocsPerOp()),
			BytesPerOp:  float64(r.AllocedBytesPerOp()),
		}
		if m != nil && n > 0 {
			// Stats accumulate across the final measured run's iterations.
			s := m.Stats()
			res.WordsPerPE = float64(s.BottleneckWords()) / float64(n)
			res.StartsPerPE = float64(s.MaxSends) / float64(n)
			res.MaxClock = s.MaxClock / float64(n)
			m.Close()
		}
		out = append(out, res)
		if progress != nil {
			progress(fmt.Sprintf("%-40s %12.0f ns/op %10.1f allocs/op %12.0f B/op",
				c.name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp))
		}
	}
	out = append(out, KernelSuite(progress)...)
	out = append(out, ScalingSuite(ScalingPList(1<<17), ScalingMemBudgetBytes, false, progress)...)
	out = append(out, BpqSuite(false, progress)...)
	out = append(out, ServingSuite(false, progress)...)
	return out
}

// WriteBenchReport runs the full pipeline suite and writes
// BENCH_PR<pr>.json to path. baselinePath (optional) names an earlier
// report whose results are embedded as the baseline for before/after
// comparison.
func WriteBenchReport(path string, pr int, note, baselinePath string, progress func(string)) (*BenchReport, error) {
	return WriteBenchReportSuite(path, pr, note, baselinePath, RunBenchSuite, progress)
}

// WriteBenchReportSuite is WriteBenchReport over an arbitrary result
// producer — the wire measured-vs-modeled family (topkbench -exp wire
// -json) emits its entries through the same report schema.
func WriteBenchReportSuite(path string, pr int, note, baselinePath string, suite func(func(string)) []BenchResult, progress func(string)) (*BenchReport, error) {
	// Validate the baseline before the (minutes-long) suite runs, so a
	// typo'd path fails in milliseconds, not after the benchmarks.
	var base BenchReport
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			return nil, fmt.Errorf("reading baseline: %w", err)
		}
		if err := json.Unmarshal(raw, &base); err != nil {
			return nil, fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
		}
	}
	rep := &BenchReport{
		PR:        pr,
		GoVersion: runtime.Version(),
		Note:      note,
		Results:   suite(progress),
	}
	if baselinePath != "" {
		rep.Baseline = base.Results
		rep.BaselineNote = base.Note
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return nil, err
	}
	return rep, nil
}
