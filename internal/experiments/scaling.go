package experiments

import (
	"fmt"
	"runtime"
	"time"

	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/freq"
	"commtopk/internal/gen"
	"commtopk/internal/mtopk"
	"commtopk/internal/sel"
	"commtopk/internal/xrand"
)

// The scaling suite: the O(log p) collective set, the chunked gather
// collectives, and Table-1 unsorted selection at p = 256…131072 — PE
// counts where the paper's O(α log p) startup bounds become visible, and
// where the channel-matrix backend's O(p²·ChanCap) queue memory exceeds
// any sane harness budget (p = 4096 alone would need ~50 GiB of channel
// buffers). Each configuration is guarded by comm.MachineBytes (queues +
// PE handles + scheduler state) against ScalingMemBudgetBytes:
// over-budget machines are recorded as skipped with the estimate, not
// attempted — that refusal is itself the measurement the mailbox backend
// exists to change. The gather workload has a second guard: the
// materializing all-gather's O(p·m) per-PE results are checked against
// the same budget (refused from p = 16384), while the chunked variant is
// capped only by the p²·m aggregate data movement every all-gather
// must perform (a host-time budget, recorded when it trips).
//
// Since PR 3 each mailbox entry also records the scheduler width w and
// the process goroutine count measured while the machine is resident —
// the tentpole claim that goroutines no longer scale with p.

// ScalingMemBudgetBytes is the harness memory budget for up-front
// machine allocation: 1.5 GiB, roomy for everything O(p) and
// unreachable for the channel matrix beyond p ≈ 512.
const ScalingMemBudgetBytes int64 = 3 << 29

// scalingGatherChunk is the chunked collectives' block window c: per-PE
// gather memory is O(m·c) and the ring startup count p/c − 1.
const scalingGatherChunk = 64

// scalingGatherMaxMoved caps the gather workload by aggregate data
// movement (p² blocks of gatherBlockLen words): ~2.1e9 moved words ≈
// 17 GB of memcpy per op is the most this harness spends on one
// configuration (p = 16384 with 4-word blocks).
const scalingGatherMaxMoved int64 = 3 << 30

// ScalingPList returns the scaling-suite PE counts up to pmax.
func ScalingPList(pmax int) []int {
	var out []int
	for _, p := range []int{256, 1024, 4096, 16384, 65536, 131072} {
		if p <= pmax {
			out = append(out, p)
		}
	}
	return out
}

// scalingSelPerPE returns the selection workload's per-PE input size:
// 2^10 through p = 16384 (so those entries stay comparable with earlier
// reports), halved stepwise above so the p·perPE input plus the per-PE
// partition scratch stays inside the harness budget (131072 × 1024 × 8 B
// would be 1 GiB of input alone, doubled by scratch).
func scalingSelPerPE(p int) int {
	switch {
	case p <= 1<<14:
		return 1 << 10
	case p <= 1<<16:
		return 1 << 8
	default:
		return 1 << 7
	}
}

// scalingCollectivesBody is one op of the collective scaling workload:
// the O(log p)-startup collectives (broadcast, all-reduce, prefix sum,
// barrier) whose memory footprint stays O(p) at any scale.
func scalingCollectivesBody(pe *comm.PE) {
	coll.Broadcast(pe, 0, []int64{1, 2, 3, 4})
	coll.AllReduceScalar(pe, int64(pe.Rank()), func(a, b int64) int64 { return a + b })
	coll.ExScanSum(pe, int64(pe.Rank()))
	coll.Barrier(pe)
}

// sumInt64 is the reduction operator of the scaling workloads
// (package-level, so stepper factories allocate no closure per op).
func sumInt64(a, b int64) int64 { return a + b }

// scalingCollectivesStart is the continuation form of the same op — the
// identical message schedule (words/PE, startups/PE and modeled clock
// are pinned equal by the differential suite) run through
// comm.RunAsync, so a PE waiting mid-collective suspends as data instead
// of parking a goroutine. At large p this is where the park/hand-off
// churn — the dominant host cost of the blocking form — disappears; the
// suite records both forms so the A/B is in every report. Since PR 5 the
// stepper state (and the comm.SeqP composition) is pooled per PE, so the
// op allocates like the blocking form instead of feeding the GC ~1.2 KB
// per PE per op — the drag that ate the continuation win at p = 131072.
func scalingCollectivesStart(pe *comm.PE) comm.Stepper {
	return comm.SeqP(pe,
		coll.BroadcastStep(pe, 0, []int64{1, 2, 3, 4}, nil),
		coll.AllReduceScalarStep(pe, int64(pe.Rank()), sumInt64, nil),
		coll.ExScanSumStep(pe, int64(pe.Rank()), nil),
		coll.BarrierStep(pe),
	)
}

// scalingStridedSamples is the sampled-gather workload's default per-PE
// source count s: every PE visits s strided peers, so the aggregate
// movement is p·s·m words — O(p), against the p²·m of any full
// all-gather — and the suite can run a gather-shaped workload at
// p = 131072.
const scalingStridedSamples = 64

// scalingStridedSweep is the s sweep of the strided gather: the sampled
// gather trades O(m·s) transient payload references and O(α·s) startups
// per PE against sample coverage, the same axis the chunked gathers map
// with their window c. The suite runs all three so the trade is a curve,
// not a point; s = 64 keeps the PR 4 entry name for PR-over-PR
// comparability.
var scalingStridedSweep = []int{16, 64, 256}

// scalingStridedStart is one op of the sampled/strided gather workload
// as a continuation body: coll.GatherStridedStep visits the blocks of s
// deterministic sources with O(m) per-PE memory and round-staggered
// O(p) in-flight messages. The checksum keeps the visits honest.
func scalingStridedStart(samples int) func(pe *comm.PE) comm.Stepper {
	return func(pe *comm.PE) comm.Stepper {
		block := make([]int64, gatherBlockLen)
		for i := range block {
			block[i] = int64(pe.Rank() + i)
		}
		var sum int64
		return coll.GatherStridedStep(pe, block, samples, func(src int, b []int64) {
			sum += b[0]
		})
	}
}

// gatherBlockLen is the per-PE block size of the gather workload.
const gatherBlockLen = 4

// scalingGatherBody is one op of the chunked-gather workload: every PE
// receives every other PE's block through the streaming all-gather
// (visited, never materialized — per-PE memory O(m·chunk) instead of the
// O(p·m) that kept gathers out of the suite), plus a chunk-framed
// hypercube all-to-all. The checksum keeps the visit honest.
func scalingGatherBody(pe *comm.PE) {
	var block [gatherBlockLen]int64
	for i := range block {
		block[i] = int64(pe.Rank() + i)
	}
	var sum int64
	coll.AllGatherChunked(pe, block[:], scalingGatherChunk, func(src int, b []int64) {
		sum += b[0]
	})
	items := []coll.Routed[int64]{
		{Dest: (pe.Rank() + 1) % pe.P(), Payload: sum},
		{Dest: (pe.Rank() + pe.P()/2) % pe.P(), Payload: 1},
	}
	coll.AllToAllCombineChunked(pe, items, scalingGatherChunk, nil)
}

// scalingGatherStart is the continuation form of the same op. The
// hypercube stage's items depend on the gather's checksum, so its
// stepper is constructed lazily once the chunked all-gather completes
// (a StepFunc stage inside the pooled sequence).
func scalingGatherStart(pe *comm.PE) comm.Stepper {
	block := make([]int64, gatherBlockLen)
	for i := range block {
		block[i] = int64(pe.Rank() + i)
	}
	var sum int64
	var a2a comm.Stepper
	return comm.SeqP(pe,
		coll.AllGatherChunkedStep(pe, block, scalingGatherChunk, func(src int, b []int64) {
			sum += b[0]
		}),
		comm.StepFunc(func(pe *comm.PE) *comm.RecvHandle {
			if a2a == nil {
				items := []coll.Routed[int64]{
					{Dest: (pe.Rank() + 1) % pe.P(), Payload: sum},
					{Dest: (pe.Rank() + pe.P()/2) % pe.P(), Payload: 1},
				}
				a2a = coll.AllToAllCombineChunkedStep(pe, items, scalingGatherChunk, nil, nil)
			}
			return a2a.Step(pe)
		}),
	)
}

// heapLive settles the heap and returns live bytes. Two GC cycles: the
// first runs finalizers of earlier machines (releasing their scheduler
// goroutines), the second collects what the finalizers unpinned.
func heapLive() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// measureScaling times iters runs of body on m (after one warmup run)
// and fills the communication metrics from the machine's stats.
func measureScaling(m *comm.Machine, iters int, body func(pe *comm.PE)) (nsPerOp float64, s comm.Stats) {
	run := func() { m.MustRun(body) }
	return measureScalingRuns(m, iters, run)
}

// measureScalingAsync is measureScaling for continuation bodies driven
// through RunAsync.
func measureScalingAsync(m *comm.Machine, iters int, start func(pe *comm.PE) comm.Stepper) (nsPerOp float64, s comm.Stats) {
	run := func() { m.MustRunAsync(start) }
	return measureScalingRuns(m, iters, run)
}

func measureScalingRuns(m *comm.Machine, iters int, run func()) (nsPerOp float64, s comm.Stats) {
	run() // warmup: scheduler spawn, pool and scratch warm
	// Settle the heap before timing: by this point in a long suite process
	// the allocator carries earlier configurations' garbage and pool
	// retention, which otherwise bleeds GC time into whichever workload
	// runs first (the continuation entries allocate their stepper state
	// per op and are the most exposed).
	runtime.GC()
	m.ResetStats()
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		run()
	}
	elapsed := time.Since(t0)
	s = m.Stats()
	s.TotalWords /= int64(iters)
	s.TotalSends /= int64(iters)
	s.MaxSentWords /= int64(iters)
	s.MaxRecvWords /= int64(iters)
	s.MaxSends /= int64(iters)
	s.MaxClock /= float64(iters)
	return float64(elapsed.Nanoseconds()) / float64(iters), s
}

// residentGoroutines waits briefly for transient run goroutines (parked
// PE bodies) to retire and returns the settled process goroutine count —
// the number a resident machine pins between runs.
func residentGoroutines(bound int) int {
	deadline := time.Now().Add(3 * time.Second)
	n := runtime.NumGoroutine()
	for time.Now().Before(deadline) && n > bound {
		time.Sleep(2 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// ScalingQuickPMax caps the -quick tier of the suite: large enough that
// the O(α log p) trends and both gather variants are visible, small
// enough that a CI smoke finishes in tens of seconds.
const ScalingQuickPMax = 4096

// ScalingSuite runs the scaling workloads for every p in pList on both
// backends, refusing configurations whose estimated machine memory
// exceeds budget. quick selects the CI tier: runs/op drop to 1 and the
// blocking park-churn A/B twins are skipped (callers should also cap
// pList at ScalingQuickPMax). progress (optional) receives one line per
// entry.
func ScalingSuite(pList []int, budget int64, quick bool, progress func(string)) []BenchResult {
	var out []BenchResult
	for _, p := range pList {
		for _, backend := range []comm.Backend{comm.BackendMailbox, comm.BackendChannelMatrix} {
			for _, r := range scalingRun(p, backend, budget, quick) {
				out = append(out, r)
				if progress != nil {
					if r.Skipped != "" {
						progress(fmt.Sprintf("%-44s SKIPPED: %s", r.Name, r.Skipped))
					} else {
						progress(fmt.Sprintf("%-44s %14.0f ns/op %10.0f words/PE %8.0f starts/PE %10.0f machine B %5d goroutines",
							r.Name, r.NsPerOp, r.WordsPerPE, r.StartsPerPE, r.MachineBytes, r.Goroutines))
					}
				}
			}
		}
	}
	return out
}

// scalingRunIters scales a workload's measured runs/op down for the
// quick tier.
func scalingRunIters(iters int, quick bool) int {
	if quick {
		return 1
	}
	return iters
}

func scalingRun(p int, backend comm.Backend, budget int64, quick bool) []BenchResult {
	cfg := comm.DefaultConfig(p)
	cfg.Backend = backend
	collName := fmt.Sprintf("Scaling/Collectives/p=%d/%s", p, backend)
	collBlockName := fmt.Sprintf("Scaling/Collectives/p=%d/%s/blocking", p, backend)
	gatherName := fmt.Sprintf("Scaling/GatherChunked/p=%d/%s", p, backend)
	stridedName := fmt.Sprintf("Scaling/GatherStrided/p=%d/%s", p, backend)
	selName := fmt.Sprintf("Scaling/Table1Selection/p=%d/%s", p, backend)
	mtopkName := fmt.Sprintf("Scaling/MtopkDTA/p=%d/%s", p, backend)
	freqName := fmt.Sprintf("Scaling/FreqPAC/p=%d/%s", p, backend)
	res := func(name string) BenchResult {
		return BenchResult{Name: name, P: p, Backend: backend.String(), Workers: comm.SchedWorkers(cfg)}
	}
	skip := func(name, reason string) BenchResult {
		r := res(name)
		r.Skipped = reason
		return r
	}
	stridedNames := make(map[int]string, len(scalingStridedSweep))
	for _, smp := range scalingStridedSweep {
		name := stridedName
		if smp != scalingStridedSamples {
			name = fmt.Sprintf("%s/s=%d", stridedName, smp)
		}
		stridedNames[smp] = name
	}
	if mb := comm.MachineBytes(cfg); mb > budget {
		reason := fmt.Sprintf("estimated machine memory %.2f GiB exceeds the %.1f GiB harness budget",
			float64(mb)/(1<<30), float64(budget)/(1<<30))
		out := []BenchResult{skip(collName, reason), skip(gatherName, reason)}
		for _, smp := range scalingStridedSweep {
			out = append(out, skip(stridedNames[smp], reason))
		}
		return append(out, skip(selName, reason), skip(mtopkName, reason), skip(freqName, reason))
	}

	baseline := runtime.NumGoroutine()
	heapBefore := heapLive()
	m := comm.NewMachine(cfg)
	// Signed delta clamped at zero: the first GC may also reclaim garbage
	// from earlier configurations, which would underflow an unsigned diff.
	machineBytes := max(float64(int64(heapLive())-int64(heapBefore)), 0)
	defer m.Close()

	fill := func(r BenchResult, ns float64, s comm.Stats) BenchResult {
		r.MachineBytes = machineBytes
		r.NsPerOp = ns
		r.WordsPerPE = float64(s.BottleneckWords())
		r.StartsPerPE = float64(s.MaxSends)
		r.MaxClock = s.MaxClock
		// Goroutine residency is the tentpole claim: measured on the live
		// process while the machine (which has just run workloads that
		// parked thousands of PE bodies) is still resident.
		r.Goroutines = residentGoroutines(baseline + r.Workers + 2)
		return r
	}

	var out []BenchResult
	// Collectives workload. On the mailbox backend the primary entry runs
	// the continuation form (the async API is how collectives are meant to
	// run at scale since PR 4); the "/blocking" twin measures the same op
	// through blocking bodies — the park-churn A/B — and is skipped in the
	// quick tier. The channel matrix keeps the blocking form (its RunAsync
	// is the naive blocking drive anyway).
	if backend == comm.BackendMailbox {
		ns, s := measureScalingAsync(m, scalingRunIters(5, quick), scalingCollectivesStart)
		r := fill(res(collName), ns, s)
		r.Note = "continuation-scheduled (comm.RunAsync)"
		out = append(out, r)
		if !quick {
			blockIters := 3
			if p >= 1<<16 {
				blockIters = 1
			}
			ns, s = measureScaling(m, blockIters, scalingCollectivesBody)
			rb := fill(res(collBlockName), ns, s)
			rb.Note = "park-churn A/B reference (blocking bodies)"
			out = append(out, rb)
		}
	} else {
		ns, s := measureScaling(m, scalingRunIters(5, quick), scalingCollectivesBody)
		out = append(out, fill(res(collName), ns, s))
	}

	// Sampled/strided gather, swept over s: every PE visits s strided
	// peers, so the aggregate movement is p·s·m words — the gather-shaped
	// workload that exists at p = 131072, where any full all-gather's p²·m
	// movement does not fit one host. Continuation-scheduled on the
	// mailbox backend; the sweep maps the O(m·s)-payload / O(α·s)-startup
	// trade the way the chunked gathers' c does.
	for _, smp := range scalingStridedSweep {
		iters := scalingRunIters(3, quick)
		if p >= 1<<16 && smp > scalingStridedSamples {
			iters = 1 // the s=256 op moves 4× the default; bound host time
		}
		start := scalingStridedStart(smp)
		var ns float64
		var s comm.Stats
		if backend == comm.BackendMailbox {
			ns, s = measureScalingAsync(m, iters, start)
		} else {
			ns, s = measureScaling(m, iters, func(pe *comm.PE) {
				comm.RunSteps(pe, start(pe))
			})
		}
		r := fill(res(stridedNames[smp]), ns, s)
		r.Note = fmt.Sprintf("s=%d sources/PE; aggregate movement p·s·m = %.1e words", smp,
			float64(p)*float64(smp)*gatherBlockLen)
		out = append(out, r)
	}

	// Gather workload: refuse what must be refused, loudly. The
	// materializing all-gather would hold p blocks on every PE; the
	// chunked one moves the same p² blocks through O(m·chunk) windows,
	// bounded here only by host time.
	matBytes := int64(p) * int64(p) * gatherBlockLen * 8
	moved := int64(p) * int64(p) * gatherBlockLen
	switch {
	case moved > scalingGatherMaxMoved:
		out = append(out, skip(gatherName, fmt.Sprintf(
			"all-gather moves p²·m = %.1e words per op; over the harness host-time budget (materializing variant would also need %.1f GiB of results)",
			float64(moved), float64(matBytes)/(1<<30))))
	default:
		iters := 3
		if quick || moved > scalingGatherMaxMoved/8 {
			iters = 1
		}
		matNote := ""
		if matBytes > budget {
			matNote = fmt.Sprintf("; materializing AllGatherv would need %.1f GiB of results (chunked window %.1f MiB)",
				float64(matBytes)/(1<<30), float64(int64(p)*scalingGatherChunk*gatherBlockLen*8)/(1<<20))
		}
		if backend == comm.BackendMailbox {
			ns, s := measureScalingAsync(m, iters, scalingGatherStart)
			r := fill(res(gatherName), ns, s)
			r.Note = "continuation-scheduled (comm.RunAsync)" + matNote
			out = append(out, r)
			if !quick {
				ns, s = measureScaling(m, iters, scalingGatherBody)
				rb := fill(res(gatherName+"/blocking"), ns, s)
				rb.Note = "park-churn A/B reference (blocking bodies)" + matNote
				out = append(out, rb)
			}
		} else {
			ns, s := measureScaling(m, iters, scalingGatherBody)
			r := fill(res(gatherName), ns, s)
			if matNote != "" {
				r.Note = matNote[2:]
			}
			out = append(out, r)
		}
	}

	// Table-1 unsorted selection. Since PR 5 the mailbox primary runs the
	// full selection skeleton continuation-scheduled (sel.KthStep under
	// comm.RunAsync — the whole Table-1 pipeline at O(w) mid-run
	// goroutines); the "/blocking" twin is the park-churn A/B, skipped in
	// the quick tier. Fixed pivot seed: every measured run takes the same
	// communication path, so the per-op stats are exact rather than
	// averaged estimates.
	perPE := scalingSelPerPE(p)
	locals := make([][]uint64, p)
	for r := 0; r < p; r++ {
		locals[r] = gen.SelectionInput(xrand.NewPE(3, r), perPE, 12)
	}
	n := int64(p) * int64(perPE)
	selNote := fmt.Sprintf("n/p=%d", perPE)
	selBlocking := func(pe *comm.PE) {
		sel.Kth(pe, locals[pe.Rank()], n/2, xrand.NewPE(17, pe.Rank()))
	}
	if backend == comm.BackendMailbox {
		ns, s := measureScalingAsync(m, scalingRunIters(3, quick), func(pe *comm.PE) comm.Stepper {
			return sel.KthStep(pe, locals[pe.Rank()], n/2, xrand.NewPE(17, pe.Rank()), nil)
		})
		r := fill(res(selName), ns, s)
		r.Note = selNote + "; continuation-scheduled (comm.RunAsync)"
		out = append(out, r)
		if !quick {
			blockIters := 3
			if p >= 1<<16 {
				blockIters = 1
			}
			ns, s = measureScaling(m, blockIters, selBlocking)
			rb := fill(res(selName+"/blocking"), ns, s)
			rb.Note = selNote + "; park-churn A/B reference (blocking bodies)"
			out = append(out, rb)
		}
	} else {
		ns, s := measureScaling(m, scalingRunIters(3, quick), selBlocking)
		r := fill(res(selName), ns, s)
		r.Note = selNote
		out = append(out, r)
	}

	// Multicriteria threshold algorithm and sampling heavy hitters: the
	// PR 10 stepper ports measured at scale, tiny per-PE instances (the
	// axis of interest is the collective critical path over p, not local
	// scan work). Same mailbox-primary/"/blocking"-twin discipline.
	datas := make([]*mtopk.Data, p)
	freqLocals := make([][]uint64, p)
	for r := 0; r < p; r++ {
		datas[r] = mtopk.NewData(mtopk.GenObjects(xrand.NewPE(7, r), 4, 2, 1+uint64(r)*4), 2)
		rng := xrand.NewPE(11, r)
		sh := make([]uint64, 16)
		for i := range sh {
			u := rng.Uint64() % 16
			sh[i] = rng.Uint64() % (u + 1)
		}
		freqLocals[r] = sh
	}
	freqParams := freq.Params{K: 8, Eps: 0.05, Delta: 0.01}
	mtopkBlocking := func(pe *comm.PE) {
		mtopk.DTA(pe, datas[pe.Rank()], mtopk.SumScore, 8, xrand.NewPE(23, pe.Rank()))
	}
	freqBlocking := func(pe *comm.PE) {
		freq.PAC(pe, freqLocals[pe.Rank()], freqParams, xrand.NewPE(29, pe.Rank()))
	}
	if backend == comm.BackendMailbox {
		ns, s := measureScalingAsync(m, scalingRunIters(3, quick), func(pe *comm.PE) comm.Stepper {
			return mtopk.DTAStep(pe, datas[pe.Rank()], mtopk.SumScore, 8, xrand.NewPE(23, pe.Rank()), nil)
		})
		r := fill(res(mtopkName), ns, s)
		r.Note = "n/p=4, m=2, k=8; continuation-scheduled (comm.RunAsync)"
		out = append(out, r)
		ns, s = measureScalingAsync(m, scalingRunIters(3, quick), func(pe *comm.PE) comm.Stepper {
			return freq.PACStep(pe, freqLocals[pe.Rank()], freqParams, xrand.NewPE(29, pe.Rank()), nil)
		})
		r = fill(res(freqName), ns, s)
		r.Note = "n/p=16, k=8; continuation-scheduled (comm.RunAsync)"
		out = append(out, r)
		if !quick {
			blockIters := 3
			if p >= 1<<16 {
				blockIters = 1
			}
			ns, s = measureScaling(m, blockIters, mtopkBlocking)
			rb := fill(res(mtopkName+"/blocking"), ns, s)
			rb.Note = "park-churn A/B reference (blocking bodies)"
			out = append(out, rb)
			ns, s = measureScaling(m, blockIters, freqBlocking)
			rb = fill(res(freqName+"/blocking"), ns, s)
			rb.Note = "park-churn A/B reference (blocking bodies)"
			out = append(out, rb)
		}
	} else {
		ns, s := measureScaling(m, scalingRunIters(3, quick), mtopkBlocking)
		out = append(out, fill(res(mtopkName), ns, s))
		ns, s = measureScaling(m, scalingRunIters(3, quick), freqBlocking)
		out = append(out, fill(res(freqName), ns, s))
	}
	return out
}

// ScalingTable renders the scaling suite as a human-readable experiment
// table for `topkbench -exp scaling` (quick selects the capped CI tier;
// callers pass pmax ≤ ScalingQuickPMax alongside it).
func ScalingTable(pmax int, quick bool) Table {
	t := Table{
		Title: "Scaling: collectives, gathers (chunked + strided s sweep) and Table-1 selection at large p, continuation-scheduled with blocking A/B twins (mailbox vs channel matrix)",
		Notes: fmt.Sprintf("memory budget %.1f GiB for up-front machine allocation (comm.MachineBytes); over-budget configs are refused\ncollectives op = broadcast + all-reduce + prefix sum + barrier; all mailbox primaries run continuation-scheduled via comm.RunAsync on pooled stepper state, /blocking twins = park-churn A/B\ngather ops: chunked all-gather (m=%d, chunk=%d) + chunked hypercube A2A; strided gather swept over s=%v sources/PE (movement p·s·m; unsuffixed entry = s=%d)\nselection: sel.KthStep, k=n/2, n/p=2^10 through p=2^14 then reduced (see entry notes); goroutines = resident process count with the machine live (w = scheduler width)",
			float64(ScalingMemBudgetBytes)/(1<<30), gatherBlockLen, scalingGatherChunk, scalingStridedSweep, scalingStridedSamples),
		Header: []string{"workload", "p", "backend", "ns/op", "words/PE", "start/PE", "T_model", "machine MB", "w", "goroutines"},
	}
	for _, r := range ScalingSuite(ScalingPList(pmax), ScalingMemBudgetBytes, quick, nil) {
		if r.Skipped != "" {
			t.Rows = append(t.Rows, []string{r.Name, fmt.Sprint(r.P), r.Backend, "—", "—", "—", "—", r.Skipped, "—", "—"})
			continue
		}
		t.Rows = append(t.Rows, []string{
			r.Name, fmt.Sprint(r.P), r.Backend,
			fmt.Sprintf("%.0f", r.NsPerOp),
			fmt.Sprintf("%.0f", r.WordsPerPE),
			fmt.Sprintf("%.0f", r.StartsPerPE),
			modelMs(r.MaxClock),
			fmt.Sprintf("%.2f", r.MachineBytes/(1<<20)),
			fmt.Sprint(r.Workers),
			fmt.Sprint(r.Goroutines),
		})
	}
	return t
}
