package experiments

import (
	"fmt"
	"runtime"
	"time"

	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/gen"
	"commtopk/internal/sel"
	"commtopk/internal/xrand"
)

// The scaling suite: the collective suite and Table-1 unsorted selection
// at p = 256…16384 — PE counts where the paper's O(α log p) startup
// bounds become visible, and where the channel-matrix backend's
// O(p²·ChanCap) queue memory exceeds any sane harness budget (p = 4096
// alone would need ~50 GiB of channel buffers). Each configuration is
// guarded by comm.QueueBytes against ScalingMemBudgetBytes: over-budget
// machines are recorded as skipped with the estimate, not attempted —
// that refusal is itself the measurement the mailbox backend exists to
// change.

// ScalingMemBudgetBytes is the harness memory budget for up-front
// message-queue allocation: 1.5 GiB, roomy for everything O(p) and
// unreachable for the channel matrix beyond p ≈ 512.
const ScalingMemBudgetBytes int64 = 3 << 29

// ScalingPList returns the scaling-suite PE counts up to pmax.
func ScalingPList(pmax int) []int {
	var out []int
	for _, p := range []int{256, 1024, 4096, 16384} {
		if p <= pmax {
			out = append(out, p)
		}
	}
	return out
}

// scalingSelPerPE keeps the selection workload's total memory O(p·perPE)
// manageable at p = 16384 (16384 × 1024 × 8 B = 128 MiB of input).
const scalingSelPerPE = 1 << 10

// scalingCollectivesBody is one op of the collective scaling workload:
// the O(log p)-startup collectives (broadcast, all-reduce, prefix sum,
// barrier) whose memory footprint stays O(p) at any scale. The
// O(p·total)-memory gathers are exercised by the fixed suite at p = 64
// and by the selection workload's internal sample gathers.
func scalingCollectivesBody(pe *comm.PE) {
	coll.Broadcast(pe, 0, []int64{1, 2, 3, 4})
	coll.AllReduceScalar(pe, int64(pe.Rank()), func(a, b int64) int64 { return a + b })
	coll.ExScanSum(pe, int64(pe.Rank()))
	coll.Barrier(pe)
}

// heapLive settles the heap and returns live bytes. Two GC cycles: the
// first runs finalizers of earlier machines (releasing their worker
// pools), the second collects what the finalizers unpinned.
func heapLive() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// measureScaling times iters runs of body on m (after one warmup run)
// and fills the communication metrics from the machine's stats.
func measureScaling(m *comm.Machine, iters int, body func(pe *comm.PE)) (nsPerOp float64, s comm.Stats) {
	m.MustRun(body) // warmup: worker spawn, pool and scratch warm
	m.ResetStats()
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		m.MustRun(body)
	}
	elapsed := time.Since(t0)
	s = m.Stats()
	s.TotalWords /= int64(iters)
	s.TotalSends /= int64(iters)
	s.MaxSentWords /= int64(iters)
	s.MaxRecvWords /= int64(iters)
	s.MaxSends /= int64(iters)
	s.MaxClock /= float64(iters)
	return float64(elapsed.Nanoseconds()) / float64(iters), s
}

// ScalingSuite runs the scaling workloads for every p in pList on both
// backends, refusing configurations whose estimated queue memory exceeds
// budget. progress (optional) receives one line per entry.
func ScalingSuite(pList []int, budget int64, progress func(string)) []BenchResult {
	var out []BenchResult
	for _, p := range pList {
		for _, backend := range []comm.Backend{comm.BackendMailbox, comm.BackendChannelMatrix} {
			for _, r := range scalingRun(p, backend, budget) {
				out = append(out, r)
				if progress != nil {
					if r.Skipped != "" {
						progress(fmt.Sprintf("%-44s SKIPPED: %s", r.Name, r.Skipped))
					} else {
						progress(fmt.Sprintf("%-44s %14.0f ns/op %10.0f words/PE %8.0f starts/PE %10.0f machine B",
							r.Name, r.NsPerOp, r.WordsPerPE, r.StartsPerPE, r.MachineBytes))
					}
				}
			}
		}
	}
	return out
}

func scalingRun(p int, backend comm.Backend, budget int64) []BenchResult {
	cfg := comm.DefaultConfig(p)
	cfg.Backend = backend
	collName := fmt.Sprintf("Scaling/Collectives/p=%d/%s", p, backend)
	selName := fmt.Sprintf("Scaling/Table1Selection/p=%d/%s", p, backend)
	if qb := comm.QueueBytes(cfg); qb > budget {
		reason := fmt.Sprintf("estimated message-queue memory %.2f GiB exceeds the %.1f GiB harness budget",
			float64(qb)/(1<<30), float64(budget)/(1<<30))
		return []BenchResult{
			{Name: collName, P: p, Backend: backend.String(), Skipped: reason},
			{Name: selName, P: p, Backend: backend.String(), Skipped: reason},
		}
	}

	heapBefore := heapLive()
	m := comm.NewMachine(cfg)
	// Signed delta clamped at zero: the first GC may also reclaim garbage
	// from earlier configurations, which would underflow an unsigned diff.
	machineBytes := max(float64(int64(heapLive())-int64(heapBefore)), 0)
	defer m.Close()

	var out []BenchResult
	ns, s := measureScaling(m, 5, scalingCollectivesBody)
	out = append(out, BenchResult{
		Name: collName, P: p, Backend: backend.String(), MachineBytes: machineBytes,
		NsPerOp: ns, WordsPerPE: float64(s.BottleneckWords()), StartsPerPE: float64(s.MaxSends), MaxClock: s.MaxClock,
	})

	locals := make([][]uint64, p)
	for r := 0; r < p; r++ {
		locals[r] = gen.SelectionInput(xrand.NewPE(3, r), scalingSelPerPE, 12)
	}
	n := int64(p) * scalingSelPerPE
	// Fixed pivot seed: every measured run takes the same communication
	// path, so the per-op stats are exact rather than averaged estimates.
	ns, s = measureScaling(m, 3, func(pe *comm.PE) {
		sel.Kth(pe, locals[pe.Rank()], n/2, xrand.NewPE(17, pe.Rank()))
	})
	out = append(out, BenchResult{
		Name: selName, P: p, Backend: backend.String(), MachineBytes: machineBytes,
		NsPerOp: ns, WordsPerPE: float64(s.BottleneckWords()), StartsPerPE: float64(s.MaxSends), MaxClock: s.MaxClock,
	})
	return out
}

// ScalingTable renders the scaling suite as a human-readable experiment
// table for `topkbench -exp scaling`.
func ScalingTable(pmax int) Table {
	t := Table{
		Title: "Scaling: collectives and Table-1 selection at large p (mailbox vs channel matrix)",
		Notes: fmt.Sprintf("memory budget %.1f GiB for up-front queue allocation; over-budget configs are refused\ncollectives op = broadcast + all-reduce + prefix sum + barrier; selection: n/p=%d, k=n/2",
			float64(ScalingMemBudgetBytes)/(1<<30), scalingSelPerPE),
		Header: []string{"workload", "p", "backend", "ns/op", "words/PE", "start/PE", "T_model", "machine MB"},
	}
	for _, r := range ScalingSuite(ScalingPList(pmax), ScalingMemBudgetBytes, nil) {
		if r.Skipped != "" {
			t.Rows = append(t.Rows, []string{r.Name, fmt.Sprint(r.P), r.Backend, "—", "—", "—", "—", r.Skipped})
			continue
		}
		t.Rows = append(t.Rows, []string{
			r.Name, fmt.Sprint(r.P), r.Backend,
			fmt.Sprintf("%.0f", r.NsPerOp),
			fmt.Sprintf("%.0f", r.WordsPerPE),
			fmt.Sprintf("%.0f", r.StartsPerPE),
			modelMs(r.MaxClock),
			fmt.Sprintf("%.2f", r.MachineBytes/(1<<20)),
		})
	}
	return t
}
