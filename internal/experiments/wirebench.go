package experiments

import (
	"fmt"
	"time"

	"commtopk/internal/comm"
	"commtopk/internal/wire"
	_ "commtopk/internal/wire/wireprogs" // programs + codecs for every participating binary
)

// The wire experiment family: the same registered programs on a real
// multi-process cluster and on the in-process mailbox twin, recording
// measured wall-clock next to the modeled α/β clock. The simulator's
// claim is that T_model = α·z + β·y describes the communication critical
// path; the wire backend is the one configuration with a real transport
// under it, so this axis is where model and measurement can be compared.
// Results are also twin-checked: wire and mailbox runs must agree
// bit-for-bit on both result words and meters (the differential suite in
// internal/wire pins the same property as a test).

// wireRun is one measured configuration of the wire family.
type wireRun struct {
	Prog      string
	P, Procs  int
	WallNs    float64 // measured wall per run, wire cluster
	TwinNs    float64 // measured wall per run, in-process mailbox twin
	Model     float64 // modeled α/β critical-path clock (identical on both)
	WordsPE   int64   // bottleneck words per PE
	StartsPE  int64   // bottleneck startups per PE
	Identical bool    // results AND meters bit-identical to the twin
	Err       string
}

func wireCases(p int) []struct {
	prog string
	args []uint64
} {
	return []struct {
		prog string
		args []uint64
	}{
		{"collectives", []uint64{42, 16}},
		{"kth", []uint64{7, 1 << 12, uint64(p) * (1 << 12) / 2}},
		{"deletemin", []uint64{11, 1 << 10, uint64(64 * p), 4}},
		{"mtopk", []uint64{13, 256, 4, 16}},
		{"freq", []uint64{17, 1 << 12, 256, 16}},
	}
}

func wireShapes(quick bool) [][2]int {
	if quick {
		return [][2]int{{16, 2}}
	}
	return [][2]int{{16, 1}, {16, 2}, {16, 4}, {64, 2}, {64, 4}}
}

const wireIters = 3

// runWireFamily measures every (shape, program) configuration: spawn one
// cluster per shape, run each program wireIters times on it and on the
// in-process twin, keep the average wall time of each and the (per-run,
// deterministic) modeled meters.
func runWireFamily(quick bool, progress func(string)) []wireRun {
	var out []wireRun
	for _, shape := range wireShapes(quick) {
		p, procs := shape[0], shape[1]
		cfg := wire.Config{P: p, Procs: procs, Seed: 5}
		c, err := wire.Spawn(cfg)
		if err != nil {
			for _, tc := range wireCases(p) {
				out = append(out, wireRun{Prog: tc.prog, P: p, Procs: procs, Err: fmt.Sprintf("spawn: %v", err)})
			}
			continue
		}
		for _, tc := range wireCases(p) {
			r := wireRun{Prog: tc.prog, P: p, Procs: procs}
			var wres []uint64
			var wst comm.Stats
			start := time.Now()
			for it := 0; it < wireIters && r.Err == ""; it++ {
				if wres, wst, err = c.Run(tc.prog, tc.args); err != nil {
					r.Err = err.Error()
				}
			}
			r.WallNs = float64(time.Since(start).Nanoseconds()) / wireIters
			if r.Err == "" {
				start = time.Now()
				var lres []uint64
				var lst comm.Stats
				for it := 0; it < wireIters && r.Err == ""; it++ {
					if lres, lst, err = wire.RunLocal(cfg, tc.prog, tc.args); err != nil {
						r.Err = err.Error()
					}
				}
				r.TwinNs = float64(time.Since(start).Nanoseconds()) / wireIters
				if r.Err == "" {
					r.Model = wst.MaxClock
					r.WordsPE = wst.BottleneckWords()
					r.StartsPE = wst.MaxSends
					r.Identical = wst == lst && len(wres) == len(lres)
					for i := range wres {
						if wres[i] != lres[i] {
							r.Identical = false
						}
					}
				}
			}
			out = append(out, r)
			if progress != nil {
				progress(fmt.Sprintf("Wire/%s/p%d/procs%d %12.0f ns/run (twin %.0f, model %.0f)",
					r.Prog, p, procs, r.WallNs, r.TwinNs, r.Model))
			}
		}
		c.Close()
	}
	return out
}

// WireSuite runs the wire family and returns benchmark-pipeline entries
// (topkbench -exp wire -json): measured wall time in NsPerOp, the
// modeled clock in MaxClock, twin wall time and the bit-identity verdict
// in Note.
func WireSuite(quick bool, progress func(string)) []BenchResult {
	var out []BenchResult
	for _, r := range runWireFamily(quick, progress) {
		res := BenchResult{
			Name:        fmt.Sprintf("Wire/%s/p%d/procs%d", r.Prog, r.P, r.Procs),
			NsPerOp:     r.WallNs,
			WordsPerPE:  float64(r.WordsPE),
			StartsPerPE: float64(r.StartsPE),
			MaxClock:    r.Model,
			P:           r.P,
			Backend:     "wire",
		}
		switch {
		case r.Err != "":
			res.Skipped = r.Err
		case r.Identical:
			res.Note = fmt.Sprintf("mailbox twin %.0f ns/run; results and meters bit-identical", r.TwinNs)
		default:
			res.Note = fmt.Sprintf("mailbox twin %.0f ns/run; DIVERGED from twin", r.TwinNs)
		}
		out = append(out, res)
	}
	return out
}

// WireTable renders the wire family for the human-readable experiment
// output (topkbench -exp wire).
func WireTable(quick bool) Table {
	t := Table{
		Title: "Wire backend: measured wall-clock vs modeled α/β clock",
		Notes: "one OS process per PE group over unix-socket frames; procs=1 is the in-process degenerate case\n" +
			"wall(ms) is real elapsed time per run (host-dependent); T_model is the simulated α·z+β·y critical path\n" +
			"identical = results AND words/startups meters bit-equal to the single-process mailbox twin",
		Header: []string{"prog", "p", "procs", "wall(ms)", "twin(ms)", "T_model", "words/PE", "start/PE", "identical"},
	}
	for _, r := range runWireFamily(quick, nil) {
		if r.Err != "" {
			t.Rows = append(t.Rows, []string{r.Prog, fmt.Sprint(r.P), fmt.Sprint(r.Procs), "-", "-", "-", "-", "-", "ERR: " + r.Err})
			continue
		}
		t.Rows = append(t.Rows, []string{
			r.Prog, fmt.Sprint(r.P), fmt.Sprint(r.Procs),
			fmt.Sprintf("%.2f", r.WallNs/1e6),
			fmt.Sprintf("%.2f", r.TwinNs/1e6),
			fmt.Sprintf("%.0f", r.Model),
			fmt.Sprint(r.WordsPE),
			fmt.Sprint(r.StartsPE),
			fmt.Sprint(r.Identical),
		})
	}
	return t
}
