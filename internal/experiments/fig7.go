package experiments

import (
	"fmt"

	"commtopk/internal/comm"
	"commtopk/internal/freq"
	"commtopk/internal/gen"
	"commtopk/internal/xrand"
)

// freqAlgos are the four contenders of Figures 7 and 8.
var freqAlgos = []struct {
	name string
	run  func(pe *comm.PE, local []uint64, p freq.Params, rng *xrand.RNG) freq.Result
}{
	{"PAC", freq.PAC},
	{"EC", freq.EC},
	{"Naive", freq.Naive},
	{"NaiveTree", freq.NaiveTree},
}

// Fig7 reproduces Figures 7a/7b: weak scaling of the top-32 most frequent
// objects, Zipf(1) over a 2^20-scaled universe, comparing PAC, EC, Naive
// and Naive Tree at moderate accuracy.
//
// Expected shape (paper): Naive degrades with p (coordinator receives p−1
// messages); Naive Tree flat but above PAC; PAC scales nearly perfectly;
// EC pays a constant exact-counting overhead that dominates at this ε.
func Fig7(perPE int, pList []int, k int, eps, delta float64, seed int64) Table {
	t := Table{
		Title: fmt.Sprintf("Figure 7 — weak scaling, top-%d most frequent objects (ε=%g, δ=%g)", k, eps, delta),
		Notes: fmt.Sprintf("n/p = %d per PE, Zipf(1) universe 2^%d\n"+
			"paper: n/p ∈ {2^26, 2^28}, ε=3e-4, δ=1e-4 (ε rescaled for the smaller n; same sampling regime)",
			perPE, logUniverse(perPE)),
		Header: append([]string{"p", "algo", "wall(ms)", "sample"}, stdHeader...),
	}
	params := freq.Params{K: k, Eps: eps, Delta: delta}
	for _, p := range pList {
		z := gen.NewZipf(1<<logUniverse(perPE), 1)
		locals := make([][]uint64, p)
		for r := 0; r < p; r++ {
			locals[r] = gen.FrequencyInput(xrand.NewPE(seed, r), z, perPE)
		}
		m := comm.NewMachine(expConfig(p))
		for _, a := range freqAlgos {
			var sample int64
			meas := runMeasured(m, func(pe *comm.PE) {
				res := a.run(pe, locals[pe.Rank()], params, xrand.NewPE(seed+31, pe.Rank()))
				if pe.Rank() == 0 {
					sample = res.SampleSize
				}
			})
			row := []string{
				fmt.Sprintf("%d", p), a.name, ms(meas.wall), fmt.Sprintf("%d", sample),
			}
			t.Rows = append(t.Rows, append(row, stdCols(meas)...))
		}
	}
	return t
}

// Fig8 reproduces Figure 8: the same contest under accuracy so strict
// that sampling collapses for every algorithm except EC (whose sample
// size is linear, not quadratic, in 1/ε).
//
// Expected shape (paper): PAC/Naive/NaiveTree must process the entire
// input; EC is consistently fastest because only it may still sample.
func Fig8(perPE int, pList []int, k int, eps, delta float64, seed int64) Table {
	t := Fig7(perPE, pList, k, eps, delta, seed)
	t.Title = fmt.Sprintf("Figure 8 — weak scaling, top-%d most frequent, strict accuracy (ε=%g, δ=%g)", k, eps, delta)
	t.Notes = fmt.Sprintf("n/p = %d per PE, Zipf(1) universe 2^%d\n"+
		"paper: ε=1e-6, δ=1e-8 at n/p=2^28 — at this repo's scale the same regime (PAC sample ≥ n, EC sample ≪ n)\n"+
		"is reached at the ε shown above; only EC can still sample", perPE, logUniverse(perPE))
	return t
}
