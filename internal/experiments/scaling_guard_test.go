package experiments

import (
	"runtime"
	"testing"
	"time"

	"commtopk/internal/bpq"
	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/freq"
	"commtopk/internal/gen"
	"commtopk/internal/mtopk"
	"commtopk/internal/sel"
	"commtopk/internal/xrand"
)

// TestScaling65536WithinBudgets is the CI smoke for the large-p regime:
// a p = 65536 mailbox machine runs a parking-heavy collective workload
// and the process must stay inside the scaling suite's 1.5 GiB memory
// budget (RSS as the runtime sees it: everything ever reserved from the
// OS, heap and goroutine stacks included) while the resident goroutine
// count stays at scheduler width, not PE count. Skipped under -short so
// quick local cycles are not taxed; CI runs it explicitly.
func TestScaling65536WithinBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("p=65536 smoke skipped in -short mode")
	}
	const p = 1 << 16
	baseline := runtime.NumGoroutine()
	m := comm.NewMachine(comm.MailboxConfig(p))
	defer m.Close()
	w := m.Workers()
	body := func(pe *comm.PE) {
		// Dissemination scan + reverse ring: tens of thousands of PE
		// bodies park at least once per run.
		coll.ExScanSum(pe, int64(pe.Rank()))
		tag := pe.NextCollTag()
		pe.Send((pe.Rank()-1+p)%p, tag, nil, 1)
		pe.Recv((pe.Rank()+1)%p, tag)
	}
	m.MustRun(body)
	m.MustRun(body)

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if int64(ms.Sys) > ScalingMemBudgetBytes {
		t.Errorf("process reserved %.2f GiB from the OS at p=%d; scaling budget is %.1f GiB",
			float64(ms.Sys)/(1<<30), p, float64(ScalingMemBudgetBytes)/(1<<30))
	}

	deadline := time.Now().Add(5 * time.Second)
	goroutines := runtime.NumGoroutine()
	for time.Now().Before(deadline) && goroutines > baseline+w+2 {
		time.Sleep(10 * time.Millisecond)
		goroutines = runtime.NumGoroutine()
	}
	if goroutines > baseline+w+2 {
		t.Errorf("resident goroutines %d (baseline %d) exceed w+O(1) with w=%d at p=%d",
			goroutines, baseline, w, p)
	}
}

// TestMidRunGoroutineResidency16384 is the PR 4 residency guard
// extended to the PR 5 stepper set: PR 3 pinned O(w) goroutines for a
// *resident* machine (parked bodies retired between runs); this asserts
// the bound *while p = 16384 collectives are in flight*. The sampled
// window now covers the scalar collectives op, the strided and chunked
// gather workloads, the full stepper-form selection (sel.KthStep), the
// bulk-priority-queue DeleteMinStep against per-rank resident queues,
// the multicriteria threshold algorithm (mtopk.DTAStep — nested AMS
// selections plus scalar reductions), and the sampling heavy-hitter
// pipeline (freq.PACStep — DHT routing plus shard top-k selection) —
// thousands of PEs are simultaneously waiting mid-collective at any
// sampled instant, and none of them may hold a goroutine. Skipped
// under -short; CI runs it explicitly.
func TestMidRunGoroutineResidency16384(t *testing.T) {
	if testing.Short() {
		t.Skip("p=16384 mid-run guard skipped in -short mode")
	}
	const p = 16384
	const selPerPE = 64
	baseline := runtime.NumGoroutine()
	m := comm.NewMachine(comm.MailboxConfig(p))
	defer m.Close()
	w := m.Workers()
	if w >= p/4 {
		t.Skipf("GOMAXPROCS too large for a meaningful bound (w=%d, p=%d)", w, p)
	}
	locals := make([][]uint64, p)
	for r := 0; r < p; r++ {
		locals[r] = gen.SelectionInput(xrand.NewPE(3, r), selPerPE, 12)
	}
	// Per-rank resident queues for the DeleteMinStep workload, built
	// before sampling starts (PE objects are stable on a resident
	// machine, so the queues stay bound to their PEs across runs).
	qs := make([]*bpq.Queue[uint64], p)
	m.MustRun(func(pe *comm.PE) {
		q := bpq.New[uint64](pe, 99)
		keys := make([]uint64, selPerPE)
		for i := range keys {
			keys[i] = uint64(i*p + pe.Rank())
		}
		q.InsertBulk(keys)
		qs[pe.Rank()] = q
	})
	// Per-rank multicriteria instances and skewed key streams for the
	// mtopk/freq stepper workloads, built host-side (no PE needed).
	datas := make([]*mtopk.Data, p)
	freqLocals := make([][]uint64, p)
	for r := 0; r < p; r++ {
		objs := mtopk.GenObjects(xrand.NewPE(7, r), 4, 2, 1+uint64(r)*4)
		datas[r] = mtopk.NewData(objs, 2)
		rng := xrand.NewPE(11, r)
		sh := make([]uint64, 16)
		for i := range sh {
			u := rng.Uint64() % 16
			sh[i] = rng.Uint64() % (u + 1)
		}
		freqLocals[r] = sh
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2; i++ {
			m.MustRunAsync(scalingCollectivesStart)
		}
		m.MustRunAsync(scalingStridedStart(16))
		m.MustRunAsync(scalingGatherStart)
		m.MustRunAsync(func(pe *comm.PE) comm.Stepper {
			return sel.KthStep(pe, locals[pe.Rank()], int64(p*selPerPE/2),
				xrand.NewPE(17, pe.Rank()), nil)
		})
		m.MustRunAsync(func(pe *comm.PE) comm.Stepper {
			return qs[pe.Rank()].DeleteMinStep(int64(p*selPerPE/4), nil)
		})
		m.MustRunAsync(func(pe *comm.PE) comm.Stepper {
			return mtopk.DTAStep(pe, datas[pe.Rank()], mtopk.SumScore, 8,
				xrand.NewPE(23, pe.Rank()), nil)
		})
		m.MustRunAsync(func(pe *comm.PE) comm.Stepper {
			return freq.PACStep(pe, freqLocals[pe.Rank()],
				freq.Params{K: 8, Eps: 0.05, Delta: 0.01},
				xrand.NewPE(29, pe.Rank()), nil)
		})
	}()
	var maxMid, samples int64
	for sampling := true; sampling; {
		select {
		case <-done:
			sampling = false
		default:
			if g := int64(runtime.NumGoroutine()); g > maxMid {
				maxMid = g
			}
			samples++
			time.Sleep(200 * time.Microsecond)
		}
	}
	if samples == 0 {
		t.Log("run finished before the first sample; mid-run residency not observed")
	}
	// +3: the run goroutine, the test goroutine, scheduling slack.
	if maxMid > int64(baseline+w+3) {
		t.Errorf("mid-collective goroutines reached %d (baseline %d, w=%d); want ≤ w+O(1) — continuation scheduling broken",
			maxMid, baseline, w)
	}
}
