package experiments

import (
	"fmt"

	"commtopk/internal/comm"
	"commtopk/internal/gen"
	"commtopk/internal/sel"
	"commtopk/internal/xrand"
)

// Fig6 reproduces Figure 6: weak scaling of unsorted selection on the
// randomized per-PE Zipf workload of Section 10.1, selecting the k-th
// largest element for several k. The paper uses n/p = 2^28 and
// k ∈ {2^10, 2^20, 2^26}; perPE and ks scale those down proportionally.
//
// Expected shape (paper): time roughly flat or falling as p grows —
// local partitioning dominates, communication stays negligible.
func Fig6(perPE int, pList []int, ks []int64, seed int64) Table {
	t := Table{
		Title: "Figure 6 — weak scaling, unsorted selection (k-th largest)",
		Notes: fmt.Sprintf("n/p = %d per PE, per-PE randomized Zipf tails (universe ~2^%d, s ∈ [1,1.2])\n"+
			"paper: n/p = 2^28, k ∈ {2^10, 2^20, 2^26} on 1..2048 cores", perPE, logUniverse(perPE)),
		Header: append([]string{"p", "k", "wall(ms)"}, stdHeader...),
	}
	for _, p := range pList {
		locals := make([][]uint64, p)
		for r := 0; r < p; r++ {
			locals[r] = gen.SelectionInput(xrand.NewPE(seed, r), perPE, logUniverse(perPE))
		}
		n := int64(p * perPE)
		m := comm.NewMachine(expConfig(p))
		for _, k := range ks {
			if k >= n {
				continue
			}
			rank := n - k + 1 // k-th largest = (n-k+1)-th smallest
			meas := runMeasured(m, func(pe *comm.PE) {
				rng := xrand.NewPE(seed+17, pe.Rank())
				sel.Kth(pe, locals[pe.Rank()], rank, rng)
			})
			row := []string{fmt.Sprintf("%d", p), fmt.Sprintf("%d", k), ms(meas.wall)}
			t.Rows = append(t.Rows, append(row, stdCols(meas)...))
		}
	}
	return t
}

// logUniverse picks the Zipf universe exponent relative to the per-PE
// size. The paper pairs a 2^20-value universe with 2^26..2^28 per-PE
// inputs; what that ratio controls is the number of *distinct* keys a
// PE's aggregated sample holds (large enough that a coordinator choking
// on p aggregated tables is visible). At this repo's smaller n/p the
// same effect needs a universe of perPE/4.
func logUniverse(perPE int) int {
	l := 0
	for v := perPE; v > 1; v >>= 1 {
		l++
	}
	l -= 2
	if l < 8 {
		l = 8
	}
	return l
}
