// Package experiments regenerates the paper's evaluation (Section 10):
// every figure and table has a function here producing the corresponding
// series, used by cmd/topkbench and the root-level benchmarks.
//
// Scaling note: the paper ran on 2048 cores with n/p up to 2^28; this
// harness runs p goroutines on one host with n/p defaulting to 2^20 (the
// shapes — who wins, scaling trends, crossovers — are preserved; absolute
// times are not comparable and not claimed). Accuracy parameters are
// rescaled where the paper's values would degenerate at the smaller n;
// each experiment's Notes field records the mapping.
//
// Reported columns:
//
//	work(ms)  — max over PEs of measured local compute time (wall time of
//	            the algorithm body minus time blocked on communication)
//	words/PE  — bottleneck communication volume (max over PEs, sent)
//	start/PE  — bottleneck startup count
//	T_model   — modeled time α·z + β·y along the critical path (the
//	            machine's virtual communication clock)
package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"commtopk/internal/comm"
)

// expBackend is the in-process backend the figure/table families build
// their machines with — the topkbench -backend flag. The wire backend is
// not a valid value here: those families run arbitrary closures, which
// cannot cross a process boundary; the wire axis runs its registered
// programs via the dedicated wire family instead (-exp wire).
var expBackend = comm.BackendMailbox

// SetBackend selects the machine backend for the experiment families
// (BackendMailbox — the default — or BackendChannelMatrix).
func SetBackend(b comm.Backend) {
	if b != comm.BackendMailbox && b != comm.BackendChannelMatrix {
		panic(fmt.Sprintf("experiments: unsupported experiment backend %v", b))
	}
	expBackend = b
}

// expConfig is DefaultConfig under the selected experiment backend.
func expConfig(p int) comm.Config {
	cfg := comm.DefaultConfig(p)
	cfg.Backend = expBackend
	return cfg
}

// Table is a formatted experiment result.
type Table struct {
	Title  string
	Notes  string
	Header []string
	Rows   [][]string
}

// Render prints the table with aligned columns.
func (t *Table) Render(sb *strings.Builder) {
	sb.WriteString("== " + t.Title + " ==\n")
	if t.Notes != "" {
		for _, line := range strings.Split(t.Notes, "\n") {
			sb.WriteString("# " + line + "\n")
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(sb, "%*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	sb.WriteByte('\n')
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// measurement aggregates one timed SPMD phase.
type measurement struct {
	maxWork  time.Duration // max over PEs of (body wall − comm wait)
	wall     time.Duration // total wall time of the phase
	stats    comm.Stats
	extra    map[string]float64
	extraMu  sync.Mutex
	workByPE []time.Duration
}

// runMeasured runs body on the machine, measuring per-PE local work.
// The machine's stats are reset before the run.
func runMeasured(m *comm.Machine, body func(pe *comm.PE)) *measurement {
	m.ResetStats()
	meas := &measurement{
		extra:    map[string]float64{},
		workByPE: make([]time.Duration, m.P()),
	}
	t0 := time.Now()
	m.MustRun(func(pe *comm.PE) {
		w0 := pe.WaitTime()
		b0 := time.Now()
		body(pe)
		work := time.Since(b0) - (pe.WaitTime() - w0)
		meas.workByPE[pe.Rank()] = work
	})
	meas.wall = time.Since(t0)
	for _, w := range meas.workByPE {
		if w > meas.maxWork {
			meas.maxWork = w
		}
	}
	meas.stats = m.Stats()
	return meas
}

// record stores an extra named metric (thread-safe, for use inside body).
func (m *measurement) record(key string, v float64) {
	m.extraMu.Lock()
	m.extra[key] += v
	m.extraMu.Unlock()
}

func ms(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000) }

func modelMs(clock float64) string {
	// α/β are unitless model parameters; report the clock in kilo-units
	// so typical runs land in a readable range.
	return fmt.Sprintf("%.1f", clock/1000)
}

// stdCols is the shared metric block appended to most rows.
func stdCols(meas *measurement) []string {
	return []string{
		ms(meas.maxWork),
		fmt.Sprintf("%d", meas.stats.BottleneckWords()),
		fmt.Sprintf("%d", meas.stats.MaxSends),
		modelMs(meas.stats.MaxClock),
	}
}

// stdHeader matches stdCols.
var stdHeader = []string{"work(ms)", "words/PE", "start/PE", "T_model"}

// PList returns the weak-scaling PE counts 1,2,4,...,pmax.
func PList(pmax int) []int {
	var out []int
	for p := 1; p <= pmax; p *= 2 {
		out = append(out, p)
	}
	return out
}
