package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"commtopk/internal/bpq"
	"commtopk/internal/coll"
	"commtopk/internal/comm"
	"commtopk/internal/freq"
	"commtopk/internal/gen"
	"commtopk/internal/mtopk"
	"commtopk/internal/sel"
	"commtopk/internal/xrand"
)

// Randomized differential fuzz over the stepper forms: random sequences
// of collectives with random payload shapes run three ways —
//
//	channel matrix, blocking bodies   (the naive reference)
//	mailbox, blocking bodies          (the production blocking path)
//	mailbox, continuation bodies      (RunAsync over the pooled steppers)
//
// at several scheduler widths, and every PE's results plus the machine's
// metered statistics must be bit-identical across all of them. The fixed
// differential suite (differential_test.go) pins known shapes; the fuzz
// walks the composition space — mixed op orders, ragged payloads, chunk
// sizes, p ∈ {4, 16, 64}, w ∈ {1, 4, GOMAXPROCS·8} — where stale pooled
// stepper state, tag desynchronization, or meter divergence between the
// three execution modes would surface.

// fuzzOp is one fuzzable collective: block runs the blocking form and
// returns a comparable result; step returns the stepper form delivering
// the same result through *out. prm carries the op's randomized
// parameters, derived deterministically from the sequence seed so all
// three machines run identical programs.
type fuzzOp struct {
	name  string
	block func(pe *comm.PE, prm int64) any
	step  func(pe *comm.PE, prm int64, out *any) comm.Stepper
}

// fuzzPayload builds a deterministic ragged payload for rank: length
// depends on (prm, rank) and can be zero.
func fuzzPayload(pe *comm.PE, prm int64) []int64 {
	n := int((prm + int64(pe.Rank())) % 5)
	data := make([]int64, n)
	for i := range data {
		data[i] = prm + int64(pe.Rank()*31+i)
	}
	return data
}

func fuzzRouteItems(pe *comm.PE, prm int64) []coll.Routed[int64] {
	p := pe.P()
	n := int(prm%3) + p
	items := make([]coll.Routed[int64], n)
	for i := range items {
		items[i] = coll.Routed[int64]{
			Dest:    int((prm + int64(pe.Rank()*7+i*13)) % int64(p)),
			Payload: prm + int64(pe.Rank()*1000+i),
		}
	}
	return items
}

// fuzzBpqKeys builds count globally unique ascending keys for this rank
// in the batch namespace base (namespaces far enough apart that refill
// batches never collide with the initial fill).
func fuzzBpqKeys(pe *comm.PE, base, count int) []uint64 {
	keys := make([]uint64, count)
	for i := range keys {
		keys[i] = uint64((base+i)*pe.P() + pe.Rank())
	}
	return keys
}

// fuzzMtopkData builds a deterministic per-rank multicriteria instance:
// object count, criteria count and the global k all vary with prm; IDs
// are globally unique by rank-disjoint offsets.
func fuzzMtopkData(pe *comm.PE, prm int64) (*mtopk.Data, int) {
	n := 8 + int(prm%8)
	m := 2 + int(prm%3)
	objs := mtopk.GenObjects(xrand.NewPE(prm, pe.Rank()), n, m, 1+uint64(pe.Rank())*64)
	return mtopk.NewData(objs, m), 1 + int(prm%8)
}

// fuzzFreqStream builds a deterministic skewed per-rank key stream
// (small keys dominate) plus randomized heavy-hitter parameters.
func fuzzFreqStream(pe *comm.PE, prm int64) ([]uint64, freq.Params) {
	rng := xrand.NewPE(prm, pe.Rank())
	uni := uint64(8 + prm%24)
	local := make([]uint64, 48+int(prm%32))
	for i := range local {
		u := rng.Uint64() % uni
		local[i] = rng.Uint64() % (u + 1)
	}
	return local, freq.Params{K: 1 + int(prm%6), Eps: 0.05, Delta: 0.01}
}

// fuzzBpqResult is the BpqChurn op's per-PE observable: every batch key
// this PE received, the flexible batch's realized size, and the final
// peek/length collective results.
type fuzzBpqResult struct {
	batches []uint64
	n2      int64
	min     uint64
	ok      bool
	total   int64
}

func flattenParts(parts [][]int64) []int64 {
	flat := []int64{}
	for src, part := range parts {
		flat = append(flat, int64(src))
		flat = append(flat, part...)
	}
	return flat
}

func fuzzOps() []fuzzOp {
	return []fuzzOp{
		{
			name: "Broadcast",
			block: func(pe *comm.PE, prm int64) any {
				var data []int64
				if pe.Rank() == 0 {
					data = []int64{prm, prm * 3, 42}
				}
				got := coll.Broadcast(pe, 0, data)
				out := make([]int64, len(got))
				copy(out, got)
				return out
			},
			step: func(pe *comm.PE, prm int64, out *any) comm.Stepper {
				var data []int64
				if pe.Rank() == 0 {
					data = []int64{prm, prm * 3, 42}
				}
				return coll.BroadcastStep(pe, 0, data, func(got []int64) {
					o := make([]int64, len(got))
					copy(o, got)
					*out = o
				})
			},
		},
		{
			name: "AllReduceScalar",
			block: func(pe *comm.PE, prm int64) any {
				return coll.AllReduceScalar(pe, prm+int64(pe.Rank()), func(a, b int64) int64 { return a + b })
			},
			step: func(pe *comm.PE, prm int64, out *any) comm.Stepper {
				return coll.AllReduceScalarStep(pe, prm+int64(pe.Rank()),
					func(a, b int64) int64 { return a + b }, func(v int64) { *out = v })
			},
		},
		{
			name: "ExScanSum",
			block: func(pe *comm.PE, prm int64) any {
				return coll.ExScanSum(pe, prm+int64(pe.Rank()*3))
			},
			step: func(pe *comm.PE, prm int64, out *any) comm.Stepper {
				return coll.ExScanSumStep(pe, prm+int64(pe.Rank()*3), func(v int64) { *out = v })
			},
		},
		{
			name: "AllReduceVec",
			block: func(pe *comm.PE, prm int64) any {
				// Length toggles between the recursive-doubling and the
				// Rabenseifner regime with prm.
				n := 3 + int(prm%2)*(4*pe.P())
				x := make([]int64, n)
				for i := range x {
					x[i] = prm + int64(pe.Rank()*n+i)
				}
				return coll.AllReduce(pe, x, func(a, b int64) int64 { return a + b })
			},
			step: func(pe *comm.PE, prm int64, out *any) comm.Stepper {
				n := 3 + int(prm%2)*(4*pe.P())
				x := make([]int64, n)
				for i := range x {
					x[i] = prm + int64(pe.Rank()*n+i)
				}
				return coll.AllReduceStep(pe, x, func(a, b int64) int64 { return a + b },
					func(v []int64) {
						o := make([]int64, len(v))
						copy(o, v)
						*out = o
					})
			},
		},
		{
			name: "GatherStrided",
			block: func(pe *comm.PE, prm int64) any {
				s := int(prm%7) + 1
				acc := []int64{}
				coll.GatherStrided(pe, []int64{prm + int64(pe.Rank())}, s, func(src int, b []int64) {
					acc = append(acc, int64(src), b[0])
				})
				return acc
			},
			step: func(pe *comm.PE, prm int64, out *any) comm.Stepper {
				s := int(prm%7) + 1
				acc := []int64{}
				return comm.Seq(
					coll.GatherStridedStep(pe, []int64{prm + int64(pe.Rank())}, s, func(src int, b []int64) {
						acc = append(acc, int64(src), b[0])
					}),
					comm.StepFunc(func(pe *comm.PE) *comm.RecvHandle { *out = acc; return nil }),
				)
			},
		},
		{
			name: "Gatherv",
			block: func(pe *comm.PE, prm int64) any {
				return flattenParts(coll.Gatherv(pe, int(prm)%pe.P(), fuzzPayload(pe, prm)))
			},
			step: func(pe *comm.PE, prm int64, out *any) comm.Stepper {
				return coll.GathervStep(pe, int(prm)%pe.P(), fuzzPayload(pe, prm), func(parts [][]int64) {
					*out = flattenParts(parts)
				})
			},
		},
		{
			name: "BroadcastScalar",
			block: func(pe *comm.PE, prm int64) any {
				return coll.BroadcastScalar(pe, int(prm)%pe.P(), prm+int64(pe.Rank()))
			},
			step: func(pe *comm.PE, prm int64, out *any) comm.Stepper {
				return coll.BroadcastScalarStep(pe, int(prm)%pe.P(), prm+int64(pe.Rank()),
					func(v int64) { *out = v })
			},
		},
		{
			name: "AllGatherv",
			block: func(pe *comm.PE, prm int64) any {
				return flattenParts(coll.AllGatherv(pe, fuzzPayload(pe, prm)))
			},
			step: func(pe *comm.PE, prm int64, out *any) comm.Stepper {
				return coll.AllGathervStep(pe, fuzzPayload(pe, prm), func(parts [][]int64) {
					*out = flattenParts(parts)
				})
			},
		},
		{
			name: "AllGatherConcat",
			block: func(pe *comm.PE, prm int64) any {
				return coll.AllGatherConcat(pe, fuzzPayload(pe, prm))
			},
			step: func(pe *comm.PE, prm int64, out *any) comm.Stepper {
				return coll.AllGatherConcatStep(pe, fuzzPayload(pe, prm), func(v []int64) {
					o := make([]int64, len(v))
					copy(o, v)
					*out = o
				})
			},
		},
		{
			name: "AllToAll",
			block: func(pe *comm.PE, prm int64) any {
				parts := make([][]int64, pe.P())
				for d := range parts {
					parts[d] = []int64{prm + int64(pe.Rank()*100+d), int64(d)}
				}
				return flattenParts(coll.AllToAll(pe, parts))
			},
			step: func(pe *comm.PE, prm int64, out *any) comm.Stepper {
				parts := make([][]int64, pe.P())
				for d := range parts {
					parts[d] = []int64{prm + int64(pe.Rank()*100+d), int64(d)}
				}
				bys := make([][]int64, pe.P())
				return comm.Seq(
					coll.AllToAllStep(pe, parts, func(src int, part []int64) {
						bys[src] = append([]int64(nil), part...)
					}),
					comm.StepFunc(func(pe *comm.PE) *comm.RecvHandle { *out = flattenParts(bys); return nil }),
				)
			},
		},
		{
			name: "RouteCombine",
			block: func(pe *comm.PE, prm int64) any {
				var sum int64
				for _, it := range coll.AllToAllCombine(pe, fuzzRouteItems(pe, prm), nil) {
					sum += it.Payload * int64(it.Dest+1)
				}
				return sum
			},
			step: func(pe *comm.PE, prm int64, out *any) comm.Stepper {
				return coll.AllToAllCombineStep(pe, fuzzRouteItems(pe, prm), nil,
					func(got []coll.Routed[int64]) {
						var sum int64
						for _, it := range got {
							sum += it.Payload * int64(it.Dest+1)
						}
						*out = sum
					})
			},
		},
		{
			name: "RouteCombineChunked",
			block: func(pe *comm.PE, prm int64) any {
				chunk := int(prm%4) + 1
				var sum int64
				for _, it := range coll.AllToAllCombineChunked(pe, fuzzRouteItems(pe, prm), chunk, nil) {
					sum += it.Payload * int64(it.Dest+1)
				}
				return sum
			},
			step: func(pe *comm.PE, prm int64, out *any) comm.Stepper {
				chunk := int(prm%4) + 1
				return coll.AllToAllCombineChunkedStep(pe, fuzzRouteItems(pe, prm), chunk, nil,
					func(got []coll.Routed[int64]) {
						var sum int64
						for _, it := range got {
							sum += it.Payload * int64(it.Dest+1)
						}
						*out = sum
					})
			},
		},
		{
			name: "AllGatherChunked",
			block: func(pe *comm.PE, prm int64) any {
				chunk := int(prm%5) + 1
				acc := []int64{}
				coll.AllGatherChunked(pe, fuzzPayload(pe, prm), chunk, func(src int, b []int64) {
					acc = append(acc, int64(src))
					acc = append(acc, b...)
				})
				return acc
			},
			step: func(pe *comm.PE, prm int64, out *any) comm.Stepper {
				chunk := int(prm%5) + 1
				acc := []int64{}
				return comm.Seq(
					coll.AllGatherChunkedStep(pe, fuzzPayload(pe, prm), chunk, func(src int, b []int64) {
						acc = append(acc, int64(src))
						acc = append(acc, b...)
					}),
					comm.StepFunc(func(pe *comm.PE) *comm.RecvHandle { *out = acc; return nil }),
				)
			},
		},
		{
			name: "BpqChurn",
			block: func(pe *comm.PE, prm int64) any {
				p := int64(pe.P())
				q := bpq.New[uint64](pe, prm)
				q.InsertBulk(fuzzBpqKeys(pe, 0, 16+int(prm%16)))
				var res fuzzBpqResult
				res.batches = append(res.batches, q.DeleteMin(1+prm%(24*p))...)
				q.InsertBulk(fuzzBpqKeys(pe, 1000, 8))
				kmin := 1 + prm%5
				b2, n := q.DeleteMinFlexible(kmin, kmin+prm%(4*p))
				res.batches = append(res.batches, b2...)
				res.n2 = n
				res.min, res.ok = q.PeekMin()
				res.total = q.GlobalLen()
				return res
			},
			step: func(pe *comm.PE, prm int64, out *any) comm.Stepper {
				p := int64(pe.P())
				q := bpq.New[uint64](pe, prm)
				q.InsertBulk(fuzzBpqKeys(pe, 0, 16+int(prm%16)))
				kmin := 1 + prm%5
				var res fuzzBpqResult
				// The refill and the two collectives that read tree state at
				// factory time are built lazily, after the preceding stage's
				// queue mutations have landed.
				var flex, glen comm.Stepper
				return comm.Seq(
					q.DeleteMinStep(1+prm%(24*p), func(batch []uint64, _ uint64, _ int64) {
						res.batches = append(res.batches, batch...)
					}),
					comm.StepFunc(func(pe *comm.PE) *comm.RecvHandle {
						if flex == nil {
							q.InsertBulk(fuzzBpqKeys(pe, 1000, 8))
							flex = q.DeleteMinFlexibleStep(kmin, kmin+prm%(4*p),
								func(batch []uint64, _ uint64, n int64) {
									res.batches = append(res.batches, batch...)
									res.n2 = n
								})
						}
						return flex.Step(pe)
					}),
					q.PeekMinStep(func(mn uint64, ok bool) { res.min, res.ok = mn, ok }),
					comm.StepFunc(func(pe *comm.PE) *comm.RecvHandle {
						if glen == nil {
							glen = q.GlobalLenStep(func(v int64) { res.total = v })
						}
						return glen.Step(pe)
					}),
					comm.StepFunc(func(pe *comm.PE) *comm.RecvHandle { *out = res; return nil }),
				)
			},
		},
		{
			name: "MtopkDTA",
			block: func(pe *comm.PE, prm int64) any {
				d, k := fuzzMtopkData(pe, prm)
				return mtopk.DTA(pe, d, mtopk.SumScore, k, xrand.NewPE(prm+11, pe.Rank()))
			},
			step: func(pe *comm.PE, prm int64, out *any) comm.Stepper {
				d, k := fuzzMtopkData(pe, prm)
				return mtopk.DTAStep(pe, d, mtopk.SumScore, k, xrand.NewPE(prm+11, pe.Rank()),
					func(v mtopk.DTAResult) { *out = v })
			},
		},
		{
			name: "FreqPAC",
			block: func(pe *comm.PE, prm int64) any {
				local, pr := fuzzFreqStream(pe, prm)
				return freq.PAC(pe, local, pr, xrand.NewPE(prm+13, pe.Rank()))
			},
			step: func(pe *comm.PE, prm int64, out *any) comm.Stepper {
				local, pr := fuzzFreqStream(pe, prm)
				return freq.PACStep(pe, local, pr, xrand.NewPE(prm+13, pe.Rank()),
					func(v freq.Result) { *out = v })
			},
		},
		{
			name: "SelKth",
			block: func(pe *comm.PE, prm int64) any {
				local := gen.SelectionInput(xrand.NewPE(prm, pe.Rank()), 64, 10)
				n := int64(pe.P() * 64)
				k := 1 + prm%n
				return sel.Kth(pe, local, k, xrand.NewPE(prm+7, pe.Rank()))
			},
			step: func(pe *comm.PE, prm int64, out *any) comm.Stepper {
				local := gen.SelectionInput(xrand.NewPE(prm, pe.Rank()), 64, 10)
				n := int64(pe.P() * 64)
				k := 1 + prm%n
				return sel.KthStep(pe, local, k, xrand.NewPE(prm+7, pe.Rank()),
					func(v uint64) { *out = v })
			},
		},
	}
}

// fuzzSeq is one randomized program: an op sequence with per-op params.
type fuzzSeq struct {
	ops  []int
	prms []int64
}

func makeFuzzSeq(rng *xrand.RNG, nOps int) fuzzSeq {
	var fs fuzzSeq
	catalog := fuzzOps()
	for i := 0; i < nOps; i++ {
		fs.ops = append(fs.ops, int(rng.Intn(len(catalog))))
		fs.prms = append(fs.prms, 1+int64(rng.Intn(1000)))
	}
	return fs
}

// runFuzzBlocking executes the sequence with blocking bodies: one Run,
// ops called back to back inside it (cross-op state — tags, scratch,
// pools — is part of what the fuzz exercises).
func runFuzzBlocking(cfg comm.Config, fs fuzzSeq) ([][]any, comm.Stats) {
	m := comm.NewMachine(cfg)
	defer m.Close()
	catalog := fuzzOps()
	results := make([][]any, len(fs.ops))
	for i := range results {
		results[i] = make([]any, cfg.P)
	}
	m.MustRun(func(pe *comm.PE) {
		for i, oi := range fs.ops {
			results[i][pe.Rank()] = catalog[oi].block(pe, fs.prms[i])
		}
	})
	return results, m.Stats()
}

// runFuzzStepper executes the same sequence as one continuation body per
// PE under RunAsync: the steppers are chained lazily (each constructed
// when the previous completes, like real multi-phase bodies whose later
// stages depend on earlier results).
func runFuzzStepper(cfg comm.Config, fs fuzzSeq) ([][]any, comm.Stats) {
	m := comm.NewMachine(cfg)
	defer m.Close()
	catalog := fuzzOps()
	results := make([][]any, len(fs.ops))
	for i := range results {
		results[i] = make([]any, cfg.P)
	}
	m.MustRunAsync(func(pe *comm.PE) comm.Stepper {
		i := 0
		var cur comm.Stepper
		return comm.StepFunc(func(pe *comm.PE) *comm.RecvHandle {
			for i < len(fs.ops) {
				if cur == nil {
					cur = catalog[fs.ops[i]].step(pe, fs.prms[i], &results[i][pe.Rank()])
				}
				if h := cur.Step(pe); h != nil {
					return h
				}
				cur = nil
				i++
			}
			return nil
		})
	})
	return results, m.Stats()
}

func fuzzIters() int {
	if testing.Short() {
		return 4
	}
	return 12
}

// TestFuzzDifferentialSteppers is the randomized three-way differential:
// for every random sequence, mailbox-blocking and mailbox-stepper runs
// must match the channel-matrix reference exactly — per-PE results and
// metered stats. Widths cover the degenerate single shard, the
// multiplexed regime, and the default.
func TestFuzzDifferentialSteppers(t *testing.T) {
	widths := []int{1, 4, runtime.GOMAXPROCS(0) * 8}
	for _, p := range []int{4, 16, 64} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			seqRng := xrand.New(int64(9000 + p))
			catalog := fuzzOps()
			for it := 0; it < fuzzIters(); it++ {
				fs := makeFuzzSeq(seqRng, 3+int(seqRng.Intn(4)))
				refRes, refStats := runFuzzBlocking(comm.MatrixConfig(p), fs)
				opNames := func(i int) string { return catalog[fs.ops[i]].name }
				for _, w := range widths {
					cfg := comm.MailboxConfig(p)
					cfg.Workers = w
					for _, mode := range []string{"blocking", "stepper"} {
						var res [][]any
						var stats comm.Stats
						if mode == "blocking" {
							res, stats = runFuzzBlocking(cfg, fs)
						} else {
							res, stats = runFuzzStepper(cfg, fs)
						}
						for i := range res {
							if !reflect.DeepEqual(refRes[i], res[i]) {
								t.Fatalf("iter %d w=%d %s: op %d (%s) diverges from matrix reference\nref: %v\ngot: %v",
									it, w, mode, i, opNames(i), refRes[i], res[i])
							}
						}
						if stats != refStats {
							t.Fatalf("iter %d w=%d %s: stats diverge\nref: %+v\ngot: %+v",
								it, w, mode, refStats, stats)
						}
					}
				}
			}
		})
	}
}
