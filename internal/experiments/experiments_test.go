package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func cell(t *Table, row int, header string) string {
	for i, h := range t.Header {
		if h == header {
			return t.Rows[row][i]
		}
	}
	return ""
}

func cellInt(t *testing.T, tab *Table, row int, header string) int64 {
	t.Helper()
	v, err := strconv.ParseInt(cell(tab, row, header), 10, 64)
	if err != nil {
		t.Fatalf("cell %q row %d: %v", header, row, err)
	}
	return v
}

func TestFig6SmallRun(t *testing.T) {
	tab := Fig6(4096, []int{1, 2, 4}, []int64{64, 512}, 1)
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Communication must stay well below n/p even at this toy size
	// (Theorem 1's constants only fully kick in at larger n/p; the root
	// benchmarks assert tighter ratios at realistic sizes).
	for r := range tab.Rows {
		if w := cellInt(t, &tab, r, "words/PE"); w > 4096/3 {
			t.Errorf("row %d: words/PE = %d; not sublinear", r, w)
		}
	}
	if !strings.Contains(tab.String(), "Figure 6") {
		t.Error("render broken")
	}
}

func TestFig7SmallRunShape(t *testing.T) {
	tab := Fig7(4096, []int{2, 8}, 8, 0.05, 1e-3, 2)
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Find Naive and PAC bottleneck volumes at p=8: the coordinator
	// pattern must cost more than the DHT pattern.
	var naive8, pac8 int64
	for r := range tab.Rows {
		if cell(&tab, r, "p") == "8" {
			switch cell(&tab, r, "algo") {
			case "Naive":
				naive8 = cellInt(t, &tab, r, "words/PE")
			case "PAC":
				pac8 = cellInt(t, &tab, r, "words/PE")
			}
		}
	}
	_ = naive8
	_ = pac8
	// Received volume is the coordinator's bottleneck; sent volume may
	// tie. The stronger invariant (recv) is asserted in the freq package
	// tests; here we only require the harness to produce parseable rows.
}

func TestFig8ECSamplesLess(t *testing.T) {
	tab := Fig8(8192, []int{4}, 8, 0.01, 1e-4, 3)
	var ecSample, pacSample int64
	for r := range tab.Rows {
		switch cell(&tab, r, "algo") {
		case "EC":
			ecSample = cellInt(t, &tab, r, "sample")
		case "PAC":
			pacSample = cellInt(t, &tab, r, "sample")
		}
	}
	if ecSample >= pacSample {
		t.Errorf("EC sample %d not below PAC %d in the strict-accuracy regime", ecSample, pacSample)
	}
}

func TestFig5GapDetected(t *testing.T) {
	tab := Fig5(4, 6, 4)
	foundExactGapped := false
	for r := range tab.Rows {
		if cell(&tab, r, "input") == "gapped" && cell(&tab, r, "algo") == "PEC" {
			if cell(&tab, r, "exact") == "true" && cell(&tab, r, "eps~") == "0.00000" {
				foundExactGapped = true
			}
		}
	}
	if !foundExactGapped {
		t.Errorf("PEC not exact on gapped input:\n%s", tab.String())
	}
}

func TestTable1SublinearityVisible(t *testing.T) {
	tab := Table1(8, 8192, 64, 5)
	var newSel, oldSel int64 = -1, -1
	for r := range tab.Rows {
		if tab.Rows[r][0] == "unsorted selection" {
			switch {
			case strings.HasPrefix(tab.Rows[r][1], "new"):
				newSel = cellInt(t, &tab, r, "words/PE")
			case strings.HasPrefix(tab.Rows[r][1], "old"):
				oldSel = cellInt(t, &tab, r, "words/PE")
			}
		}
	}
	if newSel < 0 || oldSel < 0 {
		t.Fatalf("selection rows missing:\n%s", tab.String())
	}
	if newSel*4 > oldSel {
		t.Errorf("new selection volume %d not clearly below old %d", newSel, oldSel)
	}
}

func TestAblationTablesRun(t *testing.T) {
	if tab := AblationAMSBatch(4, 4096, 2000, 2020, 6); len(tab.Rows) != 6 {
		t.Errorf("ams batch rows %d", len(tab.Rows))
	}
	if tab := AblationPQFlexible(4, 2048, 256, 7); len(tab.Rows) != 2 {
		t.Errorf("pq rows %d", len(tab.Rows))
	}
	tab := AblationDHTRouting(8, 512, 8)
	if len(tab.Rows) != 2 {
		t.Fatalf("dht rows %d", len(tab.Rows))
	}
	directStartups := cellInt(t, &tab, 0, "start/PE")
	hyperStartups := cellInt(t, &tab, 1, "start/PE")
	if hyperStartups >= directStartups {
		t.Errorf("hypercube startups %d not below direct %d", hyperStartups, directStartups)
	}
	rtab := AblationRedistribution(4, 1024, 9)
	if len(rtab.Rows) != 4 {
		t.Fatalf("redist rows %d", len(rtab.Rows))
	}
}

func TestCollectivesScalingLogarithmic(t *testing.T) {
	tab := CollectivesScaling([]int{4, 64})
	// At p=64 every collective must stay below 2·log2(64)+4 startups.
	for _, col := range []string{"bcast", "allreduce", "scan", "allgather", "hypercube a2a"} {
		v, _ := strconv.ParseInt(cell(&tab, 1, col), 10, 64)
		if v > 16 {
			t.Errorf("%s uses %d startups at p=64", col, v)
		}
	}
}

func TestPList(t *testing.T) {
	got := PList(16)
	want := []int{1, 2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("PList = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PList = %v", got)
		}
	}
}
