// Package xrand provides the deterministic random-number machinery the
// algorithms rely on: per-PE pseudo-random streams, geometric deviates for
// skip-value Bernoulli sampling (Section 2 of the paper), and a shared
// stream for synchronized random choices across PEs (e.g. the common random
// pivot index of multisequence selection).
//
// The generator is xoshiro-class (SplitMix64-seeded xorshift multiply),
// chosen for speed and reproducibility; statistical quality far exceeds the
// needs of the sampling procedures, whose guarantees only require
// independence-like behaviour captured by Chernoff-bound analyses.
package xrand

import "math"

// splitMix64 advances a SplitMix64 state and returns the next value.
// Used for seeding so that nearby seeds yield uncorrelated streams.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a small, fast deterministic generator (xorshift128+ variant).
// The zero value is not valid; construct with New.
type RNG struct {
	s0, s1 uint64
}

// New returns a generator seeded deterministically from seed.
func New(seed int64) *RNG {
	st := uint64(seed)
	r := &RNG{}
	r.s0 = splitMix64(&st)
	r.s1 = splitMix64(&st)
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
	return r
}

// NewPE returns the stream for PE rank derived from a machine seed: streams
// for distinct ranks are decorrelated via SplitMix64 scrambling.
func NewPE(seed int64, rank int) *RNG {
	return New(int64(splitMix64(&[]uint64{uint64(seed) ^ uint64(rank)*0x9e3779b97f4a7c15}[0])))
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	s1, s0 := r.s0, r.s1
	r.s0 = s0
	s1 ^= s1 << 23
	r.s1 = s1 ^ s0 ^ (s1 >> 17) ^ (s0 >> 26)
	return r.s1 + s0
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Int63n(int64(n)))
}

// Int63n returns a uniform value in [0,n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	// Rejection sampling to remove modulo bias.
	maxUsable := uint64(math.MaxUint64) - uint64(math.MaxUint64)%uint64(n)
	for {
		v := r.Uint64()
		if v < maxUsable {
			return int64(v % uint64(n))
		}
	}
}

// Geometric returns a geometric deviate with success probability rho: the
// 1-based index of the first success in a sequence of Bernoulli(rho)
// trials. This is the paper's geometricRandomDeviate [Press et al.]:
// ceil(ln U / ln(1-rho)). Constant time. rho must be in (0,1]; rho == 1
// always returns 1. Values are capped at math.MaxInt64.
func (r *RNG) Geometric(rho float64) int64 {
	if rho >= 1 {
		return 1
	}
	if rho <= 0 {
		panic("xrand: Geometric with non-positive rho")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	g := math.Ceil(math.Log(u) / math.Log1p(-rho))
	if g < 1 {
		return 1
	}
	if g >= math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(g)
}

// Bernoulli returns true with probability rho.
func (r *RNG) Bernoulli(rho float64) bool {
	return r.Float64() < rho
}

// Normal returns a standard normal deviate (polar Box–Muller).
func (r *RNG) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Gamma returns a Gamma(shape, 1) deviate using Marsaglia–Tsang; shape must
// be positive. Used by the negative binomial generator.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("xrand: Gamma with non-positive shape")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
		return r.Gamma(shape+1) * math.Pow(r.Float64()+1e-300, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Poisson returns a Poisson(lambda) deviate. Exact inversion for small
// lambda; normal approximation for large lambda (error negligible for the
// workload-generation use in this repo).
func (r *RNG) Poisson(lambda float64) int64 {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		var k int64
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := math.Round(lambda + math.Sqrt(lambda)*r.Normal())
	if v < 0 {
		return 0
	}
	return int64(v)
}

// NegBinomial returns a negative binomial deviate with r0 failures and
// success probability p (number of successes before the r0-th failure),
// via the Gamma–Poisson mixture NB(r,p) = Poisson(Gamma(r) * p/(1-p)).
func (r *RNG) NegBinomial(r0 float64, p float64) int64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		panic("xrand: NegBinomial with p >= 1")
	}
	lambda := r.Gamma(r0) * p / (1 - p)
	return r.Poisson(lambda)
}

// SkipSampler iterates over the indices of a Bernoulli(rho) sample of
// 0..n-1 using geometric skip values, in expected time proportional to the
// sample size (Section 2, "Bernoulli sampling").
type SkipSampler struct {
	rng  *RNG
	rho  float64
	next int64
}

// NewSkipSampler creates a sampler over indices [0, n) — n is implicit;
// iterate with Next until it returns a value >= your n.
func NewSkipSampler(rng *RNG, rho float64) *SkipSampler {
	s := &SkipSampler{rng: rng, rho: rho, next: -1}
	s.advance()
	return s
}

func (s *SkipSampler) advance() {
	if s.rho <= 0 {
		s.next = math.MaxInt64
		return
	}
	g := s.rng.Geometric(s.rho)
	if s.next > math.MaxInt64-g {
		s.next = math.MaxInt64
		return
	}
	s.next += g
}

// Next returns the next sampled index (monotonically increasing). The
// caller stops once the returned index reaches its input size.
func (s *SkipSampler) Next() int64 {
	v := s.next
	s.advance()
	return v
}
