package xrand

import (
	"math"
	"testing"
)

func TestBernoulliRate(t *testing.T) {
	r := New(31)
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		const trials = 100000
		for i := 0; i < trials; i++ {
			if r.Bernoulli(rho) {
				hits++
			}
		}
		if got := float64(hits) / trials; math.Abs(got-rho) > 0.01 {
			t.Errorf("Bernoulli(%v) rate %v", rho, got)
		}
	}
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) fired")
	}
	if !r.Bernoulli(1.5) {
		t.Error("Bernoulli(>1) must always fire")
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := New(33)
	for _, bad := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) should panic", bad)
				}
			}()
			r.Intn(bad)
		}()
	}
}

func TestInt63nPanicsOnNonPositive(t *testing.T) {
	r := New(34)
	defer func() {
		if recover() == nil {
			t.Error("Int63n(0) should panic")
		}
	}()
	r.Int63n(0)
}

func TestGammaPanicsOnNonPositiveShape(t *testing.T) {
	r := New(35)
	defer func() {
		if recover() == nil {
			t.Error("Gamma(0) should panic")
		}
	}()
	r.Gamma(0)
}

func TestNegBinomialEdges(t *testing.T) {
	r := New(36)
	if v := r.NegBinomial(10, 0); v != 0 {
		t.Errorf("NegBinomial(p=0) = %d", v)
	}
	defer func() {
		if recover() == nil {
			t.Error("NegBinomial(p=1) should panic")
		}
	}()
	r.NegBinomial(10, 1)
}

func TestPoissonZero(t *testing.T) {
	r := New(37)
	if v := r.Poisson(0); v != 0 {
		t.Errorf("Poisson(0) = %d", v)
	}
	if v := r.Poisson(-3); v != 0 {
		t.Errorf("Poisson(<0) = %d", v)
	}
}

func TestGeometricVariance(t *testing.T) {
	// Var of geometric(ρ) is (1−ρ)/ρ²; check within 10% at ρ=0.2.
	r := New(38)
	const rho = 0.2
	const trials = 300000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		g := float64(r.Geometric(rho))
		sum += g
		sumSq += g * g
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	want := (1 - rho) / (rho * rho)
	if math.Abs(variance-want)/want > 0.1 {
		t.Errorf("geometric variance %v, want ~%v", variance, want)
	}
}
