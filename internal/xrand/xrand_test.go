package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield same stream")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide %d/1000 times", same)
	}
}

func TestPEStreamsDiffer(t *testing.T) {
	r0, r1 := NewPE(1, 0), NewPE(1, 1)
	if r0.Uint64() == r1.Uint64() {
		t.Error("PE streams should differ")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-trials/n) > 600 { // ~6 sigma
			t.Errorf("bucket %d count %d deviates from %d", i, c, trials/n)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(5)
	for _, rho := range []float64{0.5, 0.1, 0.01} {
		var sum float64
		const trials = 200000
		for i := 0; i < trials; i++ {
			sum += float64(r.Geometric(rho))
		}
		mean := sum / trials
		want := 1 / rho
		if math.Abs(mean-want)/want > 0.05 {
			t.Errorf("Geometric(%v) mean %v, want ~%v", rho, mean, want)
		}
	}
}

func TestGeometricEdgeCases(t *testing.T) {
	r := New(5)
	if g := r.Geometric(1); g != 1 {
		t.Errorf("Geometric(1) = %d, want 1", g)
	}
	if g := r.Geometric(1e-18); g < 1 {
		t.Errorf("Geometric(tiny) = %d, want >= 1", g)
	}
	defer func() {
		if recover() == nil {
			t.Error("Geometric(0) should panic")
		}
	}()
	r.Geometric(0)
}

func TestGeometricMin1(t *testing.T) {
	r := New(9)
	for i := 0; i < 100000; i++ {
		if g := r.Geometric(0.9); g < 1 {
			t.Fatalf("geometric deviate %d < 1", g)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(8)
	var sum, sumSq float64
	const trials = 200000
	for i := 0; i < trials; i++ {
		x := r.Normal()
		sum += x
		sumSq += x * x
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %v, want ~1", variance)
	}
}

func TestGammaMean(t *testing.T) {
	r := New(13)
	for _, shape := range []float64{0.5, 1, 2, 10, 1000} {
		var sum float64
		const trials = 50000
		for i := 0; i < trials; i++ {
			sum += r.Gamma(shape)
		}
		mean := sum / trials
		if math.Abs(mean-shape)/shape > 0.05 {
			t.Errorf("Gamma(%v) mean %v, want ~%v", shape, mean, shape)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(17)
	for _, lambda := range []float64{0.5, 5, 29, 100, 19000} {
		var sum float64
		const trials = 20000
		for i := 0; i < trials; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / trials
		if math.Abs(mean-lambda)/lambda > 0.05 {
			t.Errorf("Poisson(%v) mean %v", lambda, mean)
		}
	}
}

func TestNegBinomialMoments(t *testing.T) {
	// The paper's Section 10.2 workload: r=1000, p=0.05.
	// Mean r*p/(1-p); our parameterization: successes before r-th failure.
	r := New(19)
	const r0, p = 1000.0, 0.05
	var sum float64
	const trials = 20000
	for i := 0; i < trials; i++ {
		sum += float64(r.NegBinomial(r0, p))
	}
	mean := sum / trials
	want := r0 * p / (1 - p)
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("NegBinomial mean %v, want ~%v", mean, want)
	}
}

func TestSkipSamplerMatchesBernoulli(t *testing.T) {
	// Sampling 0..n-1 with skips must give each index probability rho.
	const n = 10000
	const rho = 0.1
	const trials = 200
	counts := make([]int, n)
	r := New(23)
	for trial := 0; trial < trials; trial++ {
		s := NewSkipSampler(r, rho)
		for idx := s.Next(); idx < n; idx = s.Next() {
			counts[idx]++
		}
	}
	var total int
	for _, c := range counts {
		total += c
	}
	got := float64(total) / (n * trials)
	if math.Abs(got-rho) > 0.01 {
		t.Errorf("empirical sampling rate %v, want %v", got, rho)
	}
	// First index must be sampled with the same probability as the rest
	// (off-by-one check on the geometric skip).
	first := float64(counts[0]) / trials
	if math.Abs(first-rho) > 0.07 {
		t.Errorf("index 0 sampled at rate %v, want %v", first, rho)
	}
}

func TestSkipSamplerZeroRho(t *testing.T) {
	s := NewSkipSampler(New(1), 0)
	if idx := s.Next(); idx < math.MaxInt64 {
		t.Errorf("rho=0 sampler produced index %d", idx)
	}
}

func TestSkipSamplerMonotone(t *testing.T) {
	s := NewSkipSampler(New(29), 0.3)
	prev := int64(-1)
	for i := 0; i < 1000; i++ {
		v := s.Next()
		if v <= prev {
			t.Fatalf("indices not strictly increasing: %d after %d", v, prev)
		}
		prev = v
	}
}
