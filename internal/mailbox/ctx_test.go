package mailbox

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestKeyedFIFOAcrossContexts pins the demux contract of the serving
// layer: messages from one sender under different contexts are
// independent streams, each in send order, and receiving one context's
// stream never disturbs (or rescans past) the other's.
func TestKeyedFIFOAcrossContexts(t *testing.T) {
	b := New()
	for i := 0; i < 3; i++ {
		b.Put(Msg{Src: 1, Ctx: 7, Tag: uint64(70 + i)})
		b.Put(Msg{Src: 1, Ctx: 9, Tag: uint64(90 + i)})
		b.Put(Msg{Src: 2, Ctx: 7, Tag: uint64(170 + i)})
	}
	for i := 0; i < 3; i++ {
		m, ok := b.TryTakeKey(Key(1, 9))
		if !ok || m.Tag != uint64(90+i) || m.Ctx != 9 {
			t.Fatalf("ctx 9 step %d: got %+v ok=%v", i, m, ok)
		}
	}
	for i := 0; i < 3; i++ {
		m, ok := b.TryTakeKey(Key(1, 7))
		if !ok || m.Tag != uint64(70+i) {
			t.Fatalf("src 1 ctx 7 step %d: got %+v ok=%v", i, m, ok)
		}
		m, ok = b.TryTakeKey(Key(2, 7))
		if !ok || m.Tag != uint64(170+i) {
			t.Fatalf("src 2 ctx 7 step %d: got %+v ok=%v", i, m, ok)
		}
	}
	if b.Pending() != 0 {
		t.Fatalf("Pending = %d after draining all streams", b.Pending())
	}
}

// TestCtxZeroKeyCompat pins Key's compat contract: context 0 keys are
// the bare rank, so pre-context call sites and keyed ones interoperate
// on the same box.
func TestCtxZeroKeyCompat(t *testing.T) {
	if Key(5, 0) != 5 {
		t.Fatalf("Key(5,0) = %d", Key(5, 0))
	}
	if KeySrc(Key(3, 11)) != 3 || KeyCtx(Key(3, 11)) != 11 {
		t.Fatalf("round trip failed: %d %d", KeySrc(Key(3, 11)), KeyCtx(Key(3, 11)))
	}
	b := New()
	b.Put(Msg{Src: 4}) // Ctx zero value
	if _, ok := b.TryTakeKey(Key(4, 0)); !ok {
		t.Fatal("keyed take missed a ctx-0 Put")
	}
}

// TestArmKeysFireOnce pins the multi-key arm contract: arming on several
// keys refuses if any is already queued; otherwise the first matching
// Put disarms all keys and fires notify exactly once, and non-matching
// traffic never fires.
func TestArmKeysFireOnce(t *testing.T) {
	b := New()
	var fired atomic.Int32
	b.SetNotify(3, func(rank int) {
		if rank != 3 {
			t.Errorf("notify rank = %d, want 3", rank)
		}
		fired.Add(1)
	})
	keys := []uint64{Key(1, 5), Key(2, 6)}
	b.Put(Msg{Src: 2, Ctx: 6})
	if b.ArmKeys(keys) {
		t.Fatal("ArmKeys armed despite a queued match")
	}
	if _, ok := b.TryTakeKey(Key(2, 6)); !ok {
		t.Fatal("queued match lost")
	}
	if !b.ArmKeys(keys) {
		t.Fatal("ArmKeys refused on an empty box")
	}
	b.Put(Msg{Src: 1, Ctx: 4}) // same src, wrong ctx: no fire
	b.Put(Msg{Src: 5, Ctx: 5}) // wrong src: no fire
	if got := fired.Load(); got != 0 {
		t.Fatalf("non-matching Puts fired notify %d times", got)
	}
	b.Put(Msg{Src: 2, Ctx: 6})
	if got := fired.Load(); got != 1 {
		t.Fatalf("notify fired %d times, want 1", got)
	}
	b.Put(Msg{Src: 1, Ctx: 5}) // disarmed: no second fire
	if got := fired.Load(); got != 1 {
		t.Fatalf("disarmed box fired again (%d)", got)
	}
}

// TestWaitAnyKeys pins the blocking multiplexed wait: WaitAnyKeys
// returns the first message matching any key, leaves non-matching
// traffic queued, and wakes from a blocked state on a matching Put.
func TestWaitAnyKeys(t *testing.T) {
	b := New()
	keys := []uint64{Key(1, 2), Key(3, 4)}
	b.Put(Msg{Src: 9, Ctx: 9, Tag: 99})
	done := make(chan Msg)
	go func() {
		m, ok := b.WaitAnyKeys(keys)
		if !ok {
			t.Error("WaitAnyKeys interrupted unexpectedly")
		}
		done <- m
	}()
	select {
	case <-done:
		t.Fatal("WaitAnyKeys returned a non-matching message")
	case <-time.After(10 * time.Millisecond):
	}
	b.Put(Msg{Src: 3, Ctx: 4, Tag: 34})
	if m := <-done; m.Tag != 34 {
		t.Fatalf("got %+v", m)
	}
	if m, ok := b.TryTakeKey(Key(9, 9)); !ok || m.Tag != 99 {
		t.Fatalf("stashed non-matching message lost: %+v ok=%v", m, ok)
	}
	// Interrupt wakes a multiplexed waiter too.
	go func() {
		_, ok := b.WaitAnyKeys(keys)
		done <- Msg{Words: int64(boolToInt(ok))}
	}()
	time.Sleep(5 * time.Millisecond)
	b.Interrupt()
	if m := <-done; m.Words != 0 {
		t.Fatal("interrupted WaitAnyKeys reported ok")
	}
	b.Reset()
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TestKeyedConcurrentSenders is the -race stress for the demux layer:
// many producers over distinct (src, ctx) streams, one consumer reading
// the streams round-robin; per-key sequence numbers must arrive in
// order even as intake constantly re-demuxes around the reader.
func TestKeyedConcurrentSenders(t *testing.T) {
	const senders, ctxs, msgs = 4, 3, 120
	b := New()
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		for c := 0; c < ctxs; c++ {
			wg.Add(1)
			go func(s int, c uint32) {
				defer wg.Done()
				for i := 0; i < msgs; i++ {
					b.Put(Msg{Src: s, Ctx: c, Tag: uint64(i)})
				}
			}(s, uint32(c))
		}
	}
	got := make(map[uint64]int)
	for n := 0; n < senders*ctxs*msgs; n++ {
		key := Key(n%senders, uint32((n/senders)%ctxs))
		m, ok := b.TakeKey(key)
		if !ok {
			t.Fatal("unexpected interrupt")
		}
		if int(m.Tag) != got[key] {
			t.Fatalf("key %d: got seq %d, want %d", key, m.Tag, got[key])
		}
		got[key]++
	}
	wg.Wait()
	if b.Pending() != 0 {
		t.Fatalf("Pending = %d", b.Pending())
	}
}

// TestShardedReadyQueueResumes drives the continuation suspend/resume
// protocol on the sharded ready queues (and, as the A/B toggle's other
// arm, the global queue) and checks every rank resumes exactly once per
// suspension — including resumes pushed from producer goroutines outside
// any worker, the serving layer's doorbell shape.
func TestShardedReadyQueueResumes(t *testing.T) {
	for _, sharded := range []bool{true, false} {
		const p, w, rounds = 96, 3, 10
		boxes := make([]*Box, p)
		sc := NewSchedReady(p, w, sharded)
		for i := range boxes {
			boxes[i] = New()
			boxes[i].SetNotify(i, sc.Ready)
		}
		sent := make([]bool, p)
		for round := 0; round < rounds; round++ {
			shift := 1 + round%(p-1)
			for i := range sent {
				sent[i] = false
			}
			sc.Run(func(rank int) bool {
				src := (rank - shift + p) % p
				if !sent[rank] {
					sent[rank] = true
					boxes[(rank+shift)%p].Put(Msg{Src: rank, Tag: uint64(round)})
					if boxes[rank].Arm(src) {
						return false
					}
				}
				m, ok := boxes[rank].TryTake(src)
				if !ok || m.Tag != uint64(round) {
					t.Errorf("sharded=%v round %d rank %d: got %+v ok=%v", sharded, round, rank, m, ok)
				}
				return true
			})
		}
		sc.Close()
	}
}

// TestShardedReadyStealing pins the work-stealing pop: ranks resumed in
// a shard whose own worker is blocked inside a body must be picked up by
// another shard's driver (or an idle worker) — the fairness property the
// per-shard split must not lose.
func TestShardedReadyStealing(t *testing.T) {
	const p, w = 8, 4 // shard size 2: rank 0,1 → shard 0, …
	boxes := make([]*Box, p)
	sc := NewSchedReady(p, w, true)
	defer sc.Close()
	for i := range boxes {
		boxes[i] = New()
		boxes[i].SetNotify(i, sc.Ready)
	}
	var suspended [p]bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		sc.Run(func(rank int) bool {
			if !suspended[rank] {
				suspended[rank] = true
				if boxes[rank].Arm(p) { // external source: only the pusher below delivers
					return false
				}
			}
			if _, ok := boxes[rank].TryTake(p); !ok {
				t.Errorf("rank %d resumed without its message", rank)
			}
			return true
		})
	}()
	// Resume every rank from outside the scheduler, in reverse shard
	// order, once all bodies are suspended.
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; i < p; i++ {
		for !armedOn(boxes[i]) && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	for i := p - 1; i >= 0; i-- {
		boxes[i].Put(Msg{Src: p})
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("sharded ready queues stranded a resumed rank")
	}
}
