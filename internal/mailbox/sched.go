package mailbox

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// Sched is the sharded worker scheduler that decouples goroutines from
// PEs. The previous runtime (and the channel-matrix engine) dedicated one
// goroutine to every PE, so a resident p-PE machine held p parked
// goroutine stacks — ~2–8 KB each, which dominates machine memory long
// before the O(p) mailboxes do (p = 131072 ≈ 0.25–1 GiB of stacks doing
// nothing between runs). Sched instead multiplexes the p PE bodies over
// w ≪ p shards, each a run queue over a contiguous rank range:
//
//   - w permanent workers, one per shard, started on the first Run and
//     kicked over buffered channels. A worker pops ranks off its shard's
//     queue and runs each PE body inline on its own stack; a Run whose
//     bodies never block dispatches entirely on these w goroutines and
//     allocates nothing.
//   - When a body is about to block in a receive, it calls WillPark. If
//     the goroutine currently holds its shard's driver role and the
//     shard still has queued ranks, the role is handed off — to a
//     permanent worker whose own shard is drained (they multiplex on the
//     hand-off channel between assignments) or, if all are busy, to a
//     freshly spawned transient goroutine — so the queue keeps draining
//     while the body sleeps on its mailbox condition variable. The
//     parked body keeps its goroutine (Go cannot suspend a stack any
//     other way), but that goroutine is transient: it exits as soon as
//     the body finishes, having lost its driver role.
//
// The resulting resident goroutine count — what a machine costs while it
// merely exists between runs — is exactly w, pinned by
// TestMailboxGoroutineCountResident in internal/comm. During a run the
// transient count is w plus the number of simultaneously parked bodies,
// which is workload-dependent (a collective in which every PE waits on a
// partner can park O(p) bodies at once); those transient stacks are
// reclaimed when the run ends. StateBytes reports the scheduler's own
// footprint so the machine-memory estimators stay honest.
//
// Concurrency contract: Run and Close are called from one coordinating
// goroutine at a time, and exec must not panic (wrap bodies with recover
// at the call site) — the same contract the previous pool had. WillPark
// is called only from inside exec, on the goroutine running that rank.
type Sched struct {
	shards []shard
	// driverOf[rank] is the shard index whose driver role the goroutine
	// running rank currently holds, or -1. Only ever accessed by the
	// goroutine running that rank: the driver sets it before exec, WillPark
	// clears it on hand-off, the driver reads it after exec to learn
	// whether it is still driving. No atomics needed.
	driverOf []int32
	// kick[i] (buffered, cap 1) starts permanent worker i on its own
	// shard; work hands a parked driver's shard to whichever permanent
	// worker is between assignments. work is unbuffered: a send succeeds
	// only if a worker is actually parked in receive, so hand-off never
	// blocks (transient spawn on the miss) and never strands a role.
	kick []chan struct{}
	work chan int32
	// wg counts PE bodies still open in the current Run.
	wg      sync.WaitGroup
	exec    func(rank int)
	started bool

	closeOnce sync.Once
}

// shard is one run queue: the contiguous rank range [lo, hi) and the
// cursor of the next rank to start. The cursor is atomic because drivers
// overlap run boundaries: a driver that has just finished its shard's
// last body (and released the run's WaitGroup) re-checks the cursor
// while the coordinator may already be resetting it for the next run —
// and a hand-off can give a shard a second driver while such a straggler
// is still looping. Atomic fetch-add pops make every interleaving safe:
// each rank is claimed exactly once, and a straggler that claims a rank
// of the new run simply becomes one of its drivers (its cursor load
// orders it after the coordinator's exec/WaitGroup writes).
type shard struct {
	lo, hi int
	next   atomic.Int32
}

// NewSched creates a scheduler for p ranks over w shards (clamped to
// 1 ≤ w ≤ p). No goroutines are started until the first Run.
func NewSched(p, w int) *Sched {
	if w < 1 {
		w = 1
	}
	if w > p {
		w = p
	}
	sc := &Sched{
		shards:   make([]shard, w),
		driverOf: make([]int32, p),
		kick:     make([]chan struct{}, w),
		work:     make(chan int32),
	}
	for i := range sc.shards {
		sc.shards[i].lo = i * p / w
		sc.shards[i].hi = (i + 1) * p / w
		sc.shards[i].next.Store(int32(sc.shards[i].hi)) // empty until Run
		sc.kick[i] = make(chan struct{}, 1)
	}
	for i := range sc.driverOf {
		sc.driverOf[i] = -1
	}
	return sc
}

// Workers returns the shard count w.
func (sc *Sched) Workers() int { return len(sc.shards) }

// Run executes exec(rank) for every rank and blocks until all return.
// Ranks within a shard start in increasing order; a rank that blocks
// hands its shard to another goroutine (see WillPark), so queued ranks
// never wait on a parked one.
func (sc *Sched) Run(exec func(rank int)) {
	sc.exec = exec
	sc.wg.Add(len(sc.driverOf))
	for i := range sc.shards {
		sc.shards[i].next.Store(int32(sc.shards[i].lo))
	}
	if !sc.started {
		sc.started = true
		for i := range sc.kick {
			go sc.worker(sc.kick[i], int32(i))
		}
	}
	for i := range sc.kick {
		sc.kick[i] <- struct{}{}
	}
	sc.wg.Wait()
	sc.exec = nil
}

// worker is a permanent scheduler goroutine: kicked once per Run for its
// own shard, and available for driver hand-offs from parked bodies in
// any shard between assignments.
func (sc *Sched) worker(kick chan struct{}, own int32) {
	for {
		select {
		case _, ok := <-kick:
			if !ok {
				return
			}
			sc.drive(own)
		case s, ok := <-sc.work:
			if !ok {
				return
			}
			sc.drive(s)
		}
	}
}

// handOff gives shard s's driver role to a permanent worker parked
// between assignments, or spawns a transient goroutine when none is.
// Never blocks.
func (sc *Sched) handOff(s int32) {
	select {
	case sc.work <- s:
	default:
		go sc.drive(s)
	}
}

// drive pops ranks off shard s and runs their bodies inline until the
// queue is empty or the running body hands the driver role away.
func (sc *Sched) drive(s int32) {
	sh := &sc.shards[s]
	for {
		i := int(sh.next.Add(1)) - 1
		if i >= sh.hi {
			return
		}
		sc.driverOf[i] = s
		sc.exec(i)
		lost := sc.driverOf[i] < 0
		sc.driverOf[i] = -1
		sc.wg.Done()
		if lost {
			return // the role (and sh) now belong to another goroutine
		}
	}
}

// WillPark declares that the body running rank is about to block waiting
// for a message. If that body holds its shard's driver role and the shard
// has unstarted ranks, the role is handed off so the queue keeps
// draining; otherwise it is a cheap no-op. Must be called from inside
// exec on the goroutine running rank. Calling it and then not blocking
// (the message arrived meanwhile) is harmless — the role is simply gone.
func (sc *Sched) WillPark(rank int) {
	s := sc.driverOf[rank]
	if s < 0 {
		return
	}
	sc.driverOf[rank] = -1
	// A stale read here only costs a spurious hand-off (the receiving
	// worker finds the queue empty); ranks are claimed atomically in drive.
	if int(sc.shards[s].next.Load()) < sc.shards[s].hi {
		sc.handOff(s)
	}
}

// Close releases the permanent worker goroutines. Must not overlap a
// Run; Run must not be called afterwards. Idempotent.
func (sc *Sched) Close() {
	sc.closeOnce.Do(func() {
		close(sc.work)
		for _, c := range sc.kick {
			close(c)
		}
	})
}

// StateBytes estimates the scheduler's resident memory for p ranks and w
// shards: shard, kick-channel, and driver bookkeeping plus the w
// permanent goroutine stacks. Goroutine stacks start at ~8 KB of
// reserved address space; the estimate charges that in full so
// machine-memory claims err high.
func StateBytes(p, w int) int64 {
	if w > p {
		w = p
	}
	const stackBytes = 8 << 10
	const kickBytes = 96 + 16 // hchan + slot + slice entry
	return int64(w)*(int64(unsafe.Sizeof(shard{}))+kickBytes+stackBytes) + int64(p)*4
}
